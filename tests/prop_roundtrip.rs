//! Property-based equivalence: random databases, random access patterns,
//! random delay knobs — every structure must agree with the naive oracle,
//! in order, without duplicates, and the §4 structural invariants must
//! hold on the constructed trees.

use cqc_common::value::Tuple;
use cqc_core::dbtree::tau_level;
use cqc_core::theorem1::Theorem1Structure;
use cqc_core::theorem2::Theorem2Structure;
use cqc_join::naive::evaluate_view;
use cqc_query::parser::parse_adorned;
use cqc_query::AdornedView;
use cqc_storage::{Database, Relation};
use proptest::prelude::*;

/// A random binary relation as a list of pairs over a small domain.
fn rel_strategy(max_rows: usize, dom: u64) -> impl Strategy<Value = Vec<(u64, u64)>> {
    prop::collection::vec((0..dom, 0..dom), 0..max_rows)
}

fn db_from(pairs: &[(&str, Vec<(u64, u64)>)]) -> Database {
    let mut db = Database::new();
    for (name, rows) in pairs {
        db.add(Relation::from_pairs(*name, rows.clone())).unwrap();
    }
    db
}

fn sorted(mut v: Vec<Tuple>) -> Vec<Tuple> {
    v.sort();
    v.dedup();
    v
}

/// All bound-value combinations over `0..dom` for `nb` bound variables.
fn all_requests(nb: usize, dom: u64) -> Vec<Vec<u64>> {
    let mut reqs: Vec<Vec<u64>> = vec![vec![]];
    for _ in 0..nb {
        reqs = reqs
            .iter()
            .flat_map(|r| {
                (0..dom).map(move |v| {
                    let mut r2 = r.clone();
                    r2.push(v);
                    r2
                })
            })
            .collect();
    }
    reqs
}

fn check_theorem1(view: &AdornedView, db: &Database, weights: &[f64], tau: f64, dom: u64) {
    let s = Theorem1Structure::build(view, db, weights, tau).unwrap();
    let nb = view.bound_head().len();
    for req in all_requests(nb, dom) {
        let expect = evaluate_view(view, db, &req).unwrap();
        let got: Vec<Tuple> = s.answer(&req).unwrap().collect();
        assert_eq!(got, expect, "τ={tau} req={req:?}");
    }
    // Structural invariants (Lemma 4 / threshold rules).
    if let Some(tree) = s.tree() {
        for (i, node) in tree.nodes.iter().enumerate() {
            let thr = tau_level(tree.tau, tree.alpha, node.level);
            if node.beta.is_some() {
                assert!(node.t_value >= thr - 1e-9, "internal below threshold");
            } else {
                assert!(node.t_value < thr, "leaf above threshold");
            }
            for child in [node.left, node.right].into_iter().flatten() {
                let ct = tree.nodes[child as usize].t_value;
                assert!(
                    ct <= node.t_value / 2.0 + 1e-6,
                    "Prop 8 halving violated at node {i}"
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24,
        max_shrink_iters: 200,
        .. ProptestConfig::default()
    })]

    /// Triangle over three random relations, every adornment with ≤ 2 bound
    /// variables, random τ.
    #[test]
    fn theorem1_triangle_roundtrip(
        r in rel_strategy(30, 6),
        s in rel_strategy(30, 6),
        t in rel_strategy(30, 6),
        pattern in prop::sample::select(vec!["fff", "bff", "fbf", "ffb", "bbf", "bfb", "fbb"]),
        tau in 1.0f64..24.0,
    ) {
        let db = db_from(&[("R", r), ("S", s), ("T", t)]);
        let view = parse_adorned("Q(x,y,z) :- R(x,y), S(y,z), T(z,x)", pattern).unwrap();
        check_theorem1(&view, &db, &[0.5, 0.5, 0.5], tau, 6);
    }

    /// Two-path (the paper's P_2^{ff} example of a non-factorizable-to-
    /// linear query) plus star-shaped adornments, with the all-ones cover.
    #[test]
    fn theorem1_two_path_roundtrip(
        r in rel_strategy(35, 7),
        s in rel_strategy(35, 7),
        pattern in prop::sample::select(vec!["fff", "bff", "ffb", "fbf", "bfb"]),
        tau in 1.0f64..16.0,
    ) {
        let db = db_from(&[("R", r), ("S", s)]);
        let view = parse_adorned("Q(x,y,z) :- R(x,y), S(y,z)", pattern).unwrap();
        check_theorem1(&view, &db, &[1.0, 1.0], tau, 7);
    }

    /// Set intersection S_2^{bbf} over one random membership relation — the
    /// self-join case where both atoms share an index.
    #[test]
    fn theorem1_set_intersection_roundtrip(
        r in rel_strategy(45, 8),
        tau in 1.0f64..12.0,
    ) {
        let db = db_from(&[("R", r)]);
        let view = parse_adorned("Q(a, b, z) :- R(a, z), R(b, z)", "bbf").unwrap();
        check_theorem1(&view, &db, &[1.0, 1.0], tau, 8);
    }

    /// Theorem 2 on the 3-path with random per-bag delays: equivalence +
    /// duplicate freedom.
    #[test]
    fn theorem2_path3_roundtrip(
        r1 in rel_strategy(25, 5),
        r2 in rel_strategy(25, 5),
        r3 in rel_strategy(25, 5),
        d1 in 0.0f64..0.7,
        d2 in 0.0f64..0.7,
    ) {
        use cqc_query::{Var, VarSet};
        let db = db_from(&[("R1", r1), ("R2", r2), ("R3", r3)]);
        let view = parse_adorned(
            "P(x1,x2,x3,x4) :- R1(x1,x2), R2(x2,x3), R3(x3,x4)", "bffb",
        ).unwrap();
        let vs = |vars: &[u32]| -> VarSet { vars.iter().map(|&v| Var(v)).collect() };
        let td = cqc_decomp::TreeDecomposition::new(
            vec![vs(&[0, 3]), vs(&[0, 1, 2, 3]), ],
            vec![None, Some(0)],
        ).unwrap();
        let td2 = cqc_decomp::TreeDecomposition::new(
            vec![vs(&[0, 3]), vs(&[0, 1, 3]), vs(&[1, 2, 3])],
            vec![None, Some(0), Some(1)],
        ).unwrap();
        for (td, delta) in [(td, vec![0.0, d1]), (td2, vec![0.0, d1, d2])] {
            let s = Theorem2Structure::build(&view, &db, &td, &delta).unwrap();
            for req in all_requests(2, 5) {
                let expect = evaluate_view(&view, &db, &req).unwrap();
                let got: Vec<Tuple> = s.answer(&req).unwrap().collect();
                prop_assert_eq!(got.len(), expect.len(), "duplicates at {:?}", &req);
                prop_assert_eq!(sorted(got), expect, "mismatch at {:?}", &req);
            }
        }
    }

    /// Oracle cross-validation: the nested-loop oracle and the independent
    /// hash-join evaluator agree on random instances and patterns (so tests
    /// validated against either are validated against both).
    #[test]
    fn oracles_agree(
        r in rel_strategy(35, 7),
        s in rel_strategy(35, 7),
        t in rel_strategy(35, 7),
        pattern in prop::sample::select(vec!["fff", "bff", "fbf", "bbf", "bfb", "bbb"]),
    ) {
        let db = db_from(&[("R", r), ("S", s), ("T", t)]);
        let view = parse_adorned("Q(x,y,z) :- R(x,y), S(y,z), T(z,x)", pattern).unwrap();
        let nb = view.bound_head().len();
        for req in all_requests(nb, 7) {
            let a = cqc_join::naive::evaluate_view(&view, &db, &req).unwrap();
            let b = cqc_join::hashjoin::evaluate_view_hash(&view, &db, &req).unwrap();
            prop_assert_eq!(a, b, "req {:?}", &req);
        }
    }

    /// Heavy-pair bound (Prop. 7): the dictionary never stores more than
    /// (T(I)/τ_ℓ)^α entries per node.
    #[test]
    fn proposition_7_heavy_bound(
        r in rel_strategy(40, 6),
        s in rel_strategy(40, 6),
        tau in 1.0f64..10.0,
    ) {
        let db = db_from(&[("R", r), ("S", s)]);
        let view = parse_adorned("Q(x,y,z) :- R(x,y), S(y,z)", "bfb").unwrap();
        let st = Theorem1Structure::build(&view, &db, &[1.0, 1.0], tau).unwrap();
        if let Some(tree) = st.tree() {
            let alpha = st.alpha();
            for (w, node) in tree.nodes.iter().enumerate() {
                let thr = tau_level(tree.tau, tree.alpha, node.level);
                let count = st.dictionary().entries_of(w as u32).count() as f64;
                let bound = (node.t_value / thr).powf(alpha) + 1e-9;
                prop_assert!(
                    count <= bound,
                    "node {} holds {} heavy pairs > bound {}", w, count, bound
                );
            }
        }
    }
}
