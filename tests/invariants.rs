//! Structural invariants of the §4 machinery, checked end to end:
//! the delay-balanced tree partitions the output space, thresholds and
//! halving hold on random instances, and deeper Theorem 2 chains stay
//! equivalent to the oracle.

use cqc_common::value::Tuple;
use cqc_core::cost::CostEstimator;
use cqc_core::dbtree::{tau_level, DelayBalancedTree, Splitter};
use cqc_core::fbox::{lex_cmp_ranks, FInterval};
use cqc_core::theorem1::Theorem1Structure;
use cqc_core::theorem2::Theorem2Structure;
use cqc_join::naive::evaluate_view;
use cqc_lp::covers::slack;
use cqc_query::parser::parse_adorned;
use cqc_query::{Var, VarSet};
use cqc_storage::Database;
use std::cmp::Ordering;

fn vs(vars: &[u32]) -> VarSet {
    vars.iter().map(|&v| Var(v)).collect()
}

fn sorted(mut v: Vec<Tuple>) -> Vec<Tuple> {
    v.sort();
    v.dedup();
    v
}

/// Every leaf interval plus every internal split point, in in-order
/// traversal, must partition the root interval in strictly increasing
/// lexicographic order — the property behind Algorithm 2's ordered,
/// duplicate-free output.
fn check_tree_partitions(tree: &DelayBalancedTree) {
    // Collect the in-order sequence of (interval-or-point) pieces.
    enum Piece {
        Leaf(FInterval),
        Point(Vec<usize>),
    }
    let mut pieces: Vec<Piece> = Vec::new();
    // In-order traversal with an explicit stack.
    enum Frame {
        Enter(u32),
        Emit(u32),
    }
    let mut stack = vec![Frame::Enter(0)];
    while let Some(f) = stack.pop() {
        match f {
            Frame::Enter(w) => {
                let n = &tree.nodes[w as usize];
                match &n.beta {
                    None => pieces.push(Piece::Leaf(n.interval.clone())),
                    Some(_) => {
                        if let Some(r) = n.right {
                            stack.push(Frame::Enter(r));
                        }
                        stack.push(Frame::Emit(w));
                        if let Some(l) = n.left {
                            stack.push(Frame::Enter(l));
                        }
                    }
                }
            }
            Frame::Emit(w) => {
                let n = &tree.nodes[w as usize];
                pieces.push(Piece::Point(n.beta.clone().unwrap()));
            }
        }
    }
    // The pieces must tile the root interval exactly: strictly increasing,
    // gap-free coverage.
    let root = &tree.nodes[0].interval;
    let mut last_hi: Option<Vec<usize>> = None;
    for p in &pieces {
        let (lo, hi) = match p {
            Piece::Leaf(i) => (i.lo.clone(), i.hi.clone()),
            Piece::Point(b) => (b.clone(), b.clone()),
        };
        assert!(lex_cmp_ranks(&lo, &hi) != Ordering::Greater);
        match &last_hi {
            None => assert_eq!(lo, root.lo, "first piece starts at the root lo"),
            Some(prev) => {
                // lo must be the immediate successor of prev.
                assert_eq!(
                    lex_cmp_ranks(prev, &lo),
                    Ordering::Less,
                    "pieces must be strictly increasing"
                );
            }
        }
        last_hi = Some(hi);
    }
    assert_eq!(
        last_hi.as_ref(),
        Some(&root.hi),
        "last piece ends at root hi"
    );
}

fn running_example() -> (cqc_query::AdornedView, Database) {
    use cqc_storage::Relation;
    let mut db = Database::new();
    db.add(Relation::new(
        "R1",
        3,
        vec![
            vec![1, 1, 1],
            vec![1, 1, 2],
            vec![1, 2, 1],
            vec![2, 1, 1],
            vec![3, 1, 1],
        ],
    ))
    .unwrap();
    db.add(Relation::new(
        "R2",
        3,
        vec![
            vec![1, 1, 2],
            vec![1, 2, 1],
            vec![1, 2, 2],
            vec![2, 1, 1],
            vec![2, 1, 2],
        ],
    ))
    .unwrap();
    db.add(Relation::new(
        "R3",
        3,
        vec![
            vec![1, 1, 1],
            vec![1, 1, 2],
            vec![1, 2, 1],
            vec![2, 1, 1],
            vec![2, 1, 2],
        ],
    ))
    .unwrap();
    let view = parse_adorned(
        "Q(x, y, z, w1, w2, w3) :- R1(w1, x, y), R2(w2, y, z), R3(w3, x, z)",
        "fffbbb",
    )
    .unwrap();
    (view, db)
}

#[test]
fn balanced_tree_partitions_output_space() {
    let (view, db) = running_example();
    let est = CostEstimator::build(&view, &db, &[1.0, 1.0, 1.0], 2.0).unwrap();
    for tau in [1.0, 2.0, 4.0, 16.0] {
        let tree = DelayBalancedTree::build(&est, tau).unwrap();
        check_tree_partitions(&tree);
    }
}

#[test]
fn midpoint_tree_partitions_too() {
    // The ablation splitter loses the T/2 guarantee but must still
    // partition correctly.
    let (view, db) = running_example();
    let est = CostEstimator::build(&view, &db, &[1.0, 1.0, 1.0], 2.0).unwrap();
    for tau in [1.0, 4.0] {
        let tree = DelayBalancedTree::build_with_splitter(&est, tau, Splitter::Midpoint).unwrap();
        check_tree_partitions(&tree);
    }
}

#[test]
fn random_instance_tree_invariants() {
    let mut rng = cqc_workload::rng(31);
    for trial in 0..6 {
        let mut db = Database::new();
        db.add(cqc_workload::uniform_relation(&mut rng, "R", 2, 80, 12))
            .unwrap();
        db.add(cqc_workload::uniform_relation(&mut rng, "S", 2, 80, 12))
            .unwrap();
        let view = parse_adorned("Q(x,y,z) :- R(x,y), S(y,z)", "bfb").unwrap();
        let h = view.query().hypergraph();
        let w = [1.0, 1.0];
        let alpha = slack(&h, &w, view.free_vars());
        let est = CostEstimator::build(&view, &db, &w, alpha).unwrap();
        for tau in [1.0, 3.0, 9.0] {
            let Some(tree) = DelayBalancedTree::build(&est, tau) else {
                continue;
            };
            check_tree_partitions(&tree);
            for (i, node) in tree.nodes.iter().enumerate() {
                let thr = tau_level(tree.tau, tree.alpha, node.level);
                if node.beta.is_some() {
                    assert!(node.t_value >= thr - 1e-9, "trial {trial}");
                } else {
                    assert!(node.t_value < thr, "trial {trial}");
                }
                for c in [node.left, node.right].into_iter().flatten() {
                    assert!(
                        tree.nodes[c as usize].t_value <= node.t_value / 2.0 + 1e-6,
                        "halving, trial {trial}, node {i}"
                    );
                }
            }
        }
    }
}

/// A five-bag chain decomposition of the 6-path with mixed delays: the
/// deepest Theorem 2 configuration in the suite.
#[test]
fn deep_chain_theorem2_equivalence() {
    let view = parse_adorned(
        "P(v1,v2,v3,v4,v5,v6,v7) :- E1(v1,v2), E2(v2,v3), E3(v3,v4), E4(v4,v5), E5(v5,v6), E6(v6,v7)",
        "bfffffb",
    )
    .unwrap();
    let mut rng = cqc_workload::rng(33);
    let mut db = Database::new();
    for i in 1..=6 {
        db.add(cqc_workload::uniform_relation(
            &mut rng,
            &format!("E{i}"),
            2,
            60,
            8,
        ))
        .unwrap();
    }
    // Chain decomposition: {v1,v7} → {v1,v2,v7} → {v2,v3,v7} → … each bag
    // introducing one free variable.
    let td = cqc_decomp::TreeDecomposition::new(
        vec![
            vs(&[0, 6]),
            vs(&[0, 1, 6]),
            vs(&[1, 2, 6]),
            vs(&[2, 3, 6]),
            vs(&[3, 4, 6]),
            vs(&[4, 5, 6]),
        ],
        vec![None, Some(0), Some(1), Some(2), Some(3), Some(4)],
    )
    .unwrap();
    td.validate_connex(&view.query().hypergraph(), vs(&[0, 6]))
        .unwrap();
    for delta in [
        vec![0.0; 6],
        vec![0.0, 0.2, 0.0, 0.3, 0.0, 0.1],
        vec![0.0, 0.4, 0.4, 0.4, 0.4, 0.4],
    ] {
        let s = Theorem2Structure::build(&view, &db, &td, &delta).unwrap();
        for a in 0..8u64 {
            for b in 0..8u64 {
                let expect = evaluate_view(&view, &db, &[a, b]).unwrap();
                let got: Vec<Tuple> = s.answer(&[a, b]).unwrap().collect();
                assert_eq!(got.len(), expect.len(), "dups δ={delta:?} ({a},{b})");
                assert_eq!(sorted(got), expect, "δ={delta:?} ({a},{b})");
            }
        }
    }
}

/// Theorem 1 structures over self-joins (one relation, three atoms) keep
/// all invariants: the triangle over a single symmetric relation.
#[test]
fn self_join_triangle_invariants() {
    let mut rng = cqc_workload::rng(34);
    let mut db = Database::new();
    db.add(cqc_workload::graphs::friendship_graph(
        &mut rng, 30, 150, 1.0,
    ))
    .unwrap();
    let view = parse_adorned("V(x,y,z) :- R(x,y), R(y,z), R(z,x)", "fbf").unwrap();
    let s = Theorem1Structure::build(&view, &db, &[0.5, 0.5, 0.5], 3.0).unwrap();
    for b in 0..30u64 {
        let expect = evaluate_view(&view, &db, &[b]).unwrap();
        let got: Vec<Tuple> = s.answer(&[b]).unwrap().collect();
        assert_eq!(got, expect);
    }
    if let Some(tree) = s.tree() {
        check_tree_partitions(tree);
    }
}
