//! Golden tests: every worked example and figure of the paper, end to end
//! through the public API.
//!
//! Module-level unit tests already pin the internals (box decompositions,
//! split points, tree shapes, dictionary entries, LP values); these tests
//! re-derive the same facts through the crate boundaries a user would cross.

use cqc_common::heap::HeapSize;
use cqc_common::value::{Tuple, Value};
use cqc_core::compressed::{CompressedView, Strategy};
use cqc_core::theorem1::Theorem1Structure;
use cqc_core::theorem2::Theorem2Structure;
use cqc_decomp::{connex_fhw, decomposition_widths, search_connex, Objective, TreeDecomposition};
use cqc_join::baselines::{DirectView, MaterializedView};
use cqc_join::naive::evaluate_view;
use cqc_lp::covers::{rho_star, slack};
use cqc_lp::fractional::{min_delay_cover, min_space_cover};
use cqc_query::{Var, VarSet};
use cqc_storage::{Database, Relation};
use cqc_workload::queries;

fn vs(vars: &[u32]) -> VarSet {
    vars.iter().map(|&v| Var(v)).collect()
}

fn sorted(mut v: Vec<Tuple>) -> Vec<Tuple> {
    v.sort();
    v.dedup();
    v
}

/// The Example 13 database.
fn running_db() -> Database {
    let mut db = Database::new();
    db.add(Relation::new(
        "R1",
        3,
        vec![
            vec![1, 1, 1],
            vec![1, 1, 2],
            vec![1, 2, 1],
            vec![2, 1, 1],
            vec![3, 1, 1],
        ],
    ))
    .unwrap();
    db.add(Relation::new(
        "R2",
        3,
        vec![
            vec![1, 1, 2],
            vec![1, 2, 1],
            vec![1, 2, 2],
            vec![2, 1, 1],
            vec![2, 1, 2],
        ],
    ))
    .unwrap();
    db.add(Relation::new(
        "R3",
        3,
        vec![
            vec![1, 1, 1],
            vec![1, 1, 2],
            vec![1, 2, 1],
            vec![2, 1, 1],
            vec![2, 1, 2],
        ],
    ))
    .unwrap();
    db
}

/// Examples 4, 13, 14, 15 and Figure 3, through the public builder: the
/// running example at u = (1,1,1), τ = 4 has slack 2, the five-node tree of
/// Figure 3, and answers every access request correctly.
#[test]
fn running_example_end_to_end() {
    let view = queries::running_example().unwrap();
    let db = running_db();
    let s = Theorem1Structure::build(&view, &db, &[1.0, 1.0, 1.0], 4.0).unwrap();

    assert!(
        (s.alpha() - 2.0).abs() < 1e-9,
        "Example 4: slack α(V_f) = 2"
    );
    let stats = s.stats();
    assert_eq!(stats.tree_nodes, 5, "Figure 3: five nodes");
    assert_eq!(stats.tree_depth, 2);

    // Example 15: exactly two dictionary entries for v_b = (1,1,1).
    let tree = s.tree().unwrap();
    let rr = tree.nodes[0].right.unwrap();
    assert_eq!(s.dictionary().get(0, &[1, 1, 1]), Some(true));
    assert_eq!(s.dictionary().get(rr, &[1, 1, 1]), Some(true));

    // Query answering: lexicographic output, matching the oracle.
    let got: Vec<Tuple> = s.answer(&[1, 1, 1]).unwrap().collect();
    assert_eq!(got, vec![vec![1, 1, 2], vec![1, 2, 1], vec![1, 2, 2]]);
    for w1 in 1..=3u64 {
        for w2 in 1..=2u64 {
            for w3 in 1..=2u64 {
                let vb = [w1, w2, w3];
                let expect = evaluate_view(&view, &db, &vb).unwrap();
                let got: Vec<Tuple> = s.answer(&vb).unwrap().collect();
                assert_eq!(got, expect, "v_b = {vb:?}");
            }
        }
    }
}

/// Example 1 / Proposition 3 on the triangle view `V^bfb`: the structure
/// interpolates between the two extremes, space shrinking monotonically
/// with τ while answers stay exact.
#[test]
fn example_1_triangle_tradeoff() {
    let view = queries::triangle_self("bfb").unwrap();
    let mut r = cqc_workload::rng(20);
    let graph = cqc_workload::graphs::friendship_graph(&mut r, 60, 400, 0.8);
    let mut db = Database::new();
    db.add(graph).unwrap();

    let mat = MaterializedView::build(&view, &db).unwrap();
    let direct = DirectView::build(&view, &db).unwrap();

    let mut last_space = usize::MAX;
    for tau in [1.0, 4.0, 16.0, 64.0] {
        let s = Theorem1Structure::build(&view, &db, &[0.5, 0.5, 0.5], tau).unwrap();
        let nonlinear = s.stats().tree_nodes + s.stats().dict_entries;
        assert!(nonlinear <= last_space, "space must shrink as τ grows");
        last_space = nonlinear;
        // Correctness on a witness sample.
        let reqs = cqc_workload::witness_requests(&mut r, &view, &db, 40);
        for req in reqs {
            let expect = evaluate_view(&view, &db, &req).unwrap();
            let got: Vec<Tuple> = s.answer(&req).unwrap().collect();
            assert_eq!(got, expect, "τ={tau} req={req:?}");
        }
    }
    // Baselines bracket the structure conceptually: materialization stores
    // the whole result, direct stores only base indexes.
    assert!(mat.heap_bytes() > 0 && direct.heap_bytes() > 0);
}

/// Example 6: the Loomis–Whitney join LW_3 has ρ* = 3/2; with linear space
/// the optimizer picks delay exponent 1/(n−1) = 1/2, and the structure at
/// the uniform cover answers correctly.
#[test]
fn example_6_loomis_whitney() {
    let view = queries::loomis_whitney(3, "bff").unwrap();
    let h = view.query().hypergraph();
    assert!((rho_star(&h, h.all_vars()).unwrap() - 1.5).abs() < 1e-6);
    let c = min_delay_cover(&h, view.free_vars(), &[1.0, 1.0, 1.0], 1.0).unwrap();
    assert!((c.log_tau - 0.5).abs() < 1e-5, "τ = |D|^{{1/(n-1)}}");

    let mut r = cqc_workload::rng(21);
    let mut db = Database::new();
    for i in 1..=3 {
        db.add(cqc_workload::uniform_relation(
            &mut r,
            &format!("S{i}"),
            2,
            80,
            12,
        ))
        .unwrap();
    }
    let s = Theorem1Structure::build(&view, &db, &[0.5, 0.5, 0.5], 3.0).unwrap();
    for req in cqc_workload::random_requests(&mut r, &view, &db, 60) {
        let expect = evaluate_view(&view, &db, &req).unwrap();
        let got: Vec<Tuple> = s.answer(&req).unwrap().collect();
        assert_eq!(got, expect);
    }
}

/// Example 7: the star join S_n^{b..bf} at the all-ones cover has slack
/// α = n, which the structure exploits (τ^α shrinkage of the dictionary).
#[test]
fn example_7_star_slack() {
    for n in [2usize, 3] {
        let pattern = "b".repeat(n) + "f";
        let view = queries::star(n, &pattern).unwrap();
        let h = view.query().hypergraph();
        let w = vec![1.0; n];
        assert!((slack(&h, &w, view.free_vars()) - n as f64).abs() < 1e-9);

        let mut r = cqc_workload::rng(22);
        let mut db = Database::new();
        for i in 1..=n {
            db.add(cqc_workload::uniform_relation(
                &mut r,
                &format!("R{i}"),
                2,
                120,
                15,
            ))
            .unwrap();
        }
        let s = Theorem1Structure::build(&view, &db, &w, 4.0).unwrap();
        assert!((s.alpha() - n as f64).abs() < 1e-9);
        for req in cqc_workload::witness_requests(&mut r, &view, &db, 40) {
            let expect = evaluate_view(&view, &db, &req).unwrap();
            let got: Vec<Tuple> = s.answer(&req).unwrap().collect();
            assert_eq!(got, expect, "n={n} req={req:?}");
        }
    }
}

/// §3.1 / [13]: the fast-set-intersection structure is the special case
/// S_2^{bbf} over a membership relation; `exists` answers the boolean
/// 2-SetDisjointness question.
#[test]
fn set_intersection_special_case() {
    let view = queries::set_intersection().unwrap();
    let mut r = cqc_workload::rng(23);
    let zipf = cqc_workload::Zipf::new(40, 1.1);
    let rel = cqc_workload::gen::zipf_pairs(&mut r, "R", 300, 25, &zipf);
    let mut db = Database::new();
    db.add(rel).unwrap();

    let s = Theorem1Structure::build(&view, &db, &[1.0, 1.0], 3.0).unwrap();
    assert!((s.alpha() - 2.0).abs() < 1e-9, "α = k = 2");
    for s1 in 0..25u64 {
        for s2 in 0..25u64 {
            let expect = evaluate_view(&view, &db, &[s1, s2]).unwrap();
            let got: Vec<Tuple> = s.answer(&[s1, s2]).unwrap().collect();
            assert_eq!(got, expect);
            assert_eq!(s.exists(&[s1, s2]).unwrap(), !expect.is_empty());
        }
    }
}

/// Example 9 + Figure 2: the right-hand decomposition of the path-6 query
/// has δ-width 5/3 and δ-height 1/2 under δ = (1/3, 1/6, 0), and fhw 2 at
/// δ = 0.
#[test]
fn example_9_figure_2_widths() {
    let h = cqc_query::Hypergraph::new(7, (0..6).map(|i| vs(&[i, i + 1])).collect());
    let td = TreeDecomposition::new(
        vec![
            vs(&[0, 4, 5]),
            vs(&[1, 3, 0, 4]),
            vs(&[2, 1, 3]),
            vs(&[6, 5]),
        ],
        vec![None, Some(0), Some(1), Some(0)],
    )
    .unwrap();
    td.validate_connex(&h, vs(&[0, 4, 5])).unwrap();
    let w = decomposition_widths(&h, &td, &[0.0, 1.0 / 3.0, 1.0 / 6.0, 0.0]).unwrap();
    assert!((w.delta_width - 5.0 / 3.0).abs() < 1e-6);
    assert!((w.delta_height - 0.5).abs() < 1e-9);
    assert!((w.u_star - 2.0).abs() < 1e-6);
    assert!((connex_fhw(&h, &td).unwrap() - 2.0).abs() < 1e-6);
}

/// Example 10: for the path query P_4^{bfffb}, Theorem 1's direct tradeoff
/// needs a ⌈n/2⌉ = 2 exponent, while the paper's two-level decomposition
/// realizes space exponent 2 with *zero* delay, and smaller budgets trade
/// height for space. Both answer correctly.
#[test]
fn example_10_path_theorem1_vs_theorem2() {
    let n = 4;
    let view = queries::path(n, &queries::path_pattern(n)).unwrap();
    let mut r = cqc_workload::rng(24);
    let mut db = Database::new();
    for i in 1..=n {
        db.add(cqc_workload::uniform_relation(
            &mut r,
            &format!("R{i}"),
            2,
            90,
            10,
        ))
        .unwrap();
    }

    // Theorem 1 path.
    let t1 = Theorem1Structure::build(&view, &db, &[1.0, 0.0, 1.0, 0.0], 4.0);
    // (1,0,1,0) covers x1..x5? x2 is covered by R1, x3 by... R2 has weight
    // 0 and R3 covers x3,x4 at 1; x5 by R4 at 0 — not a cover; use
    // (1,1,1,1) instead (ρ = 4 ≥ ⌈n/2⌉; the point here is correctness).
    assert!(t1.is_err() || t1.is_ok());
    let t1 = Theorem1Structure::build(&view, &db, &[1.0, 1.0, 1.0, 1.0], 4.0).unwrap();

    // Theorem 2 at the paper's decomposition.
    let td = TreeDecomposition::new(
        vec![vs(&[0, 4]), vs(&[0, 1, 3, 4]), vs(&[1, 2, 3])],
        vec![None, Some(0), Some(1)],
    )
    .unwrap();
    let t2_zero = Theorem2Structure::build(&view, &db, &td, &[0.0; 3]).unwrap();
    let t2_delay = Theorem2Structure::build(&view, &db, &td, &[0.0, 0.4, 0.2]).unwrap();
    // Delayed bags store strictly less than materialized ones.
    assert!(t2_delay.stats().materialized_tuples <= t2_zero.stats().materialized_tuples);

    for req in cqc_workload::witness_requests(&mut r, &view, &db, 50) {
        let expect = evaluate_view(&view, &db, &req).unwrap();
        let a: Vec<Tuple> = t1.answer(&req).unwrap().collect();
        let b: Vec<Tuple> = t2_zero.answer(&req).unwrap().collect();
        let c: Vec<Tuple> = t2_delay.answer(&req).unwrap().collect();
        assert_eq!(a, expect, "theorem 1");
        assert_eq!(sorted(b), expect, "theorem 2 δ=0");
        assert_eq!(sorted(c), expect, "theorem 2 mixed δ");
    }
}

/// Examples 16/17 and Figure 7 through the search API.
#[test]
fn appendix_d_width_relations() {
    // Example 16: R(x,y), S(y,z), V_b = {x,z}: fhw(H) = 1 < fhw(H|V_b) = 2.
    let h = cqc_query::Hypergraph::new(3, vec![vs(&[0, 1]), vs(&[1, 2])]);
    let free_fhw = search_connex(&h, VarSet::EMPTY, Objective::MinimizeWidth).unwrap();
    assert!((free_fhw.score - 1.0).abs() < 1e-6);
    let bound_fhw = search_connex(&h, vs(&[0, 2]), Objective::MinimizeWidth).unwrap();
    assert!((bound_fhw.score - 2.0).abs() < 1e-6);

    // Figure 7: fhw(H) = 2 while fhw(H | V_b) = 3/2.
    let h7 = cqc_query::Hypergraph::new(
        5,
        vec![
            vs(&[0, 1]),
            vs(&[1, 2]),
            vs(&[2, 3]),
            vs(&[3, 0]),
            vs(&[0, 4]),
            vs(&[1, 4]),
        ],
    );
    let w = search_connex(&h7, vs(&[0, 1, 2, 3]), Objective::MinimizeWidth).unwrap();
    assert!(
        (w.score - 1.5).abs() < 1e-6,
        "fhw(H|Vb) = 3/2, got {}",
        w.score
    );
}

/// Figure 2, left side: the C = ∅ decomposition of the 6-path (the plain
/// fractional-hypertree decomposition used for full enumeration) validates,
/// has width 1 (acyclic), and drives a linear-size factorized
/// representation.
#[test]
fn figure_2_left_decomposition() {
    let h = cqc_query::Hypergraph::new(7, (0..6).map(|i| vs(&[i, i + 1])).collect());
    assert!(h.is_acyclic());
    // Chain of the six edges under an empty root.
    let td = TreeDecomposition::new(
        vec![
            VarSet::EMPTY,
            vs(&[0, 1]),
            vs(&[1, 2]),
            vs(&[2, 3]),
            vs(&[3, 4]),
            vs(&[4, 5]),
            vs(&[5, 6]),
        ],
        vec![None, Some(0), Some(1), Some(2), Some(3), Some(4), Some(5)],
    )
    .unwrap();
    td.validate_connex(&h, VarSet::EMPTY).unwrap();
    assert!(
        (connex_fhw(&h, &td).unwrap() - 1.0).abs() < 1e-6,
        "acyclic width 1"
    );

    // Drive Prop. 2 through it: linear-size, constant-delay full
    // enumeration of the 6-path query.
    let view = cqc_query::parser::parse_adorned(
        "P(v1,v2,v3,v4,v5,v6,v7) :- E1(v1,v2), E2(v2,v3), E3(v3,v4), E4(v4,v5), E5(v5,v6), E6(v6,v7)",
        "fffffff",
    )
    .unwrap();
    let mut r = cqc_workload::rng(28);
    let mut db = Database::new();
    for i in 1..=6 {
        db.add(cqc_workload::uniform_relation(
            &mut r,
            &format!("E{i}"),
            2,
            60,
            9,
        ))
        .unwrap();
    }
    let rep = cqc_factorized::FactorizedRepresentation::build(&view, &db, &td).unwrap();
    assert!(
        rep.materialized_tuples() <= db.size(),
        "semijoin-reduced ≤ |D|"
    );
    let expect = evaluate_view(&view, &db, &[]).unwrap();
    let got: Vec<Tuple> = rep.answer(&[]).unwrap().collect();
    assert_eq!(sorted(got), expect);
}

/// Proposition 1: all-bound views answer with membership checks in linear
/// space.
#[test]
fn proposition_1_bound_only() {
    let view = queries::triangle_self("bbb").unwrap();
    let mut r = cqc_workload::rng(25);
    let mut db = Database::new();
    db.add(cqc_workload::graphs::friendship_graph(&mut r, 40, 200, 0.7))
        .unwrap();
    let cv = CompressedView::build(
        &view,
        &db,
        Strategy::Auto {
            space_budget_exp: None,
        },
    )
    .unwrap();
    assert_eq!(cv.strategy_name(), "bound-only (Prop 1)");
    for req in cqc_workload::witness_requests(&mut r, &view, &db, 100) {
        let expect = !evaluate_view(&view, &db, &req).unwrap().is_empty();
        assert_eq!(cv.exists(&req).unwrap(), expect);
    }
}

/// Propositions 2 & 4: acyclic full enumeration through the factorized
/// strategy is linear-size; the triangle needs |D|^{3/2}-style bag blowup.
#[test]
fn propositions_2_and_4_factorized() {
    let mut r = cqc_workload::rng(26);
    // Acyclic: the 3-path, full enumeration.
    let view = queries::path(3, "ffff").unwrap();
    let mut db = Database::new();
    for i in 1..=3 {
        db.add(cqc_workload::uniform_relation(
            &mut r,
            &format!("R{i}"),
            2,
            100,
            14,
        ))
        .unwrap();
    }
    let cv = CompressedView::build(&view, &db, Strategy::Factorized).unwrap();
    if let CompressedView::Factorized(f) = &cv {
        // Linear-ish: bag tuples bounded by Σ|R_F| after semijoins (acyclic
        // bags are single edges up to subsumption).
        assert!(f.materialized_tuples() <= 2 * db.size());
    } else {
        panic!("expected factorized");
    }
    let expect = evaluate_view(&view, &db, &[]).unwrap();
    let got: Vec<Tuple> = cv.answer(&[]).unwrap().collect();
    assert_eq!(sorted(got), expect);
}

/// §3.3: k-SetDisjointness through first-answer probes at several space
/// points — the boolean query costs Õ(τ) at space Õ(N^k/τ^k).
#[test]
fn k_set_disjointness_probes() {
    let view = queries::k_set_disjointness(3).unwrap();
    let mut r = cqc_workload::rng(27);
    let zipf = cqc_workload::Zipf::new(30, 1.0);
    let rel = cqc_workload::gen::zipf_pairs(&mut r, "R", 250, 20, &zipf);
    let mut db = Database::new();
    db.add(rel).unwrap();
    for tau in [1.0, 4.0, 16.0] {
        let s = Theorem1Structure::build(&view, &db, &[1.0, 1.0, 1.0], tau).unwrap();
        assert!((s.alpha() - 3.0).abs() < 1e-9);
        for _ in 0..60 {
            let a = r_range(&mut r, 20);
            let b = r_range(&mut r, 20);
            let c = r_range(&mut r, 20);
            let expect = !evaluate_view(&view, &db, &[a, b, c]).unwrap().is_empty();
            assert_eq!(s.exists(&[a, b, c]).unwrap(), expect);
        }
    }
}

fn r_range(r: &mut rand::rngs::StdRng, hi: u64) -> Value {
    use rand::Rng;
    r.gen_range(0..hi)
}

/// §6 end-to-end: MinDelayCover and MinSpaceCover drive the public
/// `Strategy::Tradeoff { weights: None }` path, and the tradeoff curve is
/// monotone.
#[test]
fn section_6_optimizers_monotone() {
    let view = queries::triangle_self("fff").unwrap();
    let h = view.query().hypergraph();
    let sizes = [1.0, 1.0, 1.0];
    let mut last_tau = f64::INFINITY;
    for budget in [1.0, 1.2, 1.5] {
        let c = min_delay_cover(&h, view.free_vars(), &sizes, budget).unwrap();
        assert!(c.log_tau <= last_tau + 1e-9, "more space, less delay");
        last_tau = c.log_tau;
    }
    let mut last_space = f64::INFINITY;
    for delay in [0.0, 0.25, 0.5] {
        let c = min_space_cover(&h, view.free_vars(), &sizes, delay).unwrap();
        assert!(c.log_space <= last_space + 1e-9, "more delay, less space");
        last_space = c.log_space;
    }
}
