//! Cross-crate equivalence sweep: every strategy × every paper query family
//! × seeded random databases must agree with the naive oracle on every
//! sampled access request (and on full enumeration where applicable).

use cqc_common::value::Tuple;
use cqc_core::compressed::{CompressedView, Strategy};
use cqc_join::naive::evaluate_view;
use cqc_query::AdornedView;
use cqc_storage::Database;
use cqc_workload::{queries, random_requests, witness_requests};

fn sorted(mut v: Vec<Tuple>) -> Vec<Tuple> {
    v.sort();
    v.dedup();
    v
}

/// One scenario: a view + database + request batch.
struct Scenario {
    name: &'static str,
    view: AdornedView,
    db: Database,
}

fn scenarios() -> Vec<Scenario> {
    let mut out = Vec::new();
    let mut r = cqc_workload::rng(99);

    // Triangle over one symmetric relation, three adornments.
    for (name, pattern) in [
        ("triangle-self/bfb", "bfb"),
        ("triangle-self/fff", "fff"),
        ("triangle-self/bff", "bff"),
    ] {
        let mut db = Database::new();
        db.add(cqc_workload::graphs::friendship_graph(&mut r, 40, 220, 0.9))
            .unwrap();
        out.push(Scenario {
            name,
            view: queries::triangle_self(pattern).unwrap(),
            db,
        });
    }

    // Triangle over distinct relations.
    {
        let mut db = Database::new();
        for n in ["R", "S", "T"] {
            db.add(cqc_workload::uniform_relation(&mut r, n, 2, 120, 18))
                .unwrap();
        }
        out.push(Scenario {
            name: "triangle/fbf",
            view: queries::triangle("fbf").unwrap(),
            db,
        });
    }

    // Star joins.
    for (n, pattern) in [(2usize, "bbf"), (3, "bbbf"), (3, "fbfb")] {
        let mut db = Database::new();
        for i in 1..=n {
            db.add(cqc_workload::uniform_relation(
                &mut r,
                &format!("R{i}"),
                2,
                110,
                16,
            ))
            .unwrap();
        }
        out.push(Scenario {
            name: "star",
            view: queries::star(n, pattern).unwrap(),
            db,
        });
    }

    // Paths.
    for (n, pattern) in [(3usize, "bffb"), (4, "bfffb"), (3, "ffff")] {
        let mut db = Database::new();
        for i in 1..=n {
            db.add(cqc_workload::uniform_relation(
                &mut r,
                &format!("R{i}"),
                2,
                90,
                11,
            ))
            .unwrap();
        }
        out.push(Scenario {
            name: "path",
            view: queries::path(n, pattern).unwrap(),
            db,
        });
    }

    // Loomis–Whitney.
    {
        let mut db = Database::new();
        for i in 1..=3 {
            db.add(cqc_workload::uniform_relation(
                &mut r,
                &format!("S{i}"),
                2,
                80,
                10,
            ))
            .unwrap();
        }
        out.push(Scenario {
            name: "lw3/fbf",
            view: queries::loomis_whitney(3, "fbf").unwrap(),
            db,
        });
    }

    // 4-cycle (fhw = 2, non-acyclic, beyond the triangle).
    {
        let mut db = Database::new();
        for i in 1..=4 {
            db.add(cqc_workload::uniform_relation(
                &mut r,
                &format!("R{i}"),
                2,
                90,
                12,
            ))
            .unwrap();
        }
        out.push(Scenario {
            name: "cycle4/bfbf",
            view: queries::cycle(4, "bfbf").unwrap(),
            db,
        });
    }

    // Running example over random ternary relations.
    {
        let mut db = Database::new();
        for i in 1..=3 {
            db.add(cqc_workload::uniform_relation(
                &mut r,
                &format!("R{i}"),
                3,
                100,
                8,
            ))
            .unwrap();
        }
        out.push(Scenario {
            name: "running/fffbbb",
            view: queries::running_example().unwrap(),
            db,
        });
    }

    out
}

fn strategies() -> Vec<(&'static str, Strategy)> {
    vec![
        ("direct", Strategy::Direct),
        ("materialize", Strategy::Materialize),
        (
            "tradeoff-tau1",
            Strategy::Tradeoff {
                tau: 1.0,
                weights: None,
            },
        ),
        (
            "tradeoff-tau4",
            Strategy::Tradeoff {
                tau: 4.0,
                weights: None,
            },
        ),
        (
            "tradeoff-tau32",
            Strategy::Tradeoff {
                tau: 32.0,
                weights: None,
            },
        ),
        ("factorized", Strategy::Factorized),
        (
            "auto-budget1.4",
            Strategy::Auto {
                space_budget_exp: Some(1.4),
            },
        ),
        (
            "decomposed-2.0",
            Strategy::Decomposed {
                space_budget_exp: 2.0,
            },
        ),
    ]
}

#[test]
fn every_strategy_agrees_with_the_oracle_everywhere() {
    let mut r = cqc_workload::rng(7);
    for sc in scenarios() {
        let mut requests = witness_requests(&mut r, &sc.view, &sc.db, 25);
        requests.extend(random_requests(&mut r, &sc.view, &sc.db, 25));
        // Pre-compute oracle answers once per scenario.
        let expected: Vec<Vec<Tuple>> = requests
            .iter()
            .map(|req| evaluate_view(&sc.view, &sc.db, req).unwrap())
            .collect();
        for (sname, strat) in strategies() {
            let cv = CompressedView::build(&sc.view, &sc.db, strat.clone())
                .unwrap_or_else(|e| panic!("{} / {sname}: build failed: {e}", sc.name));
            for (req, expect) in requests.iter().zip(&expected) {
                let got: Vec<Tuple> = cv.answer(req).unwrap().collect();
                assert_eq!(
                    &sorted(got.clone()),
                    expect,
                    "{} / {sname} req {req:?}",
                    sc.name
                );
                assert_eq!(got.len(), expect.len(), "{} / {sname}: duplicates", sc.name);
                assert_eq!(
                    cv.exists(req).unwrap(),
                    !expect.is_empty(),
                    "{} / {sname}: exists",
                    sc.name
                );
            }
        }
    }
}

/// Theorem 1's lexicographic-order contract holds across the sweep (the
/// other structures only promise duplicate-freedom).
#[test]
fn theorem1_output_is_lexicographic() {
    let mut r = cqc_workload::rng(8);
    for sc in scenarios() {
        let cv = CompressedView::build(
            &sc.view,
            &sc.db,
            Strategy::Tradeoff {
                tau: 2.0,
                weights: None,
            },
        )
        .unwrap();
        for req in witness_requests(&mut r, &sc.view, &sc.db, 15) {
            let got: Vec<Tuple> = cv.answer(&req).unwrap().collect();
            for w in got.windows(2) {
                assert!(w[0] < w[1], "{}: out of order", sc.name);
            }
        }
    }
}

/// The explicit-decomposition strategy: the paper's Example 10
/// decomposition handed straight to the public API.
#[test]
fn decomposed_explicit_strategy() {
    use cqc_decomp::TreeDecomposition;
    use cqc_query::{Var, VarSet};
    let vs = |vars: &[u32]| -> VarSet { vars.iter().map(|&v| Var(v)).collect() };
    let mut r = cqc_workload::rng(55);
    let mut db = Database::new();
    for i in 1..=4 {
        db.add(cqc_workload::uniform_relation(
            &mut r,
            &format!("R{i}"),
            2,
            80,
            10,
        ))
        .unwrap();
    }
    let view = queries::path(4, "bfffb").unwrap();
    let td = TreeDecomposition::new(
        vec![vs(&[0, 4]), vs(&[0, 1, 3, 4]), vs(&[1, 2, 3])],
        vec![None, Some(0), Some(1)],
    )
    .unwrap();
    let cv = CompressedView::build(
        &view,
        &db,
        Strategy::DecomposedExplicit {
            td,
            delta: vec![0.0, 0.3, 0.2],
        },
    )
    .unwrap();
    assert!(cv.describe().contains("theorem 2"), "{}", cv.describe());
    for req in witness_requests(&mut r, &view, &db, 30) {
        let expect = evaluate_view(&view, &db, &req).unwrap();
        let got: Vec<Tuple> = cv.answer(&req).unwrap().collect();
        assert_eq!(sorted(got), expect);
    }
}

/// Building twice from the same inputs yields identical structures
/// (determinism matters for reproducible experiments).
#[test]
fn builds_are_deterministic() {
    let sc = &scenarios()[0];
    let a = CompressedView::build(
        &sc.view,
        &sc.db,
        Strategy::Tradeoff {
            tau: 3.0,
            weights: None,
        },
    )
    .unwrap();
    let b = CompressedView::build(
        &sc.view,
        &sc.db,
        Strategy::Tradeoff {
            tau: 3.0,
            weights: None,
        },
    )
    .unwrap();
    let mut r = cqc_workload::rng(4);
    for req in random_requests(&mut r, &sc.view, &sc.db, 20) {
        let x: Vec<Tuple> = a.answer(&req).unwrap().collect();
        let y: Vec<Tuple> = b.answer(&req).unwrap().collect();
        assert_eq!(x, y);
    }
}
