//! The paper's §1 application scenarios, end to end.

use cqc_common::heap::HeapSize;
use cqc_common::value::Tuple;
use cqc_core::compressed::{CompressedView, Strategy};
use cqc_join::naive::evaluate_view;
use cqc_query::parser::parse_adorned;
use cqc_storage::{Database, Interner, Relation};
use cqc_workload::queries;

fn sorted(mut v: Vec<Tuple>) -> Vec<Tuple> {
    v.sort();
    v.dedup();
    v
}

/// Example 1: mutual friends of pairs of friends in a social network,
/// served from a compressed triangle view at several τ points.
#[test]
fn social_network_mutual_friends() {
    let mut r = cqc_workload::rng(50);
    let graph = cqc_workload::graphs::friendship_graph(&mut r, 80, 600, 1.0);
    let mut db = Database::new();
    db.add(graph).unwrap();
    let view = queries::triangle_self("bfb").unwrap();

    let mut spaces = Vec::new();
    for tau in [1.0, 8.0, 64.0] {
        let cv = CompressedView::build(
            &view,
            &db,
            Strategy::Tradeoff {
                tau,
                weights: Some(vec![0.5, 0.5, 0.5]),
            },
        )
        .unwrap();
        spaces.push(cv.heap_bytes());
        // Friend pairs from actual edges: the intended access pattern.
        let rel = db.get("R").unwrap();
        for i in (0..rel.len()).step_by(7) {
            let row = rel.row(i);
            let req = [row[0], row[1]];
            let expect = evaluate_view(&view, &db, &req).unwrap();
            let got: Vec<Tuple> = cv.answer(&req).unwrap().collect();
            assert_eq!(got, expect, "τ={tau} pair {req:?}");
        }
    }
    assert!(
        spaces.windows(2).all(|w| w[0] >= w[1]),
        "space must not grow with τ: {spaces:?}"
    );
}

/// §1 graph analytics: the co-author relationship over an author–paper
/// table. The paper's V^bf(x,y) projects the paper away; projections are
/// future work in the paper (§8) and rejected here, so the example serves
/// the full witness variant V^bff(x, y, p) — "co-authors of x, with the
/// shared paper" — which answers the same neighborhood requests.
#[test]
fn coauthor_graph_neighborhoods() {
    let mut r = cqc_workload::rng(51);
    let ap = cqc_workload::graphs::author_paper(&mut r, 60, 150, 700, 1.05);
    let mut db = Database::new();
    db.add(ap).unwrap();

    // Full (projection-free) co-author view.
    let view = parse_adorned("V(x, y, p) :- R(x, p), R(y, p)", "bff").unwrap();

    // The projection variant is rejected, as documented.
    let proj = queries::coauthor().unwrap();
    assert!(CompressedView::build(&proj, &db, Strategy::Direct).is_err());

    let cv = CompressedView::build(
        &view,
        &db,
        Strategy::Tradeoff {
            tau: 4.0,
            weights: None,
        },
    )
    .unwrap();
    let baseline = CompressedView::build(&view, &db, Strategy::Materialize).unwrap();
    for author in 0..60u64 {
        let expect = evaluate_view(&view, &db, &[author]).unwrap();
        let got: Vec<Tuple> = cv.answer(&[author]).unwrap().collect();
        assert_eq!(got, expect, "author {author}");
        let got_b: Vec<Tuple> = baseline.answer(&[author]).unwrap().collect();
        assert_eq!(sorted(got_b), expect);
        // Distinct co-authors derived client-side (the projection).
        let mut coauthors: Vec<u64> = got.iter().map(|t| t[0]).collect();
        coauthors.sort_unstable();
        coauthors.dedup();
        let mut expect_co: Vec<u64> = expect.iter().map(|t| t[0]).collect();
        expect_co.sort_unstable();
        expect_co.dedup();
        assert_eq!(coauthors, expect_co);
    }
    // Space accounting is available on both representations (absolute
    // constants at this toy scale are not meaningful; EXP-1/EXP-5 measure
    // the scaling shapes at size).
    assert!(cv.heap_bytes() > 0 && baseline.heap_bytes() > 0);
}

/// §1 statistical inference (Felix): an adorned rule view materialized at
/// several points of the continuum instead of the all-or-nothing choice.
#[test]
fn felix_style_materialization_continuum() {
    // Rule body: Mention(doc, person), Friend(person, other),
    // Works(other, org) — accessed as: given doc and org, enumerate the
    // (person, other) chains.
    let mut r = cqc_workload::rng(52);
    let mut db = Database::new();
    db.add(cqc_workload::uniform_relation(
        &mut r, "Mention", 2, 220, 25,
    ))
    .unwrap();
    db.add(cqc_workload::uniform_relation(&mut r, "Friend", 2, 220, 25))
        .unwrap();
    db.add(cqc_workload::uniform_relation(&mut r, "Works", 2, 220, 25))
        .unwrap();
    let view = parse_adorned(
        "Rule(doc, org, person, other) :- Mention(doc, person), Friend(person, other), Works(other, org)",
        "bbff",
    )
    .unwrap();

    let lazy = CompressedView::build(&view, &db, Strategy::Direct).unwrap();
    let eager = CompressedView::build(&view, &db, Strategy::Materialize).unwrap();
    let partial_small = CompressedView::build(
        &view,
        &db,
        Strategy::Auto {
            space_budget_exp: Some(1.1),
        },
    )
    .unwrap();
    let partial_large = CompressedView::build(
        &view,
        &db,
        Strategy::Auto {
            space_budget_exp: Some(2.0),
        },
    )
    .unwrap();

    let reqs = cqc_workload::witness_requests(&mut r, &view, &db, 60);
    for req in &reqs {
        let expect = evaluate_view(&view, &db, req).unwrap();
        for (name, cv) in [
            ("lazy", &lazy),
            ("eager", &eager),
            ("partial-small", &partial_small),
            ("partial-large", &partial_large),
        ] {
            let got: Vec<Tuple> = cv.answer(req).unwrap().collect();
            assert_eq!(sorted(got), expect, "{name} req {req:?}");
        }
    }
}

/// The interner round-trips real string identities into the engine and
/// back — the loading path every example binary uses.
#[test]
fn interned_string_pipeline() {
    let mut interner = Interner::new();
    let edges = [
        ("alice", "bob"),
        ("bob", "carol"),
        ("carol", "alice"),
        ("alice", "dave"),
        ("dave", "bob"),
    ];
    let mut pairs = Vec::new();
    for (a, b) in edges {
        let (a, b) = (interner.intern(a), interner.intern(b));
        pairs.push((a, b));
        pairs.push((b, a));
    }
    let mut db = Database::new();
    db.add(Relation::from_pairs("R", pairs)).unwrap();
    let view = queries::triangle_self("bfb").unwrap();
    let cv = CompressedView::build(
        &view,
        &db,
        Strategy::Tradeoff {
            tau: 1.0,
            weights: None,
        },
    )
    .unwrap();
    let alice = interner.get("alice").unwrap();
    let bob = interner.get("bob").unwrap();
    let mutuals: Vec<String> = cv
        .answer(&[alice, bob])
        .unwrap()
        .map(|t| interner.resolve(t[0]).unwrap().to_string())
        .collect();
    // alice–bob triangle closers: carol (a–b–c–a) and dave (a–d–b… needs
    // R(alice,y), R(y,bob), R(bob,alice): y ∈ {carol? R(alice,carol)? no —
    // carol→alice exists so alice→carol exists (symmetric) and
    // carol→bob(bob→carol) exists} and dave (alice→dave, dave→bob).
    assert_eq!(mutuals, vec!["carol".to_string(), "dave".to_string()]);
}
