//! A vendored, dependency-free stand-in for the subset of the `proptest`
//! crate API used by this workspace.
//!
//! The build environment has no network access to crates.io, so the real
//! `proptest` cannot be fetched. This shim keeps the `proptest!` test
//! modules source-compatible: strategies are plain samplers (ranges, tuples,
//! `prop::collection::vec`, `prop::sample::select`) and the macro runs
//! `cases` deterministic random cases per test. There is no shrinking — a
//! failing case panics with its index so it can be replayed (runs are
//! deterministic given the test name).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Strategy trait and primitive strategy implementations.
pub mod strategy {
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::ops::Range;

    /// A generator of random values of type [`Strategy::Value`].
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize, f32, f64);

    macro_rules! tuple_strategy {
        ($($name:ident),*) => {
            impl<$($name: Strategy),*> Strategy for ($($name,)*) {
                type Value = ($($name::Value,)*);
                #[allow(non_snake_case)]
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)*) = self;
                    ($($name.sample(rng),)*)
                }
            }
        };
    }

    tuple_strategy!(A, B);
    tuple_strategy!(A, B, C);
    tuple_strategy!(A, B, C, D);

    /// See [`crate::prop::collection::vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        pub(crate) element: S,
        pub(crate) len: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = if self.len.start + 1 >= self.len.end {
                self.len.start
            } else {
                rng.gen_range(self.len.clone())
            };
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// See [`crate::prop::sample::select`].
    #[derive(Debug, Clone)]
    pub struct Select<T> {
        pub(crate) options: Vec<T>,
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            assert!(!self.options.is_empty(), "select over an empty list");
            self.options[rng.gen_range(0..self.options.len())].clone()
        }
    }
}

/// The `prop::` namespace mirrored from the real crate.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use crate::strategy::{Strategy, VecStrategy};
        use std::ops::Range;

        /// A `Vec` whose length is drawn from `len` and whose elements come
        /// from `element`.
        pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
            VecStrategy { element, len }
        }
    }

    /// Sampling strategies.
    pub mod sample {
        use crate::strategy::Select;

        /// Picks uniformly from a fixed list of options.
        pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
            Select { options }
        }
    }
}

/// Test-runner configuration and plumbing used by the `proptest!` macro.
pub mod test_runner {
    use rand::SeedableRng;
    use std::fmt;

    /// The RNG driving a test's cases.
    pub type TestRng = rand::rngs::StdRng;

    /// Configuration accepted by `#![proptest_config(...)]`.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases to run per test.
        pub cases: u32,
        /// Accepted for compatibility; this shim never shrinks.
        pub max_shrink_iters: u32,
        /// Accepted for compatibility; this shim never rejects inputs.
        pub max_global_rejects: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            ProptestConfig {
                cases: 32,
                max_shrink_iters: 0,
                max_global_rejects: 1024,
            }
        }
    }

    /// A failed `prop_assert!`-family check.
    #[derive(Debug, Clone)]
    pub struct TestCaseError(String);

    impl TestCaseError {
        /// Wraps a failure message.
        pub fn fail(message: String) -> TestCaseError {
            TestCaseError(message)
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.0)
        }
    }

    /// A deterministic RNG derived from the test's fully qualified name, so
    /// every run replays the same cases (honors `PROPTEST_SEED` to vary).
    pub fn rng_for(test_name: &str) -> TestRng {
        let base: u64 = std::env::var("PROPTEST_SEED")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(0x5EED_CA5E);
        let mut h: u64 = 0xcbf2_9ce4_8422_2325 ^ base;
        for b in test_name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng::seed_from_u64(h)
    }
}

/// Everything a `proptest!` test module needs in scope.
pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, proptest};
}

/// Declares property tests: each `fn name(arg in strategy, ...)` block runs
/// `cases` times over freshly sampled inputs.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_body! { ($cfg) $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_body! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    (
        ($cfg:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($arg:pat in $strat:expr),* $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cfg = $cfg;
                let mut rng = $crate::test_runner::rng_for(concat!(
                    module_path!(), "::", stringify!($name)
                ));
                for case in 0..cfg.cases {
                    $(
                        let $arg =
                            $crate::strategy::Strategy::sample(&($strat), &mut rng);
                    )*
                    let outcome: ::std::result::Result<
                        (),
                        $crate::test_runner::TestCaseError,
                    > = (move || {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    if let ::std::result::Result::Err(e) = outcome {
                        panic!(
                            "proptest case {}/{} of `{}` failed: {}",
                            case + 1,
                            cfg.cases,
                            stringify!($name),
                            e
                        );
                    }
                }
            }
        )*
    };
}

/// `assert!` that reports through the proptest runner.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// `assert_eq!` that reports through the proptest runner.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, "assertion failed: {:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {:?} != {:?} ({})",
            l,
            r,
            format!($($fmt)*)
        );
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn vec_strategy_respects_length_range() {
        let s = prop::collection::vec(0..10u64, 2..5);
        let mut rng = crate::test_runner::rng_for("vec_strategy");
        for _ in 0..200 {
            let v = s.sample(&mut rng);
            assert!((2..5).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 10));
        }
    }

    #[test]
    fn select_picks_every_option() {
        let s = prop::sample::select(vec!["a", "b", "c"]);
        let mut rng = crate::test_runner::rng_for("select");
        let mut seen = std::collections::HashSet::new();
        for _ in 0..100 {
            seen.insert(s.sample(&mut rng));
        }
        assert_eq!(seen.len(), 3);
    }

    #[test]
    fn rng_is_deterministic_per_test_name() {
        use rand::RngCore;
        let a = crate::test_runner::rng_for("x").next_u64();
        let b = crate::test_runner::rng_for("x").next_u64();
        let c = crate::test_runner::rng_for("y").next_u64();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 8, ..ProptestConfig::default() })]

        /// The macro itself: tuple + range strategies and prop_asserts.
        #[test]
        fn macro_runs_cases(pair in (0..5u64, 0..5u64), x in 1.0f64..2.0) {
            prop_assert!(pair.0 < 5 && pair.1 < 5, "pair out of range {:?}", pair);
            prop_assert_eq!(pair.0 / 5, 0);
            prop_assert!((1.0..2.0).contains(&x));
        }
    }
}
