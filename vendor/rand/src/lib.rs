//! A vendored, dependency-free stand-in for the subset of the `rand` crate
//! API used by this workspace.
//!
//! The build environment has no network access to crates.io, so the real
//! `rand` cannot be fetched. This shim keeps the call sites
//! (`StdRng::seed_from_u64`, `Rng::gen_range`) source-compatible. The
//! generator is xoshiro256++ seeded through SplitMix64 — not the real
//! `StdRng` stream, but every consumer in this workspace only relies on
//! determinism-given-seed and reasonable statistical quality, both of which
//! xoshiro256++ provides.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::Range;

/// The raw 64-bit generator interface.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seeding interface (only the `seed_from_u64` entry point is provided).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Ranges that can produce one uniform sample.
pub trait SampleRange<T> {
    /// Draws one sample from `rng`.
    ///
    /// # Panics
    ///
    /// Panics when the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                // Unbiased-enough widening multiply (Lemire reduction
                // without the rejection step; bias is < 2^-64 per draw).
                let hi = ((rng.next_u64() as u128) * span) >> 64;
                self.start + hi as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                if start == 0 && end == <$t>::MAX {
                    return rng.next_u64() as $t;
                }
                let span = (end as u128) - (start as u128) + 1;
                let hi = ((rng.next_u64() as u128) * span) >> 64;
                start + hi as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize);

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                // 53 (resp. 24) uniform mantissa bits in [0, 1).
                let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
                let v = self.start as f64 + unit * (self.end as f64 - self.start as f64);
                // Guard against landing on `end` through rounding.
                let v = v as $t;
                if v >= self.end { self.start } else { v }
            }
        }
    )*};
}

float_sample_range!(f32, f64);

/// The user-facing sampling interface (a small subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// A uniform sample from `range`.
    ///
    /// # Panics
    ///
    /// Panics when the range is empty.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ p ≤ 1`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        self.gen_range(0.0..1.0f64) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let [s0, s1, s2, s3] = self.s;
            let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
            let t = s1 << 17;
            let mut s2 = s2 ^ s0;
            let mut s3 = s3 ^ s1;
            let s1 = s1 ^ s2;
            let s0 = s0 ^ s3;
            s2 ^= t;
            s3 = s3.rotate_left(45);
            self.s = [s0, s1, s2, s3];
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_given_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn int_ranges_in_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v: u64 = r.gen_range(3..17u64);
            assert!((3..17).contains(&v));
            let w: usize = r.gen_range(0..5usize);
            assert!(w < 5);
        }
    }

    #[test]
    fn int_ranges_cover_support() {
        let mut r = StdRng::seed_from_u64(2);
        let mut seen = [false; 4];
        for _ in 0..1000 {
            seen[r.gen_range(0..4usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn float_ranges_in_bounds() {
        let mut r = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let v: f64 = r.gen_range(0.0..1.0);
            assert!((0.0..1.0).contains(&v));
            let w: f64 = r.gen_range(2.5..3.5);
            assert!((2.5..3.5).contains(&w));
        }
    }

    #[test]
    fn uniformish() {
        let mut r = StdRng::seed_from_u64(4);
        let mut counts = [0usize; 8];
        for _ in 0..80_000 {
            counts[r.gen_range(0..8usize)] += 1;
        }
        for c in counts {
            assert!((9_000..11_000).contains(&c), "{c}");
        }
    }

    #[test]
    fn gen_bool_respects_p() {
        let mut r = StdRng::seed_from_u64(5);
        assert!(!(0..100).any(|_| r.gen_bool(0.0)));
        assert!((0..100).all(|_| r.gen_bool(1.0)));
        let heads = (0..10_000).filter(|_| r.gen_bool(0.3)).count();
        assert!((2_500..3_500).contains(&heads), "{heads}");
    }
}
