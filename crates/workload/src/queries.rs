//! The paper's query zoo.

use cqc_common::error::Result;
use cqc_query::parser::parse_adorned;
use cqc_query::AdornedView;

/// The triangle view over a single (e.g. friendship) relation:
/// `V^η(x,y,z) = R(x,y), R(y,z), R(z,x)` — Example 1 uses η = `bfb`
/// (mutual friends), Example 2 the variants `bbf`/`fff`.
pub fn triangle_self(pattern: &str) -> Result<AdornedView> {
    parse_adorned("V(x, y, z) :- R(x, y), R(y, z), R(z, x)", pattern)
}

/// The triangle over three distinct relations:
/// `∆^η(x,y,z) = R(x,y), S(y,z), T(z,x)`.
pub fn triangle(pattern: &str) -> Result<AdornedView> {
    parse_adorned("D(x, y, z) :- R(x, y), S(y, z), T(z, x)", pattern)
}

/// The star join of Example 7:
/// `S_n^η(x_1,…,x_n,z) = R_1(x_1,z), …, R_n(x_n,z)`.
/// `pattern` covers the `n + 1` head variables `(x_1,…,x_n,z)`.
pub fn star(n: usize, pattern: &str) -> Result<AdornedView> {
    assert!(n >= 1);
    let head: Vec<String> = (1..=n).map(|i| format!("x{i}")).collect();
    let atoms: Vec<String> = (1..=n).map(|i| format!("R{i}(x{i}, z)")).collect();
    let text = format!("S({}, z) :- {}", head.join(", "), atoms.join(", "));
    parse_adorned(&text, pattern)
}

/// The set-intersection view of §3.1 (the \[13\] structure):
/// `S_2^{bbf}(x_1, x_2, z) = R(x_1, z), R(x_2, z)` over a single
/// set-membership relation (`R(s, a)` ⇔ `a ∈ S_s`).
pub fn set_intersection() -> Result<AdornedView> {
    parse_adorned("I(x1, x2, z) :- R(x1, z), R(x2, z)", "bbf")
}

/// The k-ary variant backing k-SetDisjointness (§3.3):
/// `Q^{b…bf}(x_1,…,x_k,z) = R(x_1,z), …, R(x_k,z)` over one relation.
pub fn k_set_disjointness(k: usize) -> Result<AdornedView> {
    assert!(k >= 2);
    let head: Vec<String> = (1..=k).map(|i| format!("x{i}")).collect();
    let atoms: Vec<String> = (1..=k).map(|i| format!("R(x{i}, z)")).collect();
    let text = format!("K({}, z) :- {}", head.join(", "), atoms.join(", "));
    let pattern = "b".repeat(k) + "f";
    parse_adorned(&text, &pattern)
}

/// The path query of Example 10:
/// `P_n^η(x_1,…,x_{n+1}) = R_1(x_1,x_2), …, R_n(x_n,x_{n+1})`.
/// Example 10 uses the pattern `b f…f b`.
pub fn path(n: usize, pattern: &str) -> Result<AdornedView> {
    assert!(n >= 1);
    let head: Vec<String> = (1..=n + 1).map(|i| format!("x{i}")).collect();
    let atoms: Vec<String> = (1..=n).map(|i| format!("R{i}(x{i}, x{})", i + 1)).collect();
    let text = format!("P({}) :- {}", head.join(", "), atoms.join(", "));
    parse_adorned(&text, pattern)
}

/// The Example 10 pattern for `path(n)`: endpoints bound, middle free.
pub fn path_pattern(n: usize) -> String {
    let mut p = String::from("b");
    p.push_str(&"f".repeat(n - 1));
    p.push('b');
    p
}

/// The Loomis–Whitney join of Example 6:
/// `LW_n(x_1,…,x_n) = S_1(x_2,…,x_n), S_2(x_1,x_3,…,x_n), …`.
/// Atom `S_i` contains every variable except `x_i`.
pub fn loomis_whitney(n: usize, pattern: &str) -> Result<AdornedView> {
    assert!(n >= 3);
    let head: Vec<String> = (1..=n).map(|i| format!("x{i}")).collect();
    let atoms: Vec<String> = (1..=n)
        .map(|i| {
            let vars: Vec<String> = (1..=n)
                .filter(|&j| j != i)
                .map(|j| format!("x{j}"))
                .collect();
            format!("S{i}({})", vars.join(", "))
        })
        .collect();
    let text = format!("LW({}) :- {}", head.join(", "), atoms.join(", "));
    parse_adorned(&text, pattern)
}

/// The length-`n` cycle query
/// `C_n^η(x_1,…,x_n) = R_1(x_1,x_2), …, R_n(x_n,x_1)` — the simplest
/// family with `fhw = 2` for even `n`, used to exercise non-acyclic
/// decompositions beyond the triangle.
pub fn cycle(n: usize, pattern: &str) -> Result<AdornedView> {
    assert!(n >= 3);
    let head: Vec<String> = (1..=n).map(|i| format!("x{i}")).collect();
    let atoms: Vec<String> = (1..=n)
        .map(|i| format!("R{i}(x{i}, x{})", if i == n { 1 } else { i + 1 }))
        .collect();
    let text = format!("C({}) :- {}", head.join(", "), atoms.join(", "));
    parse_adorned(&text, pattern)
}

/// The running example (Example 4):
/// `Q^{fffbbb}(x,y,z,w1,w2,w3) = R1(w1,x,y), R2(w2,y,z), R3(w3,x,z)`.
pub fn running_example() -> Result<AdornedView> {
    parse_adorned(
        "Q(x, y, z, w1, w2, w3) :- R1(w1, x, y), R2(w2, y, z), R3(w3, x, z)",
        "fffbbb",
    )
}

/// The co-author view of §1: `V^bf(x, y) = R(x, p), R(y, p)` — neighbors
/// of an author in the co-author graph.
pub fn coauthor() -> Result<AdornedView> {
    parse_adorned("V(x, y) :- R(x, p), R(y, p)", "bf")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_builders_produce_natural_joins() {
        let views = vec![
            triangle_self("bfb").unwrap(),
            triangle("fff").unwrap(),
            star(3, "bbbf").unwrap(),
            set_intersection().unwrap(),
            k_set_disjointness(3).unwrap(),
            path(4, &path_pattern(4)).unwrap(),
            loomis_whitney(3, "fff").unwrap(),
            running_example().unwrap(),
        ];
        for v in views {
            assert!(v.query().is_natural_join(), "{v}");
        }
    }

    #[test]
    fn coauthor_is_a_projection() {
        // The §1 co-author view projects the paper variable away — the
        // paper defers projections, and so do we (it is used with the
        // triangle-style rewrite in the examples instead).
        let v = coauthor().unwrap();
        assert!(!v.query().is_full());
    }

    #[test]
    fn cycle_shapes() {
        let v = cycle(4, "bfbf").unwrap();
        assert!(v.query().is_natural_join());
        let h = v.query().hypergraph();
        assert_eq!(h.num_edges(), 4);
        assert!(!h.is_acyclic());
        assert!(cycle(6, "ffffff").unwrap().query().is_natural_join());
    }

    #[test]
    fn star_shapes() {
        let v = star(4, "bbbbf").unwrap();
        assert_eq!(v.query().atoms.len(), 4);
        assert_eq!(v.mu(), 1);
        assert_eq!(v.bound_head().len(), 4);
    }

    #[test]
    fn lw_edges_miss_one_variable_each() {
        let v = loomis_whitney(4, "ffff").unwrap();
        let h = v.query().hypergraph();
        assert_eq!(h.num_edges(), 4);
        for e in h.edges() {
            assert_eq!(e.len(), 3);
        }
    }

    #[test]
    fn path_pattern_shape() {
        assert_eq!(path_pattern(4), "bfffb");
        let v = path(4, &path_pattern(4)).unwrap();
        assert_eq!(v.mu(), 3);
    }
}
