//! Access-request samplers.

use cqc_common::value::Value;
use cqc_query::atom::Term;
use cqc_query::AdornedView;
use cqc_storage::Database;
use rand::rngs::StdRng;
use rand::Rng;

/// `count` access requests whose bound values are drawn uniformly from each
/// bound variable's active domain (misses are likely on sparse data —
/// exercising the `0`/absent paths).
pub fn random_requests(
    rng: &mut StdRng,
    view: &AdornedView,
    db: &Database,
    count: usize,
) -> Vec<Vec<Value>> {
    let domains = view
        .query()
        .active_domains(db)
        .expect("schema validated by caller");
    let bound = view.bound_head();
    (0..count)
        .map(|_| {
            bound
                .iter()
                .map(|v| {
                    let d = &domains[v.index()];
                    if d.is_empty() {
                        0
                    } else {
                        d.value(rng.gen_range(0..d.len()))
                    }
                })
                .collect()
        })
        .collect()
}

/// `count` access requests seeded from witness tuples: for each request, a
/// random tuple is drawn from a random atom containing each bound variable
/// and its value copied. Such requests hit actual data far more often than
/// uniform sampling (though a joint witness across atoms is still not
/// guaranteed).
pub fn witness_requests(
    rng: &mut StdRng,
    view: &AdornedView,
    db: &Database,
    count: usize,
) -> Vec<Vec<Value>> {
    let query = view.query();
    let bound = view.bound_head();
    // For each bound var: (atom index, column) choices.
    let holders: Vec<Vec<(usize, usize)>> = bound
        .iter()
        .map(|v| {
            query
                .atoms
                .iter()
                .enumerate()
                .flat_map(|(ai, atom)| {
                    atom.terms.iter().enumerate().filter_map(move |(col, t)| {
                        matches!(t, Term::Var(w) if w == v).then_some((ai, col))
                    })
                })
                .collect()
        })
        .collect();
    (0..count)
        .map(|_| {
            bound
                .iter()
                .zip(&holders)
                .map(|(_, hs)| {
                    if hs.is_empty() {
                        return 0;
                    }
                    let (ai, col) = hs[rng.gen_range(0..hs.len())];
                    let rel = db
                        .require(&query.atoms[ai].relation)
                        .expect("schema validated by caller");
                    if rel.is_empty() {
                        0
                    } else {
                        rel.row(rng.gen_range(0..rel.len()))[col]
                    }
                })
                .collect()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{rng, uniform_relation};
    use crate::queries::triangle;

    fn db() -> Database {
        let mut db = Database::new();
        let mut r = rng(11);
        db.add(uniform_relation(&mut r, "R", 2, 100, 30)).unwrap();
        db.add(uniform_relation(&mut r, "S", 2, 100, 30)).unwrap();
        db.add(uniform_relation(&mut r, "T", 2, 100, 30)).unwrap();
        db
    }

    #[test]
    fn random_requests_are_in_domain() {
        let view = triangle("bfb").unwrap();
        let db = db();
        let doms = view.query().active_domains(&db).unwrap();
        let reqs = random_requests(&mut rng(1), &view, &db, 50);
        assert_eq!(reqs.len(), 50);
        let bound = view.bound_head();
        for r in &reqs {
            assert_eq!(r.len(), 2);
            for (val, var) in r.iter().zip(&bound) {
                assert!(doms[var.index()].rank(*val).is_some());
            }
        }
    }

    #[test]
    fn witness_requests_come_from_rows() {
        let view = triangle("bbf").unwrap();
        let db = db();
        let reqs = witness_requests(&mut rng(2), &view, &db, 50);
        assert_eq!(reqs.len(), 50);
        // Each value must appear in some column holding that variable.
        let doms = view.query().active_domains(&db).unwrap();
        let bound = view.bound_head();
        for r in &reqs {
            for (val, var) in r.iter().zip(&bound) {
                assert!(doms[var.index()].rank(*val).is_some());
            }
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let view = triangle("bfb").unwrap();
        let db = db();
        let a = random_requests(&mut rng(9), &view, &db, 10);
        let b = random_requests(&mut rng(9), &view, &db, 10);
        assert_eq!(a, b);
    }
}
