//! Graph-shaped data for the §1 applications.

use crate::gen::Zipf;
use cqc_common::value::Value;
use cqc_storage::Relation;
use rand::rngs::StdRng;
use rand::Rng;

/// A symmetric friendship relation with power-law degrees: `edges`
/// undirected edges over `nodes` vertices, both directions stored
/// (Example 1's symmetric binary relation `R`).
pub fn friendship_graph(rng: &mut StdRng, nodes: u64, edges: usize, skew: f64) -> Relation {
    let zipf = Zipf::new(nodes as usize, skew);
    let mut pairs: Vec<(Value, Value)> = Vec::with_capacity(edges * 2);
    for _ in 0..edges {
        let a = zipf.sample(rng);
        let b = zipf.sample(rng);
        if a == b {
            continue;
        }
        pairs.push((a, b));
        pairs.push((b, a));
    }
    Relation::from_pairs("R", pairs)
}

/// A directed Erdős–Rényi-style relation: `edges` uniform pairs over
/// `nodes` vertices.
pub fn erdos_renyi(rng: &mut StdRng, name: &str, nodes: u64, edges: usize) -> Relation {
    let mut pairs = Vec::with_capacity(edges);
    for _ in 0..edges {
        pairs.push((rng.gen_range(0..nodes), rng.gen_range(0..nodes)));
    }
    Relation::from_pairs(name, pairs)
}

/// An author–paper bipartite relation `R(author, paper)` (the DBLP shape of
/// §1): each of `authors` authors writes a Zipf-skewed number of the
/// `papers` papers, and hub papers attract many authors.
pub fn author_paper(
    rng: &mut StdRng,
    authors: u64,
    papers: u64,
    rows: usize,
    skew: f64,
) -> Relation {
    let paper_zipf = Zipf::new(papers as usize, skew);
    let mut pairs = Vec::with_capacity(rows);
    for _ in 0..rows {
        let a = rng.gen_range(0..authors);
        let p = paper_zipf.sample(rng);
        pairs.push((a, p));
    }
    Relation::from_pairs("R", pairs)
}

/// A clustered (community-structured) friendship graph: `communities`
/// groups of `nodes / communities` members; each edge stays inside its
/// community with probability `locality`, otherwise it crosses communities
/// uniformly. Symmetric, self-loop-free.
///
/// Community structure concentrates triangles inside clusters — the shape
/// on which triangle-view compression is most valuable (many hot pairs
/// share heavy neighborhoods).
pub fn community_graph(
    rng: &mut StdRng,
    nodes: u64,
    communities: u64,
    edges: usize,
    locality: f64,
) -> Relation {
    assert!(communities >= 1 && nodes >= communities);
    assert!((0.0..=1.0).contains(&locality));
    let per = nodes / communities;
    let mut pairs: Vec<(Value, Value)> = Vec::with_capacity(edges * 2);
    for _ in 0..edges {
        let c = rng.gen_range(0..communities);
        let a = c * per + rng.gen_range(0..per);
        let b = if rng.gen_range(0.0..1.0) < locality {
            c * per + rng.gen_range(0..per)
        } else {
            rng.gen_range(0..nodes)
        };
        if a == b {
            continue;
        }
        pairs.push((a, b));
        pairs.push((b, a));
    }
    Relation::from_pairs("R", pairs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::rng;

    #[test]
    fn friendship_is_symmetric() {
        let g = friendship_graph(&mut rng(1), 100, 500, 1.0);
        for row in g.iter() {
            assert!(g.contains(&[row[1], row[0]]), "missing reverse edge");
            assert_ne!(row[0], row[1], "no self loops");
        }
    }

    #[test]
    fn erdos_renyi_in_range() {
        let g = erdos_renyi(&mut rng(2), "E", 50, 300);
        assert!(g.iter().all(|t| t[0] < 50 && t[1] < 50));
        assert!(g.len() <= 300);
    }

    #[test]
    fn community_graph_is_clustered() {
        let g = community_graph(&mut rng(4), 100, 5, 1500, 0.9);
        // Symmetric and loop-free.
        for row in g.iter() {
            assert!(g.contains(&[row[1], row[0]]));
            assert_ne!(row[0], row[1]);
        }
        // Most edges stay within a community (nodes/communities = 20).
        let within = g.iter().filter(|t| t[0] / 20 == t[1] / 20).count();
        assert!(
            within * 10 > g.len() * 7,
            "expected ≥70% intra-community edges, got {within}/{}",
            g.len()
        );
    }

    #[test]
    fn author_paper_has_hubs() {
        let g = author_paper(&mut rng(3), 200, 500, 3000, 1.1);
        // Paper 0 (the hub) must appear far more often than a tail paper.
        let hub = g.iter().filter(|t| t[1] == 0).count();
        let tail = g.iter().filter(|t| t[1] == 400).count();
        assert!(hub > tail, "hub {hub} <= tail {tail}");
    }
}
