//! Seeded synthetic workloads for the paper's query classes.
//!
//! Everything is deterministic given a seed, so benchmark curves and
//! EXPERIMENTS.md numbers are reproducible:
//!
//! * [`gen`] — base samplers: uniform k-ary relations and a Zipf sampler
//!   (skewed degree distributions are what make the space/delay tradeoff
//!   interesting — heavy hitters create the expensive sub-instances the
//!   dictionary memoizes);
//! * [`graphs`] — graph-shaped data for the §1 applications: symmetric
//!   friendship graphs with power-law degrees, Erdős–Rényi digraphs, and
//!   author–paper bipartite data for the co-author view;
//! * [`queries`] — the paper's query zoo: triangles (Ex. 1/2), the star
//!   join `S_n` (Ex. 7), the path query `P_n` (Ex. 10, Fig. 2), the
//!   Loomis–Whitney join `LW_n` (Ex. 6), the set-intersection view (§3.1,
//!   \[13\]) and the running example `Q^{fffbbb}` (Ex. 4);
//! * [`access`] — access-request samplers.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod access;
pub mod gen;
pub mod graphs;
pub mod queries;

pub use access::{random_requests, witness_requests};
pub use gen::{mixed_delta, recombination_delta, rng, uniform_relation, Zipf};
