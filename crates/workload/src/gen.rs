//! Base samplers.

use cqc_common::value::Value;
use cqc_storage::{Database, Delta, Relation};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A deterministic RNG for the given seed.
pub fn rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// A uniform random `arity`-ary relation with (up to) `rows` distinct
/// tuples over the value domain `0..domain`.
pub fn uniform_relation(
    rng: &mut StdRng,
    name: &str,
    arity: usize,
    rows: usize,
    domain: u64,
) -> Relation {
    let mut flat = Vec::with_capacity(rows * arity);
    for _ in 0..rows {
        flat.extend((0..arity).map(|_| rng.gen_range(0..domain)));
    }
    Relation::from_flat(name, arity, flat)
}

/// An insertion [`Delta`] of `per_relation` tuples for each named relation,
/// built by recombining column values of existing rows. Because active
/// domains are per-column unions, a recombined tuple never introduces a new
/// domain value — which is exactly what keeps a small delta on the engine's
/// maintain path (domain growth forces a rebuild). Relations missing from
/// `db` or empty are skipped; recombined tuples may duplicate existing rows
/// (applying such a tuple is a no-op).
pub fn recombination_delta(
    rng: &mut StdRng,
    db: &Database,
    relations: &[&str],
    per_relation: usize,
) -> Delta {
    let mut delta = Delta::new();
    for name in relations {
        let Some(rel) = db.get(name) else { continue };
        if rel.is_empty() {
            continue;
        }
        for _ in 0..per_relation {
            let tuple: Vec<Value> = (0..rel.arity())
                .map(|c| rel.row(rng.gen_range(0..rel.len()))[c])
                .collect();
            delta.insert(name, tuple);
        }
    }
    delta
}

/// A mixed insert/remove [`Delta`]: `inserts_per` recombined tuples (as in
/// [`recombination_delta`]) plus up to `removes_per` deletions of existing
/// rows for each named relation.
///
/// Removals are *domain-safe*: a row is only removed when every one of its
/// column values still occurs in at least one surviving row of the same
/// column, so per-column unions — and therefore every query's active
/// domains — are unchanged by applying the delta. This keeps small mixed
/// deltas on the maintain path of structures pinned to a rank-space grid
/// (domain change forces a rebuild). Relations missing from `db` or too
/// uniform to offer domain-safe victims simply contribute fewer (possibly
/// zero) removals.
pub fn mixed_delta(
    rng: &mut StdRng,
    db: &Database,
    relations: &[&str],
    inserts_per: usize,
    removes_per: usize,
) -> Delta {
    let mut delta = recombination_delta(rng, db, relations, inserts_per);
    for name in relations {
        let Some(rel) = db.get(name) else { continue };
        if rel.is_empty() {
            continue;
        }
        let mut counts: Vec<std::collections::HashMap<Value, usize>> =
            vec![std::collections::HashMap::new(); rel.arity()];
        for row in rel.iter() {
            for (c, v) in row.iter().enumerate() {
                *counts[c].entry(*v).or_insert(0) += 1;
            }
        }
        let mut chosen: Vec<usize> = Vec::new();
        let mut attempts = 0;
        while chosen.len() < removes_per && attempts < removes_per * 16 {
            attempts += 1;
            let i = rng.gen_range(0..rel.len());
            if chosen.contains(&i) {
                continue;
            }
            let row = rel.row(i);
            if row.iter().enumerate().all(|(c, v)| counts[c][v] >= 2) {
                for (c, v) in row.iter().enumerate() {
                    *counts[c].get_mut(v).expect("counted above") -= 1;
                }
                chosen.push(i);
                delta.remove(name, row.to_vec());
            }
        }
    }
    delta
}

/// A Zipf(s) sampler over `0..n` via an inverse-CDF table.
///
/// Item `i` has probability proportional to `1/(i+1)^s`.
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Builds the sampler.
    ///
    /// # Panics
    ///
    /// Panics when `n == 0` or `s < 0`.
    pub fn new(n: usize, s: f64) -> Zipf {
        assert!(n > 0, "Zipf needs a non-empty support");
        assert!(s >= 0.0, "Zipf exponent must be non-negative");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0f64;
        for i in 0..n {
            acc += 1.0 / ((i + 1) as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        Zipf { cdf }
    }

    /// Samples one item.
    pub fn sample(&self, rng: &mut StdRng) -> u64 {
        let u: f64 = rng.gen_range(0.0..1.0);
        self.cdf.partition_point(|&c| c < u) as u64
    }

    /// Support size.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// `true` when the support is empty (never true after `new`).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }
}

/// A relation of `rows` pairs with Zipf-skewed second component — a classic
/// "many small sets, a few huge ones" shape for the set-intersection
/// workloads.
pub fn zipf_pairs(
    rng: &mut StdRng,
    name: &str,
    rows: usize,
    first_domain: u64,
    zipf: &Zipf,
) -> Relation {
    let mut flat: Vec<Value> = Vec::with_capacity(rows * 2);
    for _ in 0..rows {
        flat.push(rng.gen_range(0..first_domain));
        flat.push(zipf.sample(rng));
    }
    Relation::from_flat(name, 2, flat)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_given_seed() {
        let a = uniform_relation(&mut rng(7), "R", 2, 100, 50);
        let b = uniform_relation(&mut rng(7), "R", 2, 100, 50);
        assert_eq!(a, b);
        let c = uniform_relation(&mut rng(8), "R", 2, 100, 50);
        assert_ne!(a, c);
    }

    #[test]
    fn relation_shape() {
        let r = uniform_relation(&mut rng(1), "R", 3, 200, 10);
        assert_eq!(r.arity(), 3);
        assert!(r.len() <= 200);
        assert!(r.iter().all(|t| t.iter().all(|&v| v < 10)));
    }

    #[test]
    fn zipf_is_skewed() {
        let z = Zipf::new(1000, 1.2);
        let mut r = rng(42);
        let mut counts = vec![0usize; 1000];
        for _ in 0..20_000 {
            counts[z.sample(&mut r) as usize] += 1;
        }
        // The head must dominate the tail.
        assert!(counts[0] > counts[100] && counts[0] > 50);
        let head: usize = counts[..10].iter().sum();
        let tail: usize = counts[500..].iter().sum();
        assert!(head > tail);
    }

    #[test]
    fn zipf_zero_exponent_is_uniformish() {
        let z = Zipf::new(4, 0.0);
        let mut r = rng(3);
        let mut counts = vec![0usize; 4];
        for _ in 0..8000 {
            counts[z.sample(&mut r) as usize] += 1;
        }
        for c in counts {
            assert!(c > 1500 && c < 2500, "{c}");
        }
    }

    #[test]
    fn zipf_pairs_in_domain() {
        let z = Zipf::new(20, 1.0);
        let r = zipf_pairs(&mut rng(5), "R", 500, 30, &z);
        assert!(r.iter().all(|t| t[0] < 30 && t[1] < 20));
    }

    #[test]
    fn recombination_delta_stays_in_column_domains() {
        let mut db = Database::new();
        db.add(uniform_relation(&mut rng(2), "R", 2, 40, 9))
            .unwrap();
        db.add(Relation::new("Empty", 2, vec![])).unwrap();
        let delta = recombination_delta(&mut rng(3), &db, &["R", "Empty", "Missing"], 5);
        assert_eq!(delta.total_tuples(), 5, "only R contributes");
        let r = db.get("R").unwrap();
        for (name, tuples) in delta.groups() {
            assert_eq!(name, "R");
            for t in tuples {
                for (c, v) in t.iter().enumerate() {
                    assert!(r.column_values(c).contains(v), "column {c} value {v}");
                }
            }
        }
        // Applying never grows an active domain, so the column unions are
        // unchanged.
        let before: Vec<_> = (0..2).map(|c| r.column_values(c)).collect();
        db.apply(&delta).unwrap();
        let r = db.get("R").unwrap();
        for (c, column) in before.iter().enumerate() {
            assert_eq!(&r.column_values(c), column);
        }
    }
}
