//! Conjunctive queries.

use crate::atom::{Atom, Term};
use crate::hypergraph::Hypergraph;
use crate::var::{Var, VarSet};
use cqc_common::error::{CqcError, Result};
use cqc_storage::{Database, Domain};
use std::fmt;

/// A conjunctive query `Q(y) = R_1(x_1), …, R_n(x_n)` (§2.1).
///
/// Variables are identified by indexes into `var_names`; the head lists the
/// output variables in order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConjunctiveQuery {
    /// Query name (for display).
    pub name: String,
    /// Head variables in output order.
    pub head: Vec<Var>,
    /// Body atoms.
    pub atoms: Vec<Atom>,
    /// Human-readable variable names, indexed by `Var`.
    pub var_names: Vec<String>,
}

impl ConjunctiveQuery {
    /// Number of variables appearing in the query.
    pub fn num_vars(&self) -> usize {
        self.var_names.len()
    }

    /// The set of variables appearing in the body.
    pub fn body_vars(&self) -> VarSet {
        self.atoms
            .iter()
            .map(Atom::var_set)
            .fold(VarSet::EMPTY, VarSet::union)
    }

    /// The set of head variables.
    pub fn head_vars(&self) -> VarSet {
        self.head.iter().copied().collect()
    }

    /// `true` when every body variable also appears in the head (§2.1).
    pub fn is_full(&self) -> bool {
        self.body_vars().is_subset_of(self.head_vars())
    }

    /// `true` when the head contains no variables.
    pub fn is_boolean(&self) -> bool {
        self.head.is_empty()
    }

    /// `true` for natural join queries: full, no constants, no repeated
    /// variables in an atom, and a duplicate-free head (§2.1).
    pub fn is_natural_join(&self) -> bool {
        if !self.is_full() {
            return false;
        }
        let mut seen = VarSet::EMPTY;
        for &v in &self.head {
            if seen.contains(v) {
                return false;
            }
            seen = seen.with(v);
        }
        self.atoms.iter().all(Atom::is_natural)
    }

    /// Validates the natural-join restriction, with a descriptive error.
    pub fn require_natural_join(&self) -> Result<()> {
        if !self.is_full() {
            return Err(CqcError::InvalidQuery(format!(
                "query `{}` projects away body variables; the paper's structures require full CQs \
                 (projections are future work, see §8)",
                self.name
            )));
        }
        for atom in &self.atoms {
            if !atom.is_natural() {
                return Err(CqcError::InvalidQuery(format!(
                    "atom `{atom}` contains constants or repeated variables; apply \
                     `rewrite::rewrite_view` first (Example 3)"
                )));
            }
        }
        let mut seen = VarSet::EMPTY;
        for &v in &self.head {
            if seen.contains(v) {
                return Err(CqcError::InvalidQuery(format!(
                    "head of `{}` repeats variable {}",
                    self.name,
                    self.var_name(v)
                )));
            }
            seen = seen.with(v);
        }
        Ok(())
    }

    /// The hypergraph of a natural join query.
    ///
    /// # Panics
    ///
    /// Panics if the query is not a natural join (call
    /// [`ConjunctiveQuery::require_natural_join`] first).
    pub fn hypergraph(&self) -> Hypergraph {
        assert!(
            self.is_natural_join(),
            "hypergraph is defined for natural join queries"
        );
        Hypergraph::new(
            self.num_vars(),
            self.atoms.iter().map(Atom::var_set).collect(),
        )
    }

    /// The display name of a variable.
    pub fn var_name(&self, v: Var) -> &str {
        &self.var_names[v.index()]
    }

    /// Looks a variable up by name.
    pub fn var_by_name(&self, name: &str) -> Option<Var> {
        self.var_names
            .iter()
            .position(|n| n == name)
            .map(|i| Var(i as u32))
    }

    /// Checks that every atom matches a relation of the right arity in `db`.
    pub fn check_schema(&self, db: &Database) -> Result<()> {
        for atom in &self.atoms {
            let rel = db.require(&atom.relation)?;
            if rel.arity() != atom.arity() {
                return Err(CqcError::Schema(format!(
                    "atom `{atom}` has arity {} but relation `{}` has arity {}",
                    atom.arity(),
                    atom.relation,
                    rel.arity()
                )));
            }
        }
        Ok(())
    }

    /// Active domain of every variable: the sorted union, over the atoms in
    /// which the variable occurs, of the matching relation columns (§4.1).
    pub fn active_domains(&self, db: &Database) -> Result<Vec<Domain>> {
        self.check_schema(db)?;
        let n = self.num_vars();
        let mut columns: Vec<Vec<u64>> = vec![Vec::new(); n];
        for atom in &self.atoms {
            let rel = db.require(&atom.relation)?;
            for (pos, term) in atom.terms.iter().enumerate() {
                if let Term::Var(v) = term {
                    columns[v.index()].extend(rel.column_values(pos));
                }
            }
        }
        Ok(columns.into_iter().map(Domain::new).collect())
    }

    /// A canonical text rendering used as a cache key: the query name is
    /// dropped, variables are renamed positionally (head order first, then
    /// first occurrence in the body) and atoms are sorted. For **full**
    /// queries (every body variable in the head — the engine's serving
    /// class) two parses of the same view differing in query name, variable
    /// spelling or atom order normalize to the same string. For non-full
    /// queries, body-only variables are named in body scan order, so an
    /// atom reorder can key differently — a conservative cache miss, never
    /// a false merge (the renaming is injective either way).
    pub fn normalized_text(&self) -> String {
        // Positional names: head variables first (their order is part of
        // the view's semantics), remaining body variables by first
        // occurrence.
        let mut order: Vec<Var> = Vec::with_capacity(self.num_vars());
        for v in &self.head {
            if !order.contains(v) {
                order.push(*v);
            }
        }
        for atom in &self.atoms {
            for term in &atom.terms {
                if let Term::Var(v) = term {
                    if !order.contains(v) {
                        order.push(*v);
                    }
                }
            }
        }
        let canon = |v: &Var| -> String {
            format!("v{}", order.iter().position(|w| w == v).expect("var seen"))
        };
        let mut atoms: Vec<String> = self
            .atoms
            .iter()
            .map(|atom| {
                let terms: Vec<String> = atom
                    .terms
                    .iter()
                    .map(|t| match t {
                        Term::Var(v) => canon(v),
                        Term::Const(c) => format!("#{c}"),
                    })
                    .collect();
                format!("{}({})", atom.relation, terms.join(","))
            })
            .collect();
        atoms.sort_unstable();
        let head: Vec<String> = self.head.iter().map(canon).collect();
        format!("({}) :- {}", head.join(","), atoms.join(", "))
    }
}

impl fmt::Display for ConjunctiveQuery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.name)?;
        for (i, v) in self.head.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{}", self.var_name(*v))?;
        }
        write!(f, ") :- ")?;
        for (i, atom) in self.atoms.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}(", atom.relation)?;
            for (j, t) in atom.terms.iter().enumerate() {
                if j > 0 {
                    write!(f, ",")?;
                }
                match t {
                    Term::Var(v) => write!(f, "{}", self.var_name(*v))?,
                    Term::Const(c) => write!(f, "{c}")?,
                }
            }
            write!(f, ")")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqc_storage::Relation;

    fn triangle() -> ConjunctiveQuery {
        ConjunctiveQuery {
            name: "Q".into(),
            head: vec![Var(0), Var(1), Var(2)],
            atoms: vec![
                Atom::new("R", [Var(0), Var(1)]),
                Atom::new("S", [Var(1), Var(2)]),
                Atom::new("T", [Var(2), Var(0)]),
            ],
            var_names: vec!["x".into(), "y".into(), "z".into()],
        }
    }

    #[test]
    fn classification() {
        let q = triangle();
        assert!(q.is_full());
        assert!(!q.is_boolean());
        assert!(q.is_natural_join());
        q.require_natural_join().unwrap();
        assert_eq!(q.hypergraph().num_edges(), 3);
    }

    #[test]
    fn projection_detected() {
        let mut q = triangle();
        q.head.pop();
        assert!(!q.is_full());
        assert!(q.require_natural_join().is_err());
    }

    #[test]
    fn duplicate_head_detected() {
        let mut q = triangle();
        q.head = vec![Var(0), Var(0), Var(1), Var(2)];
        assert!(q.require_natural_join().is_err());
    }

    #[test]
    fn display_and_lookup() {
        let q = triangle();
        assert_eq!(q.to_string(), "Q(x,y,z) :- R(x,y), S(y,z), T(z,x)");
        assert_eq!(q.var_by_name("y"), Some(Var(1)));
        assert_eq!(q.var_by_name("w"), None);
        assert_eq!(q.var_name(Var(2)), "z");
    }

    #[test]
    fn active_domains_union_columns() {
        let q = triangle();
        let mut db = Database::new();
        db.add(Relation::from_pairs("R", vec![(1, 2), (5, 2)]))
            .unwrap();
        db.add(Relation::from_pairs("S", vec![(2, 3)])).unwrap();
        db.add(Relation::from_pairs("T", vec![(3, 1), (4, 9)]))
            .unwrap();
        let doms = q.active_domains(&db).unwrap();
        // x occurs in R.0 and T.1: {1, 5} ∪ {1, 9}.
        assert_eq!(doms[0].values(), &[1, 5, 9]);
        // y occurs in R.1 and S.0: {2} ∪ {2}.
        assert_eq!(doms[1].values(), &[2]);
        // z occurs in S.1 and T.0: {3} ∪ {3, 4}.
        assert_eq!(doms[2].values(), &[3, 4]);
    }

    #[test]
    fn schema_mismatch_reported() {
        let q = triangle();
        let mut db = Database::new();
        db.add(Relation::new("R", 3, vec![])).unwrap();
        db.add(Relation::from_pairs("S", vec![])).unwrap();
        db.add(Relation::from_pairs("T", vec![])).unwrap();
        assert!(q.check_schema(&db).is_err());
    }

    #[test]
    fn normalized_text_ignores_name_spelling_and_atom_order() {
        let a = crate::parser::parse_query("Q(x,y,z) :- R(x,y), S(y,z), T(z,x)").unwrap();
        let b = crate::parser::parse_query("View(a,b,c) :- T(c,a), R(a,b), S(b,c)").unwrap();
        assert_eq!(a.normalized_text(), b.normalized_text());
        // A genuinely different view (head order swapped) keys differently.
        let c = crate::parser::parse_query("Q(y,x,z) :- R(x,y), S(y,z), T(z,x)").unwrap();
        assert_ne!(a.normalized_text(), c.normalized_text());
    }
}
