//! Query hypergraphs.

use crate::var::{Var, VarSet};

/// The hypergraph `H = (V, E)` of a natural join query (§2.1): vertices are
/// query variables, and each atom contributes the hyperedge of its variables.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Hypergraph {
    n_vars: usize,
    edges: Vec<VarSet>,
}

impl Hypergraph {
    /// Builds a hypergraph over `n_vars` variables with the given edges.
    ///
    /// # Panics
    ///
    /// Panics if an edge mentions a variable `>= n_vars` or is empty.
    pub fn new(n_vars: usize, edges: Vec<VarSet>) -> Hypergraph {
        assert!(n_vars <= 64, "at most 64 variables supported");
        let all = VarSet::first_n(n_vars);
        for e in &edges {
            assert!(!e.is_empty(), "hyperedges must be non-empty");
            assert!(e.is_subset_of(all), "edge mentions unknown variable");
        }
        Hypergraph { n_vars, edges }
    }

    /// Number of vertices (variables).
    pub fn num_vars(&self) -> usize {
        self.n_vars
    }

    /// The vertex set `V`.
    pub fn all_vars(&self) -> VarSet {
        VarSet::first_n(self.n_vars)
    }

    /// The hyperedges, indexed in atom order.
    pub fn edges(&self) -> &[VarSet] {
        &self.edges
    }

    /// Number of hyperedges.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// The incidence operator of §2.1:
    /// `E_I = { F ∈ E | F ∩ I ≠ ∅ }`, returned as edge indices.
    pub fn edges_incident(&self, i: VarSet) -> Vec<usize> {
        self.edges
            .iter()
            .enumerate()
            .filter(|(_, e)| !e.is_disjoint(i))
            .map(|(k, _)| k)
            .collect()
    }

    /// Edge indices fully contained in `s`.
    pub fn edges_within(&self, s: VarSet) -> Vec<usize> {
        self.edges
            .iter()
            .enumerate()
            .filter(|(_, e)| e.is_subset_of(s))
            .map(|(k, _)| k)
            .collect()
    }

    /// Neighbors of `v`: all variables sharing an edge with `v`, excluding
    /// `v` itself. Used by the elimination-order decomposition search.
    pub fn neighbors(&self, v: Var) -> VarSet {
        let mut n = VarSet::EMPTY;
        for e in &self.edges {
            if e.contains(v) {
                n = n.union(*e);
            }
        }
        n.without(v)
    }

    /// `true` when every variable appears in at least one edge.
    pub fn covers_all_vars(&self) -> bool {
        let mut seen = VarSet::EMPTY;
        for e in &self.edges {
            seen = seen.union(*e);
        }
        seen == self.all_vars()
    }

    /// α-acyclicity via the GYO (Graham–Yu–Özsoyoğlu) reduction.
    ///
    /// Repeatedly (a) removes *ear* variables that occur in exactly one
    /// edge and (b) removes edges contained in another edge; the hypergraph
    /// is α-acyclic iff everything vanishes. Acyclic queries have
    /// `fhw = 1`, so by Prop. 2 they factorize to linear size with
    /// constant-delay enumeration — this predicate is how callers detect
    /// that fast path without running the LP-based width search.
    pub fn is_acyclic(&self) -> bool {
        let mut edges: Vec<VarSet> = self.edges.clone();
        loop {
            let mut changed = false;
            // (a) Remove variables occurring in exactly one remaining edge.
            let mut occurrence: Vec<u32> = vec![0; 64];
            for e in &edges {
                for v in e.iter() {
                    occurrence[v.index()] += 1;
                }
            }
            for e in edges.iter_mut() {
                for v in e.iter().collect::<Vec<_>>() {
                    if occurrence[v.index()] == 1 {
                        *e = e.without(v);
                        changed = true;
                    }
                }
            }
            edges.retain(|e| !e.is_empty());
            // (b) Remove edges contained in another edge.
            let mut keep = vec![true; edges.len()];
            for i in 0..edges.len() {
                for j in 0..edges.len() {
                    if i != j
                        && keep[j]
                        && edges[i].is_subset_of(edges[j])
                        && (edges[i] != edges[j] || i > j)
                    {
                        keep[i] = false;
                        changed = true;
                        break;
                    }
                }
            }
            let mut it = keep.iter();
            edges.retain(|_| *it.next().unwrap());
            if edges.is_empty() {
                return true;
            }
            if !changed {
                return false;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> Hypergraph {
        // R(x,y), S(y,z), T(z,x) with x=v0, y=v1, z=v2.
        Hypergraph::new(
            3,
            vec![
                [Var(0), Var(1)].into_iter().collect(),
                [Var(1), Var(2)].into_iter().collect(),
                [Var(2), Var(0)].into_iter().collect(),
            ],
        )
    }

    #[test]
    fn incidence() {
        let h = triangle();
        assert_eq!(h.edges_incident(VarSet::singleton(Var(0))), vec![0, 2]);
        assert_eq!(h.edges_incident(VarSet::singleton(Var(1))), vec![0, 1]);
        assert_eq!(h.edges_incident(VarSet::first_n(3)), vec![0, 1, 2]);
        assert_eq!(h.edges_incident(VarSet::EMPTY), Vec::<usize>::new());
    }

    #[test]
    fn containment() {
        let h = triangle();
        let xy: VarSet = [Var(0), Var(1)].into_iter().collect();
        assert_eq!(h.edges_within(xy), vec![0]);
        assert_eq!(h.edges_within(VarSet::first_n(3)).len(), 3);
    }

    #[test]
    fn neighbors() {
        let h = triangle();
        assert_eq!(h.neighbors(Var(0)), [Var(1), Var(2)].into_iter().collect());
        let path = Hypergraph::new(
            3,
            vec![
                [Var(0), Var(1)].into_iter().collect(),
                [Var(1), Var(2)].into_iter().collect(),
            ],
        );
        assert_eq!(path.neighbors(Var(0)), VarSet::singleton(Var(1)));
        assert_eq!(
            path.neighbors(Var(1)),
            [Var(0), Var(2)].into_iter().collect()
        );
    }

    #[test]
    fn coverage() {
        let h = triangle();
        assert!(h.covers_all_vars());
        let partial = Hypergraph::new(3, vec![[Var(0), Var(1)].into_iter().collect()]);
        assert!(!partial.covers_all_vars());
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_edge_panics() {
        Hypergraph::new(2, vec![VarSet::EMPTY]);
    }

    #[test]
    fn gyo_classifies_classics() {
        // Cyclic: the triangle.
        assert!(!triangle().is_acyclic());
        // Acyclic: paths and stars.
        let path = Hypergraph::new(5, (0..4).map(|i| vs(&[i, i + 1])).collect());
        assert!(path.is_acyclic());
        let star = Hypergraph::new(4, (0..3).map(|i| vs(&[i, 3])).collect());
        assert!(star.is_acyclic());
        // Acyclic: a single big edge subsuming small ones.
        let sub = Hypergraph::new(3, vec![vs(&[0, 1, 2]), vs(&[0, 1]), vs(&[1, 2])]);
        assert!(sub.is_acyclic());
        // Cyclic: 4-cycle.
        let cycle4 = Hypergraph::new(4, (0..4).map(|i| vs(&[i, (i + 1) % 4])).collect());
        assert!(!cycle4.is_acyclic());
        // Cyclic: Loomis–Whitney LW_3 (every pair, missing joint coverage).
        let lw3 = Hypergraph::new(3, vec![vs(&[1, 2]), vs(&[0, 2]), vs(&[0, 1])]);
        assert!(!lw3.is_acyclic());
        // α-acyclic despite containing the triangle as sub-edges: the big
        // edge absorbs them.
        let absorbed = Hypergraph::new(
            3,
            vec![vs(&[0, 1, 2]), vs(&[1, 2]), vs(&[0, 2]), vs(&[0, 1])],
        );
        assert!(absorbed.is_acyclic());
        // Duplicate edges reduce away.
        let dup = Hypergraph::new(2, vec![vs(&[0, 1]), vs(&[0, 1])]);
        assert!(dup.is_acyclic());
    }

    fn vs(vars: &[u32]) -> VarSet {
        vars.iter().map(|&v| Var(v)).collect()
    }
}
