//! Conjunctive queries, hypergraphs and adorned views.
//!
//! This crate implements the query model of §2 of the paper:
//!
//! * [`var::Var`] / [`var::VarSet`] — query variables and fast bitmask sets;
//! * [`atom::Atom`] and [`cq::ConjunctiveQuery`] — the class of CQs
//!   `Q(y) = R_1(x_1), …, R_n(x_n)`, with the *natural join* restriction
//!   (full, no constants, no repeated variables per atom) that the main
//!   results assume;
//! * [`hypergraph::Hypergraph`] — the hypergraph `H = (V, E)` of a natural
//!   join, with the `E_I` incidence operator of §2.1;
//! * [`adorned::AdornedView`] — adorned views `Q^η` with access patterns
//!   `η ∈ {b, f}^k` (§2.2), bound/free variable sets and the lexicographic
//!   enumeration order over free variables of §3.1;
//! * [`parser`] — a small text format for queries
//!   (`"Q(x,y,z) :- R(x,y), S(y,z), T(z,x)"` plus an adornment string
//!   `"bfb"`);
//! * [`rewrite`] — the Example 3 preprocessing that eliminates constants and
//!   repeated variables in linear time, so that w.l.o.g. every full adorned
//!   view is a natural join query.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adorned;
pub mod atom;
pub mod cq;
pub mod hypergraph;
pub mod parser;
pub mod rewrite;
pub mod var;

pub use adorned::{AdornedView, Binding};
pub use atom::Atom;
pub use cq::ConjunctiveQuery;
pub use hypergraph::Hypergraph;
pub use parser::{parse_adorned, parse_query};
pub use var::{Var, VarSet};
