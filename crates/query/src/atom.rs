//! Atoms of a conjunctive query body.

use crate::var::{Var, VarSet};
use cqc_common::value::Value;
use std::fmt;

/// A term in an atom: a variable or a constant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Term {
    /// A query variable.
    Var(Var),
    /// A domain constant.
    Const(Value),
}

/// One atom `R(t_1, …, t_k)` of a query body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Atom {
    /// Name of the referenced relation.
    pub relation: String,
    /// The argument terms in schema order.
    pub terms: Vec<Term>,
}

impl Atom {
    /// Builds an atom over variables only (the natural-join case).
    pub fn new(relation: impl Into<String>, vars: impl IntoIterator<Item = Var>) -> Atom {
        Atom {
            relation: relation.into(),
            terms: vars.into_iter().map(Term::Var).collect(),
        }
    }

    /// The atom's arity.
    pub fn arity(&self) -> usize {
        self.terms.len()
    }

    /// The variables appearing in the atom, in argument order, with
    /// repetitions preserved.
    pub fn vars(&self) -> impl Iterator<Item = Var> + '_ {
        self.terms.iter().filter_map(|t| match t {
            Term::Var(v) => Some(*v),
            Term::Const(_) => None,
        })
    }

    /// The set of variables appearing in the atom.
    pub fn var_set(&self) -> VarSet {
        self.vars().collect()
    }

    /// `true` when the atom is a natural-join atom: every term is a variable
    /// and no variable repeats.
    pub fn is_natural(&self) -> bool {
        let mut seen = VarSet::EMPTY;
        for t in &self.terms {
            match t {
                Term::Const(_) => return false,
                Term::Var(v) => {
                    if seen.contains(*v) {
                        return false;
                    }
                    seen = seen.with(*v);
                }
            }
        }
        true
    }

    /// The schema position of variable `v` in this atom, if present.
    /// For natural atoms the position is unique.
    pub fn position_of(&self, v: Var) -> Option<usize> {
        self.terms
            .iter()
            .position(|t| matches!(t, Term::Var(w) if *w == v))
    }
}

impl fmt::Display for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.relation)?;
        for (i, t) in self.terms.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            match t {
                Term::Var(v) => write!(f, "{v}")?,
                Term::Const(c) => write!(f, "{c}")?,
            }
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn natural_atom_properties() {
        let a = Atom::new("R", [Var(0), Var(1)]);
        assert!(a.is_natural());
        assert_eq!(a.arity(), 2);
        assert_eq!(a.var_set(), [Var(0), Var(1)].into_iter().collect());
        assert_eq!(a.position_of(Var(1)), Some(1));
        assert_eq!(a.position_of(Var(2)), None);
    }

    #[test]
    fn constants_and_repeats_are_not_natural() {
        let a = Atom {
            relation: "R".into(),
            terms: vec![Term::Var(Var(0)), Term::Const(7)],
        };
        assert!(!a.is_natural());
        assert_eq!(a.var_set(), VarSet::singleton(Var(0)));

        let b = Atom::new("S", [Var(1), Var(1)]);
        assert!(!b.is_natural());
        assert_eq!(b.var_set().len(), 1);
    }

    #[test]
    fn display() {
        let a = Atom {
            relation: "R".into(),
            terms: vec![Term::Var(Var(0)), Term::Const(3)],
        };
        assert_eq!(a.to_string(), "R(v0,3)");
    }
}
