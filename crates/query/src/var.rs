//! Query variables and variable sets.

use std::fmt;

/// A query variable, identified by its index in the owning query's variable
/// table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Var(pub u32);

impl Var {
    /// The variable's index as `usize`.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// A set of query variables as a 64-bit mask.
///
/// Conjunctive queries in this workspace are limited to 64 variables; the
/// paper's data complexity setting treats the query as constant-size, and
/// every workload here uses at most a dozen variables.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, PartialOrd, Ord)]
pub struct VarSet(pub u64);

impl VarSet {
    /// The empty set.
    pub const EMPTY: VarSet = VarSet(0);

    /// A singleton set.
    #[inline]
    pub fn singleton(v: Var) -> VarSet {
        debug_assert!(v.0 < 64);
        VarSet(1u64 << v.0)
    }

    /// Set of the first `n` variables `{v0, …, v_{n-1}}`.
    #[inline]
    pub fn first_n(n: usize) -> VarSet {
        assert!(n <= 64);
        if n == 64 {
            VarSet(u64::MAX)
        } else {
            VarSet((1u64 << n) - 1)
        }
    }

    /// Membership test.
    #[inline]
    pub fn contains(self, v: Var) -> bool {
        debug_assert!(v.0 < 64);
        self.0 & (1u64 << v.0) != 0
    }

    /// Inserts a variable (returns the new set).
    #[inline]
    pub fn with(self, v: Var) -> VarSet {
        debug_assert!(v.0 < 64);
        VarSet(self.0 | (1u64 << v.0))
    }

    /// Removes a variable (returns the new set).
    #[inline]
    pub fn without(self, v: Var) -> VarSet {
        debug_assert!(v.0 < 64);
        VarSet(self.0 & !(1u64 << v.0))
    }

    /// Set union.
    #[inline]
    pub fn union(self, other: VarSet) -> VarSet {
        VarSet(self.0 | other.0)
    }

    /// Set intersection.
    #[inline]
    pub fn intersect(self, other: VarSet) -> VarSet {
        VarSet(self.0 & other.0)
    }

    /// Set difference `self \ other`.
    #[inline]
    pub fn minus(self, other: VarSet) -> VarSet {
        VarSet(self.0 & !other.0)
    }

    /// `true` if `self ⊆ other`.
    #[inline]
    pub fn is_subset_of(self, other: VarSet) -> bool {
        self.0 & !other.0 == 0
    }

    /// `true` if the sets share no variable.
    #[inline]
    pub fn is_disjoint(self, other: VarSet) -> bool {
        self.0 & other.0 == 0
    }

    /// Number of variables in the set.
    #[inline]
    pub fn len(self) -> usize {
        self.0.count_ones() as usize
    }

    /// `true` if empty.
    #[inline]
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Iterates over members in increasing index order.
    pub fn iter(self) -> impl Iterator<Item = Var> {
        let mut bits = self.0;
        std::iter::from_fn(move || {
            if bits == 0 {
                None
            } else {
                let i = bits.trailing_zeros();
                bits &= bits - 1;
                Some(Var(i))
            }
        })
    }
}

impl FromIterator<Var> for VarSet {
    fn from_iter<I: IntoIterator<Item = Var>>(iter: I) -> VarSet {
        let mut s = VarSet::EMPTY;
        for v in iter {
            s = s.with(v);
        }
        s
    }
}

impl fmt::Display for VarSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        let mut first = true;
        for v in self.iter() {
            if !first {
                write!(f, ",")?;
            }
            write!(f, "{v}")?;
            first = false;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_set_algebra() {
        let a: VarSet = [Var(0), Var(2), Var(5)].into_iter().collect();
        let b: VarSet = [Var(2), Var(3)].into_iter().collect();
        assert_eq!(a.len(), 3);
        assert!(a.contains(Var(2)));
        assert!(!a.contains(Var(1)));
        assert_eq!(a.intersect(b), VarSet::singleton(Var(2)));
        assert_eq!(a.union(b).len(), 4);
        assert_eq!(a.minus(b), [Var(0), Var(5)].into_iter().collect());
        assert!(VarSet::singleton(Var(2)).is_subset_of(a));
        assert!(!a.is_subset_of(b));
        assert!(a.minus(b).is_disjoint(b));
    }

    #[test]
    fn iter_in_order() {
        let s: VarSet = [Var(5), Var(0), Var(63)].into_iter().collect();
        let got: Vec<Var> = s.iter().collect();
        assert_eq!(got, vec![Var(0), Var(5), Var(63)]);
    }

    #[test]
    fn first_n_edges() {
        assert_eq!(VarSet::first_n(0), VarSet::EMPTY);
        assert_eq!(VarSet::first_n(3).len(), 3);
        assert_eq!(VarSet::first_n(64).len(), 64);
    }

    #[test]
    fn with_without_roundtrip() {
        let s = VarSet::EMPTY.with(Var(7)).with(Var(9));
        assert_eq!(s.without(Var(7)), VarSet::singleton(Var(9)));
        assert_eq!(s.without(Var(3)), s);
    }

    #[test]
    fn display_formats() {
        let s: VarSet = [Var(1), Var(3)].into_iter().collect();
        assert_eq!(s.to_string(), "{v1,v3}");
        assert_eq!(VarSet::EMPTY.to_string(), "{}");
    }
}
