//! Linear-time elimination of constants and repeated variables (Example 3).
//!
//! The paper observes (§2.4) that whenever compression time is at least
//! Ω(|D|) we may assume w.l.o.g. that the adorned view has no constants and
//! no repeated variables within an atom: a linear pass rewrites
//! `Q^fb(x,z) = R(x,y,a), S(y,y,z)` into
//! `Q^fb(x,z) = R'(x,y), S'(y,z)` with `R'(x,y) = R(x,y,a)` and
//! `S'(y,z) = S(y,y,z)`. This module performs that pass, producing a new
//! database containing the derived relations and a natural-join view over
//! them.

use crate::adorned::AdornedView;
use crate::atom::{Atom, Term};
use crate::cq::ConjunctiveQuery;
use crate::var::Var;
use cqc_common::error::Result;
use cqc_common::value::Value;
use cqc_storage::{Database, Relation};

/// The result of rewriting an adorned view.
#[derive(Debug, Clone)]
pub struct Rewritten {
    /// The rewritten view: a natural join query over the rewritten database
    /// (unless `always_empty`).
    pub view: AdornedView,
    /// Database containing the original relations that are still referenced
    /// plus all derived relations.
    pub database: Database,
    /// `true` when a fully-ground atom (all constants) failed its membership
    /// test, making the view empty regardless of the access request.
    pub always_empty: bool,
}

/// Rewrites an adorned view over `db` into an equivalent natural-join view
/// (Example 3). Runs in time linear in `|D|`.
///
/// Atoms that are already natural keep their relation; every other atom gets
/// a derived relation obtained by filtering on its constants and repeated
/// variables and projecting onto the first occurrence of each distinct
/// variable. Atoms with no variables become existence guards: a failing
/// guard makes the view constantly empty, a passing guard is dropped.
///
/// # Errors
///
/// Fails when an atom references a missing relation or mismatched arity.
pub fn rewrite_view(view: &AdornedView, db: &Database) -> Result<Rewritten> {
    let query = view.query();
    query.check_schema(db)?;

    let mut out_db = Database::new();
    let mut new_atoms: Vec<Atom> = Vec::with_capacity(query.atoms.len());
    let mut always_empty = false;
    let mut derived_counter = 0usize;

    for atom in &query.atoms {
        if atom.is_natural() {
            if out_db.get(&atom.relation).is_none() {
                db.require(&atom.relation)?; // surface schema errors here
                let shared = db.get_arc(&atom.relation).expect("require just succeeded");
                // Share the allocation instead of deep-copying the rows:
                // the rewrite is read-only, and keeping the original `Arc`
                // lets downstream index pools recognize the relation across
                // selection and build.
                out_db.add_arc(shared)?;
            }
            new_atoms.push(atom.clone());
            continue;
        }

        let rel = db.require(&atom.relation)?;

        // First occurrence position of each distinct variable, in order.
        let mut distinct_vars: Vec<Var> = Vec::new();
        let mut keep_cols: Vec<usize> = Vec::new();
        for (pos, term) in atom.terms.iter().enumerate() {
            if let Term::Var(v) = term {
                if !distinct_vars.contains(v) {
                    distinct_vars.push(*v);
                    keep_cols.push(pos);
                }
            }
        }

        // Filter rows on constants and repeated-variable equalities.
        let matches = |row: &[Value]| -> bool {
            let mut first_seen: Vec<(Var, Value)> = Vec::new();
            for (pos, term) in atom.terms.iter().enumerate() {
                match term {
                    Term::Const(c) => {
                        if row[pos] != *c {
                            return false;
                        }
                    }
                    Term::Var(v) => {
                        if let Some(&(_, val)) = first_seen.iter().find(|(w, _)| w == v) {
                            if row[pos] != val {
                                return false;
                            }
                        } else {
                            first_seen.push((*v, row[pos]));
                        }
                    }
                }
            }
            true
        };

        if distinct_vars.is_empty() {
            // Fully ground atom: an existence guard.
            let nonempty = rel.iter().any(matches);
            if !nonempty {
                always_empty = true;
            }
            continue;
        }

        let tuples: Vec<Vec<Value>> = rel
            .iter()
            .filter(|row| matches(row))
            .map(|row| keep_cols.iter().map(|&c| row[c]).collect())
            .collect();

        derived_counter += 1;
        let name = format!("{}__rw{}", atom.relation, derived_counter);
        out_db.add(Relation::new(&name, distinct_vars.len(), tuples))?;
        new_atoms.push(Atom::new(name, distinct_vars));
    }

    let new_query = ConjunctiveQuery {
        name: query.name.clone(),
        head: query.head.clone(),
        atoms: new_atoms,
        var_names: query.var_names.clone(),
    };
    let view = AdornedView::new(new_query, &view.pattern())?;
    Ok(Rewritten {
        view,
        database: out_db,
        always_empty,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_adorned;

    fn db() -> Database {
        let mut db = Database::new();
        db.add(Relation::new(
            "R",
            3,
            vec![vec![1, 2, 9], vec![1, 3, 9], vec![2, 2, 5]],
        ))
        .unwrap();
        db.add(Relation::new(
            "S",
            3,
            vec![vec![2, 2, 4], vec![2, 3, 4], vec![3, 3, 6]],
        ))
        .unwrap();
        db
    }

    #[test]
    fn example_3_rewrite() {
        // Q^fb(x,z) = R(x,y,9), S(y,y,z): the paper's Example 3 with a = 9.
        let v = parse_adorned("Q(x, z, y) :- R(x, y, 9), S(y, y, z)", "fbf").unwrap();
        let rw = rewrite_view(&v, &db()).unwrap();
        assert!(!rw.always_empty);
        let q = rw.view.query();
        assert!(q.is_natural_join());
        assert_eq!(q.atoms.len(), 2);

        // R'(x,y) = R(x,y,9) keeps rows with third column 9.
        let r2 = rw.database.get(&q.atoms[0].relation).unwrap();
        assert_eq!(r2.arity(), 2);
        assert!(r2.contains(&[1, 2]));
        assert!(r2.contains(&[1, 3]));
        assert!(!r2.contains(&[2, 2]));

        // S'(y,z) = S(y,y,z) keeps rows with equal first two columns.
        let s2 = rw.database.get(&q.atoms[1].relation).unwrap();
        assert_eq!(s2.arity(), 2);
        assert!(s2.contains(&[2, 4]));
        assert!(s2.contains(&[3, 6]));
        assert!(!s2.contains(&[2, 3]));
    }

    #[test]
    fn natural_atoms_untouched() {
        let v = parse_adorned("Q(a, b) :- R(a, b, c)", "bf");
        // R(a,b,c) is natural but the head projects c away: still rewritable,
        // the projection check happens later.
        let v = v.unwrap();
        let rw = rewrite_view(&v, &db()).unwrap();
        assert_eq!(rw.view.query().atoms[0].relation, "R");
        assert_eq!(rw.database.get("R").unwrap().len(), 3);
    }

    #[test]
    fn ground_guard_passes_and_drops() {
        let v = parse_adorned("Q(x, y) :- R(x, y, 9), S(2, 2, 4)", "bf").unwrap();
        let rw = rewrite_view(&v, &db()).unwrap();
        assert!(!rw.always_empty);
        assert_eq!(rw.view.query().atoms.len(), 1);
    }

    #[test]
    fn ground_guard_fails() {
        let v = parse_adorned("Q(x, y) :- R(x, y, 9), S(7, 7, 7)", "bf").unwrap();
        let rw = rewrite_view(&v, &db()).unwrap();
        assert!(rw.always_empty);
    }

    #[test]
    fn repeated_vars_across_atoms_are_fine() {
        // Repetition across atoms is ordinary join structure, not a rewrite
        // target.
        let v = parse_adorned("Q(x, y) :- R(x, y, 9), S(x, y, 4)", "bf").unwrap();
        let rw = rewrite_view(&v, &db()).unwrap();
        assert!(rw.view.query().is_natural_join());
        assert_eq!(rw.view.query().atoms.len(), 2);
    }

    #[test]
    fn missing_relation_errors() {
        let v = parse_adorned("Q(x) :- Zap(x, x)", "b").unwrap();
        assert!(rewrite_view(&v, &db()).is_err());
    }
}
