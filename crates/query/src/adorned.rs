//! Adorned views and access patterns (§2.2).

use crate::cq::ConjunctiveQuery;
use crate::var::{Var, VarSet};
use cqc_common::error::{CqcError, Result};
use cqc_common::value::Value;
use std::fmt;

/// The binding type of a head variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Binding {
    /// The access request supplies a value for this variable (`b`).
    Bound,
    /// The access request enumerates values for this variable (`f`).
    Free,
}

impl Binding {
    /// One-letter code, as in the paper's superscripts.
    pub fn code(self) -> char {
        match self {
            Binding::Bound => 'b',
            Binding::Free => 'f',
        }
    }
}

/// An adorned view `Q^η(x_1, …, x_k)`: a conjunctive query whose head
/// variables each carry a binding type (§2.2).
///
/// An access request `Q^η[v]` supplies a value for every bound variable (in
/// head order) and asks for the enumeration of the matching free-variable
/// valuations. The enumeration order over free variables is the
/// lexicographic order induced by their head order (§3.1).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AdornedView {
    query: ConjunctiveQuery,
    bindings: Vec<Binding>,
}

impl AdornedView {
    /// Attaches an access pattern string (e.g. `"bfb"`) to a query.
    ///
    /// # Errors
    ///
    /// Fails when the pattern length differs from the head arity or contains
    /// characters other than `b`/`f`.
    pub fn new(query: ConjunctiveQuery, pattern: &str) -> Result<AdornedView> {
        if pattern.len() != query.head.len() {
            return Err(CqcError::InvalidQuery(format!(
                "access pattern `{pattern}` has length {} but the head of `{}` has {} variables",
                pattern.len(),
                query.name,
                query.head.len()
            )));
        }
        let bindings = pattern
            .chars()
            .map(|c| match c {
                'b' => Ok(Binding::Bound),
                'f' => Ok(Binding::Free),
                other => Err(CqcError::InvalidQuery(format!(
                    "access pattern character `{other}` is not `b` or `f`"
                ))),
            })
            .collect::<Result<Vec<_>>>()?;
        Ok(AdornedView { query, bindings })
    }

    /// The underlying query.
    pub fn query(&self) -> &ConjunctiveQuery {
        &self.query
    }

    /// The per-head-position bindings.
    pub fn bindings(&self) -> &[Binding] {
        &self.bindings
    }

    /// The access pattern as a string of `b`/`f` codes.
    pub fn pattern(&self) -> String {
        self.bindings.iter().map(|b| b.code()).collect()
    }

    /// The set `V_b` of bound variables.
    pub fn bound_vars(&self) -> VarSet {
        self.bound_head().into_iter().collect()
    }

    /// The set `V_f` of free variables.
    pub fn free_vars(&self) -> VarSet {
        self.free_head().into_iter().collect()
    }

    /// Bound head variables in head order — the order in which an access
    /// request supplies values.
    pub fn bound_head(&self) -> Vec<Var> {
        self.query
            .head
            .iter()
            .zip(&self.bindings)
            .filter(|(_, b)| **b == Binding::Bound)
            .map(|(v, _)| *v)
            .collect()
    }

    /// Free head variables in head order — the enumeration order
    /// `x_f^1, …, x_f^µ` of §3.1.
    pub fn free_head(&self) -> Vec<Var> {
        self.query
            .head
            .iter()
            .zip(&self.bindings)
            .filter(|(_, b)| **b == Binding::Free)
            .map(|(v, _)| *v)
            .collect()
    }

    /// `µ = |V_f|`, the number of free variables.
    pub fn mu(&self) -> usize {
        self.bindings
            .iter()
            .filter(|b| **b == Binding::Free)
            .count()
    }

    /// `true` when every head variable is bound (§2.2 "boolean").
    pub fn is_boolean(&self) -> bool {
        self.mu() == 0
    }

    /// `true` when every head variable is free (§2.2 "non-parametric").
    pub fn is_non_parametric(&self) -> bool {
        self.mu() == self.bindings.len()
    }

    /// `true` when the underlying CQ is full (§2.2).
    pub fn is_full(&self) -> bool {
        self.query.is_full()
    }

    /// Validates that an access request supplies exactly one value per bound
    /// variable.
    pub fn check_access(&self, bound_values: &[Value]) -> Result<()> {
        let expect = self.bindings.len() - self.mu();
        if bound_values.len() != expect {
            return Err(CqcError::InvalidAccess(format!(
                "access request supplies {} values but pattern `{}` has {} bound variables",
                bound_values.len(),
                self.pattern(),
                expect
            )));
        }
        Ok(())
    }
}

impl fmt::Display for AdornedView {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}^{} :: {}",
            self.query.name,
            self.pattern(),
            self.query
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::atom::Atom;

    fn triangle() -> ConjunctiveQuery {
        ConjunctiveQuery {
            name: "Q".into(),
            head: vec![Var(0), Var(1), Var(2)],
            atoms: vec![
                Atom::new("R", [Var(0), Var(1)]),
                Atom::new("S", [Var(1), Var(2)]),
                Atom::new("T", [Var(2), Var(0)]),
            ],
            var_names: vec!["x".into(), "y".into(), "z".into()],
        }
    }

    #[test]
    fn pattern_roundtrip() {
        let v = AdornedView::new(triangle(), "bfb").unwrap();
        assert_eq!(v.pattern(), "bfb");
        assert_eq!(v.bound_head(), vec![Var(0), Var(2)]);
        assert_eq!(v.free_head(), vec![Var(1)]);
        assert_eq!(v.mu(), 1);
        assert!(!v.is_boolean());
        assert!(!v.is_non_parametric());
        assert!(v.is_full());
        assert_eq!(v.bound_vars(), [Var(0), Var(2)].into_iter().collect());
        assert_eq!(v.free_vars(), VarSet::singleton(Var(1)));
    }

    #[test]
    fn boolean_and_non_parametric() {
        let b = AdornedView::new(triangle(), "bbb").unwrap();
        assert!(b.is_boolean());
        assert_eq!(b.mu(), 0);
        let f = AdornedView::new(triangle(), "fff").unwrap();
        assert!(f.is_non_parametric());
        assert_eq!(f.free_head(), vec![Var(0), Var(1), Var(2)]);
    }

    #[test]
    fn bad_patterns_rejected() {
        assert!(AdornedView::new(triangle(), "bf").is_err());
        assert!(AdornedView::new(triangle(), "bfx").is_err());
    }

    #[test]
    fn access_arity_checked() {
        let v = AdornedView::new(triangle(), "bfb").unwrap();
        assert!(v.check_access(&[1, 2]).is_ok());
        assert!(v.check_access(&[1]).is_err());
        assert!(v.check_access(&[1, 2, 3]).is_err());
    }

    #[test]
    fn free_order_follows_head_order() {
        // Head order (z, x, y) with pattern fbf: free order must be (z, y).
        let q = ConjunctiveQuery {
            name: "P".into(),
            head: vec![Var(2), Var(0), Var(1)],
            atoms: vec![
                Atom::new("R", [Var(0), Var(1)]),
                Atom::new("S", [Var(1), Var(2)]),
                Atom::new("T", [Var(2), Var(0)]),
            ],
            var_names: vec!["x".into(), "y".into(), "z".into()],
        };
        let v = AdornedView::new(q, "fbf").unwrap();
        assert_eq!(v.free_head(), vec![Var(2), Var(1)]);
        assert_eq!(v.bound_head(), vec![Var(0)]);
    }
}
