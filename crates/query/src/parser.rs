//! A small text format for conjunctive queries.
//!
//! Grammar (whitespace-insensitive):
//!
//! ```text
//! query := NAME '(' terms ')' (':-' | '<-') atom (',' atom)*
//! atom  := NAME '(' terms ')'
//! terms := term (',' term)*
//! term  := IDENT            -- a variable
//!        | INTEGER          -- a constant
//! ```
//!
//! Examples:
//!
//! ```
//! use cqc_query::parser::{parse_query, parse_adorned};
//! let q = parse_query("Q(x, y, z) :- R(x, y), S(y, z), T(z, x)").unwrap();
//! assert_eq!(q.head.len(), 3);
//! let v = parse_adorned("Q(x, y, z) :- R(x, y), S(y, z), T(z, x)", "bfb").unwrap();
//! assert_eq!(v.mu(), 1);
//! ```

use crate::adorned::AdornedView;
use crate::atom::{Atom, Term};
use crate::cq::ConjunctiveQuery;
use crate::var::Var;
use cqc_common::error::{CqcError, Result};

#[derive(Debug, Clone, PartialEq)]
enum Token {
    Ident(String),
    Int(u64),
    LParen,
    RParen,
    Comma,
    Turnstile,
}

fn tokenize(text: &str) -> Result<Vec<Token>> {
    let mut tokens = Vec::new();
    let bytes = text.as_bytes();
    let mut i = 0usize;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\n' | '\r' => i += 1,
            '(' => {
                tokens.push(Token::LParen);
                i += 1;
            }
            ')' => {
                tokens.push(Token::RParen);
                i += 1;
            }
            ',' => {
                tokens.push(Token::Comma);
                i += 1;
            }
            ':' => {
                if bytes.get(i + 1) == Some(&b'-') {
                    tokens.push(Token::Turnstile);
                    i += 2;
                } else {
                    return Err(CqcError::Parse(format!("expected `:-` at byte {i}")));
                }
            }
            '<' => {
                if bytes.get(i + 1) == Some(&b'-') {
                    tokens.push(Token::Turnstile);
                    i += 2;
                } else {
                    return Err(CqcError::Parse(format!("expected `<-` at byte {i}")));
                }
            }
            '0'..='9' => {
                let start = i;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                let lit = &text[start..i];
                let n = lit.parse::<u64>().map_err(|_| {
                    CqcError::Parse(format!("integer literal `{lit}` out of range"))
                })?;
                tokens.push(Token::Int(n));
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
                {
                    i += 1;
                }
                tokens.push(Token::Ident(text[start..i].to_string()));
            }
            other => {
                return Err(CqcError::Parse(format!(
                    "unexpected character `{other}` at byte {i}"
                )));
            }
        }
    }
    Ok(tokens)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Result<Token> {
        let t = self
            .tokens
            .get(self.pos)
            .cloned()
            .ok_or_else(|| CqcError::Parse("unexpected end of input".into()))?;
        self.pos += 1;
        Ok(t)
    }

    fn expect(&mut self, want: &Token, what: &str) -> Result<()> {
        let got = self.next()?;
        if &got == want {
            Ok(())
        } else {
            Err(CqcError::Parse(format!("expected {what}, found {got:?}")))
        }
    }

    fn ident(&mut self, what: &str) -> Result<String> {
        match self.next()? {
            Token::Ident(s) => Ok(s),
            other => Err(CqcError::Parse(format!("expected {what}, found {other:?}"))),
        }
    }
}

/// Raw terms before variable resolution.
enum RawTerm {
    Name(String),
    Const(u64),
}

fn parse_term_list(p: &mut Parser) -> Result<Vec<RawTerm>> {
    p.expect(&Token::LParen, "`(`")?;
    let mut terms = Vec::new();
    loop {
        match p.next()? {
            Token::Ident(s) => terms.push(RawTerm::Name(s)),
            Token::Int(n) => terms.push(RawTerm::Const(n)),
            other => return Err(CqcError::Parse(format!("expected a term, found {other:?}"))),
        }
        match p.next()? {
            Token::Comma => continue,
            Token::RParen => break,
            other => {
                return Err(CqcError::Parse(format!(
                    "expected `,` or `)`, found {other:?}"
                )));
            }
        }
    }
    Ok(terms)
}

/// Parses a conjunctive query from text.
///
/// Variables are named by identifiers; constants are unsigned integers. The
/// head may only contain variables.
pub fn parse_query(text: &str) -> Result<ConjunctiveQuery> {
    let mut p = Parser {
        tokens: tokenize(text)?,
        pos: 0,
    };
    let name = p.ident("query name")?;
    let head_terms = parse_term_list(&mut p)?;
    p.expect(&Token::Turnstile, "`:-`")?;

    let mut var_names: Vec<String> = Vec::new();
    let var_of = |n: &str, var_names: &mut Vec<String>| -> Var {
        if let Some(i) = var_names.iter().position(|v| v == n) {
            Var(i as u32)
        } else {
            var_names.push(n.to_string());
            Var((var_names.len() - 1) as u32)
        }
    };

    let mut head = Vec::with_capacity(head_terms.len());
    for t in head_terms {
        match t {
            RawTerm::Name(n) => head.push(var_of(&n, &mut var_names)),
            RawTerm::Const(c) => {
                return Err(CqcError::Parse(format!(
                    "constant `{c}` is not allowed in the query head"
                )));
            }
        }
    }

    let mut atoms = Vec::new();
    loop {
        let rel = p.ident("relation name")?;
        let raw = parse_term_list(&mut p)?;
        let terms = raw
            .into_iter()
            .map(|t| match t {
                RawTerm::Name(n) => Term::Var(var_of(&n, &mut var_names)),
                RawTerm::Const(c) => Term::Const(c),
            })
            .collect();
        atoms.push(Atom {
            relation: rel,
            terms,
        });
        match p.peek() {
            Some(Token::Comma) => {
                p.pos += 1;
            }
            None => break,
            Some(other) => {
                return Err(CqcError::Parse(format!(
                    "expected `,` or end of input after an atom, found {other:?}"
                )));
            }
        }
    }

    if var_names.len() > 64 {
        return Err(CqcError::Parse(
            "queries with more than 64 variables are not supported".into(),
        ));
    }

    Ok(ConjunctiveQuery {
        name,
        head,
        atoms,
        var_names,
    })
}

/// Parses a query and attaches an access pattern, producing an adorned view.
pub fn parse_adorned(text: &str, pattern: &str) -> Result<AdornedView> {
    AdornedView::new(parse_query(text)?, pattern)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_triangle() {
        let q = parse_query("Q(x, y, z) :- R(x, y), S(y, z), T(z, x)").unwrap();
        assert_eq!(q.name, "Q");
        assert_eq!(q.head, vec![Var(0), Var(1), Var(2)]);
        assert_eq!(q.atoms.len(), 3);
        assert!(q.is_natural_join());
        assert_eq!(q.to_string(), "Q(x,y,z) :- R(x,y), S(y,z), T(z,x)");
    }

    #[test]
    fn parses_constants_and_repeats() {
        let q = parse_query("Q(x, z) :- R(x, y, 7), S(y, y, z)").unwrap();
        assert!(!q.is_natural_join());
        assert_eq!(q.var_names, vec!["x", "z", "y"]);
        assert_eq!(q.atoms[0].terms[2], Term::Const(7));
    }

    #[test]
    fn alternative_arrow() {
        let q = parse_query("V(a, b) <- E(a, b)").unwrap();
        assert_eq!(q.atoms.len(), 1);
    }

    #[test]
    fn errors_are_reported() {
        assert!(parse_query("Q(x) :-").is_err());
        assert!(parse_query("Q(x) R(x)").is_err());
        assert!(parse_query("Q(3) :- R(x)").is_err());
        assert!(parse_query("Q(x :- R(x)").is_err());
        assert!(parse_query("Q(x) :- R(x,)").is_err());
        assert!(parse_query("").is_err());
        assert!(parse_query("Q(x) := R(x)").is_err());
    }

    #[test]
    fn adorned_parse() {
        let v = parse_adorned("Q(x, y, z) :- R(x, y), S(y, z), T(z, x)", "fff").unwrap();
        assert!(v.is_non_parametric());
        assert!(parse_adorned("Q(x) :- R(x)", "bb").is_err());
    }

    #[test]
    fn head_variable_not_in_body_is_allowed_by_parser() {
        // Structural validation happens later; the parser accepts it.
        let q = parse_query("Q(x, w) :- R(x)").unwrap();
        assert!(!q.body_vars().contains(Var(1)));
    }

    #[test]
    fn whitespace_insensitive() {
        let a = parse_query("Q(x,y):-R(x,y)").unwrap();
        let b = parse_query("  Q ( x , y )  :-  R ( x , y ) ").unwrap();
        assert_eq!(a, b);
    }
}
