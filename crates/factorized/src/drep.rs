//! The constant-delay factorized representation (Propositions 2 and 4).

use crate::bag::MaterializedBag;
use cqc_common::error::Result;
use cqc_common::heap::HeapSize;
use cqc_common::metrics;
use cqc_common::value::{Tuple, Value};
use cqc_decomp::TreeDecomposition;
use cqc_query::{AdornedView, Var, VarSet};
use cqc_storage::{Database, Delta, Relation};

/// A factorized representation of a full adorned view over a `V_b`-connex
/// tree decomposition: semijoin-reduced materialized bags indexed by their
/// top-down bound variables, enumerated in pre-order with O(1) delay.
#[derive(Debug)]
pub struct FactorizedRepresentation {
    view: AdornedView,
    /// Pre-order sequence of non-root bags.
    bags: Vec<MaterializedBag>,
    /// Tree parent in `bags` indexes (`None` = child of the root bag);
    /// retained so delta maintenance can re-reduce a subset of bags.
    parent_of: Vec<Option<usize>>,
    /// Relations fully contained in `V_b`, checked per access request
    /// (§5.1: "a hash index that tests membership for every hyperedge of H
    /// contained in V_b"; sorted-relation membership is the same Õ(1)).
    root_checks: Vec<(Relation, Vec<Var>)>,
    num_vars: usize,
}

/// Bottom-up semijoin reduction over the bags flagged in `dirty`: a bag row
/// survives iff every child bag has a matching row. Bags are in pre-order,
/// so the reversed index order is a valid bottom-up sweep (children are
/// already truthful when their parent is processed). Restricting to a
/// `dirty` set is sound whenever it is closed under ancestors of changed
/// bags — an untouched bag was reduced against children whose state has not
/// changed since.
fn semijoin_reduce(bags: &mut [MaterializedBag], parent_of: &[Option<usize>], dirty: &[bool]) {
    let mut children_of: Vec<Vec<usize>> = vec![Vec::new(); bags.len()];
    for (i, p) in parent_of.iter().enumerate() {
        if let Some(p) = p {
            children_of[*p].push(i);
        }
    }
    for bi in (0..bags.len()).rev() {
        if !dirty[bi] || children_of[bi].is_empty() {
            continue;
        }
        // For each child: positions of the child's bound vars inside this
        // bag's row (bound prefix then free suffix).
        let row_vars: Vec<Var> = {
            let mut v = bags[bi].bound_vars.clone();
            v.extend(&bags[bi].free_vars);
            v
        };
        let extractors: Vec<(usize, Vec<usize>)> = children_of[bi]
            .iter()
            .map(|&cbi| {
                let positions = bags[cbi]
                    .bound_vars
                    .iter()
                    .map(|bv| {
                        row_vars
                            .iter()
                            .position(|rv| rv == bv)
                            .expect("child bound var is in the parent bag")
                    })
                    .collect();
                (cbi, positions)
            })
            .collect();
        // We cannot hold `&mut bags[bi]` and `&bags[cbi]` at once, so
        // collect keep-flags first, then retain.
        let n = bags[bi].len();
        let mut keep = vec![true; n];
        for (i, flag) in keep.iter_mut().enumerate() {
            let row = bags[bi].row(i);
            for (cbi, positions) in &extractors {
                let key: Vec<Value> = positions.iter().map(|&p| row[p]).collect();
                if !bags[*cbi].contains_key(&key) {
                    *flag = false;
                    break;
                }
            }
        }
        let mut it = keep.into_iter();
        bags[bi].retain(|_| it.next().unwrap());
    }
}

impl FactorizedRepresentation {
    /// Builds the representation over the given connex decomposition.
    ///
    /// # Errors
    ///
    /// Fails when the view is not a full natural join, the decomposition is
    /// not `V_b`-connex, or schemas mismatch.
    pub fn build(
        view: &AdornedView,
        db: &Database,
        td: &TreeDecomposition,
    ) -> Result<FactorizedRepresentation> {
        let query = view.query();
        query.require_natural_join()?;
        query.check_schema(db)?;
        let h = query.hypergraph();
        td.validate_connex(&h, view.bound_vars())?;

        let atoms: Vec<(String, Vec<Var>)> = query
            .atoms
            .iter()
            .map(|a| (a.relation.clone(), a.vars().collect()))
            .collect();

        // Materialize bags in pre-order.
        let pre = td.preorder();
        debug_assert_eq!(pre[0], td.root());
        let mut bags: Vec<MaterializedBag> = Vec::with_capacity(pre.len() - 1);
        let mut bag_index_of_node = vec![usize::MAX; td.len()];
        for &t in &pre[1..] {
            bag_index_of_node[t] = bags.len();
            bags.push(MaterializedBag::build(
                t,
                td.bag_bound(t),
                td.bag_free(t),
                &atoms,
                db,
            )?);
        }
        // Tree parent of each bag, in `bags` indexes.
        let parent_of: Vec<Option<usize>> = bags
            .iter()
            .map(|b| {
                let p = td.parent(b.node).expect("non-root");
                if p == td.root() {
                    None
                } else {
                    Some(bag_index_of_node[p])
                }
            })
            .collect();
        // Bottom-up semijoin reduction: a bag row survives iff every child
        // bag has a matching row (children already reduced → every survivor
        // extends to the whole subtree).
        let all = vec![true; bags.len()];
        semijoin_reduce(&mut bags, &parent_of, &all);

        // Root membership checks: edges fully inside V_b.
        let vb = view.bound_vars();
        let mut root_checks = Vec::new();
        for atom in &query.atoms {
            let vars: Vec<Var> = atom.vars().collect();
            if vars.iter().all(|v| vb.contains(*v)) {
                root_checks.push((db.require(&atom.relation)?.clone(), vars));
            }
        }

        Ok(FactorizedRepresentation {
            view: view.clone(),
            bags,
            parent_of,
            root_checks,
            num_vars: query.num_vars(),
        })
    }

    /// Re-materializes only the bags whose local database is touched by
    /// `delta` (already applied to `db`), plus their ancestors, then
    /// re-runs the semijoin reduction restricted to that set.
    ///
    /// The reduction is destructive — a dropped bag row cannot resurrect
    /// locally — so a touched bag is re-derived from the base relations
    /// rather than patched, and every ancestor of a touched bag is
    /// re-derived too (its reduction was computed against the old subtree).
    /// Bags with a fully untouched subtree keep their reduced state, which
    /// is exactly what a full rebuild would recompute for them.
    ///
    /// Returns the maintained representation and the number of re-derived
    /// bags, or `Ok(None)` when the stored view cannot absorb deltas
    /// (non-natural atoms from the Example 3 rewrite).
    ///
    /// # Errors
    ///
    /// Propagates schema errors from the per-bag rebuilds.
    pub fn maintained(
        &self,
        db: &Database,
        delta: &Delta,
    ) -> Result<Option<(FactorizedRepresentation, usize)>> {
        let query = self.view.query();
        if query.atoms.iter().any(|a| !a.is_natural()) {
            return Ok(None);
        }
        query.check_schema(db)?;
        let atoms: Vec<(String, Vec<Var>)> = query
            .atoms
            .iter()
            .map(|a| (a.relation.clone(), a.vars().collect()))
            .collect();

        // A bag is stale iff some atom over a touched relation shares a
        // variable with it (its local database projects every incident
        // relation); close the set under ancestors (see above).
        let mut dirty = vec![false; self.bags.len()];
        for (bi, b) in self.bags.iter().enumerate() {
            let bag_set: VarSet = b.bound_vars.iter().chain(&b.free_vars).copied().collect();
            dirty[bi] = atoms
                .iter()
                .any(|(rel, vars)| delta.touches(rel) && vars.iter().any(|v| bag_set.contains(*v)));
        }
        for bi in (0..self.bags.len()).rev() {
            if dirty[bi] {
                let mut p = self.parent_of[bi];
                while let Some(pi) = p {
                    if dirty[pi] {
                        break;
                    }
                    dirty[pi] = true;
                    p = self.parent_of[pi];
                }
            }
        }
        let rebuilt = dirty.iter().filter(|&&d| d).count();

        let mut bags = Vec::with_capacity(self.bags.len());
        for (bi, b) in self.bags.iter().enumerate() {
            if dirty[bi] {
                let bound: VarSet = b.bound_vars.iter().copied().collect();
                let free: VarSet = b.free_vars.iter().copied().collect();
                bags.push(MaterializedBag::build(b.node, bound, free, &atoms, db)?);
            } else {
                bags.push(b.clone());
            }
        }

        // Refresh the root-check snapshots of touched relations from the
        // post-delta database; untouched ones are still current.
        let mut root_checks = Vec::with_capacity(self.root_checks.len());
        for (rel, vars) in &self.root_checks {
            if delta.touches(rel.name()) {
                root_checks.push((db.require(rel.name())?.clone(), vars.clone()));
            } else {
                root_checks.push((rel.clone(), vars.clone()));
            }
        }

        semijoin_reduce(&mut bags, &self.parent_of, &dirty);
        Ok(Some((
            FactorizedRepresentation {
                view: self.view.clone(),
                bags,
                parent_of: self.parent_of.clone(),
                root_checks,
                num_vars: self.num_vars,
            },
            rebuilt,
        )))
    }

    /// Convenience constructor: searches for a width-minimal decomposition
    /// first (Prop. 4 end-to-end).
    pub fn build_with_search(
        view: &AdornedView,
        db: &Database,
    ) -> Result<FactorizedRepresentation> {
        let query = view.query();
        query.require_natural_join()?;
        let h = query.hypergraph();
        let found =
            cqc_decomp::search_connex(&h, view.bound_vars(), cqc_decomp::Objective::MinimizeWidth)?;
        FactorizedRepresentation::build(view, db, &found.td)
    }

    /// Answers an access request with constant delay.
    ///
    /// The returned iterator owns its scratch (valuation, cursors, key and
    /// emit buffers); [`FactorizedIter::reset`] serves further requests
    /// from the same scratch with zero steady-state allocations.
    ///
    /// # Errors
    ///
    /// Fails when the bound value count mismatches the access pattern.
    pub fn answer(&self, bound_values: &[Value]) -> Result<FactorizedIter<'_>> {
        let mut it = FactorizedIter {
            rep: self,
            valuation: Vec::new(),
            cursor: vec![(0, 0); self.bags.len()],
            key: Vec::new(),
            emit: Vec::new(),
            started: false,
            done: false,
        };
        it.reset(bound_values)?;
        Ok(it)
    }

    /// Push-style answering into `sink` (stopping early if the sink
    /// declines).
    ///
    /// # Errors
    ///
    /// Fails when the bound value count mismatches the access pattern.
    pub fn answer_into(
        &self,
        bound_values: &[Value],
        sink: &mut impl cqc_common::AnswerSink,
    ) -> Result<()> {
        self.answer(bound_values)?.drain_into(sink);
        Ok(())
    }

    /// First-answer probe. No answer tuple is materialized.
    pub fn exists(&self, bound_values: &[Value]) -> Result<bool> {
        Ok(self.answer(bound_values)?.advance())
    }

    /// The total number of materialized bag tuples (the dominant space
    /// term).
    pub fn materialized_tuples(&self) -> usize {
        self.bags.iter().map(MaterializedBag::len).sum()
    }

    /// The underlying view.
    pub fn view(&self) -> &AdornedView {
        &self.view
    }
}

impl HeapSize for FactorizedRepresentation {
    fn heap_bytes(&self) -> usize {
        self.bags
            .iter()
            .map(|b| b.heap_bytes() + std::mem::size_of::<MaterializedBag>())
            .sum::<usize>()
            + self
                .root_checks
                .iter()
                .map(|(r, v)| r.heap_bytes() + v.heap_bytes())
                .sum::<usize>()
    }
}

/// Constant-delay pre-order enumerator over the reduced bags.
///
/// The allocation-free core is [`FactorizedIter::advance`] /
/// [`FactorizedIter::current`]: bag rows are bound into the valuation
/// straight from the bags' flat storage and each answer is borrowed from
/// an internal emit buffer. The `Iterator` implementation is a
/// compatibility shim that copies each slice.
pub struct FactorizedIter<'a> {
    rep: &'a FactorizedRepresentation,
    valuation: Vec<Option<Value>>,
    /// Per bag: (current row, end row) of the active range.
    cursor: Vec<(usize, usize)>,
    /// Scratch: the current bag's bound key.
    key: Vec<Value>,
    /// Scratch: the most recent answer (head free-variable order).
    emit: Vec<Value>,
    started: bool,
    done: bool,
}

impl FactorizedIter<'_> {
    /// Rewinds the iterator to answer a fresh access request, keeping all
    /// scratch buffers.
    ///
    /// # Errors
    ///
    /// Fails when the bound value count mismatches the access pattern.
    pub fn reset(&mut self, bound_values: &[Value]) -> Result<()> {
        self.rep.view.check_access(bound_values)?;
        self.valuation.clear();
        self.valuation.resize(self.rep.num_vars, None);
        for (var, val) in self.rep.view.bound_head().iter().zip(bound_values) {
            self.valuation[var.index()] = Some(*val);
        }
        self.started = false;
        // Root guards.
        let mut root_ok = true;
        for (rel, vars) in &self.rep.root_checks {
            let FactorizedIter { valuation, key, .. } = self;
            key.clear();
            key.extend(
                vars.iter()
                    .map(|v| valuation[v.index()].expect("bound var has a value")),
            );
            if !rel.contains(key) {
                root_ok = false;
                break;
            }
        }
        self.done = !root_ok;
        Ok(())
    }

    /// Opens bag `i` for the current valuation: positions at the first row
    /// of the key range and binds its free variables.
    fn open(&mut self, i: usize) -> bool {
        let FactorizedIter {
            rep,
            valuation,
            cursor,
            key,
            ..
        } = self;
        let bag = &rep.bags[i];
        key.clear();
        key.extend(
            bag.bound_vars
                .iter()
                .map(|v| valuation[v.index()].expect("bag bound var set by ancestors")),
        );
        let (lo, hi) = bag.range_for(key);
        cursor[i] = (lo, hi);
        if lo >= hi {
            return false;
        }
        for (v, val) in bag.free_vars.iter().zip(bag.free_part(lo)) {
            valuation[v.index()] = Some(*val);
        }
        true
    }

    /// Advances bag `i` to its next row, if any.
    fn advance_bag(&mut self, i: usize) -> bool {
        let FactorizedIter {
            rep,
            valuation,
            cursor,
            ..
        } = self;
        let (cur, end) = cursor[i];
        if cur + 1 >= end {
            return false;
        }
        cursor[i] = (cur + 1, end);
        let bag = &rep.bags[i];
        for (v, val) in bag.free_vars.iter().zip(bag.free_part(cur + 1)) {
            valuation[v.index()] = Some(*val);
        }
        true
    }

    fn fill_emit(&mut self) {
        metrics::record_tuple_output();
        let FactorizedIter {
            rep,
            valuation,
            emit,
            ..
        } = self;
        emit.clear();
        emit.extend(
            rep.view
                .free_head()
                .iter()
                .map(|v| valuation[v.index()].expect("free var bound")),
        );
    }

    /// Steps to the next answer; `true` when one is available via
    /// [`FactorizedIter::current`].
    pub fn advance(&mut self) -> bool {
        if self.done {
            return false;
        }
        let k = self.rep.bags.len();
        if k == 0 {
            // Boolean view: the root guards already passed.
            self.done = true;
            self.fill_emit();
            return true;
        }
        let mut i: usize;
        let mut opening: bool;
        if self.started {
            i = k - 1;
            opening = false;
        } else {
            self.started = true;
            i = 0;
            opening = true;
        }
        loop {
            let ok = if opening {
                self.open(i)
            } else {
                self.advance_bag(i)
            };
            if ok {
                if i + 1 == k {
                    self.fill_emit();
                    return true;
                }
                i += 1;
                opening = true;
            } else {
                if i == 0 {
                    self.done = true;
                    return false;
                }
                i -= 1;
                opening = false;
            }
        }
    }

    /// The answer produced by the last successful
    /// [`FactorizedIter::advance`], borrowed from the iterator's scratch.
    pub fn current(&self) -> &[Value] {
        &self.emit
    }

    /// Pushes every remaining answer into `sink`, honoring early stops.
    pub fn drain_into(&mut self, sink: &mut impl cqc_common::AnswerSink) {
        while self.advance() {
            if !sink.push(self.current()) {
                return;
            }
        }
    }
}

impl Iterator for FactorizedIter<'_> {
    type Item = Tuple;

    fn next(&mut self) -> Option<Tuple> {
        if self.advance() {
            Some(self.current().to_vec())
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqc_common::value::lex_cmp;
    use cqc_join::naive::evaluate_view;
    use cqc_query::parser::parse_adorned;
    use cqc_query::VarSet;

    fn vs(vars: &[u32]) -> VarSet {
        vars.iter().map(|&v| Var(v)).collect()
    }

    fn star_db() -> Database {
        let mut db = Database::new();
        db.add(Relation::from_pairs(
            "R1",
            vec![(1, 10), (1, 20), (2, 10), (3, 30)],
        ))
        .unwrap();
        db.add(Relation::from_pairs(
            "R2",
            vec![(5, 10), (5, 20), (6, 30), (7, 40)],
        ))
        .unwrap();
        db
    }

    fn sorted(mut v: Vec<Tuple>) -> Vec<Tuple> {
        v.sort_unstable_by(|a, b| lex_cmp(a, b));
        v
    }

    #[test]
    fn star_bbf_matches_oracle() {
        // S_2^{bbf}(x1, x2, z) = R1(x1, z), R2(x2, z) — the set-intersection
        // view of Example 7 / §3.1.
        let v = parse_adorned("Q(x1, x2, z) :- R1(x1, z), R2(x2, z)", "bbf").unwrap();
        let db = star_db();
        let rep = FactorizedRepresentation::build_with_search(&v, &db).unwrap();
        for x1 in 0..5u64 {
            for x2 in 4..9u64 {
                let expect = evaluate_view(&v, &db, &[x1, x2]).unwrap();
                let got: Vec<Tuple> = rep.answer(&[x1, x2]).unwrap().collect();
                assert_eq!(sorted(got), expect, "x1={x1} x2={x2}");
                assert_eq!(rep.exists(&[x1, x2]).unwrap(), !expect.is_empty());
            }
        }
    }

    #[test]
    fn full_enumeration_prop2() {
        // Acyclic path query, full enumeration: linear-space d-rep.
        let mut db = Database::new();
        db.add(Relation::from_pairs("R", vec![(1, 2), (2, 3), (4, 5)]))
            .unwrap();
        db.add(Relation::from_pairs("S", vec![(2, 7), (3, 8), (5, 9)]))
            .unwrap();
        let v = parse_adorned("Q(x, y, z) :- R(x, y), S(y, z)", "fff").unwrap();
        let rep = FactorizedRepresentation::build_with_search(&v, &db).unwrap();
        let expect = evaluate_view(&v, &db, &[]).unwrap();
        let got: Vec<Tuple> = rep.answer(&[]).unwrap().collect();
        assert_eq!(sorted(got), expect);
    }

    #[test]
    fn semijoin_removes_dangling_tuples() {
        // R(x,y) tuples whose y never joins S must be filtered by the
        // bottom-up pass; delay stays constant because no bag row is dead.
        let mut db = Database::new();
        db.add(Relation::from_pairs("R", vec![(1, 2), (1, 99), (2, 3)]))
            .unwrap();
        db.add(Relation::from_pairs("S", vec![(2, 7), (3, 8)]))
            .unwrap();
        let v = parse_adorned("Q(x, y, z) :- R(x, y), S(y, z)", "bff").unwrap();
        let h = v.query().hypergraph();
        // Manual decomposition: root {x} → {x,y} → {y,z}.
        let td = TreeDecomposition::new(
            vec![vs(&[0]), vs(&[0, 1]), vs(&[1, 2])],
            vec![None, Some(0), Some(1)],
        )
        .unwrap();
        td.validate_connex(&h, vs(&[0])).unwrap();
        let rep = FactorizedRepresentation::build(&v, &db, &td).unwrap();
        // y = 99 must not survive in the {x,y} bag.
        assert_eq!(rep.bags[0].len(), 2);
        let got: Vec<Tuple> = rep.answer(&[1]).unwrap().collect();
        assert_eq!(got, vec![vec![2, 7]]);
    }

    #[test]
    fn boolean_view_checks_root_relations() {
        let mut db = Database::new();
        db.add(Relation::from_pairs("R", vec![(1, 2)])).unwrap();
        let v = parse_adorned("Q(x, y) :- R(x, y)", "bb").unwrap();
        let h = v.query().hypergraph();
        let td = TreeDecomposition::new(vec![vs(&[0, 1])], vec![None]).unwrap();
        td.validate_connex(&h, vs(&[0, 1])).unwrap();
        let rep = FactorizedRepresentation::build(&v, &db, &td).unwrap();
        assert!(rep.exists(&[1, 2]).unwrap());
        assert!(!rep.exists(&[2, 1]).unwrap());
        let got: Vec<Tuple> = rep.answer(&[1, 2]).unwrap().collect();
        assert_eq!(got, vec![Vec::<Value>::new()]);
    }

    #[test]
    fn triangle_with_one_bag() {
        let mut db = Database::new();
        db.add(Relation::from_pairs("R", vec![(1, 2), (2, 3), (1, 3)]))
            .unwrap();
        db.add(Relation::from_pairs("S", vec![(2, 3), (3, 1)]))
            .unwrap();
        db.add(Relation::from_pairs("T", vec![(3, 1), (1, 2)]))
            .unwrap();
        let v = parse_adorned("Q(x,y,z) :- R(x,y), S(y,z), T(z,x)", "fff").unwrap();
        let rep = FactorizedRepresentation::build_with_search(&v, &db).unwrap();
        let expect = evaluate_view(&v, &db, &[]).unwrap();
        let got: Vec<Tuple> = rep.answer(&[]).unwrap().collect();
        assert_eq!(sorted(got), expect);
    }

    #[test]
    fn multi_branch_cartesian_enumeration() {
        // Root {x} with two independent children {x,y} and {x,z}: the
        // answer is a cartesian product across branches.
        let mut db = Database::new();
        db.add(Relation::from_pairs("R", vec![(1, 10), (1, 11), (2, 20)]))
            .unwrap();
        db.add(Relation::from_pairs("S", vec![(1, 77), (1, 78), (2, 99)]))
            .unwrap();
        let v = parse_adorned("Q(x, y, z) :- R(x, y), S(x, z)", "bff").unwrap();
        let h = v.query().hypergraph();
        let td = TreeDecomposition::new(
            vec![vs(&[0]), vs(&[0, 1]), vs(&[0, 2])],
            vec![None, Some(0), Some(0)],
        )
        .unwrap();
        let rep = FactorizedRepresentation::build(&v, &db, &td).unwrap();
        let _ = h;
        let got: Vec<Tuple> = rep.answer(&[1]).unwrap().collect();
        assert_eq!(
            sorted(got),
            vec![vec![10, 77], vec![10, 78], vec![11, 77], vec![11, 78]]
        );
        let got: Vec<Tuple> = rep.answer(&[2]).unwrap().collect();
        assert_eq!(got, vec![vec![20, 99]]);
        let got: Vec<Tuple> = rep.answer(&[3]).unwrap().collect();
        assert!(got.is_empty());
    }
}
