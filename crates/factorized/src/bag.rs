//! Materialized, semijoin-reducible bag relations.

use cqc_common::error::Result;
use cqc_common::heap::HeapSize;
use cqc_common::value::{lex_cmp, Value};
use cqc_join::leapfrog::LevelConstraint;
use cqc_join::plan::ViewPlan;
use cqc_query::adorned::AdornedView;
use cqc_query::atom::Atom;
use cqc_query::cq::ConjunctiveQuery;
use cqc_query::{Var, VarSet};
use cqc_storage::Database;
use std::cmp::Ordering;

/// A materialized bag: the join of the bag-projected relations, stored as
/// sorted rows `[bound vars | free vars]` and indexed by binary search on
/// the bound prefix.
///
/// Variable orders inside a bag are canonical: bound variables sorted by
/// variable index, then free variables sorted by variable index. Key
/// extraction at enumeration time uses the same canonical order.
#[derive(Debug, Clone)]
pub struct MaterializedBag {
    /// Bag node id in the owning decomposition.
    pub node: usize,
    /// Bound variables (canonical order) — the lookup key.
    pub bound_vars: Vec<Var>,
    /// Free variables (canonical order) — the enumerated part.
    pub free_vars: Vec<Var>,
    rows: Vec<Value>,
    width: usize,
}

/// The bag-local join components of Appendix B: a synthetic natural-join
/// adorned view (fresh contiguous variables: bound in canonical order, then
/// free in canonical order) over a database of projections `π_{F∩B_t}(R_F)`
/// of every incident relation.
///
/// Returns `(view, projected database, original atom index per local atom)`
/// — the last lets callers map per-edge cover weights onto the local atoms.
///
/// # Errors
///
/// Propagates schema errors.
pub fn bag_local_components(
    node: usize,
    bound: VarSet,
    free: VarSet,
    atoms: &[(String, Vec<Var>)],
    db: &Database,
) -> Result<(AdornedView, Database, Vec<usize>)> {
    let bag = bound.union(free);
    let bound_vars: Vec<Var> = bound.iter().collect();
    let free_vars: Vec<Var> = free.iter().collect();

    let mut bag_vs: Vec<Var> = bound_vars.clone();
    bag_vs.extend(&free_vars);
    let local_of =
        |v: Var| -> Var { Var(bag_vs.iter().position(|&w| w == v).expect("bag var") as u32) };

    let mut local_db = Database::new();
    let mut local_atoms = Vec::new();
    let mut origins = Vec::new();
    for (i, (rel_name, vars)) in atoms.iter().enumerate() {
        let shared: Vec<usize> = vars
            .iter()
            .enumerate()
            .filter(|(_, v)| bag.contains(**v))
            .map(|(pos, _)| pos)
            .collect();
        if shared.is_empty() {
            continue;
        }
        let rel = db.require(rel_name)?;
        let name = format!("bag{node}_a{i}_{rel_name}");
        local_db.add(rel.project(&name, &shared))?;
        local_atoms.push(Atom::new(
            name,
            shared.iter().map(|&pos| local_of(vars[pos])),
        ));
        origins.push(i);
    }

    let head: Vec<Var> = (0..bag_vs.len() as u32).map(Var).collect();
    let query = ConjunctiveQuery {
        name: format!("bag{node}"),
        head,
        atoms: local_atoms,
        var_names: bag_vs.iter().map(|v| format!("{v}")).collect(),
    };
    let pattern: String = "b".repeat(bound_vars.len()) + &"f".repeat(free_vars.len());
    let view = AdornedView::new(query, &pattern)?;
    Ok((view, local_db, origins))
}

impl MaterializedBag {
    /// Materializes the bag (split into `bound`/`free` by the
    /// decomposition) by joining the projections of every incident
    /// relation, as in Appendix B (see [`bag_local_components`]).
    ///
    /// # Errors
    ///
    /// Propagates schema errors from the projection join.
    pub fn build(
        node: usize,
        bound: VarSet,
        free: VarSet,
        atoms: &[(String, Vec<Var>)],
        db: &Database,
    ) -> Result<MaterializedBag> {
        let bound_vars: Vec<Var> = bound.iter().collect();
        let free_vars: Vec<Var> = free.iter().collect();
        let (view, local_db, _) = bag_local_components(node, bound, free, atoms, db)?;
        let plan = ViewPlan::build(&view, &local_db)?;

        let width = bound_vars.len() + free_vars.len();
        let mut join = plan.join(vec![LevelConstraint::Free; width]);
        let mut rows = Vec::new();
        while let Some(t) = join.next() {
            rows.extend_from_slice(t);
        }
        // LFTJ emits in lexicographic order of [bound | free] already.
        Ok(MaterializedBag {
            node,
            bound_vars,
            free_vars,
            rows,
            width,
        })
    }

    /// Number of materialized rows.
    pub fn len(&self) -> usize {
        self.rows.len().checked_div(self.width).unwrap_or(0)
    }

    /// `true` when no rows survive.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Row `i` (bound prefix then free suffix, canonical orders).
    pub fn row(&self, i: usize) -> &[Value] {
        &self.rows[i * self.width..(i + 1) * self.width]
    }

    /// The free suffix of row `i`.
    pub fn free_part(&self, i: usize) -> &[Value] {
        &self.row(i)[self.bound_vars.len()..]
    }

    /// The contiguous row range whose bound prefix equals `key`
    /// (binary search: O(log n)).
    pub fn range_for(&self, key: &[Value]) -> (usize, usize) {
        debug_assert_eq!(key.len(), self.bound_vars.len());
        let n = self.len();
        let prefix_cmp = |i: usize| lex_cmp(&self.row(i)[..key.len()], key);
        let mut lo = 0usize;
        let mut hi = n;
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            if prefix_cmp(mid) == Ordering::Less {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        let start = lo;
        let mut hi = n;
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            if prefix_cmp(mid) != Ordering::Greater {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        (start, lo)
    }

    /// `true` iff some row has the given bound prefix.
    pub fn contains_key(&self, key: &[Value]) -> bool {
        let (lo, hi) = self.range_for(key);
        lo < hi
    }

    /// Retains only the rows for which `keep` returns `true` (the semijoin
    /// reduction step).
    pub fn retain<F: FnMut(&[Value]) -> bool>(&mut self, mut keep: F) {
        let width = self.width;
        let n = self.len();
        let mut out: Vec<Value> = Vec::with_capacity(self.rows.len());
        for i in 0..n {
            let row = &self.rows[i * width..(i + 1) * width];
            if keep(row) {
                out.extend_from_slice(row);
            }
        }
        self.rows = out;
    }

    /// Creates a bag directly from rows (testing helper).
    pub fn from_rows(
        node: usize,
        bound_vars: Vec<Var>,
        free_vars: Vec<Var>,
        mut tuples: Vec<Vec<Value>>,
    ) -> MaterializedBag {
        let width = bound_vars.len() + free_vars.len();
        tuples.sort_unstable_by(|a, b| lex_cmp(a, b));
        tuples.dedup();
        let mut rows = Vec::with_capacity(tuples.len() * width);
        for t in &tuples {
            assert_eq!(t.len(), width);
            rows.extend_from_slice(t);
        }
        MaterializedBag {
            node,
            bound_vars,
            free_vars,
            rows,
            width,
        }
    }
}

impl HeapSize for MaterializedBag {
    fn heap_bytes(&self) -> usize {
        self.rows.heap_bytes() + self.bound_vars.heap_bytes() + self.free_vars.heap_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqc_storage::Relation;

    fn vs(vars: &[u32]) -> VarSet {
        vars.iter().map(|&v| Var(v)).collect()
    }

    fn db() -> Database {
        let mut db = Database::new();
        db.add(Relation::from_pairs("R", vec![(1, 10), (2, 10), (3, 20)]))
            .unwrap();
        db.add(Relation::from_pairs("S", vec![(10, 5), (20, 6), (20, 7)]))
            .unwrap();
        db
    }

    #[test]
    fn build_joins_projections() {
        // Bag over {x (bound), y (free)} with atoms R(x,y), S(y,z):
        // S projects to {y}, acting as a semijoin filter on y.
        let atoms = vec![
            ("R".to_string(), vec![Var(0), Var(1)]),
            ("S".to_string(), vec![Var(1), Var(2)]),
        ];
        let bag = MaterializedBag::build(1, vs(&[0]), vs(&[1]), &atoms, &db()).unwrap();
        assert_eq!(bag.len(), 3);
        assert_eq!(bag.row(0), &[1, 10]);
        let (lo, hi) = bag.range_for(&[2]);
        assert_eq!(hi - lo, 1);
        assert_eq!(bag.free_part(lo), &[10]);
        assert!(bag.contains_key(&[3]));
        assert!(!bag.contains_key(&[4]));
    }

    #[test]
    fn retain_filters_rows() {
        let mut bag = MaterializedBag::from_rows(
            1,
            vec![Var(0)],
            vec![Var(1)],
            vec![vec![1, 10], vec![2, 20], vec![3, 30]],
        );
        bag.retain(|row| row[1] >= 20);
        assert_eq!(bag.len(), 2);
        assert!(!bag.contains_key(&[1]));
        assert!(bag.contains_key(&[2]));
    }

    #[test]
    fn range_for_handles_duplicate_keys() {
        let bag = MaterializedBag::from_rows(
            0,
            vec![Var(0)],
            vec![Var(1)],
            vec![vec![1, 10], vec![1, 11], vec![1, 12], vec![2, 5]],
        );
        let (lo, hi) = bag.range_for(&[1]);
        assert_eq!(hi - lo, 3);
        let frees: Vec<&[Value]> = (lo..hi).map(|i| bag.free_part(i)).collect();
        assert_eq!(frees, vec![&[10][..], &[11], &[12]]);
    }

    #[test]
    fn empty_key_spans_everything() {
        // A root-child bag with no bound vars: the key is empty.
        let bag = MaterializedBag::from_rows(
            0,
            vec![],
            vec![Var(0), Var(1)],
            vec![vec![1, 2], vec![3, 4]],
        );
        let (lo, hi) = bag.range_for(&[]);
        assert_eq!((lo, hi), (0, 2));
    }
}
