//! Factorized (d-representation-style) constant-delay structures.
//!
//! This crate implements the materialized-bag representation behind
//! Propositions 2 and 4 of the paper: given a `V_b`-connex tree
//! decomposition, materialize every non-root bag (restricted to the bag's
//! variables), run a bottom-up semijoin reduction so that every surviving
//! bag tuple extends to a full answer in its subtree, and index each bag by
//! its top-down bound variables `V_b^t`. Enumeration then walks the bags in
//! pre-order following the indexes, producing each answer with O(1) delay —
//! "the same idea as d-representations \[28\]" (§5.1).
//!
//! Space is `O(|D|^{fhw(H | V_b)})` when the decomposition realizes the
//! connex fractional hypertree width, recovering:
//!
//! * Proposition 2 (`V_b = ∅`): full enumeration in `O(|D|^{fhw})` space
//!   with constant delay (linear space for acyclic queries);
//! * Proposition 4: any full adorned view in `O(|D|^{fhw(H|V_b)})` space
//!   with constant-delay access.
//!
//! The general Theorem 2 structure in `cqc-core` mixes these materialized
//! bags with delay-tuned Theorem-1 bags; this crate is the δ = 0 special
//! case and doubles as the factorized-representation baseline in the
//! benchmark suite.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bag;
pub mod drep;

pub use bag::{bag_local_components, MaterializedBag};
pub use drep::{FactorizedIter, FactorizedRepresentation};
