//! The [`Engine`]: register-once / serve-many over a [`Database`].
//!
//! Lifecycle: load relations (`&mut self`), then register adorned views and
//! serve access requests concurrently (`&self` — the engine is `Sync`).
//! Registered views are built through [`crate::policy::select`] and cached
//! in the [`Catalog`]; a request that hits the catalog performs **zero**
//! representation rebuilds, which is the whole point of the paper's
//! build-once/answer-many regime.

use crate::catalog::{Catalog, CatalogKey, CatalogStats};
use crate::policy::{select, Policy};
use cqc_bench::{measure_delays, DelayStats};
use cqc_common::error::{CqcError, Result};
use cqc_common::value::{Tuple, Value};
use cqc_common::FastMap;
use cqc_core::CompressedView;
use cqc_query::parser::parse_adorned;
use cqc_query::AdornedView;
use cqc_storage::csv::{relation_from_csv, CsvOptions};
use cqc_storage::{Database, Interner, Relation, RelationId};
use std::io::BufRead;
use std::sync::{Arc, RwLock};

/// Engine tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct EngineConfig {
    /// Byte budget for the representation catalog (deterministic
    /// [`cqc_common::heap::HeapSize`] accounting).
    pub catalog_budget_bytes: usize,
}

impl Default for EngineConfig {
    fn default() -> EngineConfig {
        EngineConfig {
            // Generous enough that eviction only happens under real
            // pressure; tests shrink it to force the LRU path.
            catalog_budget_bytes: 256 * 1024 * 1024,
        }
    }
}

/// A view registered with the engine.
#[derive(Debug)]
pub struct RegisteredView {
    /// The name requests address the view by.
    pub name: String,
    /// The adorned view itself.
    pub view: AdornedView,
    /// The concrete strategy selection (strategy, tag, reason).
    pub selection: crate::policy::Selection,
    /// Catalog key (normalized query text + adornment + strategy tag).
    pub key: CatalogKey,
}

/// One access request `Q^η[v]` addressed to a registered view.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Name of the registered view.
    pub view: String,
    /// One value per bound variable, in head order.
    pub bound: Vec<Value>,
}

/// The answer to one request, with its measured enumeration delays.
#[derive(Debug, Clone)]
pub struct Served {
    /// The enumerated free-variable tuples, in the structure's order.
    pub tuples: Vec<Tuple>,
    /// Delay statistics of the enumeration (paper §2.3 definition).
    pub delay: DelayStats,
}

/// The serve-many front door over a database and a representation catalog.
pub struct Engine {
    db: Database,
    interner: Interner,
    catalog: Catalog,
    views: RwLock<FastMap<String, Arc<RegisteredView>>>,
}

impl Engine {
    /// An engine over `db` with default configuration.
    pub fn new(db: Database) -> Engine {
        Engine::with_config(db, EngineConfig::default())
    }

    /// An engine over `db` with explicit tuning.
    pub fn with_config(db: Database, config: EngineConfig) -> Engine {
        Engine {
            db,
            interner: Interner::new(),
            catalog: Catalog::new(config.catalog_budget_bytes),
            views: RwLock::new(FastMap::default()),
        }
    }

    /// The underlying database.
    pub fn db(&self) -> &Database {
        &self.db
    }

    /// The interner used by CSV loading and textual request values.
    pub fn interner(&self) -> &Interner {
        &self.interner
    }

    /// Adds an already-built relation (load phase).
    ///
    /// # Errors
    ///
    /// Fails if a relation with the same name exists.
    pub fn add_relation(&mut self, relation: Relation) -> Result<RelationId> {
        self.db.add(relation)
    }

    /// Loads a relation from CSV through the engine's interner (load phase).
    ///
    /// # Errors
    ///
    /// Propagates CSV parse errors and duplicate relation names.
    pub fn load_csv(
        &mut self,
        name: &str,
        reader: impl BufRead,
        options: CsvOptions,
    ) -> Result<RelationId> {
        let rel = relation_from_csv(name, reader, &mut self.interner, options)?;
        self.db.add(rel)
    }

    /// Registers an adorned view under `name`, resolving `policy` to a
    /// concrete strategy and building its representation into the catalog
    /// immediately (so the first request is already a cache hit).
    ///
    /// # Errors
    ///
    /// Fails on duplicate names; build failures are tagged with the view
    /// name and strategy via [`CqcError::ViewBuild`].
    pub fn register(
        &self,
        name: &str,
        view: AdornedView,
        policy: Policy,
    ) -> Result<Arc<RegisteredView>> {
        let selection =
            select(&view, &self.db, &policy).map_err(|e| e.for_view(name, "auto-selection"))?;
        let key = CatalogKey {
            normalized_query: view.query().normalized_text(),
            pattern: view.pattern(),
            strategy_tag: selection.tag.clone(),
        };
        let registered = Arc::new(RegisteredView {
            name: name.to_string(),
            view,
            selection,
            key,
        });
        {
            let mut views = self.views.write().expect("views lock poisoned");
            if views.contains_key(name) {
                return Err(CqcError::Config(format!(
                    "view `{name}` is already registered"
                )));
            }
            views.insert(name.to_string(), Arc::clone(&registered));
        }
        // Build eagerly; distinct names sharing a catalog key share the
        // build (the catalog hit skips it). A failed build must unregister
        // the name, or the caller could never retry with a fixed strategy.
        if let Err(e) = self.representation(&registered) {
            self.views
                .write()
                .expect("views lock poisoned")
                .remove(name);
            return Err(e);
        }
        Ok(registered)
    }

    /// Parses `query_text` + `pattern` and registers it (CLI front door).
    ///
    /// # Errors
    ///
    /// Propagates parse and registration failures.
    pub fn register_text(
        &self,
        name: &str,
        query_text: &str,
        pattern: &str,
        policy: Policy,
    ) -> Result<Arc<RegisteredView>> {
        let view = parse_adorned(query_text, pattern)?;
        self.register(name, view, policy)
    }

    /// The registered view named `name`.
    ///
    /// # Errors
    ///
    /// [`CqcError::UnknownView`] when not registered.
    pub fn view(&self, name: &str) -> Result<Arc<RegisteredView>> {
        self.views
            .read()
            .expect("views lock poisoned")
            .get(name)
            .cloned()
            .ok_or_else(|| CqcError::UnknownView(name.to_string()))
    }

    /// All registered views, sorted by name.
    pub fn views(&self) -> Vec<Arc<RegisteredView>> {
        let mut v: Vec<_> = self
            .views
            .read()
            .expect("views lock poisoned")
            .values()
            .cloned()
            .collect();
        v.sort_by(|a, b| a.name.cmp(&b.name));
        v
    }

    /// The compressed representation for a registered view: catalog hit, or
    /// (re)build under the key's build lock on a miss (aliased names share
    /// the lock, so one key never builds twice concurrently).
    fn representation(&self, rv: &RegisteredView) -> Result<Arc<CompressedView>> {
        if let Some(cv) = self.catalog.get(&rv.key) {
            return Ok(cv);
        }
        let lock = self.catalog.build_lock(&rv.key);
        let _guard = lock.lock().expect("build lock poisoned");
        // Double-check: a concurrent miss may have built while we waited.
        if let Some(cv) = self.catalog.get(&rv.key) {
            return Ok(cv);
        }
        let built = CompressedView::build(&rv.view, &self.db, rv.selection.strategy.clone())
            .map_err(|e| e.for_view(&rv.name, &rv.selection.tag))?;
        let cv = Arc::new(built);
        self.catalog.insert(rv.key.clone(), Arc::clone(&cv));
        Ok(cv)
    }

    /// Answers one request, discarding delay measurements.
    ///
    /// # Errors
    ///
    /// Unknown view, bound-arity mismatch, or a tagged rebuild failure.
    pub fn answer(&self, view: &str, bound: &[Value]) -> Result<Vec<Tuple>> {
        let rv = self.view(view)?;
        let cv = self.representation(&rv)?;
        Ok(cv.answer(bound)?.collect())
    }

    /// `true` iff the request has at least one answer.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`Engine::answer`].
    pub fn exists(&self, view: &str, bound: &[Value]) -> Result<bool> {
        let rv = self.view(view)?;
        let cv = self.representation(&rv)?;
        cv.exists(bound)
    }

    /// Serves one request, measuring enumeration delays.
    ///
    /// The measured gaps include the cost of materializing the result
    /// tuples into the returned `Vec`; use [`Engine::measure`] for the pure
    /// §2.3 enumeration delay of the representation itself.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`Engine::answer`].
    pub fn serve(&self, request: &Request) -> Result<Served> {
        let rv = self.view(&request.view)?;
        let cv = self.representation(&rv)?;
        let iter = cv.answer(&request.bound)?;
        let mut tuples = Vec::new();
        let delay = measure_delays(iter.inspect(|t| tuples.push(t.clone())));
        Ok(Served { tuples, delay })
    }

    /// Measures one request's enumeration delays without retaining the
    /// tuples — no clone or reallocation pollutes the gap measurements
    /// (the benchmark path).
    ///
    /// # Errors
    ///
    /// Same failure modes as [`Engine::answer`].
    pub fn measure(&self, request: &Request) -> Result<DelayStats> {
        let rv = self.view(&request.view)?;
        let cv = self.representation(&rv)?;
        Ok(measure_delays(cv.answer(&request.bound)?))
    }

    /// Runs `f` over the requests striped round-robin across `threads` OS
    /// threads (`std::thread::scope`), preserving request order.
    fn run_batch<T: Send>(
        &self,
        requests: &[Request],
        threads: usize,
        f: impl Fn(&Request) -> Result<T> + Sync,
    ) -> Result<Vec<T>> {
        let threads = threads.clamp(1, requests.len().max(1));
        if threads == 1 {
            return requests.iter().map(f).collect();
        }
        let f = &f;
        let mut slots: Vec<Result<T>> = Vec::with_capacity(requests.len());
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|worker| {
                    scope.spawn(move || {
                        requests
                            .iter()
                            .enumerate()
                            .skip(worker)
                            .step_by(threads)
                            .map(|(i, r)| (i, f(r)))
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            let mut indexed: Vec<(usize, Result<T>)> = handles
                .into_iter()
                .flat_map(|h| h.join().expect("serve worker panicked"))
                .collect();
            indexed.sort_by_key(|(i, _)| *i);
            slots.extend(indexed.into_iter().map(|(_, r)| r));
        });
        slots.into_iter().collect()
    }

    /// Serves a batch of requests across `threads` OS threads, preserving
    /// request order in the result. Every worker shares the catalog, so a
    /// view built once serves all threads.
    ///
    /// # Errors
    ///
    /// The first failing request's error (by request order), if any.
    pub fn serve_batch(&self, requests: &[Request], threads: usize) -> Result<Vec<Served>> {
        self.run_batch(requests, threads, |r| self.serve(r))
    }

    /// [`Engine::measure`] over a batch: delay statistics only, no tuple
    /// retention, same striping and ordering as [`Engine::serve_batch`].
    ///
    /// # Errors
    ///
    /// The first failing request's error (by request order), if any.
    pub fn measure_batch(&self, requests: &[Request], threads: usize) -> Result<Vec<DelayStats>> {
        self.run_batch(requests, threads, |r| self.measure(r))
    }

    /// Catalog effectiveness counters.
    pub fn catalog_stats(&self) -> CatalogStats {
        self.catalog.stats()
    }

    /// The "EXPLAIN" of a registered view: selection reasoning plus the
    /// built representation's self-description.
    ///
    /// # Errors
    ///
    /// Unknown view, or a tagged rebuild failure.
    pub fn explain(&self, view: &str) -> Result<String> {
        let rv = self.view(view)?;
        let cv = self.representation(&rv)?;
        Ok(format!(
            "view `{}` = {}\n  pattern:  {}\n  strategy: {} ({})\n  repr:     {}",
            rv.name,
            rv.view.query(),
            rv.view.pattern(),
            rv.selection.tag,
            rv.selection.reason,
            cv.describe()
        ))
    }

    /// Resolves a textual request value: an interned string if the text was
    /// ever interned (CSV data), otherwise a numeric literal.
    ///
    /// Interned strings take precedence: on a workload mixing CSV relations
    /// with generated numeric relations, a numeric-looking token that also
    /// appears in a CSV resolves to its interned id, not the number. Keep
    /// CSV tokens non-numeric (or workloads unmixed) when both spaces are
    /// in play; [`Engine::display_value`] mirrors the same precedence.
    ///
    /// # Errors
    ///
    /// The text is neither interned nor numeric.
    pub fn resolve_value(&self, text: &str) -> Result<Value> {
        if let Some(v) = self.interner.get(text) {
            return Ok(v);
        }
        text.parse::<Value>().map_err(|_| {
            CqcError::InvalidAccess(format!(
                "value `{text}` is neither a loaded string nor a number"
            ))
        })
    }

    /// Renders a value for display: its interned string when available,
    /// else the number itself.
    pub fn display_value(&self, v: Value) -> String {
        self.interner
            .resolve(v)
            .map_or_else(|| v.to_string(), str::to_string)
    }
}

impl std::fmt::Debug for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field("relations", &self.db.num_relations())
            .field("|D|", &self.db.size())
            .field(
                "views",
                &self.views.read().expect("views lock poisoned").len(),
            )
            .field("catalog", &self.catalog)
            .finish()
    }
}
