//! The [`Engine`]: register-once / serve-many over a versioned
//! [`Database`].
//!
//! Lifecycle: load relations (`&mut self`), then register adorned views and
//! serve access requests concurrently (`&self` — the engine is `Sync`).
//! Registered views are built through [`crate::policy::select`] and cached
//! in the [`Catalog`]; a request that hits the catalog performs **zero**
//! representation rebuilds, which is the whole point of the paper's
//! build-once/answer-many regime.
//!
//! The database is held as a copy-on-write snapshot (`RwLock<Arc<…>>`):
//! readers clone the `Arc` out and serve from a consistent epoch while
//! [`Engine::update`] installs the next version. Each update applies a
//! batched [`Delta`] — insertions and removals — bumps the epoch, and
//! reconciles the catalog:
//! entries whose views the delta cannot affect are restamped, Theorem 1
//! entries absorb the delta through [`cqc_core::maintain`], and everything
//! else is rebuilt (or left for lazy invalidation on the next lookup).
//! Requests therefore never observe a representation older than the
//! database snapshot they serve from.

use crate::catalog::{Catalog, CatalogKey, CatalogStats};
use crate::policy::{select_pooled, Policy, Selection};
use cqc_bench::{DelayProbe, DelayStats};
use cqc_common::error::{CqcError, Result};
use cqc_common::value::{Tuple, Value};
use cqc_common::{AnswerBlock, AnswerSink, FastMap, FastSet};
use cqc_core::maintain::MaintainOutcome;
use cqc_core::CompressedView;
use cqc_durable::DurableStore;
use cqc_query::parser::parse_adorned;
use cqc_query::AdornedView;
use cqc_storage::csv::{relation_from_csv, CsvOptions};
use cqc_storage::{Database, Delta, Epoch, Interner, Relation, RelationId};
use std::io::BufRead;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::time::Instant;

/// Engine tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct EngineConfig {
    /// Byte budget for the representation catalog (deterministic
    /// [`cqc_common::heap::HeapSize`] accounting).
    pub catalog_budget_bytes: usize,
    /// Largest delta, as a fraction of `|D|`, that [`Engine::update`] will
    /// try to absorb by maintenance instead of a rebuild. Above it the
    /// localized repair no longer beats rebuilding — the cost model behind
    /// maintenance assumes the delta is small relative to the structure.
    pub maintain_max_delta_fraction: f64,
    /// Whether to calibrate maintain-versus-rebuild against measured wall
    /// times (pause maintenance for a key whose repair decisively loses to
    /// its own rebuild). On by default; tests that assert the maintain
    /// path deterministically turn it off, since wall clocks on a loaded
    /// machine can otherwise flip the decision.
    pub maintain_calibration: bool,
    /// Admission threshold as a fraction of the catalog budget: an entry
    /// whose measured footprint exceeds
    /// `catalog_admit_fraction × catalog_budget_bytes` is never cached —
    /// under the budget it would evict the working set and be evicted right
    /// back, so it can never repay its residency. `INFINITY` (the default)
    /// disables admission control; `1.0` refuses only entries larger than
    /// the whole budget.
    pub catalog_admit_fraction: f64,
}

/// How many further deltas a key sits out after its maintenance was
/// measured decisively slower than its own rebuild, before it is retried.
const MAINTAIN_RETRY_DELTAS: u64 = 16;

impl Default for EngineConfig {
    fn default() -> EngineConfig {
        EngineConfig {
            // Generous enough that eviction only happens under real
            // pressure; tests shrink it to force the eviction path.
            catalog_budget_bytes: 256 * 1024 * 1024,
            maintain_max_delta_fraction: 0.2,
            maintain_calibration: true,
            catalog_admit_fraction: f64::INFINITY,
        }
    }
}

/// A view registered with the engine.
#[derive(Debug)]
pub struct RegisteredView {
    /// The name requests address the view by.
    pub name: String,
    /// The adorned view itself.
    pub view: AdornedView,
    /// The concrete strategy selection (strategy, tag, reason).
    pub selection: crate::policy::Selection,
    /// Catalog key (normalized query text + adornment + strategy tag).
    pub key: CatalogKey,
}

/// One access request `Q^η[v]` addressed to a registered view.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Name of the registered view.
    pub view: String,
    /// One value per bound variable, in head order.
    pub bound: Vec<Value>,
}

/// The answer to one request, with its measured enumeration delays.
///
/// The answers live in one flat, arity-strided [`AnswerBlock`] — a single
/// allocation that grows amortized, instead of the one-`Vec`-per-tuple
/// representation served previously. [`Served::tuples`] and
/// [`Served::to_tuples`] are the thin compatibility views.
#[derive(Debug, Clone)]
pub struct Served {
    /// The enumerated answers, flat, in the structure's order.
    pub block: AnswerBlock,
    /// Delay statistics of the enumeration (paper §2.3 definition).
    pub delay: DelayStats,
}

impl Served {
    /// Number of answers.
    pub fn len(&self) -> usize {
        self.block.len()
    }

    /// `true` when the request had no answers.
    pub fn is_empty(&self) -> bool {
        self.block.is_empty()
    }

    /// The answers as borrowed value slices, in enumeration order.
    pub fn tuples(&self) -> impl ExactSizeIterator<Item = &[Value]> + '_ {
        self.block.iter()
    }

    /// Copies the answers out into owned tuples (compatibility; allocates
    /// one `Vec` per tuple by construction).
    pub fn to_tuples(&self) -> Vec<Tuple> {
        self.block.to_tuples()
    }
}

/// A per-view steady-state server: one reusable enumerator and one
/// reusable flat answer block (see [`Engine::with_view_server`]).
pub struct ViewServer<'a> {
    enumerator: cqc_core::ViewEnumerator<'a>,
    block: AnswerBlock,
}

impl ViewServer<'_> {
    /// Serves one request, returning the filled block (valid until the
    /// next call). All scratch — the enumerator's and the block's — is
    /// reused, so steady-state calls allocate nothing.
    ///
    /// # Errors
    ///
    /// Bound-arity mismatches.
    pub fn serve(&mut self, bound: &[Value]) -> Result<&AnswerBlock> {
        self.block.clear();
        self.enumerator.answer_into(bound, &mut self.block)?;
        Ok(&self.block)
    }
}

/// Sink wiring one [`AnswerBlock`] to a [`DelayProbe`]: each push copies
/// the answer into the block and stamps an arrival tick.
struct TimedBlockSink {
    block: AnswerBlock,
    probe: DelayProbe,
}

impl AnswerSink for TimedBlockSink {
    #[inline]
    fn push(&mut self, tuple: &[Value]) -> bool {
        let keep_going = self.block.push(tuple);
        self.probe.tick();
        keep_going
    }
}

/// Measurement-only sink: ticks the probe, retains nothing.
struct ProbeSink {
    probe: DelayProbe,
}

impl AnswerSink for ProbeSink {
    #[inline]
    fn push(&mut self, _tuple: &[Value]) -> bool {
        self.probe.tick();
        true
    }
}

/// What one [`Engine::update`] call did to the catalog.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct UpdateReport {
    /// The database epoch after the delta.
    pub epoch: Epoch,
    /// Tuples the delta queued (including duplicates that were no-ops).
    pub delta_tuples: usize,
    /// Resident entries absorbed by delta maintenance.
    pub maintained: usize,
    /// Resident entries rebuilt from scratch.
    pub rebuilt: usize,
    /// Resident entries the delta provably did not affect (epoch restamp).
    pub restamped: usize,
}

/// Cumulative [`Engine::update`] counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct UpdateStats {
    /// Deltas applied (calls that changed the database).
    pub deltas: u64,
    /// Catalog entries absorbed by delta maintenance, total.
    pub maintained: u64,
    /// Catalog entries rebuilt by updates, total.
    pub rebuilt: u64,
    /// Catalog entries restamped as unaffected, total.
    pub restamped: u64,
}

/// What recovery replayed when an engine was opened from its data
/// directory (see [`Engine::open`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryStats {
    /// The epoch the engine rejoined at — exactly its pre-crash epoch.
    pub epoch: Epoch,
    /// WAL records replayed on top of the snapshot.
    pub replayed: usize,
    /// Bytes of torn/corrupt WAL tail truncated away during recovery.
    pub truncated_bytes: u64,
}

/// The serve-many front door over a database and a representation catalog.
pub struct Engine {
    db: RwLock<Arc<Database>>,
    interner: Interner,
    catalog: Catalog,
    views: RwLock<FastMap<String, Arc<RegisteredView>>>,
    config: EngineConfig,
    /// Serializes writers: updates see a quiescent catalog-reconciliation
    /// phase while readers keep serving from their snapshots.
    update_lock: Mutex<()>,
    /// Keys whose maintenance was measured decisively slower than their
    /// own rebuild, mapped to the delta count at which they lost. The
    /// measured build time calibrates the choice; the pause expires after
    /// [`MAINTAIN_RETRY_DELTAS`] further deltas so one noisy sample never
    /// disables maintenance forever.
    maintain_paused: Mutex<FastMap<CatalogKey, u64>>,
    /// The attached durability layer, if any: every applied delta is
    /// WAL-logged and fsynced before its epoch is published (see
    /// [`Engine::open`] / [`Engine::attach_durable`]).
    durable: Option<Arc<DurableStore>>,
    /// What recovery replayed, when this engine was opened from disk.
    recovery: Option<RecoveryStats>,
    upd_deltas: AtomicU64,
    upd_maintained: AtomicU64,
    upd_rebuilt: AtomicU64,
    upd_restamped: AtomicU64,
    /// Per-view EWMA of measured serve wall time in nanoseconds — the
    /// cost estimate an admission controller consults to shed requests
    /// whose deadline budget cannot cover the serve anyway (see
    /// [`Engine::serve_cost_ns`]).
    serve_costs: Mutex<FastMap<String, u64>>,
}

impl Engine {
    /// An engine over `db` with default configuration.
    pub fn new(db: Database) -> Engine {
        Engine::with_config(db, EngineConfig::default())
    }

    /// An engine over `db` with explicit tuning.
    pub fn with_config(db: Database, config: EngineConfig) -> Engine {
        let admit_max_bytes = if config.catalog_admit_fraction.is_finite() {
            (config.catalog_admit_fraction.max(0.0) * config.catalog_budget_bytes as f64) as usize
        } else {
            usize::MAX
        };
        Engine {
            db: RwLock::new(Arc::new(db)),
            interner: Interner::new(),
            catalog: Catalog::with_admission(config.catalog_budget_bytes, admit_max_bytes),
            views: RwLock::new(FastMap::default()),
            config,
            update_lock: Mutex::new(()),
            maintain_paused: Mutex::new(FastMap::default()),
            durable: None,
            recovery: None,
            upd_deltas: AtomicU64::new(0),
            upd_maintained: AtomicU64::new(0),
            upd_rebuilt: AtomicU64::new(0),
            upd_restamped: AtomicU64::new(0),
            serve_costs: Mutex::new(FastMap::default()),
        }
    }

    /// Warm start: recovers the engine from a durable data directory —
    /// newest valid snapshot loaded (its sorted runs adopted without a
    /// re-sort), WAL replayed on top, torn tail truncated — and keeps the
    /// directory attached so further updates stay durable. The recovered
    /// engine is at its exact pre-crash epoch ([`Engine::recovery_stats`]
    /// reports what replay did); views are not persisted and must be
    /// re-registered, which rebuilds their representations from the
    /// adopted relations.
    ///
    /// # Errors
    ///
    /// [`CqcError::Io`] when `dir` holds no durable state (use
    /// [`Engine::attach_durable`] to start a fresh directory) or when the
    /// manifest/snapshot fail their checksums.
    pub fn open(dir: impl AsRef<Path>) -> Result<Engine> {
        Engine::open_with_config(dir, EngineConfig::default())
    }

    /// [`Engine::open`] with explicit tuning.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`Engine::open`].
    pub fn open_with_config(dir: impl AsRef<Path>, config: EngineConfig) -> Result<Engine> {
        let recovered = DurableStore::open(dir.as_ref())?;
        let stats = RecoveryStats {
            epoch: recovered.db.epoch(),
            replayed: recovered.replayed,
            truncated_bytes: recovered.truncated_bytes,
        };
        let mut engine = Engine::with_config(recovered.db, config);
        engine.durable = Some(Arc::new(recovered.store));
        engine.recovery = Some(stats);
        Ok(engine)
    }

    /// Attaches a fresh durability layer at `dir` (load phase): the
    /// current database is checkpointed immediately — load-phase schema
    /// changes reach disk only through snapshots, the WAL carries deltas —
    /// and every subsequent [`Engine::update`] is logged and fsynced
    /// before its epoch is published.
    ///
    /// # Errors
    ///
    /// [`CqcError::Config`] when `dir` already holds durable state
    /// (recover it with [`Engine::open`] instead) or a layer is already
    /// attached; I/O failures from the initial checkpoint.
    pub fn attach_durable(&mut self, dir: impl AsRef<Path>) -> Result<()> {
        if self.durable.is_some() {
            return Err(CqcError::Config(
                "engine already has a data directory attached".into(),
            ));
        }
        let store = DurableStore::create(dir.as_ref())?;
        store.checkpoint(&self.db())?;
        self.durable = Some(Arc::new(store));
        Ok(())
    }

    /// The attached durability layer, if any.
    pub fn durable_store(&self) -> Option<&Arc<DurableStore>> {
        self.durable.as_ref()
    }

    /// What recovery replayed, when this engine came from [`Engine::open`].
    pub fn recovery_stats(&self) -> Option<RecoveryStats> {
        self.recovery
    }

    /// Checkpoints the attached data directory: snapshots the current
    /// database (quiescing writers first, so the snapshot is exactly a
    /// published epoch) and compacts the WAL behind it. Call after bulk
    /// loads and periodically under sustained updates to bound both the
    /// log and recovery time.
    ///
    /// # Errors
    ///
    /// [`CqcError::Config`] when no durability layer is attached; I/O
    /// failures (the previous checkpoint remains in force).
    pub fn checkpoint(&self) -> Result<()> {
        let Some(store) = &self.durable else {
            return Err(CqcError::Config(
                "engine has no data directory attached; nothing to checkpoint".into(),
            ));
        };
        let _writer = self.update_lock.lock().expect("update lock poisoned");
        store.checkpoint(&self.db())
    }

    /// A consistent snapshot of the database. Cheap (`Arc` clone); the
    /// snapshot stays valid — and unchanged — however many updates land
    /// afterwards.
    pub fn db(&self) -> Arc<Database> {
        Arc::clone(&self.db.read().expect("db lock poisoned"))
    }

    /// The current database epoch.
    pub fn epoch(&self) -> Epoch {
        self.db().epoch()
    }

    /// The interner used by CSV loading and textual request values.
    pub fn interner(&self) -> &Interner {
        &self.interner
    }

    /// Adds an already-built relation (load phase).
    ///
    /// Routed through the versioning path: the epoch bump makes every
    /// cached representation stale, so a catalog entry built before this
    /// call is invalidated on its next lookup instead of being served
    /// against an outdated view of the database.
    ///
    /// # Errors
    ///
    /// Fails if a relation with the same name exists.
    pub fn add_relation(&mut self, relation: Relation) -> Result<RelationId> {
        let arc = self.db.get_mut().expect("db lock poisoned");
        Arc::make_mut(arc).add(relation)
    }

    /// Loads a relation from CSV through the engine's interner (load phase).
    ///
    /// # Errors
    ///
    /// Propagates CSV parse errors and duplicate relation names.
    pub fn load_csv(
        &mut self,
        name: &str,
        reader: impl BufRead,
        options: CsvOptions,
    ) -> Result<RelationId> {
        let rel = relation_from_csv(name, reader, &mut self.interner, options)?;
        self.add_relation(rel)
    }

    /// Applies a batched delta of insertions and removals and reconciles
    /// the catalog: the epoch is bumped, unaffected entries are restamped,
    /// maintainable entries absorb the delta via [`cqc_core::maintain`]
    /// when the delta is small enough (and maintenance has not been
    /// measured slower than rebuild for that key), and everything else is
    /// rebuilt eagerly. Concurrent readers keep serving their snapshots
    /// throughout; once this returns, every resident entry is valid for
    /// the new epoch.
    ///
    /// # Errors
    ///
    /// [`CqcError::Schema`] when the delta references a missing relation or
    /// mismatched arity (the database is untouched), and build errors from
    /// eager rebuilds (the affected entry is left stale and will be
    /// invalidated, never served).
    pub fn update(&self, delta: &Delta) -> Result<UpdateReport> {
        let _writer = self.update_lock.lock().expect("update lock poisoned");
        let old = self.db();
        let pre_epoch = old.epoch();
        let mut new_db = (*old).clone();
        let epoch = new_db.apply(delta)?;
        let mut report = UpdateReport {
            epoch,
            delta_tuples: delta.total_tuples(),
            ..UpdateReport::default()
        };
        if epoch == pre_epoch {
            // Nothing genuinely new (duplicates only): entries stay valid.
            return Ok(report);
        }
        // Durability barrier: the delta must be fsynced to the WAL before
        // any reader can observe the epoch it produced. A log failure
        // aborts the update entirely — nothing was published, so the
        // in-memory and on-disk histories still agree.
        if let Some(store) = &self.durable {
            store.log(epoch, delta)?;
        }
        let new_db = Arc::new(new_db);
        self.upd_deltas.fetch_add(1, Ordering::Relaxed);

        // Reconcile the catalog *before* publishing the new epoch: readers
        // keep hitting the old-epoch entries (still valid for the snapshot
        // they serve) instead of lazily invalidating entries this very
        // loop is about to maintain — fresher-stamped entries are already
        // legal to serve, so stamping ahead of the swap is safe. Reconcile
        // every entry even if one rebuild fails: a failed entry stays
        // stale after the swap (the lazy lookup path refuses it), but the
        // remaining views must still be restamped/maintained or they would
        // pay needless invalidations. The first error is reported at the
        // end — after the swap, since the delta itself has been applied.
        let mut first_error: Option<CqcError> = None;
        let mut seen: FastSet<CatalogKey> = FastSet::default();
        for rv in self.views() {
            if !seen.insert(rv.key.clone()) {
                continue; // aliases share one entry; reconcile it once
            }
            if let Err(e) = self.reconcile_entry(&rv, &new_db, delta, pre_epoch, epoch, &mut report)
            {
                first_error.get_or_insert(e);
            }
        }
        *self.db.write().expect("db lock poisoned") = new_db;
        self.upd_maintained
            .fetch_add(report.maintained as u64, Ordering::Relaxed);
        self.upd_rebuilt
            .fetch_add(report.rebuilt as u64, Ordering::Relaxed);
        self.upd_restamped
            .fetch_add(report.restamped as u64, Ordering::Relaxed);
        match first_error {
            Some(e) => Err(e),
            None => Ok(report),
        }
    }

    /// Brings one catalog entry up to `epoch` (maintain / rebuild /
    /// restamp), under the key's build lock so concurrent miss-builders
    /// for the same key serialize with the maintainer.
    fn reconcile_entry(
        &self,
        rv: &RegisteredView,
        db: &Arc<Database>,
        delta: &Delta,
        pre_epoch: Epoch,
        epoch: Epoch,
        report: &mut UpdateReport,
    ) -> Result<()> {
        let lock = self.catalog.build_lock(&rv.key);
        let _guard = lock.lock().expect("build lock poisoned");
        let Some((cv, entry_epoch, build_ns)) = self.catalog.peek(&rv.key) else {
            return Ok(()); // nothing resident: the next lookup builds fresh
        };
        if entry_epoch >= epoch {
            return Ok(()); // a racing builder already produced a fresh entry
        }
        let touched = rv
            .view
            .query()
            .atoms
            .iter()
            .any(|a| delta.touches(&a.relation));
        if !touched && entry_epoch == pre_epoch {
            self.catalog.restamp(&rv.key, epoch);
            report.restamped += 1;
            return Ok(());
        }
        // Decide maintain versus rebuild. An entry that predates
        // `pre_epoch` is stale beyond this delta (e.g. a relation was added
        // since it was built) and cannot absorb just this delta. Only the
        // tuples landing in *this view's* relations count against the
        // threshold — a delta that floods an unrelated relation must not
        // push other views off their maintain path.
        let mut view_relations: Vec<&str> = rv
            .view
            .query()
            .atoms
            .iter()
            .map(|a| a.relation.as_str())
            .collect();
        view_relations.sort_unstable();
        view_relations.dedup();
        let touched_tuples: usize = view_relations
            .iter()
            .flat_map(|r| [delta.tuples_for(r), delta.removes_for(r)])
            .flatten()
            .map(<[_]>::len)
            .sum();
        let too_large = touched_tuples as f64
            > self.config.maintain_max_delta_fraction * (db.size().max(1) as f64);
        let deltas_now = self.upd_deltas.load(Ordering::Relaxed);
        let paused = {
            let mut paused = self
                .maintain_paused
                .lock()
                .expect("maintain-paused lock poisoned");
            match paused.get(&rv.key) {
                Some(&at) if deltas_now.saturating_sub(at) < MAINTAIN_RETRY_DELTAS => true,
                Some(_) => {
                    // Cool-down expired: give maintenance another shot.
                    paused.remove(&rv.key);
                    false
                }
                None => false,
            }
        };
        if entry_epoch == pre_epoch && !too_large && !paused {
            let t0 = Instant::now();
            match cv.maintain(&rv.view, db, delta)? {
                MaintainOutcome::Maintained { view, .. } => {
                    // Calibrate against the rebuild time measured when the
                    // entry was built: a key whose maintenance decisively
                    // loses to its own rebuild pauses maintenance for a
                    // while (not forever — one noisy sample must not
                    // disable the feature on a long-running engine). The
                    // floor keeps sub-millisecond builds — where either
                    // choice is free and timers are noise — from pausing
                    // anything.
                    // `build_ns` from the peek above is still current: the
                    // held build lock serializes every writer to this key.
                    let maintain_ns = t0.elapsed().as_nanos() as u64;
                    if self.config.maintain_calibration
                        && build_ns > 1_000_000
                        && maintain_ns > 2 * build_ns
                    {
                        self.maintain_paused
                            .lock()
                            .expect("maintain-paused lock poisoned")
                            .insert(rv.key.clone(), deltas_now);
                    }
                    self.catalog
                        .insert_maintained(rv.key.clone(), Arc::from(view), epoch);
                    report.maintained += 1;
                    return Ok(());
                }
                MaintainOutcome::Unaffected => {
                    self.catalog.restamp(&rv.key, epoch);
                    report.restamped += 1;
                    return Ok(());
                }
                MaintainOutcome::NeedsRebuild { .. } => {}
            }
        }
        let t0 = Instant::now();
        let built = CompressedView::build(&rv.view, db, rv.selection.strategy.clone())
            .map_err(|e| e.for_view(&rv.name, &rv.selection.tag))?;
        self.catalog.insert(
            rv.key.clone(),
            Arc::new(built),
            epoch,
            t0.elapsed().as_nanos() as u64,
        );
        report.rebuilt += 1;
        Ok(())
    }

    /// Eagerly drops every catalog entry stamped older than the current
    /// epoch (the lazy lookup path already refuses to serve them); returns
    /// how many entries were reclaimed.
    pub fn invalidate_stale(&self) -> usize {
        self.catalog.invalidate_stale(self.epoch())
    }

    /// Cumulative update counters.
    pub fn update_stats(&self) -> UpdateStats {
        UpdateStats {
            deltas: self.upd_deltas.load(Ordering::Relaxed),
            maintained: self.upd_maintained.load(Ordering::Relaxed),
            rebuilt: self.upd_rebuilt.load(Ordering::Relaxed),
            restamped: self.upd_restamped.load(Ordering::Relaxed),
        }
    }

    /// The epoch stamp of a registered view's resident representation, if
    /// one is resident — serving guarantees this is never older than the
    /// snapshot a request was answered from.
    ///
    /// # Errors
    ///
    /// [`CqcError::UnknownView`] when not registered.
    pub fn representation_epoch(&self, view: &str) -> Result<Option<Epoch>> {
        let rv = self.view(view)?;
        Ok(self.catalog.peek(&rv.key).map(|(_, e, _)| e))
    }

    /// Registers an adorned view under `name`, resolving `policy` to a
    /// concrete strategy and building its representation into the catalog
    /// immediately (so the first request is already a cache hit).
    ///
    /// Selection and build share one [`cqc_storage::IndexPool`]: the veto
    /// cost oracle's sorted indexes are reused by the actual structure
    /// build instead of being re-sorted (the Example 3 rewrite shares
    /// untouched relations by `Arc`, which is what lets the pool recognize
    /// them across the two phases).
    ///
    /// # Errors
    ///
    /// Fails on duplicate names; build failures are tagged with the view
    /// name and strategy via [`CqcError::ViewBuild`].
    pub fn register(
        &self,
        name: &str,
        view: AdornedView,
        policy: Policy,
    ) -> Result<Arc<RegisteredView>> {
        let mut pool = cqc_storage::IndexPool::new();
        let selection = select_pooled(&view, &self.db(), &policy, &mut pool)
            .map_err(|e| e.for_view(name, "auto-selection"))?;
        self.register_with_pool(name, view, selection, &mut pool)
    }

    /// Registers a view whose strategy selection has **already been
    /// solved** — the plan-once path: a sharded engine resolves the
    /// selection once against global statistics and hands the identical
    /// [`Selection`] to every shard, which then only builds its shard-local
    /// indexes and dictionaries.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`Engine::register`] (minus selection errors).
    pub fn register_selected(
        &self,
        name: &str,
        view: AdornedView,
        selection: Selection,
    ) -> Result<Arc<RegisteredView>> {
        self.register_with_pool(name, view, selection, &mut cqc_storage::IndexPool::new())
    }

    fn register_with_pool(
        &self,
        name: &str,
        view: AdornedView,
        selection: Selection,
        pool: &mut cqc_storage::IndexPool,
    ) -> Result<Arc<RegisteredView>> {
        let key = CatalogKey {
            normalized_query: view.query().normalized_text(),
            pattern: view.pattern(),
            strategy_tag: selection.tag.clone(),
        };
        let registered = Arc::new(RegisteredView {
            name: name.to_string(),
            view,
            selection,
            key,
        });
        {
            let mut views = self.views.write().expect("views lock poisoned");
            if views.contains_key(name) {
                return Err(CqcError::Config(format!(
                    "view `{name}` is already registered"
                )));
            }
            views.insert(name.to_string(), Arc::clone(&registered));
        }
        // Build eagerly; distinct names sharing a catalog key share the
        // build (the catalog hit skips it). A failed build must unregister
        // the name, or the caller could never retry with a fixed strategy.
        if let Err(e) = self.representation_pooled(&registered, pool) {
            self.views
                .write()
                .expect("views lock poisoned")
                .remove(name);
            return Err(e);
        }
        Ok(registered)
    }

    /// Parses `query_text` + `pattern` and registers it (CLI front door).
    ///
    /// # Errors
    ///
    /// Propagates parse and registration failures.
    pub fn register_text(
        &self,
        name: &str,
        query_text: &str,
        pattern: &str,
        policy: Policy,
    ) -> Result<Arc<RegisteredView>> {
        let view = parse_adorned(query_text, pattern)?;
        self.register(name, view, policy)
    }

    /// Removes a registered view by name, returning whether it existed.
    /// Catalog entries keyed by the view's normalized query survive (they
    /// may be shared by aliases and will age out via the budget); only the
    /// name binding is dropped.
    pub fn unregister(&self, name: &str) -> bool {
        self.views
            .write()
            .expect("views lock poisoned")
            .remove(name)
            .is_some()
    }

    /// The registered view named `name`.
    ///
    /// # Errors
    ///
    /// [`CqcError::UnknownView`] when not registered.
    pub fn view(&self, name: &str) -> Result<Arc<RegisteredView>> {
        self.views
            .read()
            .expect("views lock poisoned")
            .get(name)
            .cloned()
            .ok_or_else(|| CqcError::UnknownView(name.to_string()))
    }

    /// All registered views, sorted by name.
    pub fn views(&self) -> Vec<Arc<RegisteredView>> {
        let mut v: Vec<_> = self
            .views
            .read()
            .expect("views lock poisoned")
            .values()
            .cloned()
            .collect();
        v.sort_by(|a, b| a.name.cmp(&b.name));
        v
    }

    /// The compressed representation for a registered view: catalog hit, or
    /// (re)build under the key's build lock on a miss (aliased names share
    /// the lock, so one key never builds twice concurrently).
    ///
    /// The lookup carries the epoch of the database snapshot being served:
    /// an entry stamped older — built before a delta this snapshot already
    /// reflects — is invalidated and rebuilt instead of served stale.
    fn representation(&self, rv: &RegisteredView) -> Result<Arc<CompressedView>> {
        self.representation_pooled(rv, &mut cqc_storage::IndexPool::new())
    }

    /// [`Engine::representation`] building any catalog miss through the
    /// caller's index pool (registration passes the pool its strategy
    /// selection already filled).
    fn representation_pooled(
        &self,
        rv: &RegisteredView,
        pool: &mut cqc_storage::IndexPool,
    ) -> Result<Arc<CompressedView>> {
        let db = self.db();
        if let Some(cv) = self.catalog.get(&rv.key, db.epoch()) {
            return Ok(cv);
        }
        let lock = self.catalog.build_lock(&rv.key);
        let _guard = lock.lock().expect("build lock poisoned");
        // Double-check: a concurrent miss may have built while we waited.
        if let Some(cv) = self.catalog.get(&rv.key, db.epoch()) {
            return Ok(cv);
        }
        let t0 = Instant::now();
        let built =
            CompressedView::build_pooled(&rv.view, &db, rv.selection.strategy.clone(), pool)
                .map_err(|e| e.for_view(&rv.name, &rv.selection.tag))?;
        let cv = Arc::new(built);
        self.catalog.insert(
            rv.key.clone(),
            Arc::clone(&cv),
            db.epoch(),
            t0.elapsed().as_nanos() as u64,
        );
        Ok(cv)
    }

    /// Answers one request into owned per-tuple `Vec`s, discarding delay
    /// measurements.
    ///
    /// This is the legacy pull-iterator path (one heap allocation per
    /// answer), kept as the compatibility/oracle interface and as the
    /// before-side of the `cqe bench --profile=enum` comparison; the serve
    /// path proper ([`Engine::serve`], [`Engine::serve_stream`]) goes
    /// through the flat-block pipeline.
    ///
    /// # Errors
    ///
    /// Unknown view, bound-arity mismatch, or a tagged rebuild failure.
    pub fn answer(&self, view: &str, bound: &[Value]) -> Result<Vec<Tuple>> {
        let rv = self.view(view)?;
        let cv = self.representation(&rv)?;
        Ok(cv.answer(bound)?.collect())
    }

    /// `true` iff the request has at least one answer (first-answer probe;
    /// no answer tuple is materialized).
    ///
    /// # Errors
    ///
    /// Same failure modes as [`Engine::answer`].
    pub fn exists(&self, view: &str, bound: &[Value]) -> Result<bool> {
        let rv = self.view(view)?;
        let cv = self.representation(&rv)?;
        cv.exists(bound)
    }

    /// Serves one request, measuring enumeration delays.
    ///
    /// Answers are pushed straight into the returned [`Served`]'s flat
    /// block (no per-answer allocation; the block itself grows amortized).
    /// The measured gaps include the block copy; use [`Engine::measure`]
    /// for the pure §2.3 enumeration delay of the representation itself.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`Engine::answer`].
    pub fn serve(&self, request: &Request) -> Result<Served> {
        let rv = self.view(&request.view)?;
        let cv = self.representation(&rv)?;
        let mut sink = TimedBlockSink {
            block: AnswerBlock::new(),
            probe: DelayProbe::start(),
        };
        cv.answer_into(&request.bound, &mut sink)?;
        let delay = sink.probe.finish();
        self.record_serve_cost(&request.view, delay.total_ns);
        Ok(Served {
            block: sink.block,
            delay,
        })
    }

    /// Folds one measured serve wall time into the view's cost estimate:
    /// an EWMA with α = 1/4, seeded by the first sample. A quarter-weight
    /// EWMA tracks catalog churn (a rebuild after a delta shifts the cost)
    /// within a handful of serves without letting one descheduled outlier
    /// rewrite the estimate.
    pub fn record_serve_cost(&self, view: &str, ns: u64) {
        let mut costs = self.serve_costs.lock().expect("serve cost lock");
        match costs.get_mut(view) {
            Some(ewma) => *ewma = *ewma - *ewma / 4 + ns / 4,
            None => {
                costs.insert(view.to_string(), ns);
            }
        }
    }

    /// The EWMA of measured serve wall times for `view` in nanoseconds,
    /// if any serve has been measured — the estimate behind the
    /// admission-control rule "shed a request whose remaining deadline
    /// budget cannot cover the serve it is asking for". `None` until the
    /// first measured serve (an unknown cost never sheds).
    pub fn serve_cost_ns(&self, view: &str) -> Option<u64> {
        self.serve_costs
            .lock()
            .expect("serve cost lock")
            .get(view)
            .copied()
    }

    /// Measures one request's enumeration delays without retaining the
    /// tuples — nothing is copied or allocated per answer, so the gaps are
    /// the representation's own delay (the benchmark path).
    ///
    /// # Errors
    ///
    /// Same failure modes as [`Engine::answer`].
    pub fn measure(&self, request: &Request) -> Result<DelayStats> {
        let rv = self.view(&request.view)?;
        let cv = self.representation(&rv)?;
        let mut sink = ProbeSink {
            probe: DelayProbe::start(),
        };
        cv.answer_into(&request.bound, &mut sink)?;
        Ok(sink.probe.finish())
    }

    /// Runs `f` with a [`ViewServer`] for `view`: one reusable enumerator
    /// plus one reusable flat [`AnswerBlock`], the steady-state serve
    /// primitive. After the server's scratch has warmed to its high-water
    /// mark, each [`ViewServer::serve`] call performs **zero** heap
    /// allocations — the property the counting allocator gates in CI. The
    /// scoped-closure shape exists because the enumerator borrows the
    /// catalog's representation for the duration.
    ///
    /// **Snapshot semantics:** the representation is resolved once, so the
    /// whole stream answers from one consistent epoch. A concurrent
    /// [`Engine::update`] is *not* observed mid-stream (unlike
    /// [`Engine::serve`], which revalidates per request) — finish the
    /// closure and re-enter to pick up a newer epoch.
    ///
    /// # Errors
    ///
    /// Unknown view, or a tagged rebuild failure.
    pub fn with_view_server<R>(
        &self,
        view: &str,
        f: impl FnOnce(&mut ViewServer<'_>) -> R,
    ) -> Result<R> {
        let rv = self.view(view)?;
        let cv = self.representation(&rv)?;
        let mut server = ViewServer {
            enumerator: cv.enumerator(),
            block: AnswerBlock::new(),
        };
        Ok(f(&mut server))
    }

    /// Runs `f` with the raw reusable enumerator for `view` — the
    /// lower-level sibling of [`Engine::with_view_server`] for callers that
    /// own their output blocks (the sharded engine drives one enumerator
    /// per shard into per-request blocks it manages itself). The same
    /// snapshot semantics apply: the representation is resolved once.
    ///
    /// # Errors
    ///
    /// Unknown view, or a tagged rebuild failure.
    pub fn with_view_enumerator<R>(
        &self,
        view: &str,
        f: impl FnOnce(&mut cqc_core::ViewEnumerator<'_>) -> R,
    ) -> Result<R> {
        let rv = self.view(view)?;
        let cv = self.representation(&rv)?;
        let mut enumerator = cv.enumerator();
        Ok(f(&mut enumerator))
    }

    /// The steady-state serve loop: answers a stream of requests against
    /// one view through a single [`ViewServer`]. `on_block` is invoked
    /// once per request with the request index and the filled block
    /// (cleared before the next request). Returns the total number of
    /// answers. The whole stream serves from one database epoch (see the
    /// snapshot note on [`Engine::with_view_server`]).
    ///
    /// # Errors
    ///
    /// Unknown view, bound-arity mismatch, or a tagged rebuild failure.
    pub fn serve_stream(
        &self,
        view: &str,
        bounds: &[Vec<Value>],
        mut on_block: impl FnMut(usize, &AnswerBlock),
    ) -> Result<usize> {
        self.with_view_server(view, |server| {
            let mut total = 0usize;
            for (i, bound) in bounds.iter().enumerate() {
                let block = server.serve(bound)?;
                total += block.len();
                on_block(i, block);
            }
            Ok(total)
        })?
    }

    /// Runs `f` over the requests striped round-robin across `threads` OS
    /// threads (`std::thread::scope`), preserving request order.
    fn run_batch<T: Send>(
        &self,
        requests: &[Request],
        threads: usize,
        f: impl Fn(&Request) -> Result<T> + Sync,
    ) -> Result<Vec<T>> {
        let threads = threads.clamp(1, requests.len().max(1));
        if threads == 1 {
            return requests.iter().map(f).collect();
        }
        let f = &f;
        let mut slots: Vec<Result<T>> = Vec::with_capacity(requests.len());
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|worker| {
                    scope.spawn(move || {
                        requests
                            .iter()
                            .enumerate()
                            .skip(worker)
                            .step_by(threads)
                            .map(|(i, r)| (i, f(r)))
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            let mut indexed: Vec<(usize, Result<T>)> = handles
                .into_iter()
                .flat_map(|h| h.join().expect("serve worker panicked"))
                .collect();
            indexed.sort_by_key(|(i, _)| *i);
            slots.extend(indexed.into_iter().map(|(_, r)| r));
        });
        slots.into_iter().collect()
    }

    /// Serves a batch of requests across `threads` OS threads, preserving
    /// request order in the result. Every worker shares the catalog, so a
    /// view built once serves all threads.
    ///
    /// # Errors
    ///
    /// The first failing request's error (by request order), if any.
    pub fn serve_batch(&self, requests: &[Request], threads: usize) -> Result<Vec<Served>> {
        self.run_batch(requests, threads, |r| self.serve(r))
    }

    /// [`Engine::measure`] over a batch: delay statistics only, no tuple
    /// retention, same striping and ordering as [`Engine::serve_batch`].
    ///
    /// # Errors
    ///
    /// The first failing request's error (by request order), if any.
    pub fn measure_batch(&self, requests: &[Request], threads: usize) -> Result<Vec<DelayStats>> {
        self.run_batch(requests, threads, |r| self.measure(r))
    }

    /// Catalog effectiveness counters.
    pub fn catalog_stats(&self) -> CatalogStats {
        self.catalog.stats()
    }

    /// The "EXPLAIN" of a registered view: selection reasoning plus the
    /// built representation's self-description.
    ///
    /// # Errors
    ///
    /// Unknown view, or a tagged rebuild failure.
    pub fn explain(&self, view: &str) -> Result<String> {
        let rv = self.view(view)?;
        let cv = self.representation(&rv)?;
        Ok(format!(
            "view `{}` = {}\n  pattern:  {}\n  strategy: {} ({})\n  repr:     {}",
            rv.name,
            rv.view.query(),
            rv.view.pattern(),
            rv.selection.tag,
            rv.selection.reason,
            cv.describe()
        ))
    }

    /// Resolves a textual request value: an interned string if the text was
    /// ever interned (CSV data), otherwise a numeric literal.
    ///
    /// Interned strings take precedence: on a workload mixing CSV relations
    /// with generated numeric relations, a numeric-looking token that also
    /// appears in a CSV resolves to its interned id, not the number. Keep
    /// CSV tokens non-numeric (or workloads unmixed) when both spaces are
    /// in play; [`Engine::display_value`] mirrors the same precedence.
    ///
    /// # Errors
    ///
    /// The text is neither interned nor numeric.
    pub fn resolve_value(&self, text: &str) -> Result<Value> {
        if let Some(v) = self.interner.get(text) {
            return Ok(v);
        }
        text.parse::<Value>().map_err(|_| {
            CqcError::InvalidAccess(format!(
                "value `{text}` is neither a loaded string nor a number"
            ))
        })
    }

    /// Renders a value for display: its interned string when available,
    /// else the number itself.
    pub fn display_value(&self, v: Value) -> String {
        self.interner
            .resolve(v)
            .map_or_else(|| v.to_string(), str::to_string)
    }
}

impl std::fmt::Debug for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let db = self.db();
        f.debug_struct("Engine")
            .field("relations", &db.num_relations())
            .field("|D|", &db.size())
            .field("epoch", &db.epoch())
            .field(
                "views",
                &self.views.read().expect("views lock poisoned").len(),
            )
            .field("catalog", &self.catalog)
            .finish()
    }
}
