//! The representation catalog: a concurrent, memory-budgeted cache of built
//! [`CompressedView`]s.
//!
//! The paper's regime is *build once, answer many*: a compressed
//! representation is amortized over a stream of access requests. The catalog
//! owns that amortization. It maps a [`CatalogKey`] — normalized query
//! text, adornment and strategy tag — to an `Arc<CompressedView>`, so that
//! repeated requests (and distinct registered names for the same view)
//! never rebuild. When the deterministic [`HeapSize`] accounting exceeds
//! the configured byte budget, eviction is **cost-aware**: the victim is
//! the entry with the highest bytes ÷ measured-rebuild-time ratio — the
//! one that frees the most memory per nanosecond it would cost to bring
//! back — with plain LRU recency as the tie-break. Rebuild times are
//! measured when entries are built, so the policy needs no extra
//! bookkeeping.
//!
//! Since the database became versioned, every entry additionally carries
//! the [`Epoch`] it was built (or maintained) at. A lookup passes the
//! epoch of the database snapshot it is serving from; an entry stamped
//! older is **stale** — it was built before some applied delta — and is
//! invalidated on the spot instead of served wrong. [`Catalog::restamp`]
//! lets the engine mark entries that a delta provably did not affect, and
//! [`Catalog::invalidate_stale`] sweeps eagerly. Entries also remember
//! their measured build time, which calibrates the engine's
//! maintain-versus-rebuild decision.

use cqc_common::heap::HeapSize;
use cqc_common::FastMap;
use cqc_core::CompressedView;
use cqc_storage::Epoch;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};

/// Cache key: one entry per distinct (view, adornment, strategy) triple.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CatalogKey {
    /// [`cqc_query::ConjunctiveQuery::normalized_text`] of the view's query.
    pub normalized_query: String,
    /// The access pattern string (e.g. `"bfb"`).
    pub pattern: String,
    /// A canonical tag of the resolved strategy (e.g. `"theorem-1 τ=2.00"`).
    pub strategy_tag: String,
}

/// Counters describing catalog effectiveness. `builds` counts every
/// representation construction (including rebuilds after eviction or
/// invalidation), which is what the zero-rebuild acceptance tests assert
/// on; delta-maintained insertions are counted separately.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CatalogStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that found no entry.
    pub misses: u64,
    /// Representations built (registrations + rebuilds after eviction or
    /// invalidation).
    pub builds: u64,
    /// Maintained representations installed without a rebuild.
    pub maintained: u64,
    /// Entries evicted to respect the memory budget.
    pub evictions: u64,
    /// Entries dropped because their epoch stamp was older than the
    /// database they were asked to serve (lazy lookups + explicit sweeps).
    pub invalidations: u64,
    /// Entries refused at admission because their measured footprint
    /// exceeded the admission threshold (they could never repay the
    /// evictions they would force under the current budget).
    pub admission_rejected: u64,
    /// Entries currently resident.
    pub entries: usize,
    /// Deterministic heap bytes currently resident.
    pub resident_bytes: usize,
    /// The configured budget.
    pub budget_bytes: usize,
}

/// Floor applied to measured rebuild times when scoring eviction victims:
/// entries whose build was unmeasured (or sub-microsecond noise) must not
/// look infinitely cheap to rebuild.
const EVICT_MIN_REBUILD_NS: u64 = 1_000;

struct Slot {
    view: Arc<CompressedView>,
    bytes: usize,
    /// Database epoch this representation is valid for.
    epoch: Epoch,
    /// Measured wall time of the build that produced the entry (0 for
    /// maintained entries, which keep the original build's measurement).
    build_ns: u64,
    /// Logical-clock tick of the last lookup; atomic so cache hits can
    /// refresh recency under the shared lock.
    last_used: AtomicU64,
}

impl Slot {
    /// Bytes reclaimed per nanosecond of rebuild cost — higher means a
    /// better eviction victim (large footprint, cheap to bring back).
    fn evict_score(&self) -> f64 {
        self.bytes as f64 / self.build_ns.max(EVICT_MIN_REBUILD_NS) as f64
    }
}

#[derive(Default)]
struct Inner {
    map: FastMap<CatalogKey, Slot>,
    resident_bytes: usize,
}

impl Inner {
    fn remove(&mut self, key: &CatalogKey) -> bool {
        if let Some(slot) = self.map.remove(key) {
            self.resident_bytes -= slot.bytes;
            true
        } else {
            false
        }
    }
}

/// The concurrent representation cache.
///
/// Reads take a shared lock (lookups clone an `Arc` out); only insertion,
/// eviction and invalidation take the exclusive lock. Recency is tracked
/// with a lock-free logical clock so hits on the shared path still update
/// LRU order.
pub struct Catalog {
    inner: RwLock<Inner>,
    /// Per-key build serialization: concurrent misses on the *same* key —
    /// including through different registered names aliasing one view —
    /// build once. Keyed here rather than per registered view so aliases
    /// share the lock.
    build_locks: Mutex<FastMap<CatalogKey, Arc<Mutex<()>>>>,
    budget_bytes: usize,
    /// Largest entry footprint admitted into the cache; `usize::MAX`
    /// disables admission control (the historical behavior).
    admit_max_bytes: usize,
    clock: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    builds: AtomicU64,
    maintained: AtomicU64,
    evictions: AtomicU64,
    invalidations: AtomicU64,
    admission_rejected: AtomicU64,
}

impl Catalog {
    /// An empty catalog holding at most `budget_bytes` of representations
    /// (a single oversized entry is still admitted — the budget bounds
    /// *retained* memory, not the largest buildable view).
    pub fn new(budget_bytes: usize) -> Catalog {
        Catalog::with_admission(budget_bytes, usize::MAX)
    }

    /// [`Catalog::new`] with **admission control**: an entry whose measured
    /// footprint exceeds `admit_max_bytes` is refused outright instead of
    /// cached. Under a tight budget an oversized entry would evict most of
    /// the working set and itself be evicted on the next insertion, so it
    /// can never repay its residency — refusing it keeps the rest of the
    /// catalog warm (the caller still gets its freshly built view; it is
    /// simply not retained). `usize::MAX` disables the check.
    pub fn with_admission(budget_bytes: usize, admit_max_bytes: usize) -> Catalog {
        Catalog {
            inner: RwLock::new(Inner::default()),
            build_locks: Mutex::new(FastMap::default()),
            budget_bytes,
            admit_max_bytes,
            clock: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            builds: AtomicU64::new(0),
            maintained: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            invalidations: AtomicU64::new(0),
            admission_rejected: AtomicU64::new(0),
        }
    }

    /// Looks `key` up for a request serving the database at epoch `at`,
    /// refreshing recency on a hit. An entry stamped **older** than `at`
    /// is stale — built before a delta the caller can already observe —
    /// and is dropped (counted as an invalidation plus a miss) instead of
    /// returned. An entry stamped newer is fine: representations advance
    /// monotonically and serving fresher data is always allowed.
    pub fn get(&self, key: &CatalogKey, at: Epoch) -> Option<Arc<CompressedView>> {
        let tick = self.clock.fetch_add(1, Ordering::Relaxed) + 1;
        let stale = {
            let inner = self.inner.read().expect("catalog lock poisoned");
            match inner.map.get(key) {
                Some(slot) if slot.epoch >= at => {
                    slot.last_used.fetch_max(tick, Ordering::Relaxed);
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    return Some(Arc::clone(&slot.view));
                }
                Some(_) => true,
                None => false,
            }
        };
        if stale {
            let mut inner = self.inner.write().expect("catalog lock poisoned");
            // Re-check under the exclusive lock: a maintainer may have
            // replaced the entry with a fresh one while we upgraded.
            match inner.map.get(key) {
                Some(slot) if slot.epoch >= at => {
                    slot.last_used.fetch_max(tick, Ordering::Relaxed);
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    return Some(Arc::clone(&slot.view));
                }
                Some(_) => {
                    inner.remove(key);
                    self.invalidations.fetch_add(1, Ordering::Relaxed);
                }
                None => {}
            }
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        None
    }

    /// Inserts a freshly built view stamped with the epoch of the database
    /// it was built from and its measured build time, counting the build
    /// and evicting least-recently-used entries until the budget holds.
    pub fn insert(&self, key: CatalogKey, view: Arc<CompressedView>, epoch: Epoch, build_ns: u64) {
        self.builds.fetch_add(1, Ordering::Relaxed);
        self.insert_at(key, view, epoch, build_ns);
    }

    /// Installs a delta-maintained view — counted as maintenance, not as a
    /// build, so zero-rebuild assertions over serving phases stay
    /// meaningful. The entry keeps the original build-time measurement if
    /// it is still resident (maintenance does not re-measure a rebuild).
    pub fn insert_maintained(&self, key: CatalogKey, view: Arc<CompressedView>, epoch: Epoch) {
        self.maintained.fetch_add(1, Ordering::Relaxed);
        let prior_build_ns = self
            .inner
            .read()
            .expect("catalog lock poisoned")
            .map
            .get(&key)
            .map_or(0, |s| s.build_ns);
        self.insert_at(key, view, epoch, prior_build_ns);
    }

    fn insert_at(&self, key: CatalogKey, view: Arc<CompressedView>, epoch: Epoch, build_ns: u64) {
        let bytes = std::mem::size_of::<CompressedView>() + view.heap_bytes();
        let tick = self.clock.fetch_add(1, Ordering::Relaxed) + 1;
        if bytes > self.admit_max_bytes {
            // Admission control: the entry can never repay the evictions it
            // would force. Drop any stale resident predecessor (it will not
            // be served either) and refuse the insertion.
            self.admission_rejected.fetch_add(1, Ordering::Relaxed);
            let mut inner = self.inner.write().expect("catalog lock poisoned");
            if inner.map.get(&key).is_some_and(|s| s.epoch < epoch) {
                inner.remove(&key);
            }
            return;
        }
        let mut inner = self.inner.write().expect("catalog lock poisoned");
        // Never replace a fresher entry with an older build: a builder
        // racing a concurrent `update` may finish after the maintainer.
        if inner.map.get(&key).is_some_and(|s| s.epoch > epoch) {
            return;
        }
        if let Some(old) = inner.map.insert(
            key.clone(),
            Slot {
                view,
                bytes,
                epoch,
                build_ns,
                last_used: AtomicU64::new(tick),
            },
        ) {
            inner.resident_bytes -= old.bytes;
        }
        inner.resident_bytes += bytes;
        while inner.resident_bytes > self.budget_bytes && inner.map.len() > 1 {
            // Cost-aware victim selection: maximize bytes freed per
            // nanosecond of measured rebuild time; among equals, evict the
            // least recently used.
            let victim = inner
                .map
                .iter()
                .filter(|(k, _)| **k != key)
                .max_by(|(_, a), (_, b)| {
                    a.evict_score().total_cmp(&b.evict_score()).then_with(|| {
                        b.last_used
                            .load(Ordering::Relaxed)
                            .cmp(&a.last_used.load(Ordering::Relaxed))
                    })
                })
                .map(|(k, _)| k.clone());
            let Some(victim) = victim else { break };
            if inner.remove(&victim) {
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Advances an entry's epoch stamp without touching its contents —
    /// used when a delta provably does not affect the entry's view (none
    /// of the view's relations were touched). Stamps only move forward.
    /// Returns `true` when the entry exists.
    pub fn restamp(&self, key: &CatalogKey, epoch: Epoch) -> bool {
        let mut inner = self.inner.write().expect("catalog lock poisoned");
        match inner.map.get_mut(key) {
            Some(slot) => {
                slot.epoch = slot.epoch.max(epoch);
                true
            }
            None => false,
        }
    }

    /// Drops every entry stamped older than `at`, returning how many were
    /// removed. The lazy path in [`Catalog::get`] already guarantees stale
    /// entries are never served; this sweep additionally returns their
    /// memory ahead of the next lookup.
    pub fn invalidate_stale(&self, at: Epoch) -> usize {
        let mut inner = self.inner.write().expect("catalog lock poisoned");
        let stale: Vec<CatalogKey> = inner
            .map
            .iter()
            .filter(|(_, slot)| slot.epoch < at)
            .map(|(k, _)| k.clone())
            .collect();
        let mut dropped = 0;
        for key in &stale {
            if inner.remove(key) {
                dropped += 1;
            }
        }
        self.invalidations
            .fetch_add(dropped as u64, Ordering::Relaxed);
        dropped
    }

    /// The resident entry for `key`, with its epoch stamp and measured
    /// build time — no recency update, no counter bumps (the maintenance
    /// and introspection path).
    pub fn peek(&self, key: &CatalogKey) -> Option<(Arc<CompressedView>, Epoch, u64)> {
        self.inner
            .read()
            .expect("catalog lock poisoned")
            .map
            .get(key)
            .map(|slot| (Arc::clone(&slot.view), slot.epoch, slot.build_ns))
    }

    /// The build-serialization mutex for `key` (one per distinct key for
    /// the catalog's lifetime). Hold it while building after a miss and
    /// re-check [`Catalog::get`] once acquired.
    pub fn build_lock(&self, key: &CatalogKey) -> Arc<Mutex<()>> {
        let mut locks = self.build_locks.lock().expect("build-locks poisoned");
        Arc::clone(locks.entry(key.clone()).or_default())
    }

    /// Whether `key` is currently resident (no recency update, no counter
    /// bump — for tests and introspection).
    pub fn contains(&self, key: &CatalogKey) -> bool {
        self.inner
            .read()
            .expect("catalog lock poisoned")
            .map
            .contains_key(key)
    }

    /// Current counters.
    pub fn stats(&self) -> CatalogStats {
        let inner = self.inner.read().expect("catalog lock poisoned");
        CatalogStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            builds: self.builds.load(Ordering::Relaxed),
            maintained: self.maintained.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            invalidations: self.invalidations.load(Ordering::Relaxed),
            admission_rejected: self.admission_rejected.load(Ordering::Relaxed),
            entries: inner.map.len(),
            resident_bytes: inner.resident_bytes,
            budget_bytes: self.budget_bytes,
        }
    }
}

impl std::fmt::Debug for Catalog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.stats();
        f.debug_struct("Catalog")
            .field("entries", &s.entries)
            .field("resident_bytes", &s.resident_bytes)
            .field("budget_bytes", &s.budget_bytes)
            .field("hits", &s.hits)
            .field("misses", &s.misses)
            .field("builds", &s.builds)
            .field("maintained", &s.maintained)
            .field("evictions", &s.evictions)
            .field("invalidations", &s.invalidations)
            .field("admission_rejected", &s.admission_rejected)
            .finish()
    }
}
