//! The representation catalog: a concurrent, memory-budgeted cache of built
//! [`CompressedView`]s.
//!
//! The paper's regime is *build once, answer many*: a compressed
//! representation is amortized over a stream of access requests. The catalog
//! owns that amortization. It maps a [`CatalogKey`] — normalized query
//! text, adornment and strategy tag — to an `Arc<CompressedView>`, so that
//! repeated requests (and distinct registered names for the same view)
//! never rebuild. Entries are evicted least-recently-used when the
//! deterministic [`HeapSize`] accounting exceeds the configured byte
//! budget.

use cqc_common::heap::HeapSize;
use cqc_common::FastMap;
use cqc_core::CompressedView;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};

/// Cache key: one entry per distinct (view, adornment, strategy) triple.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CatalogKey {
    /// [`cqc_query::ConjunctiveQuery::normalized_text`] of the view's query.
    pub normalized_query: String,
    /// The access pattern string (e.g. `"bfb"`).
    pub pattern: String,
    /// A canonical tag of the resolved strategy (e.g. `"theorem-1 τ=2.00"`).
    pub strategy_tag: String,
}

/// Counters describing catalog effectiveness. `builds` counts every
/// representation construction (including rebuilds after eviction), which is
/// what the zero-rebuild acceptance tests assert on.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CatalogStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that found no entry.
    pub misses: u64,
    /// Representations built (registrations + rebuilds after eviction).
    pub builds: u64,
    /// Entries evicted to respect the memory budget.
    pub evictions: u64,
    /// Entries currently resident.
    pub entries: usize,
    /// Deterministic heap bytes currently resident.
    pub resident_bytes: usize,
    /// The configured budget.
    pub budget_bytes: usize,
}

struct Slot {
    view: Arc<CompressedView>,
    bytes: usize,
    /// Logical-clock tick of the last lookup; atomic so cache hits can
    /// refresh recency under the shared lock.
    last_used: AtomicU64,
}

#[derive(Default)]
struct Inner {
    map: FastMap<CatalogKey, Slot>,
    resident_bytes: usize,
}

/// The concurrent representation cache.
///
/// Reads take a shared lock (lookups clone an `Arc` out); only insertion and
/// eviction take the exclusive lock. Recency is tracked with a lock-free
/// logical clock so hits on the shared path still update LRU order.
pub struct Catalog {
    inner: RwLock<Inner>,
    /// Per-key build serialization: concurrent misses on the *same* key —
    /// including through different registered names aliasing one view —
    /// build once. Keyed here rather than per registered view so aliases
    /// share the lock.
    build_locks: Mutex<FastMap<CatalogKey, Arc<Mutex<()>>>>,
    budget_bytes: usize,
    clock: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    builds: AtomicU64,
    evictions: AtomicU64,
}

impl Catalog {
    /// An empty catalog holding at most `budget_bytes` of representations
    /// (a single oversized entry is still admitted — the budget bounds
    /// *retained* memory, not the largest buildable view).
    pub fn new(budget_bytes: usize) -> Catalog {
        Catalog {
            inner: RwLock::new(Inner::default()),
            build_locks: Mutex::new(FastMap::default()),
            budget_bytes,
            clock: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            builds: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// Looks `key` up, refreshing its recency on a hit. Hits stay entirely
    /// on the shared lock: recency is an atomic stamp, not a list splice.
    pub fn get(&self, key: &CatalogKey) -> Option<Arc<CompressedView>> {
        let tick = self.clock.fetch_add(1, Ordering::Relaxed) + 1;
        let inner = self.inner.read().expect("catalog lock poisoned");
        match inner.map.get(key) {
            Some(slot) => {
                slot.last_used.fetch_max(tick, Ordering::Relaxed);
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(Arc::clone(&slot.view))
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Inserts a freshly built view, counting the build and evicting
    /// least-recently-used entries until the budget holds (the new entry is
    /// never evicted by its own insertion).
    pub fn insert(&self, key: CatalogKey, view: Arc<CompressedView>) {
        self.builds.fetch_add(1, Ordering::Relaxed);
        let bytes = std::mem::size_of::<CompressedView>() + view.heap_bytes();
        let tick = self.clock.fetch_add(1, Ordering::Relaxed) + 1;
        let mut inner = self.inner.write().expect("catalog lock poisoned");
        if let Some(old) = inner.map.insert(
            key.clone(),
            Slot {
                view,
                bytes,
                last_used: AtomicU64::new(tick),
            },
        ) {
            inner.resident_bytes -= old.bytes;
        }
        inner.resident_bytes += bytes;
        while inner.resident_bytes > self.budget_bytes && inner.map.len() > 1 {
            let victim = inner
                .map
                .iter()
                .filter(|(k, _)| **k != key)
                .min_by_key(|(_, slot)| slot.last_used.load(Ordering::Relaxed))
                .map(|(k, _)| k.clone());
            let Some(victim) = victim else { break };
            if let Some(slot) = inner.map.remove(&victim) {
                inner.resident_bytes -= slot.bytes;
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// The build-serialization mutex for `key` (one per distinct key for
    /// the catalog's lifetime). Hold it while building after a miss and
    /// re-check [`Catalog::get`] once acquired.
    pub fn build_lock(&self, key: &CatalogKey) -> Arc<Mutex<()>> {
        let mut locks = self.build_locks.lock().expect("build-locks poisoned");
        Arc::clone(locks.entry(key.clone()).or_default())
    }

    /// Whether `key` is currently resident (no recency update, no counter
    /// bump — for tests and introspection).
    pub fn contains(&self, key: &CatalogKey) -> bool {
        self.inner
            .read()
            .expect("catalog lock poisoned")
            .map
            .contains_key(key)
    }

    /// Current counters.
    pub fn stats(&self) -> CatalogStats {
        let inner = self.inner.read().expect("catalog lock poisoned");
        CatalogStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            builds: self.builds.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            entries: inner.map.len(),
            resident_bytes: inner.resident_bytes,
            budget_bytes: self.budget_bytes,
        }
    }
}

impl std::fmt::Debug for Catalog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.stats();
        f.debug_struct("Catalog")
            .field("entries", &s.entries)
            .field("resident_bytes", &s.resident_bytes)
            .field("budget_bytes", &s.budget_bytes)
            .field("hits", &s.hits)
            .field("misses", &s.misses)
            .field("builds", &s.builds)
            .field("evictions", &s.evictions)
            .finish()
    }
}
