//! `cqe` — the command-line front door to [`cqc_engine::Engine`].
//!
//! Reads commands from script files given as arguments, from `-e '<cmd>'`
//! flags, or from stdin (one command per line; `#` starts a comment):
//!
//! ```text
//! load <rel> <file.csv> [header]       load a CSV relation
//! gen triangle <rows> [seed]           synthetic R, S, T (uniform pairs)
//! gen social <nodes> <edges> [seed]    skewed friendship graph R
//! gen star <k> <rows> [seed]           star relations R1..Rk
//! register <name> <pattern> <strategy> <query>
//!                                      e.g. register mutual bfb auto
//!                                           "V(x,y,z) :- R(x,y), R(y,z), R(z,x)"
//! ask <name> <v1> <v2> ...             answer one access request
//! exists <name> <v1> ...               boolean probe
//! explain <name>                       strategy selection + representation
//! bench <name> <requests> <threads> [seed] [witness|random]
//!                                      serve a generated request stream
//! stats                                catalog counters
//! demo                                 canned end-to-end tour
//! help | quit
//! ```
//!
//! Strategies: `auto`, `auto:<budget>`, `materialize`, `direct`,
//! `factorized`, `tau:<τ>`, `budget:<exp>`, `decomposed:<exp>`.

use cqc_bench::{fmt_bytes, fmt_ns, BatchStats};
use cqc_core::Strategy;
use cqc_engine::{Engine, Policy, Request};
use cqc_storage::csv::CsvOptions;
use cqc_workload::{graphs, random_requests, uniform_relation, witness_requests};
use std::io::BufRead;

fn main() {
    let mut commands: Vec<String> = Vec::new();
    let mut from_stdin = true;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "-e" => {
                let Some(cmd) = args.next() else {
                    eprintln!("cqe: -e needs a command");
                    std::process::exit(2);
                };
                commands.push(cmd);
                from_stdin = false;
            }
            "-h" | "--help" => {
                print_help();
                return;
            }
            path => {
                match std::fs::read_to_string(path) {
                    Ok(text) => commands.extend(text.lines().map(str::to_string)),
                    Err(e) => {
                        eprintln!("cqe: cannot read script `{path}`: {e}");
                        std::process::exit(2);
                    }
                }
                from_stdin = false;
            }
        }
    }

    let mut engine = Engine::new(cqc_storage::Database::new());
    let mut failed = false;
    let mut run = |engine: &mut Engine, line: &str| {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            return true;
        }
        match execute(engine, line) {
            Ok(keep_going) => keep_going,
            Err(msg) => {
                eprintln!("error: {msg}");
                failed = true;
                true
            }
        }
    };

    if from_stdin {
        let stdin = std::io::stdin();
        for line in stdin.lock().lines() {
            let Ok(line) = line else { break };
            if !run(&mut engine, &line) {
                break;
            }
        }
    } else {
        for line in &commands {
            if !run(&mut engine, line) {
                break;
            }
        }
    }
    if failed {
        std::process::exit(1);
    }
}

fn print_help() {
    println!("cqe — serve conjunctive-query views from compressed representations");
    println!();
    println!("usage: cqe [script ...] [-e '<command>'] (no args: read stdin)");
    println!();
    println!("commands:");
    println!("  load <rel> <file.csv> [header]");
    println!("  gen triangle <rows> [seed] | gen social <nodes> <edges> [seed] | gen star <k> <rows> [seed]");
    println!("  register <name> <pattern> <strategy> <query>");
    println!("  ask <name> <values...>   exists <name> <values...>   explain <name>");
    println!("  bench <name> <requests> <threads> [seed] [witness|random]");
    println!("  stats   demo   help   quit");
    println!();
    println!("strategies: auto  auto:<budget>  materialize  direct  factorized");
    println!("            tau:<t>  budget:<exp>  decomposed:<exp>");
}

/// Splits a command line into words, honoring double quotes (queries
/// contain spaces and commas).
fn split_words(line: &str) -> Result<Vec<String>, String> {
    let mut words = Vec::new();
    let mut cur = String::new();
    let mut in_quotes = false;
    for c in line.chars() {
        match c {
            '"' => in_quotes = !in_quotes,
            c if c.is_whitespace() && !in_quotes => {
                if !cur.is_empty() {
                    words.push(std::mem::take(&mut cur));
                }
            }
            c => cur.push(c),
        }
    }
    if in_quotes {
        return Err(format!("unterminated quote in `{line}`"));
    }
    if !cur.is_empty() {
        words.push(cur);
    }
    Ok(words)
}

fn parse_strategy(token: &str) -> Result<Policy, String> {
    let (kind, param) = match token.split_once(':') {
        Some((k, p)) => (k, Some(p)),
        None => (token, None),
    };
    let num = |p: Option<&str>| -> Result<f64, String> {
        p.ok_or_else(|| format!("strategy `{kind}` needs a numeric parameter"))?
            .parse::<f64>()
            .map_err(|_| format!("bad numeric parameter in `{token}`"))
    };
    match kind {
        "auto" => Ok(Policy::Auto {
            space_budget_exp: param.map(|p| num(Some(p))).transpose()?,
        }),
        "materialize" => Ok(Policy::Fixed(Strategy::Materialize)),
        "direct" => Ok(Policy::Fixed(Strategy::Direct)),
        "factorized" => Ok(Policy::Fixed(Strategy::Factorized)),
        "tau" => Ok(Policy::Fixed(Strategy::Tradeoff {
            tau: num(param)?,
            weights: None,
        })),
        "budget" => Ok(Policy::Fixed(Strategy::TradeoffBudget {
            space_budget_exp: num(param)?,
        })),
        "decomposed" => Ok(Policy::Fixed(Strategy::Decomposed {
            space_budget_exp: num(param)?,
        })),
        other => Err(format!(
            "unknown strategy `{other}` (try: auto, auto:<b>, materialize, direct, \
             factorized, tau:<t>, budget:<b>, decomposed:<b>)"
        )),
    }
}

/// Executes one command; `Ok(false)` means quit.
fn execute(engine: &mut Engine, line: &str) -> Result<bool, String> {
    let words = split_words(line)?;
    let Some(cmd) = words.first() else {
        // e.g. a line of only quotes: nothing to do.
        return Ok(true);
    };
    let cmd = cmd.as_str();
    let rest = &words[1..];
    match cmd {
        "help" => print_help(),
        "quit" | "exit" => return Ok(false),
        "load" => {
            let [rel, path, opts @ ..] = rest else {
                return Err("usage: load <rel> <file.csv> [header]".into());
            };
            let has_header = match opts {
                [] => false,
                [o] if o == "header" => true,
                _ => {
                    return Err(format!(
                        "unknown load option(s) `{}` (only `header` is accepted)",
                        opts.join(" ")
                    ));
                }
            };
            let file = std::fs::File::open(path).map_err(|e| format!("open `{path}`: {e}"))?;
            engine
                .load_csv(
                    rel,
                    std::io::BufReader::new(file),
                    CsvOptions { has_header },
                )
                .map_err(|e| e.to_string())?;
            let r = engine.db().get(rel).expect("just loaded");
            println!(
                "loaded `{rel}`: {} tuples, arity {} (|D| = {})",
                r.len(),
                r.arity(),
                engine.db().size()
            );
        }
        "gen" => gen(engine, rest)?,
        "register" => {
            let [name, pattern, strategy, query] = rest else {
                return Err("usage: register <name> <pattern> <strategy> \"<query>\"".into());
            };
            let policy = parse_strategy(strategy)?;
            let rv = engine
                .register_text(name, query, pattern, policy)
                .map_err(|e| e.to_string())?;
            println!(
                "registered `{name}` [{}]: {}",
                rv.selection.tag, rv.selection.reason
            );
        }
        "ask" | "exists" => {
            let [name, vals @ ..] = rest else {
                return Err(format!("usage: {cmd} <name> <values...>"));
            };
            let bound: Vec<u64> = vals
                .iter()
                .map(|v| engine.resolve_value(v).map_err(|e| e.to_string()))
                .collect::<Result<_, _>>()?;
            if cmd == "exists" {
                let yes = engine.exists(name, &bound).map_err(|e| e.to_string())?;
                println!("{yes}");
            } else {
                let served = engine
                    .serve(&Request {
                        view: name.clone(),
                        bound,
                    })
                    .map_err(|e| e.to_string())?;
                for t in &served.tuples {
                    let row: Vec<String> = t.iter().map(|&v| engine.display_value(v)).collect();
                    println!("{}", row.join(", "));
                }
                println!(
                    "-- {} tuples in {} (max delay {})",
                    served.tuples.len(),
                    fmt_ns(served.delay.total_ns),
                    fmt_ns(served.delay.max_ns)
                );
            }
        }
        "explain" => {
            let [name] = rest else {
                return Err("usage: explain <name>".into());
            };
            println!("{}", engine.explain(name).map_err(|e| e.to_string())?);
        }
        "stats" => {
            let s = engine.catalog_stats();
            println!(
                "catalog: {} entries, {} resident (budget {}), {} hits, {} misses, \
                 {} builds, {} evictions",
                s.entries,
                fmt_bytes(s.resident_bytes),
                fmt_bytes(s.budget_bytes),
                s.hits,
                s.misses,
                s.builds,
                s.evictions
            );
        }
        "bench" => bench(engine, rest)?,
        "demo" => {
            for cmd in [
                "gen social 400 4000 7",
                "register mutual bfb auto \"V(x,y,z) :- R(x,y), R(y,z), R(z,x)\"",
                "explain mutual",
                "bench mutual 2000 4 7 witness",
                "stats",
            ] {
                println!("cqe> {cmd}");
                execute(engine, cmd)?;
            }
        }
        other => return Err(format!("unknown command `{other}` (try `help`)")),
    }
    Ok(true)
}

fn gen(engine: &mut Engine, rest: &[String]) -> Result<(), String> {
    let usage = "usage: gen triangle <rows> [seed] | gen social <nodes> <edges> [seed] \
                 | gen star <k> <rows> [seed]";
    let arg = |i: usize| -> Result<u64, String> {
        rest.get(i)
            .ok_or_else(|| usage.to_string())?
            .parse::<u64>()
            .map_err(|_| format!("bad number `{}`", rest[i]))
    };
    // A *present* but unparseable seed is an error, not the default.
    let seed_arg = |i: usize| -> Result<u64, String> {
        match rest.get(i) {
            None => Ok(7),
            Some(_) => arg(i),
        }
    };
    match rest.first().map(String::as_str) {
        Some("triangle") => {
            let rows = arg(1)? as usize;
            let seed = seed_arg(2)?;
            let mut rng = cqc_workload::rng(seed);
            let domain = ((rows as f64).sqrt() as u64 * 2).max(4);
            for name in ["R", "S", "T"] {
                let r = uniform_relation(&mut rng, name, 2, rows, domain);
                engine.add_relation(r).map_err(|e| e.to_string())?;
            }
            println!(
                "generated triangle workload: R, S, T with ≤{rows} pairs over 0..{domain} \
                 (|D| = {})",
                engine.db().size()
            );
        }
        Some("social") => {
            let nodes = arg(1)?;
            let edges = arg(2)? as usize;
            let seed = seed_arg(3)?;
            let mut rng = cqc_workload::rng(seed);
            let r = graphs::friendship_graph(&mut rng, nodes, edges, 1.0);
            engine.add_relation(r).map_err(|e| e.to_string())?;
            println!(
                "generated social graph `R`: {} directed friendship edges over {nodes} users",
                engine.db().size()
            );
        }
        Some("star") => {
            let k = arg(1)? as usize;
            let rows = arg(2)? as usize;
            let seed = seed_arg(3)?;
            if k == 0 {
                return Err("star needs k ≥ 1".into());
            }
            let mut rng = cqc_workload::rng(seed);
            let domain = (rows as u64 / 4).max(4);
            for i in 1..=k {
                let r = uniform_relation(&mut rng, &format!("R{i}"), 2, rows, domain);
                engine.add_relation(r).map_err(|e| e.to_string())?;
            }
            println!(
                "generated star workload: R1..R{k} with ≤{rows} pairs (|D| = {})",
                engine.db().size()
            );
        }
        _ => return Err(usage.into()),
    }
    Ok(())
}

fn bench(engine: &mut Engine, rest: &[String]) -> Result<(), String> {
    let [name, n_req, threads, opts @ ..] = rest else {
        return Err("usage: bench <name> <requests> <threads> [seed] [witness|random]".into());
    };
    let n_req: usize = n_req.parse().map_err(|_| "bad request count")?;
    let threads: usize = threads.parse().map_err(|_| "bad thread count")?;
    let seed: u64 = opts
        .first()
        .map(|s| s.parse().map_err(|_| format!("bad seed `{s}`")))
        .transpose()?
        .unwrap_or(7);
    let witness = match opts.get(1).map(String::as_str) {
        None | Some("witness") => true,
        Some("random") => false,
        Some(other) => return Err(format!("bad sampler `{other}` (witness|random)")),
    };

    let rv = engine.view(name).map_err(|e| e.to_string())?;
    let mut rng = cqc_workload::rng(seed);
    let bounds = if witness {
        witness_requests(&mut rng, &rv.view, engine.db(), n_req)
    } else {
        random_requests(&mut rng, &rv.view, engine.db(), n_req)
    };
    let requests: Vec<Request> = bounds
        .into_iter()
        .map(|bound| Request {
            view: name.clone(),
            bound,
        })
        .collect();

    let before = engine.catalog_stats();
    let t0 = std::time::Instant::now();
    // measure_batch drains without retaining tuples, so the reported gaps
    // are the representation's §2.3 enumeration delay, not Vec reallocs.
    let measured = engine
        .measure_batch(&requests, threads)
        .map_err(|e| e.to_string())?;
    let wall = t0.elapsed();
    let after = engine.catalog_stats();

    let mut batch = BatchStats::default();
    for d in &measured {
        batch.add(d);
    }
    let batch = batch.finish();
    let rebuilds = after.builds - before.builds;

    println!(
        "bench `{name}`: {} requests on {threads} threads in {} \
         ({:.0} req/s, {} tuples)",
        measured.len(),
        fmt_ns(wall.as_nanos() as u64),
        measured.len() as f64 / wall.as_secs_f64(),
        batch.tuples
    );
    println!(
        "  delay: max {} | mean p99 {} | trie seeks {}",
        fmt_ns(batch.max_delay_ns),
        fmt_ns(batch.mean_p99_ns),
        batch.trie_seeks
    );
    println!(
        "  catalog: {} representation rebuilds during serving ({}), {} hits",
        rebuilds,
        if rebuilds == 0 {
            "cache-hit request path"
        } else {
            "catalog thrashing — raise the budget"
        },
        after.hits - before.hits
    );
    Ok(())
}
