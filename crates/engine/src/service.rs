//! [`BlockService`] — the one trait local and remote serving share.
//!
//! The remote tier (`cqc-net`) needs every participant — a single
//! [`Engine`] behind a shard server, a [`ShardedEngine`] spanning cores,
//! and the network router fronting a fleet — to answer the same four
//! requests: register a view, stream a request's answers, apply a delta,
//! and report a version vector. This trait is that contract, shaped like
//! the wire protocol so a network hop neither adds nor loses capability:
//!
//! * policies travel as the compact **strategy token** grammar
//!   ([`Policy::parse`]) rather than as a `Policy` value, so a register
//!   request is expressible in a frame;
//! * answers are pushed into a `&mut dyn AnswerSink` — the object-safe
//!   handle a connection handler owns — and arrive in the paper's
//!   lexicographic enumeration order, which is what lets a router k-way
//!   merge per-shard streams back into one exact order;
//! * versions are **epoch vectors** (one entry per shard; length 1 for a
//!   single engine), the consistency token the router checks per request.

use crate::engine::Engine;
use crate::policy::Policy;
use crate::sharded::ShardedEngine;
use cqc_common::error::Result;
use cqc_common::{AnswerBlock, AnswerSink, BlockMerger, Value};
use cqc_storage::{Delta, Epoch};

/// A view-serving participant: local engine, sharded engine, or a remote
/// fleet behind a router — interchangeable behind one object-safe trait.
pub trait BlockService: Send + Sync {
    /// Registers `query_text` + `pattern` under `name` with the strategy
    /// described by `strategy` (the [`Policy::parse`] token grammar).
    /// Returns the epoch vector the registration observed.
    ///
    /// # Errors
    ///
    /// Token parse failures ([`cqc_common::CqcError::Config`]) plus the
    /// underlying registration failure modes.
    fn register_view(
        &self,
        name: &str,
        query_text: &str,
        pattern: &str,
        strategy: &str,
    ) -> Result<Vec<Epoch>>;

    /// Streams one request's answers into `sink` in lexicographic
    /// enumeration order; returns the answer count (the sink may have
    /// stopped the stream early, in which case the count is what was
    /// pushed).
    ///
    /// # Errors
    ///
    /// Unknown view, bound-arity mismatch, or a rebuild failure.
    fn serve_into(&self, view: &str, bound: &[Value], sink: &mut dyn AnswerSink) -> Result<usize>;

    /// Applies a batched delta; returns the post-delta epoch vector.
    ///
    /// # Errors
    ///
    /// Routing/schema failures before anything is applied; shard update
    /// failures after.
    fn apply_update(&self, delta: &Delta) -> Result<Vec<Epoch>>;

    /// [`BlockService::apply_update`] preconditioned on the caller's
    /// last-known epoch vector — the idempotency handle a *retrying*
    /// client needs. An update whose first attempt died with an ambiguous
    /// I/O error may or may not have applied; retrying it blind risks a
    /// double apply. With a precondition the retry is safe: if the first
    /// attempt landed, the service's version has moved past `expected`
    /// and the retry is rejected with a typed
    /// [`cqc_common::frame::code::EPOCH_MISMATCH`] instead of applied
    /// twice (the client then reconciles via a health probe — a version
    /// exactly one bump past `expected` means "already applied").
    ///
    /// `expected == None` degrades to the unconditioned apply. The
    /// default implementation is check-then-apply without a lock across
    /// the two steps: callers that serialize writers per service (the
    /// router does — one connection per replica, one writer at a time)
    /// get exact semantics; concurrent out-of-band writers can still
    /// interleave, which the epoch check on the *next* request catches.
    ///
    /// # Errors
    ///
    /// [`cqc_common::frame::code::EPOCH_MISMATCH`] when the current
    /// version differs from `expected`; otherwise the
    /// [`BlockService::apply_update`] failure modes.
    fn apply_update_preconditioned(
        &self,
        delta: &Delta,
        expected: Option<&[Epoch]>,
    ) -> Result<Vec<Epoch>> {
        if let Some(want) = expected {
            let now = self.version();
            if now != want {
                return Err(cqc_common::CqcError::Protocol {
                    code: cqc_common::frame::code::EPOCH_MISMATCH,
                    detail: format!(
                        "update preconditioned on epochs {want:?} but the service is at \
                         {now:?}; re-probe and reconcile before retrying"
                    ),
                });
            }
        }
        self.apply_update(delta)
    }

    /// The current epoch vector (length = shard count; length 1 for a
    /// single engine).
    ///
    /// Replica semantics: every replica of a shard applies the same
    /// updates in the same order, so replicas at the same epoch vector
    /// hold identical state and serve identical streams (enumeration
    /// order is deterministic). A replica whose vector lags its group's
    /// expectation is *stale* — safe to skip, never safe to serve.
    fn version(&self) -> Vec<Epoch>;

    /// The measured serve cost for `view` in nanoseconds (an EWMA of
    /// recent serve wall times), if this service tracks one. An
    /// admission controller uses it to shed a request whose remaining
    /// deadline budget cannot cover the serve it is asking for *before*
    /// any enumeration work. `None` — the default — means "unknown";
    /// an unknown cost must never shed.
    fn serve_cost_ns(&self, view: &str) -> Option<u64> {
        let _ = view;
        None
    }
}

impl BlockService for Engine {
    fn register_view(
        &self,
        name: &str,
        query_text: &str,
        pattern: &str,
        strategy: &str,
    ) -> Result<Vec<Epoch>> {
        let policy = Policy::parse(strategy)?;
        self.register_text(name, query_text, pattern, policy)?;
        Ok(vec![self.epoch()])
    }

    fn serve_into(&self, view: &str, bound: &[Value], sink: &mut dyn AnswerSink) -> Result<usize> {
        let started = std::time::Instant::now();
        let mut count = 0usize;
        let mut counted = cqc_common::FnSink(|t: &[Value]| {
            count += 1;
            sink.push(t)
        });
        self.with_view_enumerator(view, |enumerator| {
            enumerator.answer_into(bound, &mut counted)
        })??;
        // Feed the admission controller's cost estimate from the serves
        // that actually happen (early-stopped streams included — the
        // wall time a caller paid is the wall time the estimate needs).
        self.record_serve_cost(view, started.elapsed().as_nanos() as u64);
        Ok(count)
    }

    fn apply_update(&self, delta: &Delta) -> Result<Vec<Epoch>> {
        Ok(vec![Engine::update(self, delta)?.epoch])
    }

    fn version(&self) -> Vec<Epoch> {
        vec![self.epoch()]
    }

    fn serve_cost_ns(&self, view: &str) -> Option<u64> {
        Engine::serve_cost_ns(self, view)
    }
}

impl BlockService for ShardedEngine {
    fn register_view(
        &self,
        name: &str,
        query_text: &str,
        pattern: &str,
        strategy: &str,
    ) -> Result<Vec<Epoch>> {
        let policy = Policy::parse(strategy)?;
        self.register_text(name, query_text, pattern, policy)?;
        Ok(ShardedEngine::version(self))
    }

    fn serve_into(
        &self,
        view: &str,
        bound: &[Value],
        mut sink: &mut dyn AnswerSink,
    ) -> Result<usize> {
        // One-request fan-out: per-shard blocks, then the k-way merge
        // restores the global order before anything reaches the sink.
        let mut scratch = crate::sharded::ShardedBlocks::new();
        let bounds = [bound.to_vec()];
        self.serve_blocks_into(view, &bounds, &mut scratch)?;
        let refs: Vec<&AnswerBlock> = scratch.request_blocks(0).collect();
        Ok(BlockMerger::new().merge_into(&refs, &mut sink))
    }

    fn apply_update(&self, delta: &Delta) -> Result<Vec<Epoch>> {
        Ok(ShardedEngine::update(self, delta)?.epochs)
    }

    fn version(&self) -> Vec<Epoch> {
        ShardedEngine::version(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sharded::{spec_for_view, ShardedEngineConfig};
    use cqc_query::parser::parse_adorned;
    use cqc_storage::{Database, Relation};

    fn db() -> Database {
        let pairs = vec![(1, 2), (2, 3), (3, 1), (1, 3), (2, 1)];
        let mut db = Database::new();
        for name in ["R", "S", "T"] {
            db.add(Relation::from_pairs(name, pairs.clone())).unwrap();
        }
        db
    }

    const QUERY: &str = "V(x,y,z) :- R(x,y), S(y,z), T(z,x)";

    fn sharded(shards: usize) -> ShardedEngine {
        let view = parse_adorned(QUERY, "bff").unwrap();
        let spec = spec_for_view(&view, &db());
        ShardedEngine::new(
            db(),
            spec,
            ShardedEngineConfig {
                shards,
                ..ShardedEngineConfig::default()
            },
        )
        .unwrap()
    }

    fn collect(svc: &dyn BlockService, view: &str, bound: &[Value]) -> Vec<Vec<Value>> {
        let mut block = AnswerBlock::new();
        svc.serve_into(view, bound, &mut block).unwrap();
        block.to_tuples()
    }

    #[test]
    fn engine_and_sharded_engine_serve_identically() {
        let local = Engine::new(db());
        let sharded = sharded(3);
        let l: &dyn BlockService = &local;
        let s: &dyn BlockService = &sharded;
        assert_eq!(
            l.register_view("tri", QUERY, "bff", "auto").unwrap().len(),
            1
        );
        assert_eq!(
            s.register_view("tri", QUERY, "bff", "auto").unwrap().len(),
            3
        );
        for v in 0..4u64 {
            assert_eq!(collect(l, "tri", &[v]), collect(s, "tri", &[v]));
        }
        // Early stop propagates through the trait object.
        let mut probe = cqc_common::ExistsSink::default();
        let n = s.serve_into("tri", &[1], &mut probe).unwrap();
        assert!(probe.found);
        assert_eq!(n, 1);
    }

    #[test]
    fn updates_advance_version_vectors_in_lockstep() {
        let local = Engine::new(db());
        let sharded = sharded(2);
        let l: &dyn BlockService = &local;
        let s: &dyn BlockService = &sharded;
        l.register_view("tri", QUERY, "bff", "tau:2").unwrap();
        s.register_view("tri", QUERY, "bff", "tau:2").unwrap();
        let mut delta = Delta::new();
        delta.insert("R", vec![3, 3]);
        let lv = l.apply_update(&delta).unwrap();
        let sv = s.apply_update(&delta).unwrap();
        assert_eq!(lv, l.version());
        assert_eq!(sv, s.version());
        assert_eq!(collect(l, "tri", &[3]), collect(s, "tri", &[3]));
    }

    #[test]
    fn preconditioned_update_applies_once_and_only_once() {
        let local = Engine::new(db());
        let svc: &dyn BlockService = &local;
        svc.register_view("tri", QUERY, "bff", "tau:2").unwrap();
        let before = svc.version();
        let mut delta = Delta::new();
        delta.insert("R", vec![3, 3]);
        let after = svc
            .apply_update_preconditioned(&delta, Some(&before))
            .unwrap();
        assert_ne!(after, before);
        // A blind retry of the same delta (the ambiguous-Io scenario) is
        // rejected instead of double-applied…
        let err = svc
            .apply_update_preconditioned(&delta, Some(&before))
            .unwrap_err();
        assert!(
            matches!(
                err,
                cqc_common::CqcError::Protocol {
                    code: cqc_common::frame::code::EPOCH_MISMATCH,
                    ..
                }
            ),
            "{err}"
        );
        assert_eq!(svc.version(), after, "rejected retry must not apply");
        // …and `None` keeps the unconditioned behavior.
        let mut delta2 = Delta::new();
        delta2.insert("R", vec![4, 4]);
        assert_ne!(
            svc.apply_update_preconditioned(&delta2, None).unwrap(),
            after
        );
    }

    #[test]
    fn serve_cost_tracks_measured_serves() {
        let local = Engine::new(db());
        let svc: &dyn BlockService = &local;
        svc.register_view("tri", QUERY, "bff", "tau:2").unwrap();
        assert_eq!(
            svc.serve_cost_ns("tri"),
            None,
            "unknown before the first measured serve"
        );
        let mut block = AnswerBlock::new();
        svc.serve_into("tri", &[1], &mut block).unwrap();
        let first = svc.serve_cost_ns("tri").expect("cost after one serve");
        assert!(first > 0, "a measured serve has nonzero wall time");
        // Further serves fold in as an EWMA: the estimate stays a
        // plausible per-serve cost, not a running total.
        for v in 0..8u64 {
            block.reset();
            svc.serve_into("tri", &[v], &mut block).unwrap();
        }
        let settled = svc.serve_cost_ns("tri").unwrap();
        assert!(
            settled < first.saturating_mul(1000),
            "EWMA must not accumulate: {first} -> {settled}"
        );
        // Direct EWMA arithmetic: constant samples converge to the
        // sample; the first sample seeds exactly.
        local.record_serve_cost("x", 1000);
        assert_eq!(local.serve_cost_ns("x"), Some(1000));
        for _ in 0..64 {
            local.record_serve_cost("x", 2000);
        }
        let x = local.serve_cost_ns("x").unwrap();
        assert!((1900..=2000).contains(&x), "converge toward samples: {x}");
        // Views the service does not track stay unknown.
        assert_eq!(svc.serve_cost_ns("ghost"), None);
    }

    #[test]
    fn bad_strategy_token_is_a_config_error() {
        let local = Engine::new(db());
        let err = (&local as &dyn BlockService)
            .register_view("v", QUERY, "bff", "nonsense")
            .unwrap_err();
        assert!(matches!(err, cqc_common::CqcError::Config(_)), "{err}");
    }
}
