//! The [`ShardedEngine`]: one engine spanning cores over hash-partitioned
//! relations.
//!
//! The paper's structures compose over disjoint sub-instances — a
//! compressed representation built per shard answers its shard's output
//! with the same delay guarantees, exactly as factorized/cover
//! representations decompose over disjoint sub-databases. A
//! [`ShardedEngine`] exploits that: a [`PartitionSpec`] hash-partitions
//! each relation's rows on the column of one shared **partition variable**
//! (relations that cannot carry it are replicated), producing `S` disjoint
//! sub-databases, each owned by a full [`Engine`] with its own
//! representation catalog and budget slice.
//!
//! * **Parallel build** — [`ShardedEngine::register`] builds the `S`
//!   per-shard representations concurrently under `std::thread::scope`;
//!   each shard's build is over `~|D|/S` rows.
//! * **Multicore serve** — [`ShardedEngine::serve`] /
//!   [`ShardedEngine::serve_batch`] / [`ShardedEngine::serve_stream`] fan a
//!   request out across shards; every shard pushes into its own flat
//!   [`AnswerBlock`] (the PR 3 sink machinery, still zero allocations per
//!   answer per shard once warm) and a final `k`-way [`BlockMerger`]
//!   restores the paper's lexicographic enumeration order.
//! * **Per-shard epochs** — a [`Delta`] splits into per-shard deltas that
//!   touch only the shards owning their rows; untouched shards keep their
//!   epoch, so their catalog entries stay valid independently. The global
//!   database version is [`ShardedEngine::version`], the vector of shard
//!   epochs (extending the PR 2 versioning).
//!
//! **Correctness.** Every answer valuation ν assigns the partition variable
//! one value, and all hash-partitioned relations store their ν-matching
//! rows in the single shard `hash(ν(v)) % S` (replicated relations are
//! everywhere), so ν is witnessed in exactly one shard: the per-shard
//! answer sets are disjoint and their union is the full answer set. A view
//! none of whose relations are hash-partitioned would be answered in full
//! by *every* shard; such views are routed to shard 0 alone instead.

use crate::engine::{Engine, EngineConfig, RecoveryStats, Request, Served, UpdateReport};
use crate::policy::{select, Policy};
use cqc_bench::DelayStats;
use cqc_common::error::{CqcError, Result};
use cqc_common::value::{Tuple, Value};
use cqc_common::{AnswerBlock, BlockMerger, FastMap};
use cqc_durable::DurableStore;
use cqc_query::parser::parse_adorned;
use cqc_query::{AdornedView, Var};
use cqc_storage::{Database, Delta, Epoch, PartitionSpec, Partitioning, Relation, ShardAssignment};
use std::path::Path;
use std::sync::{Arc, RwLock};

/// The subdirectory of a sharded data directory holding shard `s`'s
/// durable state (zero-padded so directory listings sort by shard).
fn shard_dir(dir: &Path, s: usize) -> std::path::PathBuf {
    dir.join(format!("shard-{s:03}"))
}

/// Tuning for a [`ShardedEngine`].
#[derive(Debug, Clone, Copy)]
pub struct ShardedEngineConfig {
    /// Number of shards (≥ 1). Each shard runs on its own OS thread during
    /// parallel build and fan-out serving.
    pub shards: usize,
    /// Per-engine tuning; the catalog budget is divided evenly across
    /// shards (each shard's catalog gets a `1/S` slice).
    pub engine: EngineConfig,
}

impl Default for ShardedEngineConfig {
    fn default() -> ShardedEngineConfig {
        ShardedEngineConfig {
            shards: std::thread::available_parallelism().map_or(4, usize::from),
            engine: EngineConfig::default(),
        }
    }
}

/// Scratch for shard-major block serving: `blocks[shard][request]`, reused
/// across calls so the steady state allocates nothing per answer.
#[derive(Debug, Default)]
pub struct ShardedBlocks {
    blocks: Vec<Vec<AnswerBlock>>,
}

impl ShardedBlocks {
    /// Empty scratch; capacity grows to the high-water mark of use.
    pub fn new() -> ShardedBlocks {
        ShardedBlocks::default()
    }

    /// The per-shard blocks of request `i` (one block per shard).
    pub fn request_blocks(&self, i: usize) -> impl Iterator<Item = &AnswerBlock> + '_ {
        self.blocks.iter().map(move |shard| &shard[i])
    }

    /// Total answers across all shards and requests.
    pub fn total_answers(&self) -> usize {
        self.blocks
            .iter()
            .flat_map(|shard| shard.iter().map(AnswerBlock::len))
            .sum()
    }

    fn ensure_shape(&mut self, shards: usize, requests: usize) {
        self.blocks.resize_with(shards, Vec::new);
        for shard in &mut self.blocks {
            shard.resize_with(requests, AnswerBlock::new);
            for b in shard.iter_mut() {
                b.reset(); // keep capacity, unlock arity for a new view
            }
        }
    }
}

/// One steady-state measurement of the shard-major serve loop (see
/// [`ShardedEngine::measure_steady_state`]).
#[derive(Debug, Clone, Copy)]
pub struct SteadyMeasurement {
    /// Total answers across shards and requests in the measured pass.
    pub answers: usize,
    /// Wall time of the measured pass (barrier release to last shard done).
    pub wall_ns: u64,
    /// Heap allocation events observed during the measured pass (0 in
    /// steady state; only meaningful under the counting global allocator).
    pub alloc_events: u64,
}

/// What one [`ShardedEngine::update`] did, per shard and in aggregate.
#[derive(Debug, Clone, Default)]
pub struct ShardedUpdateReport {
    /// The post-delta epoch vector (the global database version).
    pub epochs: Vec<Epoch>,
    /// Shards whose sub-delta was non-empty (the only ones doing work).
    pub shards_touched: usize,
    /// Aggregate catalog reconciliation counts across touched shards.
    pub maintained: usize,
    /// Entries rebuilt across touched shards.
    pub rebuilt: usize,
    /// Entries restamped across touched shards.
    pub restamped: usize,
}

/// A register-once / serve-many engine whose database is hash-partitioned
/// across `S` single-core [`Engine`]s. See the module docs for the
/// partitioning invariant and the serve/merge pipeline.
pub struct ShardedEngine {
    partitioning: Partitioning,
    engines: Vec<Engine>,
    /// `true` → the view fans out to every shard; `false` → all of its
    /// relations are replicated and shard 0 alone serves it.
    fanout: RwLock<FastMap<String, bool>>,
    /// The unsplit database, kept as the **planning snapshot**: strategy
    /// selection runs once against global statistics (exactly what an
    /// unsharded engine would see) and the resolved plan ships to every
    /// shard. Replicated relations share their `Arc`s with the shards, so
    /// the extra footprint is only the hash-partitioned relations' rows.
    /// [`ShardedEngine::update`] applies each delta here too
    /// (copy-on-write), keeping planning statistics current.
    planning: RwLock<Arc<Database>>,
}

impl ShardedEngine {
    /// Partitions `db` under `spec` and builds one engine per shard. The
    /// catalog budget of `config.engine` is divided evenly across shards.
    ///
    /// # Errors
    ///
    /// Invalid shard counts and out-of-range hash columns.
    pub fn new(
        db: Database,
        spec: PartitionSpec,
        config: ShardedEngineConfig,
    ) -> Result<ShardedEngine> {
        let shards = config.shards.max(1);
        let partitioning = Partitioning::new(spec, shards)?;
        let sub_dbs = partitioning.split_database(&db)?;
        let mut engine_config = config.engine;
        engine_config.catalog_budget_bytes = (engine_config.catalog_budget_bytes / shards).max(1);
        let engines = sub_dbs
            .into_iter()
            .map(|d| Engine::with_config(d, engine_config))
            .collect();
        Ok(ShardedEngine {
            partitioning,
            engines,
            fanout: RwLock::new(FastMap::default()),
            planning: RwLock::new(Arc::new(db)),
        })
    }

    /// [`ShardedEngine::new`] with the spec derived from `view` by
    /// [`spec_for_view`].
    ///
    /// # Errors
    ///
    /// Same failure modes as [`ShardedEngine::new`].
    pub fn for_view(
        db: Database,
        view: &AdornedView,
        config: ShardedEngineConfig,
    ) -> Result<ShardedEngine> {
        let spec = spec_for_view(view, &db);
        ShardedEngine::new(db, spec, config)
    }

    /// Warm start: recovers a sharded engine from a durable data directory
    /// written by [`ShardedEngine::attach_durable`] /
    /// [`ShardedEngine::checkpoint`]. Each shard lives in its own
    /// `shard-<s>` subdirectory and recovers independently (snapshot plus
    /// WAL replay), so the engine rejoins at its exact pre-crash epoch
    /// *vector* — shards that were ahead stay ahead. The planning snapshot
    /// is rebuilt by merging the recovered shards (hash-partitioned rows
    /// union disjointly; replicated copies dedup back to one), and `spec`
    /// must be the same partition spec the directory was written under —
    /// the spec itself is not persisted, exactly as view definitions are
    /// not: the serving script re-supplies both.
    ///
    /// # Errors
    ///
    /// [`CqcError::Io`] when `dir` holds no shard state, plus every
    /// per-shard [`Engine::open`] failure mode.
    pub fn open(
        dir: impl AsRef<Path>,
        spec: PartitionSpec,
        config: ShardedEngineConfig,
    ) -> Result<ShardedEngine> {
        let dir = dir.as_ref();
        let mut shards = 0;
        while DurableStore::exists(&shard_dir(dir, shards)) {
            shards += 1;
        }
        if shards == 0 {
            return Err(CqcError::Io(format!(
                "{}: no shard-* durable state to recover",
                dir.display()
            )));
        }
        let partitioning = Partitioning::new(spec, shards)?;
        let mut engine_config = config.engine;
        engine_config.catalog_budget_bytes = (engine_config.catalog_budget_bytes / shards).max(1);
        let engines: Vec<Engine> = (0..shards)
            .map(|s| Engine::open_with_config(shard_dir(dir, s), engine_config))
            .collect::<Result<Vec<_>>>()?;
        // Rebuild the planning snapshot from the recovered shards. Every
        // shard holds every relation (hashed ones hold their partition,
        // replicated ones a full copy), so concatenating per relation and
        // letting `from_flat` sort-dedup reconstructs the global database.
        let dbs: Vec<Arc<Database>> = engines.iter().map(Engine::db).collect();
        let mut planning = Database::new();
        if let Some(first) = dbs.first() {
            for rel in first.relations() {
                let mut flat = Vec::new();
                for db in &dbs {
                    let shard_rel = db.get(rel.name()).ok_or_else(|| {
                        CqcError::Io(format!(
                            "{}: relation `{}` missing from a recovered shard",
                            dir.display(),
                            rel.name()
                        ))
                    })?;
                    for row in shard_rel.iter() {
                        flat.extend_from_slice(row);
                    }
                }
                planning.add(Relation::from_flat(
                    rel.name().to_string(),
                    rel.arity(),
                    flat,
                ))?;
            }
        }
        planning.restore_epoch(engines.iter().map(Engine::epoch).max().unwrap_or(0));
        Ok(ShardedEngine {
            partitioning,
            engines,
            fanout: RwLock::new(FastMap::default()),
            planning: RwLock::new(Arc::new(planning)),
        })
    }

    /// Attaches a fresh durability layer: each shard gets its own
    /// `shard-<s>` subdirectory of `dir` (created, checkpointed with the
    /// shard's current sub-database, and logged to independently from then
    /// on). Recover with [`ShardedEngine::open`] under the same spec.
    ///
    /// # Errors
    ///
    /// Per-shard [`Engine::attach_durable`] failure modes; a failure
    /// partway leaves earlier shards attached (the directory should be
    /// discarded and the call retried fresh).
    pub fn attach_durable(&mut self, dir: impl AsRef<Path>) -> Result<()> {
        let dir = dir.as_ref();
        for (s, engine) in self.engines.iter_mut().enumerate() {
            engine.attach_durable(shard_dir(dir, s))?;
        }
        Ok(())
    }

    /// Checkpoints every shard's data directory (snapshot + WAL
    /// compaction). Shards checkpoint sequentially; each one quiesces only
    /// its own writers.
    ///
    /// # Errors
    ///
    /// [`CqcError::Config`] when no durability layer is attached; the
    /// first per-shard I/O failure (earlier shards keep their new
    /// checkpoints — every manifest on disk stays individually consistent).
    pub fn checkpoint(&self) -> Result<()> {
        for engine in &self.engines {
            engine.checkpoint()?;
        }
        Ok(())
    }

    /// Per-shard recovery statistics, when this engine came from
    /// [`ShardedEngine::open`] (`None` for a fresh engine).
    pub fn recovery_stats(&self) -> Option<Vec<RecoveryStats>> {
        self.engines.iter().map(Engine::recovery_stats).collect()
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.engines.len()
    }

    /// The engine owning shard `s` (introspection and tests).
    pub fn shard(&self, s: usize) -> &Engine {
        &self.engines[s]
    }

    /// The partitioning in force.
    pub fn partitioning(&self) -> &Partitioning {
        &self.partitioning
    }

    /// The global database version: the vector of shard epochs. A delta
    /// advances exactly the components of the shards owning its rows.
    pub fn version(&self) -> Vec<Epoch> {
        self.engines.iter().map(Engine::epoch).collect()
    }

    /// The planning snapshot: the unsplit database strategy selection runs
    /// against.
    pub fn planning_db(&self) -> Arc<Database> {
        Arc::clone(&self.planning.read().expect("planning lock poisoned"))
    }

    /// Registers an adorned view on every shard, building the `S`
    /// per-shard representations **in parallel** under
    /// `std::thread::scope`. Views whose relations are all replicated are
    /// registered on shard 0 only (every shard would otherwise enumerate
    /// the full answer set — see the module docs).
    ///
    /// Strategy selection is **solved exactly once**, against the planning
    /// snapshot (global statistics — the same data an unsharded engine
    /// would consult), and the resolved plan — concrete LP cover and τ, or
    /// explicit decomposition and δ assignment — ships to all `S` shards.
    /// Each shard then only builds its shard-local indexes and
    /// dictionaries; the LP cover, width search and τ calibration are
    /// never re-run per shard. (The previous behavior, each shard solving
    /// its own selection, survives as
    /// [`ShardedEngine::register_planning_per_shard`] — the benchmark and
    /// equivalence-test baseline.)
    ///
    /// # Errors
    ///
    /// [`CqcError::Config`] when the view cannot be served under the
    /// engine's partitioning (a hash-partitioned relation's hash column is
    /// not pinned to one shared variable by the view); selection failures;
    /// any shard's build failure (all shards are rolled back).
    pub fn register(&self, name: &str, view: AdornedView, policy: Policy) -> Result<()> {
        // Fail duplicates before paying for the selection solve (a racing
        // register slipping past this pre-check is still caught by the
        // name reservation in `register_shards`).
        if self
            .fanout
            .read()
            .expect("fanout lock poisoned")
            .contains_key(name)
        {
            return Err(CqcError::Config(format!(
                "view `{name}` is already registered"
            )));
        }
        let selection = select(&view, &self.planning_db(), &policy)
            .map_err(|e| e.for_view(name, "auto-selection"))?;
        self.register_shards(name, view, &|engine, view| {
            engine
                .register_selected(name, view, selection.clone())
                .map(|_| ())
        })
    }

    /// [`ShardedEngine::register`] with strategy selection re-solved **on
    /// every shard** against that shard's sub-database — the pre-plan-once
    /// behavior, kept as the comparison baseline for `cqe bench --profile
    /// build` and the shared-plan ≡ per-shard-plan equivalence tests.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`ShardedEngine::register`].
    pub fn register_planning_per_shard(
        &self,
        name: &str,
        view: AdornedView,
        policy: Policy,
    ) -> Result<()> {
        self.register_shards(name, view, &|engine, view| {
            engine.register(name, view, policy.clone()).map(|_| ())
        })
    }

    /// Shared fan-out/rollback skeleton of the two register flavors:
    /// validates routing, reserves the name, runs `register_one` on every
    /// participating shard in parallel, and rolls everything back on any
    /// failure.
    fn register_shards(
        &self,
        name: &str,
        view: AdornedView,
        register_one: &(dyn Fn(&Engine, AdornedView) -> Result<()> + Sync),
    ) -> Result<()> {
        let fans_out = routing_for(self.partitioning.spec(), &view)?;
        {
            // Reserve the name first: a duplicate must fail *here*, before
            // any shard is touched — otherwise the rollback below would
            // tear an existing, working registration out of every shard.
            let mut fanout = self.fanout.write().expect("fanout lock poisoned");
            if fanout.contains_key(name) {
                return Err(CqcError::Config(format!(
                    "view `{name}` is already registered"
                )));
            }
            fanout.insert(name.to_string(), fans_out);
        }
        let result: Result<()> = if fans_out {
            let outcomes: Vec<Result<()>> = std::thread::scope(|scope| {
                let handles: Vec<_> = self
                    .engines
                    .iter()
                    .map(|engine| {
                        let view = view.clone();
                        scope.spawn(move || register_one(engine, view))
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("shard register panicked"))
                    .collect()
            });
            outcomes.into_iter().collect()
        } else {
            register_one(&self.engines[0], view)
        };
        if let Err(e) = result {
            for engine in &self.engines {
                engine.unregister(name);
            }
            self.fanout
                .write()
                .expect("fanout lock poisoned")
                .remove(name);
            return Err(e);
        }
        Ok(())
    }

    /// Parses and registers (CLI front door), mirroring
    /// [`Engine::register_text`].
    ///
    /// # Errors
    ///
    /// Parse failures plus the [`ShardedEngine::register`] failure modes.
    pub fn register_text(
        &self,
        name: &str,
        query_text: &str,
        pattern: &str,
        policy: Policy,
    ) -> Result<()> {
        let view = parse_adorned(query_text, pattern)?;
        self.register(name, view, policy)
    }

    /// Whether `name` is registered, and if so whether it fans out.
    fn routing(&self, name: &str) -> Result<bool> {
        self.fanout
            .read()
            .expect("fanout lock poisoned")
            .get(name)
            .copied()
            .ok_or_else(|| CqcError::UnknownView(name.to_string()))
    }

    /// Serves one request: fans it out across shards, merges the per-shard
    /// blocks back into the lexicographic enumeration order, and folds the
    /// delay measurements (totals are the slowest shard's — the fan-out is
    /// parallel; gap percentiles are per-shard worst cases).
    ///
    /// # Errors
    ///
    /// Unknown view, bound-arity mismatch, or a tagged rebuild failure.
    pub fn serve(&self, request: &Request) -> Result<Served> {
        if !self.routing(&request.view)? {
            return self.engines[0].serve(request);
        }
        let outcomes: Vec<Result<Served>> = std::thread::scope(|scope| {
            let handles: Vec<_> = self
                .engines
                .iter()
                .map(|engine| scope.spawn(move || engine.serve(request)))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("shard serve panicked"))
                .collect()
        });
        let parts = outcomes.into_iter().collect::<Result<Vec<Served>>>()?;
        Ok(merge_served(&parts))
    }

    /// Serves a batch shard-major: one OS thread per shard serves the whole
    /// request list against its sub-database, then the per-request blocks
    /// are `k`-way merged. Request order is preserved. Requests addressed
    /// to shard-0-routed views are answered by shard 0's thread only.
    ///
    /// # Errors
    ///
    /// The first failing request's error (by request order), if any.
    pub fn serve_batch(&self, requests: &[Request]) -> Result<Vec<Served>> {
        // Resolve routing up front so worker threads share one snapshot
        // (and unknown views fail before any thread spawns).
        let fans_out: Vec<bool> = requests
            .iter()
            .map(|r| self.routing(&r.view))
            .collect::<Result<_>>()?;
        let mut per_shard: Vec<Vec<Option<Result<Served>>>> = std::thread::scope(|scope| {
            let fans_out = &fans_out;
            let handles: Vec<_> = self
                .engines
                .iter()
                .enumerate()
                .map(|(si, engine)| {
                    scope.spawn(move || {
                        requests
                            .iter()
                            .zip(fans_out)
                            .map(|(r, &fan)| (fan || si == 0).then(|| engine.serve(r)))
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("shard serve panicked"))
                .collect()
        });
        let mut out = Vec::with_capacity(requests.len());
        let mut parts: Vec<Served> = Vec::with_capacity(self.engines.len());
        for i in 0..requests.len() {
            parts.clear();
            for shard in &mut per_shard {
                if let Some(res) = shard[i].take() {
                    parts.push(res?);
                }
            }
            out.push(merge_served(&parts));
        }
        Ok(out)
    }

    /// Shard-major block serving into reusable scratch — the zero-alloc
    /// steady-state primitive behind [`ShardedEngine::serve_stream`] and
    /// the shard benchmark. Every shard thread resolves its representation
    /// once, then drives its reusable enumerator into
    /// `out.blocks[shard][request]`; once the scratch has warmed to its
    /// high-water mark a repeat call performs **zero** heap allocations per
    /// answer on every shard. Returns the total answer count.
    ///
    /// # Errors
    ///
    /// Unknown view, bound-arity mismatch, or a tagged rebuild failure.
    pub fn serve_blocks_into(
        &self,
        view: &str,
        bounds: &[Vec<Value>],
        out: &mut ShardedBlocks,
    ) -> Result<usize> {
        let fans_out = self.routing(view)?;
        out.ensure_shape(self.engines.len(), bounds.len());
        let outcomes: Vec<Result<()>> = std::thread::scope(|scope| {
            let handles: Vec<_> = self
                .engines
                .iter()
                .zip(out.blocks.iter_mut())
                .enumerate()
                .map(|(si, (engine, blocks))| {
                    scope.spawn(move || -> Result<()> {
                        if !fans_out && si != 0 {
                            return Ok(()); // blocks already reset
                        }
                        engine.with_view_enumerator(view, |enumerator| {
                            for (b, block) in bounds.iter().zip(blocks.iter_mut()) {
                                enumerator.answer_into(b, block)?;
                            }
                            Ok(())
                        })?
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("shard serve panicked"))
                .collect()
        });
        outcomes.into_iter().collect::<Result<()>>()?;
        Ok(out.total_answers())
    }

    /// Measures one steady-state pass of the shard-major serve loop: every
    /// shard thread resolves its enumerator, runs a warm pass (scratch and
    /// blocks reach their high-water marks), then all threads rendezvous on
    /// a barrier so the measured pass is bracketed exactly — the returned
    /// wall time and allocation-event count (from the process's
    /// [`cqc_common::alloc`] counters, meaningful when the counting
    /// allocator is installed) cover only the warm per-shard serve loops,
    /// not thread spawns or scratch growth. This is the instrument behind
    /// `cqe bench --profile shard` and the sharded allocation-discipline
    /// test: in steady state the loops perform **zero** heap allocations
    /// per answer on every shard.
    ///
    /// # Errors
    ///
    /// Unknown view, bound-arity mismatch, or a tagged rebuild failure.
    pub fn measure_steady_state(
        &self,
        view: &str,
        bounds: &[Vec<Value>],
        out: &mut ShardedBlocks,
    ) -> Result<SteadyMeasurement> {
        let fans_out = self.routing(view)?;
        out.ensure_shape(self.engines.len(), bounds.len());
        let active = if fans_out { self.engines.len() } else { 1 };
        // Three rendezvous points: warm passes complete → main snapshots
        // the allocation counters while every shard is parked → measured
        // passes run → all shards done. With a single barrier the snapshot
        // would race the tail of the warm passes (arrival is release) and
        // count their scratch growth.
        let warm_done = std::sync::Barrier::new(active + 1);
        let start_measured = std::sync::Barrier::new(active + 1);
        let measured_done = std::sync::Barrier::new(active + 1);
        let mut wall_ns = 0u64;
        let mut alloc_events = 0u64;
        let outcomes: Vec<Result<()>> = std::thread::scope(|scope| {
            let (warm_done, start_measured, measured_done) =
                (&warm_done, &start_measured, &measured_done);
            let handles: Vec<_> = self
                .engines
                .iter()
                .zip(out.blocks.iter_mut())
                .take(active)
                .map(|(engine, blocks)| {
                    scope.spawn(move || -> Result<()> {
                        let outcome = engine.with_view_enumerator(view, |enumerator| {
                            let mut err: Option<CqcError> = None;
                            let mut pass =
                                |err: &mut Option<CqcError>, blocks: &mut [AnswerBlock]| {
                                    for (b, block) in bounds.iter().zip(blocks.iter_mut()) {
                                        block.clear();
                                        if let Err(e) = enumerator.answer_into(b, block) {
                                            err.get_or_insert(e);
                                            return;
                                        }
                                    }
                                };
                            pass(&mut err, blocks); // warm
                            warm_done.wait();
                            start_measured.wait();
                            pass(&mut err, blocks); // measured
                            measured_done.wait();
                            match err {
                                Some(e) => Err(e),
                                None => Ok(()),
                            }
                        });
                        match outcome {
                            Ok(inner) => inner,
                            Err(e) => {
                                // The closure never ran: keep the barrier
                                // counts aligned so the main thread and the
                                // other shards are not deadlocked.
                                warm_done.wait();
                                start_measured.wait();
                                measured_done.wait();
                                Err(e)
                            }
                        }
                    })
                })
                .collect();
            warm_done.wait(); // every shard warmed and parked
            let before = cqc_common::alloc::snapshot();
            let t0 = std::time::Instant::now();
            start_measured.wait(); // release the measured pass
            measured_done.wait(); // all shards done
            wall_ns = t0.elapsed().as_nanos() as u64;
            alloc_events = cqc_common::alloc::snapshot().allocations_since(&before);
            handles
                .into_iter()
                .map(|h| h.join().expect("shard measure panicked"))
                .collect()
        });
        outcomes.into_iter().collect::<Result<()>>()?;
        Ok(SteadyMeasurement {
            answers: out.total_answers(),
            wall_ns,
            alloc_events,
        })
    }

    /// The sharded steady-state serve loop: serves `bounds` shard-major via
    /// [`ShardedEngine::serve_blocks_into`], then invokes `on_block` once
    /// per request with the `k`-way-merged block (lexicographic enumeration
    /// order, cleared before the next request). Returns the total number of
    /// answers. Scratch is allocated per call; a caller serving many
    /// streams should hold a [`ShardedBlocks`] and use
    /// [`ShardedEngine::serve_stream_with`], which reuses it and reaches
    /// the zero-allocations-per-answer steady state across calls.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`ShardedEngine::serve_blocks_into`].
    pub fn serve_stream(
        &self,
        view: &str,
        bounds: &[Vec<Value>],
        on_block: impl FnMut(usize, &AnswerBlock),
    ) -> Result<usize> {
        self.serve_stream_with(view, bounds, &mut ShardedBlocks::new(), on_block)
    }

    /// [`ShardedEngine::serve_stream`] over caller-owned scratch: the
    /// per-shard blocks (and their capacities) survive between calls, so a
    /// stream served repeatedly through the same [`ShardedBlocks`] settles
    /// into the warm, allocation-free per-shard loops.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`ShardedEngine::serve_blocks_into`].
    pub fn serve_stream_with(
        &self,
        view: &str,
        bounds: &[Vec<Value>],
        scratch: &mut ShardedBlocks,
        mut on_block: impl FnMut(usize, &AnswerBlock),
    ) -> Result<usize> {
        let total = self.serve_blocks_into(view, bounds, scratch)?;
        let mut merged = AnswerBlock::new();
        let mut merger = BlockMerger::new();
        let mut refs: Vec<&AnswerBlock> = Vec::with_capacity(self.engines.len());
        for i in 0..bounds.len() {
            merged.reset();
            refs.clear();
            refs.extend(scratch.request_blocks(i));
            merger.merge_into(&refs, &mut merged);
            on_block(i, &merged);
        }
        Ok(total)
    }

    /// Answers one request into owned tuples, in lexicographic enumeration
    /// order (compatibility/oracle interface, mirroring
    /// [`Engine::answer`]).
    ///
    /// # Errors
    ///
    /// Same failure modes as [`ShardedEngine::serve`].
    pub fn answer(&self, view: &str, bound: &[Value]) -> Result<Vec<Tuple>> {
        let served = self.serve(&Request {
            view: view.to_string(),
            bound: bound.to_vec(),
        })?;
        Ok(served.to_tuples())
    }

    /// `true` iff the request has at least one answer. Probes shards
    /// sequentially with first-answer short-circuiting — existence needs
    /// one witness, not a fan-out.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`ShardedEngine::serve`].
    pub fn exists(&self, view: &str, bound: &[Value]) -> Result<bool> {
        let fans_out = self.routing(view)?;
        let shards = if fans_out { self.engines.len() } else { 1 };
        for engine in &self.engines[..shards] {
            if engine.exists(view, bound)? {
                return Ok(true);
            }
        }
        Ok(false)
    }

    /// Applies a batched delta: the delta splits into per-shard deltas that
    /// touch only the shards owning their rows, and the touched shards
    /// update **in parallel** (each reconciling its own catalog —
    /// maintain/rebuild/restamp — before publishing its shard epoch).
    /// Untouched shards keep epoch and catalog untouched, which is the
    /// point of per-shard versioning.
    ///
    /// # Errors
    ///
    /// Routing failures (out-of-range hash column) before anything is
    /// applied; the first shard error afterwards (other shards still
    /// complete their updates).
    pub fn update(&self, delta: &Delta) -> Result<ShardedUpdateReport> {
        let split = self.partitioning.split_delta(delta)?;
        {
            // Keep the planning snapshot current so later registrations
            // select against fresh statistics. Copy-on-write: only the
            // relations the delta touches are cloned. A schema error here
            // aborts before any shard is touched (shards would hit the
            // same validation).
            let mut planning = self.planning.write().expect("planning lock poisoned");
            let mut next = (**planning).clone();
            next.apply(delta)?;
            *planning = Arc::new(next);
        }
        let outcomes: Vec<Option<Result<UpdateReport>>> = std::thread::scope(|scope| {
            let handles: Vec<_> = self
                .engines
                .iter()
                .zip(&split)
                .map(|(engine, d)| scope.spawn(move || (!d.is_empty()).then(|| engine.update(d))))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("shard update panicked"))
                .collect()
        });
        let mut report = ShardedUpdateReport::default();
        let mut first_error = None;
        for outcome in outcomes {
            let Some(outcome) = outcome else { continue };
            report.shards_touched += 1;
            match outcome {
                Ok(r) => {
                    report.maintained += r.maintained;
                    report.rebuilt += r.rebuilt;
                    report.restamped += r.restamped;
                }
                Err(e) => {
                    first_error.get_or_insert(e);
                }
            }
        }
        report.epochs = self.version();
        match first_error {
            Some(e) => Err(e),
            None => Ok(report),
        }
    }

    /// Aggregate catalog counters across all shards.
    pub fn catalog_stats(&self) -> crate::catalog::CatalogStats {
        let mut total = crate::catalog::CatalogStats::default();
        for engine in &self.engines {
            let s = engine.catalog_stats();
            total.hits += s.hits;
            total.misses += s.misses;
            total.builds += s.builds;
            total.maintained += s.maintained;
            total.evictions += s.evictions;
            total.invalidations += s.invalidations;
            total.admission_rejected += s.admission_rejected;
            total.entries += s.entries;
            total.resident_bytes += s.resident_bytes;
            total.budget_bytes += s.budget_bytes;
        }
        total
    }
}

impl std::fmt::Debug for ShardedEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedEngine")
            .field("shards", &self.engines.len())
            .field("version", &self.version())
            .field("hashed_relations", &self.partitioning.spec().num_hashed())
            .finish()
    }
}

/// Folds per-shard [`Served`]s into one: blocks are `k`-way merged back
/// into lexicographic order; totals take the slowest shard (the fan-out is
/// parallel) and gap statistics the per-shard worst case.
fn merge_served(parts: &[Served]) -> Served {
    let refs: Vec<&AnswerBlock> = parts.iter().map(|s| &s.block).collect();
    let mut block = AnswerBlock::new();
    BlockMerger::new().merge_into(&refs, &mut block);
    let mut delay = DelayStats::default();
    for p in parts {
        let d = &p.delay;
        delay.tuples += d.tuples;
        delay.total_ns = delay.total_ns.max(d.total_ns);
        delay.max_ns = delay.max_ns.max(d.max_ns);
        delay.p50_ns = delay.p50_ns.max(d.p50_ns);
        delay.p99_ns = delay.p99_ns.max(d.p99_ns);
        delay.first_ns = if delay.first_ns == 0 {
            d.first_ns
        } else {
            delay.first_ns.min(d.first_ns)
        };
        delay.work.trie_seeks += d.work.trie_seeks;
        delay.work.count_probes += d.work.count_probes;
        delay.work.dict_lookups += d.work.dict_lookups;
        delay.work.tuples_output += d.work.tuples_output;
    }
    Served { block, delay }
}

/// Derives the partitioning for `view`: every head variable is scored by
/// the number of tuples that would have to be **replicated** — the rows of
/// relations that cannot be hash-partitioned on that variable (an atom
/// missing the variable, a non-natural atom, or two atoms over one
/// relation pinning the variable to different columns). The variable with
/// the least replication wins; bound-head variables win ties (requests then
/// route their work to the owning shard, the ISSUE's bound-prefix
/// preference), then head order. A view that admits no partitioning at all
/// yields the all-replicate spec, which the engine serves from shard 0.
pub fn spec_for_view(view: &AdornedView, db: &Database) -> PartitionSpec {
    let query = view.query();
    // Candidates in preference order: bound head variables first.
    let mut candidates: Vec<Var> = view.bound_head();
    candidates.extend(view.free_head());

    let mut best: Option<(usize, PartitionSpec)> = None; // (replicated tuples, spec)
    for &v in &candidates {
        // relation → Some(col) when partitionable on v, None when forced
        // to replicate: an atom must be natural and contain v, and every
        // atom over the relation must pin v to the same column.
        let mut assignment: FastMap<&str, Option<usize>> = FastMap::default();
        for atom in &query.atoms {
            let pinned = if atom.is_natural() {
                atom.position_of(v)
            } else {
                None
            };
            assignment
                .entry(atom.relation.as_str())
                .and_modify(|slot| {
                    if *slot != pinned {
                        *slot = None; // inconsistent across atoms → replicate
                    }
                })
                .or_insert(pinned);
        }
        if assignment.values().all(Option::is_none) {
            continue; // v partitions nothing
        }
        let replicated: usize = assignment
            .iter()
            .filter(|(_, col)| col.is_none())
            .map(|(name, _)| db.get(name).map_or(0, |r| r.len()))
            .sum();
        // Candidates are iterated in preference order (bound variables
        // first), so a strict improvement is the only way to displace the
        // incumbent — ties keep the earlier, more-preferred variable.
        let better = best.as_ref().map_or(true, |(r, _)| replicated < *r);
        if better {
            let mut spec = PartitionSpec::new();
            for (name, col) in &assignment {
                spec = match col {
                    Some(c) => spec.hash(name, *c),
                    None => spec.replicate(name),
                };
            }
            best = Some((replicated, spec));
        }
    }
    best.map_or_else(PartitionSpec::new, |(_, spec)| spec)
}

/// Validates `view` against `spec` and decides its routing: `Ok(true)` when
/// the view fans out across shards (at least one of its relations is
/// hash-partitioned, with every hash column pinned to one shared variable
/// by the view — the condition that makes per-shard answers disjoint and
/// complete), `Ok(false)` when all of its relations are replicated (shard 0
/// serves it alone).
///
/// # Errors
///
/// [`CqcError::Config`] when a hash-partitioned relation is used in a way
/// that breaks the invariant: a non-natural atom over it, a hash column out
/// of range, or two hashed atoms disagreeing on the partition variable.
pub fn view_fans_out(spec: &PartitionSpec, view: &AdornedView) -> Result<bool> {
    routing_for(spec, view)
}

fn routing_for(spec: &PartitionSpec, view: &AdornedView) -> Result<bool> {
    let mut partition_var: Option<Var> = None;
    for atom in &view.query().atoms {
        let ShardAssignment::Hash(col) = spec.assignment(&atom.relation) else {
            continue;
        };
        if !atom.is_natural() {
            return Err(CqcError::Config(format!(
                "view cannot be served sharded: relation `{}` is hash-partitioned but \
                 `{atom}` is not a natural-join atom",
                atom.relation
            )));
        }
        let Some(cqc_query::atom::Term::Var(v)) = atom.terms.get(col) else {
            return Err(CqcError::Config(format!(
                "view cannot be served sharded: relation `{}` hashes on column {col}, \
                 which is out of range for `{atom}`",
                atom.relation
            )));
        };
        match partition_var {
            None => partition_var = Some(*v),
            Some(p) if p == *v => {}
            Some(p) => {
                return Err(CqcError::Config(format!(
                    "view cannot be served sharded: hash columns disagree on the \
                     partition variable ({} vs {} in `{atom}`)",
                    view.query().var_name(p),
                    view.query().var_name(*v),
                )));
            }
        }
    }
    Ok(partition_var.is_some())
}
