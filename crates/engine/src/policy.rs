//! Auto strategy selection.
//!
//! Given an adorned view and a database, [`select`] resolves a [`Policy`]
//! into a concrete [`Strategy`] by consulting the width machinery
//! (`cqc_decomp::width` via the decomposition search), the §6 LP optimizers
//! (`cqc_lp::fractional`) and the concrete `T(·)` cost oracle
//! (`cqc_core::cost`):
//!
//! * all head variables bound → Proposition 1 membership structure;
//! * the connex fractional hypertree width fits the space budget → the
//!   factorized representation (Props. 2/4): constant delay, done;
//! * otherwise the two delay-tuned candidates are compared on their
//!   *predicted delay exponents* — MinDelayCover's `log τ / log |D|` for
//!   Theorem 1 against the δ-height of the best budgeted decomposition for
//!   Theorem 2 — and the smaller one wins, with the Theorem 1 candidate's
//!   concrete dictionary load `(T(I)/τ)^α` (Prop. 7, priced by the cost
//!   oracle) used as a sanity veto when the asymptotic prediction hides a
//!   blowup on the actual instance.

use cqc_common::error::Result;
use cqc_core::cost::CostEstimator;
use cqc_core::fbox::FInterval;
use cqc_core::Strategy;
use cqc_decomp::{search_connex, Objective};
use cqc_lp::fractional::min_delay_cover;
use cqc_query::rewrite::rewrite_view;
use cqc_query::AdornedView;
use cqc_storage::{Database, IndexPool};
use std::sync::atomic::{AtomicU64, Ordering};

/// Process-wide count of full auto-selection solves (LP cover + width
/// search + cost-oracle veto). Bumped once per [`select`] call that
/// resolves an [`Policy::Auto`]; `Fixed` passthroughs don't count. The
/// sharded engine's plan-once registration is gated on this in tests: for
/// `S` shards one register must add exactly 1, not `S`.
static SELECTION_SOLVES: AtomicU64 = AtomicU64::new(0);

/// Reads the cumulative auto-selection solve counter.
pub fn selection_solves() -> u64 {
    SELECTION_SOLVES.load(Ordering::Relaxed)
}

/// How the engine should compress a registered view.
#[derive(Debug, Clone)]
pub enum Policy {
    /// Let the engine pick, optionally under a space budget exponent
    /// (`|D|^budget`). Without a budget the engine targets linear space.
    Auto {
        /// Optional space budget as an exponent of `|D|`.
        space_budget_exp: Option<f64>,
    },
    /// Use exactly this strategy.
    Fixed(Strategy),
}

impl Default for Policy {
    fn default() -> Policy {
        Policy::Auto {
            space_budget_exp: None,
        }
    }
}

impl Policy {
    /// Parses a compact strategy token — the grammar the `cqe` CLI and the
    /// wire protocol share, so a policy is expressible as a short string on
    /// both ends: `auto`, `auto:<budget>`, `materialize`, `direct`,
    /// `factorized`, `tau:<t>`, `budget:<b>`, `decomposed:<b>`.
    ///
    /// # Errors
    ///
    /// [`cqc_common::CqcError::Config`] on an unknown token or a bad
    /// numeric parameter.
    pub fn parse(token: &str) -> Result<Policy> {
        use cqc_common::CqcError;
        let (kind, param) = match token.split_once(':') {
            Some((k, p)) => (k, Some(p)),
            None => (token, None),
        };
        let num = |p: Option<&str>| -> Result<f64> {
            p.ok_or_else(|| {
                CqcError::Config(format!("strategy `{kind}` needs a numeric parameter"))
            })?
            .parse::<f64>()
            .map_err(|_| CqcError::Config(format!("bad numeric parameter in `{token}`")))
        };
        match kind {
            "auto" => Ok(Policy::Auto {
                space_budget_exp: param.map(|p| num(Some(p))).transpose()?,
            }),
            "materialize" => Ok(Policy::Fixed(Strategy::Materialize)),
            "direct" => Ok(Policy::Fixed(Strategy::Direct)),
            "factorized" => Ok(Policy::Fixed(Strategy::Factorized)),
            "tau" => Ok(Policy::Fixed(Strategy::Tradeoff {
                tau: num(param)?,
                weights: None,
            })),
            "budget" => Ok(Policy::Fixed(Strategy::TradeoffBudget {
                space_budget_exp: num(param)?,
            })),
            "decomposed" => Ok(Policy::Fixed(Strategy::Decomposed {
                space_budget_exp: num(param)?,
            })),
            other => Err(CqcError::Config(format!(
                "unknown strategy `{other}` (try: auto, auto:<b>, materialize, direct, \
                 factorized, tau:<t>, budget:<b>, decomposed:<b>)"
            ))),
        }
    }
}

/// The outcome of strategy selection.
#[derive(Debug, Clone)]
pub struct Selection {
    /// The concrete strategy to build with.
    pub strategy: Strategy,
    /// Canonical tag for catalog keying (same view + same tag ⇒ shareable).
    pub tag: String,
    /// Human-readable account of why this strategy was chosen.
    pub reason: String,
}

/// A canonical, deterministic tag for a strategy (used in catalog keys and
/// error messages). Numeric knobs use `f64`'s shortest-roundtrip display,
/// so strategies differing in any parameter — however slightly — never
/// collide into one catalog key.
pub fn strategy_tag(strategy: &Strategy) -> String {
    let nums = |xs: &[f64]| xs.iter().map(f64::to_string).collect::<Vec<_>>().join(",");
    match strategy {
        Strategy::Auto {
            space_budget_exp: None,
        } => "auto".into(),
        Strategy::Auto {
            space_budget_exp: Some(b),
        } => format!("auto budget={b}"),
        Strategy::Materialize => "materialize".into(),
        Strategy::Direct => "direct".into(),
        Strategy::Tradeoff { tau, weights } => match weights {
            None => format!("theorem-1 τ={tau}"),
            Some(w) => format!("theorem-1 τ={tau} u=[{}]", nums(w)),
        },
        Strategy::TradeoffBudget { space_budget_exp } => {
            format!("theorem-1 budget={space_budget_exp}")
        }
        Strategy::Decomposed { space_budget_exp } => {
            format!("theorem-2 budget={space_budget_exp}")
        }
        Strategy::DecomposedExplicit { td, delta } => {
            format!("theorem-2 explicit bags={} δ=[{}]", td.len(), nums(delta))
        }
        Strategy::Factorized => "factorized".into(),
    }
}

const EPS: f64 = 1e-6;

/// Resolves `policy` for `view` over `db`.
///
/// Auto policies are resolved **to a concrete plan**: the winning LP cover
/// (with its τ) or decomposition (with its δ assignment) is embedded in
/// the returned strategy, so building the representation — on this engine,
/// or on every shard of a sharded engine — never re-runs the §6 programs.
/// This is the plan-once contract: one `select` call per registration,
/// however many shards build from it.
///
/// # Errors
///
/// Propagates schema/LP/decomposition failures from the consulted oracles.
pub fn select(view: &AdornedView, db: &Database, policy: &Policy) -> Result<Selection> {
    select_pooled(view, db, policy, &mut IndexPool::new())
}

/// [`select`] drawing the veto cost oracle's indexes from `pool`. The
/// engine passes the same pool to the subsequent build, which — because the
/// Example 3 rewrite shares untouched relations by `Arc` — reuses those
/// indexes instead of re-sorting them.
///
/// # Errors
///
/// Same failure modes as [`select`].
pub fn select_pooled(
    view: &AdornedView,
    db: &Database,
    policy: &Policy,
    pool: &mut IndexPool,
) -> Result<Selection> {
    let budget = match policy {
        Policy::Fixed(s) => {
            return Ok(Selection {
                strategy: s.clone(),
                tag: strategy_tag(s),
                reason: "fixed by caller".into(),
            });
        }
        Policy::Auto { space_budget_exp } => *space_budget_exp,
    };
    SELECTION_SOLVES.fetch_add(1, Ordering::Relaxed);

    if view.mu() == 0 {
        // Prop. 1: membership probes on linear-space indexes; no knob beats
        // that for boolean access patterns.
        return Ok(Selection {
            strategy: Strategy::Auto {
                space_budget_exp: None,
            },
            tag: "bound-only".into(),
            reason: "all head variables bound → Prop. 1 membership structure \
                     (linear space, O(1) per probe)"
                .into(),
        });
    }

    // Analyze the Example 3 rewrite of the view, exactly as
    // `CompressedView::build` will: constants and repeated variables are
    // eliminated, so Auto accepts the same view language as every fixed
    // strategy. The chosen strategy is applied to the *original* view
    // (build re-runs the same deterministic rewrite).
    let rewritten = rewrite_view(view, db)?;
    if rewritten.always_empty {
        return Ok(Selection {
            strategy: Strategy::Auto {
                space_budget_exp: None,
            },
            tag: "always-empty".into(),
            reason: "a ground atom fails on this database → the view is empty \
                     regardless of strategy"
                .into(),
        });
    }
    let view = &rewritten.view;
    let db = &rewritten.database;
    if view.mu() == 0 {
        // The rewrite can absorb free variables (e.g. one repeated with a
        // bound variable): re-check the Prop. 1 case post-rewrite.
        return Ok(Selection {
            strategy: Strategy::Auto {
                space_budget_exp: None,
            },
            tag: "bound-only".into(),
            reason: "all head variables bound after the Example 3 rewrite → \
                     Prop. 1 membership structure"
                .into(),
        });
    }
    let query = view.query();
    query.require_natural_join()?;
    query.check_schema(db)?;
    let h = query.hypergraph();

    // Width consultation: the best connex decomposition ignoring delay.
    let width_search = search_connex(&h, view.bound_vars(), Objective::MinimizeWidth)?;
    let fhw = width_search.score;

    // The space target: the caller's budget, or linear space — the paper's
    // headline regime — when none is given.
    let (target, target_note) = match budget {
        Some(b) => (b, format!("budget |D|^{b:.2}")),
        None => (1.0, "the linear-space target (no budget given)".into()),
    };

    if fhw <= target + EPS {
        // Constant delay fits the budget: nothing can beat it.
        return Ok(Selection {
            strategy: Strategy::Factorized,
            tag: "factorized".into(),
            reason: format!(
                "connex fhw(H|V_b) = {fhw:.2} fits {target_note} → factorized \
                 representation (constant delay)"
            ),
        });
    }

    // Delay-tuned candidates under the budget.
    let n = db.size().max(2) as f64;
    let log_sizes: Vec<f64> = query
        .atoms
        .iter()
        .map(|a| {
            db.require(&a.relation)
                .map(|r| (r.len().max(2) as f64).ln())
        })
        .collect::<Result<_>>()?;

    // Theorem 1: MinDelayCover picks the cover and the smallest τ that fits.
    let t1 = min_delay_cover(&h, view.free_vars(), &log_sizes, target * n.ln());
    // Theorem 2: best decomposition minimizing δ-height under the budget.
    let t2 = search_connex(
        &h,
        view.bound_vars(),
        Objective::MinimizeHeightUnderBudget { budget_exp: target },
    );

    match (t1, t2) {
        (Ok(choice), Ok(decomp)) => {
            let t1_exp = (choice.log_tau / n.ln()).max(0.0);
            let t2_exp = decomp.score.max(0.0);
            // Concrete-instance veto for the Theorem 1 candidate: per
            // Prop. 7 its dictionary stores at most (T(I)/τ)^α entries.
            // The LP reasons about exponents only; the cost oracle prices
            // the actual instance.
            let alpha = choice.alpha.max(1.0);
            let est = CostEstimator::build_pooled(view, db, &choice.weights, alpha, pool)
                .ok()
                .and_then(|cost| {
                    let sizes = cost.sizes();
                    FInterval::full(&sizes).map(|full| {
                        let t_root = cost.t_interval(&full, &sizes);
                        (t_root / choice.log_tau.exp().max(1.0))
                            .max(0.0)
                            .powf(alpha)
                    })
                });
            let t1_blowup = est.is_some_and(|entries| entries > 8.0 * n.powf(target));
            if t1_exp <= t2_exp + EPS && !t1_blowup {
                let est_note = est
                    .map(|e| format!(", ≈{e:.0} dictionary entries predicted"))
                    .unwrap_or_default();
                Ok(Selection {
                    strategy: concrete_tradeoff(&choice),
                    tag: format!("theorem-1 budget={target}"),
                    reason: format!(
                        "fhw(H|V_b) = {fhw:.2} exceeds {target_note}; MinDelayCover delay \
                         |D|^{t1_exp:.2} ≤ δ-height {t2_exp:.2} → theorem-1{est_note} \
                         (cover solved once at selection)"
                    ),
                })
            } else {
                let why = if t1_blowup {
                    "theorem-1 dictionary load vetoed by cost oracle"
                } else {
                    "δ-height wins"
                };
                Ok(Selection {
                    strategy: Strategy::DecomposedExplicit {
                        td: decomp.td,
                        delta: decomp.delta,
                    },
                    tag: format!("theorem-2 budget={target}"),
                    reason: format!(
                        "fhw(H|V_b) = {fhw:.2} exceeds {target_note}; δ-height {t2_exp:.2} vs \
                         theorem-1 delay |D|^{t1_exp:.2} → theorem-2 ({why}; decomposition \
                         solved once at selection)"
                    ),
                })
            }
        }
        (Ok(choice), Err(_)) => {
            let t1_exp = (choice.log_tau / n.ln()).max(0.0);
            Ok(Selection {
                strategy: concrete_tradeoff(&choice),
                tag: format!("theorem-1 budget={target}"),
                reason: format!(
                    "no budgeted decomposition found; MinDelayCover delay |D|^{t1_exp:.2} \
                     under {target_note} → theorem-1 (cover solved once at selection)"
                ),
            })
        }
        (Err(_), Ok(decomp)) => {
            let reason = format!(
                "MinDelayCover infeasible; δ-height {:.2} under {target_note} → theorem-2 \
                 (decomposition solved once at selection)",
                decomp.score
            );
            Ok(Selection {
                strategy: Strategy::DecomposedExplicit {
                    td: decomp.td,
                    delta: decomp.delta,
                },
                tag: format!("theorem-2 budget={target}"),
                reason,
            })
        }
        (Err(e), Err(_)) => Err(e),
    }
}

/// The winning MinDelayCover choice as an explicit Theorem 1 strategy —
/// exactly what `CompressedView::build` would re-derive for
/// `TradeoffBudget` on the same snapshot, but solved once here and carried
/// by the selection instead of re-solved per build (and, for a sharded
/// engine, per shard). The selection keeps the *budget-form* tag: tags are
/// catalog keys, and the concrete weights are ordered by the view's atom
/// order, which aliased registrations permute — the canonical budget tag
/// is what lets aliases keep sharing one entry.
fn concrete_tradeoff(choice: &cqc_lp::fractional::CoverChoice) -> Strategy {
    Strategy::Tradeoff {
        tau: choice.log_tau.exp().max(1.0),
        weights: Some(choice.weights.clone()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqc_storage::Relation;
    use cqc_workload::queries;

    fn triangle_db(rows: usize) -> Database {
        let mut db = Database::new();
        let mut rng = cqc_workload::rng(13);
        for name in ["R", "S", "T"] {
            db.add(cqc_workload::uniform_relation(
                &mut rng,
                name,
                2,
                rows,
                (rows / 4).max(4) as u64,
            ))
            .unwrap();
        }
        db
    }

    #[test]
    fn all_bound_selects_membership() {
        let db = triangle_db(60);
        let view = queries::triangle("bbb").unwrap();
        let sel = select(&view, &db, &Policy::default()).unwrap();
        assert_eq!(sel.tag, "bound-only");
    }

    #[test]
    fn acyclic_view_selects_factorized() {
        // Full enumeration of a path query: fhw = 1 ≤ the linear-space
        // target. (With both endpoints *bound* the connex width jumps to 2
        // — the paper's Example 10 — and selection goes delay-tuned; see
        // `bound_endpoints_path_goes_delay_tuned`.)
        let mut db = Database::new();
        db.add(Relation::from_pairs("R1", vec![(1, 2), (2, 3)]))
            .unwrap();
        db.add(Relation::from_pairs("R2", vec![(2, 3), (3, 4)]))
            .unwrap();
        let view = queries::path(2, "fff").unwrap();
        let sel = select(&view, &db, &Policy::default()).unwrap();
        assert_eq!(sel.tag, "factorized", "{}", sel.reason);
        assert!(sel.reason.contains("fhw"), "{}", sel.reason);
    }

    #[test]
    fn bound_endpoints_path_goes_delay_tuned() {
        // Example 10: P_2^{bfb} has connex fhw 2 > linear space, so auto
        // selection must reach for a delay-tuned structure.
        let mut db = Database::new();
        let mut rng = cqc_workload::rng(29);
        db.add(cqc_workload::uniform_relation(&mut rng, "R1", 2, 80, 20))
            .unwrap();
        db.add(cqc_workload::uniform_relation(&mut rng, "R2", 2, 80, 20))
            .unwrap();
        let view = queries::path(2, "bfb").unwrap();
        let sel = select(&view, &db, &Policy::default()).unwrap();
        assert!(
            sel.tag.starts_with("theorem-"),
            "{} ({})",
            sel.tag,
            sel.reason
        );
    }

    #[test]
    fn generous_budget_admits_factorized_triangle() {
        let db = triangle_db(80);
        let view = queries::triangle("bfb").unwrap();
        let sel = select(
            &view,
            &db,
            &Policy::Auto {
                space_budget_exp: Some(2.0),
            },
        )
        .unwrap();
        // fhw(H | {x, z}) of the triangle is 1 ≤ 2: factorized fits.
        assert_eq!(sel.tag, "factorized", "{}", sel.reason);
    }

    #[test]
    fn tight_budget_on_cyclic_view_goes_delay_tuned() {
        let db = triangle_db(120);
        let view = queries::triangle("fff").unwrap();
        let sel = select(
            &view,
            &db,
            &Policy::Auto {
                space_budget_exp: Some(1.05),
            },
        )
        .unwrap();
        assert!(
            sel.tag.starts_with("theorem-1") || sel.tag.starts_with("theorem-2"),
            "{} ({})",
            sel.tag,
            sel.reason
        );
        // Whatever was chosen must build and answer correctly.
        let cv = cqc_core::CompressedView::build(&view, &db, sel.strategy.clone()).unwrap();
        let got: Vec<_> = cv.answer(&[]).unwrap().collect();
        let expect = cqc_join::naive::evaluate_view(&view, &db, &[]).unwrap();
        let mut sorted = got.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted, expect);
    }

    #[test]
    fn fixed_policy_passes_through() {
        let db = triangle_db(30);
        let view = queries::triangle("bfb").unwrap();
        let sel = select(
            &view,
            &db,
            &Policy::Fixed(Strategy::Tradeoff {
                tau: 2.0,
                weights: None,
            }),
        )
        .unwrap();
        assert_eq!(sel.tag, "theorem-1 τ=2");
        assert_eq!(sel.reason, "fixed by caller");
    }

    #[test]
    fn policy_tokens_parse() {
        assert!(matches!(
            Policy::parse("auto").unwrap(),
            Policy::Auto {
                space_budget_exp: None
            }
        ));
        assert!(matches!(
            Policy::parse("auto:1.5").unwrap(),
            Policy::Auto {
                space_budget_exp: Some(b)
            } if (b - 1.5).abs() < 1e-12
        ));
        assert!(matches!(
            Policy::parse("materialize").unwrap(),
            Policy::Fixed(Strategy::Materialize)
        ));
        assert!(matches!(
            Policy::parse("tau:2").unwrap(),
            Policy::Fixed(Strategy::Tradeoff { tau, weights: None }) if (tau - 2.0).abs() < 1e-12
        ));
        assert!(matches!(
            Policy::parse("decomposed:1.25").unwrap(),
            Policy::Fixed(Strategy::Decomposed { .. })
        ));
        for bad in ["tau", "tau:x", "wat", "budget"] {
            let err = Policy::parse(bad).unwrap_err();
            assert!(
                matches!(err, cqc_common::CqcError::Config(_)),
                "{bad}: {err}"
            );
        }
    }

    #[test]
    fn tags_are_canonical() {
        assert_eq!(
            strategy_tag(&Strategy::TradeoffBudget {
                space_budget_exp: 1.5
            }),
            "theorem-1 budget=1.5"
        );
        assert_eq!(strategy_tag(&Strategy::Factorized), "factorized");
        assert_eq!(
            strategy_tag(&Strategy::Auto {
                space_budget_exp: None
            }),
            "auto"
        );
    }
}
