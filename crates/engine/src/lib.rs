//! `cqc-engine` — the serve-many front door for the `cqc` workspace.
//!
//! The paper's regime (Deep & Koutris, PODS 2018) is *build once, answer
//! many*: a compressed representation of a conjunctive query result is
//! amortized over a stream of access requests `Q^η[v]`. The per-layer
//! machinery lives in `cqc_query` → `cqc_decomp` → `cqc_core` →
//! `cqc_storage`; this crate owns the lifecycle:
//!
//! * [`Engine`] — load relations, register adorned views, serve requests
//!   concurrently (`&self`, `Sync`), and absorb writes:
//!   [`Engine::update`] applies a batched [`cqc_storage::Delta`] against a
//!   copy-on-write database snapshot, bumps the epoch, and reconciles the
//!   catalog (delta maintenance for Theorem 1 entries, eager rebuild or
//!   epoch restamp for the rest);
//! * [`Catalog`] — a concurrent, memory-budgeted representation cache
//!   keyed by normalized query text + adornment + strategy, so repeated
//!   requests (and aliased registrations) never rebuild; under budget
//!   pressure it evicts cost-aware (bytes ÷ measured rebuild time, LRU as
//!   tie-break); entries carry epoch stamps and are invalidated — lazily
//!   on lookup or by an explicit sweep — rather than ever served stale;
//! * [`Policy`] / [`policy::select`] — auto strategy selection consulting
//!   the width machinery, the §6 LP optimizers and the `T(·)` cost oracle;
//! * [`Engine::serve_batch`] — batched request serving across OS threads,
//!   returning per-request [`cqc_bench::DelayStats`];
//! * [`Engine::serve_stream`] — the steady-state serve loop: one reusable
//!   enumerator and one reusable flat [`cqc_common::AnswerBlock`] per
//!   view, zero heap allocations per answer once warm (gated in CI by the
//!   counting allocator);
//! * [`ShardedEngine`] — one engine spanning cores: relations are
//!   hash-partitioned into `S` disjoint sub-databases
//!   ([`cqc_storage::Partitioning`]), each owned by a full [`Engine`] with
//!   its own catalog and budget slice; `register` builds the per-shard
//!   representations in parallel, serve paths fan out and `k`-way-merge
//!   the per-shard flat blocks back into lexicographic order
//!   ([`cqc_common::BlockMerger`]), and updates split into per-shard
//!   deltas so shard epochs (the vector version,
//!   [`ShardedEngine::version`]) advance independently;
//! * the `cqe` binary — `load` / `gen` / `register` / `ask` / `bench` from
//!   the command line.
//!
//! Every serve path is push-style: representations drive their answers
//! into a [`cqc_common::AnswerSink`] as borrowed slices, and a [`Served`]
//! holds one flat block rather than a `Vec` per tuple.
//!
//! ```
//! use cqc_engine::{Engine, Policy, Request};
//! use cqc_storage::{Database, Relation};
//!
//! let mut db = Database::new();
//! db.add(Relation::from_pairs("R", vec![(1, 2), (2, 3), (3, 1), (1, 3)])).unwrap();
//! let engine = Engine::new(db);
//! engine
//!     .register_text("mutual", "V(x,y,z) :- R(x,y), R(y,z), R(z,x)", "bfb", Policy::default())
//!     .unwrap();
//! // Serve many: the representation is built exactly once.
//! let reqs: Vec<Request> = (0..4)
//!     .map(|v| Request { view: "mutual".into(), bound: vec![1, v] })
//!     .collect();
//! let served = engine.serve_batch(&reqs, 2).unwrap();
//! assert_eq!(served[3].to_tuples(), vec![vec![2]]); // V(1, y, 3): y = 2
//! assert_eq!(engine.catalog_stats().builds, 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod catalog;
pub mod engine;
pub mod policy;
pub mod service;
pub mod sharded;

pub use catalog::{Catalog, CatalogKey, CatalogStats};
pub use engine::{
    Engine, EngineConfig, RecoveryStats, RegisteredView, Request, Served, UpdateReport,
    UpdateStats, ViewServer,
};
pub use policy::{Policy, Selection};
pub use service::BlockService;
pub use sharded::{
    spec_for_view, view_fans_out, ShardedBlocks, ShardedEngine, ShardedEngineConfig,
    ShardedUpdateReport, SteadyMeasurement,
};
