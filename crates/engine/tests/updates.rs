//! Integration tests for the versioned-database update path: epoch
//! stamping, catalog invalidation (lazy and eager), delta maintenance
//! versus rebuild, and serving concurrently with writers.

use cqc_common::value::Tuple;
use cqc_core::Strategy;
use cqc_engine::{Engine, EngineConfig, Policy};
use cqc_join::naive::evaluate_view;
use cqc_query::parser::parse_adorned;
use cqc_query::AdornedView;
use cqc_storage::{Database, Delta, Relation};
use cqc_workload::{mixed_delta, recombination_delta};

const TRIANGLE: &str = "Q(x,y,z) :- R(x,y), S(y,z), T(z,x)";

fn triangle_db(rows: usize, domain: u64, seed: u64) -> Database {
    let mut db = Database::new();
    let mut rng = cqc_workload::rng(seed);
    for name in ["R", "S", "T"] {
        db.add(cqc_workload::uniform_relation(
            &mut rng, name, 2, rows, domain,
        ))
        .unwrap();
    }
    db
}

fn theorem1_policy() -> Policy {
    Policy::Fixed(Strategy::Tradeoff {
        tau: 2.0,
        weights: Some(vec![0.5, 0.5, 0.5]),
    })
}

fn sorted_answer(engine: &Engine, view: &str, vb: &[u64]) -> Vec<Tuple> {
    let mut a = engine.answer(view, vb).unwrap();
    a.sort_unstable();
    a.dedup();
    a
}

/// The regression the versioning work exists for: mutating the database
/// after registration must not serve answers computed from the old
/// snapshot. Before epochs, the cached representation would have answered
/// without the inserted triangle.
#[test]
fn update_after_register_is_not_served_stale() {
    let mut db = Database::new();
    db.add(Relation::from_pairs("R", vec![(1, 2)])).unwrap();
    db.add(Relation::from_pairs("S", vec![(2, 3)])).unwrap();
    db.add(Relation::from_pairs("T", vec![(3, 1)])).unwrap();
    let engine = Engine::new(db);
    engine
        .register_text("tri", TRIANGLE, "bfb", theorem1_policy())
        .unwrap();
    assert_eq!(sorted_answer(&engine, "tri", &[1, 3]), vec![vec![2u64]]);
    assert!(sorted_answer(&engine, "tri", &[5, 7]).is_empty());

    // Insert a brand-new triangle 5 → 6 → 7 → 5.
    let mut delta = Delta::new();
    delta.insert("R", vec![5, 6]);
    delta.insert("S", vec![6, 7]);
    delta.insert("T", vec![7, 5]);
    let before_epoch = engine.epoch();
    let report = engine.update(&delta).unwrap();
    assert_eq!(report.epoch, before_epoch + 1);

    // The representation answers with the new data — the old cached entry
    // is gone or replaced, never served.
    assert_eq!(sorted_answer(&engine, "tri", &[5, 7]), vec![vec![6u64]]);
    let view = parse_adorned(TRIANGLE, "bfb").unwrap();
    for x in 0..8u64 {
        for z in 0..8u64 {
            assert_eq!(
                sorted_answer(&engine, "tri", &[x, z]),
                evaluate_view(&view, &engine.db(), &[x, z]).unwrap(),
                "vb ({x},{z})"
            );
        }
    }
}

/// The `add_relation`-after-register footgun: the mutation now routes
/// through the versioning path, so the epoch bumps and the cached entry is
/// invalidated on its next lookup instead of being trusted forever.
#[test]
fn add_relation_after_register_invalidates_catalog() {
    let mut engine = Engine::new(triangle_db(60, 12, 3));
    engine
        .register_text("tri", TRIANGLE, "bfb", theorem1_policy())
        .unwrap();
    let epoch_before = engine.epoch();
    let builds_before = engine.catalog_stats().builds;
    assert_eq!(engine.catalog_stats().invalidations, 0);

    engine
        .add_relation(Relation::from_pairs("Extra", vec![(1, 2)]))
        .unwrap();
    assert_eq!(engine.epoch(), epoch_before + 1, "add bumps the epoch");

    // The next lookup sees the stale stamp, invalidates, and rebuilds from
    // the current snapshot.
    let view = parse_adorned(TRIANGLE, "bfb").unwrap();
    let expect = evaluate_view(&view, &engine.db(), &[1, 2]).unwrap();
    assert_eq!(sorted_answer(&engine, "tri", &[1, 2]), expect);
    let stats = engine.catalog_stats();
    assert_eq!(stats.invalidations, 1, "{stats:?}");
    assert_eq!(stats.builds, builds_before + 1, "{stats:?}");
    // Once rebuilt, serving is hits again.
    engine.answer("tri", &[2, 3]).unwrap();
    assert_eq!(engine.catalog_stats().builds, builds_before + 1);
}

/// Acceptance: registered Theorem 1 views answered after `update` match a
/// from-scratch rebuild (here: the naive oracle on the new snapshot) over
/// random deltas, and small in-domain deltas take the maintain path — the
/// rebuild counter stays 0.
#[test]
fn small_deltas_take_the_maintain_path_and_stay_exact() {
    for seed in 0..6u64 {
        // Calibration off: the maintain/rebuild choice must be a pure
        // function of the delta here, not of wall clocks on a loaded
        // machine.
        let engine = Engine::with_config(
            triangle_db(70, 12, seed * 17 + 1),
            EngineConfig {
                maintain_calibration: false,
                ..EngineConfig::default()
            },
        );
        engine
            .register_text("tri", TRIANGLE, "bfb", theorem1_policy())
            .unwrap();
        let view = parse_adorned(TRIANGLE, "bfb").unwrap();
        let mut rng = cqc_workload::rng(seed * 5 + 2);
        let mut maintained_total = 0usize;
        for _round in 0..4 {
            let delta = recombination_delta(&mut rng, &engine.db(), &["R", "S", "T"], 3);
            let report = engine.update(&delta).unwrap();
            assert_eq!(
                report.rebuilt, 0,
                "small in-domain deltas must not rebuild (seed {seed}): {report:?}"
            );
            maintained_total += report.maintained;
            for x in 0..12u64 {
                for z in 0..12u64 {
                    assert_eq!(
                        sorted_answer(&engine, "tri", &[x, z]),
                        evaluate_view(&view, &engine.db(), &[x, z]).unwrap(),
                        "seed {seed}, vb ({x},{z})"
                    );
                }
            }
        }
        // Recombination deltas occasionally contain only duplicates (a
        // no-op update); across four rounds at least one must maintain.
        assert!(maintained_total >= 1, "seed {seed}");
        assert_eq!(engine.update_stats().rebuilt, 0);
        assert_eq!(engine.catalog_stats().maintained as usize, maintained_total);
    }
}

/// Mixed insert/delete deltas ride the same maintain path: domain-safe
/// removals (no active-domain shrink) are absorbed without a rebuild, and
/// every answer matches the naive oracle on the post-delta snapshot. This
/// also pins the maintain threshold counting removed tuples — a
/// remove-only delta must register as touching the view.
#[test]
fn mixed_deltas_maintain_and_stay_exact() {
    for seed in [0u64, 3, 8] {
        let engine = Engine::with_config(
            triangle_db(70, 12, seed * 11 + 5),
            EngineConfig {
                maintain_calibration: false,
                ..EngineConfig::default()
            },
        );
        engine
            .register_text("tri", TRIANGLE, "bfb", theorem1_policy())
            .unwrap();
        let view = parse_adorned(TRIANGLE, "bfb").unwrap();
        let mut rng = cqc_workload::rng(seed + 40);
        let mut removed_total = 0usize;
        for _round in 0..4 {
            let delta = mixed_delta(&mut rng, &engine.db(), &["R", "S", "T"], 2, 2);
            removed_total += delta.remove_groups().map(|(_, ts)| ts.len()).sum::<usize>();
            let report = engine.update(&delta).unwrap();
            assert_eq!(
                report.rebuilt, 0,
                "domain-safe mixed deltas must not rebuild (seed {seed}): {report:?}"
            );
            for x in 0..12u64 {
                for z in 0..12u64 {
                    assert_eq!(
                        sorted_answer(&engine, "tri", &[x, z]),
                        evaluate_view(&view, &engine.db(), &[x, z]).unwrap(),
                        "seed {seed}, vb ({x},{z})"
                    );
                }
            }
        }
        assert!(
            removed_total > 0,
            "seed {seed}: no removals — test is vacuous"
        );
        assert_eq!(engine.update_stats().rebuilt, 0);
    }
}

/// Deltas introducing out-of-domain values (the rank grid shifts) and
/// deltas above the size threshold must fall back to an eager rebuild —
/// and still answer exactly.
#[test]
fn domain_growth_and_large_deltas_rebuild() {
    let engine = Engine::new(triangle_db(50, 10, 9));
    engine
        .register_text("tri", TRIANGLE, "bfb", theorem1_policy())
        .unwrap();

    // Out-of-domain value: rebuild.
    let mut delta = Delta::new();
    delta.insert("R", vec![3, 777]);
    let report = engine.update(&delta).unwrap();
    assert_eq!(report.maintained, 0, "{report:?}");
    assert_eq!(report.rebuilt, 1, "{report:?}");
    let view = parse_adorned(TRIANGLE, "bfb").unwrap();
    let expect = evaluate_view(&view, &engine.db(), &[3, 2]).unwrap();
    assert_eq!(sorted_answer(&engine, "tri", &[3, 2]), expect);

    // A delta far above the maintain fraction: rebuild.
    let mut big = Delta::new();
    for i in 0..200u64 {
        big.insert("R", vec![i % 10, (i * 3) % 10]);
    }
    let report = engine.update(&big).unwrap();
    if report.epoch > 0 && report.maintained + report.rebuilt > 0 {
        assert_eq!(report.maintained, 0, "{report:?}");
    }
}

/// A delta that touches none of a view's relations restamps the entry:
/// no rebuild, no maintenance, still served from cache.
#[test]
fn untouched_views_are_restamped_not_rebuilt() {
    let mut db = triangle_db(50, 10, 11);
    db.add(Relation::from_pairs("Other", vec![(1, 2), (2, 3)]))
        .unwrap();
    let engine = Engine::new(db);
    engine
        .register_text("tri", TRIANGLE, "bfb", theorem1_policy())
        .unwrap();
    let builds_before = engine.catalog_stats().builds;

    let mut delta = Delta::new();
    delta.insert("Other", vec![7, 8]);
    let report = engine.update(&delta).unwrap();
    assert_eq!(report.restamped, 1, "{report:?}");
    assert_eq!(report.maintained, 0, "{report:?}");
    assert_eq!(report.rebuilt, 0, "{report:?}");

    engine.answer("tri", &[1, 2]).unwrap();
    let stats = engine.catalog_stats();
    assert_eq!(stats.builds, builds_before, "restamp keeps the entry hot");
    assert_eq!(stats.invalidations, 0);
}

/// The maintain/rebuild size threshold counts only the tuples landing in
/// the view's own relations: a delta flooding an unrelated relation must
/// not push the view off its maintain path.
#[test]
fn flood_of_unrelated_relation_keeps_maintain_path() {
    let mut db = triangle_db(60, 12, 31);
    db.add(Relation::from_pairs("Other", vec![(1, 2)])).unwrap();
    let engine = Engine::with_config(
        db,
        EngineConfig {
            maintain_calibration: false,
            ..EngineConfig::default()
        },
    );
    engine
        .register_text("tri", TRIANGLE, "bfb", theorem1_policy())
        .unwrap();

    // Far more tuples than the maintain fraction allows — but all of them
    // in `Other`, plus one guaranteed-new in-domain tuple for R (first
    // absent recombination of existing column values).
    let mut delta = Delta::new();
    {
        let db = engine.db();
        let r = db.get("R").unwrap();
        let fresh = r
            .column_values(0)
            .iter()
            .flat_map(|&a| r.column_values(1).into_iter().map(move |b| vec![a, b]))
            .find(|t| !r.contains(t))
            .expect("a sparse relation has absent recombinations");
        delta.insert("R", fresh);
    }
    for i in 0..500u64 {
        delta.insert("Other", vec![i, i + 1]);
    }
    let report = engine.update(&delta).unwrap();
    assert_eq!(report.rebuilt, 0, "{report:?}");
    assert_eq!(report.maintained, 1, "{report:?}");
    let view = parse_adorned(TRIANGLE, "bfb").unwrap();
    for x in 0..6u64 {
        assert_eq!(
            sorted_answer(&engine, "tri", &[x, (x + 2) % 6]),
            evaluate_view(&view, &engine.db(), &[x, (x + 2) % 6]).unwrap()
        );
    }
}

/// Aliased registrations share one catalog entry; an update reconciles the
/// shared key exactly once.
#[test]
fn aliased_views_reconcile_once() {
    let engine = Engine::new(triangle_db(60, 12, 13));
    engine
        .register_text("a", TRIANGLE, "bfb", theorem1_policy())
        .unwrap();
    engine
        .register_text(
            "b",
            "View(u,v,w) :- T(w,u), R(u,v), S(v,w)",
            "bfb",
            theorem1_policy(),
        )
        .unwrap();
    assert_eq!(engine.catalog_stats().entries, 1);

    let mut rng = cqc_workload::rng(4);
    let delta = recombination_delta(&mut rng, &engine.db(), &["R"], 2);
    let report = engine.update(&delta).unwrap();
    assert!(
        report.maintained + report.rebuilt + report.restamped <= 1,
        "shared key must be reconciled at most once: {report:?}"
    );
    assert_eq!(
        sorted_answer(&engine, "a", &[1, 2]),
        sorted_answer(&engine, "b", &[1, 2])
    );
}

/// The eager sweep drops stale entries without waiting for a lookup.
#[test]
fn invalidate_stale_sweeps_eagerly() {
    let mut engine = Engine::new(triangle_db(50, 10, 15));
    engine
        .register_text("tri", TRIANGLE, "bfb", theorem1_policy())
        .unwrap();
    assert_eq!(engine.invalidate_stale(), 0, "fresh entries survive");
    engine
        .add_relation(Relation::from_pairs("Extra", vec![(9, 9)]))
        .unwrap();
    assert_eq!(engine.invalidate_stale(), 1, "stale entry reclaimed");
    assert_eq!(engine.catalog_stats().entries, 0);
    // Serving transparently rebuilds from the current snapshot.
    let view = parse_adorned(TRIANGLE, "bfb").unwrap();
    let expect = evaluate_view(&view, &engine.db(), &[1, 2]).unwrap();
    assert_eq!(sorted_answer(&engine, "tri", &[1, 2]), expect);
}

/// Every strategy has a maintain path now, materialize included: a small
/// delta is absorbed, while an oversized one (past the maintain-fraction
/// threshold) still falls back to an eager rebuild. Both answer the
/// post-delta result.
#[test]
fn materialize_maintains_small_deltas_rebuilds_large_ones() {
    let engine = Engine::new(triangle_db(50, 10, 19));
    engine
        .register_text("mat", TRIANGLE, "bfb", Policy::Fixed(Strategy::Materialize))
        .unwrap();
    let mut rng = cqc_workload::rng(6);
    // 9 touched tuples against |D| = 150: well under the default 0.2
    // fraction, so the entry is maintained in place.
    let delta = recombination_delta(&mut rng, &engine.db(), &["R", "S", "T"], 3);
    let report = engine.update(&delta).unwrap();
    if report.epoch > 0 && report.maintained + report.rebuilt + report.restamped > 0 {
        assert_eq!(report.maintained, 1, "{report:?}");
        assert_eq!(report.rebuilt, 0, "{report:?}");
    }
    // ~120 touched tuples blow the threshold: eager rebuild.
    let delta = recombination_delta(&mut rng, &engine.db(), &["R", "S", "T"], 40);
    let report = engine.update(&delta).unwrap();
    if report.epoch > 0 && report.maintained + report.rebuilt + report.restamped > 0 {
        assert_eq!(report.maintained, 0, "{report:?}");
        assert_eq!(report.rebuilt, 1, "{report:?}");
    }
    let view = parse_adorned(TRIANGLE, "bfb").unwrap();
    for x in 0..10u64 {
        assert_eq!(
            sorted_answer(&engine, "mat", &[x, (x + 1) % 10]),
            evaluate_view(&view, &engine.db(), &[x, (x + 1) % 10]).unwrap()
        );
    }
}

/// Bad deltas fail atomically: the database and catalog are untouched.
#[test]
fn failed_update_changes_nothing() {
    let engine = Engine::new(triangle_db(40, 10, 23));
    engine
        .register_text("tri", TRIANGLE, "bfb", theorem1_policy())
        .unwrap();
    let epoch = engine.epoch();
    let size = engine.db().size();

    let mut delta = Delta::new();
    delta.insert("R", vec![1, 2]);
    delta.insert("Missing", vec![1]);
    assert!(engine.update(&delta).is_err());

    let mut delta = Delta::new();
    delta.insert("R", vec![1, 2, 3]); // arity mismatch
    assert!(engine.update(&delta).is_err());

    assert_eq!(engine.epoch(), epoch);
    assert_eq!(engine.db().size(), size);
    assert_eq!(engine.catalog_stats().invalidations, 0);
}

/// Concurrency acceptance: threads serving a view while another thread
/// applies deltas never observe a representation older than the epoch they
/// started at — with insert-only deltas, every answer must contain the
/// epoch-0 oracle and be contained in the final oracle — and nothing
/// panics.
#[test]
fn concurrent_serving_during_updates_is_monotone() {
    let engine = Engine::new(triangle_db(60, 10, 27));
    engine
        .register_text("tri", TRIANGLE, "bfb", theorem1_policy())
        .unwrap();
    let view: AdornedView = parse_adorned(TRIANGLE, "bfb").unwrap();
    let db0 = engine.db();

    let grid: Vec<[u64; 2]> = (0..6u64)
        .flat_map(|x| (0..6u64).map(move |z| [x, z]))
        .collect();
    let mut oracle0 = std::collections::HashMap::new();
    for vb in &grid {
        oracle0.insert(*vb, evaluate_view(&view, &db0, vb).unwrap());
    }

    let served: Vec<([u64; 2], Vec<Tuple>)> = std::thread::scope(|scope| {
        let engine = &engine;
        let grid = &grid;
        let updater = scope.spawn(move || {
            let mut rng = cqc_workload::rng(99);
            for _ in 0..8 {
                let delta = recombination_delta(&mut rng, &engine.db(), &["R", "S", "T"], 2);
                engine.update(&delta).unwrap();
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
        });
        let servers: Vec<_> = (0..3)
            .map(|worker| {
                scope.spawn(move || {
                    let mut out = Vec::new();
                    for i in 0..120usize {
                        let vb = grid[(i * 7 + worker * 13) % grid.len()];
                        let started_at = engine.epoch();
                        let ans = sorted_answer(engine, "tri", &vb);
                        // The representation that answered can only be at
                        // or beyond the epoch observed before the request.
                        let repr = engine
                            .representation_epoch("tri")
                            .unwrap()
                            .unwrap_or(started_at);
                        assert!(
                            repr >= started_at,
                            "served representation regressed: {repr} < {started_at}"
                        );
                        out.push((vb, ans));
                    }
                    out
                })
            })
            .collect();
        updater.join().expect("updater panicked");
        servers
            .into_iter()
            .flat_map(|h| h.join().expect("server panicked"))
            .collect()
    });

    let db_final = engine.db();
    for (vb, ans) in served {
        let base = &oracle0[&vb];
        let fin = evaluate_view(&view, &db_final, &vb).unwrap();
        for t in base {
            assert!(
                ans.contains(t),
                "answer for {vb:?} lost a tuple of the epoch-start oracle"
            );
        }
        for t in &ans {
            assert!(
                fin.contains(t),
                "answer for {vb:?} contains a tuple beyond the final database"
            );
        }
    }
    // And the final state is exact.
    for vb in &grid {
        assert_eq!(
            sorted_answer(&engine, "tri", vb),
            evaluate_view(&view, &db_final, vb).unwrap()
        );
    }
}

/// Epoch bookkeeping is visible and monotone through the public API.
#[test]
fn epochs_are_monotone_and_reported() {
    let mut engine = Engine::new(Database::new());
    assert_eq!(engine.epoch(), 0);
    engine
        .add_relation(Relation::from_pairs("R", vec![(1, 2)]))
        .unwrap();
    assert_eq!(engine.epoch(), 1);
    let mut delta = Delta::new();
    delta.insert("R", vec![2, 3]);
    assert_eq!(engine.update(&delta).unwrap().epoch, 2);
    // Duplicate-only deltas do not bump.
    assert_eq!(engine.update(&delta).unwrap().epoch, 2);
    assert_eq!(engine.update_stats().deltas, 1);

    engine
        .register_text("v", "Q(x,y) :- R(x,y)", "bf", Policy::default())
        .unwrap();
    assert_eq!(engine.representation_epoch("v").unwrap(), Some(2));
    assert!(engine.representation_epoch("nope").is_err());

    let config = EngineConfig::default();
    assert!(config.maintain_max_delta_fraction > 0.0);
}
