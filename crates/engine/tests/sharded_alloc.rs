//! Sharded allocation-discipline regression: the shard-major steady-state
//! serve loop performs **zero** heap allocations per answer on every
//! shard. The measured window is barrier-bracketed inside
//! [`cqc_engine::ShardedEngine::measure_steady_state`], so thread spawns
//! and scratch warm-up sit outside it — what is counted is exactly the
//! per-shard enumerate-into-flat-block loops.
//!
//! Single `#[test]` on purpose: the allocation counters are process-wide.

use cqc_common::alloc::CountingAlloc;
use cqc_engine::{Policy, ShardedBlocks, ShardedEngine, ShardedEngineConfig};
use cqc_query::parser::parse_adorned;
use cqc_storage::Database;

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

#[test]
fn sharded_steady_state_is_allocation_free() {
    let mut rng = cqc_workload::rng(7);
    let mut db = Database::new();
    for name in ["R", "S"] {
        db.add(cqc_workload::uniform_relation(&mut rng, name, 2, 600, 40))
            .unwrap();
    }
    let view = parse_adorned("Q(x,y,z) :- R(x,y), S(y,z)", "bff").unwrap();
    let sharded = ShardedEngine::for_view(
        db,
        &view,
        ShardedEngineConfig {
            shards: 4,
            ..ShardedEngineConfig::default()
        },
    )
    .unwrap();
    sharded
        .register(
            "p2",
            view,
            Policy::Fixed(cqc_core::Strategy::Tradeoff {
                tau: 8.0,
                weights: None,
            }),
        )
        .unwrap();
    let bounds: Vec<Vec<u64>> = (0..40u64).map(|x| vec![x]).collect();

    let mut scratch = ShardedBlocks::new();
    // First call grows every block and enumerator to its high-water mark
    // (its own internal warm pass makes the measured pass steady already,
    // but a full prior call also exercises scratch reuse across calls).
    sharded
        .measure_steady_state("p2", &bounds, &mut scratch)
        .unwrap();
    let m = sharded
        .measure_steady_state("p2", &bounds, &mut scratch)
        .unwrap();
    assert!(
        m.answers > 1_000,
        "workload too sparse to be meaningful: {}",
        m.answers
    );
    assert_eq!(
        m.alloc_events, 0,
        "steady-state sharded serving must not allocate ({} answers)",
        m.answers
    );
}
