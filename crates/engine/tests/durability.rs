//! Engine-level durability: attach → log → crash (drop) → `open` recovers
//! the exact pre-crash epoch and serves byte-identical answers, for both
//! the single engine and the sharded engine. The byte-format robustness
//! tests live in `cqc-durable`; these cover the wiring above it.

use cqc_engine::{Engine, Policy, Request, ShardedEngine, ShardedEngineConfig};
use cqc_storage::{Database, Delta, Epoch, PartitionSpec, Relation};

fn temp_dir(name: &str) -> std::path::PathBuf {
    let d = std::env::temp_dir().join(format!("cqc-eng-dur-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

fn seed_engine() -> Engine {
    let mut engine = Engine::new(Database::new());
    engine
        .add_relation(Relation::from_pairs("R", vec![(1, 2), (2, 3), (3, 4)]))
        .unwrap();
    engine
        .add_relation(Relation::from_pairs("S", vec![(2, 10), (3, 20), (4, 30)]))
        .unwrap();
    engine
}

fn register_and_serve(engine: &Engine) -> Vec<Vec<u64>> {
    engine
        .register_text(
            "V",
            "V(x, y, z) :- R(x, y), S(y, z)",
            "bff",
            Policy::default(),
        )
        .unwrap();
    let mut out = Vec::new();
    for x in 1..=4u64 {
        let served = engine
            .serve(&Request {
                view: "V".into(),
                bound: vec![x],
            })
            .unwrap();
        out.extend(served.to_tuples());
    }
    out
}

#[test]
fn attach_log_reopen_recovers_epoch_and_answers() {
    let dir = temp_dir("single");
    let mut engine = seed_engine();
    engine.attach_durable(&dir).unwrap();

    let mut d = Delta::new();
    d.insert("R", vec![4, 4]);
    engine.update(&d).unwrap();
    let mut d = Delta::new();
    d.insert("S", vec![4, 40]);
    d.remove("S", vec![4, 30]);
    engine.update(&d).unwrap();

    let epoch: Epoch = engine.epoch();
    let want = register_and_serve(&engine);
    drop(engine); // "crash": nothing flushed beyond what update() already fsynced

    let recovered = Engine::open(&dir).unwrap();
    assert_eq!(
        recovered.epoch(),
        epoch,
        "must rejoin at the pre-crash epoch"
    );
    let stats = recovered.recovery_stats().unwrap();
    assert_eq!(stats.epoch, epoch);
    assert_eq!(stats.replayed, 2, "both logged deltas replay");
    assert_eq!(stats.truncated_bytes, 0);
    assert_eq!(register_and_serve(&recovered), want);

    // Further updates keep logging: one more delta, one more replay.
    let mut d = Delta::new();
    d.insert("R", vec![9, 9]);
    recovered.update(&d).unwrap();
    let epoch2 = recovered.epoch();
    drop(recovered);
    let again = Engine::open(&dir).unwrap();
    assert_eq!(again.epoch(), epoch2);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn checkpoint_compacts_then_reopen_replays_nothing() {
    let dir = temp_dir("ckpt");
    let mut engine = seed_engine();
    engine.attach_durable(&dir).unwrap();
    let mut d = Delta::new();
    d.insert("R", vec![7, 8]);
    engine.update(&d).unwrap();
    engine.checkpoint().unwrap();
    let epoch = engine.epoch();
    drop(engine);

    let recovered = Engine::open(&dir).unwrap();
    assert_eq!(recovered.epoch(), epoch);
    let stats = recovered.recovery_stats().unwrap();
    assert_eq!(stats.replayed, 0, "the snapshot covers everything");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn open_on_a_fresh_directory_is_a_typed_error() {
    let dir = temp_dir("fresh");
    assert!(Engine::open(&dir).is_err());
    // And attach refuses a directory that already holds state.
    let mut engine = seed_engine();
    engine.attach_durable(&dir).unwrap();
    let mut second = seed_engine();
    assert!(second.attach_durable(&dir).is_err());
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn sharded_engine_recovers_its_exact_epoch_vector() {
    let dir = temp_dir("sharded");
    let mut db = cqc_storage::Database::new();
    db.add(Relation::from_pairs("R", (0..32u64).map(|i| (i, i + 1))))
        .unwrap();
    db.add(Relation::from_pairs("S", (0..33u64).map(|i| (i, 100 + i))))
        .unwrap();
    let spec = PartitionSpec::new().hash("R", 1).hash("S", 0);
    let config = ShardedEngineConfig {
        shards: 3,
        ..ShardedEngineConfig::default()
    };
    let mut sharded = ShardedEngine::new(db, spec.clone(), config).unwrap();
    sharded.attach_durable(&dir).unwrap();

    // Touch only some shards so the epoch vector is uneven.
    let mut d = Delta::new();
    d.insert("R", vec![100, 101]);
    sharded.update(&d).unwrap();
    let mut d = Delta::new();
    d.insert("R", vec![100, 102]);
    d.insert("S", vec![100, 200]);
    sharded.update(&d).unwrap();

    let version = sharded.version();
    let planning_rows: usize = sharded.planning_db().relations().map(|r| r.len()).sum();
    drop(sharded);

    let recovered = ShardedEngine::open(&dir, spec, config).unwrap();
    assert_eq!(recovered.num_shards(), 3);
    assert_eq!(
        recovered.version(),
        version,
        "each shard must rejoin at its own pre-crash epoch"
    );
    let merged_rows: usize = recovered.planning_db().relations().map(|r| r.len()).sum();
    assert_eq!(
        merged_rows, planning_rows,
        "the merged planning snapshot must match the pre-crash one"
    );
    assert!(recovered.recovery_stats().is_some());

    // The recovered engine registers and serves like the original.
    recovered
        .register_text(
            "V",
            "V(x, y, z) :- R(x, y), S(y, z)",
            "bff",
            Policy::default(),
        )
        .unwrap();
    let served = recovered
        .serve(&Request {
            view: "V".into(),
            bound: vec![5],
        })
        .unwrap();
    assert_eq!(served.to_tuples(), vec![vec![6, 106]]);
    std::fs::remove_dir_all(&dir).unwrap();
}
