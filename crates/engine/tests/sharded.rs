//! Sharded-engine acceptance: a [`ShardedEngine`] must be observationally
//! identical to an unsharded [`Engine`] — tuple for tuple, across
//! strategies, shard counts, and interleaved updates — while routing work
//! and epochs only to the shards owning the touched rows.

use cqc_core::Strategy;
use cqc_engine::{
    spec_for_view, Engine, Policy, Request, ShardedBlocks, ShardedEngine, ShardedEngineConfig,
};
use cqc_query::parser::parse_adorned;
use cqc_storage::{shard_of_value, Database, Delta, PartitionSpec, Relation};

fn triangle_db(seed: u64) -> Database {
    let mut rng = cqc_workload::rng(seed);
    let mut db = Database::new();
    for name in ["R", "S", "T"] {
        db.add(cqc_workload::uniform_relation(&mut rng, name, 2, 120, 12))
            .unwrap();
    }
    db
}

fn config(shards: usize) -> ShardedEngineConfig {
    ShardedEngineConfig {
        shards,
        ..ShardedEngineConfig::default()
    }
}

fn strategies() -> Vec<(&'static str, Policy)> {
    vec![
        (
            "theorem-1",
            Policy::Fixed(Strategy::Tradeoff {
                tau: 2.0,
                weights: Some(vec![0.5, 0.5, 0.5]),
            }),
        ),
        ("materialize", Policy::Fixed(Strategy::Materialize)),
        ("direct", Policy::Fixed(Strategy::Direct)),
        ("factorized", Policy::Fixed(Strategy::Factorized)),
        ("auto", Policy::default()),
    ]
}

fn sorted(mut v: Vec<Vec<u64>>) -> Vec<Vec<u64>> {
    v.sort_unstable();
    v
}

/// The acceptance property: sharded serve ≡ unsharded serve tuple for
/// tuple, for every strategy, shard count, pattern, and bound valuation.
#[test]
fn sharded_matches_unsharded_across_strategies_and_shard_counts() {
    let query = "Q(x,y,z) :- R(x,y), S(y,z), T(z,x)";
    for pattern in ["bfb", "bff", "fff"] {
        let view = parse_adorned(query, pattern).unwrap();
        let nb = pattern.chars().filter(|c| *c == 'b').count();
        let mut requests: Vec<Vec<u64>> = vec![vec![]];
        for _ in 0..nb {
            requests = requests
                .iter()
                .flat_map(|r| {
                    (0..12u64).step_by(3).map(move |v| {
                        let mut r2 = r.clone();
                        r2.push(v);
                        r2
                    })
                })
                .collect();
        }
        for (tag, policy) in strategies() {
            let db = triangle_db(41);
            let engine = Engine::new(db.clone());
            engine.register("v", view.clone(), policy.clone()).unwrap();
            for shards in [1usize, 2, 4, 7] {
                let sharded = ShardedEngine::for_view(db.clone(), &view, config(shards)).unwrap();
                sharded.register("v", view.clone(), policy.clone()).unwrap();
                for bound in &requests {
                    let expect = sorted(engine.answer("v", bound).unwrap());
                    let got = sorted(sharded.answer("v", bound).unwrap());
                    assert_eq!(
                        got, expect,
                        "{tag} pattern {pattern} shards {shards} bound {bound:?}"
                    );
                    assert_eq!(
                        sharded.exists("v", bound).unwrap(),
                        !expect.is_empty(),
                        "{tag} exists {pattern} shards {shards} bound {bound:?}"
                    );
                }
            }
        }
    }
}

/// Interleaved updates: after every delta both engines must still agree,
/// and only the shards owning the delta's rows may advance their epoch.
#[test]
fn sharded_matches_unsharded_under_interleaved_updates() {
    let query = "Q(x,y,z) :- R(x,y), S(y,z), T(z,x)";
    let view = parse_adorned(query, "bfb").unwrap();
    let policy = Policy::Fixed(Strategy::Tradeoff {
        tau: 2.0,
        weights: Some(vec![0.5, 0.5, 0.5]),
    });
    for shards in [2usize, 4, 7] {
        let db = triangle_db(97);
        let engine = Engine::new(db.clone());
        engine.register("v", view.clone(), policy.clone()).unwrap();
        let sharded = ShardedEngine::for_view(db, &view, config(shards)).unwrap();
        sharded.register("v", view.clone(), policy.clone()).unwrap();

        let mut rng = cqc_workload::rng(5);
        for round in 0..4u64 {
            let delta =
                cqc_workload::recombination_delta(&mut rng, &engine.db(), &["R", "S", "T"], 3);
            let before = sharded.version();
            engine.update(&delta).unwrap();
            let report = sharded.update(&delta).unwrap();
            assert_eq!(report.epochs, sharded.version());
            // Shards whose sub-delta was empty must not move their epoch.
            let moved = before
                .iter()
                .zip(&report.epochs)
                .filter(|(b, a)| a > b)
                .count();
            assert!(moved <= report.shards_touched, "round {round}");

            for x in (0..12u64).step_by(2) {
                for z in (0..12u64).step_by(3) {
                    let expect = sorted(engine.answer("v", &[x, z]).unwrap());
                    let got = sorted(sharded.answer("v", &[x, z]).unwrap());
                    assert_eq!(got, expect, "round {round} shards {shards} vb ({x},{z})");
                }
            }
        }
    }
}

/// A delta routed to a hashed relation touches exactly the owning shard's
/// epoch; the other components of the version vector are untouched.
#[test]
fn per_shard_epochs_advance_independently() {
    let view = parse_adorned("Q(x,y,z) :- R(x,y), S(y,z)", "bff").unwrap();
    let db = {
        let mut db = Database::new();
        db.add(Relation::from_pairs("R", vec![(1, 2), (2, 3), (3, 4)]))
            .unwrap();
        db.add(Relation::from_pairs("S", vec![(2, 5), (3, 6), (4, 7)]))
            .unwrap();
        db
    };
    let sharded = ShardedEngine::for_view(db, &view, config(4)).unwrap();
    sharded
        .register("v", view, Policy::Fixed(Strategy::Direct))
        .unwrap();
    // spec_for_view picks y (R.1 = S.0): zero replication.
    assert_eq!(sharded.partitioning().spec().num_hashed(), 2);

    let before = sharded.version();
    let mut delta = Delta::new();
    delta.insert("R", vec![9, 4]); // y = 4 → exactly one owner shard
    let report = sharded.update(&delta).unwrap();
    assert_eq!(report.shards_touched, 1);
    let owner = shard_of_value(4, 4);
    for (si, (b, a)) in before.iter().zip(&report.epochs).enumerate() {
        if si == owner {
            assert!(a > b, "owner shard {si} must advance");
        } else {
            assert_eq!(a, b, "shard {si} must not advance");
        }
    }
    // The new tuple is served.
    assert!(sharded.answer("v", &[9]).unwrap().contains(&vec![4u64, 7]));
}

/// The k-way merge must restore the paper's lexicographic enumeration
/// order: the merged stream equals the unsharded flat stream exactly —
/// order included — not just as a set.
#[test]
fn merged_stream_preserves_lexicographic_order() {
    let view = parse_adorned("Q(x,y,z) :- R(x,y), S(y,z)", "bff").unwrap();
    let mut rng = cqc_workload::rng(11);
    let mut db = Database::new();
    for name in ["R", "S"] {
        db.add(cqc_workload::uniform_relation(&mut rng, name, 2, 300, 20))
            .unwrap();
    }
    let policy = Policy::Fixed(Strategy::Tradeoff {
        tau: 4.0,
        weights: None,
    });
    let engine = Engine::new(db.clone());
    engine.register("p2", view.clone(), policy.clone()).unwrap();
    let sharded = ShardedEngine::for_view(db, &view, config(4)).unwrap();
    sharded.register("p2", view.clone(), policy).unwrap();

    let bounds: Vec<Vec<u64>> = (0..20u64).map(|x| vec![x]).collect();
    let mut unsharded_blocks: Vec<Vec<Vec<u64>>> = Vec::new();
    engine
        .serve_stream("p2", &bounds, |_, block| {
            unsharded_blocks.push(block.iter().map(<[u64]>::to_vec).collect());
        })
        .unwrap();
    let mut merged_blocks: Vec<Vec<Vec<u64>>> = Vec::new();
    let total = sharded
        .serve_stream("p2", &bounds, |_, block| {
            merged_blocks.push(block.iter().map(<[u64]>::to_vec).collect());
        })
        .unwrap();
    assert_eq!(merged_blocks, unsharded_blocks, "order must match exactly");
    assert_eq!(total, unsharded_blocks.iter().map(Vec::len).sum::<usize>());
    assert!(total > 500, "workload too sparse to be meaningful: {total}");
    for block in &merged_blocks {
        assert!(
            block.windows(2).all(|w| w[0] < w[1]),
            "merged block must be strictly lexicographically increasing"
        );
    }

    // serve() and serve_batch() agree with the stream too.
    let requests: Vec<Request> = bounds
        .iter()
        .map(|b| Request {
            view: "p2".into(),
            bound: b.clone(),
        })
        .collect();
    let batch = sharded.serve_batch(&requests).unwrap();
    for (i, served) in batch.iter().enumerate() {
        let tuples: Vec<Vec<u64>> = served.tuples().map(<[u64]>::to_vec).collect();
        assert_eq!(tuples, merged_blocks[i], "request {i}");
        let single = sharded.serve(&requests[i]).unwrap();
        assert_eq!(single.to_tuples(), tuples, "request {i}");
    }
}

/// A view over only replicated relations (here: a triple self-join that no
/// single column can partition) is routed to shard 0 alone — fanning it
/// out would duplicate every answer S times.
#[test]
fn replicate_only_views_route_to_shard_zero() {
    let mut rng = cqc_workload::rng(3);
    let mut db = Database::new();
    db.add(cqc_workload::uniform_relation(&mut rng, "R", 2, 150, 14))
        .unwrap();
    let view = parse_adorned("V(x,y,z) :- R(x,y), R(y,z), R(z,x)", "bfb").unwrap();
    let spec = spec_for_view(&view, &db);
    assert_eq!(spec.num_hashed(), 0, "self-join cannot be partitioned");

    let engine = Engine::new(db.clone());
    engine
        .register("mutual", view.clone(), Policy::default())
        .unwrap();
    let sharded = ShardedEngine::new(db, spec, config(4)).unwrap();
    sharded
        .register("mutual", view.clone(), Policy::default())
        .unwrap();
    // Only shard 0 carries the registration.
    assert!(sharded.shard(0).view("mutual").is_ok());
    for s in 1..4 {
        assert!(sharded.shard(s).view("mutual").is_err());
    }
    for x in 0..14u64 {
        for z in 0..14u64 {
            assert_eq!(
                sorted(sharded.answer("mutual", &[x, z]).unwrap()),
                sorted(engine.answer("mutual", &[x, z]).unwrap()),
                "vb ({x},{z})"
            );
        }
    }
}

/// Registering a view that uses a hash-partitioned relation in a way that
/// breaks the disjointness invariant must be refused — and rolled back, so
/// the name stays free.
#[test]
fn incompatible_views_are_rejected_and_rolled_back() {
    let mut db = Database::new();
    db.add(Relation::from_pairs("R", vec![(1, 2), (2, 3), (3, 1)]))
        .unwrap();
    // R is hash-partitioned on column 0.
    let spec = PartitionSpec::new().hash("R", 0);
    let sharded = ShardedEngine::new(db, spec, config(2)).unwrap();
    // The two atoms pin R's hash column to different variables (x and y):
    // per-shard answers would not be disjoint or complete.
    let bad = parse_adorned("Q(x,y,z) :- R(x,y), R(y,z)", "fff").unwrap();
    let err = sharded.register("v", bad, Policy::Fixed(Strategy::Direct));
    assert!(err.is_err());
    assert!(
        sharded.shard(0).view("v").is_err(),
        "rollback must unregister"
    );
    // The name is reusable with a compatible view.
    let good = parse_adorned("Q(x,y) :- R(x,y)", "bf").unwrap();
    sharded
        .register("v", good, Policy::Fixed(Strategy::Direct))
        .unwrap();
    assert_eq!(sharded.answer("v", &[1]).unwrap(), vec![vec![2u64]]);
}

/// Re-registering an existing name must fail cleanly and leave the
/// original registration serving on every shard (a failed duplicate must
/// not be "rolled back" over a working view).
#[test]
fn duplicate_register_preserves_existing_view() {
    let mut db = Database::new();
    db.add(Relation::from_pairs("R", vec![(1, 2), (2, 3), (3, 1)]))
        .unwrap();
    let view = parse_adorned("Q(x,y) :- R(x,y)", "bf").unwrap();
    let sharded = ShardedEngine::for_view(db, &view, config(2)).unwrap();
    sharded
        .register("v", view.clone(), Policy::Fixed(Strategy::Direct))
        .unwrap();
    assert_eq!(sharded.answer("v", &[1]).unwrap(), vec![vec![2u64]]);

    let dup = sharded.register("v", view, Policy::Fixed(Strategy::Materialize));
    assert!(dup.is_err(), "duplicate name must be rejected");
    // The original registration still serves on every shard.
    assert_eq!(sharded.answer("v", &[1]).unwrap(), vec![vec![2u64]]);
    assert_eq!(sharded.answer("v", &[2]).unwrap(), vec![vec![3u64]]);
}

/// The shard-major block path reuses its scratch: a second pass over the
/// same stream pushes the same answers into the same blocks.
#[test]
fn serve_blocks_into_is_reusable() {
    let view = parse_adorned("Q(x,y,z) :- R(x,y), S(y,z)", "bff").unwrap();
    let mut rng = cqc_workload::rng(23);
    let mut db = Database::new();
    for name in ["R", "S"] {
        db.add(cqc_workload::uniform_relation(&mut rng, name, 2, 200, 16))
            .unwrap();
    }
    let sharded = ShardedEngine::for_view(db, &view, config(3)).unwrap();
    sharded
        .register(
            "p2",
            view,
            Policy::Fixed(Strategy::Tradeoff {
                tau: 4.0,
                weights: None,
            }),
        )
        .unwrap();
    let bounds: Vec<Vec<u64>> = (0..16u64).map(|x| vec![x]).collect();
    let mut scratch = ShardedBlocks::new();
    let first = sharded
        .serve_blocks_into("p2", &bounds, &mut scratch)
        .unwrap();
    let snapshot: Vec<Vec<Vec<u64>>> = (0..bounds.len())
        .map(|i| {
            scratch
                .request_blocks(i)
                .flat_map(|b| b.iter().map(<[u64]>::to_vec))
                .collect()
        })
        .collect();
    let second = sharded
        .serve_blocks_into("p2", &bounds, &mut scratch)
        .unwrap();
    assert_eq!(first, second);
    assert!(first > 100, "workload too sparse: {first}");
    for (i, expect) in snapshot.iter().enumerate() {
        let again: Vec<Vec<u64>> = scratch
            .request_blocks(i)
            .flat_map(|b| b.iter().map(<[u64]>::to_vec))
            .collect();
        assert_eq!(&again, expect, "request {i}");
    }
}
