//! Build-path acceptance: plan-once sharded registration.
//!
//! PR 5 makes [`ShardedEngine::register`] solve strategy selection exactly
//! once (against the planning snapshot) and ship the resolved plan to all
//! shards; [`ShardedEngine::register_planning_per_shard`] keeps the old
//! one-selection-per-shard behavior as a baseline. These tests pin
//!
//! 1. the **count**: one sharded register with an auto policy performs
//!    exactly one selection solve, however many shards build from it;
//! 2. the **equivalence**: shared-plan registration answers tuple-for-tuple
//!    like per-shard-planning registration and like an unsharded engine,
//!    across shard counts, policies, and access patterns.
//!
//! The selection-solve counter is process-global, so every test here
//! serializes on one mutex — the counts must not see another test's
//! solves.

use cqc_core::Strategy;
use cqc_engine::{policy, Engine, Policy, ShardedEngine, ShardedEngineConfig};
use cqc_query::parser::parse_adorned;
use cqc_storage::Database;
use std::sync::{Mutex, MutexGuard, OnceLock};

fn counter_lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    match LOCK.get_or_init(|| Mutex::new(())).lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

fn path_db(seed: u64) -> Database {
    let mut rng = cqc_workload::rng(seed);
    let mut db = Database::new();
    for name in ["R", "S"] {
        db.add(cqc_workload::uniform_relation(&mut rng, name, 2, 300, 20))
            .unwrap();
    }
    db
}

fn config(shards: usize) -> ShardedEngineConfig {
    ShardedEngineConfig {
        shards,
        ..ShardedEngineConfig::default()
    }
}

fn sorted(mut v: Vec<Vec<u64>>) -> Vec<Vec<u64>> {
    v.sort_unstable();
    v
}

/// The acceptance property of the ISSUE: for `S > 1` shards,
/// `ShardedEngine::register` runs strategy selection exactly once.
#[test]
fn sharded_register_solves_selection_exactly_once() {
    let _guard = counter_lock();
    let view = parse_adorned("Q(x,y,z) :- R(x,y), S(y,z)", "bff").unwrap();
    for shards in [2usize, 4, 7] {
        let sharded = ShardedEngine::for_view(path_db(11), &view, config(shards)).unwrap();
        let before = policy::selection_solves();
        sharded
            .register("v", view.clone(), Policy::default())
            .unwrap();
        assert_eq!(
            policy::selection_solves() - before,
            1,
            "{shards} shards must share one selection solve"
        );
    }
}

/// The per-shard baseline really does re-solve on every shard (the
/// counter tells the two register flavors apart).
#[test]
fn per_shard_baseline_solves_once_per_shard() {
    let _guard = counter_lock();
    let view = parse_adorned("Q(x,y,z) :- R(x,y), S(y,z)", "bff").unwrap();
    for shards in [2usize, 4] {
        let sharded = ShardedEngine::for_view(path_db(11), &view, config(shards)).unwrap();
        let before = policy::selection_solves();
        sharded
            .register_planning_per_shard("v", view.clone(), Policy::default())
            .unwrap();
        assert_eq!(
            policy::selection_solves() - before,
            shards as u64,
            "per-shard planning must solve once per shard"
        );
    }
}

/// A fixed policy never solves: the passthrough must stay free on both
/// register flavors.
#[test]
fn fixed_policies_never_solve_selection() {
    let _guard = counter_lock();
    let view = parse_adorned("Q(x,y,z) :- R(x,y), S(y,z)", "bff").unwrap();
    let sharded = ShardedEngine::for_view(path_db(11), &view, config(4)).unwrap();
    let before = policy::selection_solves();
    sharded
        .register(
            "v",
            view.clone(),
            Policy::Fixed(Strategy::Tradeoff {
                tau: 4.0,
                weights: None,
            }),
        )
        .unwrap();
    assert_eq!(policy::selection_solves(), before);
}

/// A duplicate register fails before paying for a selection solve (the
/// fail-fast duplicate check precedes planning).
#[test]
fn duplicate_register_fails_before_selection() {
    let _guard = counter_lock();
    let view = parse_adorned("Q(x,y,z) :- R(x,y), S(y,z)", "bff").unwrap();
    let sharded = ShardedEngine::for_view(path_db(11), &view, config(3)).unwrap();
    sharded
        .register("v", view.clone(), Policy::default())
        .unwrap();
    let before = policy::selection_solves();
    assert!(sharded
        .register("v", view.clone(), Policy::default())
        .is_err());
    assert_eq!(
        policy::selection_solves(),
        before,
        "duplicate must not re-solve selection"
    );
    // The original registration must still serve.
    assert!(sharded.answer("v", &[1]).is_ok());
}

/// Shared-plan registration ≡ per-shard-planning registration ≡ unsharded
/// engine, tuple for tuple, across shard counts, policies, and patterns.
#[test]
fn shared_plan_register_matches_per_shard_register() {
    let _guard = counter_lock();
    let query = "Q(x,y,z) :- R(x,y), S(y,z)";
    let policies: Vec<(&str, Policy)> = vec![
        ("auto", Policy::default()),
        (
            "auto-budget",
            Policy::Auto {
                space_budget_exp: Some(1.1),
            },
        ),
        (
            "theorem-1",
            Policy::Fixed(Strategy::Tradeoff {
                tau: 3.0,
                weights: None,
            }),
        ),
    ];
    for pattern in ["bff", "bfb"] {
        let view = parse_adorned(query, pattern).unwrap();
        let nb = pattern.chars().filter(|c| *c == 'b').count();
        let mut requests: Vec<Vec<u64>> = vec![vec![]];
        for _ in 0..nb {
            requests = requests
                .iter()
                .flat_map(|r| {
                    (0..20u64).step_by(4).map(move |v| {
                        let mut r2 = r.clone();
                        r2.push(v);
                        r2
                    })
                })
                .collect();
        }
        for (tag, policy) in &policies {
            let db = path_db(23);
            let oracle = Engine::new(db.clone());
            oracle.register("v", view.clone(), policy.clone()).unwrap();
            for shards in [1usize, 3, 4] {
                let shared = ShardedEngine::for_view(db.clone(), &view, config(shards)).unwrap();
                shared.register("v", view.clone(), policy.clone()).unwrap();
                let per = ShardedEngine::for_view(db.clone(), &view, config(shards)).unwrap();
                per.register_planning_per_shard("v", view.clone(), policy.clone())
                    .unwrap();
                for bound in &requests {
                    let expect = sorted(oracle.answer("v", bound).unwrap());
                    let got_shared = sorted(shared.answer("v", bound).unwrap());
                    let got_per = sorted(per.answer("v", bound).unwrap());
                    assert_eq!(
                        got_shared, expect,
                        "shared-plan {tag} {pattern} {shards} shards {bound:?}"
                    );
                    assert_eq!(
                        got_per, expect,
                        "per-shard {tag} {pattern} {shards} shards {bound:?}"
                    );
                }
            }
        }
    }
}

/// Registrations after an update select against refreshed planning
/// statistics and still answer correctly (the planning snapshot follows
/// the shards' data).
#[test]
fn register_after_update_uses_fresh_planning_snapshot() {
    let _guard = counter_lock();
    let view = parse_adorned("Q(x,y,z) :- R(x,y), S(y,z)", "bff").unwrap();
    let db = path_db(59);
    let sharded = ShardedEngine::for_view(db.clone(), &view, config(3)).unwrap();
    let mut delta = cqc_storage::Delta::new();
    for i in 0..40u64 {
        delta.insert("R", vec![i % 20, (i * 7) % 20]);
        delta.insert("S", vec![(i * 3) % 20, i % 20]);
    }
    sharded.update(&delta).unwrap();
    assert_eq!(sharded.planning_db().size(), {
        let mut oracle_db = db.clone();
        oracle_db.apply(&delta).unwrap();
        oracle_db.size()
    });
    sharded
        .register("v", view.clone(), Policy::default())
        .unwrap();
    let mut oracle_db = db;
    oracle_db.apply(&delta).unwrap();
    let oracle = Engine::new(oracle_db);
    oracle
        .register("v", view.clone(), Policy::default())
        .unwrap();
    for x in (0..20u64).step_by(3) {
        assert_eq!(
            sorted(sharded.answer("v", &[x]).unwrap()),
            sorted(oracle.answer("v", &[x]).unwrap()),
            "x = {x}"
        );
    }
}
