//! Integration tests for the serve-many engine: catalog hit/miss/eviction
//! semantics, build-once guarantees, and multi-threaded batch serving.

use cqc_common::error::CqcError;
use cqc_common::value::Tuple;
use cqc_core::Strategy;
use cqc_engine::{Engine, EngineConfig, Policy, Request};
use cqc_join::naive::evaluate_view;
use cqc_query::parser::parse_adorned;
use cqc_storage::{Database, Relation};
use cqc_workload::{queries, random_requests};

fn triangle_db(rows: usize, seed: u64) -> Database {
    let mut db = Database::new();
    let mut rng = cqc_workload::rng(seed);
    let domain = (rows as u64 / 4).max(6);
    for name in ["R", "S", "T"] {
        db.add(cqc_workload::uniform_relation(
            &mut rng, name, 2, rows, domain,
        ))
        .unwrap();
    }
    db
}

#[test]
fn engine_is_sync() {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Engine>();
}

#[test]
fn register_once_serve_many_zero_rebuilds() {
    let db = triangle_db(120, 3);
    let engine = Engine::new(db);
    engine
        .register_text(
            "tri",
            "Q(x,y,z) :- R(x,y), S(y,z), T(z,x)",
            "bfb",
            Policy::default(),
        )
        .unwrap();
    assert_eq!(engine.catalog_stats().builds, 1, "registration builds once");

    let builds_after_register = engine.catalog_stats().builds;
    for x in 0..20u64 {
        engine.answer("tri", &[x % 7, (x + 2) % 7]).unwrap();
    }
    let stats = engine.catalog_stats();
    assert_eq!(
        stats.builds, builds_after_register,
        "cache-hit serving must perform zero representation rebuilds"
    );
    assert!(stats.hits >= 20);
}

#[test]
fn answers_match_naive_oracle() {
    let db = triangle_db(90, 11);
    let view = parse_adorned("Q(x,y,z) :- R(x,y), S(y,z), T(z,x)", "bfb").unwrap();
    let engine = Engine::new(db);
    engine
        .register("tri", view.clone(), Policy::default())
        .unwrap();
    for x in 0..15u64 {
        let req = [x, (x * 3 + 1) % 20];
        let expect = evaluate_view(&view, &engine.db(), &req).unwrap();
        let mut got = engine.answer("tri", &req).unwrap();
        got.sort_unstable();
        got.dedup();
        assert_eq!(got, expect, "request {req:?}");
    }
}

#[test]
fn aliased_registrations_share_one_build() {
    let db = triangle_db(60, 5);
    let engine = Engine::new(db);
    // Same view modulo query name, variable spelling, and atom order, same
    // strategy → same catalog key → one build.
    engine
        .register_text(
            "a",
            "Q(x,y,z) :- R(x,y), S(y,z), T(z,x)",
            "bfb",
            Policy::default(),
        )
        .unwrap();
    engine
        .register_text(
            "b",
            "View(u,v,w) :- T(w,u), R(u,v), S(v,w)",
            "bfb",
            Policy::default(),
        )
        .unwrap();
    let stats = engine.catalog_stats();
    assert_eq!(stats.builds, 1, "aliases must share the representation");
    assert_eq!(stats.entries, 1);
    // And they answer identically.
    assert_eq!(
        engine.answer("a", &[1, 2]).unwrap(),
        engine.answer("b", &[1, 2]).unwrap()
    );
}

#[test]
fn distinct_strategies_get_distinct_entries() {
    let db = triangle_db(60, 5);
    let engine = Engine::new(db);
    engine
        .register_text(
            "mat",
            "Q(x,y,z) :- R(x,y), S(y,z), T(z,x)",
            "bfb",
            Policy::Fixed(Strategy::Materialize),
        )
        .unwrap();
    engine
        .register_text(
            "fac",
            "Q(x,y,z) :- R(x,y), S(y,z), T(z,x)",
            "bfb",
            Policy::Fixed(Strategy::Factorized),
        )
        .unwrap();
    assert_eq!(engine.catalog_stats().entries, 2);
    assert_eq!(engine.catalog_stats().builds, 2);
}

#[test]
fn tight_budget_evicts_lru_and_rebuilds_on_demand() {
    let db = triangle_db(150, 9);
    // A budget far below one representation: every new view evicts the
    // previous one (the catalog always admits the newest entry).
    let engine = Engine::with_config(
        db,
        EngineConfig {
            catalog_budget_bytes: 1024,
            ..EngineConfig::default()
        },
    );
    engine
        .register_text(
            "mat",
            "Q(x,y,z) :- R(x,y), S(y,z), T(z,x)",
            "bfb",
            Policy::Fixed(Strategy::Materialize),
        )
        .unwrap();
    engine
        .register_text(
            "dir",
            "Q(x,y,z) :- R(x,y), S(y,z), T(z,x)",
            "bfb",
            Policy::Fixed(Strategy::Direct),
        )
        .unwrap();
    let s = engine.catalog_stats();
    assert_eq!(s.builds, 2);
    assert!(s.evictions >= 1, "tight budget must evict: {s:?}");
    assert_eq!(s.entries, 1, "only the newest survives: {s:?}");

    // Serving the evicted view rebuilds exactly once and evicts the other.
    engine.answer("mat", &[1, 2]).unwrap();
    let s = engine.catalog_stats();
    assert_eq!(s.builds, 3, "evicted view rebuilds on demand: {s:?}");
    // The rebuilt `mat` is now resident: serving it again is a pure hit…
    engine.answer("mat", &[1, 3]).unwrap();
    assert_eq!(engine.catalog_stats().builds, 3);
    // …while the displaced `dir` must rebuild (the two thrash under 1 KiB).
    engine.answer("dir", &[1, 2]).unwrap();
    assert_eq!(engine.catalog_stats().builds, 4);
}

#[test]
fn eviction_prefers_high_bytes_per_rebuild_nanosecond() {
    // Two entries with identical byte footprints but very different
    // (fabricated) rebuild times: under pressure the catalog must evict
    // the one that is cheap to rebuild, not the least recently used one.
    use cqc_engine::{Catalog, CatalogKey};
    use std::sync::Arc;

    let db = triangle_db(120, 5);
    let view = parse_adorned("Q(x,y,z) :- R(x,y), S(y,z), T(z,x)", "bfb").unwrap();
    let build =
        || Arc::new(cqc_core::CompressedView::build(&view, &db, Strategy::Materialize).unwrap());
    let key = |tag: &str| CatalogKey {
        normalized_query: view.query().normalized_text(),
        pattern: view.pattern(),
        strategy_tag: tag.to_string(),
    };
    let (a, b, c) = (build(), build(), build());
    let bytes = std::mem::size_of::<cqc_core::CompressedView>()
        + cqc_common::HeapSize::heap_bytes(a.as_ref());
    // Budget fits exactly two entries; the third insertion forces one out.
    let catalog = Catalog::new(2 * bytes + bytes / 2);
    // `expensive` took 1s to build, `cheap` 10µs — same bytes, so the
    // bytes-per-rebuild-nanosecond score dooms `cheap`.
    catalog.insert(key("expensive"), a, 0, 1_000_000_000);
    catalog.insert(key("cheap"), b, 0, 10_000);
    // Make `expensive` the LRU victim candidate: touch `cheap` afterwards,
    // so plain recency would evict `expensive` instead.
    assert!(catalog.get(&key("expensive"), 0).is_some());
    assert!(catalog.get(&key("cheap"), 0).is_some());
    assert!(catalog.get(&key("cheap"), 0).is_some());

    catalog.insert(key("third"), c, 0, 500_000);
    assert_eq!(catalog.stats().evictions, 1);
    assert!(
        catalog.contains(&key("expensive")),
        "the slow-to-rebuild entry must survive: {:?}",
        catalog.stats()
    );
    assert!(
        !catalog.contains(&key("cheap")),
        "the cheap-to-rebuild entry is the cost-aware victim"
    );
    assert!(catalog.contains(&key("third")), "newest always admitted");
}

#[test]
fn serve_stream_agrees_with_serve_batch() {
    let db = triangle_db(150, 41);
    let view = queries::triangle("bfb").unwrap();
    let engine = Engine::new(db);
    engine
        .register("tri", view.clone(), Policy::default())
        .unwrap();
    let mut rng = cqc_workload::rng(43);
    let bounds = random_requests(&mut rng, &view, &engine.db(), 120);
    let requests: Vec<Request> = bounds
        .iter()
        .map(|b| Request {
            view: "tri".into(),
            bound: b.clone(),
        })
        .collect();
    let batch = engine.serve_batch(&requests, 4).unwrap();
    let mut streamed: Vec<Vec<Tuple>> = Vec::new();
    let total = engine
        .serve_stream("tri", &bounds, |i, block| {
            assert_eq!(i, streamed.len());
            streamed.push(block.to_tuples());
        })
        .unwrap();
    assert_eq!(
        total,
        batch.iter().map(cqc_engine::Served::len).sum::<usize>()
    );
    for (s, b) in streamed.iter().zip(&batch) {
        assert_eq!(s, &b.to_tuples());
    }
}

#[test]
fn generous_budget_never_evicts() {
    let db = triangle_db(100, 21);
    let engine = Engine::new(db);
    for (name, pattern) in [("v1", "bfb"), ("v2", "bbf"), ("v3", "fff")] {
        engine
            .register_text(
                name,
                "Q(x,y,z) :- R(x,y), S(y,z), T(z,x)",
                pattern,
                Policy::default(),
            )
            .unwrap();
    }
    for _ in 0..5 {
        engine.answer("v1", &[1, 2]).unwrap();
        engine.answer("v2", &[1, 2]).unwrap();
        engine.answer("v3", &[]).unwrap();
    }
    let s = engine.catalog_stats();
    assert_eq!(s.evictions, 0);
    assert_eq!(s.entries, 3);
    assert_eq!(s.builds, 3);
}

#[test]
fn serve_batch_matches_sequential_across_threads() {
    let db = triangle_db(200, 17);
    let view = queries::triangle("bfb").unwrap();
    let engine = Engine::new(db);
    engine
        .register("tri", view.clone(), Policy::default())
        .unwrap();

    let mut rng = cqc_workload::rng(99);
    let requests: Vec<Request> = random_requests(&mut rng, &view, &engine.db(), 300)
        .into_iter()
        .map(|bound| Request {
            view: "tri".into(),
            bound,
        })
        .collect();

    let sequential: Vec<Vec<Tuple>> = requests
        .iter()
        .map(|r| engine.answer("tri", &r.bound).unwrap())
        .collect();
    let builds_before = engine.catalog_stats().builds;

    for threads in [2, 4, 8] {
        let served = engine.serve_batch(&requests, threads).unwrap();
        assert_eq!(served.len(), requests.len());
        for (i, (s, expect)) in served.iter().zip(&sequential).enumerate() {
            assert_eq!(
                &s.to_tuples(),
                expect,
                "request {i} differs on {threads} threads"
            );
            assert_eq!(s.delay.tuples, expect.len());
        }
    }
    // The measure-only path agrees on cardinalities and also never
    // rebuilds.
    let measured = engine.measure_batch(&requests, 4).unwrap();
    for (d, expect) in measured.iter().zip(&sequential) {
        assert_eq!(d.tuples, expect.len());
    }
    assert_eq!(
        engine.catalog_stats().builds,
        builds_before,
        "batched serving must not rebuild"
    );
}

#[test]
fn serve_batch_on_star_workload() {
    // The other acceptance workload: a star join, all-bound-but-one.
    let mut db = Database::new();
    let mut rng = cqc_workload::rng(31);
    for i in 1..=3 {
        db.add(cqc_workload::uniform_relation(
            &mut rng,
            &format!("R{i}"),
            2,
            150,
            30,
        ))
        .unwrap();
    }
    let view = queries::star(3, "bbbf").unwrap();
    let engine = Engine::new(db);
    engine
        .register("star", view.clone(), Policy::default())
        .unwrap();
    let mut rng = cqc_workload::rng(32);
    let requests: Vec<Request> = random_requests(&mut rng, &view, &engine.db(), 200)
        .into_iter()
        .map(|bound| Request {
            view: "star".into(),
            bound,
        })
        .collect();
    let sequential = engine.serve_batch(&requests, 1).unwrap();
    let parallel = engine.serve_batch(&requests, 4).unwrap();
    for (s, p) in sequential.iter().zip(&parallel) {
        assert_eq!(s.to_tuples(), p.to_tuples());
    }
    let s = engine.catalog_stats();
    assert_eq!(s.builds, 1, "one build serves every thread: {s:?}");
}

#[test]
fn unknown_view_and_duplicate_registration_are_actionable() {
    let db = triangle_db(30, 1);
    let engine = Engine::new(db);
    let err = engine.answer("nope", &[1]).unwrap_err();
    assert!(
        matches!(err, CqcError::UnknownView(ref n) if n == "nope"),
        "{err}"
    );

    engine
        .register_text(
            "tri",
            "Q(x,y,z) :- R(x,y), S(y,z), T(z,x)",
            "bfb",
            Policy::default(),
        )
        .unwrap();
    let err = engine
        .register_text(
            "tri",
            "Q(x,y,z) :- R(x,y), S(y,z), T(z,x)",
            "fff",
            Policy::default(),
        )
        .unwrap_err();
    assert!(err.to_string().contains("already registered"), "{err}");
}

#[test]
fn build_failures_carry_view_and_strategy() {
    let mut db = Database::new();
    db.add(Relation::from_pairs("R", vec![(1, 2)])).unwrap();
    let engine = Engine::new(db);
    // S is missing from the database: selection/build must fail and the
    // error must name the view.
    let err = engine
        .register_text(
            "broken",
            "Q(x,y,z) :- R(x,y), S(y,z)",
            "bff",
            Policy::default(),
        )
        .unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("broken"), "{msg}");
    assert!(msg.contains('S'), "{msg}");

    // A bad fixed strategy names both the view and the strategy tag.
    let err = engine
        .register_text(
            "badtau",
            "Q(x,y) :- R(x,y)",
            "bf",
            Policy::Fixed(Strategy::Tradeoff {
                tau: 0.5,
                weights: None,
            }),
        )
        .unwrap_err();
    match &err {
        CqcError::ViewBuild { view, strategy, .. } => {
            assert_eq!(view, "badtau");
            assert!(strategy.contains("theorem-1"), "{strategy}");
        }
        other => panic!("expected ViewBuild, got {other}"),
    }
}

#[test]
fn failed_registration_can_be_retried() {
    let mut db = Database::new();
    db.add(Relation::from_pairs("R", vec![(1, 2), (2, 3)]))
        .unwrap();
    let engine = Engine::new(db);
    // First attempt fails (τ < 1) — the name must not stay registered.
    let err = engine
        .register_text(
            "v",
            "Q(x,y) :- R(x,y)",
            "bf",
            Policy::Fixed(Strategy::Tradeoff {
                tau: 0.5,
                weights: None,
            }),
        )
        .unwrap_err();
    assert!(matches!(err, CqcError::ViewBuild { .. }), "{err}");
    assert!(
        engine.view("v").is_err(),
        "failed registration must roll back"
    );
    // Retrying with a valid strategy succeeds.
    engine
        .register_text("v", "Q(x,y) :- R(x,y)", "bf", Policy::default())
        .unwrap();
    assert_eq!(engine.answer("v", &[1]).unwrap(), vec![vec![2]]);
}

#[test]
fn auto_policy_accepts_constants_like_fixed_strategies() {
    // Example 3 views (constants in atoms) must register under Auto just
    // as they do under a fixed strategy.
    let mut db = Database::new();
    db.add(Relation::new(
        "R",
        3,
        vec![vec![1, 2, 9], vec![1, 3, 9], vec![2, 2, 5]],
    ))
    .unwrap();
    let engine = Engine::new(db);
    engine
        .register_text("c", "Q(x,y) :- R(x,y,9)", "bf", Policy::default())
        .unwrap();
    assert_eq!(engine.answer("c", &[1]).unwrap(), vec![vec![2], vec![3]]);
    // A failing ground atom short-circuits to the always-empty view.
    let mut db = Database::new();
    db.add(Relation::from_pairs("R", vec![(1, 2)])).unwrap();
    db.add(Relation::from_pairs("G", vec![(5, 5)])).unwrap();
    let engine = Engine::new(db);
    let rv = engine
        .register_text("e", "Q(x,y) :- R(x,y), G(7,7)", "bf", Policy::default())
        .unwrap();
    assert_eq!(rv.selection.tag, "always-empty");
    assert!(engine.answer("e", &[1]).unwrap().is_empty());
}

#[test]
fn explain_mentions_selection_and_representation() {
    let db = triangle_db(80, 41);
    let engine = Engine::new(db);
    engine
        .register_text(
            "tri",
            "Q(x,y,z) :- R(x,y), S(y,z), T(z,x)",
            "bfb",
            Policy::default(),
        )
        .unwrap();
    let text = engine.explain("tri").unwrap();
    assert!(text.contains("pattern:  bfb"), "{text}");
    assert!(text.contains("strategy:"), "{text}");
    assert!(text.contains("heap bytes"), "{text}");
}

#[test]
fn csv_load_and_textual_requests() {
    let csv = "alice,bob\nbob,carol\ncarol,alice\nalice,carol\n";
    let mut engine = Engine::new(Database::new());
    engine
        .load_csv("R", csv.as_bytes(), Default::default())
        .unwrap();
    engine
        .register_text(
            "reach2",
            "Q(x,y,z) :- R(x,y), R(y,z)",
            "bff",
            Policy::default(),
        )
        .unwrap();
    let alice = engine.resolve_value("alice").unwrap();
    let tuples = engine.answer("reach2", &[alice]).unwrap();
    // alice → bob → carol and alice → carol → alice.
    let rendered: Vec<String> = tuples
        .iter()
        .map(|t| {
            t.iter()
                .map(|&v| engine.display_value(v))
                .collect::<Vec<_>>()
                .join(",")
        })
        .collect();
    assert!(rendered.contains(&"bob,carol".to_string()), "{rendered:?}");
    assert!(
        rendered.contains(&"carol,alice".to_string()),
        "{rendered:?}"
    );
    assert!(engine.resolve_value("mallory").is_err());
    assert_eq!(engine.resolve_value("42").unwrap(), 42);
}

#[test]
fn admission_threshold_is_a_sharp_boundary() {
    use cqc_engine::{Catalog, CatalogKey};
    use std::sync::Arc;

    let db = triangle_db(120, 5);
    let view = parse_adorned("Q(x,y,z) :- R(x,y), S(y,z), T(z,x)", "bfb").unwrap();
    let built =
        Arc::new(cqc_core::CompressedView::build(&view, &db, Strategy::Materialize).unwrap());
    let bytes = std::mem::size_of::<cqc_core::CompressedView>()
        + cqc_common::HeapSize::heap_bytes(built.as_ref());
    let key = CatalogKey {
        normalized_query: view.query().normalized_text(),
        pattern: view.pattern(),
        strategy_tag: "t".to_string(),
    };

    // One byte under the footprint: refused (and nothing retained).
    let catalog = Catalog::with_admission(1 << 20, bytes - 1);
    catalog.insert(key.clone(), Arc::clone(&built), 1, 1_000);
    let s = catalog.stats();
    assert_eq!(s.admission_rejected, 1, "{s:?}");
    assert_eq!(s.entries, 0, "{s:?}");
    assert_eq!(s.evictions, 0, "refusal is not eviction: {s:?}");
    assert!(catalog.get(&key, 1).is_none());

    // Exactly the footprint: admitted.
    let catalog = Catalog::with_admission(1 << 20, bytes);
    catalog.insert(key.clone(), built, 1, 1_000);
    let s = catalog.stats();
    assert_eq!(s.admission_rejected, 0, "{s:?}");
    assert_eq!(s.entries, 1, "{s:?}");
    assert!(catalog.get(&key, 1).is_some());
}

#[test]
fn admission_control_refuses_oversized_entries_but_still_serves() {
    let db = triangle_db(150, 9);
    // A 1 KiB budget with the threshold at the full budget: every
    // representation of this workload measures in KiB, so nothing is ever
    // cached — unlike the default (disabled) admission policy, which
    // admits a single oversized entry and lets it thrash.
    let engine = Engine::with_config(
        db,
        EngineConfig {
            catalog_budget_bytes: 1024,
            catalog_admit_fraction: 1.0,
            ..EngineConfig::default()
        },
    );
    engine
        .register_text(
            "mat",
            "Q(x,y,z) :- R(x,y), S(y,z), T(z,x)",
            "bfb",
            Policy::Fixed(Strategy::Materialize),
        )
        .unwrap();
    let s = engine.catalog_stats();
    assert!(
        s.admission_rejected >= 1,
        "oversized entry must be refused: {s:?}"
    );
    assert_eq!(s.entries, 0, "nothing may be retained: {s:?}");
    assert_eq!(s.evictions, 0, "refusal is not eviction: {s:?}");

    // The view still serves correctly — every request simply rebuilds
    // instead of thrashing the rest of the catalog.
    let db = engine.db();
    let rv = engine.view("mat").unwrap();
    for x in 0..4u64 {
        let mut got = engine.answer("mat", &[x, (x + 1) % 6]).unwrap();
        got.sort_unstable();
        got.dedup();
        let expect = evaluate_view(&rv.view, &db, &[x, (x + 1) % 6]).unwrap();
        assert_eq!(got, expect, "x {x}");
    }
    let s = engine.catalog_stats();
    assert!(s.builds > 1, "served via rebuilds: {s:?}");
    assert_eq!(s.entries, 0, "still nothing retained: {s:?}");
}
