//! Allocation-discipline regression: steady-state serving performs **zero**
//! heap allocations per answer.
//!
//! This test binary installs the vendored counting allocator from
//! `cqc_common::alloc` as its global allocator, warms a view server's
//! scratch with one pass over a request stream, and asserts the second
//! pass allocates nothing at all. The file intentionally contains a single
//! `#[test]`: the counters are process-wide, and a concurrently running
//! test would pollute the measured window.

use cqc_common::alloc::{self as cqalloc, CountingAlloc};
use cqc_engine::{Engine, Policy};
use cqc_storage::Database;

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

#[test]
fn steady_state_serve_is_allocation_free() {
    // A dense 2-path workload with a Theorem 1 representation — the
    // acceptance path of the flat-block pipeline.
    let mut rng = cqc_workload::rng(7);
    let mut db = Database::new();
    for name in ["R", "S"] {
        db.add(cqc_workload::uniform_relation(&mut rng, name, 2, 600, 40))
            .unwrap();
    }
    let engine = Engine::new(db);
    engine
        .register_text(
            "p2",
            "Q(x,y,z) :- R(x,y), S(y,z)",
            "bff",
            Policy::Fixed(cqc_core::Strategy::Tradeoff {
                tau: 8.0,
                weights: None,
            }),
        )
        .unwrap();
    let bounds: Vec<Vec<u64>> = (0..40u64).map(|x| vec![x]).collect();

    // Oracle pass through the legacy pull path (also warms the catalog).
    let expected: Vec<Vec<Vec<u64>>> = bounds
        .iter()
        .map(|b| engine.answer("p2", b).unwrap())
        .collect();
    let total: usize = expected.iter().map(Vec::len).sum();
    assert!(
        total > 1_000,
        "workload too sparse to be meaningful: {total}"
    );

    let (served, allocs) = engine
        .with_view_server("p2", |server| {
            // Warm pass: grows every scratch buffer to its high-water mark.
            for b in &bounds {
                server.serve(b).unwrap();
            }
            // Measured pass: steady state must not touch the allocator.
            let before = cqalloc::snapshot();
            let mut served = 0usize;
            for (b, expect) in bounds.iter().zip(&expected) {
                let block = server.serve(b).unwrap();
                served += block.len();
                assert_eq!(block.len(), expect.len(), "cardinality for {b:?}");
            }
            (served, cqalloc::snapshot().allocations_since(&before))
        })
        .unwrap();

    assert_eq!(served, total, "flat path must serve every answer");
    assert_eq!(
        allocs, 0,
        "steady-state serving of {served} answers performed {allocs} heap allocations \
         (expected 0; the flat-block pipeline regressed)"
    );

    // Correctness of the measured pass (content, not just counts): replay
    // once more and compare tuples outside the measured window.
    engine
        .with_view_server("p2", |server| {
            for (b, expect) in bounds.iter().zip(&expected) {
                let block = server.serve(b).unwrap();
                assert_eq!(&block.to_tuples(), expect, "answers for {b:?}");
            }
        })
        .unwrap();
}
