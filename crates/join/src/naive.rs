//! A naive nested-loop evaluator, used as the correctness oracle.
//!
//! This evaluator is deliberately simple — generate-and-test over partial
//! valuations, atom by atom — so that it is obviously correct. Every
//! compressed structure in the workspace is property-tested against it.

use cqc_common::error::Result;
use cqc_common::value::{lex_cmp, Tuple, Value};
use cqc_query::atom::Term;
use cqc_query::{AdornedView, ConjunctiveQuery};
use cqc_storage::Database;

/// Evaluates an access request `Q^η[v]` by brute force.
///
/// Returns the distinct free-variable tuples (in the view's free-head
/// enumeration order), sorted lexicographically — the same contract as the
/// compressed structures.
///
/// # Errors
///
/// Propagates schema errors and access-arity mismatches.
pub fn evaluate_view(
    view: &AdornedView,
    db: &Database,
    bound_values: &[Value],
) -> Result<Vec<Tuple>> {
    view.check_access(bound_values)?;
    let query = view.query();
    query.check_schema(db)?;

    let n = query.num_vars();
    let mut initial: Vec<Option<Value>> = vec![None; n];
    for (var, val) in view.bound_head().iter().zip(bound_values) {
        initial[var.index()] = Some(*val);
    }

    let valuations = join_all_atoms(query, db, initial)?;

    let free = view.free_head();
    let mut out: Vec<Tuple> = valuations
        .into_iter()
        .map(|v| {
            free.iter()
                .map(|x| v[x.index()].expect("free var bound by body"))
                .collect()
        })
        .collect();
    out.sort_unstable_by(|a, b| lex_cmp(a, b));
    out.dedup();
    Ok(out)
}

/// Evaluates a full CQ (all head variables free): the head tuples in sorted
/// order.
pub fn evaluate_full(query: &ConjunctiveQuery, db: &Database) -> Result<Vec<Tuple>> {
    query.check_schema(db)?;
    let valuations = join_all_atoms(query, db, vec![None; query.num_vars()])?;
    let mut out: Vec<Tuple> = valuations
        .into_iter()
        .map(|v| {
            query
                .head
                .iter()
                .map(|x| v[x.index()].expect("head var bound by body"))
                .collect()
        })
        .collect();
    out.sort_unstable_by(|a, b| lex_cmp(a, b));
    out.dedup();
    Ok(out)
}

fn join_all_atoms(
    query: &ConjunctiveQuery,
    db: &Database,
    initial: Vec<Option<Value>>,
) -> Result<Vec<Vec<Option<Value>>>> {
    let mut vals: Vec<Vec<Option<Value>>> = vec![initial];
    for atom in &query.atoms {
        let rel = db.require(&atom.relation)?;
        let mut next: Vec<Vec<Option<Value>>> = Vec::new();
        for v in &vals {
            for row in rel.iter() {
                let mut candidate = v.clone();
                let mut ok = true;
                for (pos, term) in atom.terms.iter().enumerate() {
                    match term {
                        Term::Const(c) => {
                            if row[pos] != *c {
                                ok = false;
                                break;
                            }
                        }
                        Term::Var(x) => match candidate[x.index()] {
                            Some(bound) => {
                                if bound != row[pos] {
                                    ok = false;
                                    break;
                                }
                            }
                            None => candidate[x.index()] = Some(row[pos]),
                        },
                    }
                }
                if ok {
                    next.push(candidate);
                }
            }
        }
        vals = next;
        if vals.is_empty() {
            break;
        }
    }
    Ok(vals)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqc_query::parser::parse_adorned;
    use cqc_storage::Relation;

    fn triangle_db() -> Database {
        let mut db = Database::new();
        db.add(Relation::from_pairs(
            "R",
            vec![(1, 2), (2, 3), (1, 3), (3, 1)],
        ))
        .unwrap();
        db.add(Relation::from_pairs("S", vec![(2, 3), (3, 1), (3, 2)]))
            .unwrap();
        db.add(Relation::from_pairs("T", vec![(3, 1), (1, 2), (2, 3)]))
            .unwrap();
        db
    }

    #[test]
    fn full_triangle_enumeration() {
        let v = parse_adorned("Q(x,y,z) :- R(x,y), S(y,z), T(z,x)", "fff").unwrap();
        let out = evaluate_view(&v, &triangle_db(), &[]).unwrap();
        assert_eq!(out, vec![vec![1, 2, 3], vec![2, 3, 1]]);
    }

    #[test]
    fn bound_access() {
        let v = parse_adorned("Q(x,y,z) :- R(x,y), S(y,z), T(z,x)", "bfb").unwrap();
        // x = 1, z = 3: y with R(1,y), S(y,3), T(3,1).
        let out = evaluate_view(&v, &triangle_db(), &[1, 3]).unwrap();
        assert_eq!(out, vec![vec![2]]);
        // Absent binding.
        let out = evaluate_view(&v, &triangle_db(), &[2, 2]).unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn boolean_access() {
        let v = parse_adorned("Q(x,y,z) :- R(x,y), S(y,z), T(z,x)", "bbb").unwrap();
        assert_eq!(
            evaluate_view(&v, &triangle_db(), &[1, 2, 3]).unwrap(),
            vec![Vec::<Value>::new()]
        );
        assert!(evaluate_view(&v, &triangle_db(), &[1, 2, 2])
            .unwrap()
            .is_empty());
    }

    #[test]
    fn constants_and_projection_handled() {
        // The oracle supports constants and non-full queries directly.
        let v = parse_adorned("Q(x) :- R(x, 3)", "f").unwrap();
        let out = evaluate_view(&v, &triangle_db(), &[]).unwrap();
        assert_eq!(out, vec![vec![1], vec![2]]);
    }

    #[test]
    fn repeated_variables() {
        let mut db = Database::new();
        db.add(Relation::from_pairs("R", vec![(1, 1), (1, 2), (2, 2)]))
            .unwrap();
        let v = parse_adorned("Q(x) :- R(x, x)", "f").unwrap();
        assert_eq!(evaluate_view(&v, &db, &[]).unwrap(), vec![vec![1], vec![2]]);
    }

    #[test]
    fn evaluate_full_matches_fff_view() {
        let v = parse_adorned("Q(x,y,z) :- R(x,y), S(y,z), T(z,x)", "fff").unwrap();
        let db = triangle_db();
        assert_eq!(
            evaluate_full(v.query(), &db).unwrap(),
            evaluate_view(&v, &db, &[]).unwrap()
        );
    }

    #[test]
    fn wrong_access_arity_is_error() {
        let v = parse_adorned("Q(x,y,z) :- R(x,y), S(y,z), T(z,x)", "bfb").unwrap();
        assert!(evaluate_view(&v, &triangle_db(), &[1]).is_err());
    }
}
