//! The two extremal solutions of §2.3.
//!
//! * [`MaterializedView`] — "materialize the view `Q(D)` and index it by the
//!   bound variables": constant delay per access, but up to `|D|^{ρ*}`
//!   space.
//! * [`DirectView`] — "answer each access request directly on the input
//!   database": linear space (just the base trie indexes), but up to
//!   AGM-bound time before the first tuple is emitted.
//!
//! The paper's contribution lives between these two; the benchmark harness
//! anchors every tradeoff curve with them.

use crate::plan::ViewPlan;
use cqc_common::error::Result;
use cqc_common::heap::HeapSize;
use cqc_common::metrics;
use cqc_common::value::{lex_cmp, Tuple, Value};
use cqc_query::AdornedView;
use cqc_storage::{Database, Delta};

/// Fully materialized view with a lexicographic index on the bound prefix.
#[derive(Debug)]
pub struct MaterializedView {
    view: AdornedView,
    /// Result tuples in `[bound | free]` order, flattened, sorted.
    rows: Vec<Value>,
    width: usize,
    num_bound: usize,
}

impl MaterializedView {
    /// Materializes the view with a worst-case-optimal join.
    ///
    /// # Errors
    ///
    /// Fails on non-natural-join views or schema mismatches.
    pub fn build(view: &AdornedView, db: &Database) -> Result<MaterializedView> {
        let plan = ViewPlan::build(view, db)?;
        let width = plan.num_levels();
        let mut join = plan.join(vec![crate::leapfrog::LevelConstraint::Free; width]);
        let mut rows = Vec::new();
        while let Some(t) = join.next() {
            rows.extend_from_slice(t);
        }
        // LFTJ emits in lexicographic order of [bound | free] already.
        Ok(MaterializedView {
            view: view.clone(),
            rows,
            width: width.max(1),
            num_bound: plan.num_bound,
        })
    }

    /// Number of materialized result tuples.
    pub fn len(&self) -> usize {
        if self.rows.is_empty() {
            0
        } else {
            self.rows.len() / self.width
        }
    }

    /// `true` when the view result is empty.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    fn row(&self, i: usize) -> &[Value] {
        &self.rows[i * self.width..(i + 1) * self.width]
    }

    /// Answers an access request: an iterator over the free-variable tuples,
    /// in lexicographic order, with O(1) delay after an O(log) prefix
    /// search.
    pub fn answer(&self, bound_values: &[Value]) -> Result<MaterializedAnswer<'_>> {
        self.view.check_access(bound_values)?;
        // Binary-search the contiguous run with the given bound prefix.
        let n = self.len();
        let prefix = bound_values;
        let mut lo = 0usize;
        let mut hi = n;
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            if lex_cmp(&self.row(mid)[..prefix.len()], prefix) == std::cmp::Ordering::Less {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        let start = lo;
        let mut hi = n;
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            if lex_cmp(&self.row(mid)[..prefix.len()], prefix) != std::cmp::Ordering::Greater {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        Ok(MaterializedAnswer {
            mv: self,
            pos: start,
            end: lo,
        })
    }

    /// Push-style answering: streams the matching rows' free suffixes into
    /// `sink` as borrowed slices — zero allocations per answer (or per
    /// request).
    ///
    /// # Errors
    ///
    /// Fails when the bound value count mismatches the pattern.
    pub fn answer_into(
        &self,
        bound_values: &[Value],
        sink: &mut impl cqc_common::AnswerSink,
    ) -> Result<()> {
        let ans = self.answer(bound_values)?;
        for i in ans.pos..ans.end {
            metrics::record_tuple_output();
            if !sink.push(&self.row(i)[self.num_bound..]) {
                break;
            }
        }
        Ok(())
    }

    /// `true` iff the access request has at least one answer.
    pub fn exists(&self, bound_values: &[Value]) -> Result<bool> {
        let ans = self.answer(bound_values)?;
        Ok(ans.pos < ans.end)
    }

    /// Incrementally maintains the materialized result under a mixed
    /// insert/delete delta, against the **post-delta** database `db`.
    ///
    /// Because the view is a full natural join (projections are rejected at
    /// build), every base tuple pins its atom's variables to concrete
    /// result positions. Losses need no join at all: an old result row dies
    /// iff some atom's projection of it was removed. Gains are found by
    /// slab-restricted joins — one per inserted tuple, with that atom's
    /// levels fixed — so the work is proportional to the delta and the
    /// affected result rows, never the full `|D|^{ρ*}` re-join.
    ///
    /// Returns `Ok(None)` when the layout cannot be reconciled — fall back
    /// to [`MaterializedView::build`].
    ///
    /// # Errors
    ///
    /// Propagates schema errors (a view relation missing from `db`).
    pub fn maintained(&self, db: &Database, delta: &Delta) -> Result<Option<MaterializedView>> {
        let query = self.view.query();
        if query.require_natural_join().is_err() {
            return Ok(None);
        }
        // Base trie indexes over the post-delta database (linear-ish; the
        // full result re-join is what maintenance avoids).
        let plan = ViewPlan::build(&self.view, db)?;
        if plan.num_levels() != self.width || plan.num_bound != self.num_bound {
            return Ok(None);
        }
        // Per atom: the global level of each of its schema positions.
        let atom_slots: Vec<Vec<usize>> = query
            .atoms
            .iter()
            .map(|a| a.vars().map(|v| plan.level_of[v.index()]).collect())
            .collect();

        // Losses: drop old rows whose projection onto some atom was removed.
        let mut removed_per_atom: Vec<Vec<&Tuple>> = Vec::with_capacity(atom_slots.len());
        for atom in &query.atoms {
            let mut rs: Vec<&Tuple> = delta
                .removes_for(&atom.relation)
                .map(|ts| ts.iter().collect())
                .unwrap_or_default();
            rs.sort_unstable_by(|a, b| lex_cmp(a, b));
            rs.dedup();
            removed_per_atom.push(rs);
        }
        let mut scratch: Vec<Value> = Vec::new();
        let dies = |row: &[Value], scratch: &mut Vec<Value>| {
            for (slots, removed) in atom_slots.iter().zip(&removed_per_atom) {
                if removed.is_empty() {
                    continue;
                }
                scratch.clear();
                scratch.extend(slots.iter().map(|&l| row[l]));
                if removed.binary_search_by(|t| lex_cmp(t, scratch)).is_ok() {
                    return true;
                }
            }
            false
        };

        // Gains: one restricted join per inserted tuple, all atoms joined,
        // the inserted tuple's levels fixed. Emitted rows are already in
        // global [bound | free] order.
        let mut gains: Vec<Tuple> = Vec::new();
        for (i, atom) in query.atoms.iter().enumerate() {
            let Some(tuples) = delta.tuples_for(&atom.relation) else {
                continue;
            };
            for t in tuples {
                if t.len() != atom_slots[i].len() {
                    return Ok(None);
                }
                let mut cons = vec![crate::leapfrog::LevelConstraint::Free; plan.num_levels()];
                for (&l, &v) in atom_slots[i].iter().zip(t) {
                    match cons[l] {
                        crate::leapfrog::LevelConstraint::Fixed(w) if w != v => {
                            // The tuple repeats a variable inconsistently:
                            // it can never witness an answer.
                            cons.clear();
                            break;
                        }
                        _ => cons[l] = crate::leapfrog::LevelConstraint::Fixed(v),
                    }
                }
                if cons.is_empty() {
                    continue;
                }
                let mut join = plan.join(cons);
                while let Some(r) = join.next() {
                    gains.push(r.to_vec());
                }
            }
        }
        gains.sort_unstable_by(|a, b| lex_cmp(a, b));
        gains.dedup();

        // Sorted merge: surviving old rows ∪ gains, deduplicated.
        let mut rows: Vec<Value> = Vec::with_capacity(self.rows.len());
        let mut g = 0usize;
        let push_gain = |rows: &mut Vec<Value>, gain: &[Value]| {
            if rows.len() < gain.len() || rows[rows.len() - gain.len()..] != *gain {
                rows.extend_from_slice(gain);
            }
        };
        for i in 0..self.len() {
            let row = self.row(i);
            if dies(row, &mut scratch) {
                continue;
            }
            while g < gains.len() && lex_cmp(&gains[g], row) == std::cmp::Ordering::Less {
                push_gain(&mut rows, &gains[g]);
                g += 1;
            }
            if g < gains.len() && lex_cmp(&gains[g], row) == std::cmp::Ordering::Equal {
                g += 1;
            }
            rows.extend_from_slice(row);
        }
        while g < gains.len() {
            push_gain(&mut rows, &gains[g]);
            g += 1;
        }
        Ok(Some(MaterializedView {
            view: self.view.clone(),
            rows,
            width: self.width,
            num_bound: self.num_bound,
        }))
    }
}

impl HeapSize for MaterializedView {
    fn heap_bytes(&self) -> usize {
        self.rows.heap_bytes()
    }
}

/// Streaming answer over a [`MaterializedView`].
#[derive(Debug)]
pub struct MaterializedAnswer<'a> {
    mv: &'a MaterializedView,
    pos: usize,
    end: usize,
}

impl Iterator for MaterializedAnswer<'_> {
    type Item = Tuple;

    fn next(&mut self) -> Option<Tuple> {
        if self.pos >= self.end {
            return None;
        }
        let row = self.mv.row(self.pos);
        self.pos += 1;
        metrics::record_tuple_output();
        Some(row[self.mv.num_bound..].to_vec())
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.end - self.pos;
        (n, Some(n))
    }
}

/// Per-request direct evaluation over linear-size base indexes.
#[derive(Debug)]
pub struct DirectView {
    view: AdornedView,
    plan: ViewPlan,
}

impl DirectView {
    /// Builds the base trie indexes (linear space, linear-ish time).
    ///
    /// # Errors
    ///
    /// Fails on non-natural-join views or schema mismatches.
    pub fn build(view: &AdornedView, db: &Database) -> Result<DirectView> {
        Ok(DirectView {
            view: view.clone(),
            plan: ViewPlan::build(view, db)?,
        })
    }

    /// Answers an access request by running a fresh worst-case-optimal join.
    pub fn answer(&self, bound_values: &[Value]) -> Result<DirectAnswer<'_>> {
        self.view.check_access(bound_values)?;
        let join = self.plan.join(self.plan.bound_constraints(bound_values));
        Ok(DirectAnswer {
            join,
            num_bound: self.plan.num_bound,
        })
    }

    /// `true` iff the access request has at least one answer (first-answer
    /// probe; no answer tuple is materialized).
    pub fn exists(&self, bound_values: &[Value]) -> Result<bool> {
        self.view.check_access(bound_values)?;
        let mut join = self.plan.join(self.plan.bound_constraints(bound_values));
        Ok(join.is_non_empty())
    }

    /// A reusable push-style enumerator over this view: the leapfrog join
    /// and constraint vector are built once and re-seeded per request, so
    /// steady-state serving performs zero heap allocations.
    pub fn enumerator(&self) -> DirectEnum<'_> {
        DirectEnum {
            v: self,
            join: None,
            cons: Vec::new(),
        }
    }

    /// One-shot push-style answering (builds a fresh enumerator).
    ///
    /// # Errors
    ///
    /// Fails when the bound value count mismatches the pattern.
    pub fn answer_into(
        &self,
        bound_values: &[Value],
        sink: &mut impl cqc_common::AnswerSink,
    ) -> Result<()> {
        self.enumerator().answer_into(bound_values, sink)
    }

    /// The underlying plan (used by benchmarks for space accounting).
    pub fn plan(&self) -> &ViewPlan {
        &self.plan
    }

    /// Incrementally maintains the base trie indexes under a mixed
    /// insert/delete delta via [`ViewPlan::maintained`]. Returns `Ok(None)`
    /// when the plan cannot be reconciled — fall back to
    /// [`DirectView::build`].
    ///
    /// # Errors
    ///
    /// Propagates schema errors (a view relation missing from `db`).
    pub fn maintained(&self, db: &Database, delta: &Delta) -> Result<Option<DirectView>> {
        Ok(self
            .plan
            .maintained(&self.view, db, delta)?
            .map(|plan| DirectView {
                view: self.view.clone(),
                plan,
            }))
    }
}

/// Reusable push-style enumerator for [`DirectView`] (see
/// [`DirectView::enumerator`]).
pub struct DirectEnum<'a> {
    v: &'a DirectView,
    join: Option<crate::leapfrog::LeapfrogJoin<'a>>,
    cons: Vec<crate::leapfrog::LevelConstraint>,
}

impl DirectEnum<'_> {
    /// Answers one request into `sink`, reusing the join across calls.
    ///
    /// # Errors
    ///
    /// Fails when the bound value count mismatches the pattern.
    pub fn answer_into(
        &mut self,
        bound_values: &[Value],
        sink: &mut impl cqc_common::AnswerSink,
    ) -> Result<()> {
        use crate::leapfrog::LevelConstraint;
        self.v.view.check_access(bound_values)?;
        let plan = &self.v.plan;
        let nb = plan.num_bound;
        self.cons.clear();
        self.cons
            .extend(bound_values.iter().map(|&v| LevelConstraint::Fixed(v)));
        self.cons.resize(plan.num_levels(), LevelConstraint::Free);
        let j = match &mut self.join {
            Some(j) => {
                j.reset(&self.cons);
                j
            }
            None => self.join.insert(plan.join(self.cons.clone())),
        };
        while let Some(t) = j.next() {
            metrics::record_tuple_output();
            if !sink.push(&t[nb..]) {
                break;
            }
        }
        Ok(())
    }
}

impl HeapSize for DirectView {
    fn heap_bytes(&self) -> usize {
        self.plan.heap_bytes()
    }
}

/// Streaming answer over a [`DirectView`].
pub struct DirectAnswer<'a> {
    join: crate::leapfrog::LeapfrogJoin<'a>,
    num_bound: usize,
}

impl Iterator for DirectAnswer<'_> {
    type Item = Tuple;

    fn next(&mut self) -> Option<Tuple> {
        let nb = self.num_bound;
        self.join.next().map(|t| {
            metrics::record_tuple_output();
            t[nb..].to_vec()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::evaluate_view;
    use cqc_query::parser::parse_adorned;
    use cqc_storage::Relation;

    fn triangle_db() -> Database {
        let mut db = Database::new();
        db.add(Relation::from_pairs(
            "R",
            vec![(1, 2), (2, 3), (1, 3), (3, 1), (2, 1)],
        ))
        .unwrap();
        db.add(Relation::from_pairs(
            "S",
            vec![(2, 3), (3, 1), (3, 2), (1, 2)],
        ))
        .unwrap();
        db.add(Relation::from_pairs(
            "T",
            vec![(3, 1), (1, 2), (2, 3), (2, 1)],
        ))
        .unwrap();
        db
    }

    fn all_requests(db: &Database, k: usize) -> Vec<Vec<Value>> {
        // Cross product of a small candidate domain.
        let dom: Vec<Value> = vec![1, 2, 3, 4];
        let mut reqs = vec![vec![]];
        for _ in 0..k {
            let mut next = Vec::new();
            for r in &reqs {
                for &v in &dom {
                    let mut r2 = r.clone();
                    r2.push(v);
                    next.push(r2);
                }
            }
            reqs = next;
        }
        let _ = db;
        reqs
    }

    #[test]
    fn baselines_match_oracle_on_every_request() {
        for pattern in ["bfb", "bbf", "fff", "bbb", "fbf"] {
            let v = parse_adorned("Q(x,y,z) :- R(x,y), S(y,z), T(z,x)", pattern).unwrap();
            let db = triangle_db();
            let mat = MaterializedView::build(&v, &db).unwrap();
            let dir = DirectView::build(&v, &db).unwrap();
            let nb = pattern.chars().filter(|c| *c == 'b').count();
            for req in all_requests(&db, nb) {
                let expect = evaluate_view(&v, &db, &req).unwrap();
                let got_m: Vec<Tuple> = mat.answer(&req).unwrap().collect();
                let got_d: Vec<Tuple> = dir.answer(&req).unwrap().collect();
                assert_eq!(
                    got_m, expect,
                    "materialized, pattern {pattern}, req {req:?}"
                );
                assert_eq!(got_d, expect, "direct, pattern {pattern}, req {req:?}");
            }
        }
    }

    #[test]
    fn materialized_len_is_result_size() {
        let v = parse_adorned("Q(x,y,z) :- R(x,y), S(y,z), T(z,x)", "fff").unwrap();
        let db = triangle_db();
        let mat = MaterializedView::build(&v, &db).unwrap();
        let expect = evaluate_view(&v, &db, &[]).unwrap();
        assert_eq!(mat.len(), expect.len());
        assert!(!mat.is_empty() || expect.is_empty());
    }

    #[test]
    fn exists_probes() {
        let v = parse_adorned("Q(x,y,z) :- R(x,y), S(y,z), T(z,x)", "bbb").unwrap();
        let db = triangle_db();
        let mat = MaterializedView::build(&v, &db).unwrap();
        let dir = DirectView::build(&v, &db).unwrap();
        assert!(mat.exists(&[1, 2, 3]).unwrap());
        assert!(dir.exists(&[1, 2, 3]).unwrap());
        assert!(!mat.exists(&[1, 1, 1]).unwrap());
        assert!(!dir.exists(&[1, 1, 1]).unwrap());
    }

    #[test]
    fn maintained_baselines_match_rebuild_on_mixed_deltas() {
        // Property: maintaining either baseline under a random mixed
        // insert/delete delta equals rebuilding it on the post-delta
        // database, for every access request.
        let mut state = 0xabcdu64;
        let mut next = move |m: u64| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) % m
        };
        for trial in 0..8u64 {
            let mut db = triangle_db();
            let mat0;
            let dir0;
            {
                let v = parse_adorned("Q(x,y,z) :- R(x,y), S(y,z), T(z,x)", "bff").unwrap();
                mat0 = MaterializedView::build(&v, &db).unwrap();
                dir0 = DirectView::build(&v, &db).unwrap();
            }
            let mut delta = Delta::new();
            for name in ["R", "S", "T"] {
                let rel = db.get(name).unwrap();
                // Remove one random present row, insert two random rows.
                let victim = rel.row(next(rel.len() as u64) as usize).to_vec();
                delta.remove(name, victim);
                for _ in 0..2 {
                    delta.insert(name, vec![1 + next(4), 1 + next(4)]);
                }
            }
            db.apply(&delta).unwrap();
            let v = parse_adorned("Q(x,y,z) :- R(x,y), S(y,z), T(z,x)", "bff").unwrap();
            let mat = mat0.maintained(&db, &delta).unwrap().unwrap();
            let dir = dir0.maintained(&db, &delta).unwrap().unwrap();
            let mat_rebuilt = MaterializedView::build(&v, &db).unwrap();
            for x in 0..6u64 {
                let expect = evaluate_view(&v, &db, &[x]).unwrap();
                let got_m: Vec<Tuple> = mat.answer(&[x]).unwrap().collect();
                let got_d: Vec<Tuple> = dir.answer(&[x]).unwrap().collect();
                let got_r: Vec<Tuple> = mat_rebuilt.answer(&[x]).unwrap().collect();
                assert_eq!(got_m, expect, "materialized, trial {trial}, x={x}");
                assert_eq!(got_d, expect, "direct, trial {trial}, x={x}");
                assert_eq!(got_r, expect, "rebuilt oracle, trial {trial}, x={x}");
            }
            assert_eq!(mat.len(), mat_rebuilt.len(), "trial {trial}");
        }
    }

    #[test]
    fn maintained_materialized_handles_self_join_levels() {
        // A repeated variable through the join: y appears in both atoms, so
        // a slab fixing R's levels also constrains S's first level.
        let mut db = Database::new();
        db.add(Relation::from_pairs("R", vec![(1, 2), (3, 4)]))
            .unwrap();
        db.add(Relation::from_pairs("S", vec![(2, 5), (4, 6)]))
            .unwrap();
        let v = parse_adorned("Q(x,y,z) :- R(x,y), S(y,z)", "fff").unwrap();
        let mat0 = MaterializedView::build(&v, &db).unwrap();
        let mut delta = Delta::new();
        delta.insert("R", vec![7, 2]);
        delta.remove("S", vec![4, 6]);
        db.apply(&delta).unwrap();
        let mat = mat0.maintained(&db, &delta).unwrap().unwrap();
        let expect = evaluate_view(&v, &db, &[]).unwrap();
        let got: Vec<Tuple> = mat.answer(&[]).unwrap().collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn direct_space_is_smaller_than_materialized_on_dense_instances() {
        // A hub instance where the join result (30×30 pairs through the
        // shared middle value) is much larger than the input (60 tuples).
        let mut db = Database::new();
        let r: Vec<(Value, Value)> = (0..30u64).map(|i| (i, 1000)).collect();
        let s: Vec<(Value, Value)> = (0..30u64).map(|j| (1000, j)).collect();
        db.add(Relation::from_pairs("R", r)).unwrap();
        db.add(Relation::from_pairs("S", s)).unwrap();
        let v = parse_adorned("Q(x,y,z) :- R(x,y), S(y,z)", "fff").unwrap();
        let mat = MaterializedView::build(&v, &db).unwrap();
        let dir = DirectView::build(&v, &db).unwrap();
        assert!(mat.len() > db.size());
        assert!(dir.heap_bytes() < mat.heap_bytes());
    }
}
