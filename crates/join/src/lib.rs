//! Join processing: worst-case-optimal joins, the naive oracle, and the two
//! extremal baselines of §2.3.
//!
//! * [`leapfrog`] — an iterator-style leapfrog trie-join (Veldhuizen's LFTJ,
//!   a member of the NPRR/Generic-Join family the paper cites as [24, 25]).
//!   It enumerates the join of sorted-index tries in the lexicographic order
//!   of a global variable order, supports per-variable constraints
//!   (fixed value / inclusive range / free) — exactly what evaluating a
//!   restriction `(⋈_F R_F(v_b)) ⋉ B` to a canonical f-box requires — and
//!   supports prefix-skipping for the distinct-prefix enumeration used by
//!   the dictionary construction (Prop. 13);
//! * [`naive`] — an obviously-correct nested-loop evaluator used as the
//!   test oracle for every enumeration structure in the workspace;
//! * [`hashjoin`] — an independent binary hash-join evaluator that
//!   cross-validates the oracle itself;
//! * [`baselines`] — the two extremes the paper interpolates between:
//!   full materialization with an access-pattern index
//!   ([`baselines::MaterializedView`]) and per-request evaluation over the
//!   base relations ([`baselines::DirectView`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baselines;
pub mod hashjoin;
pub mod leapfrog;
pub mod naive;
pub mod plan;

pub use baselines::{DirectView, MaterializedView};
pub use hashjoin::evaluate_view_hash;
pub use leapfrog::{trie_order_for_atom, AtomInput, LeapfrogJoin, LevelConstraint};
pub use naive::{evaluate_full, evaluate_view};
pub use plan::ViewPlan;
