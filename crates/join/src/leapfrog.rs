//! Iterator-style leapfrog trie-join with per-variable constraints.
//!
//! The join operates over a global variable order `x_0 < x_1 < … < x_{L-1}`.
//! Every participating atom supplies a [`SortedIndex`] whose column order
//! lists the atom's variables in increasing global order, so that each index
//! is a trie aligned with the join's search tree. The join enumerates
//! satisfying assignments in lexicographic order of the global variable
//! order with worst-case-optimal total time (AGM-bounded, up to log factors).
//!
//! Per-variable constraints make this the evaluation engine for the
//! restricted sub-instances of the paper:
//!
//! * `Fixed(c)` — the variable is bound to `c` (access-request bound
//!   variables, or the unit prefix of a canonical f-box);
//! * `Range(lo, hi)` — inclusive value range (the single ranged variable of
//!   a canonical f-box);
//! * `Free` — unconstrained.
//!
//! [`LeapfrogJoin::skip_to_level`] truncates the search to a prefix and
//! forces the next call to advance there — the "distinct prefix" device used
//! when enumerating heavy bound-valuations (Prop. 13) and when probing a
//! sub-instance for emptiness.

use cqc_common::metrics;
use cqc_common::util::gallop;
use cqc_common::value::Value;
use cqc_storage::SortedIndex;

/// Constraint on one join level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LevelConstraint {
    /// The level is fixed to this value.
    Fixed(Value),
    /// The level ranges over an inclusive value interval.
    Range(Value, Value),
    /// The level is unconstrained.
    Free,
}

impl LevelConstraint {
    #[inline]
    fn start(&self) -> Value {
        match self {
            LevelConstraint::Fixed(c) => *c,
            LevelConstraint::Range(lo, _) => *lo,
            LevelConstraint::Free => 0,
        }
    }

    #[inline]
    fn admits(&self, v: Value) -> bool {
        match self {
            LevelConstraint::Fixed(c) => v == *c,
            LevelConstraint::Range(_, hi) => v <= *hi,
            LevelConstraint::Free => true,
        }
    }
}

/// One atom participating in a join.
#[derive(Debug, Clone)]
pub struct AtomInput<'a> {
    /// Trie-ordered index of the atom's relation.
    pub index: &'a SortedIndex,
    /// `levels[d]` = global level of the variable at trie depth `d`;
    /// strictly increasing.
    pub levels: Vec<usize>,
}

impl<'a> AtomInput<'a> {
    /// Builds an atom input, checking depth alignment.
    ///
    /// # Panics
    ///
    /// Panics if `levels` is not strictly increasing or its length differs
    /// from the index depth.
    pub fn new(index: &'a SortedIndex, levels: Vec<usize>) -> AtomInput<'a> {
        assert_eq!(levels.len(), index.depth(), "levels must match trie depth");
        assert!(
            levels.windows(2).all(|w| w[0] < w[1]),
            "levels must be strictly increasing (trie order must follow the global order)"
        );
        AtomInput { index, levels }
    }
}

/// Computes the trie column order for an atom and the global levels of its
/// depths.
///
/// `atom_level_of[c]` gives the global level of the variable at schema
/// column `c`. Returns `(column_order, levels)` where `column_order` sorts
/// the schema columns by global level (the order to build the
/// [`SortedIndex`] with) and `levels` are the corresponding global levels.
pub fn trie_order_for_atom(atom_level_of: &[usize]) -> (Vec<usize>, Vec<usize>) {
    let mut cols: Vec<usize> = (0..atom_level_of.len()).collect();
    cols.sort_unstable_by_key(|&c| atom_level_of[c]);
    let levels = cols.iter().map(|&c| atom_level_of[c]).collect();
    (cols, levels)
}

/// The leapfrog trie-join iterator.
pub struct LeapfrogJoin<'a> {
    atoms: Vec<AtomInput<'a>>,
    constraints: Vec<LevelConstraint>,
    /// Per level: participating `(atom_index, trie_depth)` pairs.
    participants: Vec<Vec<(usize, usize)>>,
    /// `ranges[level][atom]` = the atom's row range after binding all levels
    /// `< level`. `ranges[0]` is the full range.
    ranges: Vec<Vec<(usize, usize)>>,
    /// `positions[level][atom]` = cursor memo: where the last seek at this
    /// level landed for this atom. Candidates are monotone while the parent
    /// binding is unchanged, so the next seek resumes galloping from here —
    /// a k-row scan costs amortized O(k) instead of O(k log k). Reset to
    /// the range start whenever a level is entered fresh.
    positions: Vec<Vec<usize>>,
    /// Current assignment, valid for bound levels.
    current: Vec<Value>,
    levels: usize,
    started: bool,
    done: bool,
    /// Level at which the next `next()` call resumes by advancing.
    resume: usize,
}

impl<'a> LeapfrogJoin<'a> {
    /// Creates a join over `levels` global variables.
    ///
    /// # Panics
    ///
    /// Panics if constraint count mismatches, an atom's levels exceed the
    /// level count, or some non-`Fixed` level has no participating atom.
    pub fn new(
        atoms: Vec<AtomInput<'a>>,
        levels: usize,
        constraints: Vec<LevelConstraint>,
    ) -> LeapfrogJoin<'a> {
        assert_eq!(constraints.len(), levels);
        let mut participants: Vec<Vec<(usize, usize)>> = vec![Vec::new(); levels];
        for (ai, atom) in atoms.iter().enumerate() {
            for (d, &l) in atom.levels.iter().enumerate() {
                assert!(l < levels, "atom level out of range");
                participants[l].push((ai, d));
            }
        }
        for (l, p) in participants.iter().enumerate() {
            assert!(
                !p.is_empty() || matches!(constraints[l], LevelConstraint::Fixed(_)),
                "level {l} has no participating atom and is not fixed"
            );
        }
        let full: Vec<(usize, usize)> = atoms.iter().map(|a| (0, a.index.len())).collect();
        let ranges = vec![full; levels + 1];
        LeapfrogJoin {
            current: vec![0; levels],
            constraints,
            participants,
            ranges,
            positions: vec![vec![0; atoms.len()]; levels],
            atoms,
            levels,
            started: false,
            done: false,
            resume: levels.saturating_sub(1),
        }
    }

    /// The number of global levels.
    pub fn num_levels(&self) -> usize {
        self.levels
    }

    /// Rewinds the join to run again with new constraints, **reusing every
    /// internal buffer** (participants, per-level ranges, the current
    /// assignment). This is what makes box-by-box evaluation allocation-free:
    /// one join is constructed per enumeration and re-seeded per canonical
    /// box instead of being rebuilt.
    ///
    /// # Panics
    ///
    /// Panics if the constraint count mismatches the level count, or if a
    /// level with no participating atom is not `Fixed` (same contract as
    /// [`LeapfrogJoin::new`]).
    pub fn reset(&mut self, constraints: &[LevelConstraint]) {
        assert_eq!(constraints.len(), self.levels);
        for (l, p) in self.participants.iter().enumerate() {
            assert!(
                !p.is_empty() || matches!(constraints[l], LevelConstraint::Fixed(_)),
                "level {l} has no participating atom and is not fixed"
            );
        }
        self.constraints.clear();
        self.constraints.extend_from_slice(constraints);
        // `ranges[0]` (the full row ranges) never changes; deeper rows are
        // recomputed by `bind_child_ranges` before they are read.
        self.started = false;
        self.done = false;
        self.resume = self.levels.saturating_sub(1);
    }

    /// The current assignment (valid after a successful [`Self::next`]).
    pub fn current(&self) -> &[Value] {
        &self.current
    }

    /// Forces the next `next()` call to advance at `level`, discarding all
    /// deeper bindings. Used for distinct-prefix enumeration: after a match,
    /// `skip_to_level(p - 1)` continues with the next assignment differing
    /// in the first `p` levels.
    pub fn skip_to_level(&mut self, level: usize) {
        assert!(level < self.levels);
        if !self.done {
            self.resume = level;
        }
    }

    /// Produces the next satisfying assignment in lexicographic order, or
    /// `None` when exhausted.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Option<&[Value]> {
        if self.done {
            return None;
        }
        if self.levels == 0 {
            // Zero-variable join: non-empty iff every atom is non-empty;
            // atoms always have >= 1 column, so this happens only with no
            // atoms at all. Emit the empty tuple once.
            self.done = true;
            return if self.atoms.is_empty() || self.atoms.iter().all(|a| !a.index.is_empty()) {
                Some(&self.current)
            } else {
                None
            };
        }

        let mut level: usize;
        let mut advancing: bool;
        if self.started {
            level = self.resume;
            advancing = true;
        } else {
            self.started = true;
            level = 0;
            advancing = false;
        }

        loop {
            let found = if advancing {
                let cur = self.current[level];
                if cur == Value::MAX {
                    None
                } else {
                    self.seek_level(level, cur + 1, false)
                }
            } else {
                self.seek_level(level, self.constraints[level].start(), true)
            };

            match found {
                Some(v) => {
                    self.current[level] = v;
                    if level + 1 == self.levels {
                        self.resume = level;
                        return Some(&self.current);
                    }
                    self.bind_child_ranges(level, v);
                    level += 1;
                    advancing = false;
                }
                None => {
                    if level == 0 {
                        self.done = true;
                        return None;
                    }
                    level -= 1;
                    advancing = true;
                }
            }
        }
    }

    /// Convenience: `true` iff the join has at least one satisfying
    /// assignment (consumes the iterator's first step).
    pub fn is_non_empty(&mut self) -> bool {
        self.next().is_some()
    }

    /// Leapfrog search at `level` for the smallest common value `>= cand`
    /// admitted by the level constraint. `fresh` marks the first seek after
    /// (re)entering the level — it invalidates the cursor memo, which is
    /// only meaningful while the parent binding stays fixed.
    fn seek_level(&mut self, level: usize, cand: Value, fresh: bool) -> Option<Value> {
        let cons = self.constraints[level];
        let parts = &self.participants[level];
        if fresh {
            for &(ai, _) in parts {
                self.positions[level][ai] = 0;
            }
        }
        let mut cand = cand;
        if !cons.admits(cand)
            && matches!(cons, LevelConstraint::Fixed(_) | LevelConstraint::Range(..))
        {
            // cand already beyond a fixed value / range top.
            if cand > cons.start() {
                return None;
            }
            cand = cons.start();
        }
        if parts.is_empty() {
            // Only reachable for Fixed levels (asserted in `new`).
            return if cons.admits(cand) { Some(cand) } else { None };
        }
        let k = parts.len();
        let mut agree = 0usize;
        let mut i = 0usize;
        loop {
            let (ai, d) = parts[i];
            let (lo, hi) = self.ranges[level][ai];
            let col = self.atoms[ai].index.col(d);
            metrics::record_trie_seeks(1);
            // Resume from the memoized cursor: candidates only grow while
            // the parent binding is unchanged, so the hit is at or after it.
            let from = self.positions[level][ai].max(lo);
            let pos = gallop(col, from, hi, cand);
            self.positions[level][ai] = pos;
            if pos >= hi {
                return None;
            }
            let v = col[pos];
            if v == cand {
                agree += 1;
            } else {
                cand = v;
                agree = 1;
            }
            if !cons.admits(cand) {
                return None;
            }
            if agree == k {
                return Some(cand);
            }
            i = (i + 1) % k;
        }
    }

    /// After binding `level := v`, computes every atom's row range for the
    /// next level.
    fn bind_child_ranges(&mut self, level: usize, v: Value) {
        // Split the ranges vector to appease the borrow checker.
        let (head, tail) = self.ranges.split_at_mut(level + 1);
        let cur = &head[level];
        let child = &mut tail[0];
        child.copy_from_slice(cur);
        for &(ai, d) in &self.participants[level] {
            let (lo, hi) = cur[ai];
            child[ai] = self.atoms[ai].index.narrow_eq(lo, hi, d, v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqc_storage::Relation;

    /// Collects all outputs of a join.
    fn run(j: &mut LeapfrogJoin<'_>) -> Vec<Vec<Value>> {
        let mut out = Vec::new();
        while let Some(t) = j.next() {
            out.push(t.to_vec());
        }
        out
    }

    #[test]
    fn triangle_join() {
        // R(x,y), S(y,z), T(z,x); order x=0, y=1, z=2.
        let r = Relation::from_pairs("R", vec![(1, 2), (2, 3), (1, 3), (3, 1)]);
        let s = Relation::from_pairs("S", vec![(2, 3), (3, 1), (3, 2)]);
        let t = Relation::from_pairs("T", vec![(3, 1), (1, 2), (2, 3)]);
        let ri = SortedIndex::build(&r, &[0, 1]);
        let si = SortedIndex::build(&s, &[0, 1]);
        // T(z,x): trie order must follow global (x=0 < z=2): columns (1, 0).
        let ti = SortedIndex::build(&t, &[1, 0]);
        let atoms = vec![
            AtomInput::new(&ri, vec![0, 1]),
            AtomInput::new(&si, vec![1, 2]),
            AtomInput::new(&ti, vec![0, 2]),
        ];
        let mut j = LeapfrogJoin::new(atoms, 3, vec![LevelConstraint::Free; 3]);
        let out = run(&mut j);
        // Triangles: (1,2,3): R(1,2) S(2,3) T(3,1) ✓; (2,3,1): R(2,3) S(3,1)
        // T(1,2) ✓; (3,1,2): R(3,1) S(1,2)? S has no (1,2) ✗.
        assert_eq!(out, vec![vec![1, 2, 3], vec![2, 3, 1]]);
    }

    #[test]
    fn output_is_lexicographic() {
        let r = Relation::from_pairs("R", vec![(2, 1), (1, 2), (1, 1), (2, 2)]);
        let ri = SortedIndex::build(&r, &[0, 1]);
        let mut j = LeapfrogJoin::new(
            vec![AtomInput::new(&ri, vec![0, 1])],
            2,
            vec![LevelConstraint::Free; 2],
        );
        let out = run(&mut j);
        assert_eq!(out, vec![vec![1, 1], vec![1, 2], vec![2, 1], vec![2, 2]]);
    }

    #[test]
    fn fixed_constraints_select_submatch() {
        let r = Relation::from_pairs("R", vec![(1, 2), (1, 3), (2, 4)]);
        let ri = SortedIndex::build(&r, &[0, 1]);
        let mut j = LeapfrogJoin::new(
            vec![AtomInput::new(&ri, vec![0, 1])],
            2,
            vec![LevelConstraint::Fixed(1), LevelConstraint::Free],
        );
        assert_eq!(run(&mut j), vec![vec![1, 2], vec![1, 3]]);

        let mut j = LeapfrogJoin::new(
            vec![AtomInput::new(&ri, vec![0, 1])],
            2,
            vec![LevelConstraint::Fixed(9), LevelConstraint::Free],
        );
        assert!(run(&mut j).is_empty());
    }

    #[test]
    fn range_constraints() {
        let r = Relation::from_pairs("R", vec![(1, 5), (2, 6), (3, 7), (4, 8)]);
        let ri = SortedIndex::build(&r, &[0, 1]);
        let mut j = LeapfrogJoin::new(
            vec![AtomInput::new(&ri, vec![0, 1])],
            2,
            vec![LevelConstraint::Range(2, 3), LevelConstraint::Free],
        );
        assert_eq!(run(&mut j), vec![vec![2, 6], vec![3, 7]]);
        // Empty range.
        let mut j = LeapfrogJoin::new(
            vec![AtomInput::new(&ri, vec![0, 1])],
            2,
            vec![LevelConstraint::Range(9, 10), LevelConstraint::Free],
        );
        assert!(run(&mut j).is_empty());
    }

    #[test]
    fn two_path_join_with_shared_variable() {
        // R(x,y), S(y,z).
        let r = Relation::from_pairs("R", vec![(1, 10), (2, 10), (3, 20)]);
        let s = Relation::from_pairs("S", vec![(10, 7), (20, 8), (20, 9)]);
        let ri = SortedIndex::build(&r, &[0, 1]);
        let si = SortedIndex::build(&s, &[0, 1]);
        let atoms = vec![
            AtomInput::new(&ri, vec![0, 1]),
            AtomInput::new(&si, vec![1, 2]),
        ];
        let mut j = LeapfrogJoin::new(atoms, 3, vec![LevelConstraint::Free; 3]);
        let out = run(&mut j);
        assert_eq!(
            out,
            vec![
                vec![1, 10, 7],
                vec![2, 10, 7],
                vec![3, 20, 8],
                vec![3, 20, 9]
            ]
        );
    }

    #[test]
    fn skip_to_level_enumerates_distinct_prefixes() {
        let r = Relation::from_pairs("R", vec![(1, 1), (1, 2), (1, 3), (2, 5), (3, 6), (3, 7)]);
        let ri = SortedIndex::build(&r, &[0, 1]);
        let mut j = LeapfrogJoin::new(
            vec![AtomInput::new(&ri, vec![0, 1])],
            2,
            vec![LevelConstraint::Free; 2],
        );
        let mut prefixes = Vec::new();
        while let Some(t) = j.next() {
            prefixes.push(t[0]);
            j.skip_to_level(0);
        }
        assert_eq!(prefixes, vec![1, 2, 3]);
    }

    #[test]
    fn empty_relation_produces_empty_join() {
        let r = Relation::new("R", 2, vec![]);
        let ri = SortedIndex::build(&r, &[0, 1]);
        let mut j = LeapfrogJoin::new(
            vec![AtomInput::new(&ri, vec![0, 1])],
            2,
            vec![LevelConstraint::Free; 2],
        );
        assert!(!j.is_non_empty());
        assert!(j.next().is_none());
    }

    #[test]
    fn next_after_exhaustion_stays_none() {
        let r = Relation::from_pairs("R", vec![(1, 2)]);
        let ri = SortedIndex::build(&r, &[0, 1]);
        let mut j = LeapfrogJoin::new(
            vec![AtomInput::new(&ri, vec![0, 1])],
            2,
            vec![LevelConstraint::Free; 2],
        );
        assert!(j.next().is_some());
        assert!(j.next().is_none());
        assert!(j.next().is_none());
    }

    #[test]
    fn trie_order_helper() {
        // Atom T(z, x) with global levels: z=2, x=0.
        let (cols, levels) = trie_order_for_atom(&[2, 0]);
        assert_eq!(cols, vec![1, 0]);
        assert_eq!(levels, vec![0, 2]);
    }

    #[test]
    fn reset_reruns_with_new_constraints() {
        let r = Relation::from_pairs("R", vec![(1, 2), (1, 3), (2, 4), (3, 5)]);
        let ri = SortedIndex::build(&r, &[0, 1]);
        let mut j = LeapfrogJoin::new(
            vec![AtomInput::new(&ri, vec![0, 1])],
            2,
            vec![LevelConstraint::Fixed(1), LevelConstraint::Free],
        );
        assert_eq!(run(&mut j), vec![vec![1, 2], vec![1, 3]]);
        // Mid-drain reset must discard the old cursor state entirely.
        j.reset(&[LevelConstraint::Fixed(2), LevelConstraint::Free]);
        assert!(j.next().is_some());
        j.reset(&[LevelConstraint::Range(2, 3), LevelConstraint::Free]);
        assert_eq!(run(&mut j), vec![vec![2, 4], vec![3, 5]]);
        // Resetting after exhaustion revives the join.
        j.reset(&[LevelConstraint::Free, LevelConstraint::Free]);
        assert_eq!(run(&mut j).len(), 4);
    }

    #[test]
    fn self_join_same_index() {
        // Q(x,y,z) = R(x,y), R(y,z) over the same index.
        let r = Relation::from_pairs("R", vec![(1, 2), (2, 3), (2, 4)]);
        let ri = SortedIndex::build(&r, &[0, 1]);
        let atoms = vec![
            AtomInput::new(&ri, vec![0, 1]),
            AtomInput::new(&ri, vec![1, 2]),
        ];
        let mut j = LeapfrogJoin::new(atoms, 3, vec![LevelConstraint::Free; 3]);
        assert_eq!(run(&mut j), vec![vec![1, 2, 3], vec![1, 2, 4]]);
    }
}
