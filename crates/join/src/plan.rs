//! Shared join setup for adorned views.
//!
//! A [`ViewPlan`] fixes the global variable order of an adorned view —
//! bound head variables first (in head order), then free head variables in
//! the enumeration order of §3.1 — and builds one trie-aligned
//! [`SortedIndex`] per atom. Every structure that evaluates restricted
//! sub-instances of the view (the baselines here, the Theorem 1/2 structures
//! in `cqc-core`) instantiates [`LeapfrogJoin`]s from the same plan.

use crate::leapfrog::{trie_order_for_atom, AtomInput, LeapfrogJoin, LevelConstraint};
use cqc_common::error::Result;
use cqc_common::heap::HeapSize;
use cqc_common::value::{Tuple, Value};
use cqc_query::{AdornedView, Var};
use cqc_storage::{Database, Delta, IndexPool, SortedIndex};
use std::sync::Arc;

/// Join infrastructure for one adorned view: variable order plus per-atom
/// trie indexes.
///
/// Indexes are `Arc`-shared: a plan built through an [`IndexPool`] reuses
/// any identical `(relation, column-order)` index already built by the cost
/// oracle or another atom of the same registration instead of re-sorting
/// it.
#[derive(Debug, Clone)]
pub struct ViewPlan {
    /// Global variable order: bound head variables, then free head variables.
    pub order: Vec<Var>,
    /// `level_of[v.index()]` = the global level of variable `v`.
    pub level_of: Vec<usize>,
    /// Number of bound variables (they occupy levels `0..num_bound`).
    pub num_bound: usize,
    indexes: Vec<Arc<SortedIndex>>,
    atom_levels: Vec<Vec<usize>>,
}

impl ViewPlan {
    /// Builds the plan: validates the view is a natural join over `db` and
    /// constructs the trie indexes through a private [`IndexPool`] (atoms
    /// over the same relation and order still share).
    ///
    /// # Errors
    ///
    /// Fails on non-natural-join views and schema mismatches.
    pub fn build(view: &AdornedView, db: &Database) -> Result<ViewPlan> {
        ViewPlan::build_pooled(view, db, &mut IndexPool::new())
    }

    /// [`ViewPlan::build`] drawing every trie index from `pool`, so
    /// indexes shared with other consumers of the same registration (the
    /// cost oracle's access indexes use the identical column order) are
    /// built exactly once.
    ///
    /// # Errors
    ///
    /// Fails on non-natural-join views and schema mismatches.
    pub fn build_pooled(
        view: &AdornedView,
        db: &Database,
        pool: &mut IndexPool,
    ) -> Result<ViewPlan> {
        let query = view.query();
        query.require_natural_join()?;
        query.check_schema(db)?;

        let mut order = view.bound_head();
        let num_bound = order.len();
        order.extend(view.free_head());

        let mut level_of = vec![usize::MAX; query.num_vars()];
        for (l, v) in order.iter().enumerate() {
            level_of[v.index()] = l;
        }

        let mut indexes = Vec::with_capacity(query.atoms.len());
        let mut atom_levels = Vec::with_capacity(query.atoms.len());
        for atom in &query.atoms {
            let var_levels: Vec<usize> = atom.vars().map(|v| level_of[v.index()]).collect();
            let (cols, levels) = trie_order_for_atom(&var_levels);
            indexes.push(pool.get_or_build(db, &atom.relation, &cols)?);
            atom_levels.push(levels);
        }

        Ok(ViewPlan {
            order,
            level_of,
            num_bound,
            indexes,
            atom_levels,
        })
    }

    /// Rebuilds the plan for the post-delta database by merging the delta's
    /// genuinely new rows into clones of the trie indexes
    /// ([`SortedIndex::merge_insert`]) and compacting its genuinely present
    /// removals out ([`SortedIndex::merge_remove`]) instead of re-sorting
    /// each one — the incremental maintenance path mirroring
    /// `cqc_core::cost::CostEstimator::maintained`. [`Delta`] keeps insert
    /// and remove sets disjoint, so the two merges commute.
    ///
    /// Returns `Ok(None)` when a merged index cannot be reconciled with the
    /// post-delta relation (size or arity disagreement) — fall back to
    /// [`ViewPlan::build`].
    ///
    /// # Errors
    ///
    /// Propagates schema errors (a view relation missing from `db`).
    pub fn maintained(
        &self,
        view: &AdornedView,
        db: &Database,
        delta: &Delta,
    ) -> Result<Option<ViewPlan>> {
        let query = view.query();
        if query.atoms.len() != self.indexes.len() {
            return Ok(None);
        }
        let mut indexes = Vec::with_capacity(self.indexes.len());
        for (atom, old) in query.atoms.iter().zip(&self.indexes) {
            let rel = db.require(&atom.relation)?;
            let ix = if delta.touches(&atom.relation) {
                let mut merged = (**old).clone();
                if let Some(tuples) = delta.tuples_for(&atom.relation) {
                    let Some(fresh) = merged.fresh_from(tuples) else {
                        return Ok(None);
                    };
                    let fresh: Vec<Tuple> = fresh.into_iter().cloned().collect();
                    merged.merge_insert(&fresh);
                }
                if let Some(tuples) = delta.removes_for(&atom.relation) {
                    let Some(stale) = merged.stale_from(tuples) else {
                        return Ok(None);
                    };
                    let stale: Vec<Tuple> = stale.into_iter().cloned().collect();
                    merged.merge_remove(&stale);
                }
                Arc::new(merged)
            } else {
                // Untouched atom: share the old index outright.
                Arc::clone(old)
            };
            if ix.len() != rel.len() {
                return Ok(None);
            }
            indexes.push(ix);
        }
        Ok(Some(ViewPlan {
            order: self.order.clone(),
            level_of: self.level_of.clone(),
            num_bound: self.num_bound,
            indexes,
            atom_levels: self.atom_levels.clone(),
        }))
    }

    /// Total number of join levels (= head arity for natural joins).
    pub fn num_levels(&self) -> usize {
        self.order.len()
    }

    /// Number of free levels `µ`.
    pub fn num_free(&self) -> usize {
        self.order.len() - self.num_bound
    }

    /// The trie index of atom `i`.
    #[allow(clippy::should_implement_trait)]
    pub fn index(&self, i: usize) -> &SortedIndex {
        &self.indexes[i]
    }

    /// The global levels of atom `i`'s trie depths.
    pub fn atom_levels(&self, i: usize) -> &[usize] {
        &self.atom_levels[i]
    }

    /// Number of atoms.
    pub fn num_atoms(&self) -> usize {
        self.indexes.len()
    }

    /// Instantiates a join over all atoms with the given per-level
    /// constraints.
    pub fn join(&self, constraints: Vec<LevelConstraint>) -> LeapfrogJoin<'_> {
        self.join_subset(&(0..self.num_atoms()).collect::<Vec<_>>(), constraints)
    }

    /// Instantiates a join over a subset of atoms. Levels touched by no
    /// selected atom must be `Fixed`.
    pub fn join_subset(
        &self,
        atom_ids: &[usize],
        constraints: Vec<LevelConstraint>,
    ) -> LeapfrogJoin<'_> {
        let atoms = atom_ids
            .iter()
            .map(|&i| AtomInput::new(&self.indexes[i], self.atom_levels[i].clone()))
            .collect();
        LeapfrogJoin::new(atoms, self.num_levels(), constraints)
    }

    /// Constraint vector binding the bound levels to `bound_values` and
    /// leaving free levels unconstrained.
    pub fn bound_constraints(&self, bound_values: &[Value]) -> Vec<LevelConstraint> {
        debug_assert_eq!(bound_values.len(), self.num_bound);
        let mut cons = Vec::with_capacity(self.num_levels());
        cons.extend(bound_values.iter().map(|&v| LevelConstraint::Fixed(v)));
        cons.resize(self.num_levels(), LevelConstraint::Free);
        cons
    }
}

impl HeapSize for ViewPlan {
    fn heap_bytes(&self) -> usize {
        self.order.heap_bytes()
            + self.level_of.heap_bytes()
            + self
                .indexes
                .iter()
                .map(|i| i.heap_bytes() + std::mem::size_of::<SortedIndex>())
                .sum::<usize>()
            + self
                .atom_levels
                .iter()
                .map(|l| l.heap_bytes() + std::mem::size_of::<Vec<usize>>())
                .sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqc_query::parser::parse_adorned;
    use cqc_storage::Relation;

    fn triangle_db() -> Database {
        let mut db = Database::new();
        db.add(Relation::from_pairs(
            "R",
            vec![(1, 2), (2, 3), (1, 3), (3, 1)],
        ))
        .unwrap();
        db.add(Relation::from_pairs("S", vec![(2, 3), (3, 1), (3, 2)]))
            .unwrap();
        db.add(Relation::from_pairs("T", vec![(3, 1), (1, 2), (2, 3)]))
            .unwrap();
        db
    }

    #[test]
    fn order_is_bound_then_free() {
        let v = parse_adorned("Q(x,y,z) :- R(x,y), S(y,z), T(z,x)", "bfb").unwrap();
        let plan = ViewPlan::build(&v, &triangle_db()).unwrap();
        // Bound: x, z; free: y.
        assert_eq!(plan.num_bound, 2);
        assert_eq!(plan.num_free(), 1);
        let names: Vec<&str> = plan.order.iter().map(|w| v.query().var_name(*w)).collect();
        assert_eq!(names, vec!["x", "z", "y"]);
    }

    #[test]
    fn join_with_bound_values() {
        let v = parse_adorned("Q(x,y,z) :- R(x,y), S(y,z), T(z,x)", "bbf").unwrap();
        let plan = ViewPlan::build(&v, &triangle_db()).unwrap();
        let mut j = plan.join(plan.bound_constraints(&[1, 2]));
        // x=1, y=2: z with S(2,z) ∧ T(z,1) ∧ R(1,2): z=3.
        let mut out = Vec::new();
        while let Some(t) = j.next() {
            out.push(t.to_vec());
        }
        assert_eq!(out, vec![vec![1, 2, 3]]);
    }

    #[test]
    fn projection_rejected() {
        let v = parse_adorned("Q(x,y) :- R(x,y), S(y,z), T(z,x)", "bf").unwrap();
        assert!(ViewPlan::build(&v, &triangle_db()).is_err());
    }

    #[test]
    fn subset_join_requires_fixed_elsewhere() {
        let v = parse_adorned("Q(x,y,z) :- R(x,y), S(y,z), T(z,x)", "fff").unwrap();
        let plan = ViewPlan::build(&v, &triangle_db()).unwrap();
        // Join only R(x,y): level z must be fixed.
        let cons = vec![
            LevelConstraint::Free,
            LevelConstraint::Free,
            LevelConstraint::Fixed(3),
        ];
        let mut j = plan.join_subset(&[0], cons);
        let mut out = Vec::new();
        while let Some(t) = j.next() {
            out.push(t.to_vec());
        }
        assert_eq!(
            out,
            vec![vec![1, 2, 3], vec![1, 3, 3], vec![2, 3, 3], vec![3, 1, 3]]
        );
    }
}
