//! A second, independent oracle: binary hash joins.
//!
//! `cqc-join::naive` evaluates by nested-loop generate-and-test; this module
//! evaluates the same queries with classic build/probe hash joins over
//! intermediate tuple sets. The two implementations share no evaluation
//! code, so their agreement (property-tested in `tests/prop_roundtrip.rs`)
//! guards the oracle itself — important in a repository where every
//! structure is validated against "the" oracle.

use cqc_common::error::Result;
use cqc_common::hash::{fast_map, FastMap};
use cqc_common::value::{lex_cmp, Tuple, Value};
use cqc_query::atom::Term;
use cqc_query::{AdornedView, Var};
use cqc_storage::Database;

/// Evaluates an access request with left-deep binary hash joins.
///
/// Returns the distinct free-variable tuples in the view's enumeration
/// order, sorted lexicographically — the same contract as
/// [`crate::naive::evaluate_view`].
///
/// # Errors
///
/// Propagates schema errors and access-arity mismatches.
pub fn evaluate_view_hash(
    view: &AdornedView,
    db: &Database,
    bound_values: &[Value],
) -> Result<Vec<Tuple>> {
    view.check_access(bound_values)?;
    let query = view.query();
    query.check_schema(db)?;

    // Current intermediate result: a variable list plus tuples over it.
    let mut vars: Vec<Var> = Vec::new();
    let mut rows: Vec<Tuple> = vec![Vec::new()];

    let bound_head = view.bound_head();
    let bound_of = |v: Var| -> Option<Value> {
        bound_head
            .iter()
            .position(|w| *w == v)
            .map(|i| bound_values[i])
    };

    for atom in &query.atoms {
        let rel = db.require(&atom.relation)?;

        // The atom's tuples, filtered on constants, repeated variables and
        // bound-variable values, projected to its distinct variables.
        let mut atom_vars: Vec<Var> = Vec::new();
        for t in &atom.terms {
            if let Term::Var(v) = t {
                if !atom_vars.contains(v) {
                    atom_vars.push(*v);
                }
            }
        }
        let mut atom_rows: Vec<Tuple> = Vec::new();
        'rows: for row in rel.iter() {
            let mut vals: Vec<Option<Value>> = vec![None; atom_vars.len()];
            for (pos, term) in atom.terms.iter().enumerate() {
                match term {
                    Term::Const(c) => {
                        if row[pos] != *c {
                            continue 'rows;
                        }
                    }
                    Term::Var(v) => {
                        if let Some(b) = bound_of(*v) {
                            if row[pos] != b {
                                continue 'rows;
                            }
                        }
                        let slot = atom_vars.iter().position(|w| w == v).unwrap();
                        match vals[slot] {
                            Some(prev) if prev != row[pos] => continue 'rows,
                            _ => vals[slot] = Some(row[pos]),
                        }
                    }
                }
            }
            atom_rows.push(vals.into_iter().map(|v| v.unwrap()).collect());
        }

        // Hash join on the shared variables.
        let shared: Vec<(usize, usize)> = vars
            .iter()
            .enumerate()
            .filter_map(|(li, v)| atom_vars.iter().position(|w| w == v).map(|ri| (li, ri)))
            .collect();
        let new_right: Vec<usize> = (0..atom_vars.len())
            .filter(|&ri| !shared.iter().any(|&(_, r)| r == ri))
            .collect();

        // Build on the (smaller) atom side.
        let mut table: FastMap<Tuple, Vec<usize>> = fast_map();
        for (i, r) in atom_rows.iter().enumerate() {
            let key: Tuple = shared.iter().map(|&(_, ri)| r[ri]).collect();
            table.entry(key).or_default().push(i);
        }

        let mut next_rows = Vec::new();
        for l in &rows {
            let key: Tuple = shared.iter().map(|&(li, _)| l[li]).collect();
            if let Some(matches) = table.get(&key) {
                for &ri in matches {
                    let mut out = l.clone();
                    out.extend(new_right.iter().map(|&c| atom_rows[ri][c]));
                    next_rows.push(out);
                }
            }
        }
        vars.extend(new_right.iter().map(|&c| atom_vars[c]));
        rows = next_rows;
        if rows.is_empty() {
            break;
        }
    }

    // Project to the free head in enumeration order; sort + dedup.
    let free = view.free_head();
    let mut out: Vec<Tuple> = rows
        .into_iter()
        .map(|r| {
            free.iter()
                .map(|v| {
                    if let Some(b) = bound_of(*v) {
                        return b;
                    }
                    let i = vars
                        .iter()
                        .position(|w| w == v)
                        .expect("free head var appears in the body");
                    r[i]
                })
                .collect()
        })
        .collect();
    out.sort_unstable_by(|a, b| lex_cmp(a, b));
    out.dedup();
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::evaluate_view;
    use cqc_query::parser::parse_adorned;
    use cqc_storage::Relation;

    fn db() -> Database {
        let mut db = Database::new();
        db.add(Relation::from_pairs(
            "R",
            vec![(1, 2), (2, 3), (1, 3), (3, 1), (2, 1), (4, 2)],
        ))
        .unwrap();
        db.add(Relation::from_pairs(
            "S",
            vec![(2, 3), (3, 1), (3, 2), (1, 2), (2, 4)],
        ))
        .unwrap();
        db.add(Relation::from_pairs(
            "T",
            vec![(3, 1), (1, 2), (2, 3), (2, 1), (4, 4)],
        ))
        .unwrap();
        db
    }

    #[test]
    fn agrees_with_naive_on_triangle_patterns() {
        let db = db();
        for pattern in ["fff", "bff", "fbf", "ffb", "bbf", "bfb", "bbb"] {
            let v = parse_adorned("Q(x,y,z) :- R(x,y), S(y,z), T(z,x)", pattern).unwrap();
            let nb = pattern.chars().filter(|c| *c == 'b').count();
            let mut reqs: Vec<Vec<Value>> = vec![vec![]];
            for _ in 0..nb {
                reqs = reqs
                    .iter()
                    .flat_map(|r| {
                        (0..6u64).map(move |x| {
                            let mut r2 = r.clone();
                            r2.push(x);
                            r2
                        })
                    })
                    .collect();
            }
            for req in reqs {
                assert_eq!(
                    evaluate_view_hash(&v, &db, &req).unwrap(),
                    evaluate_view(&v, &db, &req).unwrap(),
                    "pattern {pattern} req {req:?}"
                );
            }
        }
    }

    #[test]
    fn handles_constants_and_repeats() {
        let db = db();
        let v = parse_adorned("Q(x) :- R(x, 3)", "f").unwrap();
        assert_eq!(
            evaluate_view_hash(&v, &db, &[]).unwrap(),
            evaluate_view(&v, &db, &[]).unwrap()
        );
        let mut db2 = Database::new();
        db2.add(Relation::from_pairs("R", vec![(1, 1), (1, 2), (2, 2)]))
            .unwrap();
        let v = parse_adorned("Q(x) :- R(x, x)", "f").unwrap();
        assert_eq!(
            evaluate_view_hash(&v, &db2, &[]).unwrap(),
            vec![vec![1], vec![2]]
        );
    }

    #[test]
    fn cartesian_product_atoms() {
        // Atoms sharing no variables: a cross product.
        let mut db = Database::new();
        db.add(Relation::from_pairs("A", vec![(1, 2), (3, 4)]))
            .unwrap();
        db.add(Relation::from_pairs("B", vec![(5, 6)])).unwrap();
        let v = parse_adorned("Q(a,b,c,d) :- A(a,b), B(c,d)", "ffff").unwrap();
        let out = evaluate_view_hash(&v, &db, &[]).unwrap();
        assert_eq!(out, vec![vec![1, 2, 5, 6], vec![3, 4, 5, 6]]);
    }

    #[test]
    fn bound_head_vars_pushed_into_scan() {
        let db = db();
        let v = parse_adorned("Q(x,y,z) :- R(x,y), S(y,z), T(z,x)", "bbb").unwrap();
        assert_eq!(
            evaluate_view_hash(&v, &db, &[1, 2, 3]).unwrap(),
            vec![Vec::<Value>::new()]
        );
        assert!(evaluate_view_hash(&v, &db, &[1, 2, 2]).unwrap().is_empty());
    }
}
