//! LSD radix sorting of row permutations.
//!
//! Every sorted structure in this crate — [`crate::Relation`]'s row order,
//! every [`crate::SortedIndex`] — is produced by sorting a `u32` row
//! permutation lexicographically under some column order. A comparison sort
//! pays `O(n log n)` calls through a permutation indirection (two random
//! reads per comparison); for `u64` keys an LSD radix sort replaces that
//! with `O(n · bytes)` sequential counting-sort passes, where `bytes` is
//! the number of *significant* bytes of each column (interned domains are
//! small, so most columns need one or two passes). Lexicographic order
//! falls out of stability: columns are processed last to first, and within
//! a column bytes least-significant first.
//!
//! [`sort_perm`] picks the algorithm: tiny inputs and high arities (where
//! `n · Σ bytes` loses to `n log n`) fall back to the comparison sort, so
//! callers always get the cheaper of the two.

use cqc_common::value::Value;

/// Number of buckets per counting-sort pass (one byte at a time).
const BUCKETS: usize = 256;

/// Inputs below this length use the comparison sort: counting-sort
/// histograms dominate the cost of sorting a handful of rows.
const SMALL_N: usize = 64;

/// Sorts `perm` so that rows compare lexicographically under the
/// depth-major key columns `cols` (all of length `perm.len()`; column 0 is
/// the most significant). Equal rows may land in any relative order — every
/// caller treats full-key duplicates as identical.
///
/// Chooses LSD radix passes over the significant bytes of each column when
/// that is cheaper than a comparison sort, and the comparison sort
/// otherwise (tiny `n`, or total radix passes exceeding the comparison
/// depth — the "high arity" regime).
pub(crate) fn sort_perm(perm: &mut [u32], cols: &[Vec<Value>]) {
    let n = perm.len();
    if n <= 1 {
        return;
    }
    // Significant bytes per column, from each column's maximum value.
    let sig_bytes = |col: &Vec<Value>| -> u32 {
        let max = col.iter().copied().max().unwrap_or(0);
        (u64::BITS - max.leading_zeros()).div_ceil(8).max(1)
    };
    let total_passes: u32 = cols.iter().map(sig_bytes).sum();
    // Comparison cost ≈ n · log₂ n probe pairs; radix cost ≈ n ·
    // total_passes bucket moves. The constant factors are close enough
    // that comparing the exponents directly picks the right side.
    let log2n = usize::BITS - n.leading_zeros();
    if n < SMALL_N || total_passes > 2 * log2n {
        perm.sort_unstable_by(|&a, &b| {
            for col in cols {
                match col[a as usize].cmp(&col[b as usize]) {
                    std::cmp::Ordering::Equal => continue,
                    other => return other,
                }
            }
            std::cmp::Ordering::Equal
        });
        return;
    }

    // LSD over columns (last to first) and bytes (least significant
    // first); each pass is a stable counting sort of (perm, key) pairs.
    // Keys are gathered once per column so every pass reads sequentially.
    let mut keys: Vec<Value> = Vec::with_capacity(n);
    let mut perm_out: Vec<u32> = vec![0; n];
    let mut keys_out: Vec<Value> = vec![0; n];
    for col in cols.iter().rev() {
        keys.clear();
        keys.extend(perm.iter().map(|&r| col[r as usize]));
        for byte in 0..sig_bytes(col) {
            let shift = 8 * byte;
            let mut hist = [0usize; BUCKETS];
            for &k in &keys {
                hist[((k >> shift) & 0xff) as usize] += 1;
            }
            // A constant byte plane permutes nothing: skip the scatter.
            if hist.contains(&n) {
                continue;
            }
            let mut offsets = [0usize; BUCKETS];
            let mut acc = 0usize;
            for (o, &h) in offsets.iter_mut().zip(&hist) {
                *o = acc;
                acc += h;
            }
            for (&p, &k) in perm.iter().zip(&keys) {
                let slot = &mut offsets[((k >> shift) & 0xff) as usize];
                perm_out[*slot] = p;
                keys_out[*slot] = k;
                *slot += 1;
            }
            perm.copy_from_slice(&perm_out);
            keys.copy_from_slice(&keys_out);
        }
    }
}

/// `true` when the depth-major columns are already in (weak) lexicographic
/// order — the adoption fast path: a sorted input skips the sort entirely.
pub(crate) fn columns_sorted(cols: &[Vec<Value>], n: usize) -> bool {
    'rows: for i in 1..n {
        for col in cols {
            match col[i - 1].cmp(&col[i]) {
                std::cmp::Ordering::Less => continue 'rows,
                std::cmp::Ordering::Equal => continue,
                std::cmp::Ordering::Greater => return false,
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference: plain comparison sort of the permutation.
    fn reference(perm: &mut [u32], cols: &[Vec<Value>]) {
        perm.sort_by(|&a, &b| {
            cols.iter()
                .map(|c| c[a as usize].cmp(&c[b as usize]))
                .find(|o| *o != std::cmp::Ordering::Equal)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
    }

    /// Materializes the sorted rows (duplicate rows are identical, so the
    /// row sequence is canonical even where the permutation is not).
    fn rows_of(perm: &[u32], cols: &[Vec<Value>]) -> Vec<Vec<Value>> {
        perm.iter()
            .map(|&r| cols.iter().map(|c| c[r as usize]).collect())
            .collect()
    }

    fn lcg(state: &mut u64, m: u64) -> u64 {
        *state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (*state >> 33) % m
    }

    #[test]
    fn radix_matches_comparison_across_shapes() {
        let mut state = 0xc0ffee_u64;
        for trial in 0..40 {
            let arity = 1 + trial % 4;
            let n = [3usize, 50, 200, 1000][trial % 4usize];
            // Mix tiny and large value domains to cover 1..8-byte passes.
            let domain = [7u64, 300, 70_000, u64::MAX / 2][(trial / 4) % 4];
            let cols: Vec<Vec<Value>> = (0..arity)
                .map(|_| (0..n).map(|_| lcg(&mut state, domain.max(1))).collect())
                .collect();
            let mut radix: Vec<u32> = (0..n as u32).collect();
            let mut cmp = radix.clone();
            sort_perm(&mut radix, &cols);
            reference(&mut cmp, &cols);
            assert_eq!(
                rows_of(&radix, &cols),
                rows_of(&cmp, &cols),
                "trial {trial} (n={n}, arity={arity}, domain={domain})"
            );
        }
    }

    #[test]
    fn duplicate_heavy_input() {
        let cols = vec![vec![1u64; 500], (0..500).map(|i| i % 3).collect()];
        let mut perm: Vec<u32> = (0..500).collect();
        let mut cmp = perm.clone();
        sort_perm(&mut perm, &cols);
        reference(&mut cmp, &cols);
        assert_eq!(rows_of(&perm, &cols), rows_of(&cmp, &cols));
    }

    #[test]
    fn sorted_detection() {
        let cols = vec![vec![1u64, 1, 2, 2], vec![1u64, 2, 1, 1]];
        assert!(columns_sorted(&cols, 4));
        let unsorted = vec![vec![1u64, 1, 2, 2], vec![2u64, 1, 1, 1]];
        assert!(!columns_sorted(&unsorted, 4));
        assert!(columns_sorted(&[], 0));
        assert!(columns_sorted(&cols, 1));
    }

    #[test]
    fn empty_and_single() {
        let mut perm: Vec<u32> = vec![];
        sort_perm(&mut perm, &[]);
        let cols = vec![vec![9u64]];
        let mut perm = vec![0u32];
        sort_perm(&mut perm, &cols);
        assert_eq!(perm, vec![0]);
    }
}
