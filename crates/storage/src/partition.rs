//! Hash partitioning of databases into disjoint shard sub-databases.
//!
//! The paper's structures compose over disjoint sub-instances: a compressed
//! representation built per shard still answers its shard's output with the
//! same delay guarantees, so partitioning the database lets one engine span
//! cores. A [`PartitionSpec`] assigns every relation either a **hash
//! column** (rows are routed to `shard = hash(row[col]) % S`) or
//! **replication** (the full relation lives in every shard). When all
//! hashed columns carry the *same* query variable, every answer valuation
//! is witnessed in exactly one shard — the shard owning the valuation's
//! value for that variable — so the union of per-shard answers is exactly
//! the full answer set, with no duplicates (see
//! `cqc_engine::ShardedEngine`).
//!
//! A [`Partitioning`] also routes [`Delta`]s: a delta splits into per-shard
//! deltas that touch only the shards owning their rows, which is what keeps
//! shard epochs independent — the global database version is simply the
//! vector of shard epochs.

use crate::database::Database;
use crate::delta::Delta;
use crate::relation::Relation;
use cqc_common::error::{CqcError, Result};
use cqc_common::hash::FastMap;
use cqc_common::value::Value;

/// How one relation is distributed across shards.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardAssignment {
    /// Rows are routed by the hash of the value in this schema column.
    Hash(usize),
    /// The full relation is copied into every shard (shared storage).
    Replicate,
}

/// Per-relation shard assignments. Relations not listed are replicated.
#[derive(Debug, Clone, Default)]
pub struct PartitionSpec {
    by_relation: FastMap<String, ShardAssignment>,
}

impl PartitionSpec {
    /// An empty spec (everything replicated).
    pub fn new() -> PartitionSpec {
        PartitionSpec::default()
    }

    /// Assigns `relation` to be hash-partitioned by schema column `col`.
    pub fn hash(mut self, relation: &str, col: usize) -> PartitionSpec {
        self.by_relation
            .insert(relation.to_string(), ShardAssignment::Hash(col));
        self
    }

    /// Explicitly marks `relation` replicated (the default for unlisted
    /// relations; listing it documents intent and survives merges).
    pub fn replicate(mut self, relation: &str) -> PartitionSpec {
        self.by_relation
            .insert(relation.to_string(), ShardAssignment::Replicate);
        self
    }

    /// The assignment of `relation` ([`ShardAssignment::Replicate`] when
    /// unlisted).
    pub fn assignment(&self, relation: &str) -> ShardAssignment {
        self.by_relation
            .get(relation)
            .copied()
            .unwrap_or(ShardAssignment::Replicate)
    }

    /// Number of hash-partitioned relations.
    pub fn num_hashed(&self) -> usize {
        self.by_relation
            .values()
            .filter(|a| matches!(a, ShardAssignment::Hash(_)))
            .count()
    }

    /// The listed `(relation, assignment)` pairs, sorted by name (for
    /// deterministic reporting).
    pub fn assignments(&self) -> Vec<(&str, ShardAssignment)> {
        let mut v: Vec<(&str, ShardAssignment)> = self
            .by_relation
            .iter()
            .map(|(n, a)| (n.as_str(), *a))
            .collect();
        v.sort_unstable_by_key(|(n, _)| *n);
        v
    }
}

/// The shard a value routes to: a splitmix64-style finalizer keeps the
/// routing independent of the value distribution (sequential ids would
/// otherwise land consecutive values in one shard under plain modulo).
#[inline]
pub fn shard_of_value(v: Value, shards: usize) -> usize {
    let mut x = v.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^= x >> 31;
    (x % shards as u64) as usize
}

/// A spec bound to a concrete shard count: splits databases and deltas.
#[derive(Debug, Clone)]
pub struct Partitioning {
    spec: PartitionSpec,
    shards: usize,
}

impl Partitioning {
    /// Binds `spec` to `shards` sub-databases.
    ///
    /// # Errors
    ///
    /// [`CqcError::Config`] when `shards == 0`.
    pub fn new(spec: PartitionSpec, shards: usize) -> Result<Partitioning> {
        if shards == 0 {
            return Err(CqcError::Config("a partitioning needs ≥ 1 shard".into()));
        }
        Ok(Partitioning { spec, shards })
    }

    /// The shard count.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The underlying spec.
    pub fn spec(&self) -> &PartitionSpec {
        &self.spec
    }

    /// The shard owning `tuple` of `relation`, or `None` when the relation
    /// is replicated (the tuple lives in every shard).
    pub fn shard_of_tuple(&self, relation: &str, tuple: &[Value]) -> Result<Option<usize>> {
        match self.spec.assignment(relation) {
            ShardAssignment::Replicate => Ok(None),
            ShardAssignment::Hash(col) => {
                let Some(&v) = tuple.get(col) else {
                    return Err(CqcError::Schema(format!(
                        "hash column {col} out of range for a {}-tuple of `{relation}`",
                        tuple.len()
                    )));
                };
                Ok(Some(shard_of_value(v, self.shards)))
            }
        }
    }

    /// Splits `db` into `shards` disjoint sub-databases: hashed relations
    /// are partitioned row by row (each sub-relation inherits sorted order,
    /// so no re-sort happens), replicated relations share one allocation
    /// across all shards via [`Database::add_arc`]. Every shard contains
    /// every relation name, so schema checks behave identically per shard.
    ///
    /// # Errors
    ///
    /// [`CqcError::Schema`] when a hash column is out of range for its
    /// relation.
    pub fn split_database(&self, db: &Database) -> Result<Vec<Database>> {
        let mut out: Vec<Database> = (0..self.shards).map(|_| Database::new()).collect();
        for rel in db.relations() {
            match self.spec.assignment(rel.name()) {
                ShardAssignment::Replicate => {
                    let shared = db
                        .get_arc(rel.name())
                        .expect("relation iterated from this database");
                    for shard in &mut out {
                        shard.add_arc(std::sync::Arc::clone(&shared))?;
                    }
                }
                ShardAssignment::Hash(col) => {
                    if col >= rel.arity() {
                        return Err(CqcError::Schema(format!(
                            "hash column {col} out of range for relation `{}` (arity {})",
                            rel.name(),
                            rel.arity()
                        )));
                    }
                    let mut flats: Vec<Vec<Value>> = (0..self.shards).map(|_| Vec::new()).collect();
                    for row in rel.iter() {
                        flats[shard_of_value(row[col], self.shards)].extend_from_slice(row);
                    }
                    for (shard, flat) in out.iter_mut().zip(flats) {
                        shard.add(Relation::from_flat(rel.name(), rel.arity(), flat))?;
                    }
                }
            }
        }
        Ok(out)
    }

    /// Splits a delta into one delta per shard: hashed tuples (inserts and
    /// removes alike) route to the single shard owning them, replicated
    /// tuples go to every shard. A shard whose delta comes back empty is
    /// untouched by the update — its epoch must not move, which is what
    /// keeps cross-shard catalog entries independently valid.
    ///
    /// # Errors
    ///
    /// [`CqcError::Schema`] when a hash column is out of range for a tuple.
    pub fn split_delta(&self, delta: &Delta) -> Result<Vec<Delta>> {
        let mut out: Vec<Delta> = (0..self.shards).map(|_| Delta::new()).collect();
        for (name, tuples) in delta.groups() {
            for t in tuples {
                match self.shard_of_tuple(name, t)? {
                    Some(s) => out[s].insert(name, t.clone()),
                    None => {
                        for d in &mut out {
                            d.insert(name, t.clone());
                        }
                    }
                }
            }
        }
        for (name, tuples) in delta.remove_groups() {
            for t in tuples {
                match self.shard_of_tuple(name, t)? {
                    Some(s) => out[s].remove(name, t.clone()),
                    None => {
                        for d in &mut out {
                            d.remove(name, t.clone());
                        }
                    }
                }
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn db() -> Database {
        let mut db = Database::new();
        db.add(Relation::from_pairs(
            "R",
            (0..40u64).map(|i| (i % 7, i % 11)),
        ))
        .unwrap();
        db.add(Relation::from_pairs(
            "S",
            (0..30u64).map(|i| (i % 11, i % 5)),
        ))
        .unwrap();
        db.add(Relation::from_pairs("T", vec![(1, 2), (3, 4)]))
            .unwrap();
        db
    }

    fn spec() -> PartitionSpec {
        // Partition R and S on the columns of a shared variable (R.1 = S.0),
        // replicate T.
        PartitionSpec::new()
            .hash("R", 1)
            .hash("S", 0)
            .replicate("T")
    }

    #[test]
    fn split_is_disjoint_and_complete() {
        let db = db();
        for shards in [1usize, 2, 4, 7] {
            let p = Partitioning::new(spec(), shards).unwrap();
            let subs = p.split_database(&db).unwrap();
            assert_eq!(subs.len(), shards);
            for name in ["R", "S"] {
                let full = db.get(name).unwrap();
                let total: usize = subs.iter().map(|s| s.get(name).unwrap().len()).sum();
                assert_eq!(total, full.len(), "{name} at {shards} shards");
                for row in full.iter() {
                    let holders = subs
                        .iter()
                        .filter(|s| s.get(name).unwrap().contains(row))
                        .count();
                    assert_eq!(holders, 1, "{name} row {row:?} at {shards} shards");
                }
            }
            // Replicated relation is in every shard, sharing storage.
            for s in &subs {
                assert_eq!(s.get("T").unwrap().len(), 2);
                assert!(std::ptr::eq(s.get("T").unwrap(), db.get("T").unwrap()));
            }
        }
    }

    #[test]
    fn rows_agreeing_on_hash_column_land_together() {
        let db = db();
        let p = Partitioning::new(spec(), 4).unwrap();
        let subs = p.split_database(&db).unwrap();
        // Every R row with second component v and every S row with first
        // component v must live in the same shard — the join-locality
        // property sharded serving relies on.
        for v in 0..11u64 {
            let expect = shard_of_value(v, 4);
            for (si, sub) in subs.iter().enumerate() {
                let r_here = sub.get("R").unwrap().iter().any(|r| r[1] == v);
                let s_here = sub.get("S").unwrap().iter().any(|r| r[0] == v);
                if si != expect {
                    assert!(!r_here && !s_here, "value {v} leaked into shard {si}");
                }
            }
        }
    }

    #[test]
    fn delta_routes_to_owning_shards_only() {
        let p = Partitioning::new(spec(), 4).unwrap();
        let mut delta = Delta::new();
        delta.insert("R", vec![100, 3]);
        delta.insert("S", vec![3, 100]);
        delta.insert("T", vec![9, 9]);
        let split = p.split_delta(&delta).unwrap();
        let owner = shard_of_value(3, 4);
        for (si, d) in split.iter().enumerate() {
            // T is replicated: every shard sees it.
            assert!(d.touches("T"));
            // R and S rows with the shared value 3 go only to its owner.
            assert_eq!(d.touches("R"), si == owner);
            assert_eq!(d.touches("S"), si == owner);
        }
        // Applying the split deltas to split databases matches applying the
        // original to the full database.
        let mut full = db();
        let subs = p.split_database(&full).unwrap();
        let mut subs: Vec<Database> = subs;
        full.apply(&delta).unwrap();
        for (s, d) in subs.iter_mut().zip(&split) {
            s.apply(d).unwrap();
        }
        for name in ["R", "S"] {
            let total: usize = subs.iter().map(|s| s.get(name).unwrap().len()).sum();
            assert_eq!(total, full.get(name).unwrap().len());
        }
    }

    #[test]
    fn delta_removes_route_like_inserts() {
        let p = Partitioning::new(spec(), 4).unwrap();
        let mut full = db();
        let mut subs = p.split_database(&full).unwrap();
        // Remove one hashed row each from R and S plus one replicated row,
        // and insert a fresh hashed row — a genuinely mixed delta.
        let mut delta = Delta::new();
        delta.remove("R", vec![0, 0]); // present: (0 % 7, 0 % 11)
        delta.remove("S", vec![0, 0]); // present: (0 % 11, 0 % 5)
        delta.remove("T", vec![1, 2]);
        delta.insert("R", vec![100, 3]);
        let split = p.split_delta(&delta).unwrap();
        let owner0 = shard_of_value(0, 4);
        for (si, d) in split.iter().enumerate() {
            assert!(d.touches("T"), "replicated remove reaches shard {si}");
            assert_eq!(
                d.removes_for("R").is_some_and(|ts| !ts.is_empty()),
                si == owner0
            );
        }
        full.apply(&delta).unwrap();
        for (s, d) in subs.iter_mut().zip(&split) {
            s.apply(d).unwrap();
        }
        for name in ["R", "S"] {
            let total: usize = subs.iter().map(|s| s.get(name).unwrap().len()).sum();
            assert_eq!(total, full.get(name).unwrap().len(), "{name}");
        }
        for s in &subs {
            assert!(!s.get("T").unwrap().contains(&[1, 2]));
        }
    }

    #[test]
    fn epoch_moves_only_on_touched_shards() {
        let p = Partitioning::new(spec(), 4).unwrap();
        let db = db();
        let mut subs = p.split_database(&db).unwrap();
        let before: Vec<_> = subs.iter().map(Database::epoch).collect();
        let mut delta = Delta::new();
        delta.insert("R", vec![55, 3]); // owner = shard_of_value(3, 4)
        let split = p.split_delta(&delta).unwrap();
        for (s, d) in subs.iter_mut().zip(&split) {
            s.apply(d).unwrap();
        }
        let owner = shard_of_value(3, 4);
        for (si, (s, b)) in subs.iter().zip(&before).enumerate() {
            if si == owner {
                assert!(s.epoch() > *b, "owner shard must bump");
            } else {
                assert_eq!(s.epoch(), *b, "untouched shard must not bump");
            }
        }
    }

    #[test]
    fn invalid_configs_rejected() {
        assert!(Partitioning::new(PartitionSpec::new(), 0).is_err());
        let p = Partitioning::new(PartitionSpec::new().hash("R", 9), 2).unwrap();
        assert!(p.split_database(&db()).is_err());
        let mut delta = Delta::new();
        delta.insert("R", vec![1, 2]);
        assert!(p.split_delta(&delta).is_err());
    }

    #[test]
    fn spec_introspection() {
        let s = spec();
        assert_eq!(s.num_hashed(), 2);
        assert_eq!(s.assignment("R"), ShardAssignment::Hash(1));
        assert_eq!(s.assignment("T"), ShardAssignment::Replicate);
        assert_eq!(s.assignment("Unlisted"), ShardAssignment::Replicate);
        assert_eq!(s.assignments().len(), 3);
        // Hash routing is deterministic and in range.
        for v in 0..100u64 {
            let s1 = shard_of_value(v, 7);
            assert!(s1 < 7);
            assert_eq!(s1, shard_of_value(v, 7));
        }
    }
}
