//! String interning for loading real-world datasets.
//!
//! The engine works over `u64` values; the examples (co-author graphs,
//! social networks) carry string identities. The [`Interner`] provides the
//! bidirectional mapping.

use cqc_common::hash::FastMap;
use cqc_common::heap::HeapSize;
use cqc_common::value::Value;

/// A bidirectional string ↔ value mapping.
#[derive(Debug, Clone, Default)]
pub struct Interner {
    by_name: FastMap<String, Value>,
    names: Vec<String>,
}

impl Interner {
    /// Creates an empty interner.
    pub fn new() -> Interner {
        Interner::default()
    }

    /// Interns a string, returning its stable value. Idempotent.
    pub fn intern(&mut self, s: &str) -> Value {
        if let Some(&v) = self.by_name.get(s) {
            return v;
        }
        let v = self.names.len() as Value;
        self.by_name.insert(s.to_string(), v);
        self.names.push(s.to_string());
        v
    }

    /// The value previously assigned to `s`, if any.
    pub fn get(&self, s: &str) -> Option<Value> {
        self.by_name.get(s).copied()
    }

    /// The string behind a value, if it was produced by this interner.
    pub fn resolve(&self, v: Value) -> Option<&str> {
        self.names.get(v as usize).map(String::as_str)
    }

    /// Number of interned strings.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// `true` if nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }
}

impl HeapSize for Interner {
    fn heap_bytes(&self) -> usize {
        let names: usize = self
            .names
            .iter()
            .map(|n| n.heap_bytes() + std::mem::size_of::<String>())
            .sum();
        let map: usize = self
            .by_name
            .keys()
            .map(|k| k.heap_bytes() + std::mem::size_of::<(String, Value)>())
            .sum();
        names + map
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_roundtrip() {
        let mut i = Interner::new();
        let alice = i.intern("alice");
        let bob = i.intern("bob");
        assert_ne!(alice, bob);
        assert_eq!(i.intern("alice"), alice);
        assert_eq!(i.len(), 2);
        assert_eq!(i.resolve(alice), Some("alice"));
        assert_eq!(i.resolve(bob), Some("bob"));
        assert_eq!(i.resolve(99), None);
        assert_eq!(i.get("alice"), Some(alice));
        assert_eq!(i.get("carol"), None);
    }
}
