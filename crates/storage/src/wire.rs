//! The canonical [`Delta`] wire codec.
//!
//! One byte layout, two consumers: the network `Update` message
//! (`cqc-net`'s protocol layer delegates here so the frames PR 6 shipped
//! stay byte-identical) and the durable write-ahead log (`cqc-durable`
//! stamps each record with an epoch and appends these same bytes). Keeping
//! the codec next to [`Delta`] itself means a delta that was logged to
//! disk and a delta that arrived over a socket replay through the exact
//! same parser — one set of bound checks, one set of corruption tests.
//!
//! Layout (all integers little endian, `str` is `u32 len | UTF-8 bytes`):
//!
//! ```text
//! insert section:  u32 groups | per group: str rel, u16 arity, u32 rows,
//!                                          rows × arity u64
//! removes section: same shape; present iff the delta carries removals or
//!                  the caller forces it out (see `put_delta`)
//! ```
//!
//! Insert-only deltas encode with no removes section at all — exactly the
//! pre-deletion protocol-version-1 layout — which is what keeps older
//! peers parsing newer encoders. [`read_delta`] mirrors the rule: the
//! insert section always, a removes section iff bytes remain in the
//! reader.

use crate::delta::Delta;
use cqc_common::error::Result;
use cqc_common::frame::{PayloadReader, PayloadWriter};
use cqc_common::Value;

fn put_section(w: &mut PayloadWriter, groups: &[(&str, &[Vec<Value>])]) {
    w.put_u32(groups.len() as u32);
    for (rel, tuples) in groups {
        w.put_str(rel)
            .put_u16(tuples[0].len() as u16)
            .put_u32(tuples.len() as u32);
        for t in *tuples {
            w.put_values(t);
        }
    }
}

/// Appends `delta` to `w` (which is **not** cleared — callers own the
/// surrounding payload): the insert section, then — when the delta
/// carries removals or `force_removes` is set — an identically shaped
/// removes section. Empty groups are dropped (they carry no information
/// and a zero arity would be ambiguous).
///
/// `force_removes` exists for encodings that append a further tail after
/// the delta (the preconditioned network update): the removes section
/// must then be present — possibly with zero groups — so the tail cannot
/// be misread as removes.
pub fn put_delta(w: &mut PayloadWriter, delta: &Delta, force_removes: bool) {
    let inserts: Vec<(&str, &[Vec<Value>])> =
        delta.groups().filter(|(_, ts)| !ts.is_empty()).collect();
    let removes: Vec<(&str, &[Vec<Value>])> = delta
        .remove_groups()
        .filter(|(_, ts)| !ts.is_empty())
        .collect();
    put_section(w, &inserts);
    if !removes.is_empty() || force_removes {
        put_section(w, &removes);
    }
}

/// Reads a [`Delta`] back out of `r`: the insert section always, then a
/// removes section iff bytes remain (insert-only encoders simply end
/// after the first section). Callers with a further tail after the delta
/// must have encoded with `force_removes` (see [`put_delta`]); bytes
/// remaining after this call are theirs to consume.
///
/// # Errors
///
/// [`cqc_common::frame::code::BAD_FRAME`] on truncation, non-UTF-8
/// relation names, or a tuple row that ends mid-value.
pub fn read_delta(r: &mut PayloadReader<'_>) -> Result<Delta> {
    let mut delta = Delta::new();
    for removes in [false, true] {
        if removes && r.remaining() == 0 {
            break;
        }
        let ngroups = r.get_u32()? as usize;
        for _ in 0..ngroups {
            let rel = r.get_str()?.to_string();
            let arity = r.get_u16()? as usize;
            let rows = r.get_u32()? as usize;
            for _ in 0..rows {
                let mut t = Vec::with_capacity(arity);
                r.get_values(arity, &mut t)?;
                if removes {
                    delta.remove(&rel, t);
                } else {
                    delta.insert(&rel, t);
                }
            }
        }
    }
    Ok(delta)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(delta: &Delta) -> Delta {
        let mut w = PayloadWriter::new();
        w.start();
        put_delta(&mut w, delta, false);
        let mut r = PayloadReader::new(w.bytes());
        let back = read_delta(&mut r).unwrap();
        assert_eq!(r.remaining(), 0, "codec must consume what it wrote");
        back
    }

    #[test]
    fn insert_only_and_mixed_deltas_round_trip() {
        let mut delta = Delta::new();
        delta.insert("R", vec![1, 2]);
        delta.insert("R", vec![3, 4]);
        delta.insert("S", vec![5, 6, 7]);
        assert_eq!(round_trip(&delta), delta);
        delta.remove("R", vec![9, 9]);
        delta.remove("T", vec![8]);
        assert_eq!(round_trip(&delta), delta);
        // Remove-only: the insert section is present but empty.
        let mut delta = Delta::new();
        delta.remove("S", vec![5, 6]);
        assert_eq!(round_trip(&delta), delta);
        assert_eq!(round_trip(&Delta::new()), Delta::new());
    }

    #[test]
    fn forced_removes_section_keeps_a_tail_parseable() {
        let mut delta = Delta::new();
        delta.insert("R", vec![1, 2]);
        let mut w = PayloadWriter::new();
        w.start();
        put_delta(&mut w, &delta, true);
        w.put_u64(0xDEAD_BEEF); // a caller-owned tail
        let mut r = PayloadReader::new(w.bytes());
        assert_eq!(read_delta(&mut r).unwrap(), delta);
        assert_eq!(r.get_u64().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn truncated_bytes_are_typed_errors() {
        let mut delta = Delta::new();
        delta.insert("R", vec![1, 2]);
        let mut w = PayloadWriter::new();
        w.start();
        put_delta(&mut w, &delta, false);
        let bytes = w.bytes();
        for cut in 1..bytes.len() {
            let mut r = PayloadReader::new(&bytes[..bytes.len() - cut]);
            // Some prefixes happen to parse as a shorter valid delta (the
            // layout is self-delimiting only per section); what must never
            // happen is a panic or an untyped error.
            if let Err(e) = read_delta(&mut r) {
                assert!(
                    matches!(
                        e,
                        cqc_common::CqcError::Protocol {
                            code: cqc_common::frame::code::BAD_FRAME,
                            ..
                        }
                    ),
                    "{e}"
                );
            }
        }
    }
}
