//! The database catalog.

use crate::delta::Delta;
use crate::relation::Relation;
use cqc_common::error::{CqcError, Result};
use cqc_common::hash::FastMap;
use cqc_common::heap::HeapSize;
use std::sync::Arc;

/// Index of a relation inside a [`Database`].
pub type RelationId = usize;

/// A monotone version counter: every mutation of a [`Database`] — adding a
/// relation or applying a [`Delta`] — bumps it. Consumers (the engine's
/// representation catalog) stamp derived artifacts with the epoch they were
/// built at and treat a smaller stamp as stale.
pub type Epoch = u64;

/// A database instance `D`: a named collection of relations, versioned by
/// an [`Epoch`] counter.
///
/// Relations are held behind `Arc`, so cloning a database — the engine
/// snapshots one per applied delta — copies `O(#relations)` pointers, and
/// [`Database::apply`] copies only the relations the delta actually
/// touches (copy-on-write via [`Arc::make_mut`]), never the whole `|D|`.
#[derive(Debug, Clone, Default)]
pub struct Database {
    relations: Vec<Arc<Relation>>,
    by_name: FastMap<String, RelationId>,
    epoch: Epoch,
}

impl Database {
    /// Creates an empty database (epoch 0).
    pub fn new() -> Database {
        Database::default()
    }

    /// The current version of the database. Strictly increases with every
    /// successful mutation; queries and representation builds against one
    /// epoch are consistent snapshots.
    pub fn epoch(&self) -> Epoch {
        self.epoch
    }

    /// Adds a relation, returning its id and bumping the epoch.
    ///
    /// # Errors
    ///
    /// Fails if a relation with the same name already exists.
    pub fn add(&mut self, relation: Relation) -> Result<RelationId> {
        self.add_arc(Arc::new(relation))
    }

    /// Adds an already-shared relation, returning its id and bumping the
    /// epoch. The shard partitioner uses this to replicate one relation
    /// into every sub-database without deep-copying its rows; copy-on-write
    /// ([`Database::apply`]) still clones it if a shard-local delta touches
    /// it later.
    ///
    /// # Errors
    ///
    /// Fails if a relation with the same name already exists.
    pub fn add_arc(&mut self, relation: Arc<Relation>) -> Result<RelationId> {
        if self.by_name.contains_key(relation.name()) {
            return Err(CqcError::Schema(format!(
                "relation `{}` already exists",
                relation.name()
            )));
        }
        let id = self.relations.len();
        self.by_name.insert(relation.name().to_string(), id);
        self.relations.push(relation);
        self.epoch += 1;
        Ok(id)
    }

    /// The shared handle of the relation named `name`, if present — the
    /// cheap way to replicate a relation into another database.
    pub fn get_arc(&self, name: &str) -> Option<Arc<Relation>> {
        self.by_name
            .get(name)
            .map(|&id| Arc::clone(&self.relations[id]))
    }

    /// Applies a batched delta (insertions and removals) atomically: every
    /// referenced relation must exist with matching arity or nothing is
    /// changed. Removing an absent tuple is an idempotent no-op. The epoch
    /// is bumped iff at least one tuple was genuinely inserted or removed;
    /// the (possibly unchanged) epoch is returned.
    ///
    /// [`Delta`] keeps its per-relation insert and remove sets disjoint
    /// (last write wins), so the order the two sets are applied in cannot
    /// be observed.
    ///
    /// # Errors
    ///
    /// [`CqcError::Schema`] when a relation is missing or a tuple's arity
    /// mismatches; the database is left untouched.
    pub fn apply(&mut self, delta: &Delta) -> Result<Epoch> {
        // Validate everything before mutating anything (atomicity).
        for (name, tuples) in delta.groups().chain(delta.remove_groups()) {
            let rel = self.require(name)?;
            for t in tuples {
                if t.len() != rel.arity() {
                    return Err(CqcError::Schema(format!(
                        "delta tuple {t:?} has arity {} but relation `{name}` has arity {}",
                        t.len(),
                        rel.arity()
                    )));
                }
            }
        }
        let mut changed = 0usize;
        for (name, tuples) in delta.groups() {
            let id = self.by_name[name];
            // When a snapshot still shares this relation, check for
            // genuinely new tuples (O(k log n)) before `make_mut`: a
            // duplicate-only group must not deep-clone the relation just
            // to discover it had nothing to do. Unshared relations skip
            // the probe — `make_mut` is free there and `insert_tuples`
            // dedupes anyway.
            if Arc::strong_count(&self.relations[id]) > 1
                && tuples.iter().all(|t| self.relations[id].contains(t))
            {
                continue;
            }
            // Copy-on-write: only relations the delta genuinely changes
            // are cloned, and only when a snapshot still shares them.
            changed += Arc::make_mut(&mut self.relations[id]).insert_tuples(tuples);
        }
        for (name, tuples) in delta.remove_groups() {
            let id = self.by_name[name];
            // Same pre-probe in the other direction: a remove group whose
            // tuples are all already absent must not deep-clone a shared
            // relation.
            if Arc::strong_count(&self.relations[id]) > 1
                && tuples.iter().all(|t| !self.relations[id].contains(t))
            {
                continue;
            }
            changed += Arc::make_mut(&mut self.relations[id]).remove_tuples(tuples);
        }
        if changed > 0 {
            self.epoch += 1;
        }
        Ok(self.epoch)
    }

    /// Forces the epoch counter to `epoch` — the durability recovery
    /// hook, and deliberately the *only* non-monotone epoch operation.
    /// Replaying a write-ahead log rebuilds relations through the normal
    /// [`Database::add`]/[`Database::apply`] paths, whose bump-by-one
    /// counting cannot in general land on the persisted epoch (a snapshot
    /// reloads `n` relations in `n` bumps regardless of how many deltas
    /// produced them). Recovery therefore pins the counter to the value
    /// each persisted record carries, so a restarted engine reports
    /// *exactly* its pre-crash version vector.
    pub fn restore_epoch(&mut self, epoch: Epoch) {
        self.epoch = epoch;
    }

    /// Looks a relation up by name.
    pub fn get(&self, name: &str) -> Option<&Relation> {
        self.by_name
            .get(name)
            .map(|&id| self.relations[id].as_ref())
    }

    /// Looks a relation id up by name.
    pub fn id_of(&self, name: &str) -> Option<RelationId> {
        self.by_name.get(name).copied()
    }

    /// The relation with the given id.
    pub fn relation(&self, id: RelationId) -> &Relation {
        self.relations[id].as_ref()
    }

    /// All relations in insertion order.
    pub fn relations(&self) -> impl Iterator<Item = &Relation> + '_ {
        self.relations.iter().map(Arc::as_ref)
    }

    /// Number of relations.
    pub fn num_relations(&self) -> usize {
        self.relations.len()
    }

    /// The paper's input size measure `|D|`: total number of tuples across
    /// all relations.
    pub fn size(&self) -> usize {
        self.relations.iter().map(|r| r.len()).sum()
    }

    /// Fetches a relation by name or fails with a schema error mentioning the
    /// querying context.
    pub fn require(&self, name: &str) -> Result<&Relation> {
        self.get(name)
            .ok_or_else(|| CqcError::Schema(format!("relation `{name}` not found in database")))
    }
}

impl HeapSize for Database {
    fn heap_bytes(&self) -> usize {
        let rels: usize = self
            .relations
            .iter()
            .map(|r| std::mem::size_of::<Relation>() + r.heap_bytes())
            .sum();
        let names: usize = self
            .by_name
            .keys()
            .map(|k| k.heap_bytes() + std::mem::size_of::<(String, RelationId)>())
            .sum();
        rels + names
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_get_size() {
        let mut db = Database::new();
        let r = Relation::from_pairs("R", vec![(1, 2), (2, 3)]);
        let s = Relation::from_pairs("S", vec![(2, 3)]);
        let rid = db.add(r).unwrap();
        let sid = db.add(s).unwrap();
        assert_eq!(db.size(), 3);
        assert_eq!(db.num_relations(), 2);
        assert_eq!(db.id_of("R"), Some(rid));
        assert_eq!(db.relation(sid).name(), "S");
        assert!(db.get("T").is_none());
        assert!(db.require("T").is_err());
        assert_eq!(db.require("R").unwrap().len(), 2);
    }

    #[test]
    fn duplicate_name_rejected() {
        let mut db = Database::new();
        db.add(Relation::from_pairs("R", vec![(1, 2)])).unwrap();
        let err = db.add(Relation::from_pairs("R", vec![(3, 4)]));
        assert!(err.is_err());
    }

    #[test]
    fn epoch_bumps_on_add_and_apply() {
        let mut db = Database::new();
        assert_eq!(db.epoch(), 0);
        db.add(Relation::from_pairs("R", vec![(1, 2)])).unwrap();
        assert_eq!(db.epoch(), 1);

        let mut delta = Delta::new();
        delta.insert("R", vec![2, 3]);
        let e = db.apply(&delta).unwrap();
        assert_eq!(e, 2);
        assert_eq!(db.size(), 2);
        assert!(db.get("R").unwrap().contains(&[2, 3]));

        // A delta of pure duplicates changes nothing and keeps the epoch.
        let e = db.apply(&delta).unwrap();
        assert_eq!(e, 2);
        assert_eq!(db.epoch(), 2);
    }

    #[test]
    fn clone_shares_untouched_relations() {
        let mut db = Database::new();
        db.add(Relation::from_pairs("R", vec![(1, 2)])).unwrap();
        db.add(Relation::from_pairs("S", vec![(3, 4)])).unwrap();
        let snapshot = db.clone();

        let mut delta = Delta::new();
        delta.insert("R", vec![9, 9]);
        db.apply(&delta).unwrap();

        // The snapshot is unchanged, the touched relation diverged, and
        // the untouched relation is still the same allocation.
        assert!(!snapshot.get("R").unwrap().contains(&[9, 9]));
        assert!(db.get("R").unwrap().contains(&[9, 9]));
        assert!(std::ptr::eq(
            db.get("S").unwrap(),
            snapshot.get("S").unwrap()
        ));
        assert!(!std::ptr::eq(
            db.get("R").unwrap(),
            snapshot.get("R").unwrap()
        ));
    }

    #[test]
    fn apply_removes_and_bumps_epoch() {
        let mut db = Database::new();
        db.add(Relation::from_pairs("R", vec![(1, 2), (2, 3), (3, 4)]))
            .unwrap();
        let e0 = db.epoch();

        let mut delta = Delta::new();
        delta.remove("R", vec![2, 3]);
        delta.insert("R", vec![9, 9]);
        let e = db.apply(&delta).unwrap();
        assert_eq!(e, e0 + 1);
        assert_eq!(db.size(), 3);
        assert!(!db.get("R").unwrap().contains(&[2, 3]));
        assert!(db.get("R").unwrap().contains(&[9, 9]));

        // Removing an absent tuple is an idempotent no-op: no epoch bump.
        let mut delta = Delta::new();
        delta.remove("R", vec![2, 3]);
        assert_eq!(db.apply(&delta).unwrap(), e);
        assert_eq!(db.epoch(), e);
    }

    #[test]
    fn remove_copy_on_write_leaves_snapshots_intact() {
        let mut db = Database::new();
        db.add(Relation::from_pairs("R", vec![(1, 2), (2, 3)]))
            .unwrap();
        db.add(Relation::from_pairs("S", vec![(3, 4)])).unwrap();
        let snapshot = db.clone();

        let mut delta = Delta::new();
        delta.remove("R", vec![1, 2]);
        db.apply(&delta).unwrap();
        assert!(snapshot.get("R").unwrap().contains(&[1, 2]));
        assert!(!db.get("R").unwrap().contains(&[1, 2]));
        assert!(std::ptr::eq(
            db.get("S").unwrap(),
            snapshot.get("S").unwrap()
        ));

        // An all-absent remove group must not break sharing.
        let snapshot2 = db.clone();
        let mut noop = Delta::new();
        noop.remove("S", vec![9, 9]);
        db.apply(&noop).unwrap();
        assert!(std::ptr::eq(
            db.get("S").unwrap(),
            snapshot2.get("S").unwrap()
        ));
    }

    #[test]
    fn apply_is_atomic_on_failure() {
        let mut db = Database::new();
        db.add(Relation::from_pairs("R", vec![(1, 2)])).unwrap();
        let before = db.epoch();

        // Missing relation: nothing applied.
        let mut delta = Delta::new();
        delta.insert("R", vec![7, 7]);
        delta.insert("Nope", vec![1]);
        assert!(db.apply(&delta).is_err());
        assert_eq!(db.epoch(), before);
        assert!(!db.get("R").unwrap().contains(&[7, 7]));

        // Arity mismatch: nothing applied.
        let mut delta = Delta::new();
        delta.insert("R", vec![7, 7]);
        delta.insert("R", vec![1, 2, 3]);
        assert!(db.apply(&delta).is_err());
        assert_eq!(db.epoch(), before);
        assert!(!db.get("R").unwrap().contains(&[7, 7]));

        // A bad remove group also blocks the whole delta.
        let mut delta = Delta::new();
        delta.insert("R", vec![7, 7]);
        delta.remove("R", vec![1, 2, 3]);
        assert!(db.apply(&delta).is_err());
        assert_eq!(db.epoch(), before);
        assert!(!db.get("R").unwrap().contains(&[7, 7]));
    }
}
