//! The database catalog.

use crate::relation::Relation;
use cqc_common::error::{CqcError, Result};
use cqc_common::hash::FastMap;
use cqc_common::heap::HeapSize;

/// Index of a relation inside a [`Database`].
pub type RelationId = usize;

/// A database instance `D`: a named collection of relations.
#[derive(Debug, Clone, Default)]
pub struct Database {
    relations: Vec<Relation>,
    by_name: FastMap<String, RelationId>,
}

impl Database {
    /// Creates an empty database.
    pub fn new() -> Database {
        Database::default()
    }

    /// Adds a relation, returning its id.
    ///
    /// # Errors
    ///
    /// Fails if a relation with the same name already exists.
    pub fn add(&mut self, relation: Relation) -> Result<RelationId> {
        if self.by_name.contains_key(relation.name()) {
            return Err(CqcError::Schema(format!(
                "relation `{}` already exists",
                relation.name()
            )));
        }
        let id = self.relations.len();
        self.by_name.insert(relation.name().to_string(), id);
        self.relations.push(relation);
        Ok(id)
    }

    /// Looks a relation up by name.
    pub fn get(&self, name: &str) -> Option<&Relation> {
        self.by_name.get(name).map(|&id| &self.relations[id])
    }

    /// Looks a relation id up by name.
    pub fn id_of(&self, name: &str) -> Option<RelationId> {
        self.by_name.get(name).copied()
    }

    /// The relation with the given id.
    pub fn relation(&self, id: RelationId) -> &Relation {
        &self.relations[id]
    }

    /// All relations in insertion order.
    pub fn relations(&self) -> &[Relation] {
        &self.relations
    }

    /// Number of relations.
    pub fn num_relations(&self) -> usize {
        self.relations.len()
    }

    /// The paper's input size measure `|D|`: total number of tuples across
    /// all relations.
    pub fn size(&self) -> usize {
        self.relations.iter().map(Relation::len).sum()
    }

    /// Fetches a relation by name or fails with a schema error mentioning the
    /// querying context.
    pub fn require(&self, name: &str) -> Result<&Relation> {
        self.get(name)
            .ok_or_else(|| CqcError::Schema(format!("relation `{name}` not found in database")))
    }
}

impl HeapSize for Database {
    fn heap_bytes(&self) -> usize {
        let rels: usize = self
            .relations
            .iter()
            .map(|r| std::mem::size_of::<Relation>() + r.heap_bytes())
            .sum();
        let names: usize = self
            .by_name
            .keys()
            .map(|k| k.heap_bytes() + std::mem::size_of::<(String, RelationId)>())
            .sum();
        rels + names
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_get_size() {
        let mut db = Database::new();
        let r = Relation::from_pairs("R", vec![(1, 2), (2, 3)]);
        let s = Relation::from_pairs("S", vec![(2, 3)]);
        let rid = db.add(r).unwrap();
        let sid = db.add(s).unwrap();
        assert_eq!(db.size(), 3);
        assert_eq!(db.num_relations(), 2);
        assert_eq!(db.id_of("R"), Some(rid));
        assert_eq!(db.relation(sid).name(), "S");
        assert!(db.get("T").is_none());
        assert!(db.require("T").is_err());
        assert_eq!(db.require("R").unwrap().len(), 2);
    }

    #[test]
    fn duplicate_name_rejected() {
        let mut db = Database::new();
        db.add(Relation::from_pairs("R", vec![(1, 2)])).unwrap();
        let err = db.add(Relation::from_pairs("R", vec![(3, 4)]));
        assert!(err.is_err());
    }
}
