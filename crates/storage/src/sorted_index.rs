//! Sorted, column-major relation indexes.
//!
//! A [`SortedIndex`] stores the tuples of a relation sorted lexicographically
//! under an arbitrary attribute permutation, column-major. It serves two
//! masters:
//!
//! 1. **Count probes** (`cqc-core`): the quantities `|R_F(B)|` and
//!    `|R_F(v_b, B)|` of §4.2 constrain a *prefix* of attributes to constants
//!    plus at most one attribute to a value range, so under the right
//!    attribute order they select a contiguous run of rows — two binary
//!    searches, the paper's Õ(1) count oracle.
//! 2. **Trie cursors** (`cqc-join`): the leapfrog trie-join navigates the
//!    sorted runs level by level; this index exposes the per-level columns
//!    and range-narrowing operations the cursors need.

use crate::radix::{columns_sorted, sort_perm};
use crate::relation::Relation;
use cqc_common::heap::HeapSize;
use cqc_common::metrics::{self, BuildPhase};
use cqc_common::util::{lower_bound, upper_bound};
use cqc_common::value::{lex_cmp, Tuple, Value};
use std::time::Instant;

/// A lexicographically sorted projection of a relation under a fixed
/// attribute order.
#[derive(Debug, Clone)]
pub struct SortedIndex {
    /// `order[d]` is the schema column stored at sort depth `d`.
    order: Vec<usize>,
    /// Column-major storage: `cols[d][row]` for rows in sorted order.
    cols: Vec<Vec<Value>>,
    len: usize,
}

impl SortedIndex {
    /// Builds the index for `relation` sorted by the attribute permutation
    /// `order` (`order[d]` = schema column at depth `d`).
    ///
    /// Construction is sort-light: the depth-major columns are gathered in
    /// one sequential pass, an input already sorted under `order` is
    /// adopted as-is (the identity order over a relation's schema-sorted
    /// rows — the most common index), and everything else goes through an
    /// LSD radix permutation sort (comparison fallback for high arities
    /// and tiny inputs) instead of a comparison sort through the row
    /// indirection.
    ///
    /// # Panics
    ///
    /// Panics unless `order` is a permutation of `0..relation.arity()`.
    pub fn build(relation: &Relation, order: &[usize]) -> SortedIndex {
        let arity = relation.arity();
        assert_eq!(order.len(), arity, "order must cover all attributes");
        let mut seen = vec![false; arity];
        for &c in order {
            assert!(c < arity && !seen[c], "order must be a permutation");
            seen[c] = true;
        }

        let n = relation.len();
        let t0 = Instant::now();
        let mut cols: Vec<Vec<Value>> = (0..arity).map(|_| Vec::with_capacity(n)).collect();
        for row in relation.iter() {
            for (d, &c) in order.iter().enumerate() {
                cols[d].push(row[c]);
            }
        }
        let already_sorted = columns_sorted(&cols, n);
        metrics::record_build_phase(BuildPhase::Index, t0.elapsed().as_nanos() as u64);
        if !already_sorted {
            let t0 = Instant::now();
            let mut perm: Vec<u32> = (0..n as u32).collect();
            sort_perm(&mut perm, &cols);
            metrics::record_build_phase(BuildPhase::Sort, t0.elapsed().as_nanos() as u64);
            let t0 = Instant::now();
            for col in &mut cols {
                let gathered = std::mem::take(col);
                *col = perm.iter().map(|&ri| gathered[ri as usize]).collect();
            }
            metrics::record_build_phase(BuildPhase::Index, t0.elapsed().as_nanos() as u64);
        }
        SortedIndex {
            order: order.to_vec(),
            cols,
            len: n,
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` if the index holds no rows.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of sort depths (= relation arity).
    pub fn depth(&self) -> usize {
        self.order.len()
    }

    /// The attribute order (`order[d]` = schema column at depth `d`).
    pub fn order(&self) -> &[usize] {
        &self.order
    }

    /// The sorted column at depth `d`.
    #[inline]
    pub fn col(&self, d: usize) -> &[Value] {
        &self.cols[d]
    }

    /// The value at depth `d` of sorted row `row`.
    #[inline]
    pub fn value(&self, d: usize, row: usize) -> Value {
        self.cols[d][row]
    }

    /// Narrows `[lo, hi)` to the rows whose depth-`d` value equals `v`.
    #[inline]
    pub fn narrow_eq(&self, lo: usize, hi: usize, d: usize, v: Value) -> (usize, usize) {
        let col = &self.cols[d];
        let l = lower_bound(col, lo, hi, v);
        let h = upper_bound(col, l, hi, v);
        (l, h)
    }

    /// Narrows `[lo, hi)` to the rows whose depth-`d` value lies in the
    /// inclusive range `[vlo, vhi]`.
    #[inline]
    pub fn narrow_range(
        &self,
        lo: usize,
        hi: usize,
        d: usize,
        vlo: Value,
        vhi: Value,
    ) -> (usize, usize) {
        if vlo > vhi {
            return (lo, lo);
        }
        let col = &self.cols[d];
        let l = lower_bound(col, lo, hi, vlo);
        let h = upper_bound(col, l, hi, vhi);
        (l, h)
    }

    /// The row range matching a prefix of constants at depths
    /// `0..prefix.len()`.
    pub fn range_of_prefix(&self, prefix: &[Value]) -> (usize, usize) {
        debug_assert!(prefix.len() <= self.depth());
        let mut lo = 0usize;
        let mut hi = self.len;
        for (d, &v) in prefix.iter().enumerate() {
            if lo >= hi {
                break;
            }
            let (l, h) = self.narrow_eq(lo, hi, d, v);
            lo = l;
            hi = h;
        }
        (lo, hi)
    }

    /// `O(log n)` membership test for a schema-order tuple (narrows depth
    /// by depth; no scratch allocation).
    pub fn contains_tuple(&self, tuple: &[Value]) -> bool {
        debug_assert_eq!(tuple.len(), self.depth());
        let mut lo = 0usize;
        let mut hi = self.len;
        for (d, &c) in self.order.iter().enumerate() {
            if lo >= hi {
                return false;
            }
            let (l, h) = self.narrow_eq(lo, hi, d, tuple[c]);
            lo = l;
            hi = h;
        }
        lo < hi
    }

    /// Filters a delta's tuples down to the rows genuinely new to this
    /// index (absent, internal duplicates removed) — exactly the rows
    /// [`SortedIndex::merge_insert`] expects. Returns `None` when a tuple's
    /// arity mismatches the index, in which case the caller should rebuild.
    pub fn fresh_from<'a>(&self, tuples: &'a [Tuple]) -> Option<Vec<&'a Tuple>> {
        let mut fresh: Vec<&Tuple> = Vec::new();
        for t in tuples {
            if t.len() != self.depth() {
                return None;
            }
            if !self.contains_tuple(t) {
                fresh.push(t);
            }
        }
        fresh.sort_unstable_by(|a, b| lex_cmp(a, b));
        fresh.dedup();
        Some(fresh)
    }

    /// Merges `fresh` tuples (schema order, not already present, no
    /// duplicates among them) into the sorted columns in place of a full
    /// rebuild: the fresh rows are sorted under the index's attribute order
    /// (`O(k log k)`) and spliced in with one two-pointer pass whose old-row
    /// runs are located by galloping search — `O(arity · (n + k))` copying,
    /// never an `O(n log n)` re-sort. This is the incremental base-index
    /// maintenance path: a small delta costs a linear splice instead of
    /// re-sorting every linear index from scratch.
    ///
    /// # Panics
    ///
    /// Panics if a fresh tuple's length differs from the index arity.
    pub fn merge_insert(&mut self, fresh: &[impl AsRef<[Value]>]) {
        if fresh.is_empty() {
            return;
        }
        let arity = self.order.len();
        // Fresh rows in depth-major layout, sorted under the index order.
        let mut rows: Vec<Vec<Value>> = fresh
            .iter()
            .map(|t| {
                let t = t.as_ref();
                assert_eq!(t.len(), arity, "tuple arity mismatch in index merge");
                self.order.iter().map(|&c| t[c]).collect()
            })
            .collect();
        rows.sort_unstable_by(|a, b| lex_cmp(a, b));
        // For each fresh row, the number of old rows strictly before it.
        let mut splice: Vec<usize> = Vec::with_capacity(rows.len());
        let mut from = 0usize;
        for row in &rows {
            from = self.gallop_lower_bound(from, row);
            splice.push(from);
        }
        for d in 0..arity {
            let old = std::mem::take(&mut self.cols[d]);
            let mut col = Vec::with_capacity(old.len() + rows.len());
            let mut prev = 0usize;
            for (j, &pos) in splice.iter().enumerate() {
                col.extend_from_slice(&old[prev..pos]);
                col.push(rows[j][d]);
                prev = pos;
            }
            col.extend_from_slice(&old[prev..]);
            self.cols[d] = col;
        }
        self.len += rows.len();
    }

    /// Filters a delta's removal tuples down to the rows genuinely present
    /// in this index (internal duplicates removed) — exactly the rows
    /// [`SortedIndex::merge_remove`] expects. Returns `None` when a tuple's
    /// arity mismatches the index, in which case the caller should rebuild.
    pub fn stale_from<'a>(&self, tuples: &'a [Tuple]) -> Option<Vec<&'a Tuple>> {
        let mut stale: Vec<&Tuple> = Vec::new();
        for t in tuples {
            if t.len() != self.depth() {
                return None;
            }
            if self.contains_tuple(t) {
                stale.push(t);
            }
        }
        stale.sort_unstable_by(|a, b| lex_cmp(a, b));
        stale.dedup();
        Some(stale)
    }

    /// Removes `stale` tuples (schema order, all present, no duplicates
    /// among them) from the sorted columns in place of a full rebuild: the
    /// retraction mirror of [`SortedIndex::merge_insert`]. The stale rows
    /// are sorted under the index's attribute order and their positions
    /// located by the same two-pointer galloping pass; each column is then
    /// compacted in one `O(n)` sweep — never an `O(n log n)` re-sort.
    ///
    /// # Panics
    ///
    /// Panics if a stale tuple's length differs from the index arity, or if
    /// a stale tuple is not present (callers filter via
    /// [`SortedIndex::stale_from`] first).
    pub fn merge_remove(&mut self, stale: &[impl AsRef<[Value]>]) {
        if stale.is_empty() {
            return;
        }
        let arity = self.order.len();
        // Stale rows in depth-major layout, sorted under the index order.
        let mut rows: Vec<Vec<Value>> = stale
            .iter()
            .map(|t| {
                let t = t.as_ref();
                assert_eq!(t.len(), arity, "tuple arity mismatch in index merge");
                self.order.iter().map(|&c| t[c]).collect()
            })
            .collect();
        rows.sort_unstable_by(|a, b| lex_cmp(a, b));
        // For each stale row, its position among the old rows.
        let mut victims: Vec<usize> = Vec::with_capacity(rows.len());
        let mut from = 0usize;
        for row in &rows {
            from = self.gallop_lower_bound(from, row);
            assert!(
                from < self.len && self.cmp_row(from, row) == std::cmp::Ordering::Equal,
                "stale tuple not present in index"
            );
            victims.push(from);
            from += 1;
        }
        for d in 0..arity {
            let old = std::mem::take(&mut self.cols[d]);
            let mut col = Vec::with_capacity(old.len() - victims.len());
            let mut prev = 0usize;
            for &pos in &victims {
                col.extend_from_slice(&old[prev..pos]);
                prev = pos + 1;
            }
            col.extend_from_slice(&old[prev..]);
            self.cols[d] = col;
        }
        self.len -= victims.len();
    }

    /// Lexicographic comparison of sorted row `r` against a depth-major key.
    fn cmp_row(&self, r: usize, key: &[Value]) -> std::cmp::Ordering {
        for (d, &k) in key.iter().enumerate() {
            match self.cols[d][r].cmp(&k) {
                std::cmp::Ordering::Equal => continue,
                other => return other,
            }
        }
        std::cmp::Ordering::Equal
    }

    /// First row `>= key` at or after `from`, found by exponential
    /// (galloping) probing followed by a binary search of the bracketed run
    /// — `O(log gap)` per fresh row, which keeps a whole merge linear.
    fn gallop_lower_bound(&self, from: usize, key: &[Value]) -> usize {
        use std::cmp::Ordering::Less;
        let mut lo = from;
        if lo >= self.len || self.cmp_row(lo, key) != Less {
            return lo;
        }
        // Invariant: row(lo) < key. Find hi with row(hi) >= key (or end).
        let mut step = 1usize;
        let mut hi = lo + 1;
        while hi < self.len && self.cmp_row(hi, key) == Less {
            lo = hi;
            step *= 2;
            hi += step;
        }
        hi = hi.min(self.len);
        while lo + 1 < hi {
            let mid = lo + (hi - lo) / 2;
            if self.cmp_row(mid, key) == Less {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        hi
    }

    /// The paper's count oracle: number of rows whose depth-`0..p` values
    /// equal `prefix` and (when `range` is given) whose depth-`p` value lies
    /// in the inclusive range. Depths beyond are unconstrained.
    ///
    /// Cost: `prefix.len() + 1` pairs of binary searches, i.e. Õ(1).
    pub fn count(&self, prefix: &[Value], range: Option<(Value, Value)>) -> usize {
        metrics::record_count_probe();
        let (lo, hi) = self.range_of_prefix(prefix);
        if lo >= hi {
            return 0;
        }
        match range {
            None => hi - lo,
            Some((vlo, vhi)) => {
                let d = prefix.len();
                debug_assert!(d < self.depth(), "range depth out of bounds");
                let (l, h) = self.narrow_range(lo, hi, d, vlo, vhi);
                h - l
            }
        }
    }
}

impl HeapSize for SortedIndex {
    fn heap_bytes(&self) -> usize {
        self.order.heap_bytes()
            + self.cols.iter().map(HeapSize::heap_bytes).sum::<usize>()
            + self.cols.capacity() * std::mem::size_of::<Vec<Value>>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Relation {
        // (a, b, c) triples.
        Relation::new(
            "R",
            3,
            vec![
                vec![1, 10, 100],
                vec![1, 10, 200],
                vec![1, 20, 100],
                vec![2, 10, 100],
                vec![2, 30, 300],
                vec![3, 10, 100],
            ],
        )
    }

    #[test]
    fn identity_order_counts() {
        let r = sample();
        let ix = SortedIndex::build(&r, &[0, 1, 2]);
        assert_eq!(ix.len(), 6);
        assert_eq!(ix.count(&[], None), 6);
        assert_eq!(ix.count(&[1], None), 3);
        assert_eq!(ix.count(&[1, 10], None), 2);
        assert_eq!(ix.count(&[1, 10, 100], None), 1);
        assert_eq!(ix.count(&[4], None), 0);
    }

    #[test]
    fn range_counts() {
        let r = sample();
        let ix = SortedIndex::build(&r, &[0, 1, 2]);
        assert_eq!(ix.count(&[], Some((1, 2))), 5);
        assert_eq!(ix.count(&[1], Some((10, 19))), 2);
        assert_eq!(ix.count(&[1], Some((10, 20))), 3);
        assert_eq!(ix.count(&[2], Some((31, 100))), 0);
        // Inverted range is empty.
        assert_eq!(ix.count(&[], Some((5, 2))), 0);
    }

    #[test]
    fn permuted_order() {
        let r = sample();
        // Sort by (c, a, b).
        let ix = SortedIndex::build(&r, &[2, 0, 1]);
        assert_eq!(ix.count(&[100], None), 4);
        assert_eq!(ix.count(&[100, 1], None), 2);
        assert_eq!(ix.count(&[200], None), 1);
        assert_eq!(ix.count(&[100], Some((2, 3))), 2);
        // Columns are sorted lexicographically in the permuted order.
        let c0 = ix.col(0);
        assert!(c0.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn counts_match_naive_filter() {
        let r = sample();
        for order in [[0usize, 1, 2], [2, 0, 1], [1, 2, 0]] {
            let ix = SortedIndex::build(&r, &order);
            // Every 1-prefix + range at depth 1.
            let d0_vals = r.column_values(order[0]);
            for &p in &d0_vals {
                for lo in 0..400u64 {
                    if lo % 97 != 0 {
                        continue;
                    }
                    let hi = lo + 150;
                    let expect = r
                        .iter()
                        .filter(|row| {
                            row[order[0]] == p && row[order[1]] >= lo && row[order[1]] <= hi
                        })
                        .count();
                    assert_eq!(ix.count(&[p], Some((lo, hi))), expect);
                }
            }
        }
    }

    #[test]
    fn empty_relation_index() {
        let r = Relation::new("E", 2, vec![]);
        let ix = SortedIndex::build(&r, &[1, 0]);
        assert!(ix.is_empty());
        assert_eq!(ix.count(&[], None), 0);
        assert_eq!(ix.count(&[1], Some((0, 10))), 0);
    }

    #[test]
    #[should_panic(expected = "permutation")]
    fn bad_order_panics() {
        let r = sample();
        SortedIndex::build(&r, &[0, 0, 1]);
    }

    #[test]
    fn merge_insert_matches_rebuild() {
        // Property: merging fresh tuples into an index over the old
        // relation equals building the index over the merged relation —
        // across permuted attribute orders and random deltas.
        let mut state = 0x9e37u64;
        let mut next = move |m: u64| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) % m
        };
        for trial in 0..20u64 {
            let arity = 2 + (trial % 2) as usize;
            let mut flat = Vec::new();
            for _ in 0..(30 + next(40)) {
                for _ in 0..arity {
                    flat.push(next(9));
                }
            }
            let mut rel = Relation::from_flat("R", arity, flat);
            let mut fresh: Vec<Vec<Value>> = Vec::new();
            while fresh.len() < 7 {
                let t: Vec<Value> = (0..arity).map(|_| next(12)).collect();
                if !rel.contains(&t) && !fresh.contains(&t) {
                    fresh.push(t);
                }
            }
            let orders: Vec<Vec<usize>> = match arity {
                2 => vec![vec![0, 1], vec![1, 0]],
                _ => vec![vec![0, 1, 2], vec![2, 0, 1], vec![1, 2, 0]],
            };
            let before: Vec<SortedIndex> =
                orders.iter().map(|o| SortedIndex::build(&rel, o)).collect();
            rel.insert_tuples(&fresh);
            for (ix, order) in before.into_iter().zip(&orders) {
                let mut merged = ix;
                merged.merge_insert(&fresh);
                let rebuilt = SortedIndex::build(&rel, order);
                assert_eq!(merged.len(), rebuilt.len(), "trial {trial}");
                for d in 0..arity {
                    assert_eq!(merged.col(d), rebuilt.col(d), "trial {trial} depth {d}");
                }
            }
        }
    }

    #[test]
    fn merge_remove_matches_rebuild() {
        // Property: removing stale tuples from an index over the old
        // relation equals building the index over the shrunken relation —
        // across permuted attribute orders and random victim sets.
        let mut state = 0x51f3u64;
        let mut next = move |m: u64| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) % m
        };
        for trial in 0..20u64 {
            let arity = 2 + (trial % 2) as usize;
            let mut flat = Vec::new();
            for _ in 0..(30 + next(40)) {
                for _ in 0..arity {
                    flat.push(next(9));
                }
            }
            let mut rel = Relation::from_flat("R", arity, flat);
            let k = 1 + next(rel.len() as u64 / 2) as usize;
            let mut stale: Vec<Vec<Value>> = Vec::new();
            while stale.len() < k {
                let t = rel.row(next(rel.len() as u64) as usize).to_vec();
                if !stale.contains(&t) {
                    stale.push(t);
                }
            }
            let orders: Vec<Vec<usize>> = match arity {
                2 => vec![vec![0, 1], vec![1, 0]],
                _ => vec![vec![0, 1, 2], vec![2, 0, 1], vec![1, 2, 0]],
            };
            let before: Vec<SortedIndex> =
                orders.iter().map(|o| SortedIndex::build(&rel, o)).collect();
            rel.remove_tuples(&stale);
            for (ix, order) in before.into_iter().zip(&orders) {
                let mut shrunk = ix;
                let filtered: Vec<Tuple> = shrunk
                    .stale_from(&stale)
                    .unwrap()
                    .into_iter()
                    .cloned()
                    .collect();
                assert_eq!(filtered.len(), stale.len(), "trial {trial}");
                shrunk.merge_remove(&filtered);
                let rebuilt = SortedIndex::build(&rel, order);
                assert_eq!(shrunk.len(), rebuilt.len(), "trial {trial}");
                for d in 0..arity {
                    assert_eq!(shrunk.col(d), rebuilt.col(d), "trial {trial} depth {d}");
                }
            }
        }
    }

    #[test]
    fn stale_from_filters_and_gates() {
        let r = sample();
        let ix = SortedIndex::build(&r, &[2, 0, 1]);
        // Absent tuples are dropped, duplicates collapse.
        let tuples = vec![
            vec![1, 10, 100],
            vec![7, 7, 7],
            vec![1, 10, 100],
            vec![2, 30, 300],
        ];
        let stale = ix.stale_from(&tuples).unwrap();
        assert_eq!(stale.len(), 2);
        // Arity mismatch gates the whole merge.
        assert!(ix.stale_from(&[vec![1, 2]]).is_none());
        // Removing everything empties the index.
        let all: Vec<Tuple> = r.iter().map(<[Value]>::to_vec).collect();
        let mut ix = SortedIndex::build(&r, &[1, 2, 0]);
        let stale: Vec<Tuple> = ix.stale_from(&all).unwrap().into_iter().cloned().collect();
        ix.merge_remove(&stale);
        assert!(ix.is_empty());
        assert_eq!(ix.count(&[], None), 0);
    }

    #[test]
    fn merge_insert_into_empty_and_noop() {
        let empty = Relation::new("E", 2, vec![]);
        let mut ix = SortedIndex::build(&empty, &[1, 0]);
        ix.merge_insert(&Vec::<Vec<Value>>::new());
        assert!(ix.is_empty());
        ix.merge_insert(&[vec![5u64, 1], vec![2, 9]]);
        assert_eq!(ix.len(), 2);
        // Depth 0 is schema column 1: sorted as (1,5), (9,2).
        assert_eq!(ix.col(0), &[1, 9]);
        assert_eq!(ix.col(1), &[5, 2]);
        assert_eq!(ix.count(&[9], None), 1);
    }
}
