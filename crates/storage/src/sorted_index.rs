//! Sorted, column-major relation indexes.
//!
//! A [`SortedIndex`] stores the tuples of a relation sorted lexicographically
//! under an arbitrary attribute permutation, column-major. It serves two
//! masters:
//!
//! 1. **Count probes** (`cqc-core`): the quantities `|R_F(B)|` and
//!    `|R_F(v_b, B)|` of §4.2 constrain a *prefix* of attributes to constants
//!    plus at most one attribute to a value range, so under the right
//!    attribute order they select a contiguous run of rows — two binary
//!    searches, the paper's Õ(1) count oracle.
//! 2. **Trie cursors** (`cqc-join`): the leapfrog trie-join navigates the
//!    sorted runs level by level; this index exposes the per-level columns
//!    and range-narrowing operations the cursors need.

use crate::relation::Relation;
use cqc_common::heap::HeapSize;
use cqc_common::metrics;
use cqc_common::util::{lower_bound, upper_bound};
use cqc_common::value::Value;

/// A lexicographically sorted projection of a relation under a fixed
/// attribute order.
#[derive(Debug, Clone)]
pub struct SortedIndex {
    /// `order[d]` is the schema column stored at sort depth `d`.
    order: Vec<usize>,
    /// Column-major storage: `cols[d][row]` for rows in sorted order.
    cols: Vec<Vec<Value>>,
    len: usize,
}

impl SortedIndex {
    /// Builds the index for `relation` sorted by the attribute permutation
    /// `order` (`order[d]` = schema column at depth `d`).
    ///
    /// # Panics
    ///
    /// Panics unless `order` is a permutation of `0..relation.arity()`.
    pub fn build(relation: &Relation, order: &[usize]) -> SortedIndex {
        let arity = relation.arity();
        assert_eq!(order.len(), arity, "order must cover all attributes");
        let mut seen = vec![false; arity];
        for &c in order {
            assert!(c < arity && !seen[c], "order must be a permutation");
            seen[c] = true;
        }

        let n = relation.len();
        let mut perm: Vec<u32> = (0..n as u32).collect();
        perm.sort_unstable_by(|&a, &b| {
            let ra = relation.row(a as usize);
            let rb = relation.row(b as usize);
            for &c in order {
                match ra[c].cmp(&rb[c]) {
                    std::cmp::Ordering::Equal => continue,
                    other => return other,
                }
            }
            std::cmp::Ordering::Equal
        });

        let mut cols: Vec<Vec<Value>> = (0..arity).map(|_| Vec::with_capacity(n)).collect();
        for &ri in &perm {
            let row = relation.row(ri as usize);
            for (d, &c) in order.iter().enumerate() {
                cols[d].push(row[c]);
            }
        }
        SortedIndex {
            order: order.to_vec(),
            cols,
            len: n,
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` if the index holds no rows.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of sort depths (= relation arity).
    pub fn depth(&self) -> usize {
        self.order.len()
    }

    /// The attribute order (`order[d]` = schema column at depth `d`).
    pub fn order(&self) -> &[usize] {
        &self.order
    }

    /// The sorted column at depth `d`.
    #[inline]
    pub fn col(&self, d: usize) -> &[Value] {
        &self.cols[d]
    }

    /// The value at depth `d` of sorted row `row`.
    #[inline]
    pub fn value(&self, d: usize, row: usize) -> Value {
        self.cols[d][row]
    }

    /// Narrows `[lo, hi)` to the rows whose depth-`d` value equals `v`.
    #[inline]
    pub fn narrow_eq(&self, lo: usize, hi: usize, d: usize, v: Value) -> (usize, usize) {
        let col = &self.cols[d];
        let l = lower_bound(col, lo, hi, v);
        let h = upper_bound(col, l, hi, v);
        (l, h)
    }

    /// Narrows `[lo, hi)` to the rows whose depth-`d` value lies in the
    /// inclusive range `[vlo, vhi]`.
    #[inline]
    pub fn narrow_range(
        &self,
        lo: usize,
        hi: usize,
        d: usize,
        vlo: Value,
        vhi: Value,
    ) -> (usize, usize) {
        if vlo > vhi {
            return (lo, lo);
        }
        let col = &self.cols[d];
        let l = lower_bound(col, lo, hi, vlo);
        let h = upper_bound(col, l, hi, vhi);
        (l, h)
    }

    /// The row range matching a prefix of constants at depths
    /// `0..prefix.len()`.
    pub fn range_of_prefix(&self, prefix: &[Value]) -> (usize, usize) {
        debug_assert!(prefix.len() <= self.depth());
        let mut lo = 0usize;
        let mut hi = self.len;
        for (d, &v) in prefix.iter().enumerate() {
            if lo >= hi {
                break;
            }
            let (l, h) = self.narrow_eq(lo, hi, d, v);
            lo = l;
            hi = h;
        }
        (lo, hi)
    }

    /// The paper's count oracle: number of rows whose depth-`0..p` values
    /// equal `prefix` and (when `range` is given) whose depth-`p` value lies
    /// in the inclusive range. Depths beyond are unconstrained.
    ///
    /// Cost: `prefix.len() + 1` pairs of binary searches, i.e. Õ(1).
    pub fn count(&self, prefix: &[Value], range: Option<(Value, Value)>) -> usize {
        metrics::record_count_probe();
        let (lo, hi) = self.range_of_prefix(prefix);
        if lo >= hi {
            return 0;
        }
        match range {
            None => hi - lo,
            Some((vlo, vhi)) => {
                let d = prefix.len();
                debug_assert!(d < self.depth(), "range depth out of bounds");
                let (l, h) = self.narrow_range(lo, hi, d, vlo, vhi);
                h - l
            }
        }
    }
}

impl HeapSize for SortedIndex {
    fn heap_bytes(&self) -> usize {
        self.order.heap_bytes()
            + self.cols.iter().map(HeapSize::heap_bytes).sum::<usize>()
            + self.cols.capacity() * std::mem::size_of::<Vec<Value>>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Relation {
        // (a, b, c) triples.
        Relation::new(
            "R",
            3,
            vec![
                vec![1, 10, 100],
                vec![1, 10, 200],
                vec![1, 20, 100],
                vec![2, 10, 100],
                vec![2, 30, 300],
                vec![3, 10, 100],
            ],
        )
    }

    #[test]
    fn identity_order_counts() {
        let r = sample();
        let ix = SortedIndex::build(&r, &[0, 1, 2]);
        assert_eq!(ix.len(), 6);
        assert_eq!(ix.count(&[], None), 6);
        assert_eq!(ix.count(&[1], None), 3);
        assert_eq!(ix.count(&[1, 10], None), 2);
        assert_eq!(ix.count(&[1, 10, 100], None), 1);
        assert_eq!(ix.count(&[4], None), 0);
    }

    #[test]
    fn range_counts() {
        let r = sample();
        let ix = SortedIndex::build(&r, &[0, 1, 2]);
        assert_eq!(ix.count(&[], Some((1, 2))), 5);
        assert_eq!(ix.count(&[1], Some((10, 19))), 2);
        assert_eq!(ix.count(&[1], Some((10, 20))), 3);
        assert_eq!(ix.count(&[2], Some((31, 100))), 0);
        // Inverted range is empty.
        assert_eq!(ix.count(&[], Some((5, 2))), 0);
    }

    #[test]
    fn permuted_order() {
        let r = sample();
        // Sort by (c, a, b).
        let ix = SortedIndex::build(&r, &[2, 0, 1]);
        assert_eq!(ix.count(&[100], None), 4);
        assert_eq!(ix.count(&[100, 1], None), 2);
        assert_eq!(ix.count(&[200], None), 1);
        assert_eq!(ix.count(&[100], Some((2, 3))), 2);
        // Columns are sorted lexicographically in the permuted order.
        let c0 = ix.col(0);
        assert!(c0.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn counts_match_naive_filter() {
        let r = sample();
        for order in [[0usize, 1, 2], [2, 0, 1], [1, 2, 0]] {
            let ix = SortedIndex::build(&r, &order);
            // Every 1-prefix + range at depth 1.
            let d0_vals = r.column_values(order[0]);
            for &p in &d0_vals {
                for lo in 0..400u64 {
                    if lo % 97 != 0 {
                        continue;
                    }
                    let hi = lo + 150;
                    let expect = r
                        .iter()
                        .filter(|row| {
                            row[order[0]] == p && row[order[1]] >= lo && row[order[1]] <= hi
                        })
                        .count();
                    assert_eq!(ix.count(&[p], Some((lo, hi))), expect);
                }
            }
        }
    }

    #[test]
    fn empty_relation_index() {
        let r = Relation::new("E", 2, vec![]);
        let ix = SortedIndex::build(&r, &[1, 0]);
        assert!(ix.is_empty());
        assert_eq!(ix.count(&[], None), 0);
        assert_eq!(ix.count(&[1], Some((0, 10))), 0);
    }

    #[test]
    #[should_panic(expected = "permutation")]
    fn bad_order_panics() {
        let r = sample();
        SortedIndex::build(&r, &[0, 0, 1]);
    }
}
