//! Active domains in rank space.
//!
//! The paper equips each variable's active domain `D[x]` with the total order
//! inherited from **dom**, with `⊥`/`⊤` its smallest and largest elements
//! (§4.1). Representing a domain as a sorted vector and working with *ranks*
//! (positions in that vector) turns the successor/predecessor arithmetic of
//! interval splitting into `±1` on integers and makes every open/closed
//! endpoint case exact.

use cqc_common::heap::HeapSize;
use cqc_common::value::Value;

/// A sorted active domain for one variable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Domain {
    values: Vec<Value>,
}

impl Domain {
    /// Builds a domain from arbitrary values (sorted and deduplicated).
    pub fn new(mut values: Vec<Value>) -> Domain {
        values.sort_unstable();
        values.dedup();
        Domain { values }
    }

    /// Builds a domain that is the sorted union of several value sets.
    pub fn union_of<'a>(sets: impl IntoIterator<Item = &'a [Value]>) -> Domain {
        let mut values: Vec<Value> = sets.into_iter().flatten().copied().collect();
        values.sort_unstable();
        values.dedup();
        Domain { values }
    }

    /// Number of distinct values.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// `true` if the domain is empty.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// The value at `rank`.
    ///
    /// # Panics
    ///
    /// Panics if `rank >= len()`.
    #[inline]
    pub fn value(&self, rank: usize) -> Value {
        self.values[rank]
    }

    /// All values in sorted order.
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// The exact rank of `v`, if present.
    pub fn rank(&self, v: Value) -> Option<usize> {
        self.values.binary_search(&v).ok()
    }

    /// Rank of the smallest domain value `>= v` (i.e. `len()` if none).
    pub fn rank_ceil(&self, v: Value) -> usize {
        self.values.partition_point(|&x| x < v)
    }

    /// Rank of the largest domain value `<= v`, or `None` if all values
    /// exceed `v`.
    pub fn rank_floor(&self, v: Value) -> Option<usize> {
        let p = self.values.partition_point(|&x| x <= v);
        p.checked_sub(1)
    }

    /// The smallest element `⊥` (rank 0), if the domain is non-empty.
    pub fn bottom(&self) -> Option<Value> {
        self.values.first().copied()
    }

    /// The largest element `⊤` (rank `len()-1`), if non-empty.
    pub fn top(&self) -> Option<Value> {
        self.values.last().copied()
    }
}

impl HeapSize for Domain {
    fn heap_bytes(&self) -> usize {
        self.values.heap_bytes()
    }
}

/// Lexicographic successor of a rank tuple over a product of domains:
/// `+1` with carry, where coordinate `i` ranges over `0..sizes[i]`.
///
/// Returns `false` (leaving `ranks` unspecified) when `ranks` is the maximal
/// tuple.
pub fn rank_tuple_succ(ranks: &mut [usize], sizes: &[usize]) -> bool {
    debug_assert_eq!(ranks.len(), sizes.len());
    for i in (0..ranks.len()).rev() {
        if ranks[i] + 1 < sizes[i] {
            ranks[i] += 1;
            for r in ranks.iter_mut().skip(i + 1) {
                *r = 0;
            }
            return true;
        }
    }
    false
}

/// Lexicographic predecessor of a rank tuple: `-1` with borrow.
///
/// Returns `false` when `ranks` is the all-zero tuple.
pub fn rank_tuple_pred(ranks: &mut [usize], sizes: &[usize]) -> bool {
    debug_assert_eq!(ranks.len(), sizes.len());
    for i in (0..ranks.len()).rev() {
        if ranks[i] > 0 {
            ranks[i] -= 1;
            for (r, &s) in ranks.iter_mut().zip(sizes.iter()).skip(i + 1) {
                *r = s - 1;
            }
            return true;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranks_and_values() {
        let d = Domain::new(vec![30, 10, 20, 10]);
        assert_eq!(d.len(), 3);
        assert_eq!(d.values(), &[10, 20, 30]);
        assert_eq!(d.rank(20), Some(1));
        assert_eq!(d.rank(25), None);
        assert_eq!(d.rank_ceil(15), 1);
        assert_eq!(d.rank_ceil(10), 0);
        assert_eq!(d.rank_ceil(31), 3);
        assert_eq!(d.rank_floor(15), Some(0));
        assert_eq!(d.rank_floor(30), Some(2));
        assert_eq!(d.rank_floor(5), None);
        assert_eq!(d.bottom(), Some(10));
        assert_eq!(d.top(), Some(30));
        assert_eq!(d.value(2), 30);
    }

    #[test]
    fn union_of_sets() {
        let d = Domain::union_of([&[3u64, 1][..], &[2, 3][..]]);
        assert_eq!(d.values(), &[1, 2, 3]);
    }

    #[test]
    fn empty_domain() {
        let d = Domain::new(vec![]);
        assert!(d.is_empty());
        assert_eq!(d.bottom(), None);
        assert_eq!(d.rank_ceil(5), 0);
        assert_eq!(d.rank_floor(5), None);
    }

    #[test]
    fn succ_carries() {
        let sizes = [2usize, 3, 2];
        let mut r = [0usize, 0, 0];
        let mut seen = vec![r.to_vec()];
        while rank_tuple_succ(&mut r, &sizes) {
            seen.push(r.to_vec());
        }
        assert_eq!(seen.len(), 12);
        assert_eq!(seen[0], vec![0, 0, 0]);
        assert_eq!(seen[1], vec![0, 0, 1]);
        assert_eq!(seen[2], vec![0, 1, 0]);
        assert_eq!(seen[11], vec![1, 2, 1]);
        // Sorted lexicographically by construction.
        for w in seen.windows(2) {
            assert!(w[0] < w[1]);
        }
    }

    #[test]
    fn pred_is_inverse_of_succ() {
        let sizes = [3usize, 2, 4];
        let mut fwd = vec![vec![0usize, 0, 0]];
        let mut r = [0usize, 0, 0];
        while rank_tuple_succ(&mut r, &sizes) {
            fwd.push(r.to_vec());
        }
        let mut r = [2usize, 1, 3];
        let mut bwd = vec![r.to_vec()];
        while rank_tuple_pred(&mut r, &sizes) {
            bwd.push(r.to_vec());
        }
        bwd.reverse();
        assert_eq!(fwd, bwd);
    }

    #[test]
    fn succ_pred_bounds() {
        let sizes = [2usize, 2];
        let mut r = [1usize, 1];
        assert!(!rank_tuple_succ(&mut r, &sizes));
        let mut r = [0usize, 0];
        assert!(!rank_tuple_pred(&mut r, &sizes));
    }
}
