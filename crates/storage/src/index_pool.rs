//! A per-build pool of shared [`SortedIndex`]es.
//!
//! One representation build touches the same `(relation, column-order)`
//! index from several places: the trie indexes of the join plan, the two
//! count indexes of the cost oracle, and — during auto strategy selection —
//! the veto oracle's indexes, all over one database snapshot. Without
//! sharing, each site re-sorts the same rows; an [`IndexPool`] makes every
//! site ask the pool instead, so each distinct index is built exactly once
//! per registration and `Arc`-shared from then on.
//!
//! Entries are keyed by the relation's **allocation identity**
//! (`Arc::as_ptr`) plus the column order, and the pool pins each keyed
//! relation with an `Arc` clone, so a key can never be reused by a
//! different relation while the pool is alive. This makes pooling sound
//! across the Example 3 rewrite: rewritten databases share untouched
//! relations by `Arc`, so those indexes pool across selection and build,
//! while derived (filtered) relations get fresh allocations and therefore
//! fresh keys.

use crate::database::Database;
use crate::relation::Relation;
use crate::sorted_index::SortedIndex;
use cqc_common::error::{CqcError, Result};
use cqc_common::hash::FastMap;
use std::sync::Arc;

/// Pool key: relation allocation address + column order.
type PoolKey = (usize, Vec<usize>);
/// Pool entry: the pinned relation and its shared index.
type PoolEntry = (Arc<Relation>, Arc<SortedIndex>);

/// A build-scoped cache of sorted indexes, keyed by relation identity and
/// attribute order. See the module docs for the sharing and soundness
/// story.
#[derive(Debug, Default)]
pub struct IndexPool {
    entries: FastMap<PoolKey, PoolEntry>,
    hits: u64,
    builds: u64,
}

impl IndexPool {
    /// An empty pool.
    pub fn new() -> IndexPool {
        IndexPool::default()
    }

    /// The pooled index of `relation` under `order`, building it on first
    /// use. The relation is pinned by the pool for as long as the pool
    /// lives (which is what keeps pointer keys sound).
    pub fn index_for(&mut self, relation: &Arc<Relation>, order: &[usize]) -> Arc<SortedIndex> {
        let key = (Arc::as_ptr(relation) as usize, order.to_vec());
        if let Some((_pin, ix)) = self.entries.get(&key) {
            self.hits += 1;
            return Arc::clone(ix);
        }
        let ix = Arc::new(SortedIndex::build(relation, order));
        self.builds += 1;
        self.entries
            .insert(key, (Arc::clone(relation), Arc::clone(&ix)));
        ix
    }

    /// [`IndexPool::index_for`] by relation name against a database
    /// snapshot.
    ///
    /// # Errors
    ///
    /// [`CqcError::Schema`] when the relation is missing.
    pub fn get_or_build(
        &mut self,
        db: &Database,
        name: &str,
        order: &[usize],
    ) -> Result<Arc<SortedIndex>> {
        let rel = db
            .get_arc(name)
            .ok_or_else(|| CqcError::Schema(format!("relation `{name}` not found in database")))?;
        Ok(self.index_for(&rel, order))
    }

    /// Number of lookups answered from the pool.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Number of indexes actually built.
    pub fn builds(&self) -> u64 {
        self.builds
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_relation_and_order_shares() {
        let mut db = Database::new();
        db.add(Relation::from_pairs("R", vec![(1, 2), (2, 3)]))
            .unwrap();
        let mut pool = IndexPool::new();
        let a = pool.get_or_build(&db, "R", &[0, 1]).unwrap();
        let b = pool.get_or_build(&db, "R", &[0, 1]).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(pool.builds(), 1);
        assert_eq!(pool.hits(), 1);
        // A different order is a different index.
        let c = pool.get_or_build(&db, "R", &[1, 0]).unwrap();
        assert!(!Arc::ptr_eq(&a, &c));
        assert_eq!(pool.builds(), 2);
    }

    #[test]
    fn distinct_relations_never_collide() {
        // Two same-shape relations under different allocations must get
        // distinct indexes even though name lookups go through one pool.
        let mut db = Database::new();
        db.add(Relation::from_pairs("R", vec![(1, 2)])).unwrap();
        db.add(Relation::from_pairs("S", vec![(7, 8)])).unwrap();
        let mut pool = IndexPool::new();
        let r = pool.get_or_build(&db, "R", &[0, 1]).unwrap();
        let s = pool.get_or_build(&db, "S", &[0, 1]).unwrap();
        assert_eq!(r.value(0, 0), 1);
        assert_eq!(s.value(0, 0), 7);
        assert!(pool.get_or_build(&db, "T", &[0]).is_err());
    }

    #[test]
    fn pool_pins_relations_across_database_drop() {
        // The pool must keep serving correct indexes even if the source
        // database is dropped and a new relation happens to be allocated:
        // the pinned Arc keeps the old allocation (and its address) alive.
        let mut pool = IndexPool::new();
        let first = {
            let mut db = Database::new();
            db.add(Relation::from_pairs("R", vec![(5, 6)])).unwrap();
            pool.get_or_build(&db, "R", &[0, 1]).unwrap()
        };
        let mut db2 = Database::new();
        db2.add(Relation::from_pairs("R", vec![(9, 9)])).unwrap();
        let second = pool.get_or_build(&db2, "R", &[0, 1]).unwrap();
        assert_eq!(first.value(0, 0), 5);
        assert_eq!(second.value(0, 0), 9);
    }
}
