//! Batched database updates.
//!
//! A [`Delta`] is a set of tuple insertions and removals, grouped per
//! relation, that is applied atomically by [`crate::Database::apply`].
//! Batching matches the serve-many regime: representations are maintained
//! (or invalidated) once per delta, not once per tuple, so the amortization
//! argument of the paper's build-once/answer-many model extends to a
//! database that keeps receiving writes.
//!
//! Inserts and removes are kept canonical: queueing a tuple for insertion
//! withdraws any pending removal of the same tuple in the same relation and
//! vice versa (last write wins). The per-relation insert and remove sets
//! are therefore always disjoint, which makes the application order
//! irrelevant — [`crate::Database::apply`], the index merge paths, and the
//! wire round-trip all rely on this invariant.

use cqc_common::heap::{vec_deep_bytes, HeapSize};
use cqc_common::value::Tuple;

/// A batch of tuple insertions and removals, grouped by relation name.
///
/// First-touch order of relations is preserved (it only affects
/// reporting); tuples for the same relation accumulate into one group
/// regardless of the order in which they were added.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Delta {
    groups: Vec<(String, Vec<Tuple>)>,
    removes: Vec<(String, Vec<Tuple>)>,
}

fn push_group(groups: &mut Vec<(String, Vec<Tuple>)>, relation: &str, tuple: Tuple) {
    match groups.iter_mut().find(|(n, _)| n == relation) {
        Some((_, ts)) => ts.push(tuple),
        None => groups.push((relation.to_string(), vec![tuple])),
    }
}

fn withdraw(groups: &mut [(String, Vec<Tuple>)], relation: &str, tuple: &Tuple) {
    if let Some((_, ts)) = groups.iter_mut().find(|(n, _)| n == relation) {
        ts.retain(|t| t != tuple);
    }
}

impl Delta {
    /// An empty delta.
    pub fn new() -> Delta {
        Delta::default()
    }

    /// Queues one tuple for insertion into `relation`, withdrawing any
    /// pending removal of the same tuple (last write wins).
    pub fn insert(&mut self, relation: &str, tuple: Tuple) {
        withdraw(&mut self.removes, relation, &tuple);
        push_group(&mut self.groups, relation, tuple);
    }

    /// Queues many tuples for insertion into `relation`.
    pub fn insert_all(&mut self, relation: &str, tuples: impl IntoIterator<Item = Tuple>) {
        for t in tuples {
            self.insert(relation, t);
        }
    }

    /// Queues one tuple for removal from `relation`, withdrawing any
    /// pending insertion of the same tuple (last write wins). Removing a
    /// tuple the database does not hold is an idempotent no-op at apply
    /// time.
    pub fn remove(&mut self, relation: &str, tuple: Tuple) {
        withdraw(&mut self.groups, relation, &tuple);
        push_group(&mut self.removes, relation, tuple);
    }

    /// Queues many tuples for removal from `relation`.
    pub fn remove_all(&mut self, relation: &str, tuples: impl IntoIterator<Item = Tuple>) {
        for t in tuples {
            self.remove(relation, t);
        }
    }

    /// Builds an insert-only delta from `(relation, tuples)` groups.
    pub fn from_groups(groups: impl IntoIterator<Item = (String, Vec<Tuple>)>) -> Delta {
        let mut d = Delta::new();
        for (name, tuples) in groups {
            d.insert_all(&name, tuples);
        }
        d
    }

    /// The per-relation insertion groups, in first-touch order.
    pub fn groups(&self) -> impl Iterator<Item = (&str, &[Tuple])> + '_ {
        self.groups
            .iter()
            .map(|(n, ts)| (n.as_str(), ts.as_slice()))
    }

    /// The per-relation removal groups, in first-touch order.
    pub fn remove_groups(&self) -> impl Iterator<Item = (&str, &[Tuple])> + '_ {
        self.removes
            .iter()
            .map(|(n, ts)| (n.as_str(), ts.as_slice()))
    }

    /// The queued insertions for `relation`, if any.
    pub fn tuples_for(&self, relation: &str) -> Option<&[Tuple]> {
        self.groups
            .iter()
            .find(|(n, _)| n == relation)
            .map(|(_, ts)| ts.as_slice())
    }

    /// The queued removals for `relation`, if any.
    pub fn removes_for(&self, relation: &str) -> Option<&[Tuple]> {
        self.removes
            .iter()
            .find(|(n, _)| n == relation)
            .map(|(_, ts)| ts.as_slice())
    }

    /// `true` when the delta touches `relation` with inserts or removes.
    pub fn touches(&self, relation: &str) -> bool {
        self.tuples_for(relation).is_some_and(|ts| !ts.is_empty())
            || self.removes_for(relation).is_some_and(|ts| !ts.is_empty())
    }

    /// Names of the relations the delta touches (inserts first, then
    /// relations only touched by removes), each name once.
    pub fn relation_names(&self) -> impl Iterator<Item = &str> + '_ {
        let inserts = self
            .groups
            .iter()
            .filter(|(_, ts)| !ts.is_empty())
            .map(|(n, _)| n.as_str());
        let remove_only = self
            .removes
            .iter()
            .filter(|(_, ts)| !ts.is_empty())
            .map(|(n, _)| n.as_str())
            .filter(move |n| !self.tuples_for(n).is_some_and(|ts| !ts.is_empty()));
        inserts.chain(remove_only)
    }

    /// Total number of queued tuples (insertions plus removals).
    pub fn total_tuples(&self) -> usize {
        self.groups.iter().map(|(_, ts)| ts.len()).sum::<usize>()
            + self.removes.iter().map(|(_, ts)| ts.len()).sum::<usize>()
    }

    /// `true` when no tuples are queued.
    pub fn is_empty(&self) -> bool {
        self.total_tuples() == 0
    }
}

impl HeapSize for Delta {
    fn heap_bytes(&self) -> usize {
        self.groups
            .iter()
            .chain(self.removes.iter())
            .map(|(n, ts)| n.heap_bytes() + vec_deep_bytes(ts) + std::mem::size_of::<String>())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_accumulate_per_relation() {
        let mut d = Delta::new();
        d.insert("R", vec![1, 2]);
        d.insert("S", vec![3, 4]);
        d.insert("R", vec![5, 6]);
        assert_eq!(d.total_tuples(), 3);
        assert_eq!(d.tuples_for("R").unwrap().len(), 2);
        assert_eq!(d.tuples_for("S").unwrap().len(), 1);
        assert!(d.tuples_for("T").is_none());
        assert!(d.touches("R"));
        assert!(!d.touches("T"));
        let names: Vec<&str> = d.relation_names().collect();
        assert_eq!(names, vec!["R", "S"]);
    }

    #[test]
    fn empty_delta() {
        let d = Delta::new();
        assert!(d.is_empty());
        assert_eq!(d.total_tuples(), 0);
        assert_eq!(d.relation_names().count(), 0);
    }

    #[test]
    fn from_groups_merges_duplicates() {
        let d = Delta::from_groups(vec![
            ("R".to_string(), vec![vec![1, 2]]),
            ("R".to_string(), vec![vec![3, 4]]),
        ]);
        assert_eq!(d.groups().count(), 1);
        assert_eq!(d.total_tuples(), 2);
    }

    #[test]
    fn removes_accumulate_and_count() {
        let mut d = Delta::new();
        d.remove("R", vec![1, 2]);
        d.remove_all("S", vec![vec![3, 4], vec![5, 6]]);
        assert_eq!(d.total_tuples(), 3);
        assert_eq!(d.removes_for("R").unwrap(), &[vec![1, 2]]);
        assert_eq!(d.removes_for("S").unwrap().len(), 2);
        assert!(d.tuples_for("R").is_none());
        assert!(d.touches("R"));
        assert!(d.touches("S"));
        assert!(!d.is_empty());
        let names: Vec<&str> = d.relation_names().collect();
        assert_eq!(names, vec!["R", "S"]);
    }

    #[test]
    fn last_write_wins_keeps_sets_disjoint() {
        let mut d = Delta::new();
        d.insert("R", vec![1, 2]);
        d.remove("R", vec![1, 2]);
        assert!(d.tuples_for("R").unwrap().is_empty());
        assert_eq!(d.removes_for("R").unwrap(), &[vec![1, 2]]);
        // And back: the remove is withdrawn by a later insert.
        d.insert("R", vec![1, 2]);
        assert_eq!(d.tuples_for("R").unwrap(), &[vec![1, 2]]);
        assert!(d.removes_for("R").unwrap().is_empty());
        assert_eq!(d.total_tuples(), 1);
        // Other tuples in the same relation are untouched.
        d.insert("R", vec![7, 8]);
        d.remove("R", vec![9, 9]);
        assert_eq!(d.tuples_for("R").unwrap().len(), 2);
        assert_eq!(d.removes_for("R").unwrap(), &[vec![9, 9]]);
    }

    #[test]
    fn relation_names_dedup_across_kinds() {
        let mut d = Delta::new();
        d.insert("R", vec![1, 2]);
        d.remove("R", vec![3, 4]);
        d.remove("T", vec![5, 6]);
        let names: Vec<&str> = d.relation_names().collect();
        assert_eq!(names, vec!["R", "T"]);
    }
}
