//! Batched database updates.
//!
//! A [`Delta`] is a set of tuple insertions, grouped per relation, that is
//! applied atomically by [`crate::Database::apply`]. Batching matches the
//! serve-many regime: representations are maintained (or invalidated) once
//! per delta, not once per tuple, so the amortization argument of the
//! paper's build-once/answer-many model extends to a database that keeps
//! receiving writes.

use cqc_common::heap::{vec_deep_bytes, HeapSize};
use cqc_common::value::Tuple;

/// A batch of tuple insertions, grouped by relation name.
///
/// Insertion order of relations is preserved (it only affects reporting);
/// tuples for the same relation accumulate into one group regardless of the
/// order in which they were added.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Delta {
    groups: Vec<(String, Vec<Tuple>)>,
}

impl Delta {
    /// An empty delta.
    pub fn new() -> Delta {
        Delta::default()
    }

    /// Queues one tuple for insertion into `relation`.
    pub fn insert(&mut self, relation: &str, tuple: Tuple) {
        match self.groups.iter_mut().find(|(n, _)| n == relation) {
            Some((_, ts)) => ts.push(tuple),
            None => self.groups.push((relation.to_string(), vec![tuple])),
        }
    }

    /// Queues many tuples for insertion into `relation`.
    pub fn insert_all(&mut self, relation: &str, tuples: impl IntoIterator<Item = Tuple>) {
        for t in tuples {
            self.insert(relation, t);
        }
    }

    /// Builds a delta from `(relation, tuples)` groups.
    pub fn from_groups(groups: impl IntoIterator<Item = (String, Vec<Tuple>)>) -> Delta {
        let mut d = Delta::new();
        for (name, tuples) in groups {
            d.insert_all(&name, tuples);
        }
        d
    }

    /// The per-relation insertion groups, in first-touch order.
    pub fn groups(&self) -> impl Iterator<Item = (&str, &[Tuple])> + '_ {
        self.groups
            .iter()
            .map(|(n, ts)| (n.as_str(), ts.as_slice()))
    }

    /// The queued tuples for `relation`, if any.
    pub fn tuples_for(&self, relation: &str) -> Option<&[Tuple]> {
        self.groups
            .iter()
            .find(|(n, _)| n == relation)
            .map(|(_, ts)| ts.as_slice())
    }

    /// `true` when the delta touches `relation`.
    pub fn touches(&self, relation: &str) -> bool {
        self.tuples_for(relation).is_some_and(|ts| !ts.is_empty())
    }

    /// Names of the relations the delta touches.
    pub fn relation_names(&self) -> impl Iterator<Item = &str> + '_ {
        self.groups
            .iter()
            .filter(|(_, ts)| !ts.is_empty())
            .map(|(n, _)| n.as_str())
    }

    /// Total number of queued tuples across all relations.
    pub fn total_tuples(&self) -> usize {
        self.groups.iter().map(|(_, ts)| ts.len()).sum()
    }

    /// `true` when no tuples are queued.
    pub fn is_empty(&self) -> bool {
        self.total_tuples() == 0
    }
}

impl HeapSize for Delta {
    fn heap_bytes(&self) -> usize {
        self.groups
            .iter()
            .map(|(n, ts)| n.heap_bytes() + vec_deep_bytes(ts) + std::mem::size_of::<String>())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_accumulate_per_relation() {
        let mut d = Delta::new();
        d.insert("R", vec![1, 2]);
        d.insert("S", vec![3, 4]);
        d.insert("R", vec![5, 6]);
        assert_eq!(d.total_tuples(), 3);
        assert_eq!(d.tuples_for("R").unwrap().len(), 2);
        assert_eq!(d.tuples_for("S").unwrap().len(), 1);
        assert!(d.tuples_for("T").is_none());
        assert!(d.touches("R"));
        assert!(!d.touches("T"));
        let names: Vec<&str> = d.relation_names().collect();
        assert_eq!(names, vec!["R", "S"]);
    }

    #[test]
    fn empty_delta() {
        let d = Delta::new();
        assert!(d.is_empty());
        assert_eq!(d.total_tuples(), 0);
        assert_eq!(d.relation_names().count(), 0);
    }

    #[test]
    fn from_groups_merges_duplicates() {
        let d = Delta::from_groups(vec![
            ("R".to_string(), vec![vec![1, 2]]),
            ("R".to_string(), vec![vec![3, 4]]),
        ]);
        assert_eq!(d.groups().count(), 1);
        assert_eq!(d.total_tuples(), 2);
    }
}
