//! Relations: deduplicated sorted tuple sets.

use crate::radix::sort_perm;
use cqc_common::heap::HeapSize;
use cqc_common::metrics::{self, BuildPhase};
use cqc_common::value::{lex_cmp, Tuple, Value};
use std::cmp::Ordering;
use std::time::Instant;

/// A relation instance: a set of `arity`-tuples over the value domain.
///
/// Rows are stored row-major in a single flat buffer, sorted
/// lexicographically in schema order and deduplicated. Sortedness gives
/// O(log n) membership without an auxiliary hash table, keeping the base
/// indexes linear in size as §4.3 requires.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Relation {
    name: String,
    arity: usize,
    rows: Vec<Value>,
}

impl Relation {
    /// Builds a relation from tuples, sorting and deduplicating.
    ///
    /// # Panics
    ///
    /// Panics if any tuple's length differs from `arity`, or if `arity == 0`.
    pub fn new(name: impl Into<String>, arity: usize, tuples: Vec<Tuple>) -> Relation {
        let mut flat = Vec::with_capacity(tuples.len() * arity);
        for t in &tuples {
            assert_eq!(t.len(), arity, "tuple arity mismatch in relation");
            flat.extend_from_slice(t);
        }
        Relation::from_flat(name, arity, flat)
    }

    /// Builds a relation from a flat row-major buffer (`rows * arity`
    /// values), sorting via a row permutation and deduplicating — no
    /// per-tuple `Vec` is ever allocated, which is what the bulk loaders
    /// and the shard partitioner use. Already-sorted input (the common case
    /// when rows come from another sorted relation) is detected and adopted
    /// without copying; everything else is sorted by an LSD radix
    /// permutation sort (comparison fallback for high arities and tiny
    /// inputs) instead of `sort_unstable_by(lex_cmp)` through the row
    /// indirection.
    ///
    /// # Panics
    ///
    /// Panics if `arity == 0` or `flat.len()` is not a multiple of `arity`.
    pub fn from_flat(name: impl Into<String>, arity: usize, flat: Vec<Value>) -> Relation {
        assert!(arity > 0, "relations must have positive arity");
        assert_eq!(
            flat.len() % arity,
            0,
            "flat buffer length must be a multiple of the arity"
        );
        let n = flat.len() / arity;
        let row = |i: usize| &flat[i * arity..(i + 1) * arity];
        if (1..n).all(|i| lex_cmp(row(i - 1), row(i)) == Ordering::Less) {
            return Relation {
                name: name.into(),
                arity,
                rows: flat,
            };
        }
        let t0 = Instant::now();
        let mut cols: Vec<Vec<Value>> = (0..arity).map(|_| Vec::with_capacity(n)).collect();
        for i in 0..n {
            for (col, &v) in cols.iter_mut().zip(row(i)) {
                col.push(v);
            }
        }
        let mut perm: Vec<u32> = (0..n as u32).collect();
        sort_perm(&mut perm, &cols);
        metrics::record_build_phase(BuildPhase::Sort, t0.elapsed().as_nanos() as u64);
        let mut rows: Vec<Value> = Vec::with_capacity(flat.len());
        for &ri in &perm {
            let r = row(ri as usize);
            if rows.len() >= arity && rows[rows.len() - arity..] == *r {
                continue; // duplicate of the row just emitted
            }
            rows.extend_from_slice(r);
        }
        Relation {
            name: name.into(),
            arity,
            rows,
        }
    }

    /// Builds a binary relation from `(a, b)` pairs; common in the graph
    /// workloads.
    pub fn from_pairs(
        name: impl Into<String>,
        pairs: impl IntoIterator<Item = (Value, Value)>,
    ) -> Relation {
        let pairs = pairs.into_iter();
        let mut flat = Vec::with_capacity(pairs.size_hint().0 * 2);
        for (a, b) in pairs {
            flat.push(a);
            flat.push(b);
        }
        Relation::from_flat(name, 2, flat)
    }

    /// The relation name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of attributes.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.rows.len() / self.arity
    }

    /// `true` if the relation holds no tuples.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The `i`-th tuple in schema-lexicographic order.
    #[inline]
    pub fn row(&self, i: usize) -> &[Value] {
        &self.rows[i * self.arity..(i + 1) * self.arity]
    }

    /// Iterates over tuples in schema-lexicographic order.
    pub fn iter(&self) -> impl Iterator<Item = &[Value]> + '_ {
        self.rows.chunks_exact(self.arity)
    }

    /// O(log n) membership test (binary search over the sorted rows).
    pub fn contains(&self, tuple: &[Value]) -> bool {
        debug_assert_eq!(tuple.len(), self.arity);
        let mut lo = 0usize;
        let mut hi = self.len();
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            match lex_cmp(self.row(mid), tuple) {
                Ordering::Less => lo = mid + 1,
                Ordering::Greater => hi = mid,
                Ordering::Equal => return true,
            }
        }
        false
    }

    /// Sorted distinct values of column `col`.
    pub fn column_values(&self, col: usize) -> Vec<Value> {
        assert!(col < self.arity, "column out of range");
        let mut vals: Vec<Value> = self.iter().map(|r| r[col]).collect();
        vals.sort_unstable();
        vals.dedup();
        vals
    }

    /// Inserts tuples, keeping the rows sorted and deduplicated, and
    /// returns the number of tuples that were genuinely new. Runs in
    /// `O(n + k log k)` for `k` insertions via a single sorted merge, so
    /// applying a small delta never degenerates into a full re-sort.
    ///
    /// # Panics
    ///
    /// Panics if any tuple's length differs from the relation's arity
    /// (callers such as [`crate::Database::apply`] validate arities first).
    pub fn insert_tuples(&mut self, tuples: &[Tuple]) -> usize {
        let mut fresh: Vec<&Tuple> = tuples
            .iter()
            .inspect(|t| assert_eq!(t.len(), self.arity, "tuple arity mismatch in relation"))
            .filter(|t| !self.contains(t))
            .collect();
        fresh.sort_unstable_by(|a, b| lex_cmp(a, b));
        fresh.dedup();
        if fresh.is_empty() {
            return 0;
        }
        let inserted = fresh.len();
        let old_rows = std::mem::take(&mut self.rows);
        self.rows = Vec::with_capacity(old_rows.len() + inserted * self.arity);
        let mut fresh = fresh.into_iter().peekable();
        for row in old_rows.chunks_exact(self.arity) {
            while let Some(t) = fresh.peek() {
                if lex_cmp(t, row) == Ordering::Less {
                    self.rows.extend_from_slice(fresh.next().unwrap());
                } else {
                    break;
                }
            }
            self.rows.extend_from_slice(row);
        }
        for t in fresh {
            self.rows.extend_from_slice(t);
        }
        inserted
    }

    /// Removes tuples, keeping the rows sorted, and returns the number of
    /// tuples that were genuinely present. Removing an absent tuple is an
    /// idempotent no-op. Runs in `O(n + k log k)` for `k` removals via a
    /// single compacting pass, the retraction mirror of
    /// [`Relation::insert_tuples`].
    ///
    /// # Panics
    ///
    /// Panics if any tuple's length differs from the relation's arity
    /// (callers such as [`crate::Database::apply`] validate arities first).
    pub fn remove_tuples(&mut self, tuples: &[Tuple]) -> usize {
        let mut stale: Vec<&Tuple> = tuples
            .iter()
            .inspect(|t| assert_eq!(t.len(), self.arity, "tuple arity mismatch in relation"))
            .filter(|t| self.contains(t))
            .collect();
        stale.sort_unstable_by(|a, b| lex_cmp(a, b));
        stale.dedup();
        if stale.is_empty() {
            return 0;
        }
        let removed = stale.len();
        let old_rows = std::mem::take(&mut self.rows);
        self.rows = Vec::with_capacity(old_rows.len() - removed * self.arity);
        let mut stale = stale.into_iter().peekable();
        for row in old_rows.chunks_exact(self.arity) {
            if stale
                .peek()
                .is_some_and(|t| lex_cmp(t, row) == Ordering::Equal)
            {
                stale.next();
                continue;
            }
            self.rows.extend_from_slice(row);
        }
        removed
    }

    /// Projects the relation onto the given columns (with deduplication),
    /// producing a new relation. Used by Theorem 2 to build the per-bag
    /// databases π_{F∩Bt}(R_F) of Appendix B.
    pub fn project(&self, name: impl Into<String>, cols: &[usize]) -> Relation {
        assert!(!cols.is_empty(), "projection needs at least one column");
        for &c in cols {
            assert!(c < self.arity, "projection column out of range");
        }
        let mut flat = Vec::with_capacity(self.len() * cols.len());
        for r in self.iter() {
            flat.extend(cols.iter().map(|&c| r[c]));
        }
        Relation::from_flat(name, cols.len(), flat)
    }
}

impl HeapSize for Relation {
    fn heap_bytes(&self) -> usize {
        self.name.heap_bytes() + self.rows.heap_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r() -> Relation {
        Relation::new(
            "R",
            2,
            vec![vec![3, 1], vec![1, 2], vec![1, 2], vec![2, 2], vec![1, 1]],
        )
    }

    #[test]
    fn sorts_and_dedups() {
        let r = r();
        assert_eq!(r.len(), 4);
        let rows: Vec<&[Value]> = r.iter().collect();
        assert_eq!(rows, vec![&[1, 1][..], &[1, 2], &[2, 2], &[3, 1]]);
    }

    #[test]
    fn membership() {
        let r = r();
        assert!(r.contains(&[1, 2]));
        assert!(r.contains(&[3, 1]));
        assert!(!r.contains(&[2, 1]));
        assert!(!r.contains(&[0, 0]));
        assert!(!r.contains(&[4, 4]));
    }

    #[test]
    fn column_values_sorted_distinct() {
        let r = r();
        assert_eq!(r.column_values(0), vec![1, 2, 3]);
        assert_eq!(r.column_values(1), vec![1, 2]);
    }

    #[test]
    fn projection_dedups() {
        let r = r();
        let p = r.project("P", &[1]);
        assert_eq!(p.arity(), 1);
        assert_eq!(p.len(), 2);
        assert!(p.contains(&[1]));
        assert!(p.contains(&[2]));
        // Reordering columns.
        let q = r.project("Q", &[1, 0]);
        assert!(q.contains(&[2, 1]));
        assert!(!q.contains(&[1, 2]) || r.contains(&[2, 1]));
    }

    #[test]
    fn from_flat_matches_new() {
        let tuples = vec![vec![3, 1], vec![1, 2], vec![1, 2], vec![2, 2], vec![1, 1]];
        let flat: Vec<Value> = tuples.iter().flatten().copied().collect();
        assert_eq!(
            Relation::from_flat("R", 2, flat),
            Relation::new("R", 2, tuples)
        );
        // Already-sorted input is adopted as-is.
        let sorted = Relation::from_flat("S", 2, vec![1, 1, 1, 2, 2, 2]);
        assert_eq!(sorted.len(), 3);
        assert!(sorted.contains(&[1, 2]));
        // Sorted-with-duplicates still dedups.
        let dup = Relation::from_flat("D", 1, vec![1, 1, 2]);
        assert_eq!(dup.len(), 2);
        // Empty buffer.
        assert!(Relation::from_flat("E", 3, vec![]).is_empty());
    }

    #[test]
    #[should_panic(expected = "multiple of the arity")]
    fn from_flat_ragged_buffer_panics() {
        Relation::from_flat("R", 2, vec![1, 2, 3]);
    }

    #[test]
    fn from_pairs_builds_binary() {
        let r = Relation::from_pairs("E", vec![(1, 2), (2, 1), (1, 2)]);
        assert_eq!(r.arity(), 2);
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn empty_relation() {
        let r = Relation::new("E", 3, vec![]);
        assert!(r.is_empty());
        assert_eq!(r.len(), 0);
        assert!(!r.contains(&[1, 2, 3]));
        assert_eq!(r.column_values(2), Vec::<Value>::new());
    }

    #[test]
    #[should_panic(expected = "tuple arity mismatch")]
    fn arity_mismatch_panics() {
        Relation::new("R", 2, vec![vec![1, 2, 3]]);
    }

    #[test]
    fn insert_tuples_merges_sorted() {
        let mut rel = r();
        // One duplicate of an existing row, one internal duplicate, two new.
        let n = rel.insert_tuples(&[vec![1, 2], vec![0, 9], vec![0, 9], vec![9, 0]]);
        assert_eq!(n, 2);
        assert_eq!(rel.len(), 6);
        let rows: Vec<&[Value]> = rel.iter().collect();
        assert_eq!(
            rows,
            vec![&[0, 9][..], &[1, 1], &[1, 2], &[2, 2], &[3, 1], &[9, 0]]
        );
        assert!(rel.contains(&[0, 9]));
        assert!(rel.contains(&[9, 0]));
        // Re-inserting is a no-op.
        assert_eq!(rel.insert_tuples(&[vec![0, 9]]), 0);
        assert_eq!(rel.len(), 6);
    }

    #[test]
    fn remove_tuples_compacts_sorted() {
        let mut rel = r();
        // One present row, one absent, one duplicate removal of a present row.
        let n = rel.remove_tuples(&[vec![1, 2], vec![8, 8], vec![1, 2], vec![3, 1]]);
        assert_eq!(n, 2);
        assert_eq!(rel.len(), 2);
        let rows: Vec<&[Value]> = rel.iter().collect();
        assert_eq!(rows, vec![&[1, 1][..], &[2, 2]]);
        assert!(!rel.contains(&[1, 2]));
        // Removing again is an idempotent no-op.
        assert_eq!(rel.remove_tuples(&[vec![1, 2]]), 0);
        assert_eq!(rel.len(), 2);
        // Draining the relation entirely.
        assert_eq!(rel.remove_tuples(&[vec![1, 1], vec![2, 2]]), 2);
        assert!(rel.is_empty());
    }

    #[test]
    fn remove_then_insert_round_trips() {
        let mut rel = r();
        let before: Vec<Tuple> = rel.iter().map(<[Value]>::to_vec).collect();
        assert_eq!(rel.remove_tuples(&[vec![2, 2]]), 1);
        assert_eq!(rel.insert_tuples(&[vec![2, 2]]), 1);
        let after: Vec<Tuple> = rel.iter().map(<[Value]>::to_vec).collect();
        assert_eq!(before, after);
    }

    #[test]
    fn removals_compact_physically_no_tombstones() {
        // Removal is physical compaction, not tombstoning: the dead rows
        // leave the flat buffer immediately, so heap usage shrinks, the
        // sorted invariant holds, and iteration never sees a removed row.
        let mut rel = Relation::from_flat("R", 2, (0..200).collect());
        assert_eq!(rel.len(), 100);
        let before_bytes = rel.heap_bytes();
        let victims: Vec<Tuple> = (0..50).map(|i| vec![4 * i, 4 * i + 1]).collect();
        assert_eq!(rel.remove_tuples(&victims), 50);
        assert_eq!(rel.len(), 50);
        assert!(rel.heap_bytes() < before_bytes, "no memory reclaimed");
        for v in &victims {
            assert!(!rel.contains(v), "tombstone visible for {v:?}");
        }
        let rows: Vec<&[Value]> = rel.iter().collect();
        assert!(
            rows.windows(2)
                .all(|w| lex_cmp(w[0], w[1]) == Ordering::Less),
            "compaction broke the sorted invariant"
        );
        // Draining everything leaves a genuinely empty relation, and the
        // empty relation keeps accepting both operations.
        let rest: Vec<Tuple> = rows.iter().map(|r| r.to_vec()).collect();
        assert_eq!(rel.remove_tuples(&rest), 50);
        assert!(rel.is_empty());
        assert_eq!(rel.remove_tuples(&[vec![0, 1]]), 0);
        assert_eq!(rel.insert_tuples(&[vec![0, 1]]), 1);
    }

    #[test]
    fn interleaved_inserts_and_removes_match_set_model() {
        // Model-based: a stream of interleaved inserts/removes against a
        // BTreeSet oracle. The relation must agree on cardinality,
        // membership, and (sorted) iteration order at every step.
        let mut rel = Relation::new("R", 2, vec![]);
        let mut model = std::collections::BTreeSet::<Tuple>::new();
        let mut state = 0x9e3779b97f4a7c15u64; // fixed-seed xorshift
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..300 {
            let t = vec![next() % 7, next() % 7];
            if next() % 3 == 0 {
                let removed = rel.remove_tuples(std::slice::from_ref(&t));
                assert_eq!(removed == 1, model.remove(&t));
            } else {
                let inserted = rel.insert_tuples(std::slice::from_ref(&t));
                assert_eq!(inserted == 1, model.insert(t.clone()));
            }
            assert_eq!(rel.len(), model.len());
        }
        let rows: Vec<Tuple> = rel.iter().map(<[Value]>::to_vec).collect();
        let expect: Vec<Tuple> = model.into_iter().collect();
        assert_eq!(rows, expect, "relation diverged from the set model");
    }

    #[test]
    fn insert_into_empty_relation() {
        let mut rel = Relation::new("E", 2, vec![]);
        assert_eq!(rel.insert_tuples(&[vec![2, 1], vec![1, 2]]), 2);
        let rows: Vec<&[Value]> = rel.iter().collect();
        assert_eq!(rows, vec![&[1, 2][..], &[2, 1]]);
    }
}
