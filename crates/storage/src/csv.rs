//! A small CSV loader for bringing real datasets into the engine.
//!
//! The format is deliberately minimal: comma-separated fields, optional
//! double-quoting (with `""` escapes), `#`-prefixed comment lines, and an
//! optional header row. Every field is interned through an [`Interner`], so
//! mixed numeric/textual data lands in one consistent value space.

use crate::interner::Interner;
use crate::relation::Relation;
use cqc_common::error::{CqcError, Result};
use cqc_common::value::Tuple;
use std::io::BufRead;

/// Options for CSV loading.
#[derive(Debug, Clone, Copy, Default)]
pub struct CsvOptions {
    /// Skip the first non-comment line.
    pub has_header: bool,
}

/// Parses one CSV line into fields (handles double quotes and `""`
/// escapes).
fn parse_line(line: &str) -> Result<Vec<String>> {
    let mut fields = Vec::new();
    let mut cur = String::new();
    let mut chars = line.chars().peekable();
    let mut in_quotes = false;
    while let Some(c) = chars.next() {
        match c {
            '"' if in_quotes => {
                if chars.peek() == Some(&'"') {
                    chars.next();
                    cur.push('"');
                } else {
                    in_quotes = false;
                }
            }
            '"' if cur.is_empty() => in_quotes = true,
            '"' => {
                return Err(CqcError::Parse(format!(
                    "stray quote inside unquoted field: `{line}`"
                )));
            }
            ',' if !in_quotes => {
                fields.push(std::mem::take(&mut cur));
            }
            c => cur.push(c),
        }
    }
    if in_quotes {
        return Err(CqcError::Parse(format!("unterminated quote: `{line}`")));
    }
    fields.push(cur);
    Ok(fields)
}

/// Loads a relation from CSV text.
///
/// Every row must have the same number of fields; fields are interned
/// (trimmed of surrounding whitespace unless quoted).
///
/// # Errors
///
/// Fails on I/O errors, ragged rows, or malformed quoting.
pub fn relation_from_csv(
    name: &str,
    reader: impl BufRead,
    interner: &mut Interner,
    options: CsvOptions,
) -> Result<Relation> {
    let mut tuples: Vec<Tuple> = Vec::new();
    let mut arity: Option<usize> = None;
    let mut header_pending = options.has_header;
    for (lineno, line) in reader.lines().enumerate() {
        let line = line.map_err(|e| CqcError::Parse(format!("I/O error: {e}")))?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        if header_pending {
            header_pending = false;
            continue;
        }
        let fields = parse_line(trimmed)?;
        match arity {
            None => arity = Some(fields.len()),
            Some(a) if a != fields.len() => {
                return Err(CqcError::Parse(format!(
                    "row {} has {} fields, expected {a}",
                    lineno + 1,
                    fields.len()
                )));
            }
            _ => {}
        }
        tuples.push(fields.iter().map(|f| interner.intern(f.trim())).collect());
    }
    let arity = arity.ok_or_else(|| {
        CqcError::Parse(format!("CSV for relation `{name}` contains no data rows"))
    })?;
    Ok(Relation::new(name, arity, tuples))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loads_basic_csv() {
        let data = "alice,bob\nbob,carol\nalice,carol\n";
        let mut interner = Interner::new();
        let r =
            relation_from_csv("E", data.as_bytes(), &mut interner, CsvOptions::default()).unwrap();
        assert_eq!(r.arity(), 2);
        assert_eq!(r.len(), 3);
        let a = interner.get("alice").unwrap();
        let b = interner.get("bob").unwrap();
        assert!(r.contains(&[a, b]));
    }

    #[test]
    fn header_and_comments_skipped() {
        let data = "# co-author pairs\nsrc,dst\nalice,bob\n\n# trailing comment\nbob,carol\n";
        let mut interner = Interner::new();
        let r = relation_from_csv(
            "E",
            data.as_bytes(),
            &mut interner,
            CsvOptions { has_header: true },
        )
        .unwrap();
        assert_eq!(r.len(), 2);
        assert!(interner.get("src").is_none(), "header must not be interned");
    }

    #[test]
    fn quoting_and_escapes() {
        let data = "\"Smith, John\",\"say \"\"hi\"\"\"\nplain,field\n";
        let mut interner = Interner::new();
        let r =
            relation_from_csv("E", data.as_bytes(), &mut interner, CsvOptions::default()).unwrap();
        assert_eq!(r.len(), 2);
        assert!(interner.get("Smith, John").is_some());
        assert!(interner.get("say \"hi\"").is_some());
    }

    #[test]
    fn errors_reported() {
        let mut i = Interner::new();
        // Ragged rows.
        let e = relation_from_csv("E", "a,b\nc\n".as_bytes(), &mut i, CsvOptions::default());
        assert!(e.is_err());
        // Unterminated quote.
        let e = relation_from_csv("E", "\"abc\n".as_bytes(), &mut i, CsvOptions::default());
        assert!(e.is_err());
        // Empty input.
        let e = relation_from_csv("E", "# nothing\n".as_bytes(), &mut i, CsvOptions::default());
        assert!(e.is_err());
    }

    #[test]
    fn whitespace_trimmed_outside_quotes() {
        let mut i = Interner::new();
        let r =
            relation_from_csv("E", " a , b \n".as_bytes(), &mut i, CsvOptions::default()).unwrap();
        assert!(i.get("a").is_some());
        assert!(i.get(" a ").is_none());
        assert_eq!(r.len(), 1);
    }
}
