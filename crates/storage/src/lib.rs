//! Relational storage for the `cqc` workspace.
//!
//! The paper assumes the input database is stored with "the necessary indexes
//! on the base relations (that need only linear space)" (§4.3). This crate
//! provides exactly that substrate:
//!
//! * [`relation::Relation`] — a deduplicated, lexicographically sorted set of
//!   tuples with O(log n) membership tests;
//! * [`database::Database`] — the catalog mapping relation names to
//!   relations, with the `|D|` size measure used throughout the paper and a
//!   monotone [`database::Epoch`] version counter bumped by every mutation;
//! * [`delta::Delta`] — batched tuple insertions applied atomically via
//!   [`Database::apply`], the write path of the serve-under-change regime;
//! * [`sorted_index::SortedIndex`] — a column-major sorted projection of a
//!   relation under an arbitrary attribute order, supporting the
//!   prefix-plus-range *count* probes that implement the paper's Õ(1) count
//!   oracle (two binary searches), and the cursor ranges that back the
//!   leapfrog trie-join in `cqc-join`;
//! * [`partition::Partitioning`] — hash partitioning of a database into
//!   disjoint shard sub-databases (and the matching per-shard routing of
//!   [`delta::Delta`]s), the substrate of the sharded engine;
//! * [`domain::Domain`] — per-variable sorted active domains with
//!   rank/value conversions; `cqc-core` works in rank space so that the
//!   open/closed interval algebra of §4.1 reduces to integer arithmetic;
//! * [`interner::Interner`] — string interning so that real datasets (e.g.
//!   the DBLP-style examples) can be loaded into the `u64` value domain;
//! * [`wire`] — the canonical [`delta::Delta`] byte layout, shared by the
//!   network update message and the durable write-ahead log.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod csv;
pub mod database;
pub mod delta;
pub mod domain;
pub mod index_pool;
pub mod interner;
pub mod partition;
mod radix;
pub mod relation;
pub mod sorted_index;
pub mod wire;

pub use csv::{relation_from_csv, CsvOptions};
pub use database::{Database, Epoch, RelationId};
pub use delta::Delta;
pub use domain::Domain;
pub use index_pool::IndexPool;
pub use interner::Interner;
pub use partition::{shard_of_value, PartitionSpec, Partitioning, ShardAssignment};
pub use relation::Relation;
pub use sorted_index::SortedIndex;
