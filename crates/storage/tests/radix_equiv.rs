//! Property tests: the radix-sorted construction paths are byte-for-byte
//! equivalent to comparison sorting.
//!
//! [`SortedIndex::build`] and [`Relation::from_flat`] now sort through the
//! LSD radix permutation sort (with a comparison fallback); these tests pin
//! them against independent comparison-sorted references across random
//! relations, arities, attribute orders, duplicate-heavy inputs,
//! already-sorted inputs (the adoption fast path), and value domains from
//! single-byte to the full `u64` range (1–8 radix passes per column).

use cqc_common::value::{lex_cmp, Value};
use cqc_storage::{Relation, SortedIndex};

/// Deterministic LCG so failures replay.
fn rng(seed: u64) -> impl FnMut(u64) -> u64 {
    let mut state = seed.wrapping_mul(0x9e3779b97f4a7c15) | 1;
    move |m: u64| {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 33) % m.max(1)
    }
}

/// Reference index construction: comparison sort of owned tuples.
fn reference_index(rel: &Relation, order: &[usize]) -> Vec<Vec<Value>> {
    let mut rows: Vec<Vec<Value>> = rel
        .iter()
        .map(|r| order.iter().map(|&c| r[c]).collect())
        .collect();
    rows.sort_by(|a, b| lex_cmp(a, b));
    // Transpose to column-major for comparison against `SortedIndex::col`.
    (0..order.len())
        .map(|d| rows.iter().map(|r| r[d]).collect())
        .collect()
}

/// All attribute orders exercised per arity (identity, reversed, one
/// rotation — identity hits the sorted-adoption fast path on schema-sorted
/// relations).
fn orders(arity: usize) -> Vec<Vec<usize>> {
    let identity: Vec<usize> = (0..arity).collect();
    let mut reversed = identity.clone();
    reversed.reverse();
    let mut rotated = identity.clone();
    rotated.rotate_left(1.min(arity.saturating_sub(1)));
    let mut all = vec![identity, reversed, rotated];
    all.dedup();
    all
}

#[test]
fn sorted_index_matches_comparison_reference() {
    let mut next = rng(41);
    for trial in 0..24u64 {
        let arity = 1 + (trial % 4) as usize;
        // Cross the radix/comparison threshold in both directions and mix
        // tiny and huge domains (1-byte through 8-byte key passes).
        let n = [5usize, 40, 300, 2000][(trial % 4) as usize];
        let domain = [5u64, 1000, 1 << 20, u64::MAX - 1][((trial / 4) % 4) as usize];
        let mut flat = Vec::with_capacity(n * arity);
        for _ in 0..n * arity {
            flat.push(next(domain));
        }
        let rel = Relation::from_flat("R", arity, flat);
        for order in orders(arity) {
            let ix = SortedIndex::build(&rel, &order);
            let expect = reference_index(&rel, &order);
            assert_eq!(ix.len(), rel.len(), "trial {trial} order {order:?}");
            for (d, col) in expect.iter().enumerate() {
                assert_eq!(
                    ix.col(d),
                    &col[..],
                    "trial {trial} order {order:?} depth {d}"
                );
            }
        }
    }
}

#[test]
fn sorted_index_duplicate_heavy_columns() {
    // Columns with 2–3 distinct values: every counting-sort bucket is hot
    // and most byte planes are constant (the skip path).
    let mut next = rng(97);
    let n = 1500;
    let mut flat = Vec::with_capacity(n * 3);
    for _ in 0..n {
        flat.push(next(2));
        flat.push(next(3) * 1_000_000); // 3 distinct multi-byte values
        flat.push(7); // constant column
    }
    let rel = Relation::from_flat("D", 3, flat);
    for order in orders(3) {
        let ix = SortedIndex::build(&rel, &order);
        let expect = reference_index(&rel, &order);
        for (d, col) in expect.iter().enumerate() {
            assert_eq!(ix.col(d), &col[..], "order {order:?} depth {d}");
        }
    }
}

#[test]
fn from_flat_matches_tuple_construction() {
    let mut next = rng(1213);
    for trial in 0..24u64 {
        let arity = 1 + (trial % 3) as usize;
        let n = [7usize, 120, 900][(trial % 3) as usize];
        let domain = [4u64, 600, u64::MAX / 3][((trial / 3) % 3) as usize];
        let mut tuples: Vec<Vec<Value>> = Vec::with_capacity(n);
        for _ in 0..n {
            tuples.push((0..arity).map(|_| next(domain)).collect());
        }
        // Heavy duplication for the low-domain trials.
        let flat: Vec<Value> = tuples.iter().flatten().copied().collect();
        assert_eq!(
            Relation::from_flat("R", arity, flat),
            Relation::new("R", arity, tuples),
            "trial {trial}"
        );
    }
}

#[test]
fn from_flat_already_sorted_adoption() {
    // Strictly sorted input must be adopted as-is; sorted-with-duplicates
    // and reverse-sorted must still sort + dedup correctly.
    let sorted: Vec<Value> = (0..500u64).flat_map(|i| [i, i * 3]).collect();
    let rel = Relation::from_flat("S", 2, sorted.clone());
    assert_eq!(rel.len(), 500);
    let back: Vec<Value> = rel.iter().flatten().copied().collect();
    assert_eq!(back, sorted);

    let mut with_dups = sorted.clone();
    with_dups.extend_from_slice(&sorted);
    assert_eq!(Relation::from_flat("T", 2, with_dups).len(), 500);

    let mut reversed = sorted.clone();
    reversed.reverse();
    // Reversing the flat buffer reverses the *values*, giving (3i, i)
    // pairs in descending order — sorting must recover a valid relation.
    let rrel = Relation::from_flat("U", 2, reversed);
    assert_eq!(rrel.len(), 500);
    assert!(rrel.contains(&[3 * 499, 499]));
}

#[test]
fn index_counts_survive_radix_path() {
    // End-to-end: counts on a radix-built index agree with a naive filter.
    let mut next = rng(7);
    let n = 800;
    let mut flat = Vec::with_capacity(n * 2);
    for _ in 0..n {
        flat.push(next(30));
        flat.push(next(30));
    }
    let rel = Relation::from_flat("R", 2, flat);
    let ix = SortedIndex::build(&rel, &[1, 0]);
    for p in 0..30u64 {
        let expect = rel.iter().filter(|r| r[1] == p).count();
        assert_eq!(ix.count(&[p], None), expect, "prefix {p}");
        let expect_range = rel
            .iter()
            .filter(|r| r[1] == p && r[0] >= 5 && r[0] <= 20)
            .count();
        assert_eq!(ix.count(&[p], Some((5, 20))), expect_range, "range {p}");
    }
}
