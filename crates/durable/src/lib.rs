//! Durability for the `cqc` engine: a checksummed write-ahead delta log,
//! atomic snapshots, and crash recovery.
//!
//! The engine's in-memory state is a [`cqc_storage::Database`] advanced by
//! [`cqc_storage::Delta`]s under a monotone epoch counter. This crate
//! persists exactly that model, nothing more:
//!
//! * [`wal`] — an append-only log of applied deltas. Every record is
//!   length-prefixed and CRC32-framed (`u32 len | u32 crc | u64 epoch |
//!   delta bytes`, the delta in the canonical [`cqc_storage::wire`]
//!   layout) and fsynced **before** the epoch is published to readers, so
//!   an acknowledged update is never lost. Replay walks the log and stops
//!   at the first torn, bit-flipped, or out-of-order record, truncating
//!   the tail instead of panicking: the log's valid prefix is the
//!   recovered history.
//! * [`snapshot`] — the whole database in the paper's flat sorted-column
//!   relation layout, checksummed and written temp-file-then-rename so a
//!   crash mid-snapshot leaves the previous snapshot untouched. Rows are
//!   persisted in sorted order, so loading re-adopts them through
//!   [`cqc_storage::Relation::from_flat`]'s already-sorted fast path — no
//!   re-sort on warm start.
//! * [`manifest`] — the single small file binding the current snapshot
//!   (file + epoch) to the current WAL (generation + replay offset). It
//!   is the root of recovery and the only file updated in place (also via
//!   temp-then-rename), which is what lets [`DurableStore::checkpoint`]
//!   compact the log behind a fresh snapshot atomically.
//! * [`store`] — [`DurableStore`], the façade the engine talks to:
//!   `create` a fresh directory, `open` (recover) an existing one,
//!   [`DurableStore::log`] each applied delta, [`DurableStore::checkpoint`]
//!   to snapshot + rotate the log.
//!
//! The fsync contract and the recovery algorithm are specified in
//! `docs/DURABILITY.md`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod crc32;
pub mod manifest;
pub mod snapshot;
pub mod store;
pub mod wal;

pub use manifest::Manifest;
pub use store::{DurableStore, Recovered, CRASH_AFTER_APPENDS_ENV};

use std::path::Path;

/// Fsyncs a directory so a just-renamed file inside it survives power
/// loss (on POSIX the rename itself is only durable once the directory
/// entry is).
pub(crate) fn sync_dir(dir: &Path) -> std::io::Result<()> {
    std::fs::File::open(dir)?.sync_all()
}
