//! Atomic database snapshots in the flat sorted-column relation layout.
//!
//! Layout (`b"CQSN" | u32 version | u64 epoch | u32 relations |
//! per relation: str name, u16 arity, u64 rows, rows × arity u64 |
//! u32 crc`), the CRC-32 covering everything before it; all integers
//! little endian. Rows are written in each relation's sorted storage
//! order, so [`load`] rebuilds every relation through
//! [`Relation::from_flat`]'s already-sorted adoption path — the persisted
//! run is taken over as-is, no re-sort, no per-tuple allocation.
//!
//! Snapshots are immutable once named: [`write()`] goes to `<name>.tmp`,
//! fsyncs, renames to `snap-<epoch>.db`, and fsyncs the directory. A
//! crash at any point leaves either the previous snapshot set or the new
//! file complete — never a half-written file under a live name.

use crate::crc32::crc32;
use cqc_common::error::{CqcError, Result};
use cqc_common::frame::{PayloadReader, PayloadWriter};
use cqc_storage::{Database, Epoch, Relation};
use std::io::Write;
use std::path::Path;

const MAGIC: [u8; 4] = *b"CQSN";
const VERSION: u32 = 1;

/// The canonical filename for the snapshot of `epoch` (zero-padded so
/// lexicographic directory order is epoch order).
pub fn filename(epoch: Epoch) -> String {
    format!("snap-{epoch:020}.db")
}

/// Writes a snapshot of `db` into `dir` (temp-file-then-rename); returns
/// the filename it was committed under.
///
/// # Errors
///
/// I/O failures.
pub fn write(dir: &Path, db: &Database) -> Result<String> {
    let mut w = PayloadWriter::new();
    w.start();
    for b in MAGIC {
        w.put_u8(b);
    }
    w.put_u32(VERSION)
        .put_u64(db.epoch())
        .put_u32(db.num_relations() as u32);
    for rel in db.relations() {
        w.put_str(rel.name())
            .put_u16(rel.arity() as u16)
            .put_u64(rel.len() as u64);
        for row in rel.iter() {
            w.put_values(row);
        }
    }
    let crc = crc32(w.bytes());
    let name = filename(db.epoch());
    let tmp = dir.join(format!("{name}.tmp"));
    let mut f = std::fs::File::create(&tmp)?;
    f.write_all(w.bytes())?;
    f.write_all(&crc.to_le_bytes())?;
    f.sync_all()?;
    drop(f);
    std::fs::rename(&tmp, dir.join(&name))?;
    crate::sync_dir(dir)?;
    Ok(name)
}

/// Loads a snapshot back into a [`Database`] at its persisted epoch.
///
/// # Errors
///
/// I/O failures, and [`CqcError::Io`] when the file fails its magic,
/// version, checksum, or structural checks — a snapshot is only ever
/// renamed into place complete, so damage here is real corruption and
/// recovery must not proceed from it.
pub fn load(path: &Path) -> Result<Database> {
    let bytes = std::fs::read(path)?;
    let corrupt = |why: String| CqcError::Io(format!("snapshot {}: {why}", path.display()));
    if bytes.len() < MAGIC.len() + 4 + 8 + 4 + 4 || bytes[..4] != MAGIC {
        return Err(corrupt("bad magic or truncated".into()));
    }
    let (body, tail) = bytes.split_at(bytes.len() - 4);
    let stored = u32::from_le_bytes(tail.try_into().expect("len 4"));
    if crc32(body) != stored {
        return Err(corrupt("checksum mismatch".into()));
    }
    let mut r = PayloadReader::new(&body[4..]);
    let map_err = |e: CqcError| CqcError::Io(format!("snapshot {}: {e}", path.display()));
    if r.get_u32().map_err(map_err)? != VERSION {
        return Err(corrupt("unsupported version".into()));
    }
    let epoch = r.get_u64().map_err(map_err)?;
    let nrel = r.get_u32().map_err(map_err)? as usize;
    let mut db = Database::new();
    for _ in 0..nrel {
        let name = r.get_str().map_err(map_err)?.to_string();
        let arity = r.get_u16().map_err(map_err)? as usize;
        let rows = r.get_u64().map_err(map_err)? as usize;
        if arity == 0 {
            return Err(corrupt(format!("relation `{name}` claims arity 0")));
        }
        let values = rows.saturating_mul(arity);
        if r.remaining() < values.saturating_mul(8) {
            return Err(corrupt(format!(
                "relation `{name}` claims {rows} rows but the file ends early"
            )));
        }
        let mut flat = Vec::with_capacity(values);
        r.get_values(values, &mut flat).map_err(map_err)?;
        // The sorted run adopts without copying (from_flat's fast path).
        db.add(Relation::from_flat(name, arity, flat))
            .map_err(|e| corrupt(e.to_string()))?;
    }
    if r.remaining() > 0 {
        return Err(corrupt(format!("{} trailing bytes", r.remaining())));
    }
    db.restore_epoch(epoch);
    Ok(db)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqc_storage::Delta;

    fn temp_dir(name: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!("cqc-snap-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    fn sample_db() -> Database {
        let mut db = Database::new();
        db.add(Relation::from_pairs("R", vec![(3, 1), (1, 2), (2, 3)]))
            .unwrap();
        db.add(Relation::new("T", 3, vec![vec![9, 8, 7], vec![1, 2, 3]]))
            .unwrap();
        let mut delta = Delta::new();
        delta.insert("R", vec![5, 5]);
        db.apply(&delta).unwrap();
        db
    }

    #[test]
    fn write_load_round_trips_data_and_epoch() {
        let dir = temp_dir("rt");
        let db = sample_db();
        let name = write(&dir, &db).unwrap();
        assert_eq!(name, filename(db.epoch()));
        let back = load(&dir.join(&name)).unwrap();
        assert_eq!(back.epoch(), db.epoch());
        assert_eq!(back.num_relations(), db.num_relations());
        for rel in db.relations() {
            let b = back.get(rel.name()).unwrap();
            assert_eq!(b, rel);
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn empty_database_round_trips() {
        let dir = temp_dir("empty");
        let db = Database::new();
        let name = write(&dir, &db).unwrap();
        let back = load(&dir.join(&name)).unwrap();
        assert_eq!(back.epoch(), 0);
        assert_eq!(back.num_relations(), 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn bit_flips_are_detected() {
        let dir = temp_dir("flip");
        let db = sample_db();
        let name = write(&dir, &db).unwrap();
        let path = dir.join(&name);
        let clean = std::fs::read(&path).unwrap();
        // Flip one bit at a spread of positions — every one must be caught
        // by the checksum (or the magic check), never loaded silently.
        for pos in (0..clean.len()).step_by(7) {
            let mut bytes = clean.clone();
            bytes[pos] ^= 0x10;
            std::fs::write(&path, &bytes).unwrap();
            assert!(
                matches!(load(&path), Err(CqcError::Io(_))),
                "flip at byte {pos} went undetected"
            );
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
