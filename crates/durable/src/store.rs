//! [`DurableStore`] — the directory-level façade tying WAL, snapshots,
//! and manifest together.

use crate::manifest::{self, Manifest};
use crate::snapshot;
use crate::wal::{self, WalWriter};
use cqc_common::error::{CqcError, Result};
use cqc_storage::{Database, Delta, Epoch};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Crash-injection hook for the recovery harness: when this environment
/// variable holds `n`, the process calls [`std::process::abort`]
/// immediately after the `n`-th successful [`DurableStore::log`] append —
/// i.e. after the record is durable but **before** the epoch is published
/// or the update acknowledged. That is the worst-case power-failure
/// point: recovery must replay the record, and the client that never got
/// an acknowledgement reconciles through a health probe (the
/// preconditioned-update story).
pub const CRASH_AFTER_APPENDS_ENV: &str = "CQC_DURABLE_CRASH_AFTER_APPENDS";

/// What [`DurableStore::open`] recovered.
#[derive(Debug)]
pub struct Recovered {
    /// The store, positioned to append after the replayed history.
    pub store: DurableStore,
    /// The database at its exact pre-crash epoch.
    pub db: Database,
    /// WAL records replayed on top of the snapshot.
    pub replayed: usize,
    /// Bytes of torn/corrupt WAL tail that were truncated away.
    pub truncated_bytes: u64,
}

struct Inner {
    wal: WalWriter,
    manifest: Manifest,
}

/// One data directory: a manifest, the current snapshot, and the current
/// WAL generation. Writers go through a mutex — the engine already
/// serializes updates, so the lock is uncontended in practice.
pub struct DurableStore {
    dir: PathBuf,
    inner: Mutex<Inner>,
    crash_after: Option<u64>,
    appends: AtomicU64,
}

impl std::fmt::Debug for DurableStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DurableStore")
            .field("dir", &self.dir)
            .finish_non_exhaustive()
    }
}

impl DurableStore {
    /// `true` when `dir` holds a manifest — i.e. [`DurableStore::open`]
    /// will recover state rather than fail.
    pub fn exists(dir: &Path) -> bool {
        dir.join(manifest::MANIFEST_FILE).is_file()
    }

    /// Initializes a fresh data directory (created if missing): an empty
    /// generation-0 WAL and a manifest with no snapshot. Existing durable
    /// state in `dir` is refused — recover it with [`DurableStore::open`]
    /// or delete it explicitly.
    ///
    /// # Errors
    ///
    /// I/O failures; [`CqcError::Config`] when `dir` already holds a
    /// manifest.
    pub fn create(dir: &Path) -> Result<DurableStore> {
        if DurableStore::exists(dir) {
            return Err(CqcError::Config(format!(
                "data directory {} already holds durable state; open it instead of re-creating",
                dir.display()
            )));
        }
        std::fs::create_dir_all(dir)?;
        let m = Manifest {
            snapshot_file: None,
            snapshot_epoch: 0,
            wal_gen: 0,
            wal_offset: wal::WAL_HEADER,
        };
        let wal = WalWriter::create(&dir.join(m.wal_file()))?;
        manifest::store(dir, &m)?;
        Ok(DurableStore::assemble(dir.to_path_buf(), wal, m))
    }

    /// Recovers `dir`: loads the manifest, the snapshot it names (if
    /// any), scans the WAL from the manifest's offset, truncates any
    /// torn/corrupt tail, and replays the valid records whose epoch lies
    /// past the snapshot. The returned database is at its exact pre-crash
    /// epoch — including updates that were logged but never acknowledged.
    ///
    /// # Errors
    ///
    /// [`CqcError::Io`] when no manifest exists or the manifest/snapshot
    /// fail their checksums; [`CqcError::Schema`] when a replayed delta
    /// no longer matches the snapshot's schema (both mean the directory
    /// is damaged beyond safe recovery). WAL-tail damage is *not* an
    /// error — that is the expected crash debris, reported via
    /// [`Recovered::truncated_bytes`].
    pub fn open(dir: &Path) -> Result<Recovered> {
        let m = manifest::load(dir)?.ok_or_else(|| {
            CqcError::Io(format!(
                "no manifest in {} — not a durable data directory",
                dir.display()
            ))
        })?;
        let mut db = match &m.snapshot_file {
            Some(f) => snapshot::load(&dir.join(f))?,
            None => Database::new(),
        };
        let wal_path = dir.join(m.wal_file());
        let scan = if wal_path.is_file() {
            wal::scan(&wal_path, m.wal_offset)?
        } else {
            // The WAL is created and fsynced before the manifest naming it
            // is renamed in, so this is reachable only through external
            // damage; an empty log (nothing past the snapshot) is the
            // safe reading.
            wal::WalScan {
                records: Vec::new(),
                valid_len: 0,
                truncated_bytes: 0,
            }
        };
        let mut replayed = 0usize;
        for (epoch, delta) in &scan.records {
            if *epoch <= db.epoch() {
                continue; // already inside the snapshot
            }
            db.apply(delta)?;
            // Pin rather than trust bump-by-one counting: the persisted
            // stamp is the authority on what the fleet observed.
            db.restore_epoch(*epoch);
            replayed += 1;
        }
        let wal = WalWriter::open_truncated(&wal_path, scan.valid_len)?;
        let store = DurableStore::assemble(dir.to_path_buf(), wal, m);
        store.cleanup_stale_files();
        Ok(Recovered {
            store,
            db,
            replayed,
            truncated_bytes: scan.truncated_bytes,
        })
    }

    fn assemble(dir: PathBuf, wal: WalWriter, manifest: Manifest) -> DurableStore {
        let crash_after = std::env::var(CRASH_AFTER_APPENDS_ENV)
            .ok()
            .and_then(|s| s.parse::<u64>().ok());
        DurableStore {
            dir,
            inner: Mutex::new(Inner { wal, manifest }),
            crash_after,
            appends: AtomicU64::new(0),
        }
    }

    /// Appends one applied delta, stamped with the epoch it produced, and
    /// fsyncs. Call after [`Database::apply`] succeeded on a private copy
    /// and **before** publishing the new epoch: on return the update is
    /// durable, so an epoch a reader can observe is always recoverable.
    ///
    /// # Errors
    ///
    /// I/O failures — the caller must then *not* publish the epoch (a
    /// partially written record is exactly the torn tail recovery
    /// truncates).
    pub fn log(&self, epoch: Epoch, delta: &Delta) -> Result<()> {
        let mut inner = self.inner.lock().expect("durable store lock poisoned");
        inner.wal.append(epoch, delta)?;
        drop(inner);
        let n = self.appends.fetch_add(1, Ordering::SeqCst) + 1;
        if self.crash_after.is_some_and(|limit| n >= limit) {
            // Simulated power failure at the worst point: durable on
            // disk, invisible to every reader, unacknowledged.
            std::process::abort();
        }
        Ok(())
    }

    /// Checkpoints: writes a snapshot of `db`, rotates to a fresh WAL
    /// generation, commits both through the manifest, then deletes the
    /// superseded log and snapshot files. A crash anywhere in the
    /// sequence leaves a recoverable directory — before the manifest
    /// rename the old `(snapshot, WAL)` pair is still named and intact;
    /// after it the new pair is; leftover files are swept on the next
    /// [`DurableStore::open`].
    ///
    /// `db` must be the engine's current published database (schema
    /// changes such as new relations reach disk *only* through
    /// checkpoints — the WAL carries deltas, not DDL).
    ///
    /// # Errors
    ///
    /// I/O failures (the previous checkpoint remains in force).
    pub fn checkpoint(&self, db: &Database) -> Result<()> {
        let mut inner = self.inner.lock().expect("durable store lock poisoned");
        let snap = snapshot::write(&self.dir, db)?;
        let next = Manifest {
            snapshot_file: Some(snap),
            snapshot_epoch: db.epoch(),
            wal_gen: inner.manifest.wal_gen + 1,
            wal_offset: wal::WAL_HEADER,
        };
        let new_wal = WalWriter::create(&self.dir.join(next.wal_file()))?;
        manifest::store(&self.dir, &next)?;
        // Committed: everything the old generation held is now inside the
        // snapshot. Deletion is best-effort (open() sweeps leftovers).
        let old = std::mem::replace(&mut inner.manifest, next);
        inner.wal = new_wal;
        let _ = std::fs::remove_file(self.dir.join(old.wal_file()));
        if let Some(old_snap) = old.snapshot_file {
            if Some(&old_snap) != inner.manifest.snapshot_file.as_ref() {
                let _ = std::fs::remove_file(self.dir.join(old_snap));
            }
        }
        Ok(())
    }

    /// Removes `snap-*`/`wal-*`/`*.tmp` files the manifest no longer
    /// references — debris from a crash between a checkpoint's commit and
    /// its deletions. Best-effort by design.
    fn cleanup_stale_files(&self) {
        let inner = self.inner.lock().expect("durable store lock poisoned");
        let keep_wal = inner.manifest.wal_file();
        let keep_snap = inner.manifest.snapshot_file.clone();
        drop(inner);
        let Ok(entries) = std::fs::read_dir(&self.dir) else {
            return;
        };
        for entry in entries.flatten() {
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            let stale = name.ends_with(".tmp")
                || (name.starts_with("wal-") && name != keep_wal)
                || (name.starts_with("snap-") && Some(name) != keep_snap.as_deref());
            if stale {
                let _ = std::fs::remove_file(entry.path());
            }
        }
    }

    /// The data directory this store owns.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Current end-of-WAL offset (introspection for tests and stats).
    pub fn wal_offset(&self) -> u64 {
        self.inner
            .lock()
            .expect("durable store lock poisoned")
            .wal
            .offset()
    }

    /// A copy of the current manifest (introspection for tests and stats).
    pub fn manifest(&self) -> Manifest {
        self.inner
            .lock()
            .expect("durable store lock poisoned")
            .manifest
            .clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqc_storage::Relation;

    fn temp_dir(name: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("cqc-store-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    fn seed_db() -> Database {
        let mut db = Database::new();
        db.add(Relation::from_pairs("R", vec![(1, 2), (2, 3)]))
            .unwrap();
        db.add(Relation::from_pairs("S", vec![(2, 3)])).unwrap();
        db
    }

    fn insert(rel: &str, a: u64, b: u64) -> Delta {
        let mut d = Delta::new();
        d.insert(rel, vec![a, b]);
        d
    }

    #[test]
    fn create_checkpoint_log_open_round_trips() {
        let dir = temp_dir("round-trip");
        let store = DurableStore::create(&dir).unwrap();
        let mut db = seed_db();
        store.checkpoint(&db).unwrap();
        for i in 0..5u64 {
            let delta = insert("R", 100 + i, i);
            let epoch = db.apply(&delta).unwrap();
            store.log(epoch, &delta).unwrap();
        }
        drop(store);

        let rec = DurableStore::open(&dir).unwrap();
        assert_eq!(rec.replayed, 5);
        assert_eq!(rec.truncated_bytes, 0);
        assert_eq!(rec.db.epoch(), db.epoch());
        assert_eq!(rec.db.get("R").unwrap(), db.get("R").unwrap());
        assert_eq!(rec.db.get("S").unwrap(), db.get("S").unwrap());

        // Recovery is idempotent: open again, identical state.
        drop(rec);
        let rec = DurableStore::open(&dir).unwrap();
        assert_eq!(rec.db.epoch(), db.epoch());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn create_refuses_an_existing_directory() {
        let dir = temp_dir("refuse");
        let _store = DurableStore::create(&dir).unwrap();
        assert!(matches!(
            DurableStore::create(&dir),
            Err(CqcError::Config(_))
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn checkpoint_compacts_the_log_and_survives_reopen() {
        let dir = temp_dir("compact");
        let store = DurableStore::create(&dir).unwrap();
        let mut db = seed_db();
        store.checkpoint(&db).unwrap();
        for i in 0..3u64 {
            let delta = insert("S", i, i);
            let epoch = db.apply(&delta).unwrap();
            store.log(epoch, &delta).unwrap();
        }
        let before = store.wal_offset();
        assert!(before > wal::WAL_HEADER);
        store.checkpoint(&db).unwrap();
        assert_eq!(store.wal_offset(), wal::WAL_HEADER, "log must rotate");
        let m = store.manifest();
        assert_eq!(m.snapshot_epoch, db.epoch());
        drop(store);

        // Exactly one wal and one snapshot remain on disk.
        let mut wals = 0;
        let mut snaps = 0;
        for e in std::fs::read_dir(&dir).unwrap().flatten() {
            let name = e.file_name().to_string_lossy().into_owned();
            if name.starts_with("wal-") {
                wals += 1;
            }
            if name.starts_with("snap-") {
                snaps += 1;
            }
        }
        assert_eq!((wals, snaps), (1, 1));

        let rec = DurableStore::open(&dir).unwrap();
        assert_eq!(rec.replayed, 0, "everything is inside the snapshot");
        assert_eq!(rec.db.epoch(), db.epoch());
        assert_eq!(rec.db.get("S").unwrap(), db.get("S").unwrap());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_recovers_to_last_valid_prefix_and_keeps_serving() {
        let dir = temp_dir("torn");
        let store = DurableStore::create(&dir).unwrap();
        let mut db = seed_db();
        store.checkpoint(&db).unwrap();
        let d1 = insert("R", 7, 7);
        let e1 = db.apply(&d1).unwrap();
        store.log(e1, &d1).unwrap();
        let wal_path = dir.join(store.manifest().wal_file());
        drop(store);
        // Crash debris: garbage after the last record.
        let mut bytes = std::fs::read(&wal_path).unwrap();
        bytes.extend_from_slice(&[0xAB; 13]);
        std::fs::write(&wal_path, &bytes).unwrap();

        let rec = DurableStore::open(&dir).unwrap();
        assert_eq!(rec.truncated_bytes, 13);
        assert_eq!(rec.replayed, 1);
        assert_eq!(rec.db.epoch(), e1);
        // The tail is physically gone and the log accepts new appends.
        assert_eq!(
            std::fs::metadata(&wal_path).unwrap().len(),
            rec.store.wal_offset()
        );
        let d2 = insert("R", 8, 8);
        let mut db2 = rec.db;
        let e2 = db2.apply(&d2).unwrap();
        rec.store.log(e2, &d2).unwrap();
        drop(rec.store);
        let rec = DurableStore::open(&dir).unwrap();
        assert_eq!(rec.db.epoch(), e2);
        assert!(rec.db.get("R").unwrap().contains(&[8, 8]));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn open_without_manifest_is_a_typed_error() {
        let dir = temp_dir("nomanifest");
        std::fs::create_dir_all(&dir).unwrap();
        assert!(matches!(DurableStore::open(&dir), Err(CqcError::Io(_))));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
