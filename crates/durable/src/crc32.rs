//! CRC-32 (IEEE 802.3, reflected, polynomial `0xEDB88320`) — the checksum
//! framing every WAL record, snapshot, and manifest.
//!
//! Hand-rolled because the workspace builds without crates.io access; the
//! table is computed at compile time and the result matches the ubiquitous
//! zlib/`cksum -o3` definition (checked against the standard `"123456789"`
//! test vector below), so on-disk files remain verifiable with external
//! tooling.

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = build_table();

/// The CRC-32 of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = !0u32;
    for &b in bytes {
        c = TABLE[((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_test_vector() {
        // The check value every CRC-32/ISO-HDLC implementation agrees on.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn single_bit_flips_change_the_sum() {
        let base = b"write-ahead log record".to_vec();
        let reference = crc32(&base);
        for byte in 0..base.len() {
            for bit in 0..8 {
                let mut flipped = base.clone();
                flipped[byte] ^= 1 << bit;
                assert_ne!(crc32(&flipped), reference, "byte {byte} bit {bit}");
            }
        }
    }
}
