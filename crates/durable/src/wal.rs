//! The write-ahead delta log.
//!
//! File layout: an 8-byte header (`b"CQWL" | u32 version`), then records
//! back to back:
//!
//! ```text
//! | len: u32 le | crc: u32 le | payload: len bytes |
//! payload = u64 epoch | delta (cqc_storage::wire layout)
//! ```
//!
//! `crc` is the CRC-32 of the payload. Epochs are strictly increasing
//! within a file — each record carries the database epoch *after* its
//! delta applied — which is what lets [`scan`] detect a duplicated tail
//! (a record replayed into the file twice by a corrupt copy) as cleanly
//! as a torn or bit-flipped one: replay stops at the first record that is
//! short, fails its checksum, fails to parse, or does not advance the
//! epoch, and everything from that point on is the invalid tail.
//!
//! Durability contract: [`WalWriter::append`] returns only after
//! `fdatasync`. The engine calls it after a delta has applied to its
//! private copy of the database but **before** the new epoch is published,
//! so every epoch any reader ever observed is reconstructible from disk.

use crate::crc32::crc32;
use cqc_common::error::{CqcError, Result};
use cqc_common::frame::{code, PayloadReader, PayloadWriter, MAX_FRAME};
use cqc_storage::{wire, Delta, Epoch};
use std::fs::OpenOptions;
use std::io::{Seek, SeekFrom, Write};
use std::path::Path;

/// Size of the file header (`b"CQWL" | u32 version`).
pub const WAL_HEADER: u64 = 8;

/// Per-record framing overhead (`u32 len | u32 crc`).
pub const RECORD_HEADER: u64 = 8;

const MAGIC: [u8; 4] = *b"CQWL";
const VERSION: u32 = 1;

/// Encodes one framed record: `u32 len | u32 crc | u64 epoch | delta`.
pub fn encode_record(epoch: Epoch, delta: &Delta) -> Vec<u8> {
    let mut w = PayloadWriter::new();
    w.start().put_u64(epoch);
    wire::put_delta(&mut w, delta, false);
    let payload = w.bytes();
    let mut rec = Vec::with_capacity(RECORD_HEADER as usize + payload.len());
    rec.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    rec.extend_from_slice(&crc32(payload).to_le_bytes());
    rec.extend_from_slice(payload);
    rec
}

/// Decodes a record payload (the bytes after the `len`/`crc` framing)
/// back into its epoch stamp and delta.
///
/// # Errors
///
/// [`code::BAD_FRAME`] on truncation or trailing bytes.
pub fn decode_record_payload(payload: &[u8]) -> Result<(Epoch, Delta)> {
    let mut r = PayloadReader::new(payload);
    let epoch = r.get_u64()?;
    let delta = wire::read_delta(&mut r)?;
    if r.remaining() > 0 {
        return Err(CqcError::Protocol {
            code: code::BAD_FRAME,
            detail: format!(
                "{} trailing bytes after a WAL record payload",
                r.remaining()
            ),
        });
    }
    Ok((epoch, delta))
}

/// What a [`scan`] of a log found: the valid prefix, decoded.
#[derive(Debug)]
pub struct WalScan {
    /// The records of the valid prefix, in file order.
    pub records: Vec<(Epoch, Delta)>,
    /// File offset one past the last valid record — where the file must
    /// be truncated to and where appends resume. `0` means the header
    /// itself was missing or foreign and the file must be recreated.
    pub valid_len: u64,
    /// Bytes past `valid_len` (the torn/corrupt tail to be dropped).
    pub truncated_bytes: u64,
}

/// Reads the log at `path`, decoding records from offset `from` (clamped
/// into the file; pass a manifest's `wal_offset` to skip the compacted
/// prefix) until the first invalid record. Never panics on corrupt input:
/// a short header, a record that overruns the file, a checksum or parse
/// failure, and a non-advancing epoch all simply end the valid prefix.
///
/// # Errors
///
/// Only real I/O failures; corruption is reported through the scan.
pub fn scan(path: &Path, from: u64) -> Result<WalScan> {
    let bytes = std::fs::read(path)?;
    if bytes.len() < WAL_HEADER as usize
        || bytes[..4] != MAGIC
        || u32::from_le_bytes(bytes[4..8].try_into().expect("len 4")) != VERSION
    {
        return Ok(WalScan {
            records: Vec::new(),
            valid_len: 0,
            truncated_bytes: bytes.len() as u64,
        });
    }
    let mut pos = from.max(WAL_HEADER) as usize;
    if pos > bytes.len() {
        pos = WAL_HEADER as usize; // manifest ahead of the file: rescan all
    }
    let mut records = Vec::new();
    let mut last_epoch: Option<Epoch> = None;
    let mut valid = pos;
    while pos < bytes.len() {
        let left = bytes.len() - pos;
        if left < RECORD_HEADER as usize {
            break; // torn mid-header
        }
        let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().expect("len 4")) as usize;
        if len == 0 || len > MAX_FRAME {
            break; // corrupt length prefix
        }
        let crc = u32::from_le_bytes(bytes[pos + 4..pos + 8].try_into().expect("len 4"));
        if left - (RECORD_HEADER as usize) < len {
            break; // torn mid-payload
        }
        let payload = &bytes[pos + 8..pos + 8 + len];
        if crc32(payload) != crc {
            break; // bit flip
        }
        let Ok((epoch, delta)) = decode_record_payload(payload) else {
            break; // checksum collided with a parse failure: still corrupt
        };
        if last_epoch.is_some_and(|e| epoch <= e) {
            break; // duplicated or reordered tail
        }
        last_epoch = Some(epoch);
        records.push((epoch, delta));
        pos += RECORD_HEADER as usize + len;
        valid = pos;
    }
    Ok(WalScan {
        records,
        valid_len: valid as u64,
        truncated_bytes: (bytes.len() - valid) as u64,
    })
}

/// An open log positioned for appending.
#[derive(Debug)]
pub struct WalWriter {
    file: std::fs::File,
    offset: u64,
}

impl WalWriter {
    /// Creates (or truncates to empty) the log at `path`: header written
    /// and fsynced, positioned at [`WAL_HEADER`].
    ///
    /// # Errors
    ///
    /// I/O failures.
    pub fn create(path: &Path) -> Result<WalWriter> {
        let mut file = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(path)?;
        file.write_all(&MAGIC)?;
        file.write_all(&VERSION.to_le_bytes())?;
        file.sync_all()?;
        Ok(WalWriter {
            file,
            offset: WAL_HEADER,
        })
    }

    /// Opens the log at `path` for appending after a [`scan`]: the file is
    /// physically truncated to `valid_len` (dropping the torn tail — this
    /// is the "cleanly truncating" half of recovery) and the writer
    /// positioned at the end. `valid_len == 0` (bad header) recreates the
    /// file from scratch.
    ///
    /// # Errors
    ///
    /// I/O failures.
    pub fn open_truncated(path: &Path, valid_len: u64) -> Result<WalWriter> {
        if valid_len < WAL_HEADER {
            return WalWriter::create(path);
        }
        let mut file = OpenOptions::new().write(true).open(path)?;
        file.set_len(valid_len)?;
        file.sync_all()?;
        file.seek(SeekFrom::Start(valid_len))?;
        Ok(WalWriter {
            file,
            offset: valid_len,
        })
    }

    /// Appends one epoch-stamped delta record and fsyncs (`fdatasync`);
    /// returns the new end-of-log offset. On return the record is durable:
    /// the caller may publish the epoch.
    ///
    /// # Errors
    ///
    /// I/O failures (the record may then be partially written — exactly
    /// the torn tail the next [`scan`] truncates).
    pub fn append(&mut self, epoch: Epoch, delta: &Delta) -> Result<u64> {
        let rec = encode_record(epoch, delta);
        self.file.write_all(&rec)?;
        self.file.sync_data()?;
        self.offset += rec.len() as u64;
        Ok(self.offset)
    }

    /// Current end-of-log offset (header included).
    pub fn offset(&self) -> u64 {
        self.offset
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn delta(rel: &str, rows: &[(u64, u64)]) -> Delta {
        let mut d = Delta::new();
        for &(a, b) in rows {
            d.insert(rel, vec![a, b]);
        }
        d
    }

    fn temp_path(name: &str) -> std::path::PathBuf {
        let p = std::env::temp_dir().join(format!("cqc-wal-{}-{name}", std::process::id()));
        let _ = std::fs::remove_file(&p);
        p
    }

    #[test]
    fn append_scan_round_trip() {
        let path = temp_path("round-trip");
        let mut w = WalWriter::create(&path).unwrap();
        let d1 = delta("R", &[(1, 2), (3, 4)]);
        let d2 = delta("S", &[(5, 6)]);
        w.append(4, &d1).unwrap();
        let end = w.append(5, &d2).unwrap();
        assert_eq!(end, w.offset());

        let scan = scan(&path, WAL_HEADER).unwrap();
        assert_eq!(scan.truncated_bytes, 0);
        assert_eq!(scan.valid_len, end);
        assert_eq!(scan.records.len(), 2);
        assert_eq!(scan.records[0], (4, d1));
        assert_eq!(scan.records[1], (5, d2));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn torn_tail_ends_the_valid_prefix() {
        let path = temp_path("torn");
        let mut w = WalWriter::create(&path).unwrap();
        w.append(1, &delta("R", &[(1, 2)])).unwrap();
        let good = w.offset();
        // A torn append: only half of the next record reaches the disk.
        let rec = encode_record(2, &delta("R", &[(3, 4)]));
        let mut bytes = std::fs::read(&path).unwrap();
        bytes.extend_from_slice(&rec[..rec.len() / 2]);
        std::fs::write(&path, &bytes).unwrap();

        let s = scan(&path, WAL_HEADER).unwrap();
        assert_eq!(s.records.len(), 1);
        assert_eq!(s.valid_len, good);
        assert_eq!(s.truncated_bytes, (rec.len() / 2) as u64);

        // Recovery truncates and appends continue seamlessly.
        let mut w = WalWriter::open_truncated(&path, s.valid_len).unwrap();
        w.append(2, &delta("R", &[(3, 4)])).unwrap();
        let s = scan(&path, WAL_HEADER).unwrap();
        assert_eq!(s.records.len(), 2);
        assert_eq!(s.truncated_bytes, 0);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn duplicate_tail_is_cut_at_the_epoch_check() {
        let path = temp_path("dup");
        let mut w = WalWriter::create(&path).unwrap();
        w.append(1, &delta("R", &[(1, 2)])).unwrap();
        let one = std::fs::read(&path).unwrap();
        // Corrupt copy doubled the record: same epoch twice.
        let mut doubled = one.clone();
        doubled.extend_from_slice(&one[WAL_HEADER as usize..]);
        std::fs::write(&path, &doubled).unwrap();
        let s = scan(&path, WAL_HEADER).unwrap();
        assert_eq!(s.records.len(), 1, "duplicate must not replay twice");
        assert_eq!(s.valid_len, one.len() as u64);
        assert!(s.truncated_bytes > 0);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn missing_or_foreign_header_means_recreate() {
        let path = temp_path("hdr");
        std::fs::write(&path, b"not a wal").unwrap();
        let s = scan(&path, WAL_HEADER).unwrap();
        assert_eq!(s.valid_len, 0);
        assert!(s.records.is_empty());
        let w = WalWriter::open_truncated(&path, 0).unwrap();
        assert_eq!(w.offset(), WAL_HEADER);
        let s = scan(&path, WAL_HEADER).unwrap();
        assert_eq!(s.valid_len, WAL_HEADER);
        std::fs::remove_file(&path).unwrap();
    }
}
