//! The manifest: the single root file recovery starts from.
//!
//! Layout (`b"CQMF" | u32 version | str snapshot_file (empty = none) |
//! u64 snapshot_epoch | u64 wal_gen | u64 wal_offset | u32 crc`), with
//! the CRC-32 covering everything before it. The manifest is tiny and
//! rewritten atomically (temp-then-rename, directory fsynced), so at
//! every instant exactly one consistent `(snapshot, WAL)` pair is named —
//! that atomicity is what makes [`crate::DurableStore::checkpoint`]'s
//! snapshot-plus-log-rotation a single logical step.

use crate::crc32::crc32;
use cqc_common::error::{CqcError, Result};
use cqc_common::frame::{PayloadReader, PayloadWriter};
use cqc_storage::Epoch;
use std::io::Write;
use std::path::Path;

/// The manifest's filename inside a data directory.
pub const MANIFEST_FILE: &str = "MANIFEST";

const MAGIC: [u8; 4] = *b"CQMF";
const VERSION: u32 = 1;

/// What the data directory currently holds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Manifest {
    /// Filename (relative to the data directory) of the current snapshot,
    /// if one has been written.
    pub snapshot_file: Option<String>,
    /// The epoch the snapshot captures (`0` when there is none — epoch 0
    /// is the empty database, which needs no file).
    pub snapshot_epoch: Epoch,
    /// Generation counter of the current WAL file; each checkpoint
    /// rotates to a fresh generation so the old log can be deleted.
    pub wal_gen: u64,
    /// Offset inside the WAL at which replay starts (records before it
    /// are covered by the snapshot — the compaction watermark).
    pub wal_offset: u64,
}

impl Manifest {
    /// The WAL filename this manifest's generation maps to.
    pub fn wal_file(&self) -> String {
        format!("wal-{:06}.log", self.wal_gen)
    }
}

/// Loads the manifest from `dir`, `Ok(None)` when none exists (a fresh
/// directory).
///
/// # Errors
///
/// I/O failures, and [`CqcError::Io`] when the file exists but fails its
/// magic, version, or checksum — a manifest is written atomically, so a
/// corrupt one means the storage itself is damaged and recovery must not
/// guess.
pub fn load(dir: &Path) -> Result<Option<Manifest>> {
    let path = dir.join(MANIFEST_FILE);
    let bytes = match std::fs::read(&path) {
        Ok(b) => b,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(e.into()),
    };
    let corrupt = |why: &str| CqcError::Io(format!("manifest {}: {why}", path.display()));
    if bytes.len() < MAGIC.len() + 4 + 4 || bytes[..4] != MAGIC {
        return Err(corrupt("bad magic or truncated"));
    }
    let (body, tail) = bytes.split_at(bytes.len() - 4);
    let stored = u32::from_le_bytes(tail.try_into().expect("len 4"));
    if crc32(body) != stored {
        return Err(corrupt("checksum mismatch"));
    }
    let mut r = PayloadReader::new(&body[4..]);
    let map_err = |e: CqcError| CqcError::Io(format!("manifest {}: {e}", path.display()));
    if r.get_u32().map_err(map_err)? != VERSION {
        return Err(corrupt("unsupported version"));
    }
    let snapshot_file = {
        let s = r.get_str().map_err(map_err)?;
        (!s.is_empty()).then(|| s.to_string())
    };
    Ok(Some(Manifest {
        snapshot_file,
        snapshot_epoch: r.get_u64().map_err(map_err)?,
        wal_gen: r.get_u64().map_err(map_err)?,
        wal_offset: r.get_u64().map_err(map_err)?,
    }))
}

/// Atomically replaces the manifest in `dir`: temp file, fsync, rename,
/// directory fsync.
///
/// # Errors
///
/// I/O failures.
pub fn store(dir: &Path, m: &Manifest) -> Result<()> {
    let mut w = PayloadWriter::new();
    w.start();
    for b in MAGIC {
        w.put_u8(b);
    }
    w.put_u32(VERSION)
        .put_str(m.snapshot_file.as_deref().unwrap_or(""))
        .put_u64(m.snapshot_epoch)
        .put_u64(m.wal_gen)
        .put_u64(m.wal_offset);
    let crc = crc32(w.bytes());
    let tmp = dir.join(format!("{MANIFEST_FILE}.tmp"));
    let mut f = std::fs::File::create(&tmp)?;
    f.write_all(w.bytes())?;
    f.write_all(&crc.to_le_bytes())?;
    f.sync_all()?;
    drop(f);
    std::fs::rename(&tmp, dir.join(MANIFEST_FILE))?;
    crate::sync_dir(dir)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(name: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!("cqc-manifest-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn round_trips_and_absence_is_none() {
        let dir = temp_dir("rt");
        assert_eq!(load(&dir).unwrap(), None);
        let m = Manifest {
            snapshot_file: Some("snap-00000000000000000007.db".into()),
            snapshot_epoch: 7,
            wal_gen: 3,
            wal_offset: 8,
        };
        store(&dir, &m).unwrap();
        assert_eq!(load(&dir).unwrap(), Some(m.clone()));
        let none = Manifest {
            snapshot_file: None,
            snapshot_epoch: 0,
            wal_gen: 0,
            wal_offset: 8,
        };
        store(&dir, &none).unwrap();
        assert_eq!(load(&dir).unwrap(), Some(none));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corruption_is_loud_not_guessed() {
        let dir = temp_dir("corrupt");
        let m = Manifest {
            snapshot_file: None,
            snapshot_epoch: 0,
            wal_gen: 1,
            wal_offset: 8,
        };
        store(&dir, &m).unwrap();
        let path = dir.join(MANIFEST_FILE);
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[9] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(load(&dir), Err(CqcError::Io(_))));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
