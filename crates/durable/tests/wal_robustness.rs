//! Property-based robustness of the WAL record codec and scanner: random
//! record sequences round-trip exactly, and *any* single injected fault —
//! truncation at an arbitrary byte, a bit flip at an arbitrary position,
//! a duplicated tail — recovers to precisely the last valid prefix,
//! never a panic, never a phantom record.

use cqc_durable::wal::{
    decode_record_payload, encode_record, scan, WalWriter, RECORD_HEADER, WAL_HEADER,
};
use cqc_storage::{Delta, Epoch};
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

/// One generated delta op: relation index, row values, insert-vs-remove.
type Op = (usize, Vec<u64>, bool);

/// Fixed per-relation arities so generated deltas are always well-formed.
const RELS: [(&str, usize); 3] = [("R", 2), ("S", 2), ("T", 3)];

fn op_strategy() -> impl Strategy<Value = Op> {
    (
        0..RELS.len(),
        prop::collection::vec(0u64..50, 3..4),
        prop::sample::select(vec![true, false]),
    )
}

fn build_delta(ops: &[Op]) -> Delta {
    let mut d = Delta::new();
    for (rel, row, insert) in ops {
        let (name, arity) = RELS[*rel];
        let row = row[..arity].to_vec();
        if *insert {
            d.insert(name, row);
        } else {
            d.remove(name, row);
        }
    }
    d
}

/// A strategy for a short WAL history: per-record epoch increments (≥ 1,
/// so epochs are strictly increasing) paired with non-empty op lists.
fn history_strategy() -> impl Strategy<Value = Vec<(u64, Vec<Op>)>> {
    prop::collection::vec((1u64..4, prop::collection::vec(op_strategy(), 1..5)), 1..6)
}

/// Materializes a history into (epochs+deltas, their on-disk byte ranges).
struct BuiltWal {
    path: PathBuf,
    records: Vec<(Epoch, Delta)>,
    /// End offset of each record (so `ends[i]` is the valid length of the
    /// prefix containing records `0..=i`); `WAL_HEADER` precedes them all.
    ends: Vec<u64>,
}

fn build_wal(history: &[(u64, Vec<Op>)]) -> BuiltWal {
    static SEQ: AtomicUsize = AtomicUsize::new(0);
    let path = std::env::temp_dir().join(format!(
        "cqc-wal-prop-{}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_file(&path);
    let mut w = WalWriter::create(&path).expect("create wal");
    let mut records = Vec::new();
    let mut ends = Vec::new();
    let mut epoch = 0u64;
    for (bump, ops) in history {
        epoch += bump;
        let delta = build_delta(ops);
        ends.push(w.append(epoch, &delta).expect("append"));
        records.push((epoch, delta));
    }
    BuiltWal {
        path,
        records,
        ends,
    }
}

/// The number of records wholly contained in the first `len` bytes.
fn records_below(ends: &[u64], len: u64) -> usize {
    ends.iter().take_while(|&&e| e <= len).count()
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 48,
        max_shrink_iters: 200,
        .. ProptestConfig::default()
    })]

    /// The record codec is an exact round trip, and the framing (length
    /// prefix, CRC placement) is what the scanner assumes.
    #[test]
    fn record_codec_round_trips(bump in 1u64..1000, ops in prop::collection::vec(op_strategy(), 1..8)) {
        let delta = build_delta(&ops);
        let rec = encode_record(bump, &delta);
        let len = u32::from_le_bytes(rec[..4].try_into().unwrap()) as usize;
        prop_assert_eq!(rec.len(), RECORD_HEADER as usize + len);
        let (epoch, decoded) = decode_record_payload(&rec[8..]).unwrap();
        prop_assert_eq!(epoch, bump);
        prop_assert_eq!(decoded, delta);
        // A truncated payload is a typed error, not a panic.
        prop_assert!(decode_record_payload(&rec[8..rec.len() - 1]).is_err());
    }

    /// Truncating the file at any byte recovers exactly the records that
    /// fit below the cut, and the writer resumes from that prefix.
    #[test]
    fn truncation_recovers_the_last_full_prefix(history in history_strategy(), cut_frac in 0.0f64..1.0) {
        let wal = build_wal(&history);
        let full = std::fs::metadata(&wal.path).unwrap().len();
        let cut = (full as f64 * cut_frac) as u64;
        let bytes = std::fs::read(&wal.path).unwrap();
        std::fs::write(&wal.path, &bytes[..cut as usize]).unwrap();

        let s = scan(&wal.path, WAL_HEADER).unwrap();
        if cut < WAL_HEADER {
            prop_assert_eq!(s.valid_len, 0, "a cut inside the header voids the file");
        } else {
            let keep = records_below(&wal.ends, cut);
            prop_assert_eq!(&s.records, &wal.records[..keep]);
            let boundary = if keep == 0 { WAL_HEADER } else { wal.ends[keep - 1] };
            prop_assert_eq!(s.valid_len, boundary);
            prop_assert_eq!(s.truncated_bytes, cut - boundary);
        }

        // Recovery resumes: truncate to the valid prefix, append one more
        // record, and the scan sees the prefix plus the new record.
        let last_epoch = wal.records.last().unwrap().0;
        let mut w = WalWriter::open_truncated(&wal.path, s.valid_len).unwrap();
        let mut extra = Delta::new();
        extra.insert("R", vec![9, 9]);
        w.append(last_epoch + 1, &extra).unwrap();
        let resumed = scan(&wal.path, WAL_HEADER).unwrap();
        prop_assert_eq!(resumed.truncated_bytes, 0);
        prop_assert_eq!(resumed.records.last().unwrap(), &(last_epoch + 1, extra));
        std::fs::remove_file(&wal.path).unwrap();
    }

    /// Flipping any single bit cuts the valid prefix exactly at the record
    /// containing the flip (or voids the file if the flip is in the
    /// header) — and never panics or invents a record.
    #[test]
    fn bit_flip_cuts_the_prefix_at_the_damaged_record(history in history_strategy(), pos_frac in 0.0f64..1.0, bit in 0u8..8) {
        let wal = build_wal(&history);
        let mut bytes = std::fs::read(&wal.path).unwrap();
        let pos = ((bytes.len() - 1) as f64 * pos_frac) as usize;
        bytes[pos] ^= 1 << bit;
        std::fs::write(&wal.path, &bytes).unwrap();

        let s = scan(&wal.path, WAL_HEADER).unwrap();
        if (pos as u64) < WAL_HEADER {
            prop_assert_eq!(s.valid_len, 0, "a flipped header byte voids the file");
            prop_assert!(s.records.is_empty());
        } else {
            // Every record before the damaged one survives; nothing at or
            // past it does.
            let intact = records_below(&wal.ends, pos as u64);
            prop_assert_eq!(&s.records, &wal.records[..intact]);
            let boundary = if intact == 0 { WAL_HEADER } else { wal.ends[intact - 1] };
            prop_assert_eq!(s.valid_len, boundary);
            prop_assert_eq!(s.valid_len + s.truncated_bytes, bytes.len() as u64);
        }
        std::fs::remove_file(&wal.path).unwrap();
    }

    /// A duplicated tail (a corrupt copy re-appending already-logged
    /// records) never replays: the epoch monotonicity check cuts the scan
    /// at the original end of the log.
    #[test]
    fn duplicate_tail_never_replays(history in history_strategy(), dup_from_frac in 0.0f64..1.0) {
        let wal = build_wal(&history);
        let bytes = std::fs::read(&wal.path).unwrap();
        // Duplicate the byte-exact records from some record boundary on.
        let dup_from = (dup_from_frac * wal.ends.len() as f64) as usize;
        let dup_from = dup_from.min(wal.ends.len() - 1);
        let start = if dup_from == 0 { WAL_HEADER } else { wal.ends[dup_from - 1] };
        let mut doubled = bytes.clone();
        doubled.extend_from_slice(&bytes[start as usize..]);
        std::fs::write(&wal.path, &doubled).unwrap();

        let s = scan(&wal.path, WAL_HEADER).unwrap();
        prop_assert_eq!(&s.records, &wal.records, "duplicates must not replay");
        prop_assert_eq!(s.valid_len, bytes.len() as u64);
        prop_assert_eq!(s.truncated_bytes, (doubled.len() - bytes.len()) as u64);
        std::fs::remove_file(&wal.path).unwrap();
    }
}
