//! EXP-10 criterion bench: compression time.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use cqc_core::theorem1::Theorem1Structure;
use cqc_join::baselines::MaterializedView;
use cqc_storage::Database;
use cqc_workload::{graphs, queries};
use std::time::Duration;

fn bench_build(c: &mut Criterion) {
    let view = queries::triangle_self("bfb").unwrap();
    let mut g = c.benchmark_group("build_triangle_bfb");
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(4));
    g.warm_up_time(Duration::from_millis(300));
    for edges in [1000usize, 2000] {
        let mut rng = cqc_workload::rng(7);
        let mut db = Database::new();
        db.add(graphs::friendship_graph(&mut rng, (edges / 5) as u64, edges, 1.0))
            .unwrap();
        let n = db.size() as f64;
        g.bench_function(BenchmarkId::new("theorem1_sqrtN", edges), |b| {
            b.iter(|| {
                Theorem1Structure::build(&view, &db, &[0.5, 0.5, 0.5], n.sqrt()).unwrap()
            })
        });
        g.bench_function(BenchmarkId::new("materialize", edges), |b| {
            b.iter(|| MaterializedView::build(&view, &db).unwrap())
        });
    }
    g.finish();
}

criterion_group!(benches, bench_build);
criterion_main!(benches);
