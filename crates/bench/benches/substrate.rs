//! Substrate micro-benchmarks: gallop, count probes, leapfrog joins.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use cqc_common::util::gallop;
use cqc_join::leapfrog::{AtomInput, LeapfrogJoin, LevelConstraint};
use cqc_storage::{Relation, SortedIndex};
use cqc_workload::uniform_relation;
use std::time::Duration;

fn bench_substrate(c: &mut Criterion) {
    let mut rng = cqc_workload::rng(8);
    let data: Vec<u64> = {
        let mut v: Vec<u64> = (0..100_000u64).map(|i| i * 3).collect();
        v.sort_unstable();
        v
    };
    let rel: Relation = uniform_relation(&mut rng, "R", 2, 50_000, 5_000);
    let s_rel: Relation = uniform_relation(&mut rng, "S", 2, 50_000, 5_000);
    let ri = SortedIndex::build(&rel, &[0, 1]);
    let si = SortedIndex::build(&s_rel, &[0, 1]);

    let mut g = c.benchmark_group("substrate");
    g.sample_size(20);
    g.measurement_time(Duration::from_secs(2));
    g.warm_up_time(Duration::from_millis(200));

    g.bench_function(BenchmarkId::new("gallop", "100k"), |b| {
        b.iter(|| {
            let mut pos = 0usize;
            let mut acc = 0usize;
            for key in (0..300_000u64).step_by(1111) {
                pos = gallop(&data, pos, data.len(), key);
                acc += pos;
            }
            acc
        })
    });
    g.bench_function(BenchmarkId::new("count_probe", "50k rows"), |b| {
        b.iter(|| {
            let mut acc = 0usize;
            for k in (0..5000u64).step_by(37) {
                acc += ri.count(&[k], Some((100, 4000)));
            }
            acc
        })
    });
    g.bench_function(BenchmarkId::new("leapfrog_2path", "50k x 50k"), |b| {
        b.iter(|| {
            let atoms = vec![
                AtomInput::new(&ri, vec![0, 1]),
                AtomInput::new(&si, vec![1, 2]),
            ];
            let mut j = LeapfrogJoin::new(atoms, 3, vec![LevelConstraint::Free; 3]);
            let mut n = 0usize;
            while j.next().is_some() {
                n += 1;
            }
            n
        })
    });
    g.finish();
}

criterion_group!(benches, bench_substrate);
criterion_main!(benches);
