//! EXP-5 criterion bench: star-join access with slack-aware covers.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use cqc_core::theorem1::Theorem1Structure;
use cqc_storage::Database;
use cqc_workload::{queries, witness_requests};
use std::time::Duration;

fn bench_star(c: &mut Criterion) {
    let mut rng = cqc_workload::rng(2);
    let mut db = Database::new();
    for i in 1..=3 {
        db.add(cqc_workload::uniform_relation(&mut rng, &format!("R{i}"), 2, 3000, 300))
            .unwrap();
    }
    let view = queries::star(3, "bbbf").unwrap();
    let requests = witness_requests(&mut rng, &view, &db, 128);

    let mut g = c.benchmark_group("star3_bbbf_answer");
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(2));
    g.warm_up_time(Duration::from_millis(300));
    for tau in [1.0f64, 8.0, 64.0] {
        let s = Theorem1Structure::build(&view, &db, &[1.0, 1.0, 1.0], tau).unwrap();
        g.bench_function(BenchmarkId::new("theorem1", format!("tau{tau}")), |b| {
            b.iter(|| {
                let mut n = 0usize;
                for r in &requests {
                    n += s.answer(r).unwrap().count();
                }
                n
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_star);
criterion_main!(benches);
