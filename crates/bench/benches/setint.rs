//! EXP-6 criterion bench: set-intersection enumeration and disjointness
//! probes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use cqc_core::theorem1::Theorem1Structure;
use cqc_storage::Database;
use cqc_workload::{gen, queries};
use std::time::Duration;

fn bench_setint(c: &mut Criterion) {
    let mut rng = cqc_workload::rng(5);
    let zipf = gen::Zipf::new(1200, 0.9);
    let rel = gen::zipf_pairs(&mut rng, "R", 20_000, 500, &zipf);
    let mut db = Database::new();
    db.add(rel).unwrap();
    let view = queries::set_intersection().unwrap();

    let set_zipf = gen::Zipf::new(500, 0.8);
    let requests: Vec<Vec<u64>> = (0..128)
        .map(|_| vec![set_zipf.sample(&mut rng), set_zipf.sample(&mut rng)])
        .collect();

    let mut g = c.benchmark_group("set_intersection");
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(2));
    g.warm_up_time(Duration::from_millis(300));
    for tau in [1.0f64, 16.0, 256.0] {
        let s = Theorem1Structure::build(&view, &db, &[1.0, 1.0], tau).unwrap();
        g.bench_function(BenchmarkId::new("enumerate", format!("tau{tau}")), |b| {
            b.iter(|| {
                let mut n = 0usize;
                for r in &requests {
                    n += s.answer(r).unwrap().count();
                }
                n
            })
        });
        g.bench_function(BenchmarkId::new("disjointness", format!("tau{tau}")), |b| {
            b.iter(|| {
                let mut n = 0usize;
                for r in &requests {
                    n += usize::from(s.exists(r).unwrap());
                }
                n
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_setint);
criterion_main!(benches);
