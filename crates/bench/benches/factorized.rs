//! EXP-3 criterion bench: constant-delay factorized enumeration vs the
//! materialized scan.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use cqc_factorized::FactorizedRepresentation;
use cqc_join::baselines::MaterializedView;
use cqc_storage::Database;
use cqc_workload::queries;
use std::time::Duration;

fn bench_factorized(c: &mut Criterion) {
    let mut rng = cqc_workload::rng(6);
    let mut db = Database::new();
    for i in 1..=3 {
        db.add(cqc_workload::uniform_relation(&mut rng, &format!("R{i}"), 2, 1200, 60))
            .unwrap();
    }
    let view = queries::star(3, "ffff").unwrap();
    let f = FactorizedRepresentation::build_with_search(&view, &db).unwrap();
    let m = MaterializedView::build(&view, &db).unwrap();

    let mut g = c.benchmark_group("star3_full_enumeration");
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(3));
    g.warm_up_time(Duration::from_millis(300));
    g.bench_function(BenchmarkId::new("factorized", "full"), |b| {
        b.iter(|| f.answer(&[]).unwrap().count())
    });
    g.bench_function(BenchmarkId::new("materialized", "full"), |b| {
        b.iter(|| m.answer(&[]).unwrap().count())
    });
    g.finish();
}

criterion_group!(benches, bench_factorized);
criterion_main!(benches);
