//! EXP-7 criterion bench: path query, Theorem 1 vs Theorem 2 regimes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use cqc_core::theorem1::Theorem1Structure;
use cqc_core::theorem2::Theorem2Structure;
use cqc_decomp::TreeDecomposition;
use cqc_query::{Var, VarSet};
use cqc_storage::Database;
use cqc_workload::{queries, witness_requests};
use std::time::Duration;

fn vs(vars: &[u32]) -> VarSet {
    vars.iter().map(|&v| Var(v)).collect()
}

fn bench_path(c: &mut Criterion) {
    let mut rng = cqc_workload::rng(3);
    let mut db = Database::new();
    for i in 1..=4 {
        db.add(cqc_workload::uniform_relation(&mut rng, &format!("R{i}"), 2, 1500, 150))
            .unwrap();
    }
    let view = queries::path(4, "bfffb").unwrap();
    let requests = witness_requests(&mut rng, &view, &db, 64);

    let td = TreeDecomposition::new(
        vec![vs(&[0, 4]), vs(&[0, 1, 3, 4]), vs(&[1, 2, 3])],
        vec![None, Some(0), Some(1)],
    )
    .unwrap();

    let t1 = Theorem1Structure::build(&view, &db, &[1.0, 1.0, 1.0, 1.0], 16.0).unwrap();
    let t2_zero = Theorem2Structure::build(&view, &db, &td, &[0.0; 3]).unwrap();
    let t2_mixed = Theorem2Structure::build(&view, &db, &td, &[0.0, 0.3, 0.3]).unwrap();

    let mut g = c.benchmark_group("path4_bfffb_answer");
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(2));
    g.warm_up_time(Duration::from_millis(300));
    g.bench_function(BenchmarkId::new("theorem1", "tau16"), |b| {
        b.iter(|| {
            let mut n = 0usize;
            for r in &requests {
                n += t1.answer(r).unwrap().count();
            }
            n
        })
    });
    g.bench_function(BenchmarkId::new("theorem2", "delta0"), |b| {
        b.iter(|| {
            let mut n = 0usize;
            for r in &requests {
                n += t2_zero.answer(r).unwrap().count();
            }
            n
        })
    });
    g.bench_function(BenchmarkId::new("theorem2", "delta0.3"), |b| {
        b.iter(|| {
            let mut n = 0usize;
            for r in &requests {
                n += t2_mixed.answer(r).unwrap().count();
            }
            n
        })
    });
    g.finish();
}

criterion_group!(benches, bench_path);
criterion_main!(benches);
