//! EXP-1 criterion bench: per-request answer latency on the triangle view
//! `V^bfb` across the space/delay continuum.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use cqc_core::theorem1::Theorem1Structure;
use cqc_join::baselines::{DirectView, MaterializedView};
use cqc_storage::Database;
use cqc_workload::{graphs, queries, witness_requests};
use std::time::Duration;

fn bench_triangle(c: &mut Criterion) {
    let mut rng = cqc_workload::rng(1);
    let mut db = Database::new();
    db.add(graphs::friendship_graph(&mut rng, 400, 4000, 1.0))
        .unwrap();
    let n = db.size() as f64;
    let view = queries::triangle_self("bfb").unwrap();
    let requests = witness_requests(&mut rng, &view, &db, 64);

    let mat = MaterializedView::build(&view, &db).unwrap();
    let dir = DirectView::build(&view, &db).unwrap();
    let t1_sqrt = Theorem1Structure::build(&view, &db, &[0.5, 0.5, 0.5], n.sqrt()).unwrap();
    let t1_small = Theorem1Structure::build(&view, &db, &[0.5, 0.5, 0.5], 4.0).unwrap();

    let mut g = c.benchmark_group("triangle_bfb_answer");
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(2));
    g.warm_up_time(Duration::from_millis(300));

    g.bench_function(BenchmarkId::new("materialized", "batch64"), |b| {
        b.iter(|| {
            let mut n = 0usize;
            for r in &requests {
                n += mat.answer(r).unwrap().count();
            }
            n
        })
    });
    g.bench_function(BenchmarkId::new("direct", "batch64"), |b| {
        b.iter(|| {
            let mut n = 0usize;
            for r in &requests {
                n += dir.answer(r).unwrap().count();
            }
            n
        })
    });
    g.bench_function(BenchmarkId::new("theorem1_tau4", "batch64"), |b| {
        b.iter(|| {
            let mut n = 0usize;
            for r in &requests {
                n += t1_small.answer(r).unwrap().count();
            }
            n
        })
    });
    g.bench_function(BenchmarkId::new("theorem1_tau_sqrtN", "batch64"), |b| {
        b.iter(|| {
            let mut n = 0usize;
            for r in &requests {
                n += t1_sqrt.answer(r).unwrap().count();
            }
            n
        })
    });
    g.finish();
}

criterion_group!(benches, bench_triangle);
criterion_main!(benches);
