//! EXP-4 criterion bench: Loomis-Whitney LW_3 access latency.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use cqc_core::theorem1::Theorem1Structure;
use cqc_join::baselines::DirectView;
use cqc_storage::Database;
use cqc_workload::{queries, witness_requests};
use std::time::Duration;

fn bench_lw(c: &mut Criterion) {
    let mut rng = cqc_workload::rng(4);
    let mut db = Database::new();
    for i in 1..=3 {
        db.add(cqc_workload::uniform_relation(&mut rng, &format!("S{i}"), 2, 2500, 250))
            .unwrap();
    }
    let n = db.size() as f64;
    let view = queries::loomis_whitney(3, "bff").unwrap();
    let requests = witness_requests(&mut rng, &view, &db, 64);

    let dir = DirectView::build(&view, &db).unwrap();
    let t1 = Theorem1Structure::build(&view, &db, &[0.5, 0.5, 0.5], n.sqrt()).unwrap();

    let mut g = c.benchmark_group("lw3_bff_answer");
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(2));
    g.warm_up_time(Duration::from_millis(300));
    g.bench_function(BenchmarkId::new("direct", "batch"), |b| {
        b.iter(|| {
            let mut k = 0usize;
            for r in &requests {
                k += dir.answer(r).unwrap().count();
            }
            k
        })
    });
    g.bench_function(BenchmarkId::new("theorem1_sqrtN", "batch"), |b| {
        b.iter(|| {
            let mut k = 0usize;
            for r in &requests {
                k += t1.answer(r).unwrap().count();
            }
            k
        })
    });
    g.finish();
}

criterion_group!(benches, bench_lw);
criterion_main!(benches);
