//! EXP-9 criterion bench: the Section 6 optimizers.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use cqc_lp::covers::{min_fractional_edge_cover, rho_plus};
use cqc_lp::fractional::{min_delay_cover, min_delay_cover_bisect};
use cqc_workload::queries;
use std::time::Duration;

fn bench_lp(c: &mut Criterion) {
    let views = vec![
        ("triangle", queries::triangle_self("bfb").unwrap()),
        ("star4", queries::star(4, "bbbbf").unwrap()),
        ("lw4", queries::loomis_whitney(4, "bfff").unwrap()),
        ("path5", queries::path(5, &queries::path_pattern(5)).unwrap()),
    ];
    let mut g = c.benchmark_group("lp_optimizers");
    g.sample_size(20);
    g.measurement_time(Duration::from_secs(2));
    g.warm_up_time(Duration::from_millis(200));
    for (name, view) in &views {
        let h = view.query().hypergraph();
        let sizes = vec![1.0; h.num_edges()];
        g.bench_function(BenchmarkId::new("rho_star", *name), |b| {
            b.iter(|| min_fractional_edge_cover(&h, h.all_vars()).unwrap())
        });
        g.bench_function(BenchmarkId::new("min_delay_cover_cc", *name), |b| {
            b.iter(|| min_delay_cover(&h, view.free_vars(), &sizes, 1.2).unwrap())
        });
        g.bench_function(BenchmarkId::new("min_delay_cover_bisect", *name), |b| {
            b.iter(|| min_delay_cover_bisect(&h, view.free_vars(), &sizes, 1.2).unwrap())
        });
        g.bench_function(BenchmarkId::new("rho_plus", *name), |b| {
            b.iter(|| rho_plus(&h, h.all_vars(), view.free_vars(), 0.25).unwrap())
        });
    }
    g.finish();
}

criterion_group!(benches, bench_lp);
criterion_main!(benches);
