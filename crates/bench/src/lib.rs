//! Measurement harness shared by the criterion benches and the
//! `paper_eval` table generator.
//!
//! The paper's claims are about *shapes* — how space, delay and answer time
//! scale with `|D|` and τ — so the harness measures:
//!
//! * per-tuple **delay percentiles** (max/p99/p50 inter-arrival gaps and
//!   time-to-first), not just totals;
//! * deterministic **space** via `HeapSize`;
//! * machine-independent **work counters** from `cqc_common::metrics`;
//! * log-log **slope fits** for scaling exponents.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use cqc_common::metrics::{self, MetricsSnapshot};
use cqc_common::value::Tuple;
use std::time::Instant;

/// Delay statistics of one enumeration.
#[derive(Debug, Clone, Copy, Default)]
pub struct DelayStats {
    /// Nanoseconds to the first tuple (or to exhaustion when empty).
    pub first_ns: u64,
    /// Maximum inter-tuple gap (includes the first tuple and the final
    /// exhaustion step, per the paper's delay definition).
    pub max_ns: u64,
    /// Median gap.
    pub p50_ns: u64,
    /// 99th-percentile gap.
    pub p99_ns: u64,
    /// Total answer time.
    pub total_ns: u64,
    /// Number of tuples produced.
    pub tuples: usize,
    /// Work counters consumed during the enumeration.
    pub work: MetricsSnapshot,
}

/// Incremental delay measurement for push-style enumeration: call
/// [`DelayProbe::tick`] once per answer (e.g. from an
/// [`cqc_common::AnswerSink`]) and [`DelayProbe::finish`] after the
/// enumeration exhausts. Gap semantics match [`measure_delays`], including
/// the final "done" step of the §2.3 delay definition.
#[derive(Debug)]
pub struct DelayProbe {
    before: MetricsSnapshot,
    start: Instant,
    last: Instant,
    gaps: Vec<u64>,
    first_ns: u64,
    tuples: usize,
}

impl Default for DelayProbe {
    fn default() -> DelayProbe {
        DelayProbe::start()
    }
}

impl DelayProbe {
    /// Starts the clock.
    pub fn start() -> DelayProbe {
        let now = Instant::now();
        DelayProbe {
            before: metrics::snapshot(),
            start: now,
            last: now,
            gaps: Vec::new(),
            first_ns: 0,
            tuples: 0,
        }
    }

    /// Records the arrival of one answer.
    #[inline]
    pub fn tick(&mut self) {
        let now = Instant::now();
        let gap = now.duration_since(self.last).as_nanos() as u64;
        if self.tuples == 0 {
            self.first_ns = gap;
        }
        self.gaps.push(gap);
        self.last = now;
        self.tuples += 1;
    }

    /// Ends the enumeration and folds the gaps into [`DelayStats`].
    pub fn finish(mut self) -> DelayStats {
        let end = Instant::now();
        // The "done" notification also counts as a delay step (§2.3).
        self.gaps
            .push(end.duration_since(self.last).as_nanos() as u64);
        if self.tuples == 0 {
            self.first_ns = self.gaps[0];
        }
        self.gaps.sort_unstable();
        let q = |p: f64| -> u64 {
            let idx = ((self.gaps.len() as f64 - 1.0) * p).round() as usize;
            self.gaps[idx]
        };
        DelayStats {
            first_ns: self.first_ns,
            max_ns: *self.gaps.last().expect("at least the done gap"),
            p50_ns: q(0.5),
            p99_ns: q(0.99),
            total_ns: end.duration_since(self.start).as_nanos() as u64,
            tuples: self.tuples,
            work: metrics::snapshot().delta_since(&self.before),
        }
    }
}

/// Drains `iter`, recording inter-arrival gaps.
pub fn measure_delays(iter: impl Iterator<Item = Tuple>) -> DelayStats {
    let mut probe = DelayProbe::start();
    for _ in iter {
        probe.tick();
    }
    probe.finish()
}

/// Aggregates delay stats across a batch of enumerations.
#[derive(Debug, Clone, Copy, Default)]
pub struct BatchStats {
    /// Worst observed inter-tuple gap across the batch.
    pub max_delay_ns: u64,
    /// Mean p99 gap.
    pub mean_p99_ns: u64,
    /// Total time across the batch.
    pub total_ns: u64,
    /// Total tuples across the batch.
    pub tuples: usize,
    /// Requests measured.
    pub requests: usize,
    /// Total trie seeks (machine-independent work).
    pub trie_seeks: u64,
}

impl BatchStats {
    /// Folds one enumeration into the batch.
    pub fn add(&mut self, d: &DelayStats) {
        self.max_delay_ns = self.max_delay_ns.max(d.max_ns);
        self.mean_p99_ns += d.p99_ns;
        self.total_ns += d.total_ns;
        self.tuples += d.tuples;
        self.requests += 1;
        self.trie_seeks += d.work.trie_seeks;
    }

    /// Finishes aggregation (divides the mean fields).
    pub fn finish(mut self) -> BatchStats {
        if self.requests > 0 {
            self.mean_p99_ns /= self.requests as u64;
        }
        self
    }
}

/// Least-squares slope of `log y` against `log x` — the measured scaling
/// exponent (e.g. a triangle-space series growing as `N^{1.5}` fits ≈ 1.5).
pub fn fit_loglog_slope(xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(xs.len(), ys.len());
    assert!(xs.len() >= 2, "need at least two points for a slope");
    let lx: Vec<f64> = xs.iter().map(|&x| x.max(1e-12).ln()).collect();
    let ly: Vec<f64> = ys.iter().map(|&y| y.max(1e-12).ln()).collect();
    let n = lx.len() as f64;
    let mx = lx.iter().sum::<f64>() / n;
    let my = ly.iter().sum::<f64>() / n;
    let cov: f64 = lx.iter().zip(&ly).map(|(x, y)| (x - mx) * (y - my)).sum();
    let var: f64 = lx.iter().map(|x| (x - mx) * (x - mx)).sum();
    cov / var
}

/// Renders a markdown table.
pub fn markdown_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut out = String::new();
    out.push_str("| ");
    out.push_str(&headers.join(" | "));
    out.push_str(" |\n|");
    for _ in headers {
        out.push_str("---|");
    }
    out.push('\n');
    for row in rows {
        out.push_str("| ");
        out.push_str(&row.join(" | "));
        out.push_str(" |\n");
    }
    out
}

/// Human-readable byte counts.
pub fn fmt_bytes(b: usize) -> String {
    if b >= 10 * 1024 * 1024 {
        format!("{:.1} MiB", b as f64 / (1024.0 * 1024.0))
    } else if b >= 10 * 1024 {
        format!("{:.1} KiB", b as f64 / 1024.0)
    } else {
        format!("{b} B")
    }
}

/// Human-readable nanoseconds.
pub fn fmt_ns(ns: u64) -> String {
    if ns >= 10_000_000 {
        format!("{:.1} ms", ns as f64 / 1e6)
    } else if ns >= 10_000 {
        format!("{:.1} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

/// The benchmark scale, read from `CQC_SCALE` (`small` default, `full` for
/// the EXPERIMENTS.md numbers).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Quick smoke-test sizes.
    Small,
    /// The sizes used for EXPERIMENTS.md.
    Full,
}

impl Scale {
    /// Reads the scale from the environment.
    pub fn from_env() -> Scale {
        match std::env::var("CQC_SCALE").as_deref() {
            Ok("full") => Scale::Full,
            _ => Scale::Small,
        }
    }

    /// Picks between the two size lists.
    pub fn pick<T>(self, small: T, full: T) -> T {
        match self {
            Scale::Small => small,
            Scale::Full => full,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measure_counts_tuples_and_gaps() {
        let tuples: Vec<Tuple> = (0..10).map(|i| vec![i]).collect();
        let d = measure_delays(tuples.into_iter());
        assert_eq!(d.tuples, 10);
        assert!(d.max_ns >= d.p99_ns && d.p99_ns >= d.p50_ns);
        assert!(d.total_ns > 0);
    }

    #[test]
    fn measure_empty_iterator() {
        let d = measure_delays(std::iter::empty());
        assert_eq!(d.tuples, 0);
        assert!(d.first_ns > 0 || d.max_ns >= d.first_ns);
    }

    #[test]
    fn probe_counts_ticks_and_orders_percentiles() {
        let mut p = DelayProbe::start();
        for _ in 0..5 {
            p.tick();
        }
        let d = p.finish();
        assert_eq!(d.tuples, 5);
        assert!(d.max_ns >= d.p99_ns && d.p99_ns >= d.p50_ns);
        let empty = DelayProbe::start().finish();
        assert_eq!(empty.tuples, 0);
        assert_eq!(empty.first_ns, empty.max_ns);
    }

    #[test]
    fn slope_recovers_exponent() {
        let xs = [100.0f64, 200.0, 400.0, 800.0];
        let ys: Vec<f64> = xs.iter().map(|x| 3.0 * x.powf(1.5)).collect();
        let s = fit_loglog_slope(&xs, &ys);
        assert!((s - 1.5).abs() < 1e-9);
    }

    #[test]
    fn table_renders() {
        let t = markdown_table(
            &["a", "b"],
            &[vec!["1".into(), "2".into()], vec!["3".into(), "4".into()]],
        );
        assert!(t.contains("| a | b |"));
        assert!(t.lines().count() == 4);
    }

    #[test]
    fn formatting() {
        assert_eq!(fmt_bytes(512), "512 B");
        assert!(fmt_bytes(50_000).contains("KiB"));
        assert!(fmt_ns(50_000).contains("µs"));
        assert_eq!(Scale::Small.pick(1, 2), 1);
        assert_eq!(Scale::Full.pick(1, 2), 2);
    }

    #[test]
    fn batch_aggregation() {
        let mut b = BatchStats::default();
        let d = measure_delays((0..5).map(|i| vec![i]).collect::<Vec<_>>().into_iter());
        b.add(&d);
        b.add(&d);
        let b = b.finish();
        assert_eq!(b.requests, 2);
        assert_eq!(b.tuples, 10);
    }
}
