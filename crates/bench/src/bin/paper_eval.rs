//! Regenerates every experiment table in EXPERIMENTS.md.
//!
//! ```bash
//! cargo run --release -p cqc-bench --bin paper_eval            # all, small scale
//! CQC_SCALE=full cargo run --release -p cqc-bench --bin paper_eval
//! cargo run --release -p cqc-bench --bin paper_eval exp1 exp5  # subset
//! ```
//!
//! Each experiment corresponds to a row of the DESIGN.md experiment index;
//! the printed tables are pasted into EXPERIMENTS.md.

use cqc_bench::{
    fit_loglog_slope, fmt_bytes, fmt_ns, markdown_table, measure_delays, BatchStats, Scale,
};
use cqc_common::heap::HeapSize;
use cqc_core::bound_only::BoundOnlyView;
use cqc_core::theorem1::Theorem1Structure;
use cqc_core::theorem2::Theorem2Structure;
use cqc_decomp::TreeDecomposition;
use cqc_factorized::FactorizedRepresentation;
use cqc_join::baselines::{DirectView, MaterializedView};
use cqc_lp::fractional::{min_delay_cover, min_space_cover};
use cqc_query::{Var, VarSet};
use cqc_storage::{Database, Relation};
use cqc_workload::{graphs, queries, witness_requests};
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = Scale::from_env();
    let all = args.is_empty();
    let want = |name: &str| all || args.iter().any(|a| a == name);

    println!("# paper_eval — scale: {scale:?}\n");
    if want("exp1") {
        exp1_triangle(scale);
    }
    if want("exp2") {
        exp2_bound_only(scale);
    }
    if want("exp3") {
        exp3_factorized(scale);
    }
    if want("exp4") {
        exp4_loomis_whitney(scale);
    }
    if want("exp5") {
        exp5_star_slack(scale);
    }
    if want("exp6") {
        exp6_set_intersection(scale);
    }
    if want("exp7") {
        exp7_path(scale);
    }
    if want("exp8") {
        exp8_running_example();
    }
    if want("exp9") {
        exp9_lp_tables();
    }
    if want("exp10") {
        exp10_build_time(scale);
    }
    if want("exp11") {
        exp11_splitter_ablation(scale);
    }
    if want("exp12") {
        exp12_community_locality(scale);
    }
}

fn triangle_db(seed: u64, nodes: u64, edges: usize) -> Database {
    let mut rng = cqc_workload::rng(seed);
    let mut db = Database::new();
    db.add(graphs::friendship_graph(&mut rng, nodes, edges, 1.0))
        .unwrap();
    db
}

/// EXP-1: the intro/Prop-3 triangle tradeoff `S = O(N^{3/2}/τ)`, `δ = Õ(τ)`.
fn exp1_triangle(scale: Scale) {
    println!("## EXP-1 — triangle V^bfb tradeoff (Example 1, Prop. 3)\n");
    let view = queries::triangle_self("bfb").unwrap();
    let edges = scale.pick(1500usize, 12_000);
    let nodes = scale.pick(200u64, 1200);
    let db = triangle_db(1, nodes, edges);
    let n = db.size() as f64;

    let mut rng = cqc_workload::rng(2);
    let requests = witness_requests(&mut rng, &view, &db, scale.pick(150, 400));

    let mut rows = Vec::new();
    // Baselines.
    let t0 = Instant::now();
    let mat = MaterializedView::build(&view, &db).unwrap();
    let mat_build = t0.elapsed();
    let mut b = BatchStats::default();
    for r in &requests {
        b.add(&measure_delays(mat.answer(r).unwrap()));
    }
    let bm = b.finish();
    rows.push(vec![
        "materialized (extreme 1)".into(),
        fmt_bytes(mat.heap_bytes()),
        format!("{mat_build:.1?}"),
        fmt_ns(bm.max_delay_ns),
        fmt_ns(bm.total_ns / bm.requests as u64),
        bm.tuples.to_string(),
    ]);
    let dir = DirectView::build(&view, &db).unwrap();
    let mut b = BatchStats::default();
    for r in &requests {
        b.add(&measure_delays(dir.answer(r).unwrap()));
    }
    let bd = b.finish();
    rows.push(vec![
        "direct (extreme 2)".into(),
        fmt_bytes(dir.heap_bytes()),
        "—".into(),
        fmt_ns(bd.max_delay_ns),
        fmt_ns(bd.total_ns / bd.requests as u64),
        bd.tuples.to_string(),
    ]);

    let mut taus = vec![1.0, n.powf(0.25), n.sqrt(), n.powf(0.75)];
    let mut spaces = Vec::new();
    let mut delays = Vec::new();
    for tau in taus.drain(..) {
        let t0 = Instant::now();
        let s = Theorem1Structure::build(&view, &db, &[0.5, 0.5, 0.5], tau).unwrap();
        let build = t0.elapsed();
        let mut b = BatchStats::default();
        for r in &requests {
            b.add(&measure_delays(s.answer(r).unwrap()));
        }
        let bs = b.finish();
        assert_eq!(bs.tuples, bm.tuples, "correctness anchor");
        spaces.push((s.stats().dict_entries + s.stats().tree_nodes).max(1) as f64);
        delays.push(bs.max_delay_ns as f64);
        rows.push(vec![
            format!("theorem 1, τ = N^{:.2}", tau.ln() / n.ln()),
            fmt_bytes(s.heap_bytes()),
            format!("{build:.1?}"),
            fmt_ns(bs.max_delay_ns),
            fmt_ns(bs.total_ns / bs.requests as u64),
            bs.tuples.to_string(),
        ]);
    }
    println!(
        "{}",
        markdown_table(
            &[
                "representation",
                "space",
                "build",
                "max delay",
                "mean answer",
                "tuples"
            ],
            &rows
        )
    );
    // Shape: the non-linear structure size must decay roughly like 1/τ
    // (slope ≈ −1 in τ) per Prop. 3.
    let taus = [1.0, n.powf(0.25), n.sqrt(), n.powf(0.75)];
    let slope = fit_loglog_slope(&taus, &spaces);
    println!("non-linear space vs τ: fitted slope {slope:.2} (paper: −α = −1 for this cover)\n");
    let _ = delays;
}

/// EXP-2: Prop. 1 — all-bound views: linear space, constant lookup.
fn exp2_bound_only(scale: Scale) {
    println!("## EXP-2 — all-bound views (Prop. 1)\n");
    let view = queries::triangle_self("bbb").unwrap();
    let mut rows = Vec::new();
    let mut sizes = Vec::new();
    let mut spaces = Vec::new();
    for edges in scale.pick(vec![500usize, 1000, 2000], vec![4000, 8000, 16000, 32000]) {
        let db = triangle_db(3, (edges / 5) as u64, edges);
        let t0 = Instant::now();
        let s = BoundOnlyView::build(&view, &db).unwrap();
        let build = t0.elapsed();
        let mut rng = cqc_workload::rng(4);
        let reqs = witness_requests(&mut rng, &view, &db, 2000);
        let t0 = Instant::now();
        let mut hits = 0usize;
        for r in &reqs {
            hits += usize::from(s.exists(r).unwrap());
        }
        let probe = t0.elapsed().as_nanos() as u64 / reqs.len() as u64;
        sizes.push(db.size() as f64);
        spaces.push(s.heap_bytes() as f64);
        rows.push(vec![
            db.size().to_string(),
            fmt_bytes(s.heap_bytes()),
            format!("{build:.1?}"),
            fmt_ns(probe),
            format!("{hits}/{}", reqs.len()),
        ]);
    }
    println!(
        "{}",
        markdown_table(&["|D|", "space", "build", "probe", "hits"], &rows)
    );
    println!(
        "space vs |D| slope: {:.2} (paper: 1.0 — linear)\n",
        fit_loglog_slope(&sizes, &spaces)
    );
}

/// EXP-3: Props. 2/4 — factorized constant-delay vs materialization.
fn exp3_factorized(scale: Scale) {
    println!("## EXP-3 — factorized representations (Props. 2/4)\n");
    // Star S_3, full enumeration: acyclic ⇒ linear factorized space while
    // the materialized result is much larger.
    let view = queries::star(3, "ffff").unwrap();
    let rows_per = scale.pick(400usize, 3000);
    let mut rng = cqc_workload::rng(5);
    let mut db = Database::new();
    for i in 1..=3 {
        db.add(cqc_workload::uniform_relation(
            &mut rng,
            &format!("R{i}"),
            2,
            rows_per,
            scale.pick(40, 150),
        ))
        .unwrap();
    }
    let mut rows = Vec::new();
    let t0 = Instant::now();
    let f = FactorizedRepresentation::build_with_search(&view, &db).unwrap();
    let f_build = t0.elapsed();
    let d = measure_delays(f.answer(&[]).unwrap());
    rows.push(vec![
        "factorized (Prop 2)".into(),
        fmt_bytes(f.heap_bytes()),
        format!("{f_build:.1?}"),
        fmt_ns(d.max_ns),
        fmt_ns(d.p99_ns),
        d.tuples.to_string(),
    ]);
    let t0 = Instant::now();
    let m = MaterializedView::build(&view, &db).unwrap();
    let m_build = t0.elapsed();
    let dm = measure_delays(m.answer(&[]).unwrap());
    rows.push(vec![
        "materialized".into(),
        fmt_bytes(m.heap_bytes()),
        format!("{m_build:.1?}"),
        fmt_ns(dm.max_ns),
        fmt_ns(dm.p99_ns),
        dm.tuples.to_string(),
    ]);
    assert_eq!(d.tuples, dm.tuples);
    println!(
        "{}",
        markdown_table(
            &[
                "representation",
                "space",
                "build",
                "max delay",
                "p99 delay",
                "tuples"
            ],
            &rows
        )
    );
    println!(
        "factorized stores {} bag tuples for {} result tuples (|D| = {})\n",
        f.materialized_tuples(),
        d.tuples,
        db.size()
    );
}

/// EXP-4: Example 6 — Loomis–Whitney at linear space.
fn exp4_loomis_whitney(scale: Scale) {
    println!("## EXP-4 — Loomis–Whitney LW_3 (Example 6, Prop. 3)\n");
    let view = queries::loomis_whitney(3, "bff").unwrap();
    let rows_per = scale.pick(500usize, 4000);
    let mut rng = cqc_workload::rng(6);
    let mut db = Database::new();
    for i in 1..=3 {
        db.add(cqc_workload::uniform_relation(
            &mut rng,
            &format!("S{i}"),
            2,
            rows_per,
            scale.pick(50, 250),
        ))
        .unwrap();
    }
    let n = db.size() as f64;
    let requests = witness_requests(&mut rng, &view, &db, scale.pick(100, 300));
    let mut rows = Vec::new();
    // τ = N^{1/(n-1)} = √N gives linear space (Example 6).
    for (label, tau) in [
        ("τ = 1 (materialize-ish)", 1.0),
        ("τ = N^{1/2} (linear space)", n.sqrt()),
        ("τ = N (direct-ish)", n),
    ] {
        let s = Theorem1Structure::build(&view, &db, &[0.5, 0.5, 0.5], tau).unwrap();
        let mut b = BatchStats::default();
        for r in &requests {
            b.add(&measure_delays(s.answer(r).unwrap()));
        }
        let bs = b.finish();
        rows.push(vec![
            label.into(),
            fmt_bytes(s.heap_bytes()),
            s.stats().dict_entries.to_string(),
            fmt_ns(bs.max_delay_ns),
            fmt_ns(bs.total_ns / bs.requests as u64),
            bs.tuples.to_string(),
        ]);
    }
    println!(
        "{}",
        markdown_table(
            &[
                "configuration",
                "space",
                "dict entries",
                "max delay",
                "mean answer",
                "tuples"
            ],
            &rows
        )
    );
    println!();
}

/// EXP-5: Example 7 — the slack effect on the star join: the dictionary
/// shrinks like τ^{-α} with α = n, not τ^{-1}.
fn exp5_star_slack(scale: Scale) {
    println!("## EXP-5 — star join slack (Example 7)\n");
    for n in [2usize, 3] {
        let pattern = "b".repeat(n) + "f";
        let view = queries::star(n, &pattern).unwrap();
        // The heavy-candidate set of a star is inherently the product of
        // petal degrees (that is the N^n/τ^n law itself), so sizes stay
        // modest; Zipf-skewed center values give a long tail of heavy
        // pairs, making the τ^{-α} decay observable over a wide τ range.
        let rows_per = scale.pick(300usize, 800);
        let mut rng = cqc_workload::rng(7);
        let mut db = Database::new();
        let zipf = cqc_workload::Zipf::new(scale.pick(40, 80), 1.1);
        for i in 1..=n {
            db.add(cqc_workload::gen::zipf_pairs(
                &mut rng,
                &format!("R{i}"),
                rows_per,
                scale.pick(60, 150),
                &zipf,
            ))
            .unwrap();
        }
        let w = vec![1.0; n];
        let taus: Vec<f64> = vec![2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0];
        let mut dicts = Vec::new();
        let mut rows = Vec::new();
        for &tau in &taus {
            let s = Theorem1Structure::build(&view, &db, &w, tau).unwrap();
            assert!((s.alpha() - n as f64).abs() < 1e-9);
            dicts.push((s.stats().dict_entries.max(1)) as f64);
            rows.push(vec![
                format!("n={n}, τ={tau}"),
                format!("α = {}", s.alpha()),
                s.stats().dict_entries.to_string(),
                s.stats().tree_nodes.to_string(),
                fmt_bytes(s.heap_bytes()),
            ]);
        }
        println!(
            "{}",
            markdown_table(
                &[
                    "configuration",
                    "slack",
                    "dict entries",
                    "tree nodes",
                    "space"
                ],
                &rows
            )
        );
        // Fit the slope only where the dictionary is actually decaying:
        // at tiny τ every candidate is heavy (saturation), so the τ^{-α}
        // law shows in the tail.
        let peak = dicts.iter().cloned().fold(0.0f64, f64::max);
        let tail: Vec<(f64, f64)> = taus
            .iter()
            .zip(&dicts)
            .filter(|(_, &d)| d > 1.5 && d < 0.9 * peak)
            .map(|(&t, &d)| (t, d))
            .collect();
        if tail.len() >= 2 {
            let xs: Vec<f64> = tail.iter().map(|p| p.0).collect();
            let ys: Vec<f64> = tail.iter().map(|p| p.1).collect();
            let slope = fit_loglog_slope(&xs, &ys);
            println!(
                "dictionary entries vs τ (decaying tail), n = {n}: slope {slope:.2} \
                 (paper: −α = −{n}; slack-blind Prop. 3 would give −1)\n"
            );
        } else {
            println!("dictionary decayed too fast to fit a tail slope (n = {n})\n");
        }
    }
}

/// EXP-6: §3.1 set intersection / §3.3 k-SetDisjointness.
fn exp6_set_intersection(scale: Scale) {
    println!("## EXP-6 — fast set intersection (§3.1, [13]) and k-SetDisjointness (§3.3)\n");
    let view = queries::set_intersection().unwrap();
    let mut rng = cqc_workload::rng(8);
    let sets = scale.pick(150u64, 600);
    let memberships = scale.pick(4000usize, 20_000);
    let universe = scale.pick(300usize, 1500);
    let zipf = cqc_workload::Zipf::new(universe, 0.9);
    let rel = cqc_workload::gen::zipf_pairs(&mut rng, "R", memberships, sets, &zipf);
    let mut db = Database::new();
    db.add(rel).unwrap();

    let set_zipf = cqc_workload::Zipf::new(sets as usize, 0.8);
    let requests: Vec<Vec<u64>> = (0..scale.pick(300, 1000))
        .map(|_| vec![set_zipf.sample(&mut rng), set_zipf.sample(&mut rng)])
        .collect();

    let mut rows = Vec::new();
    // τ starts above 1: the N²/τ² law makes τ ≈ 1 deliberately enormous
    // (it materializes every heavy pairwise intersection).
    for tau in scale.pick(vec![1.0, 8.0, 64.0, 512.0], vec![16.0, 128.0, 1024.0]) {
        let s = Theorem1Structure::build(&view, &db, &[1.0, 1.0], tau).unwrap();
        let mut b = BatchStats::default();
        for r in &requests {
            b.add(&measure_delays(s.answer(r).unwrap()));
        }
        let bs = b.finish();
        let t0 = Instant::now();
        let mut non_disjoint = 0usize;
        for r in &requests {
            non_disjoint += usize::from(s.exists(r).unwrap());
        }
        let probe_ns = t0.elapsed().as_nanos() as u64 / requests.len() as u64;
        rows.push(vec![
            format!("τ = {tau}"),
            fmt_bytes(s.heap_bytes()),
            s.stats().dict_entries.to_string(),
            fmt_ns(bs.max_delay_ns),
            fmt_ns(probe_ns),
            format!("{non_disjoint}/{}", requests.len()),
        ]);
    }
    println!(
        "{}",
        markdown_table(
            &[
                "configuration",
                "space",
                "dict entries",
                "max delay",
                "disjointness probe",
                "intersecting"
            ],
            &rows
        )
    );
    println!();
}

/// EXP-7: Example 10 — the path query, Theorem 1 vs Theorem 2.
fn exp7_path(scale: Scale) {
    println!("## EXP-7 — path query P_4^{{bfffb}} (Example 10): Thm 1 vs Thm 2\n");
    let n = 4;
    let view = queries::path(n, &queries::path_pattern(n)).unwrap();
    let rows_per = scale.pick(300usize, 800);
    let mut rng = cqc_workload::rng(9);
    let mut db = Database::new();
    for i in 1..=n {
        db.add(cqc_workload::uniform_relation(
            &mut rng,
            &format!("R{i}"),
            2,
            rows_per,
            scale.pick(60, 120),
        ))
        .unwrap();
    }
    let requests = witness_requests(&mut rng, &view, &db, scale.pick(60, 200));

    let vs = |vars: &[u32]| -> VarSet { vars.iter().map(|&v| Var(v)).collect() };
    let td = TreeDecomposition::new(
        vec![vs(&[0, 4]), vs(&[0, 1, 3, 4]), vs(&[1, 2, 3])],
        vec![None, Some(0), Some(1)],
    )
    .unwrap();

    let mut rows = Vec::new();
    let mut anchor: Option<usize> = None;
    // Theorem 1 at the chain cover.
    for tau in [16.0, 64.0] {
        let t0 = Instant::now();
        let s = Theorem1Structure::build(&view, &db, &[1.0, 1.0, 1.0, 1.0], tau).unwrap();
        let build = t0.elapsed();
        let mut b = BatchStats::default();
        for r in &requests {
            b.add(&measure_delays(s.answer(r).unwrap()));
        }
        let bs = b.finish();
        if let Some(a) = anchor {
            assert_eq!(a, bs.tuples);
        }
        anchor = Some(bs.tuples);
        rows.push(vec![
            format!("theorem 1, τ = {tau}"),
            fmt_bytes(s.heap_bytes()),
            format!("{build:.1?}"),
            fmt_ns(bs.max_delay_ns),
            fmt_ns(bs.total_ns / bs.requests as u64),
            bs.tuples.to_string(),
        ]);
    }
    // Theorem 2 at the paper decomposition, three delay regimes.
    for (label, delta) in [
        ("theorem 2, δ = 0 (Prop 4)", vec![0.0, 0.0, 0.0]),
        ("theorem 2, δ = (0.25, 0.25)", vec![0.0, 0.25, 0.25]),
        ("theorem 2, δ = (0.5, 0.5)", vec![0.0, 0.5, 0.5]),
    ] {
        let t0 = Instant::now();
        let s = Theorem2Structure::build(&view, &db, &td, &delta).unwrap();
        let build = t0.elapsed();
        let mut b = BatchStats::default();
        for r in &requests {
            b.add(&measure_delays(s.answer(r).unwrap()));
        }
        let bs = b.finish();
        assert_eq!(anchor.unwrap(), bs.tuples, "correctness anchor");
        rows.push(vec![
            label.into(),
            fmt_bytes(s.heap_bytes()),
            format!("{build:.1?}"),
            fmt_ns(bs.max_delay_ns),
            fmt_ns(bs.total_ns / bs.requests as u64),
            bs.tuples.to_string(),
        ]);
    }
    println!(
        "{}",
        markdown_table(
            &[
                "representation",
                "space",
                "build",
                "max delay",
                "mean answer",
                "tuples"
            ],
            &rows
        )
    );
    println!();
}

/// EXP-8: the running example — prints the Figure 3 / Example 13–15 golden
/// facts as produced by this implementation.
fn exp8_running_example() {
    println!("## EXP-8 — running example golden facts (Examples 13–15, Figure 3)\n");
    let view = queries::running_example().unwrap();
    let mut db = Database::new();
    db.add(Relation::new(
        "R1",
        3,
        vec![
            vec![1, 1, 1],
            vec![1, 1, 2],
            vec![1, 2, 1],
            vec![2, 1, 1],
            vec![3, 1, 1],
        ],
    ))
    .unwrap();
    db.add(Relation::new(
        "R2",
        3,
        vec![
            vec![1, 1, 2],
            vec![1, 2, 1],
            vec![1, 2, 2],
            vec![2, 1, 1],
            vec![2, 1, 2],
        ],
    ))
    .unwrap();
    db.add(Relation::new(
        "R3",
        3,
        vec![
            vec![1, 1, 1],
            vec![1, 1, 2],
            vec![1, 2, 1],
            vec![2, 1, 1],
            vec![2, 1, 2],
        ],
    ))
    .unwrap();
    let s = Theorem1Structure::build(&view, &db, &[1.0, 1.0, 1.0], 4.0).unwrap();
    let tree = s.tree().unwrap();
    let mut rows = Vec::new();
    for (i, node) in tree.nodes.iter().enumerate() {
        rows.push(vec![
            format!("node {i} (level {})", node.level),
            format!(
                "[{:?}, {:?}]",
                s.estimator().ranks_to_values(&node.interval.lo),
                s.estimator().ranks_to_values(&node.interval.hi)
            ),
            node.beta
                .as_ref()
                .map(|b| format!("{:?}", s.estimator().ranks_to_values(b)))
                .unwrap_or_else(|| "—".into()),
            format!("{:.3}", node.t_value),
            format!("{:.3}", tree.threshold_of(i as u32)),
        ]);
    }
    println!(
        "{}",
        markdown_table(&["node", "interval", "β", "T(I)", "τ_ℓ"], &rows)
    );
    println!(
        "dictionary entries: {} — D(r, (1,1,1)) = {:?}, D(r_r, (1,1,1)) = {:?}",
        s.dictionary().num_entries(),
        s.dictionary().get(0, &[1, 1, 1]),
        s.dictionary().get(tree.nodes[0].right.unwrap(), &[1, 1, 1]),
    );
    let out: Vec<Vec<u64>> = s.answer(&[1, 1, 1]).unwrap().collect();
    println!("Q[(1,1,1)] = {out:?} (paper: lexicographic enumeration)\n");
}

/// EXP-9: the §6 optimizers across queries and budgets.
fn exp9_lp_tables() {
    println!("## EXP-9 — MinDelayCover / MinSpaceCover (§6, Props. 11–12)\n");
    let cases: Vec<(&str, cqc_query::AdornedView)> = vec![
        ("triangle fff", queries::triangle_self("fff").unwrap()),
        ("triangle bfb", queries::triangle_self("bfb").unwrap()),
        ("star_3 bbbf", queries::star(3, "bbbf").unwrap()),
        ("LW_3 fff", queries::loomis_whitney(3, "fff").unwrap()),
        (
            "path_4 bfffb",
            queries::path(4, &queries::path_pattern(4)).unwrap(),
        ),
    ];
    let mut rows = Vec::new();
    for (name, view) in &cases {
        let h = view.query().hypergraph();
        let sizes = vec![1.0; h.num_edges()];
        for budget in [1.0, 1.5, 2.0] {
            let c = min_delay_cover(&h, view.free_vars(), &sizes, budget).unwrap();
            rows.push(vec![
                name.to_string(),
                format!("S ≤ N^{budget}"),
                format!("{:.2?}", c.weights),
                format!("{:.2}", c.alpha),
                format!("N^{:.3}", c.log_tau),
            ]);
        }
    }
    println!(
        "{}",
        markdown_table(
            &[
                "query",
                "space budget",
                "cover u",
                "slack α",
                "optimal delay τ"
            ],
            &rows
        )
    );
    // MinSpaceCover on the triangle: the inverse direction.
    let view = queries::triangle_self("fff").unwrap();
    let h = view.query().hypergraph();
    let mut rows = Vec::new();
    for d in [0.0, 0.25, 0.5, 0.75] {
        let c = min_space_cover(&h, view.free_vars(), &[1.0; 3], d).unwrap();
        rows.push(vec![
            format!("τ ≤ N^{d}"),
            format!("N^{:.3}", c.log_space),
            format!("{:.2}", c.alpha),
        ]);
    }
    println!(
        "{}",
        markdown_table(&["delay budget", "minimal space", "slack α"], &rows)
    );
    println!();
}

/// EXP-11 (ablation): Algorithm 1's cost-balanced splits vs naive grid
/// midpoints — the design choice DESIGN.md calls out. Midpoint splitting
/// loses the Prop. 8 halving guarantee, so skewed instances yield deeper
/// trees and fatter dictionaries at the same τ.
fn exp11_splitter_ablation(scale: Scale) {
    use cqc_core::cost::CostEstimator;
    use cqc_core::dbtree::{DelayBalancedTree, Splitter};
    use cqc_core::dictionary::HeavyDictionary;
    use cqc_join::plan::ViewPlan;
    use cqc_lp::covers::slack;

    println!("## EXP-11 — ablation: balanced (Alg. 1) vs midpoint splits\n");
    let view = queries::set_intersection().unwrap();
    let mut rng = cqc_workload::rng(12);
    let zipf = cqc_workload::Zipf::new(scale.pick(300, 1500), 1.1);
    let rel = cqc_workload::gen::zipf_pairs(
        &mut rng,
        "R",
        scale.pick(4000, 20000),
        scale.pick(150, 600),
        &zipf,
    );
    let mut db = Database::new();
    db.add(rel).unwrap();

    let weights = [1.0, 1.0];
    let h = view.query().hypergraph();
    let alpha = slack(&h, &weights, view.free_vars());
    let est = CostEstimator::build(&view, &db, &weights, alpha).unwrap();
    let plan = ViewPlan::build(&view, &db).unwrap();

    let mut rows = Vec::new();
    for tau in [8.0f64, 32.0, 128.0] {
        for (name, splitter) in [
            ("balanced (Alg. 1)", Splitter::Balanced),
            ("midpoint (ablation)", Splitter::Midpoint),
        ] {
            let t0 = Instant::now();
            let tree = DelayBalancedTree::build_with_splitter(&est, tau, splitter).unwrap();
            let dict = HeavyDictionary::build(&plan, &est, &tree);
            let dt = t0.elapsed();
            rows.push(vec![
                format!("τ = {tau}, {name}"),
                tree.len().to_string(),
                tree.depth().to_string(),
                dict.num_entries().to_string(),
                format!("{dt:.1?}"),
            ]);
        }
    }
    println!(
        "{}",
        markdown_table(
            &[
                "configuration",
                "tree nodes",
                "depth",
                "dict entries",
                "build"
            ],
            &rows
        )
    );
    println!();
}

/// EXP-12 (workload study): how graph clustering affects the triangle-view
/// compression. Community structure concentrates triangles on intra-cluster
/// pairs, creating heavy sub-instances whose memoization is the whole point
/// of the dictionary: with clustering, each hot pair carries several times
/// more answers at essentially unchanged per-request latency.
fn exp12_community_locality(scale: Scale) {
    use cqc_workload::graphs::community_graph;
    println!("## EXP-12 — community structure and triangle compression\n");
    let view = queries::triangle_self("bfb").unwrap();
    let nodes = scale.pick(160u64, 400);
    let edges = scale.pick(3000usize, 9000);
    let mut rows = Vec::new();
    for locality in [0.0f64, 0.5, 0.9] {
        let mut rng = cqc_workload::rng(13);
        let mut db = Database::new();
        db.add(community_graph(&mut rng, nodes, 8, edges, locality))
            .unwrap();
        let n = db.size() as f64;
        // τ = N^{1/4}: low enough that heavy pairs exist, high enough that
        // only genuinely hot pairs are memoized.
        let s = Theorem1Structure::build(&view, &db, &[0.5, 0.5, 0.5], n.powf(0.25)).unwrap();
        let dir = DirectView::build(&view, &db).unwrap();
        let requests = witness_requests(&mut rng, &view, &db, scale.pick(150, 300));
        let mut bs = BatchStats::default();
        for r in &requests {
            bs.add(&measure_delays(s.answer(r).unwrap()));
        }
        let bs = bs.finish();
        let mut bd = BatchStats::default();
        for r in &requests {
            bd.add(&measure_delays(dir.answer(r).unwrap()));
        }
        let bd = bd.finish();
        assert_eq!(bs.tuples, bd.tuples);
        rows.push(vec![
            format!("locality {locality}"),
            db.size().to_string(),
            s.stats().dict_entries.to_string(),
            bs.tuples.to_string(),
            fmt_ns(bs.total_ns / bs.requests as u64),
            fmt_ns(bd.total_ns / bd.requests as u64),
        ]);
    }
    println!(
        "{}",
        markdown_table(
            &[
                "graph",
                "|D|",
                "dict entries",
                "triangles",
                "thm-1 answer",
                "direct answer"
            ],
            &rows
        )
    );
    println!(
        "clustered graphs pack more triangle mass onto hot pairs: answers per \
         request grow ~3x from locality 0 to 0.9 at near-flat per-request \
         latency, and dictionary occupancy per input tuple rises with \
         clustering\n"
    );
}

/// EXP-10: compression time scaling (Theorem 1's T_C).
fn exp10_build_time(scale: Scale) {
    println!("## EXP-10 — compression time scaling (T_C)\n");
    let view = queries::triangle_self("bfb").unwrap();
    let mut rows = Vec::new();
    let mut ns = Vec::new();
    let mut times = Vec::new();
    let edge_counts = scale.pick(
        vec![500usize, 1000, 2000, 4000],
        vec![2000, 4000, 8000, 16000, 32000],
    );
    for edges in edge_counts {
        let db = triangle_db(11, (edges / 5) as u64, edges);
        let n = db.size() as f64;
        let tau = n.sqrt();
        let t0 = Instant::now();
        let s = Theorem1Structure::build(&view, &db, &[0.5, 0.5, 0.5], tau).unwrap();
        let dt = t0.elapsed();
        ns.push(n);
        times.push(dt.as_nanos() as f64);
        rows.push(vec![
            db.size().to_string(),
            format!("τ = √N = {tau:.0}"),
            format!("{dt:.1?}"),
            s.stats().tree_nodes.to_string(),
            s.stats().dict_entries.to_string(),
        ]);
    }
    println!(
        "{}",
        markdown_table(
            &["|D|", "knob", "build time", "tree nodes", "dict entries"],
            &rows
        )
    );
    println!(
        "build time vs |D| slope: {:.2} (paper bound: Π|R|^{{u_F}} = N^{{1.5}} worst case; \
         skew and early-exit probes usually land below)\n",
        fit_loglog_slope(&ns, &times)
    );
}
