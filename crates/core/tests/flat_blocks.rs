//! Flat-block enumeration must be tuple-for-tuple identical — same
//! answers, same lexicographic/enumeration order — to the legacy pull
//! iterator, for every strategy, across randomized databases, patterns and
//! requests. The push pipeline and the iterators share their cores, but
//! these tests pin the equivalence from the outside, including the
//! scratch-reuse path (`ViewEnumerator` reset across requests).

use cqc_common::value::{Tuple, Value};
use cqc_common::{AnswerBlock, CountingSink, ExistsSink};
use cqc_core::{CompressedView, Strategy};
use cqc_query::parser::parse_adorned;
use cqc_storage::Database;

/// The strategy grid exercised against every random instance.
fn strategies() -> Vec<Strategy> {
    vec![
        Strategy::Materialize,
        Strategy::Direct,
        Strategy::Factorized,
        Strategy::Tradeoff {
            tau: 1.0,
            weights: None,
        },
        Strategy::Tradeoff {
            tau: 4.0,
            weights: None,
        },
        Strategy::Tradeoff {
            tau: 1e6,
            weights: None,
        },
        Strategy::Decomposed {
            space_budget_exp: 1.5,
        },
        Strategy::Auto {
            space_budget_exp: None,
        },
    ]
}

/// All bound assignments over a small grid (cross product of `0..grid`).
fn requests(nb: usize, grid: u64) -> Vec<Vec<Value>> {
    let mut reqs: Vec<Vec<Value>> = vec![vec![]];
    for _ in 0..nb {
        reqs = reqs
            .iter()
            .flat_map(|r| {
                (0..grid).map(move |v| {
                    let mut r2 = r.clone();
                    r2.push(v);
                    r2
                })
            })
            .collect();
    }
    reqs
}

/// Checks one compressed view: for every request, the flat block produced
/// by the push path equals the legacy iterator's output exactly (content
/// *and* order), both through one-shot `answer_into` and through a single
/// reused enumerator; `exists` agrees with non-emptiness.
fn check_equivalence(cv: &CompressedView, reqs: &[Vec<Value>], label: &str) {
    let mut reused = cv.enumerator();
    let mut reused_block = AnswerBlock::new();
    for req in reqs {
        let legacy: Vec<Tuple> = cv.answer(req).unwrap().collect();

        let mut block = AnswerBlock::new();
        cv.answer_into(req, &mut block).unwrap();
        assert_eq!(
            block.to_tuples(),
            legacy,
            "{label}: one-shot flat block diverges for {req:?}"
        );

        reused_block.clear();
        reused.answer_into(req, &mut reused_block).unwrap();
        assert_eq!(
            reused_block.to_tuples(),
            legacy,
            "{label}: reused enumerator diverges for {req:?}"
        );

        let mut count = CountingSink::default();
        cv.answer_into(req, &mut count).unwrap();
        assert_eq!(count.count, legacy.len(), "{label}: count sink {req:?}");

        let mut probe = ExistsSink::default();
        cv.answer_into(req, &mut probe).unwrap();
        assert_eq!(probe.found, !legacy.is_empty(), "{label}: exists {req:?}");
        assert_eq!(cv.exists(req).unwrap(), !legacy.is_empty());
    }
}

fn random_db(seed: u64, names: &[&str], rows: usize, domain: u64) -> Database {
    let mut rng = cqc_workload::rng(seed);
    let mut db = Database::new();
    for name in names {
        db.add(cqc_workload::uniform_relation(
            &mut rng, name, 2, rows, domain,
        ))
        .unwrap();
    }
    db
}

#[test]
fn triangle_views_flat_equals_legacy_across_seeds() {
    for seed in [3u64, 17, 29] {
        let db = random_db(seed, &["R", "S", "T"], 80, 12);
        for pattern in ["bfb", "bbf", "fff", "fbf"] {
            let view = parse_adorned("Q(x,y,z) :- R(x,y), S(y,z), T(z,x)", pattern).unwrap();
            let nb = pattern.matches('b').count();
            let reqs = requests(nb, 6);
            for strat in strategies() {
                let cv = CompressedView::build(&view, &db, strat.clone()).unwrap();
                check_equivalence(
                    &cv,
                    &reqs,
                    &format!("triangle seed={seed} {pattern} {strat:?}"),
                );
            }
        }
    }
}

#[test]
fn path_views_flat_equals_legacy() {
    for seed in [5u64, 23] {
        let db = random_db(seed, &["R1", "R2", "R3"], 60, 8);
        for pattern in ["bffb", "bfff", "ffff"] {
            let view = parse_adorned("P(x1,x2,x3,x4) :- R1(x1,x2), R2(x2,x3), R3(x3,x4)", pattern)
                .unwrap();
            let nb = pattern.matches('b').count();
            let reqs = requests(nb, 5);
            for strat in strategies() {
                let cv = CompressedView::build(&view, &db, strat.clone()).unwrap();
                check_equivalence(&cv, &reqs, &format!("path seed={seed} {pattern} {strat:?}"));
            }
        }
    }
}

#[test]
fn star_views_flat_equals_legacy() {
    let db = random_db(11, &["R1", "R2"], 70, 10);
    for pattern in ["bbf", "fbf", "bff"] {
        let view = parse_adorned("S(x1,x2,z) :- R1(x1,z), R2(x2,z)", pattern).unwrap();
        let nb = pattern.matches('b').count();
        let reqs = requests(nb, 6);
        for strat in strategies() {
            let cv = CompressedView::build(&view, &db, strat.clone()).unwrap();
            check_equivalence(&cv, &reqs, &format!("star {pattern} {strat:?}"));
        }
    }
}

#[test]
fn bound_only_and_always_empty_flat_paths() {
    let db = random_db(41, &["R", "S"], 40, 6);
    // All-bound: answers are the empty tuple (arity 0) when present.
    let view = parse_adorned("Q(x,y,z) :- R(x,y), S(y,z)", "bbb").unwrap();
    let cv = CompressedView::build(
        &view,
        &db,
        Strategy::Auto {
            space_budget_exp: None,
        },
    )
    .unwrap();
    check_equivalence(&cv, &requests(3, 5), "bound-only");

    // Always-empty via a failing ground atom.
    let mut db2 = Database::new();
    db2.add(cqc_storage::Relation::from_pairs("R", vec![(1, 2)]))
        .unwrap();
    db2.add(cqc_storage::Relation::from_pairs("G", vec![(5, 5)]))
        .unwrap();
    let view = parse_adorned("Q(x, y) :- R(x, y), G(7, 7)", "bf").unwrap();
    let cv = CompressedView::build(&view, &db2, Strategy::Direct).unwrap();
    assert_eq!(cv.strategy_name(), "always-empty");
    check_equivalence(&cv, &requests(1, 4), "always-empty");
}

#[test]
fn theorem1_iter_reset_matches_fresh_iterators() {
    // The reset path must behave exactly like a fresh `answer` call — the
    // enumerator-reuse contract the serve loop depends on.
    let db = random_db(59, &["R", "S", "T"], 90, 10);
    let view = parse_adorned("Q(x,y,z) :- R(x,y), S(y,z), T(z,x)", "bff").unwrap();
    let s = match CompressedView::build(
        &view,
        &db,
        Strategy::Tradeoff {
            tau: 3.0,
            weights: None,
        },
    )
    .unwrap()
    {
        CompressedView::Tradeoff(s) => s,
        other => panic!("expected theorem-1, got {}", other.strategy_name()),
    };
    let mut it = s.answer(&[0]).unwrap();
    for x in 0..8u64 {
        it.reset(&[x]).unwrap();
        let mut got: Vec<Tuple> = Vec::new();
        while it.advance() {
            got.push(it.current().to_vec());
        }
        let fresh: Vec<Tuple> = s.answer(&[x]).unwrap().collect();
        assert_eq!(got, fresh, "reset diverges from fresh at x={x}");
    }
    // Interleave partially drained requests: reset mid-enumeration.
    it.reset(&[1]).unwrap();
    it.advance();
    it.reset(&[2]).unwrap();
    let drained: Vec<Tuple> = (&mut it).collect();
    let fresh: Vec<Tuple> = s.answer(&[2]).unwrap().collect();
    assert_eq!(drained, fresh, "reset after partial drain");
}
