//! f-intervals, canonical f-boxes and the box decomposition (§4.1).
//!
//! Everything in this module lives in **rank space**: a free variable's
//! value is represented by its rank in the variable's sorted active domain,
//! so the lexicographic product `D_f = D[x_f^1] × … × D[x_f^µ]` becomes the
//! integer grid `[0, n_1) × … × [0, n_µ)`. Successor/predecessor are `±1`
//! with carry, and all the open/closed endpoint bookkeeping of the paper's
//! interval algebra reduces to exact integer arithmetic.

use cqc_storage::domain::{rank_tuple_pred, rank_tuple_succ};
use std::cmp::Ordering;

/// A closed f-interval `[lo, hi]` of rank tuples (lexicographic order).
///
/// Invariant: `lo ≤ hi` lexicographically and both tuples are inside the
/// domain grid. Open intervals are normalized to closed ones by the caller
/// via [`succ`]/[`pred`] — the paper's node intervals `[a, β)` / `(β, c]`
/// become `[a, pred(β)]` / `[succ(β), c]`, exactly as in Figure 3.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FInterval {
    /// Inclusive lower endpoint (ranks).
    pub lo: Vec<usize>,
    /// Inclusive upper endpoint (ranks).
    pub hi: Vec<usize>,
}

impl FInterval {
    /// The full grid `[⊥…⊥, ⊤…⊤]` for the given domain sizes.
    ///
    /// Returns `None` when some domain is empty (the grid has no points).
    pub fn full(sizes: &[usize]) -> Option<FInterval> {
        if sizes.contains(&0) {
            return None;
        }
        Some(FInterval {
            lo: vec![0; sizes.len()],
            hi: sizes.iter().map(|&s| s - 1).collect(),
        })
    }

    /// Number of free variables µ.
    pub fn mu(&self) -> usize {
        self.lo.len()
    }

    /// `true` if the interval is the single point `lo == hi`.
    pub fn is_unit(&self) -> bool {
        self.lo == self.hi
    }

    /// Lexicographic membership test.
    pub fn contains(&self, point: &[usize]) -> bool {
        lex_cmp_ranks(&self.lo, point) != Ordering::Greater
            && lex_cmp_ranks(point, &self.hi) != Ordering::Greater
    }
}

/// Lexicographic comparison of rank tuples.
pub fn lex_cmp_ranks(a: &[usize], b: &[usize]) -> Ordering {
    debug_assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(b) {
        match x.cmp(y) {
            Ordering::Equal => continue,
            other => return other,
        }
    }
    Ordering::Equal
}

/// The lexicographic successor of `point` in the grid, or `None` at the top.
pub fn succ(point: &[usize], sizes: &[usize]) -> Option<Vec<usize>> {
    let mut p = point.to_vec();
    rank_tuple_succ(&mut p, sizes).then_some(p)
}

/// The lexicographic predecessor of `point` in the grid, or `None` at the
/// bottom.
pub fn pred(point: &[usize], sizes: &[usize]) -> Option<Vec<usize>> {
    let mut p = point.to_vec();
    rank_tuple_pred(&mut p, sizes).then_some(p)
}

/// A canonical f-box (Definition 2): a unit-value prefix, one ranged
/// variable, and unconstrained variables after it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CanonicalBox {
    /// Unit ranks at free positions `0..prefix.len()`.
    pub prefix: Vec<usize>,
    /// Inclusive rank range at position `prefix.len()`; positions beyond
    /// are unconstrained (`□`). Empty when `range.0 > range.1`.
    pub range: (usize, usize),
}

impl CanonicalBox {
    /// `true` when the box denotes no valuations.
    pub fn is_empty(&self) -> bool {
        self.range.0 > self.range.1
    }

    /// The position of the ranged variable.
    pub fn range_pos(&self) -> usize {
        self.prefix.len()
    }

    /// A unit box for a full point (all µ positions fixed).
    pub fn unit(point: &[usize]) -> CanonicalBox {
        assert!(!point.is_empty());
        CanonicalBox {
            prefix: point[..point.len() - 1].to_vec(),
            range: (point[point.len() - 1], point[point.len() - 1]),
        }
    }

    /// `true` if the rank tuple lies inside the box.
    pub fn contains(&self, point: &[usize]) -> bool {
        if point.len() <= self.prefix.len() {
            return false;
        }
        self.prefix.iter().zip(point).all(|(a, b)| a == b)
            && point[self.prefix.len()] >= self.range.0
            && point[self.prefix.len()] <= self.range.1
    }
}

/// A reusable buffer of canonical boxes.
///
/// [`box_decomposition_ranks`] refills it in place: the outer `Vec` and
/// every per-box prefix `Vec` keep their capacity across refills, so a
/// `BoxList` owned by a long-lived enumerator reaches a steady state where
/// decomposing a node's interval performs **no** heap allocation.
#[derive(Debug, Clone, Default)]
pub struct BoxList {
    boxes: Vec<CanonicalBox>,
    len: usize,
}

impl BoxList {
    /// An empty list.
    pub fn new() -> BoxList {
        BoxList::default()
    }

    /// Number of live boxes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when no boxes are live.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The live boxes.
    pub fn as_slice(&self) -> &[CanonicalBox] {
        &self.boxes[..self.len]
    }

    /// Box `i`.
    pub fn get(&self, i: usize) -> &CanonicalBox {
        &self.boxes[..self.len][i]
    }

    /// Forgets the live boxes, keeping every buffer.
    pub fn clear(&mut self) {
        self.len = 0;
    }

    /// Appends a box, reusing a retired slot's prefix buffer if available.
    fn push(&mut self, prefix: &[usize], range: (usize, usize)) {
        if self.len < self.boxes.len() {
            let b = &mut self.boxes[self.len];
            b.prefix.clear();
            b.prefix.extend_from_slice(prefix);
            b.range = range;
        } else {
            self.boxes.push(CanonicalBox {
                prefix: prefix.to_vec(),
                range,
            });
        }
        self.len += 1;
    }
}

/// The decomposition core shared by [`box_decomposition`] and
/// [`box_decomposition_ranks`]: emits each box as `(prefix, range)`.
fn decompose(
    lo: &[usize],
    hi: &[usize],
    sizes: &[usize],
    push: &mut impl FnMut(&[usize], (usize, usize)),
) {
    let mu = lo.len();
    assert!(
        mu >= 1,
        "box decomposition needs at least one free variable"
    );
    debug_assert_eq!(hi.len(), mu);
    debug_assert_eq!(sizes.len(), mu);
    debug_assert!(
        lex_cmp_ranks(lo, hi) != Ordering::Greater,
        "interval endpoints out of order"
    );

    // First differing position.
    let Some(j) = (0..mu).find(|&i| lo[i] != hi[i]) else {
        // Unit interval.
        push(&lo[..mu - 1], (lo[mu - 1], lo[mu - 1]));
        return;
    };

    if j == mu - 1 {
        // Endpoints share all but the last position: one closed box.
        push(&lo[..mu - 1], (lo[mu - 1], hi[mu - 1]));
        return;
    }

    // Left boxes, innermost (i = µ-1) outwards to j+1.
    for i in (j + 1..mu).rev() {
        let range = if i == mu - 1 {
            // Closed left endpoint: [lo_i, ⊤].
            (lo[i], sizes[i] - 1)
        } else {
            // (lo_i, ⊤].
            (lo[i] + 1, sizes[i] - 1)
        };
        if range.0 <= range.1 {
            push(&lo[..i], range);
        }
    }
    // Middle box: ⟨lo[..j], (lo_j, hi_j)⟩.
    if lo[j] < hi[j].wrapping_sub(1) && hi[j] > 0 {
        let range = (lo[j] + 1, hi[j] - 1);
        if range.0 <= range.1 {
            push(&lo[..j], range);
        }
    }
    // Right boxes, outermost (i = j+1) to innermost (µ-1).
    for i in j + 1..mu {
        let range = if i == mu - 1 {
            // Closed right endpoint: [⊥, hi_i].
            (0, hi[i])
        } else {
            // [⊥, hi_i).
            if hi[i] == 0 {
                continue;
            }
            (0, hi[i] - 1)
        };
        if range.0 <= range.1 {
            push(&hi[..i], range);
        }
    }
}

/// The box decomposition `B(I)` of a closed f-interval (§4.1 / Lemma 1),
/// following the endpoint convention of Example 13: the innermost left and
/// right boxes absorb the closed endpoints, the middle box is open.
///
/// Returned boxes are non-empty, pairwise disjoint, partition `I`, are
/// sorted lexicographically (every point of an earlier box precedes every
/// point of a later box), and number at most `2µ − 1`.
pub fn box_decomposition(interval: &FInterval, sizes: &[usize]) -> Vec<CanonicalBox> {
    let mut boxes = Vec::with_capacity(2 * interval.mu() - 1);
    decompose(&interval.lo, &interval.hi, sizes, &mut |prefix, range| {
        boxes.push(CanonicalBox {
            prefix: prefix.to_vec(),
            range,
        });
    });
    boxes
}

/// [`box_decomposition`] into a reusable [`BoxList`], taking the interval
/// endpoints as borrowed rank slices — the allocation-free form used by
/// the enumerators (no `FInterval` is materialized for clipped node
/// intervals, and no box buffer is reallocated in steady state).
pub fn box_decomposition_ranks(lo: &[usize], hi: &[usize], sizes: &[usize], out: &mut BoxList) {
    out.clear();
    decompose(lo, hi, sizes, &mut |prefix, range| out.push(prefix, range));
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Enumerates all grid points of an interval (test helper).
    fn points_of_interval(i: &FInterval, sizes: &[usize]) -> Vec<Vec<usize>> {
        let mut out = Vec::new();
        let mut cur = i.lo.clone();
        loop {
            out.push(cur.clone());
            if cur == i.hi {
                break;
            }
            assert!(rank_tuple_succ(&mut cur, sizes), "hi not reached");
        }
        out
    }

    fn points_of_box(b: &CanonicalBox, sizes: &[usize]) -> Vec<Vec<usize>> {
        let mu = sizes.len();
        let mut out = Vec::new();
        if b.is_empty() {
            return out;
        }
        // prefix fixed, range var sweeps, the rest full.
        let tail = &sizes[b.range_pos() + 1..];
        let mut tail_points = vec![vec![]];
        for &s in tail {
            let mut next = Vec::new();
            for t in &tail_points {
                for v in 0..s {
                    let mut t2: Vec<usize> = t.clone();
                    t2.push(v);
                    next.push(t2);
                }
            }
            tail_points = next;
        }
        for r in b.range.0..=b.range.1 {
            for t in &tail_points {
                let mut p = b.prefix.clone();
                p.push(r);
                p.extend(t);
                assert_eq!(p.len(), mu);
                out.push(p);
            }
        }
        out
    }

    #[test]
    fn example_13_root_decomposition() {
        // I(r) = [⟨1,1,1⟩, ⟨2,2,2⟩] over domains of size 2 each (values 1,2
        // = ranks 0,1). Expected boxes (in values):
        // ⟨1,1,[1,2]⟩, ⟨1,(1,2]⟩, ⟨2,[1,2)⟩, ⟨2,2,[1,2]⟩.
        let sizes = [2usize, 2, 2];
        let i = FInterval::full(&sizes).unwrap();
        let boxes = box_decomposition(&i, &sizes);
        assert_eq!(
            boxes,
            vec![
                CanonicalBox {
                    prefix: vec![0, 0],
                    range: (0, 1)
                },
                CanonicalBox {
                    prefix: vec![0],
                    range: (1, 1)
                },
                CanonicalBox {
                    prefix: vec![1],
                    range: (0, 0)
                },
                CanonicalBox {
                    prefix: vec![1, 1],
                    range: (0, 1)
                },
            ]
        );
    }

    #[test]
    fn example_12_open_interval_normalized() {
        // Paper: I = (⟨10,50,100⟩, ⟨20,10,50⟩) over D = {1..1000}; we store
        // the closed normalization [⟨10,50,101⟩, ⟨20,10,49⟩] (ranks −1).
        let sizes = [1000usize, 1000, 1000];
        let i = FInterval {
            lo: vec![9, 49, 100],
            hi: vec![19, 9, 48],
        };
        let boxes = box_decomposition(&i, &sizes);
        assert_eq!(
            boxes,
            vec![
                // Bℓ3 = ⟨10, 50, (100, ⊤]⟩
                CanonicalBox {
                    prefix: vec![9, 49],
                    range: (100, 999)
                },
                // Bℓ2 = ⟨10, (50, ⊤]⟩
                CanonicalBox {
                    prefix: vec![9],
                    range: (50, 999)
                },
                // B1 = ⟨(10, 20)⟩
                CanonicalBox {
                    prefix: vec![],
                    range: (10, 18)
                },
                // Br2 = ⟨20, [⊥, 10)⟩
                CanonicalBox {
                    prefix: vec![19],
                    range: (0, 8)
                },
                // Br3 = ⟨20, 10, [⊥, 50)⟩
                CanonicalBox {
                    prefix: vec![19, 9],
                    range: (0, 48)
                },
            ]
        );
    }

    #[test]
    fn example_12_shared_prefix_single_box() {
        // I' = [⟨10,50,100⟩, ⟨10,50,200⟩): closed normalization
        // [⟨10,50,100⟩, ⟨10,50,199⟩] → single box ⟨10,50,[100,200)⟩.
        let sizes = [1000usize, 1000, 1000];
        let i = FInterval {
            lo: vec![9, 49, 99],
            hi: vec![9, 49, 198],
        };
        let boxes = box_decomposition(&i, &sizes);
        assert_eq!(
            boxes,
            vec![CanonicalBox {
                prefix: vec![9, 49],
                range: (99, 198)
            }]
        );
    }

    #[test]
    fn unit_interval_single_unit_box() {
        let sizes = [3usize, 3];
        let i = FInterval {
            lo: vec![1, 2],
            hi: vec![1, 2],
        };
        let boxes = box_decomposition(&i, &sizes);
        assert_eq!(
            boxes,
            vec![CanonicalBox {
                prefix: vec![1],
                range: (2, 2)
            }]
        );
        assert!(boxes[0].contains(&[1, 2]));
        assert!(!boxes[0].contains(&[1, 1]));
    }

    /// Lemma 1: the boxes partition the interval, are lexicographically
    /// ordered, and number at most 2µ − 1. Exhaustive over small grids.
    #[test]
    fn lemma_1_invariants_exhaustive() {
        for sizes in [vec![2usize, 2], vec![3, 2, 2], vec![2, 3, 2], vec![4, 1, 3]] {
            let full = FInterval::full(&sizes).unwrap();
            let all_points = points_of_interval(&full, &sizes);
            let n = all_points.len();
            for a in 0..n {
                for b in a..n {
                    let i = FInterval {
                        lo: all_points[a].clone(),
                        hi: all_points[b].clone(),
                    };
                    let boxes = box_decomposition(&i, &sizes);
                    let mu = sizes.len();
                    assert!(boxes.len() < 2 * mu, "too many boxes");
                    // Partition check.
                    let mut covered: Vec<Vec<usize>> = Vec::new();
                    for bx in &boxes {
                        assert!(!bx.is_empty());
                        covered.extend(points_of_box(bx, &sizes));
                    }
                    let mut expected = points_of_interval(&i, &sizes);
                    let mut got = covered.clone();
                    expected.sort();
                    got.sort();
                    assert_eq!(got, expected, "boxes must partition [{a},{b}]");
                    // Order check: concatenated box points are sorted.
                    for w in covered.windows(2) {
                        assert!(
                            lex_cmp_ranks(&w[0], &w[1]) == Ordering::Less,
                            "boxes must be ordered and disjoint"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn boxlist_refill_matches_vec_decomposition() {
        let sizes = [3usize, 2, 2];
        let full = FInterval::full(&sizes).unwrap();
        let all_points = points_of_interval(&full, &sizes);
        let mut list = BoxList::new();
        for a in 0..all_points.len() {
            for b in a..all_points.len() {
                let i = FInterval {
                    lo: all_points[a].clone(),
                    hi: all_points[b].clone(),
                };
                let vec_boxes = box_decomposition(&i, &sizes);
                box_decomposition_ranks(&i.lo, &i.hi, &sizes, &mut list);
                assert_eq!(list.as_slice(), &vec_boxes[..], "[{a},{b}]");
                assert_eq!(list.len(), vec_boxes.len());
            }
        }
        list.clear();
        assert!(list.is_empty());
    }

    #[test]
    fn succ_pred_roundtrip() {
        let sizes = [2usize, 3];
        let p = vec![0, 2];
        let s = succ(&p, &sizes).unwrap();
        assert_eq!(s, vec![1, 0]);
        assert_eq!(pred(&s, &sizes).unwrap(), p);
        assert!(succ(&[1, 2], &sizes).is_none());
        assert!(pred(&[0, 0], &sizes).is_none());
    }

    #[test]
    fn interval_contains() {
        let i = FInterval {
            lo: vec![0, 1],
            hi: vec![2, 0],
        };
        assert!(i.contains(&[0, 1]));
        assert!(i.contains(&[1, 5]));
        assert!(i.contains(&[2, 0]));
        assert!(!i.contains(&[0, 0]));
        assert!(!i.contains(&[2, 1]));
    }

    #[test]
    fn empty_domain_has_no_full_interval() {
        assert!(FInterval::full(&[2, 0, 3]).is_none());
        assert!(FInterval::full(&[1]).is_some());
    }
}
