//! Proposition 1: all-bound adorned views.
//!
//! When every head variable is bound, an access request is a membership
//! test: `Q^{b…b}[v]` is non-empty iff the projection of `v` onto each
//! atom's variables is present in the corresponding relation. Linear
//! compression time and space, O(1)-per-atom (logarithmic) answer time.

use cqc_common::error::{CqcError, Result};
use cqc_common::heap::HeapSize;
use cqc_common::metrics;
use cqc_common::value::{Tuple, Value};
use cqc_query::{AdornedView, Var};
use cqc_storage::{Database, Delta, Relation};

/// The Proposition 1 structure: per-atom relations plus head-position
/// extraction tables.
#[derive(Debug)]
pub struct BoundOnlyView {
    view: AdornedView,
    /// Per atom: the relation and, per schema column, the bound-head
    /// position supplying its value.
    checks: Vec<(Relation, Vec<usize>)>,
}

impl BoundOnlyView {
    /// Builds the structure (clones the referenced relations; linear space
    /// and time).
    ///
    /// # Errors
    ///
    /// Fails unless the view is a full natural join with an all-bound
    /// pattern.
    pub fn build(view: &AdornedView, db: &Database) -> Result<BoundOnlyView> {
        let query = view.query();
        query.require_natural_join()?;
        query.check_schema(db)?;
        if view.mu() != 0 {
            return Err(CqcError::Config(
                "BoundOnlyView requires an all-bound access pattern".into(),
            ));
        }
        let bound_head = view.bound_head();
        let pos_of = |v: Var| -> usize {
            bound_head
                .iter()
                .position(|w| *w == v)
                .expect("full view: every variable is in the head")
        };
        let mut checks = Vec::with_capacity(query.atoms.len());
        for atom in &query.atoms {
            let rel = db.require(&atom.relation)?.clone();
            let positions: Vec<usize> = atom.vars().map(pos_of).collect();
            checks.push((rel, positions));
        }
        Ok(BoundOnlyView {
            view: view.clone(),
            checks,
        })
    }

    /// Maintains the structure across `delta` (already applied to `db`):
    /// the membership snapshots of touched relations are re-taken from the
    /// post-delta database, untouched ones are kept. Inserts and removes
    /// are equally trivial here — the structure is a per-atom copy of the
    /// base relations.
    ///
    /// Returns `Ok(None)` when the stored view cannot absorb deltas
    /// (non-natural atoms from the Example 3 rewrite).
    ///
    /// # Errors
    ///
    /// Fails when a touched relation is missing from `db`.
    pub fn maintained(&self, db: &Database, delta: &Delta) -> Result<Option<BoundOnlyView>> {
        let query = self.view.query();
        if query.atoms.iter().any(|a| !a.is_natural()) {
            return Ok(None);
        }
        let mut checks = Vec::with_capacity(self.checks.len());
        for ((rel, positions), atom) in self.checks.iter().zip(&query.atoms) {
            let rel = if delta.touches(&atom.relation) {
                db.require(&atom.relation)?.clone()
            } else {
                rel.clone()
            };
            checks.push((rel, positions.clone()));
        }
        Ok(Some(BoundOnlyView {
            view: self.view.clone(),
            checks,
        }))
    }

    /// `true` iff the fully bound request is in the view.
    pub fn exists(&self, bound_values: &[Value]) -> Result<bool> {
        self.view.check_access(bound_values)?;
        for (rel, positions) in &self.checks {
            let tuple: Tuple = positions.iter().map(|&p| bound_values[p]).collect();
            if !rel.contains(&tuple) {
                return Ok(false);
            }
        }
        Ok(true)
    }

    /// Answers the request: at most one (empty) output tuple, matching the
    /// enumeration contract of the other structures.
    pub fn answer(&self, bound_values: &[Value]) -> Result<std::vec::IntoIter<Tuple>> {
        let out = if self.exists(bound_values)? {
            metrics::record_tuple_output();
            vec![Vec::new()]
        } else {
            Vec::new()
        };
        Ok(out.into_iter())
    }

    /// Push-style answering: at most one empty tuple is pushed.
    ///
    /// # Errors
    ///
    /// Fails when the bound value count mismatches the pattern.
    pub fn answer_into(
        &self,
        bound_values: &[Value],
        sink: &mut impl cqc_common::AnswerSink,
    ) -> Result<()> {
        if self.exists(bound_values)? {
            metrics::record_tuple_output();
            sink.push(&[]);
        }
        Ok(())
    }

    /// The view definition.
    pub fn view(&self) -> &AdornedView {
        &self.view
    }
}

impl HeapSize for BoundOnlyView {
    fn heap_bytes(&self) -> usize {
        self.checks
            .iter()
            .map(|(r, p)| r.heap_bytes() + p.heap_bytes())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqc_query::parser::parse_adorned;

    fn db() -> Database {
        let mut db = Database::new();
        db.add(Relation::from_pairs("R", vec![(1, 2), (2, 3)]))
            .unwrap();
        db.add(Relation::from_pairs("S", vec![(2, 3), (3, 4)]))
            .unwrap();
        db
    }

    #[test]
    fn membership_semantics() {
        let v = parse_adorned("Q(x, y, z) :- R(x, y), S(y, z)", "bbb").unwrap();
        let b = BoundOnlyView::build(&v, &db()).unwrap();
        assert!(b.exists(&[1, 2, 3]).unwrap());
        assert!(b.exists(&[2, 3, 4]).unwrap());
        assert!(!b.exists(&[1, 2, 4]).unwrap());
        assert!(!b.exists(&[9, 9, 9]).unwrap());
        assert_eq!(b.answer(&[1, 2, 3]).unwrap().count(), 1);
        assert_eq!(b.answer(&[1, 2, 4]).unwrap().count(), 0);
    }

    #[test]
    fn self_join_positions() {
        // ∆^bbb over a single relation used three times.
        let v = parse_adorned("Q(x, y, z) :- R(x, y), R(y, z), R(z, x)", "bbb").unwrap();
        let mut db = Database::new();
        db.add(Relation::from_pairs("R", vec![(1, 2), (2, 3), (3, 1)]))
            .unwrap();
        let b = BoundOnlyView::build(&v, &db).unwrap();
        assert!(b.exists(&[1, 2, 3]).unwrap());
        assert!(!b.exists(&[2, 1, 3]).unwrap());
    }

    #[test]
    fn rejects_free_patterns_and_bad_access() {
        let v = parse_adorned("Q(x, y) :- R(x, y)", "bf").unwrap();
        assert!(BoundOnlyView::build(&v, &db()).is_err());
        let v = parse_adorned("Q(x, y) :- R(x, y)", "bb").unwrap();
        let b = BoundOnlyView::build(&v, &db()).unwrap();
        assert!(b.exists(&[1]).is_err());
    }
}
