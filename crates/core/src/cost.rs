//! The `T(·)` cost oracle of §4.2.
//!
//! For a weight assignment `u` with slack `α = α(V_f)` and `û = u/α`, the
//! paper defines, for a canonical f-box `B` and a bound valuation `v`:
//!
//! ```text
//! T(B)    = Π_F |R_F(B)|^{û_F}          T(v, B) = Π_F |R_F(v, B)|^{û_F}
//! T(I)    = Σ_{B ∈ B(I)} T(B)           T(v, I) = Σ_{B ∈ B(I)} T(v, B)
//! ```
//!
//! `T(v, I)` bounds the worst-case-optimal time to evaluate
//! `(⋈_F R_F(v)) ⋉ I` (Prop. 6), so it doubles as the heaviness predicate
//! (Def. 3) and as the per-level stopping rule of the delay-balanced tree.
//!
//! Every count is two binary searches on one of two sorted indexes per
//! relation (DESIGN.md §4): `[free columns in enumeration order | bound
//! columns]` for `T(B)` during construction, and `[bound columns | free
//! columns]` for `T(v_b, B)` at query time. A canonical box constrains a
//! *prefix* of the free columns plus at most one range, so both layouts
//! make every count a contiguous row range.

use crate::fbox::{box_decomposition, CanonicalBox, FInterval};
use cqc_common::error::{CqcError, Result};
use cqc_common::heap::HeapSize;
use cqc_common::metrics;
use cqc_common::value::Value;
use cqc_query::AdornedView;
use cqc_storage::{Database, Domain, IndexPool, SortedIndex};
use std::sync::Arc;

/// Per-atom count indexes and exponent.
///
/// Indexes are `Arc`-shared: the access index's column order coincides
/// with the trie order of `cqc_join::plan::ViewPlan`, so a cost oracle
/// built through the same [`IndexPool`] as the plan shares that index
/// instead of re-sorting it.
#[derive(Debug, Clone)]
struct AtomCost {
    /// Sorted `[free cols (enum order) | bound cols]`.
    build_index: Arc<SortedIndex>,
    /// Sorted `[bound cols (bound-head order) | free cols (enum order)]`.
    access_index: Arc<SortedIndex>,
    /// Enumeration positions of this atom's free variables, ascending.
    free_enum: Vec<usize>,
    /// Bound-head positions of this atom's bound variables, ascending.
    bound_pos: Vec<usize>,
    /// `û_F = u_F / α`.
    u_hat: f64,
}

/// The cost oracle for one adorned view under a fixed cover.
#[derive(Debug, Clone)]
pub struct CostEstimator {
    atoms: Vec<AtomCost>,
    /// Active domains of the free variables, in enumeration order.
    domains: Vec<Domain>,
    /// The slack α(V_f) of the cover.
    alpha: f64,
}

impl CostEstimator {
    /// Builds the oracle: computes free-variable active domains and the two
    /// sorted indexes per atom.
    ///
    /// `weights[i]` is the cover weight `u_F` of atom `i`; `alpha` its slack
    /// on the free variables.
    ///
    /// # Errors
    ///
    /// Fails on schema mismatches.
    pub fn build(
        view: &AdornedView,
        db: &Database,
        weights: &[f64],
        alpha: f64,
    ) -> Result<CostEstimator> {
        CostEstimator::build_pooled(view, db, weights, alpha, &mut IndexPool::new())
    }

    /// [`CostEstimator::build`] drawing both per-atom indexes from `pool`:
    /// within one registration the access index (`[bound | free]`) has the
    /// same column order as the join plan's trie index, so the two
    /// structures build it once between them.
    ///
    /// # Errors
    ///
    /// Fails on schema mismatches.
    pub fn build_pooled(
        view: &AdornedView,
        db: &Database,
        weights: &[f64],
        alpha: f64,
        pool: &mut IndexPool,
    ) -> Result<CostEstimator> {
        let all_domains = view.query().active_domains(db)?;
        CostEstimator::build_with_domains_pooled(view, db, weights, alpha, &all_domains, pool)
    }

    /// [`CostEstimator::build`] with the per-variable active domains
    /// already computed (indexed by variable, as
    /// [`cqc_query::ConjunctiveQuery::active_domains`] returns them) —
    /// callers that just scanned the domains anyway (delta maintenance)
    /// skip the second O(|D|) column-union pass.
    ///
    /// # Errors
    ///
    /// Fails on schema mismatches.
    pub fn build_with_domains(
        view: &AdornedView,
        db: &Database,
        weights: &[f64],
        alpha: f64,
        all_domains: &[Domain],
    ) -> Result<CostEstimator> {
        CostEstimator::build_with_domains_pooled(
            view,
            db,
            weights,
            alpha,
            all_domains,
            &mut IndexPool::new(),
        )
    }

    /// [`CostEstimator::build_with_domains`] over a caller-supplied
    /// [`IndexPool`] (the fully explicit form the others delegate to).
    ///
    /// # Errors
    ///
    /// Fails on schema mismatches.
    pub fn build_with_domains_pooled(
        view: &AdornedView,
        db: &Database,
        weights: &[f64],
        alpha: f64,
        all_domains: &[Domain],
        pool: &mut IndexPool,
    ) -> Result<CostEstimator> {
        let query = view.query();
        query.require_natural_join()?;
        query.check_schema(db)?;
        if weights.len() != query.atoms.len() {
            return Err(CqcError::Config(format!(
                "expected {} cover weights, got {}",
                query.atoms.len(),
                weights.len()
            )));
        }
        if alpha < 1.0 - 1e-9 {
            return Err(CqcError::Config(format!("slack α = {alpha} must be ≥ 1")));
        }

        let free_head = view.free_head();
        let bound_head = view.bound_head();
        let domains: Vec<Domain> = free_head
            .iter()
            .map(|v| all_domains[v.index()].clone())
            .collect();

        let enum_pos_of = |v: cqc_query::Var| free_head.iter().position(|w| *w == v);
        let bound_pos_of = |v: cqc_query::Var| bound_head.iter().position(|w| *w == v);

        let mut atoms = Vec::with_capacity(query.atoms.len());
        for (i, atom) in query.atoms.iter().enumerate() {
            db.require(&atom.relation)?;
            let vars: Vec<cqc_query::Var> = atom.vars().collect();

            // (enum position, schema column) of free vars, ascending.
            let mut free_cols: Vec<(usize, usize)> = vars
                .iter()
                .enumerate()
                .filter_map(|(col, v)| enum_pos_of(*v).map(|p| (p, col)))
                .collect();
            free_cols.sort_unstable();
            // (bound-head position, schema column) of bound vars, ascending.
            let mut bound_cols: Vec<(usize, usize)> = vars
                .iter()
                .enumerate()
                .filter_map(|(col, v)| bound_pos_of(*v).map(|p| (p, col)))
                .collect();
            bound_cols.sort_unstable();

            let build_order: Vec<usize> = free_cols
                .iter()
                .map(|&(_, c)| c)
                .chain(bound_cols.iter().map(|&(_, c)| c))
                .collect();
            let access_order: Vec<usize> = bound_cols
                .iter()
                .map(|&(_, c)| c)
                .chain(free_cols.iter().map(|&(_, c)| c))
                .collect();

            atoms.push(AtomCost {
                build_index: pool.get_or_build(db, &atom.relation, &build_order)?,
                access_index: pool.get_or_build(db, &atom.relation, &access_order)?,
                free_enum: free_cols.iter().map(|&(p, _)| p).collect(),
                bound_pos: bound_cols.iter().map(|&(p, _)| p).collect(),
                u_hat: weights[i] / alpha,
            });
        }

        Ok(CostEstimator {
            atoms,
            domains,
            alpha,
        })
    }

    /// Rebuilds this estimator for the post-delta database by **merging**
    /// the delta's genuinely new rows into clones of each sorted index
    /// (two-pointer splice with galloping search,
    /// [`SortedIndex::merge_insert`]) and compacting its removals out
    /// ([`SortedIndex::merge_remove`]) instead of re-sorting every linear
    /// index from scratch — the incremental base-index maintenance path.
    /// The caller has already verified the free-variable grid is unchanged
    /// and passes the freshly scanned `all_domains`.
    ///
    /// Returns `Ok(None)` when the merged indexes cannot be reconciled with
    /// the post-delta relations (size disagreement, arity mismatch, atom
    /// count drift) — the caller should fall back to a full rebuild.
    ///
    /// # Errors
    ///
    /// Propagates schema errors (a view relation missing from `db`).
    pub fn maintained(
        &self,
        view: &AdornedView,
        db: &Database,
        delta: &cqc_storage::Delta,
        all_domains: &[Domain],
    ) -> Result<Option<CostEstimator>> {
        let query = view.query();
        if query.atoms.len() != self.atoms.len() {
            return Ok(None);
        }
        let free_head = view.free_head();
        let domains: Vec<Domain> = free_head
            .iter()
            .map(|v| all_domains[v.index()].clone())
            .collect();
        let mut atoms = Vec::with_capacity(self.atoms.len());
        for (atom, old) in query.atoms.iter().zip(&self.atoms) {
            let rel = db.require(&atom.relation)?;
            let (build_index, access_index) = if delta.touches(&atom.relation) {
                let mut build_index = (*old.build_index).clone();
                let mut access_index = (*old.access_index).clone();
                if let Some(tuples) = delta.tuples_for(&atom.relation) {
                    let Some(fresh) = old.build_index.fresh_from(tuples) else {
                        return Ok(None);
                    };
                    build_index.merge_insert(&fresh);
                    access_index.merge_insert(&fresh);
                }
                if let Some(tuples) = delta.removes_for(&atom.relation) {
                    let Some(stale) = old.build_index.stale_from(tuples) else {
                        return Ok(None);
                    };
                    build_index.merge_remove(&stale);
                    access_index.merge_remove(&stale);
                }
                (Arc::new(build_index), Arc::new(access_index))
            } else {
                // Untouched atom: share the old indexes outright.
                (Arc::clone(&old.build_index), Arc::clone(&old.access_index))
            };
            if build_index.len() != rel.len() {
                // The relation changed beyond this delta: merge is unsound.
                return Ok(None);
            }
            atoms.push(AtomCost {
                build_index,
                access_index,
                free_enum: old.free_enum.clone(),
                bound_pos: old.bound_pos.clone(),
                u_hat: old.u_hat,
            });
        }
        Ok(Some(CostEstimator {
            atoms,
            domains,
            alpha: self.alpha,
        }))
    }

    /// The slack α used for the `û` exponents.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Free-variable active domains (enumeration order).
    pub fn domains(&self) -> &[Domain] {
        &self.domains
    }

    /// Domain sizes (the grid for rank-space geometry).
    pub fn sizes(&self) -> Vec<usize> {
        self.domains.iter().map(Domain::len).collect()
    }

    /// Translates a rank tuple of free variables to values.
    pub fn ranks_to_values(&self, ranks: &[usize]) -> Vec<Value> {
        let mut out = Vec::with_capacity(ranks.len());
        self.ranks_to_values_into(ranks, &mut out);
        out
    }

    /// [`CostEstimator::ranks_to_values`] into a reused buffer (cleared
    /// first) — the per-answer form used by the enumerators.
    pub fn ranks_to_values_into(&self, ranks: &[usize], out: &mut Vec<Value>) {
        out.clear();
        out.extend(ranks.iter().zip(&self.domains).map(|(&r, d)| d.value(r)));
    }

    /// `|R_F(B)|` for atom `ai` — the build-time count (no valuation).
    ///
    /// Allocation-free: the box's constraints are applied by narrowing the
    /// build index depth by depth instead of materializing a prefix vector
    /// — counts are the inner loop of tree construction and dictionary
    /// build, where the old per-call `Vec` was a measurable fraction of
    /// register time.
    pub fn count_box(&self, ai: usize, b: &CanonicalBox) -> usize {
        if b.is_empty() {
            return 0;
        }
        metrics::record_count_probe();
        let atom = &self.atoms[ai];
        let ix = &atom.build_index;
        let (mut lo, mut hi) = (0usize, ix.len());
        let p = b.range_pos();
        for (d, &ep) in atom.free_enum.iter().enumerate() {
            if lo >= hi {
                return 0;
            }
            if ep < p {
                (lo, hi) = ix.narrow_eq(lo, hi, d, self.domains[ep].value(b.prefix[ep]));
            } else if ep == p {
                (lo, hi) = ix.narrow_range(
                    lo,
                    hi,
                    d,
                    self.domains[ep].value(b.range.0),
                    self.domains[ep].value(b.range.1),
                );
                break;
            } else {
                break;
            }
        }
        hi - lo
    }

    /// Rows of atom `ai`'s access index matching `vb`'s bound values — the
    /// box-independent half of `|R_F(v_b, B)|`. The dictionary build caches
    /// this per candidate valuation and re-narrows only the free columns
    /// per box ([`CostEstimator::count_box_bound_in`]); atoms with no bound
    /// variables return the full index.
    pub fn bound_range(&self, ai: usize, vb: &[Value]) -> (usize, usize) {
        let atom = &self.atoms[ai];
        let ix = &atom.access_index;
        let (mut lo, mut hi) = (0usize, ix.len());
        for (d, &p) in atom.bound_pos.iter().enumerate() {
            if lo >= hi {
                break;
            }
            (lo, hi) = ix.narrow_eq(lo, hi, d, vb[p]);
        }
        (lo, hi)
    }

    /// `|R_F(v_b, B)|` given the pre-narrowed bound range of
    /// [`CostEstimator::bound_range`]: only the box's free-column
    /// constraints are applied, at the depths after the bound prefix.
    pub fn count_box_bound_in(&self, ai: usize, range: (usize, usize), b: &CanonicalBox) -> usize {
        if b.is_empty() {
            return 0;
        }
        metrics::record_count_probe();
        let atom = &self.atoms[ai];
        let ix = &atom.access_index;
        let (mut lo, mut hi) = range;
        let base = atom.bound_pos.len();
        let p = b.range_pos();
        for (k, &ep) in atom.free_enum.iter().enumerate() {
            if lo >= hi {
                return 0;
            }
            let d = base + k;
            if ep < p {
                (lo, hi) = ix.narrow_eq(lo, hi, d, self.domains[ep].value(b.prefix[ep]));
            } else if ep == p {
                (lo, hi) = ix.narrow_range(
                    lo,
                    hi,
                    d,
                    self.domains[ep].value(b.range.0),
                    self.domains[ep].value(b.range.1),
                );
                break;
            } else {
                break;
            }
        }
        hi - lo
    }

    /// `|R_F(v_b, B)|` for atom `ai` — the query-time count.
    pub fn count_box_bound(&self, ai: usize, vb: &[Value], b: &CanonicalBox) -> usize {
        if b.is_empty() {
            return 0;
        }
        self.count_box_bound_in(ai, self.bound_range(ai, vb), b)
    }

    /// Number of atoms (indexable by the `ai` arguments).
    pub fn num_atoms(&self) -> usize {
        self.atoms.len()
    }

    /// The exponent `û_F = u_F / α` of atom `ai`.
    pub(crate) fn u_hat(&self, ai: usize) -> f64 {
        self.atoms[ai].u_hat
    }

    /// `true` when atom `ai` is constrained by at least one bound variable
    /// (its counts depend on the valuation `v_b`).
    pub(crate) fn has_bound_cols(&self, ai: usize) -> bool {
        !self.atoms[ai].bound_pos.is_empty()
    }

    /// The full row range of atom `ai`'s access index — the
    /// [`CostEstimator::bound_range`] of an atom with no bound variables.
    pub(crate) fn full_range(&self, ai: usize) -> (usize, usize) {
        (0, self.atoms[ai].access_index.len())
    }

    /// `T(B) = Π_F |R_F(B)|^{û_F}` (atoms with `û_F = 0` contribute 1, the
    /// `0^0 = 1` convention of AGM-style bounds).
    pub fn t_box(&self, b: &CanonicalBox) -> f64 {
        if b.is_empty() {
            return 0.0;
        }
        let mut t = 1.0f64;
        for ai in 0..self.atoms.len() {
            let uh = self.atoms[ai].u_hat;
            if uh <= 1e-12 {
                continue;
            }
            let c = self.count_box(ai, b) as f64;
            if c == 0.0 {
                return 0.0;
            }
            t *= c.powf(uh);
        }
        t
    }

    /// `T(v_b, B)`.
    pub fn t_box_bound(&self, vb: &[Value], b: &CanonicalBox) -> f64 {
        if b.is_empty() {
            return 0.0;
        }
        let mut t = 1.0f64;
        for ai in 0..self.atoms.len() {
            let uh = self.atoms[ai].u_hat;
            if uh <= 1e-12 {
                continue;
            }
            let c = self.count_box_bound(ai, vb, b) as f64;
            if c == 0.0 {
                return 0.0;
            }
            t *= c.powf(uh);
        }
        t
    }

    /// `T(I) = Σ_{B ∈ B(I)} T(B)`.
    pub fn t_interval(&self, i: &FInterval, sizes: &[usize]) -> f64 {
        box_decomposition(i, sizes)
            .iter()
            .map(|b| self.t_box(b))
            .sum()
    }

    /// `T(v_b, I)`.
    pub fn t_interval_bound(&self, vb: &[Value], i: &FInterval, sizes: &[usize]) -> f64 {
        box_decomposition(i, sizes)
            .iter()
            .map(|b| self.t_box_bound(vb, b))
            .sum()
    }
}

impl HeapSize for CostEstimator {
    fn heap_bytes(&self) -> usize {
        self.atoms
            .iter()
            .map(|a| {
                a.build_index.heap_bytes()
                    + a.access_index.heap_bytes()
                    + a.free_enum.heap_bytes()
                    + a.bound_pos.heap_bytes()
                    + std::mem::size_of::<AtomCost>()
            })
            .sum::<usize>()
            + self
                .domains
                .iter()
                .map(|d| d.heap_bytes() + std::mem::size_of::<Domain>())
                .sum::<usize>()
    }
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use cqc_query::parser::parse_adorned;
    use cqc_storage::Relation;

    /// The running example instance (Example 13).
    pub(crate) fn running_example() -> (AdornedView, Database) {
        let mut db = Database::new();
        db.add(Relation::new(
            "R1",
            3,
            vec![
                vec![1, 1, 1],
                vec![1, 1, 2],
                vec![1, 2, 1],
                vec![2, 1, 1],
                vec![3, 1, 1],
            ],
        ))
        .unwrap();
        db.add(Relation::new(
            "R2",
            3,
            vec![
                vec![1, 1, 2],
                vec![1, 2, 1],
                vec![1, 2, 2],
                vec![2, 1, 1],
                vec![2, 1, 2],
            ],
        ))
        .unwrap();
        db.add(Relation::new(
            "R3",
            3,
            vec![
                vec![1, 1, 1],
                vec![1, 1, 2],
                vec![1, 2, 1],
                vec![2, 1, 1],
                vec![2, 1, 2],
            ],
        ))
        .unwrap();
        let view = parse_adorned(
            "Q(x, y, z, w1, w2, w3) :- R1(w1, x, y), R2(w2, y, z), R3(w3, x, z)",
            "fffbbb",
        )
        .unwrap();
        (view, db)
    }

    pub(crate) fn running_estimator() -> CostEstimator {
        let (view, db) = running_example();
        CostEstimator::build(&view, &db, &[1.0, 1.0, 1.0], 2.0).unwrap()
    }

    #[test]
    fn example_13_t_of_root_interval() {
        let est = running_estimator();
        let sizes = est.sizes();
        assert_eq!(sizes, vec![2, 2, 2]);
        let root = FInterval::full(&sizes).unwrap();
        let t = est.t_interval(&root, &sizes);
        // √(3·3·4) + √(1·2·4) + √(1·3·1) + 0 ≈ 10.56.
        let expect = 36.0f64.sqrt() + 8.0f64.sqrt() + 3.0f64.sqrt();
        assert!(
            (t - expect).abs() < 1e-9,
            "T(I(r)) = {t}, expected {expect}"
        );
        assert!((t - 10.56).abs() < 0.01);
    }

    #[test]
    fn example_13_t_of_bound_valuation() {
        let est = running_estimator();
        let sizes = est.sizes();
        let root = FInterval::full(&sizes).unwrap();
        let t = est.t_interval_bound(&[1, 1, 1], &root, &sizes);
        // √2 + 2 + 1 ≈ 4.414; with τ = 4 the pair (v_b, I(r)) is heavy.
        let expect = 2.0f64.sqrt() + 2.0 + 1.0;
        assert!((t - expect).abs() < 1e-9, "T(v_b, I(r)) = {t}");
        assert!(t > 4.0);
    }

    #[test]
    fn example_14_first_box_count() {
        // T([⟨1,1,1⟩,⟨1,1,1⟩]) = √(3·1·2) ≈ 2.449.
        let est = running_estimator();
        let b = CanonicalBox::unit(&[0, 0, 0]);
        let t = est.t_box(&b);
        assert!((t - 6.0f64.sqrt()).abs() < 1e-9, "{t}");
        // Individual counts: |R1(x=1,y=1)| = 3, |R2(y=1,z=1)| = 1,
        // |R3(x=1,z=1)| = 2.
        assert_eq!(est.count_box(0, &b), 3);
        assert_eq!(est.count_box(1, &b), 1);
        assert_eq!(est.count_box(2, &b), 2);
    }

    #[test]
    fn bound_counts_match_manual_filter() {
        let est = running_estimator();
        // Box ⟨1,1,[1,2]⟩ with v_b = (1,1,1):
        // |R1(w1=1, x=1, y=1)| = 1, |R2(w2=1, y=1, z∈[1,2])| = 1,
        // |R3(w3=1, x=1, z∈[1,2])| = 2.
        let b = CanonicalBox {
            prefix: vec![0, 0],
            range: (0, 1),
        };
        assert_eq!(est.count_box_bound(0, &[1, 1, 1], &b), 1);
        assert_eq!(est.count_box_bound(1, &[1, 1, 1], &b), 1);
        assert_eq!(est.count_box_bound(2, &[1, 1, 1], &b), 2);
        assert!((est.t_box_bound(&[1, 1, 1], &b) - 2.0f64.sqrt()).abs() < 1e-9);
    }

    #[test]
    fn empty_boxes_cost_zero() {
        let est = running_estimator();
        let empty = CanonicalBox {
            prefix: vec![0],
            range: (1, 0),
        };
        assert_eq!(est.t_box(&empty), 0.0);
        assert_eq!(est.count_box(0, &empty), 0);
    }

    #[test]
    fn t_interval_bound_subadditive_under_split() {
        // Lemma 2 consequence: splitting an interval never increases total T.
        let est = running_estimator();
        let sizes = est.sizes();
        let root = FInterval::full(&sizes).unwrap();
        let whole = est.t_interval(&root, &sizes);
        let left = FInterval {
            lo: vec![0, 0, 0],
            hi: vec![0, 1, 1],
        };
        let right = FInterval {
            lo: vec![1, 0, 0],
            hi: vec![1, 1, 1],
        };
        let parts = est.t_interval(&left, &sizes) + est.t_interval(&right, &sizes);
        assert!(parts <= whole + 1e-9, "split {parts} > whole {whole}");
    }

    #[test]
    fn zero_weight_atoms_are_skipped() {
        let (view, db) = running_example();
        // Cover (2, 2, 0) with slack on free vars: x covered by R1 (2) and
        // R3 (0) → 2; y by R1+R2 → 4; z by R2+R3 → 2; α = 2.
        let est = CostEstimator::build(&view, &db, &[2.0, 2.0, 0.0], 2.0).unwrap();
        let b = CanonicalBox::unit(&[0, 0, 0]);
        // T = 3^1 · 1^1 (R3 skipped).
        assert!((est.t_box(&b) - 3.0).abs() < 1e-9);
    }

    #[test]
    fn pooled_build_shares_indexes_and_counts_identically() {
        // Two estimators (and a join plan) drawn from one pool must share
        // every identical (relation, order) index — and answer every count
        // exactly like unpooled builds.
        let (view, db) = running_example();
        let mut pool = IndexPool::new();
        let est =
            CostEstimator::build_pooled(&view, &db, &[1.0, 1.0, 1.0], 2.0, &mut pool).unwrap();
        let first_builds = pool.builds();
        assert_eq!(pool.hits(), 0);
        let again =
            CostEstimator::build_pooled(&view, &db, &[1.0, 1.0, 1.0], 2.0, &mut pool).unwrap();
        assert_eq!(pool.builds(), first_builds, "second estimator is all hits");
        assert_eq!(pool.hits(), first_builds);
        // The trie orders of the join plan coincide with the access
        // indexes: building the plan through the same pool adds no new
        // sorts.
        let plan = cqc_join::plan::ViewPlan::build_pooled(&view, &db, &mut pool).unwrap();
        assert_eq!(
            pool.builds(),
            first_builds,
            "plan trie indexes reuse the access indexes"
        );
        assert_eq!(plan.num_atoms(), 3);
        let unpooled = running_estimator();
        let b = CanonicalBox::unit(&[0, 0, 0]);
        for ai in 0..3 {
            assert_eq!(est.count_box(ai, &b), unpooled.count_box(ai, &b));
            assert_eq!(
                again.count_box_bound(ai, &[1, 1, 1], &b),
                unpooled.count_box_bound(ai, &[1, 1, 1], &b)
            );
        }
    }

    #[test]
    fn bound_range_factors_the_bound_count() {
        // count_box_bound == count_box_bound_in over the cached bound
        // range, for every atom and valuation of the running example.
        let est = running_estimator();
        let sizes = est.sizes();
        let root = FInterval::full(&sizes).unwrap();
        for w1 in 1..=3u64 {
            for w2 in 1..=2u64 {
                for w3 in 1..=2u64 {
                    let vb = [w1, w2, w3];
                    for ai in 0..3 {
                        let range = est.bound_range(ai, &vb);
                        for b in box_decomposition(&root, &sizes) {
                            assert_eq!(
                                est.count_box_bound_in(ai, range, &b),
                                est.count_box_bound(ai, &vb, &b),
                                "atom {ai} vb {vb:?}"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn invalid_configs_rejected() {
        let (view, db) = running_example();
        assert!(CostEstimator::build(&view, &db, &[1.0, 1.0], 2.0).is_err());
        assert!(CostEstimator::build(&view, &db, &[1.0, 1.0, 1.0], 0.5).is_err());
    }
}
