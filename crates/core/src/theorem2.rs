//! The Theorem 2 structure: Theorem 1 over a `V_b`-connex decomposition.
//!
//! Given a `V_b`-connex tree decomposition `(T, A)` and a delay assignment
//! `δ`, every non-root bag `t` carries either
//!
//! * a **materialized** bag (when `δ(t) = 0`, the §5.1 regime — exact
//!   constant delay, space `|D|^{ρ*(B_t)}`), or
//! * a **Theorem 1** structure over the bag-local projections with knob
//!   `τ_t = |D|^{δ(t)}` and the cover minimizing `ρ⁺_t` (eq. 3), giving
//!   space `Õ(|D|^{ρ⁺_t})` and per-bag delay `Õ(|D|^{δ(t)})`.
//!
//! After construction, the bottom-up semijoin fixup of Algorithm 4 flips a
//! dictionary 1-entry (or drops a materialized row) whenever no valuation
//! in its interval extends to an answer in *every* child subtree, so that a
//! `1` seen during enumeration guarantees progress (Prop. 17).
//!
//! Answering follows Algorithm 5: the bags are walked in pre-order; a bag
//! that has never produced a tuple for the current ancestor valuation
//! backtracks to its *tree parent* (independence across sibling branches —
//! this is what makes the total delay `Õ(|D|^h)` with the δ-height `h`,
//! multiplicative along a branch but additive across branches), while a
//! bag that exhausts after producing backtracks to its pre-order
//! predecessor, enumerating the cartesian product across branches.

use crate::theorem1::Theorem1Structure;
use cqc_common::error::{CqcError, Result};
use cqc_common::heap::HeapSize;
use cqc_common::metrics;
use cqc_common::value::{Tuple, Value};
use cqc_decomp::{search_connex, Objective, TreeDecomposition};
use cqc_factorized::bag::{bag_local_components, MaterializedBag};
use cqc_lp::covers::rho_plus;
use cqc_query::{AdornedView, Var, VarSet};
use cqc_storage::{Database, Delta, Relation};

/// One bag of the structure.
#[derive(Debug, Clone)]
struct Bag {
    /// Node id in the decomposition.
    node: usize,
    /// Bound variables `V_b^t` (original ids, canonical order).
    bound_vars: Vec<Var>,
    /// Free variables `V_f^t` (original ids, canonical order).
    free_vars: Vec<Var>,
    kind: BagKind,
}

#[derive(Debug, Clone)]
enum BagKind {
    Materialized(MaterializedBag),
    Tradeoff(Box<Theorem1Structure>),
}

/// The Theorem 2 compressed representation.
#[derive(Debug)]
pub struct Theorem2Structure {
    view: AdornedView,
    /// Bags in pre-order of the decomposition (root excluded).
    bags: Vec<Bag>,
    /// Tree parent in `bags` indexes (`None` = the root bag).
    parent_of: Vec<Option<usize>>,
    /// Children in `bags` indexes.
    children_of: Vec<Vec<usize>>,
    root_checks: Vec<(Relation, Vec<Var>)>,
    num_vars: usize,
    delta: Vec<f64>,
}

impl Theorem2Structure {
    /// Builds the structure over an explicit decomposition and delay
    /// assignment (`delta[node]`, 0 at the root).
    ///
    /// # Errors
    ///
    /// Fails for non-natural-join views, invalid or non-connex
    /// decompositions, or LP failures on a bag.
    pub fn build(
        view: &AdornedView,
        db: &Database,
        td: &TreeDecomposition,
        delta: &[f64],
    ) -> Result<Theorem2Structure> {
        let query = view.query();
        query.require_natural_join()?;
        query.check_schema(db)?;
        let h = query.hypergraph();
        td.validate_connex(&h, view.bound_vars())?;
        if delta.len() != td.len() {
            return Err(CqcError::Config(format!(
                "expected {} delay entries, got {}",
                td.len(),
                delta.len()
            )));
        }
        let db_size = (db.size() as f64).max(2.0);

        let atoms: Vec<(String, Vec<Var>)> = query
            .atoms
            .iter()
            .map(|a| (a.relation.clone(), a.vars().collect()))
            .collect();

        // Build bags in pre-order.
        let pre = td.preorder();
        let mut bags: Vec<Bag> = Vec::with_capacity(pre.len() - 1);
        let mut bag_index_of_node = vec![usize::MAX; td.len()];
        for &t in &pre[1..] {
            let bound = td.bag_bound(t);
            let free = td.bag_free(t);
            let bound_vars: Vec<Var> = bound.iter().collect();
            let free_vars: Vec<Var> = free.iter().collect();
            let kind = if delta[t] <= 1e-9 || free_vars.is_empty() {
                BagKind::Materialized(MaterializedBag::build(t, bound, free, &atoms, db)?)
            } else {
                let (bag_view, bag_db, origins) = bag_local_components(t, bound, free, &atoms, db)?;
                let rp = rho_plus(&h, td.bag(t), free, delta[t])?;
                let weights: Vec<f64> = origins.iter().map(|&i| rp.weights[i]).collect();
                let tau = db_size.powf(delta[t]).max(1.0);
                BagKind::Tradeoff(Box::new(Theorem1Structure::build(
                    &bag_view, &bag_db, &weights, tau,
                )?))
            };
            bag_index_of_node[t] = bags.len();
            bags.push(Bag {
                node: t,
                bound_vars,
                free_vars,
                kind,
            });
        }
        let parent_of: Vec<Option<usize>> = bags
            .iter()
            .map(|b| {
                let p = td.parent(b.node).expect("non-root");
                if p == td.root() {
                    None
                } else {
                    Some(bag_index_of_node[p])
                }
            })
            .collect();
        let mut children_of: Vec<Vec<usize>> = vec![Vec::new(); bags.len()];
        for (i, p) in parent_of.iter().enumerate() {
            if let Some(p) = p {
                children_of[*p].push(i);
            }
        }

        let vb = view.bound_vars();
        let mut root_checks = Vec::new();
        for atom in &query.atoms {
            let vars: Vec<Var> = atom.vars().collect();
            if vars.iter().all(|v| vb.contains(*v)) {
                root_checks.push((db.require(&atom.relation)?.clone(), vars));
            }
        }

        let mut s = Theorem2Structure {
            view: view.clone(),
            bags,
            parent_of,
            children_of,
            root_checks,
            num_vars: query.num_vars(),
            delta: delta.to_vec(),
        };
        s.semijoin_fixup(td);
        Ok(s)
    }

    /// End-to-end convenience: searches a decomposition minimizing the
    /// δ-height under the space budget `|D|^{budget_exp}` and optimizes the
    /// per-bag delays (§6).
    pub fn build_with_budget(
        view: &AdornedView,
        db: &Database,
        budget_exp: f64,
    ) -> Result<Theorem2Structure> {
        let query = view.query();
        query.require_natural_join()?;
        let h = query.hypergraph();
        let found = search_connex(
            &h,
            view.bound_vars(),
            Objective::MinimizeHeightUnderBudget { budget_exp },
        )?;
        Theorem2Structure::build(view, db, &found.td, &found.delta)
    }

    /// The Algorithm 4 bottom-up pass: every materialized row / dictionary
    /// 1-entry must extend into all child subtrees.
    fn semijoin_fixup(&mut self, td: &TreeDecomposition) {
        let _ = td;
        let all = vec![true; self.bags.len()];
        self.semijoin_fixup_subset(&all);
    }

    /// [`Theorem2Structure::semijoin_fixup`] restricted to the bags flagged
    /// in `dirty`. Sound whenever `dirty` is closed under ancestors of
    /// changed bags: untouched bags were reduced against children whose
    /// state has not changed since, so re-reducing them is a no-op.
    fn semijoin_fixup_subset(&mut self, dirty: &[bool]) {
        // Process deepest-first so children are already truthful.
        // Pre-order indexes: children always have larger indexes, so
        // reversing the bag order is a valid bottom-up sweep.
        for bi in (0..self.bags.len()).rev() {
            if !dirty[bi] || self.children_of[bi].is_empty() {
                continue;
            }
            // Positions of each child's bound vars inside this bag's row
            // (bound prefix then free suffix).
            let row_vars: Vec<Var> = {
                let b = &self.bags[bi];
                b.bound_vars.iter().chain(&b.free_vars).copied().collect()
            };
            let extractors: Vec<(usize, Vec<usize>)> = self.children_of[bi]
                .iter()
                .map(|&ci| {
                    let pos = self.bags[ci]
                        .bound_vars
                        .iter()
                        .map(|bv| {
                            row_vars
                                .iter()
                                .position(|rv| rv == bv)
                                .expect("child bound var must appear in the parent bag")
                        })
                        .collect();
                    (ci, pos)
                })
                .collect();

            match &self.bags[bi].kind {
                BagKind::Materialized(mb) => {
                    let n = mb.len();
                    let mut keep = vec![true; n];
                    for (i, flag) in keep.iter_mut().enumerate() {
                        let row = mb.row(i).to_vec();
                        *flag = extractors.iter().all(|(ci, pos)| {
                            let key: Vec<Value> = pos.iter().map(|&p| row[p]).collect();
                            self.probe_subtree(*ci, &key)
                        });
                    }
                    if let BagKind::Materialized(mb) = &mut self.bags[bi].kind {
                        let mut it = keep.into_iter();
                        mb.retain(|_| it.next().unwrap());
                    }
                }
                BagKind::Tradeoff(t1) => {
                    // Collect entries to flip, then apply.
                    let mut flips: Vec<(u32, Vec<Value>)> = Vec::new();
                    if let Some(tree) = t1.tree() {
                        for (w, node) in tree.nodes.iter().enumerate() {
                            for (key, bit) in t1.dictionary().entries_of(w as u32) {
                                if !bit {
                                    continue;
                                }
                                let mut extends = false;
                                for free in t1.enumerate_interval(key, &node.interval) {
                                    let mut row: Vec<Value> = key.to_vec();
                                    row.extend(free);
                                    if extractors.iter().all(|(ci, pos)| {
                                        let k: Vec<Value> = pos.iter().map(|&p| row[p]).collect();
                                        self.probe_subtree(*ci, &k)
                                    }) {
                                        extends = true;
                                        break;
                                    }
                                }
                                if !extends {
                                    flips.push((w as u32, key.to_vec()));
                                }
                            }
                        }
                    }
                    if let BagKind::Tradeoff(t1) = &mut self.bags[bi].kind {
                        for (w, key) in flips {
                            t1.dictionary_mut().set(w, &key, false);
                        }
                    }
                }
            }
        }
    }

    /// First-answer probe of the subtree rooted at bag `bi` for the bound
    /// key of that bag: does any bag answer extend through all descendants?
    fn probe_subtree(&self, bi: usize, key: &[Value]) -> bool {
        let bag = &self.bags[bi];
        let children = &self.children_of[bi];
        let nb = bag.bound_vars.len();
        let check_children = |row: &[Value]| -> bool {
            children.iter().all(|&ci| {
                let child_key: Vec<Value> = self.bags[ci]
                    .bound_vars
                    .iter()
                    .map(|bv| {
                        let pos = bag
                            .bound_vars
                            .iter()
                            .chain(&bag.free_vars)
                            .position(|rv| rv == bv)
                            .expect("child bound var in parent bag");
                        row[pos]
                    })
                    .collect();
                self.probe_subtree(ci, &child_key)
            })
        };
        match &bag.kind {
            BagKind::Materialized(mb) => {
                let (lo, hi) = mb.range_for(key);
                (lo..hi).any(|i| {
                    let mut row: Vec<Value> = key.to_vec();
                    row.extend(mb.free_part(i));
                    debug_assert_eq!(row.len(), nb + bag.free_vars.len());
                    check_children(&row)
                })
            }
            BagKind::Tradeoff(t1) => {
                let iter = t1.answer(key).expect("bag key arity is internal");
                for free in iter {
                    let mut row: Vec<Value> = key.to_vec();
                    row.extend(free);
                    if check_children(&row) {
                        return true;
                    }
                }
                false
            }
        }
    }

    /// Rebuilds only the bags whose local database is touched by `delta`
    /// (already applied to `db`), plus their ancestors, then re-runs the
    /// Algorithm 4 semijoin fixup restricted to that set.
    ///
    /// The fixup is destructive — a dropped materialized row or a cleared
    /// dictionary bit cannot resurrect locally — so a touched bag must be
    /// re-derived from the base relations rather than patched, and every
    /// ancestor of a touched bag must be re-derived too (its reduction was
    /// computed against the old subtree). Bags whose entire subtree is
    /// untouched keep their reduced state, which is exactly what a full
    /// rebuild would recompute for them.
    ///
    /// Returns the maintained structure and the number of re-derived bags,
    /// or `Ok(None)` when the stored view cannot absorb deltas (non-natural
    /// atoms from the Example 3 rewrite).
    ///
    /// # Errors
    ///
    /// Propagates schema and LP errors from the per-bag rebuilds.
    pub fn maintained(
        &self,
        db: &Database,
        delta: &Delta,
    ) -> Result<Option<(Theorem2Structure, usize)>> {
        let query = self.view.query();
        if query.atoms.iter().any(|a| !a.is_natural()) {
            return Ok(None);
        }
        query.check_schema(db)?;
        let h = query.hypergraph();
        let atoms: Vec<(String, Vec<Var>)> = query
            .atoms
            .iter()
            .map(|a| (a.relation.clone(), a.vars().collect()))
            .collect();
        let db_size = (db.size() as f64).max(2.0);

        // A bag is stale iff some atom over a touched relation shares a
        // variable with it: its local database projects every incident
        // relation (Appendix B).
        let mut dirty = vec![false; self.bags.len()];
        for (bi, b) in self.bags.iter().enumerate() {
            let bag_set: VarSet = b.bound_vars.iter().chain(&b.free_vars).copied().collect();
            dirty[bi] = atoms
                .iter()
                .any(|(rel, vars)| delta.touches(rel) && vars.iter().any(|v| bag_set.contains(*v)));
        }
        // Close under ancestors (see above). Reverse order: a bag marked
        // through this loop has its own ancestors chained in the same pass.
        for bi in (0..self.bags.len()).rev() {
            if dirty[bi] {
                let mut p = self.parent_of[bi];
                while let Some(pi) = p {
                    if dirty[pi] {
                        break;
                    }
                    dirty[pi] = true;
                    p = self.parent_of[pi];
                }
            }
        }
        let rebuilt = dirty.iter().filter(|&&d| d).count();

        let mut bags = Vec::with_capacity(self.bags.len());
        for (bi, b) in self.bags.iter().enumerate() {
            let kind = if dirty[bi] {
                let bound: VarSet = b.bound_vars.iter().copied().collect();
                let free: VarSet = b.free_vars.iter().copied().collect();
                if self.delta[b.node] <= 1e-9 || b.free_vars.is_empty() {
                    BagKind::Materialized(MaterializedBag::build(b.node, bound, free, &atoms, db)?)
                } else {
                    let (bag_view, bag_db, origins) =
                        bag_local_components(b.node, bound, free, &atoms, db)?;
                    let rp = rho_plus(&h, bound.union(free), free, self.delta[b.node])?;
                    let weights: Vec<f64> = origins.iter().map(|&i| rp.weights[i]).collect();
                    let tau = db_size.powf(self.delta[b.node]).max(1.0);
                    BagKind::Tradeoff(Box::new(Theorem1Structure::build(
                        &bag_view, &bag_db, &weights, tau,
                    )?))
                }
            } else {
                b.kind.clone()
            };
            bags.push(Bag {
                node: b.node,
                bound_vars: b.bound_vars.clone(),
                free_vars: b.free_vars.clone(),
                kind,
            });
        }

        // Refresh the root-check snapshots of touched relations from the
        // post-delta database; untouched ones are still current.
        let mut root_checks = Vec::with_capacity(self.root_checks.len());
        for (rel, vars) in &self.root_checks {
            if delta.touches(rel.name()) {
                root_checks.push((db.require(rel.name())?.clone(), vars.clone()));
            } else {
                root_checks.push((rel.clone(), vars.clone()));
            }
        }

        let mut s = Theorem2Structure {
            view: self.view.clone(),
            bags,
            parent_of: self.parent_of.clone(),
            children_of: self.children_of.clone(),
            root_checks,
            num_vars: self.num_vars,
            delta: self.delta.clone(),
        };
        s.semijoin_fixup_subset(&dirty);
        Ok(Some((s, rebuilt)))
    }

    /// Answers an access request (Algorithm 5). Output order is
    /// decomposition-dependent (§3.2); tuples are duplicate-free.
    ///
    /// The returned iterator owns all odometer scratch (valuation, per-bag
    /// cursors with cached bag-level Theorem 1 enumerators, key and emit
    /// buffers); [`Theorem2Iter::reset`] serves further requests from the
    /// same scratch.
    ///
    /// # Errors
    ///
    /// Fails when the bound value count mismatches the pattern.
    pub fn answer(&self, bound_values: &[Value]) -> Result<Theorem2Iter<'_>> {
        let mut it = Theorem2Iter::new(self);
        it.reset(bound_values)?;
        Ok(it)
    }

    /// Push-style answering into `sink` (stopping early if the sink
    /// declines).
    ///
    /// # Errors
    ///
    /// Fails when the bound value count mismatches the pattern.
    pub fn answer_into(
        &self,
        bound_values: &[Value],
        sink: &mut impl cqc_common::AnswerSink,
    ) -> Result<()> {
        self.answer(bound_values)?.drain_into(sink);
        Ok(())
    }

    /// First-answer probe. No answer tuple is materialized.
    pub fn exists(&self, bound_values: &[Value]) -> Result<bool> {
        Ok(self.answer(bound_values)?.advance())
    }

    /// The view definition.
    pub fn view(&self) -> &AdornedView {
        &self.view
    }

    /// Per-bag reports: which decomposition node each bag serves, its
    /// variable split, structure kind and size — the decomposition-level
    /// companion to `CompressedView::describe`.
    pub fn bag_reports(&self) -> Vec<BagReport> {
        self.bags
            .iter()
            .map(|b| match &b.kind {
                BagKind::Materialized(m) => BagReport {
                    node: b.node,
                    bound_vars: b.bound_vars.len(),
                    free_vars: b.free_vars.len(),
                    delta: self.delta[b.node],
                    kind: "materialized",
                    tuples_or_entries: m.len(),
                    heap_bytes: m.heap_bytes(),
                },
                BagKind::Tradeoff(t) => BagReport {
                    node: b.node,
                    bound_vars: b.bound_vars.len(),
                    free_vars: b.free_vars.len(),
                    delta: self.delta[b.node],
                    kind: "theorem-1",
                    tuples_or_entries: t.dictionary().num_entries(),
                    heap_bytes: t.heap_bytes(),
                },
            })
            .collect()
    }

    /// Per-bag statistics.
    pub fn stats(&self) -> Theorem2Stats {
        let mut materialized_tuples = 0usize;
        let mut dict_entries = 0usize;
        let mut tradeoff_bags = 0usize;
        for b in &self.bags {
            match &b.kind {
                BagKind::Materialized(m) => materialized_tuples += m.len(),
                BagKind::Tradeoff(t) => {
                    tradeoff_bags += 1;
                    dict_entries += t.dictionary().num_entries();
                }
            }
        }
        Theorem2Stats {
            bags: self.bags.len(),
            tradeoff_bags,
            materialized_tuples,
            dict_entries,
            heap_bytes: self.heap_bytes(),
            max_delta: self.delta.iter().copied().fold(0.0, f64::max),
        }
    }
}

/// One bag's report (see [`Theorem2Structure::bag_reports`]).
#[derive(Debug, Clone, Copy)]
pub struct BagReport {
    /// Decomposition node id.
    pub node: usize,
    /// Number of bound variables `|V_b^t|`.
    pub bound_vars: usize,
    /// Number of free variables `|V_f^t|`.
    pub free_vars: usize,
    /// The bag's delay exponent δ(t).
    pub delta: f64,
    /// `"materialized"` or `"theorem-1"`.
    pub kind: &'static str,
    /// Materialized tuples, or dictionary entries for delay-tuned bags.
    pub tuples_or_entries: usize,
    /// Owned heap bytes.
    pub heap_bytes: usize,
}

/// Statistics of a Theorem 2 structure.
#[derive(Debug, Clone, Copy)]
pub struct Theorem2Stats {
    /// Number of non-root bags.
    pub bags: usize,
    /// Bags carrying a Theorem 1 structure (δ > 0).
    pub tradeoff_bags: usize,
    /// Total materialized bag tuples.
    pub materialized_tuples: usize,
    /// Total dictionary entries across Theorem 1 bags.
    pub dict_entries: usize,
    /// Owned heap bytes.
    pub heap_bytes: usize,
    /// `max_t δ(t)`.
    pub max_delta: f64,
}

impl HeapSize for Theorem2Structure {
    fn heap_bytes(&self) -> usize {
        self.bags
            .iter()
            .map(|b| {
                b.bound_vars.heap_bytes()
                    + b.free_vars.heap_bytes()
                    + match &b.kind {
                        BagKind::Materialized(m) => m.heap_bytes(),
                        BagKind::Tradeoff(t) => t.heap_bytes(),
                    }
            })
            .sum::<usize>()
            + self
                .root_checks
                .iter()
                .map(|(r, v)| r.heap_bytes() + v.heap_bytes())
                .sum::<usize>()
    }
}

/// Per-bag cursor inside the odometer.
///
/// Delay-tuned bags cache their bag-level [`Theorem1Iter`] across opens
/// (re-seeded via [`Theorem1Iter::reset`]), so re-opening a bag for a new
/// ancestor valuation reuses the bag enumerator's scratch instead of
/// rebuilding it.
struct BagCursor<'a> {
    /// Whether the bag currently holds a bound row.
    live: bool,
    /// `(current row, end row)` for materialized bags.
    mat: (usize, usize),
    /// Cached enumerator for Theorem 1 bags.
    trade: Option<Box<crate::theorem1::Theorem1Iter<'a>>>,
}

/// The Algorithm 5 enumerator.
///
/// Like [`Theorem1Iter`](crate::theorem1::Theorem1Iter), the core is the
/// pair [`Theorem2Iter::advance`] / [`Theorem2Iter::current`]: answers are
/// borrowed from an internal emit buffer and every per-bag binding copies
/// directly from the bag's storage into the valuation — no per-row tuple
/// is allocated. The `Iterator` implementation is a compatibility shim.
pub struct Theorem2Iter<'a> {
    s: &'a Theorem2Structure,
    valuation: Vec<Option<Value>>,
    cursors: Vec<BagCursor<'a>>,
    /// Scratch: the current bag's bound key.
    key: Vec<Value>,
    /// Scratch: the most recent answer (head free-variable order).
    emit: Vec<Value>,
    started: bool,
    done: bool,
}

impl<'a> Theorem2Iter<'a> {
    fn new(s: &'a Theorem2Structure) -> Theorem2Iter<'a> {
        Theorem2Iter {
            s,
            valuation: Vec::new(),
            cursors: s
                .bags
                .iter()
                .map(|_| BagCursor {
                    live: false,
                    mat: (0, 0),
                    trade: None,
                })
                .collect(),
            key: Vec::new(),
            emit: Vec::new(),
            started: false,
            done: false,
        }
    }

    /// Rewinds the iterator to answer a fresh access request, keeping the
    /// per-bag enumerator caches and every scratch buffer.
    ///
    /// # Errors
    ///
    /// Fails when the bound value count mismatches the pattern.
    pub fn reset(&mut self, bound_values: &[Value]) -> Result<()> {
        self.s.view.check_access(bound_values)?;
        self.valuation.clear();
        self.valuation.resize(self.s.num_vars, None);
        for (var, val) in self.s.view.bound_head().iter().zip(bound_values) {
            self.valuation[var.index()] = Some(*val);
        }
        for c in &mut self.cursors {
            c.live = false;
        }
        self.started = false;
        let mut root_ok = true;
        for (rel, vars) in &self.s.root_checks {
            let Theorem2Iter { valuation, key, .. } = self;
            key.clear();
            key.extend(
                vars.iter()
                    .map(|v| valuation[v.index()].expect("bound var valued")),
            );
            if !rel.contains(key) {
                root_ok = false;
                break;
            }
        }
        self.done = !root_ok;
        Ok(())
    }

    /// Opens bag `bi` under the current ancestor valuation; binds the first
    /// tuple if any.
    fn open(&mut self, bi: usize) -> bool {
        let Theorem2Iter {
            s,
            valuation,
            cursors,
            key,
            ..
        } = self;
        let s: &'a Theorem2Structure = s;
        let bag = &s.bags[bi];
        key.clear();
        key.extend(
            bag.bound_vars
                .iter()
                .map(|v| valuation[v.index()].expect("bag bound var set by ancestors")),
        );
        let cur = &mut cursors[bi];
        match &bag.kind {
            BagKind::Materialized(mb) => {
                let (lo, hi) = mb.range_for(key);
                if lo >= hi {
                    cur.live = false;
                    return false;
                }
                cur.live = true;
                cur.mat = (lo, hi);
                for (v, val) in bag.free_vars.iter().zip(mb.free_part(lo)) {
                    valuation[v.index()] = Some(*val);
                }
                true
            }
            BagKind::Tradeoff(t1) => {
                let it = match &mut cur.trade {
                    Some(it) => {
                        it.reset(key).expect("bag key arity is internal");
                        it
                    }
                    None => {
                        let fresh = t1.answer(key).expect("bag key arity is internal");
                        cur.trade.insert(Box::new(fresh))
                    }
                };
                if it.advance() {
                    cur.live = true;
                    for (v, val) in bag.free_vars.iter().zip(it.current()) {
                        valuation[v.index()] = Some(*val);
                    }
                    true
                } else {
                    cur.live = false;
                    false
                }
            }
        }
    }

    /// Advances bag `bi` to its next row under the same ancestor valuation.
    fn advance_bag(&mut self, bi: usize) -> bool {
        let Theorem2Iter {
            s,
            valuation,
            cursors,
            ..
        } = self;
        let bag = &s.bags[bi];
        let cur = &mut cursors[bi];
        if !cur.live {
            return false;
        }
        match &bag.kind {
            BagKind::Materialized(mb) => {
                let (c, end) = cur.mat;
                if c + 1 >= end {
                    return false;
                }
                cur.mat = (c + 1, end);
                for (v, val) in bag.free_vars.iter().zip(mb.free_part(c + 1)) {
                    valuation[v.index()] = Some(*val);
                }
                true
            }
            BagKind::Tradeoff(_) => {
                let it = cur.trade.as_mut().expect("advance on an opened bag");
                if it.advance() {
                    for (v, val) in bag.free_vars.iter().zip(it.current()) {
                        valuation[v.index()] = Some(*val);
                    }
                    true
                } else {
                    false
                }
            }
        }
    }

    fn fill_emit(&mut self) {
        metrics::record_tuple_output();
        let Theorem2Iter {
            s, valuation, emit, ..
        } = self;
        emit.clear();
        emit.extend(
            s.view
                .free_head()
                .iter()
                .map(|v| valuation[v.index()].expect("free var bound by some bag")),
        );
    }

    /// Steps to the next answer; `true` when one is available via
    /// [`Theorem2Iter::current`].
    pub fn advance(&mut self) -> bool {
        if self.done {
            return false;
        }
        let k = self.s.bags.len();
        if k == 0 {
            // Boolean view over the root bag only.
            self.done = true;
            self.fill_emit();
            return true;
        }
        let mut i: usize;
        let mut opening: bool;
        if self.started {
            i = k - 1;
            opening = false;
        } else {
            self.started = true;
            i = 0;
            opening = true;
        }
        loop {
            let ok = if opening {
                self.open(i)
            } else {
                self.advance_bag(i)
            };
            if ok {
                if i + 1 == k {
                    self.fill_emit();
                    return true;
                }
                i += 1;
                opening = true;
            } else if opening {
                // Fresh failure: the ancestor valuation is infeasible for
                // this subtree — backtrack to the tree parent, skipping
                // sibling subtrees (Algorithm 5 lines 6–8).
                match self.s.parent_of[i] {
                    Some(p) => {
                        i = p;
                        opening = false;
                    }
                    None => {
                        // Parent is the root: the access valuation itself
                        // has no extension here, so no answers exist at all.
                        self.done = true;
                        return false;
                    }
                }
            } else {
                // Exhausted after producing: move to the pre-order
                // predecessor (Algorithm 5 lines 10–13).
                if i == 0 {
                    self.done = true;
                    return false;
                }
                i -= 1;
                opening = false;
            }
        }
    }

    /// The answer produced by the last successful
    /// [`Theorem2Iter::advance`], borrowed from the iterator's scratch.
    pub fn current(&self) -> &[Value] {
        &self.emit
    }

    /// Pushes every remaining answer into `sink`, honoring early stops.
    pub fn drain_into(&mut self, sink: &mut impl cqc_common::AnswerSink) {
        while self.advance() {
            if !sink.push(self.current()) {
                return;
            }
        }
    }
}

impl Iterator for Theorem2Iter<'_> {
    type Item = Tuple;

    fn next(&mut self) -> Option<Tuple> {
        if self.advance() {
            Some(self.current().to_vec())
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqc_common::value::lex_cmp;
    use cqc_join::naive::evaluate_view;
    use cqc_query::parser::parse_adorned;
    use cqc_query::VarSet;

    fn vs(vars: &[u32]) -> VarSet {
        vars.iter().map(|&v| Var(v)).collect()
    }

    fn sorted(mut v: Vec<Tuple>) -> Vec<Tuple> {
        v.sort_unstable_by(|a, b| lex_cmp(a, b));
        v.dedup();
        v
    }

    /// P_4^{bfffb}: R1(x1,x2), …, R4(x4,x5) with endpoints bound — the
    /// Example 10 query at n = 4.
    fn path4() -> (AdornedView, Database) {
        let view = parse_adorned(
            "P(x1, x2, x3, x4, x5) :- R1(x1,x2), R2(x2,x3), R3(x3,x4), R4(x4,x5)",
            "bfffb",
        )
        .unwrap();
        let mut db = Database::new();
        let pairs = |shift: u64| -> Vec<(u64, u64)> {
            let mut p = Vec::new();
            for i in 0..6u64 {
                p.push((i, (i * 7 + shift) % 6));
                p.push((i, (i * 3 + shift + 1) % 6));
                p.push(((i + shift) % 6, i));
            }
            p
        };
        db.add(Relation::from_pairs("R1", pairs(0))).unwrap();
        db.add(Relation::from_pairs("R2", pairs(1))).unwrap();
        db.add(Relation::from_pairs("R3", pairs(2))).unwrap();
        db.add(Relation::from_pairs("R4", pairs(3))).unwrap();
        (view, db)
    }

    /// The paper's Example 10 decomposition for n = 4:
    /// root {x1,x5} → {x2,x4 | x1,x5} → {x3 | x2,x4}.
    fn path4_paper_td() -> TreeDecomposition {
        TreeDecomposition::new(
            vec![vs(&[0, 4]), vs(&[0, 1, 3, 4]), vs(&[1, 2, 3])],
            vec![None, Some(0), Some(1)],
        )
        .unwrap()
    }

    #[test]
    fn path4_all_zero_delay_matches_oracle() {
        let (view, db) = path4();
        let td = path4_paper_td();
        let s = Theorem2Structure::build(&view, &db, &td, &[0.0, 0.0, 0.0]).unwrap();
        for a in 0..7u64 {
            for b in 0..7u64 {
                let expect = evaluate_view(&view, &db, &[a, b]).unwrap();
                let got: Vec<Tuple> = s.answer(&[a, b]).unwrap().collect();
                assert_eq!(sorted(got.clone()), expect, "a={a} b={b}");
                assert_eq!(got.len(), expect.len(), "duplicates for a={a} b={b}");
            }
        }
    }

    #[test]
    fn path4_mixed_delays_match_oracle() {
        let (view, db) = path4();
        let td = path4_paper_td();
        for delta in [
            vec![0.0, 0.3, 0.0],
            vec![0.0, 0.0, 0.4],
            vec![0.0, 0.25, 0.25],
            vec![0.0, 0.8, 0.5],
        ] {
            let s = Theorem2Structure::build(&view, &db, &td, &delta).unwrap();
            for a in 0..7u64 {
                for b in 0..7u64 {
                    let expect = evaluate_view(&view, &db, &[a, b]).unwrap();
                    let got: Vec<Tuple> = s.answer(&[a, b]).unwrap().collect();
                    assert_eq!(sorted(got.clone()), expect, "δ={delta:?} a={a} b={b}");
                    assert_eq!(got.len(), expect.len(), "duplicates, δ={delta:?}");
                    assert_eq!(s.exists(&[a, b]).unwrap(), !expect.is_empty());
                }
            }
        }
    }

    #[test]
    fn budget_constructor_end_to_end() {
        let (view, db) = path4();
        for budget in [1.0, 1.5, 2.0] {
            let s = Theorem2Structure::build_with_budget(&view, &db, budget).unwrap();
            for a in 0..6u64 {
                for b in 0..6u64 {
                    let expect = evaluate_view(&view, &db, &[a, b]).unwrap();
                    let got: Vec<Tuple> = s.answer(&[a, b]).unwrap().collect();
                    assert_eq!(sorted(got.clone()), expect, "budget={budget} a={a} b={b}");
                }
            }
        }
    }

    /// Multi-branch decomposition (Figure 2 right): bags on independent
    /// branches under the root enumerate a cartesian product.
    #[test]
    fn figure_2_path6_enumeration() {
        // The paper's C = {v1, v5, v6}: with head order v1..v7 the
        // pattern binds positions 1, 5 and 6.
        let view = parse_adorned(
            "P(v1,v2,v3,v4,v5,v6,v7) :- E1(v1,v2), E2(v2,v3), E3(v3,v4), E4(v4,v5), E5(v5,v6), E6(v6,v7)",
            "bfffbbf",
        )
        .unwrap();
        let mut db = Database::new();
        for (i, name) in ["E1", "E2", "E3", "E4", "E5", "E6"].iter().enumerate() {
            let pairs: Vec<(u64, u64)> = (0..5u64)
                .flat_map(|a| {
                    let i = i as u64;
                    vec![(a, (a + i) % 5), (a, (a * 2 + i) % 5)]
                })
                .collect();
            db.add(Relation::from_pairs(*name, pairs)).unwrap();
        }
        let td = TreeDecomposition::new(
            vec![
                vs(&[0, 4, 5]),
                vs(&[1, 3, 0, 4]),
                vs(&[2, 1, 3]),
                vs(&[6, 5]),
            ],
            vec![None, Some(0), Some(1), Some(0)],
        )
        .unwrap();
        // Example 9's delay assignment.
        let delta = [0.0, 1.0 / 3.0, 1.0 / 6.0, 0.0];
        let s = Theorem2Structure::build(&view, &db, &td, &delta).unwrap();
        for a in 0..5u64 {
            for b in 0..5u64 {
                for c in 0..5u64 {
                    let expect = evaluate_view(&view, &db, &[a, b, c]).unwrap();
                    let got: Vec<Tuple> = s.answer(&[a, b, c]).unwrap().collect();
                    assert_eq!(sorted(got.clone()), expect, "v1={a} v5={b} v6={c}");
                    assert_eq!(got.len(), expect.len(), "duplicates");
                }
            }
        }
    }

    /// Theorem 2 with all-zero delays must agree with the factorized
    /// representation (Prop. 4 ≡ the δ = 0 special case).
    #[test]
    fn zero_delay_agrees_with_factorized() {
        let (view, db) = path4();
        let td = path4_paper_td();
        let t2 = Theorem2Structure::build(&view, &db, &td, &[0.0; 3]).unwrap();
        let fr = cqc_factorized::FactorizedRepresentation::build(&view, &db, &td).unwrap();
        for a in 0..6u64 {
            for b in 0..6u64 {
                let x: Vec<Tuple> = t2.answer(&[a, b]).unwrap().collect();
                let y: Vec<Tuple> = fr.answer(&[a, b]).unwrap().collect();
                assert_eq!(sorted(x), sorted(y));
            }
        }
    }

    #[test]
    fn bag_reports_cover_all_bags() {
        let (view, db) = path4();
        let td = path4_paper_td();
        let s = Theorem2Structure::build(&view, &db, &td, &[0.0, 0.3, 0.0]).unwrap();
        let reports = s.bag_reports();
        assert_eq!(reports.len(), 2);
        // Pre-order: node 1 = {x2,x4 | x1,x5} with δ = 0.3 (theorem-1),
        // node 2 = {x3 | x2,x4} with δ = 0 (materialized).
        assert_eq!(reports[0].node, 1);
        assert_eq!(reports[0].kind, "theorem-1");
        assert_eq!(reports[0].bound_vars, 2);
        assert_eq!(reports[0].free_vars, 2);
        assert!(reports[0].delta > 0.0);
        assert_eq!(reports[1].node, 2);
        assert_eq!(reports[1].kind, "materialized");
        assert_eq!(reports[1].free_vars, 1);
        assert!(reports[1].heap_bytes > 0);
    }

    #[test]
    fn invalid_inputs_rejected() {
        let (view, db) = path4();
        let td = path4_paper_td();
        // Wrong delta length.
        assert!(Theorem2Structure::build(&view, &db, &td, &[0.0, 0.0]).is_err());
        // Non-connex decomposition (root bag mismatch).
        let bad = TreeDecomposition::new(
            vec![vs(&[0]), vs(&[0, 1, 3, 4]), vs(&[1, 2, 3])],
            vec![None, Some(0), Some(1)],
        )
        .unwrap();
        assert!(Theorem2Structure::build(&view, &db, &bad, &[0.0; 3]).is_err());
    }
}
