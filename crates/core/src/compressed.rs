//! The unified front door: strategy selection and a single answer
//! interface.
//!
//! `CompressedView` wraps every representation in the workspace — the two
//! extremal baselines of §2.3, Proposition 1's all-bound structure, the
//! factorized representation of Propositions 2/4, and the Theorem 1/2
//! structures — behind one `answer`/`exists`/space-accounting API, after
//! applying the Example 3 rewrite so that constants and repeated variables
//! are always accepted.

use crate::bound_only::BoundOnlyView;
use crate::theorem1::Theorem1Structure;
use crate::theorem2::Theorem2Structure;
use cqc_common::error::{CqcError, Result};
use cqc_common::heap::HeapSize;
use cqc_common::value::{Tuple, Value};
use cqc_decomp::TreeDecomposition;
use cqc_factorized::FactorizedRepresentation;
use cqc_join::baselines::{DirectView, MaterializedView};
use cqc_lp::fractional::{min_delay_cover, min_space_cover};
use cqc_query::rewrite::rewrite_view;
use cqc_query::AdornedView;
use cqc_storage::Database;

/// How to compress a view.
#[derive(Debug, Clone)]
pub enum Strategy {
    /// Pick automatically: all-bound patterns get Prop. 1; otherwise the
    /// factorized representation (constant delay at `fhw(H|V_b)` space)
    /// when no budget is given, or Theorem 2 under the given space budget
    /// exponent.
    Auto {
        /// Optional space budget as an exponent of `|D|`.
        space_budget_exp: Option<f64>,
    },
    /// The §2.3 baseline: materialize and index.
    Materialize,
    /// The §2.3 baseline: evaluate every request on the base relations.
    Direct,
    /// Theorem 1 with delay knob `τ`; `weights` defaults to the
    /// MinSpaceCover optimum for delay budget τ (§6).
    Tradeoff {
        /// The delay knob τ ≥ 1.
        tau: f64,
        /// Optional explicit fractional edge cover (one weight per atom).
        weights: Option<Vec<f64>>,
    },
    /// Theorem 1 under a space budget: MinDelayCover (§6, Prop. 11) picks
    /// the cover and the smallest τ whose structure fits in
    /// `|D|^{space_budget_exp}`.
    TradeoffBudget {
        /// Space budget as an exponent of `|D|`.
        space_budget_exp: f64,
    },
    /// Theorem 2 with a searched decomposition under a space budget.
    Decomposed {
        /// Space budget as an exponent of `|D|`.
        space_budget_exp: f64,
    },
    /// Theorem 2 over an explicit decomposition and delay assignment.
    DecomposedExplicit {
        /// The `V_b`-connex decomposition.
        td: TreeDecomposition,
        /// Per-node delay exponents (0 at the root).
        delta: Vec<f64>,
    },
    /// Propositions 2/4: constant delay over a width-minimal connex
    /// decomposition.
    Factorized,
}

/// A compressed representation of an adorned view, ready to answer access
/// requests.
#[derive(Debug)]
pub enum CompressedView {
    /// Proposition 1 (all head variables bound).
    BoundOnly(BoundOnlyView),
    /// Full materialization baseline.
    Materialized(MaterializedView),
    /// Per-request evaluation baseline.
    Direct(DirectView),
    /// Theorem 1 structure.
    Tradeoff(Theorem1Structure),
    /// Theorem 2 structure.
    Decomposed(Theorem2Structure),
    /// Factorized representation (Props. 2/4).
    Factorized(FactorizedRepresentation),
    /// A view proven empty during rewriting (a ground atom failed).
    AlwaysEmpty(AdornedView),
}

impl CompressedView {
    /// Compresses `view` over `db` with the chosen strategy.
    ///
    /// Constants and repeated variables are eliminated first (Example 3);
    /// projections are rejected, as in the paper.
    ///
    /// # Errors
    ///
    /// Propagates parse/schema/LP errors and invalid configurations.
    pub fn build(view: &AdornedView, db: &Database, strategy: Strategy) -> Result<CompressedView> {
        CompressedView::build_pooled(view, db, strategy, &mut cqc_storage::IndexPool::new())
    }

    /// [`CompressedView::build`] drawing sorted indexes from a
    /// caller-supplied [`cqc_storage::IndexPool`]. The engine passes the
    /// pool it already used for strategy selection, so the veto cost
    /// oracle's indexes are reused by the actual build (the Example 3
    /// rewrite shares untouched relations by `Arc`, which is what makes
    /// the pool recognize them across the two phases).
    ///
    /// The pool serves the strategies that index the base relations
    /// directly (Theorem 1 in all its forms). The Theorem 2 and
    /// factorized paths build over **bag-local databases** — fresh
    /// per-bag projections with per-node allocations — which the
    /// identity-keyed pool can never share across bags; each bag's inner
    /// Theorem 1 build still pools its own cost-oracle and trie indexes
    /// internally. (A content-keyed projection cache across bags is a
    /// separate, future optimization.)
    ///
    /// # Errors
    ///
    /// Same failure modes as [`CompressedView::build`].
    pub fn build_pooled(
        view: &AdornedView,
        db: &Database,
        strategy: Strategy,
        pool: &mut cqc_storage::IndexPool,
    ) -> Result<CompressedView> {
        // Example 3 preprocessing.
        let rewritten = rewrite_view(view, db)?;
        if rewritten.always_empty {
            return Ok(CompressedView::AlwaysEmpty(rewritten.view));
        }
        let view = &rewritten.view;
        let db = &rewritten.database;
        view.query().require_natural_join()?;

        // All-bound views answer by membership regardless of strategy
        // (Prop. 1) — except when the caller explicitly requests a
        // baseline.
        if view.mu() == 0 {
            match strategy {
                Strategy::Materialize => {
                    return Ok(CompressedView::Materialized(MaterializedView::build(
                        view, db,
                    )?));
                }
                Strategy::Direct => {
                    return Ok(CompressedView::Direct(DirectView::build(view, db)?));
                }
                _ => return Ok(CompressedView::BoundOnly(BoundOnlyView::build(view, db)?)),
            }
        }

        match strategy {
            Strategy::Auto { space_budget_exp } => match space_budget_exp {
                None => Ok(CompressedView::Factorized(
                    FactorizedRepresentation::build_with_search(view, db)?,
                )),
                Some(budget) => Ok(CompressedView::Decomposed(
                    Theorem2Structure::build_with_budget(view, db, budget)?,
                )),
            },
            Strategy::Materialize => Ok(CompressedView::Materialized(MaterializedView::build(
                view, db,
            )?)),
            Strategy::Direct => Ok(CompressedView::Direct(DirectView::build(view, db)?)),
            Strategy::Tradeoff { tau, weights } => {
                if tau < 1.0 {
                    return Err(CqcError::Config(format!("τ = {tau} must be ≥ 1")));
                }
                let weights = match weights {
                    Some(w) => w,
                    None => {
                        // §6: given the delay budget, minimize space.
                        let query = view.query();
                        let h = query.hypergraph();
                        let log_sizes: Vec<f64> = query
                            .atoms
                            .iter()
                            .map(|a| {
                                let n = db.require(&a.relation).map(|r| r.len().max(2));
                                n.map(|n| (n as f64).ln())
                            })
                            .collect::<Result<_>>()?;
                        let choice = min_space_cover(&h, view.free_vars(), &log_sizes, tau.ln())?;
                        choice.weights
                    }
                };
                Ok(CompressedView::Tradeoff(Theorem1Structure::build_pooled(
                    view, db, &weights, tau, pool,
                )?))
            }
            Strategy::TradeoffBudget { space_budget_exp } => {
                let query = view.query();
                let h = query.hypergraph();
                let log_sizes: Vec<f64> = query
                    .atoms
                    .iter()
                    .map(|a| {
                        let n = db.require(&a.relation).map(|r| r.len().max(2));
                        n.map(|n| (n as f64).ln())
                    })
                    .collect::<Result<_>>()?;
                let log_budget = space_budget_exp * (db.size().max(2) as f64).ln();
                let choice = min_delay_cover(&h, view.free_vars(), &log_sizes, log_budget)?;
                let tau = choice.log_tau.exp().max(1.0);
                Ok(CompressedView::Tradeoff(Theorem1Structure::build_pooled(
                    view,
                    db,
                    &choice.weights,
                    tau,
                    pool,
                )?))
            }
            Strategy::Decomposed { space_budget_exp } => Ok(CompressedView::Decomposed(
                Theorem2Structure::build_with_budget(view, db, space_budget_exp)?,
            )),
            Strategy::DecomposedExplicit { td, delta } => Ok(CompressedView::Decomposed(
                Theorem2Structure::build(view, db, &td, &delta)?,
            )),
            Strategy::Factorized => Ok(CompressedView::Factorized(
                FactorizedRepresentation::build_with_search(view, db)?,
            )),
        }
    }

    /// Answers an access request: an iterator over the free-variable tuples.
    ///
    /// This is the legacy pull-style interface (one tuple allocation per
    /// answer); the serve path uses [`CompressedView::answer_into`] /
    /// [`CompressedView::enumerator`], which allocate nothing per answer.
    ///
    /// # Errors
    ///
    /// Fails when the bound value count mismatches the view's pattern.
    pub fn answer(&self, bound_values: &[Value]) -> Result<AnswerIter<'_>> {
        Ok(match self {
            CompressedView::BoundOnly(s) => AnswerIter::Eager(s.answer(bound_values)?),
            CompressedView::Materialized(s) => AnswerIter::Materialized(s.answer(bound_values)?),
            CompressedView::Direct(s) => AnswerIter::Direct(s.answer(bound_values)?),
            CompressedView::Tradeoff(s) => AnswerIter::Tradeoff(Box::new(s.answer(bound_values)?)),
            CompressedView::Decomposed(s) => {
                AnswerIter::Decomposed(Box::new(s.answer(bound_values)?))
            }
            CompressedView::Factorized(s) => AnswerIter::Factorized(s.answer(bound_values)?),
            CompressedView::AlwaysEmpty(v) => {
                v.check_access(bound_values)?;
                AnswerIter::Eager(Vec::new().into_iter())
            }
        })
    }

    /// A reusable push-style enumerator for this representation: request
    /// scratch (traversal stacks, constraint vectors, joins, odometer
    /// cursors) is created once and reused across
    /// [`ViewEnumerator::answer_into`] calls, so steady-state serving
    /// performs zero heap allocations per answer.
    pub fn enumerator(&self) -> ViewEnumerator<'_> {
        match self {
            CompressedView::BoundOnly(s) => ViewEnumerator::BoundOnly(s),
            CompressedView::Materialized(s) => ViewEnumerator::Materialized(s),
            CompressedView::Direct(s) => ViewEnumerator::Direct(s.enumerator()),
            CompressedView::Tradeoff(s) => ViewEnumerator::Tradeoff { s, iter: None },
            CompressedView::Decomposed(s) => ViewEnumerator::Decomposed { s, iter: None },
            CompressedView::Factorized(s) => ViewEnumerator::Factorized { s, iter: None },
            CompressedView::AlwaysEmpty(v) => ViewEnumerator::AlwaysEmpty(v),
        }
    }

    /// One-shot push-style answering: drives every answer of the request
    /// into `sink` as a borrowed slice (no per-answer tuple allocation).
    /// For request streams, hold a [`CompressedView::enumerator`] instead
    /// so the per-request scratch is reused too.
    ///
    /// # Errors
    ///
    /// Fails when the bound value count mismatches the view's pattern.
    pub fn answer_into(
        &self,
        bound_values: &[Value],
        sink: &mut impl cqc_common::AnswerSink,
    ) -> Result<()> {
        self.enumerator().answer_into(bound_values, sink)
    }

    /// `true` iff the request has at least one answer (first-answer probe;
    /// no answer tuple is materialized).
    pub fn exists(&self, bound_values: &[Value]) -> Result<bool> {
        let mut probe = cqc_common::ExistsSink::default();
        self.answer_into(bound_values, &mut probe)?;
        Ok(probe.found)
    }

    /// A human-readable description of the representation: strategy,
    /// tuning knobs and size accounting — the "EXPLAIN" of a compressed
    /// view.
    pub fn describe(&self) -> String {
        match self {
            CompressedView::BoundOnly(s) => format!(
                "bound-only (Prop 1): {} membership relations, {} heap bytes",
                s.view().query().atoms.len(),
                s.heap_bytes()
            ),
            CompressedView::Materialized(s) => format!(
                "materialized view: {} result tuples, {} heap bytes",
                s.len(),
                s.heap_bytes()
            ),
            CompressedView::Direct(s) => format!(
                "direct evaluation: {} trie indexes, {} heap bytes (linear)",
                s.plan().num_atoms(),
                s.heap_bytes()
            ),
            CompressedView::Tradeoff(s) => {
                let st = s.stats();
                format!(
                    "theorem 1: τ = {:.2}, cover = {:?}, slack α = {:.2}; tree {} nodes                      (depth {}), dictionary {} heavy pairs, {} heap bytes",
                    s.tau(),
                    s.weights()
                        .iter()
                        .map(|w| (w * 100.0).round() / 100.0)
                        .collect::<Vec<_>>(),
                    s.alpha(),
                    st.tree_nodes,
                    st.tree_depth,
                    st.dict_entries,
                    st.heap_bytes
                )
            }
            CompressedView::Decomposed(s) => {
                let st = s.stats();
                format!(
                    "theorem 2: {} bags ({} delay-tuned, max δ = {:.3}); {} materialized                      bag tuples, {} dictionary entries, {} heap bytes",
                    st.bags,
                    st.tradeoff_bags,
                    st.max_delta,
                    st.materialized_tuples,
                    st.dict_entries,
                    st.heap_bytes
                )
            }
            CompressedView::Factorized(s) => format!(
                "factorized (Props 2/4): {} bag tuples, {} heap bytes, constant delay",
                s.materialized_tuples(),
                s.heap_bytes()
            ),
            CompressedView::AlwaysEmpty(_) => {
                "always-empty: a ground atom failed during the Example 3 rewrite".into()
            }
        }
    }

    /// A short name of the strategy in use (for reports).
    pub fn strategy_name(&self) -> &'static str {
        match self {
            CompressedView::BoundOnly(_) => "bound-only (Prop 1)",
            CompressedView::Materialized(_) => "materialized",
            CompressedView::Direct(_) => "direct",
            CompressedView::Tradeoff(_) => "theorem-1",
            CompressedView::Decomposed(_) => "theorem-2",
            CompressedView::Factorized(_) => "factorized (Props 2/4)",
            CompressedView::AlwaysEmpty(_) => "always-empty",
        }
    }
}

impl HeapSize for CompressedView {
    fn heap_bytes(&self) -> usize {
        match self {
            CompressedView::BoundOnly(s) => s.heap_bytes(),
            CompressedView::Materialized(s) => s.heap_bytes(),
            CompressedView::Direct(s) => s.heap_bytes(),
            CompressedView::Tradeoff(s) => s.heap_bytes(),
            CompressedView::Decomposed(s) => s.heap_bytes(),
            CompressedView::Factorized(s) => s.heap_bytes(),
            CompressedView::AlwaysEmpty(_) => 0,
        }
    }
}

/// Unified reusable push-style enumerator (see
/// [`CompressedView::enumerator`]).
///
/// The delay-tuned variants create their underlying iterator lazily on the
/// first request and then re-seed it via its `reset`, keeping all scratch;
/// the baseline variants are stateless (materialized, bound-only) or hold
/// a reusable join (direct).
pub enum ViewEnumerator<'a> {
    /// Proposition 1 membership probes.
    BoundOnly(&'a BoundOnlyView),
    /// Materialized range scans (push borrowed row slices).
    Materialized(&'a MaterializedView),
    /// Per-request worst-case-optimal join with a reusable cursor.
    Direct(cqc_join::baselines::DirectEnum<'a>),
    /// Algorithm 2 with reusable enumeration scratch.
    Tradeoff {
        /// The structure.
        s: &'a Theorem1Structure,
        /// Lazily created, reset-reused iterator.
        iter: Option<crate::theorem1::Theorem1Iter<'a>>,
    },
    /// Algorithm 5 with reusable odometer scratch.
    Decomposed {
        /// The structure.
        s: &'a Theorem2Structure,
        /// Lazily created, reset-reused iterator.
        iter: Option<crate::theorem2::Theorem2Iter<'a>>,
    },
    /// Factorized pre-order enumeration with reusable scratch.
    Factorized {
        /// The representation.
        s: &'a FactorizedRepresentation,
        /// Lazily created, reset-reused iterator.
        iter: Option<cqc_factorized::FactorizedIter<'a>>,
    },
    /// A view proven empty during rewriting (validates access arity only).
    AlwaysEmpty(&'a AdornedView),
}

impl ViewEnumerator<'_> {
    /// Answers one request into `sink`; answers arrive as borrowed slices
    /// in the representation's enumeration order. Reuses all scratch from
    /// previous calls.
    ///
    /// # Errors
    ///
    /// Fails when the bound value count mismatches the view's pattern.
    pub fn answer_into(
        &mut self,
        bound_values: &[Value],
        sink: &mut impl cqc_common::AnswerSink,
    ) -> Result<()> {
        match self {
            ViewEnumerator::BoundOnly(s) => s.answer_into(bound_values, sink),
            ViewEnumerator::Materialized(s) => s.answer_into(bound_values, sink),
            ViewEnumerator::Direct(e) => e.answer_into(bound_values, sink),
            ViewEnumerator::Tradeoff { s, iter } => {
                let it = match iter {
                    Some(it) => {
                        it.reset(bound_values)?;
                        it
                    }
                    None => iter.insert(s.answer(bound_values)?),
                };
                it.drain_into(sink);
                Ok(())
            }
            ViewEnumerator::Decomposed { s, iter } => {
                let it = match iter {
                    Some(it) => {
                        it.reset(bound_values)?;
                        it
                    }
                    None => iter.insert(s.answer(bound_values)?),
                };
                it.drain_into(sink);
                Ok(())
            }
            ViewEnumerator::Factorized { s, iter } => {
                let it = match iter {
                    Some(it) => {
                        it.reset(bound_values)?;
                        it
                    }
                    None => iter.insert(s.answer(bound_values)?),
                };
                it.drain_into(sink);
                Ok(())
            }
            ViewEnumerator::AlwaysEmpty(v) => {
                v.check_access(bound_values)?;
                Ok(())
            }
        }
    }
}

/// Unified answer iterator.
pub enum AnswerIter<'a> {
    /// Pre-collected answers (bound-only and always-empty cases).
    Eager(std::vec::IntoIter<Tuple>),
    /// Materialized range scan.
    Materialized(cqc_join::baselines::MaterializedAnswer<'a>),
    /// Per-request worst-case-optimal join.
    Direct(cqc_join::baselines::DirectAnswer<'a>),
    /// Algorithm 2 (boxed: the iterator carries its reusable scratch).
    Tradeoff(Box<crate::theorem1::Theorem1Iter<'a>>),
    /// Algorithm 5 (boxed: the iterator carries its reusable scratch).
    Decomposed(Box<crate::theorem2::Theorem2Iter<'a>>),
    /// Factorized pre-order enumeration.
    Factorized(cqc_factorized::FactorizedIter<'a>),
}

impl Iterator for AnswerIter<'_> {
    type Item = Tuple;

    fn next(&mut self) -> Option<Tuple> {
        match self {
            AnswerIter::Eager(i) => i.next(),
            AnswerIter::Materialized(i) => i.next(),
            AnswerIter::Direct(i) => i.next(),
            AnswerIter::Tradeoff(i) => i.next(),
            AnswerIter::Decomposed(i) => i.next(),
            AnswerIter::Factorized(i) => i.next(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqc_common::value::lex_cmp;
    use cqc_join::naive::evaluate_view;
    use cqc_query::parser::parse_adorned;
    use cqc_storage::Relation;

    fn triangle_db() -> Database {
        let mut db = Database::new();
        db.add(Relation::from_pairs(
            "R",
            vec![(1, 2), (2, 3), (1, 3), (3, 1), (2, 1), (4, 2)],
        ))
        .unwrap();
        db.add(Relation::from_pairs(
            "S",
            vec![(2, 3), (3, 1), (3, 2), (1, 2), (2, 4)],
        ))
        .unwrap();
        db.add(Relation::from_pairs(
            "T",
            vec![(3, 1), (1, 2), (2, 3), (2, 1), (4, 4)],
        ))
        .unwrap();
        db
    }

    fn sorted(mut v: Vec<Tuple>) -> Vec<Tuple> {
        v.sort_unstable_by(|a, b| lex_cmp(a, b));
        v.dedup();
        v
    }

    #[test]
    fn every_strategy_matches_oracle_on_triangle() {
        let db = triangle_db();
        let strategies: Vec<Strategy> = vec![
            Strategy::Materialize,
            Strategy::Direct,
            Strategy::Tradeoff {
                tau: 1.0,
                weights: None,
            },
            Strategy::Tradeoff {
                tau: 3.0,
                weights: Some(vec![0.5, 0.5, 0.5]),
            },
            Strategy::Factorized,
            Strategy::Auto {
                space_budget_exp: None,
            },
            Strategy::Auto {
                space_budget_exp: Some(1.2),
            },
            Strategy::Decomposed {
                space_budget_exp: 1.5,
            },
        ];
        for pattern in ["bfb", "fff", "bbf"] {
            let view = parse_adorned("Q(x,y,z) :- R(x,y), S(y,z), T(z,x)", pattern).unwrap();
            let nb = pattern.chars().filter(|c| *c == 'b').count();
            for strat in &strategies {
                let cv = CompressedView::build(&view, &db, strat.clone()).unwrap();
                let mut reqs: Vec<Vec<Value>> = vec![vec![]];
                for _ in 0..nb {
                    reqs = reqs
                        .iter()
                        .flat_map(|r| {
                            (0..6u64).map(move |v| {
                                let mut r2 = r.clone();
                                r2.push(v);
                                r2
                            })
                        })
                        .collect();
                }
                for req in reqs {
                    let expect = evaluate_view(&view, &db, &req).unwrap();
                    let got: Vec<Tuple> = cv.answer(&req).unwrap().collect();
                    assert_eq!(
                        sorted(got),
                        expect,
                        "strategy {} pattern {pattern} req {req:?}",
                        cv.strategy_name()
                    );
                }
            }
        }
    }

    #[test]
    fn bound_only_dispatch() {
        let db = triangle_db();
        let view = parse_adorned("Q(x,y,z) :- R(x,y), S(y,z), T(z,x)", "bbb").unwrap();
        let cv = CompressedView::build(
            &view,
            &db,
            Strategy::Auto {
                space_budget_exp: None,
            },
        )
        .unwrap();
        assert_eq!(cv.strategy_name(), "bound-only (Prop 1)");
        assert!(cv.exists(&[1, 2, 3]).unwrap());
        assert!(!cv.exists(&[1, 1, 1]).unwrap());
    }

    #[test]
    fn rewrite_applied_for_constants() {
        // Example 3 style: constants are eliminated before compression.
        let mut db = Database::new();
        db.add(Relation::new(
            "R",
            3,
            vec![vec![1, 2, 9], vec![1, 3, 9], vec![2, 2, 5]],
        ))
        .unwrap();
        let view = parse_adorned("Q(x, y) :- R(x, y, 9)", "bf").unwrap();
        let cv = CompressedView::build(
            &view,
            &db,
            Strategy::Tradeoff {
                tau: 1.0,
                weights: None,
            },
        )
        .unwrap();
        let got: Vec<Tuple> = cv.answer(&[1]).unwrap().collect();
        assert_eq!(got, vec![vec![2], vec![3]]);
        let got: Vec<Tuple> = cv.answer(&[2]).unwrap().collect();
        assert!(got.is_empty());
    }

    #[test]
    fn always_empty_via_failed_guard() {
        let mut db = Database::new();
        db.add(Relation::from_pairs("R", vec![(1, 2)])).unwrap();
        db.add(Relation::from_pairs("G", vec![(5, 5)])).unwrap();
        let view = parse_adorned("Q(x, y) :- R(x, y), G(7, 7)", "bf").unwrap();
        let cv = CompressedView::build(&view, &db, Strategy::Direct).unwrap();
        assert_eq!(cv.strategy_name(), "always-empty");
        assert!(!cv.exists(&[1]).unwrap());
        assert!(cv.answer(&[1, 2]).is_err(), "access arity still validated");
    }

    #[test]
    fn projections_rejected() {
        let db = triangle_db();
        let view = parse_adorned("Q(x, y) :- R(x, y), S(y, z)", "bf").unwrap();
        let err = CompressedView::build(&view, &db, Strategy::Direct);
        assert!(err.is_err());
    }

    #[test]
    fn tradeoff_budget_strategy_picks_lp_optimum() {
        // A database large enough that Π|R_F|^{u_F} clears the linear
        // budget (the asymptotic regime the §6 program reasons about).
        let mut db = Database::new();
        let mut rng = cqc_workload::rng(71);
        for name in ["R", "S", "T"] {
            db.add(cqc_workload::uniform_relation(&mut rng, name, 2, 150, 25))
                .unwrap();
        }
        let view = parse_adorned("Q(x,y,z) :- R(x,y), S(y,z), T(z,x)", "bfb").unwrap();
        // τ must shrink monotonically as the budget grows, reaching ≈ 1.
        let mut taus = Vec::new();
        for budget in [1.0, 1.5, 3.0] {
            let cv = CompressedView::build(
                &view,
                &db,
                Strategy::TradeoffBudget {
                    space_budget_exp: budget,
                },
            )
            .unwrap();
            let CompressedView::Tradeoff(t) = &cv else {
                panic!("expected theorem 1")
            };
            taus.push(t.tau());
            // Correctness at every budget.
            for x in 0..8u64 {
                let expect = evaluate_view(&view, &db, &[x, (x + 3) % 25]).unwrap();
                let got: Vec<Tuple> = cv.answer(&[x, (x + 3) % 25]).unwrap().collect();
                assert_eq!(got, expect, "budget {budget}");
            }
        }
        assert!(
            taus[0] >= taus[1] - 1e-9 && taus[1] >= taus[2] - 1e-9,
            "{taus:?}"
        );
        assert!(taus[0] > 1.5, "tight budget needs real delay: {taus:?}");
        assert!(taus[2] <= 1.5, "generous budget ⇒ τ ≈ 1: {taus:?}");
    }

    #[test]
    fn describe_mentions_the_knobs() {
        let db = triangle_db();
        let view = parse_adorned("Q(x,y,z) :- R(x,y), S(y,z), T(z,x)", "bfb").unwrap();
        let cv = CompressedView::build(
            &view,
            &db,
            Strategy::Tradeoff {
                tau: 4.0,
                weights: None,
            },
        )
        .unwrap();
        let d = cv.describe();
        assert!(d.contains("theorem 1"), "{d}");
        assert!(d.contains("τ = 4"), "{d}");
        assert!(d.contains("dictionary"), "{d}");
        let cv = CompressedView::build(&view, &db, Strategy::Materialize).unwrap();
        assert!(cv.describe().contains("materialized"), "{}", cv.describe());
        let cv = CompressedView::build(
            &view,
            &db,
            Strategy::Decomposed {
                space_budget_exp: 1.5,
            },
        )
        .unwrap();
        assert!(cv.describe().contains("theorem 2"), "{}", cv.describe());
    }

    #[test]
    fn tradeoff_space_decreases_with_tau() {
        let db = triangle_db();
        let view = parse_adorned("Q(x,y,z) :- R(x,y), S(y,z), T(z,x)", "bfb").unwrap();
        let mut last = usize::MAX;
        for tau in [1.0, 2.0, 4.0, 16.0] {
            let cv = CompressedView::build(
                &view,
                &db,
                Strategy::Tradeoff {
                    tau,
                    weights: Some(vec![0.5, 0.5, 0.5]),
                },
            )
            .unwrap();
            if let CompressedView::Tradeoff(t) = &cv {
                let s = t.stats();
                assert!(s.tree_nodes + s.dict_entries <= last);
                last = s.tree_nodes + s.dict_entries;
            } else {
                panic!("expected tradeoff structure");
            }
        }
    }
}
