//! Balanced interval splitting (Lemma 3 and Algorithm 1).
//!
//! Given an f-interval `I` with cost `T = T(I)`, Algorithm 1 computes a
//! split point `c ∈ D_f` such that both `T([a, c))` and `T((c, b])` are at
//! most `T/2` (Prop. 8). It first locates the box `B_s` of `B(I)` where the
//! prefix sums cross `T/2`, then refines coordinate by coordinate inside
//! `B_s`, each step a binary search over the variable's active domain
//! (Lemma 3) — Õ(1) total, thanks to the count oracle.

use crate::cost::CostEstimator;
use crate::fbox::{box_decomposition, CanonicalBox, FInterval};
use cqc_common::util::{approx_ge, approx_gt, partition_point};

/// `T` of the canonical box `⟨prefix, range, □…⟩`; `range = None` means the
/// full domain at position `prefix.len()`. A prefix of length µ denotes the
/// unit box.
fn t_prefix_box(
    est: &CostEstimator,
    sizes: &[usize],
    prefix: &[usize],
    range: Option<(usize, usize)>,
) -> f64 {
    let mu = sizes.len();
    let b = if prefix.len() == mu {
        debug_assert!(range.is_none());
        CanonicalBox::unit(prefix)
    } else {
        let p = prefix.len();
        CanonicalBox {
            prefix: prefix.to_vec(),
            range: range.unwrap_or((0, sizes[p] - 1)),
        }
    };
    est.t_box(&b)
}

/// Lemma 3: the smallest rank `β ∈ [r_lo, r_hi]` such that
/// `T(⟨prefix, [r_lo, β]⟩) ≥ min(T(⟨prefix, [r_lo, r_hi]⟩), target)`.
///
/// Such a `β` always exists because the prefix-T is non-decreasing in `β`
/// and reaches the full-box value at `r_hi`.
fn find_beta(
    est: &CostEstimator,
    sizes: &[usize],
    prefix: &[usize],
    r_lo: usize,
    r_hi: usize,
    target: f64,
) -> usize {
    debug_assert!(r_lo <= r_hi);
    let full = t_prefix_box(est, sizes, prefix, Some((r_lo, r_hi)));
    let goal = full.min(target);
    let idx = partition_point(r_lo, r_hi + 1, |r| {
        approx_ge(t_prefix_box(est, sizes, prefix, Some((r_lo, r))), goal)
    });
    idx.min(r_hi)
}

/// Algorithm 1: a split point `c` of `interval` such that
/// `T([lo, c)) ≤ T/2` and `T((c, hi]) ≤ T/2`.
///
/// # Panics
///
/// Panics if `T(interval) = 0` (the caller never splits zero-cost
/// intervals) or the interval is malformed.
pub fn split_interval(est: &CostEstimator, sizes: &[usize], interval: &FInterval) -> Vec<usize> {
    let mu = sizes.len();
    let boxes = box_decomposition(interval, sizes);
    let t_of: Vec<f64> = boxes.iter().map(|b| est.t_box(b)).collect();
    let total: f64 = t_of.iter().sum();
    assert!(total > 0.0, "cannot split a zero-cost interval");

    // s = argmin_j { Σ_{i≤j} T(B_i) > T/2 }.
    let mut acc = 0.0f64;
    let mut s = boxes.len() - 1;
    for (j, &t) in t_of.iter().enumerate() {
        acc += t;
        if approx_gt(acc, total / 2.0) {
            s = j;
            break;
        }
    }
    let gamma0: f64 = t_of[..s].iter().sum();
    let bs = &boxes[s];

    // Refine inside B_s coordinate by coordinate (line 5–9 of Algorithm 1).
    let mut c: Vec<usize> = bs.prefix.clone();
    let k = c.len();
    let mut gamma = gamma0;
    let mut delta = t_of[s];
    for j in k..mu {
        let (r_lo, r_hi) = if j == k { bs.range } else { (0, sizes[j] - 1) };
        let target = delta.min(total / 2.0 - gamma);
        let cj = find_beta(est, sizes, &c, r_lo, r_hi, target);
        // γ_j = γ_{j-1} + T(⟨c, I_j ∩ [⊥, c_j)⟩).
        if cj > r_lo {
            gamma += t_prefix_box(est, sizes, &c, Some((r_lo, cj - 1)));
        }
        c.push(cj);
        // Δ_j = T(⟨c_1..c_j⟩) with the rest unconstrained.
        delta = if c.len() == mu {
            t_prefix_box(est, sizes, &c, None)
        } else {
            t_prefix_box(est, sizes, &c, Some((0, sizes[c.len()] - 1)))
        };
    }
    debug_assert_eq!(c.len(), mu);
    debug_assert!(
        interval.contains(&c),
        "split point must lie in the interval"
    );
    c
}

/// Ablation baseline: split at the *grid midpoint* of the interval,
/// ignoring costs entirely.
///
/// Used by the EXP-11 ablation to quantify what Algorithm 1's cost-balanced
/// choice buys: a midpoint split gives no `T/2` guarantee, so skewed
/// instances produce deeper, larger trees (and, with them, larger
/// dictionaries) for the same τ.
pub fn split_interval_midpoint(
    _est: &CostEstimator,
    sizes: &[usize],
    interval: &FInterval,
) -> Vec<usize> {
    // Midpoint in mixed-radix coordinates: average the endpoints digit by
    // digit with carry propagation (an approximation of the true rank
    // midpoint that stays inside the interval).
    let mu = sizes.len();
    let mut c = Vec::with_capacity(mu);
    let mut carry = 0usize; // 0 or 1 unit of the current digit.
    for (i, &size) in sizes.iter().enumerate().take(mu) {
        let sum = interval.lo[i] + interval.hi[i] + carry * size;
        c.push(sum / 2);
        carry = sum % 2;
    }
    debug_assert!(interval.contains(&c), "midpoint stays inside");
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::tests::running_estimator;
    use crate::fbox::{pred, succ};

    #[test]
    fn midpoint_splitter_stays_inside() {
        let est = running_estimator();
        let sizes = est.sizes();
        let iv = FInterval {
            lo: vec![0, 0, 0],
            hi: vec![1, 1, 1],
        };
        let c = split_interval_midpoint(&est, &sizes, &iv);
        assert!(iv.contains(&c));
        let unit = FInterval {
            lo: vec![1, 0, 1],
            hi: vec![1, 0, 1],
        };
        assert_eq!(split_interval_midpoint(&est, &sizes, &unit), vec![1, 0, 1]);
    }

    #[test]
    fn example_14_root_split_is_112() {
        let est = running_estimator();
        let sizes = est.sizes();
        let root = FInterval::full(&sizes).unwrap();
        let c = split_interval(&est, &sizes, &root);
        // β(r) = (1,1,2) in values = ranks (0,0,1).
        assert_eq!(c, vec![0, 0, 1]);
        assert_eq!(est.ranks_to_values(&c), vec![1, 1, 2]);
    }

    #[test]
    fn example_14_second_split_is_122() {
        let est = running_estimator();
        let sizes = est.sizes();
        // I(rr) = [⟨1,2,1⟩, ⟨2,2,2⟩] = ranks [(0,1,0), (1,1,1)].
        let rr = FInterval {
            lo: vec![0, 1, 0],
            hi: vec![1, 1, 1],
        };
        let c = split_interval(&est, &sizes, &rr);
        assert_eq!(est.ranks_to_values(&c), vec![1, 2, 2]);
    }

    /// Proposition 8, exhaustively on the running example: for every
    /// subinterval with positive cost, both halves cost at most T/2 (small
    /// tolerance for floating point).
    #[test]
    fn proposition_8_exhaustive() {
        let est = running_estimator();
        let sizes = est.sizes();
        let all: Vec<Vec<usize>> = {
            let mut pts = Vec::new();
            for a in 0..2 {
                for b in 0..2 {
                    for c in 0..2 {
                        pts.push(vec![a, b, c]);
                    }
                }
            }
            pts
        };
        let mut checked = 0usize;
        for i in 0..all.len() {
            for j in i..all.len() {
                let iv = FInterval {
                    lo: all[i].clone(),
                    hi: all[j].clone(),
                };
                let total = est.t_interval(&iv, &sizes);
                if total <= 0.0 {
                    continue;
                }
                let c = split_interval(&est, &sizes, &iv);
                assert!(iv.contains(&c));
                let half = total / 2.0 + 1e-9;
                if let Some(p) = pred(&c, &sizes) {
                    if iv.contains(&p) {
                        let left = FInterval {
                            lo: iv.lo.clone(),
                            hi: p,
                        };
                        let tl = est.t_interval(&left, &sizes);
                        assert!(tl <= half, "left {tl} > {half} for [{i},{j}]");
                    }
                }
                if let Some(sx) = succ(&c, &sizes) {
                    if iv.contains(&sx) {
                        let right = FInterval {
                            lo: sx,
                            hi: iv.hi.clone(),
                        };
                        let tr = est.t_interval(&right, &sizes);
                        assert!(tr <= half, "right {tr} > {half} for [{i},{j}]");
                    }
                }
                checked += 1;
            }
        }
        assert!(checked > 20, "exhaustive sweep must cover many intervals");
    }

    #[test]
    #[should_panic(expected = "zero-cost")]
    fn zero_cost_interval_panics() {
        let est = running_estimator();
        let sizes = est.sizes();
        // The point (2,2,2) has T = 0 (no R1 row with x=2, y=2).
        let iv = FInterval {
            lo: vec![1, 1, 1],
            hi: vec![1, 1, 1],
        };
        split_interval(&est, &sizes, &iv);
    }
}
