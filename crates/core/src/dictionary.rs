//! The heavy-pair dictionary **D** (§4.3 step 2, Appendix A).
//!
//! For every tree node `w` at level `ℓ` and every bound valuation `v_b`
//! with `T(v_b, I(w)) > τ_ℓ` (a *τ_ℓ-heavy pair*, Def. 3), the dictionary
//! stores one bit: whether `(⋈_F R_F(v_b)) ⋉ I(w)` is non-empty. Light
//! pairs have no entry (`⊥`) and are evaluated directly at query time.
//!
//! Construction follows Appendix A: candidate valuations are the distinct
//! `V_b`-prefixes of the join of the bound-touching atoms `E_{V_b}`
//! restricted to `I(w)` (Prop. 13), enumerated with prefix-skipping
//! leapfrog joins; each heavy candidate's bit is then decided. For the bit
//! we use a first-answer probe of the fully restricted join instead of
//! streaming the complete join output (Algorithm 3): the result is
//! identical and each probe is bounded by the same `T(v_b, I(w))` quantity
//! that bounds Algorithm 3's per-valuation work (see DESIGN.md §4).

use crate::cost::CostEstimator;
use crate::dbtree::{tau_level, DelayBalancedTree};
use crate::fbox::{box_decomposition, CanonicalBox};
use cqc_common::hash::{fast_set, FastMap, FastSet};
use cqc_common::heap::HeapSize;
use cqc_common::metrics::{self, BuildPhase};
use cqc_common::util::approx_gt;
use cqc_common::value::Value;
use cqc_join::leapfrog::LevelConstraint;
use cqc_join::plan::ViewPlan;
use std::rc::Rc;
use std::time::Instant;

/// The dictionary: one map per tree node, keyed by the bound valuation in
/// bound-head order.
#[derive(Debug, Clone, Default)]
pub struct HeavyDictionary {
    maps: Vec<FastMap<Box<[Value]>, bool>>,
}

impl HeavyDictionary {
    /// Builds the dictionary for a delay-balanced tree.
    pub fn build(
        plan: &ViewPlan,
        est: &CostEstimator,
        tree: &DelayBalancedTree,
    ) -> HeavyDictionary {
        let t_build = Instant::now();
        let sizes = est.sizes();
        let nb = plan.num_bound;
        let levels = plan.num_levels();
        let all_atoms: Vec<usize> = (0..plan.num_atoms()).collect();
        let bound_atoms: Vec<usize> = (0..plan.num_atoms())
            .filter(|&i| plan.atom_levels(i).iter().any(|&l| l < nb))
            .collect();
        // Free levels covered by the bound-touching atoms.
        let mut covered = vec![false; levels];
        for &i in &bound_atoms {
            for &l in plan.atom_levels(i) {
                covered[l] = true;
            }
        }

        let mut maps: Vec<FastMap<Box<[Value]>, bool>> =
            (0..tree.nodes.len()).map(|_| FastMap::default()).collect();

        // 1. Candidate bound valuations at the root (Prop. 13): the
        //    distinct V_b-prefixes of the E_{V_b} join over the full grid.
        //
        //    Candidate sets only shrink down the tree — `I(child) ⊆
        //    I(parent)` and `T(v_b, ·)` is monotone in the interval — so we
        //    enumerate once here and *filter* along tree edges below,
        //    instead of re-running the join per node (same output, far less
        //    work; the per-node join of Algorithm 3 costs a full
        //    worst-case-join per level). One join is constructed and
        //    re-seeded per box via `LeapfrogJoin::reset`, mirroring the
        //    serve-side reuse.
        let root_boxes = box_decomposition(&tree.nodes[0].interval, &sizes);
        let mut root_candidates: Vec<Vec<Value>> = Vec::new();
        if nb == 0 {
            root_candidates.push(Vec::new());
        } else {
            let mut seen: FastSet<Box<[Value]>> = fast_set();
            let mut join = plan.join_subset(&bound_atoms, vec![LevelConstraint::Fixed(0); levels]);
            let mut cons: Vec<LevelConstraint> = Vec::with_capacity(levels);
            for b in &root_boxes {
                cons.clear();
                cons.resize(nb, LevelConstraint::Free);
                free_constraints_into(est, b, levels - nb, &mut cons);
                // Free levels untouched by E_{V_b} cannot be joined over;
                // fixing them to an arbitrary value drops their (vacuous)
                // constraint and only enlarges the candidate set.
                for (l, c) in cons.iter_mut().enumerate().skip(nb) {
                    if !covered[l] {
                        *c = LevelConstraint::Fixed(0);
                    }
                }
                join.reset(&cons);
                while let Some(t) = join.next() {
                    if seen.insert(Box::from(&t[..nb])) {
                        root_candidates.push(t[..nb].to_vec());
                    }
                    join.skip_to_level(nb - 1);
                }
            }
        }

        // The atoms that actually enter `T(v_b, B)` (û_F > 0), in atom
        // order so products multiply exactly as `t_box_bound` would.
        // Counts of atoms without bound variables are
        // candidate-independent: they are evaluated once per box below,
        // while bound-touching atoms get their `v_b`-prefix row range
        // resolved once per candidate here and only re-narrow the free
        // columns per box — the counts that used to dominate build time.
        let weighted: Vec<usize> = (0..plan.num_atoms())
            .filter(|&ai| est.u_hat(ai) > 1e-12)
            .collect();
        let cand_ranges: Vec<Vec<(usize, usize)>> = root_candidates
            .iter()
            .map(|cand| {
                weighted
                    .iter()
                    .map(|&ai| {
                        if est.has_bound_cols(ai) {
                            est.bound_range(ai, cand)
                        } else {
                            est.full_range(ai)
                        }
                    })
                    .collect()
            })
            .collect();

        // 2. DFS: at each node, evaluate T(v_b, I(w)) for the surviving
        //    candidates; store heavy pairs (with an emptiness-probe bit) and
        //    pass the non-zero ones to the children.
        //
        //    The candidate valuations themselves are stored exactly once
        //    (in `root_candidates`); the per-node survivor sets are index
        //    lists shared between siblings through an `Rc`. The earlier
        //    version deep-cloned the whole `Vec<Vec<Value>>` survivor list
        //    for every binary node, making build cost quadratic in tree
        //    depth × candidates.
        let mut probe_join = plan.join_subset(&all_atoms, vec![LevelConstraint::Fixed(0); levels]);
        let mut probe_cons: Vec<LevelConstraint> = Vec::with_capacity(levels);
        // Per box: `Some(count)` for candidate-independent atoms, `None`
        // for the per-candidate ones; `box_dead` marks boxes that are
        // empty or killed by a zero candidate-independent count (their
        // `T(v_b, B)` is exactly 0 for every candidate).
        let mut free_counts: Vec<Vec<Option<f64>>> = Vec::new();
        let mut box_dead: Vec<bool> = Vec::new();
        let all_indices: Rc<Vec<u32>> = Rc::new((0..root_candidates.len() as u32).collect());
        let mut stack: Vec<(u32, Rc<Vec<u32>>)> = vec![(0, all_indices)];
        while let Some((w, cands)) = stack.pop() {
            let node = &tree.nodes[w as usize];
            let threshold = tau_level(tree.tau, tree.alpha, node.level);
            let boxes = box_decomposition(&node.interval, &sizes);
            free_counts.clear();
            box_dead.clear();
            for b in &boxes {
                let mut dead = b.is_empty();
                let per: Vec<Option<f64>> = weighted
                    .iter()
                    .map(|&ai| {
                        if dead || est.has_bound_cols(ai) {
                            None
                        } else {
                            let c = est.count_box_bound_in(ai, est.full_range(ai), b) as f64;
                            if c == 0.0 {
                                dead = true;
                            }
                            Some(c)
                        }
                    })
                    .collect();
                free_counts.push(per);
                box_dead.push(dead);
            }
            let mut survivors: Vec<u32> = Vec::with_capacity(cands.len());
            for &ci in cands.iter() {
                let cand = &root_candidates[ci as usize];
                let ranges = &cand_ranges[ci as usize];
                // T(v_b, I(w)) = Σ_B T(v_b, B), summed until it provably
                // exceeds the threshold (the partial sum is monotone, so
                // the heaviness verdict is exact).
                let mut t = 0.0f64;
                let mut heavy = false;
                for (bi, b) in boxes.iter().enumerate() {
                    if box_dead[bi] {
                        continue;
                    }
                    let mut tb = 1.0f64;
                    for (wi, &ai) in weighted.iter().enumerate() {
                        let c = match free_counts[bi][wi] {
                            Some(c) => c,
                            None => est.count_box_bound_in(ai, ranges[wi], b) as f64,
                        };
                        if c == 0.0 {
                            tb = 0.0;
                            break;
                        }
                        tb *= c.powf(est.u_hat(ai));
                    }
                    t += tb;
                    if approx_gt(t, threshold) {
                        heavy = true;
                        break;
                    }
                }
                if t <= 0.0 {
                    continue; // dead everywhere below this node too
                }
                if heavy || approx_gt(t, threshold) {
                    let mut bit = false;
                    for (bi, b) in boxes.iter().enumerate() {
                        if box_dead[bi] {
                            continue; // some atom has no matching row
                        }
                        probe_cons.clear();
                        probe_cons.extend(cand.iter().map(|&v| LevelConstraint::Fixed(v)));
                        free_constraints_into(est, b, levels - nb, &mut probe_cons);
                        probe_join.reset(&probe_cons);
                        if probe_join.is_non_empty() {
                            bit = true;
                            break;
                        }
                    }
                    maps[w as usize].insert(Box::from(&cand[..]), bit);
                }
                survivors.push(ci);
            }
            let survivors = Rc::new(survivors);
            match (node.left, node.right) {
                (Some(l), Some(r)) => {
                    stack.push((l, Rc::clone(&survivors)));
                    stack.push((r, survivors));
                }
                (Some(l), None) => stack.push((l, survivors)),
                (None, Some(r)) => stack.push((r, survivors)),
                (None, None) => {}
            }
        }

        metrics::record_build_phase(BuildPhase::Dictionary, t_build.elapsed().as_nanos() as u64);
        HeavyDictionary { maps }
    }

    /// An empty dictionary sized for `n` nodes (empty-view case).
    pub fn empty(n: usize) -> HeavyDictionary {
        HeavyDictionary {
            maps: (0..n).map(|_| FastMap::default()).collect(),
        }
    }

    /// Looks up `D(w, v_b)`: `Some(bit)` for heavy pairs, `None` (⊥) for
    /// light ones.
    pub fn get(&self, node: u32, vb: &[Value]) -> Option<bool> {
        metrics::record_dict_lookup();
        self.maps[node as usize].get(vb).copied()
    }

    /// Overwrites an entry (used by the Theorem 2 semijoin fixup, which
    /// only ever flips 1 → 0).
    pub fn set(&mut self, node: u32, vb: &[Value], bit: bool) {
        self.maps[node as usize].insert(Box::from(vb), bit);
    }

    /// Total number of stored pairs (the non-linear space term of Lemma 5).
    pub fn num_entries(&self) -> usize {
        self.maps.iter().map(FastMap::len).sum()
    }

    /// Iterates over all entries as `(node, v_b, bit)`.
    pub fn entries(&self) -> impl Iterator<Item = (u32, &[Value], bool)> + '_ {
        self.maps
            .iter()
            .enumerate()
            .flat_map(|(w, m)| m.iter().map(move |(k, &v)| (w as u32, k.as_ref(), v)))
    }

    /// The entries of one node.
    pub fn entries_of(&self, node: u32) -> impl Iterator<Item = (&[Value], bool)> + '_ {
        self.maps[node as usize]
            .iter()
            .map(|(k, &v)| (k.as_ref(), v))
    }
}

impl HeapSize for HeavyDictionary {
    fn heap_bytes(&self) -> usize {
        self.maps
            .iter()
            .map(|m| {
                m.keys()
                    .map(|k| k.len() * std::mem::size_of::<Value>())
                    .sum::<usize>()
                    + m.capacity() * (std::mem::size_of::<(Box<[Value]>, bool)>() + 8)
            })
            .sum::<usize>()
            + self.maps.capacity() * std::mem::size_of::<FastMap<Box<[Value]>, bool>>()
    }
}

/// Per-free-level constraints induced by a canonical box, in enumeration
/// order (length `mu`).
pub fn free_constraints(est: &CostEstimator, b: &CanonicalBox, mu: usize) -> Vec<LevelConstraint> {
    let mut cons = Vec::with_capacity(mu);
    free_constraints_into(est, b, mu, &mut cons);
    cons
}

/// [`free_constraints`] appended to a reused buffer — the allocation-free
/// form the enumerators drive per canonical box.
pub fn free_constraints_into(
    est: &CostEstimator,
    b: &CanonicalBox,
    mu: usize,
    cons: &mut Vec<LevelConstraint>,
) {
    let doms = est.domains();
    let p = b.range_pos();
    for (ep, dom) in doms.iter().enumerate().take(mu) {
        if ep < p {
            cons.push(LevelConstraint::Fixed(dom.value(b.prefix[ep])));
        } else if ep == p {
            cons.push(LevelConstraint::Range(
                dom.value(b.range.0),
                dom.value(b.range.1),
            ));
        } else {
            cons.push(LevelConstraint::Free);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::tests::{running_estimator, running_example};

    /// Example 15: at τ = 4 the dictionary holds exactly the two entries
    /// D(I(r), (1,1,1)) = 1 and D(I(r_r), (1,1,1)) = 1 for that valuation,
    /// and leaves carry no entries.
    #[test]
    fn example_15_dictionary_entries() {
        let (view, db) = running_example();
        let est = running_estimator();
        let plan = ViewPlan::build(&view, &db).unwrap();
        let tree = DelayBalancedTree::build(&est, 4.0).unwrap();
        let dict = HeavyDictionary::build(&plan, &est, &tree);

        // Node ids from the Figure 3 test: 0 = r, 2 = r_r (left child is 1).
        let rr = tree.nodes[0].right.unwrap();
        assert_eq!(dict.get(0, &[1, 1, 1]), Some(true));
        assert_eq!(dict.get(rr, &[1, 1, 1]), Some(true));

        // Leaves carry no entries at all (they have no heavy pairs).
        for (w, n) in tree.nodes.iter().enumerate() {
            if n.beta.is_none() {
                assert_eq!(dict.entries_of(w as u32).count(), 0, "leaf {w}");
            }
        }

        // Brute-force cross-check of heaviness over the whole bound grid.
        let sizes = est.sizes();
        for w1 in 1..=3u64 {
            for w2 in 1..=2u64 {
                for w3 in 1..=2u64 {
                    let vb = [w1, w2, w3];
                    for (w, node) in tree.nodes.iter().enumerate() {
                        let t = est.t_interval_bound(&vb, &node.interval, &sizes);
                        let thr = tau_level(tree.tau, tree.alpha, node.level);
                        let entry = dict.get(w as u32, &vb);
                        if t > thr + 1e-9 {
                            assert!(
                                entry.is_some(),
                                "heavy pair (({w1},{w2},{w3}), node {w}) missing"
                            );
                        } else {
                            assert!(
                                entry.is_none(),
                                "light pair (({w1},{w2},{w3}), node {w}) stored"
                            );
                        }
                    }
                }
            }
        }
    }

    /// Bits must reflect emptiness of the restricted join.
    #[test]
    fn bits_match_restricted_emptiness() {
        let (view, db) = running_example();
        let est = running_estimator();
        let plan = ViewPlan::build(&view, &db).unwrap();
        for tau in [1.0, 2.0, 4.0] {
            let tree = DelayBalancedTree::build(&est, tau).unwrap();
            let dict = HeavyDictionary::build(&plan, &est, &tree);
            for (w, vb, bit) in dict.entries() {
                let node = &tree.nodes[w as usize];
                // Naive emptiness: enumerate the full join of the view for
                // this v_b and check membership in the interval.
                let res = cqc_join::naive::evaluate_view(&view, &db, vb).unwrap();
                let doms = est.domains();
                let nonempty = res.iter().any(|t| {
                    let ranks: Vec<usize> = t
                        .iter()
                        .zip(doms)
                        .map(|(v, d)| d.rank(*v).expect("output value in domain"))
                        .collect();
                    node.interval.contains(&ranks)
                });
                assert_eq!(bit, nonempty, "bit mismatch at node {w}, vb {vb:?}");
            }
        }
    }

    /// Lemma 5 sanity: the number of entries stays within the
    /// (constant-factor-padded) bound Π|R_F|^{u_F} / τ^α · log.
    #[test]
    fn entry_count_within_lemma_5_bound() {
        let (view, db) = running_example();
        let est = running_estimator();
        let plan = ViewPlan::build(&view, &db).unwrap();
        for tau in [1.0f64, 2.0, 4.0, 8.0] {
            let tree = DelayBalancedTree::build(&est, tau).unwrap();
            let dict = HeavyDictionary::build(&plan, &est, &tree);
            let product = 5.0f64 * 5.0 * 5.0; // Π|R_F| with u = (1,1,1)
            let alpha = 2.0;
            let mu = 3.0f64;
            let c = (2.0 * mu - 1.0).powf(alpha);
            let levels = f64::from(tree.depth()) + 1.0;
            let bound = c * levels * product / tau.powf(alpha);
            assert!(
                (dict.num_entries() as f64) <= bound,
                "τ={tau}: {} entries > bound {bound}",
                dict.num_entries()
            );
        }
    }
}
