//! The Theorem 1 compressed representation and its Algorithm 2 enumerator.
//!
//! The structure is the pair `(T, D)` of §4.3 — delay-balanced tree plus
//! heavy-pair dictionary — together with the linear-size base indexes
//! (tries for evaluation, sorted count indexes inside the cost oracle).
//! For a cover `u` with slack `α` on the free variables and knob `τ`:
//!
//! * space: `Õ(|D| + Π_F |R_F|^{u_F} / τ^α)`;
//! * answering `Q^η[v_b]`: lexicographic enumeration with delay `Õ(τ)` and
//!   total answer time `Õ(|q(D)| + τ·|q(D)|^{1/α})` (Props. 9–10).
//!
//! The enumerator walks the tree in order: at a `⊥` (light) node it
//! evaluates the restricted join box by box with worst-case-optimal joins;
//! at a `1` node it recurses left, checks the split point, recurses right;
//! `0` nodes are skipped. The explicit stack keeps O(depth) = O(log)
//! working memory, as the paper's model requires.

use crate::cost::CostEstimator;
use crate::dbtree::DelayBalancedTree;
use crate::dictionary::{free_constraints, free_constraints_into, HeavyDictionary};
use crate::fbox::{box_decomposition, box_decomposition_ranks, BoxList, CanonicalBox, FInterval};
use cqc_common::error::{CqcError, Result};
use cqc_common::heap::HeapSize;
use cqc_common::metrics;
use cqc_common::value::{Tuple, Value};
use cqc_join::leapfrog::{LeapfrogJoin, LevelConstraint};
use cqc_join::plan::ViewPlan;
use cqc_lp::covers::slack;
use cqc_query::AdornedView;
use cqc_storage::{Database, IndexPool};

/// The Theorem 1 data structure.
///
/// Fields are `pub(crate)` so that [`crate::maintain`] can re-assemble a
/// structure from delta-maintained parts without re-running Algorithm 1.
#[derive(Debug, Clone)]
pub struct Theorem1Structure {
    pub(crate) view: AdornedView,
    pub(crate) plan: ViewPlan,
    pub(crate) est: CostEstimator,
    /// `None` when some free variable's active domain is empty — every
    /// access request then has an empty answer.
    pub(crate) tree: Option<DelayBalancedTree>,
    pub(crate) dict: HeavyDictionary,
    pub(crate) sizes: Vec<usize>,
    pub(crate) weights: Vec<f64>,
    pub(crate) alpha: f64,
    pub(crate) tau: f64,
}

impl Theorem1Structure {
    /// Compresses the view with the given fractional edge cover `weights`
    /// (one weight per atom, covering **all** variables, as Theorem 1
    /// requires) and threshold `τ ≥ 1`.
    ///
    /// # Errors
    ///
    /// Fails for non-natural-join views, views without free variables (use
    /// `BoundOnlyView`), invalid covers, or `τ < 1`.
    pub fn build(
        view: &AdornedView,
        db: &Database,
        weights: &[f64],
        tau: f64,
    ) -> Result<Theorem1Structure> {
        Theorem1Structure::build_pooled(view, db, weights, tau, &mut IndexPool::new())
    }

    /// [`Theorem1Structure::build`] drawing every sorted index from `pool`:
    /// the cost oracle's access indexes and the join plan's trie indexes
    /// share the same column orders, so between them each distinct
    /// `(relation, order)` index is sorted exactly once — and a pool shared
    /// with strategy selection reuses the veto oracle's indexes too.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`Theorem1Structure::build`].
    pub fn build_pooled(
        view: &AdornedView,
        db: &Database,
        weights: &[f64],
        tau: f64,
        pool: &mut IndexPool,
    ) -> Result<Theorem1Structure> {
        let query = view.query();
        query.require_natural_join()?;
        query.check_schema(db)?;
        if view.mu() == 0 {
            return Err(CqcError::Config(
                "all head variables are bound; use BoundOnlyView (Prop. 1)".into(),
            ));
        }
        if tau < 1.0 {
            return Err(CqcError::Config(format!("τ = {tau} must be ≥ 1")));
        }
        let h = query.hypergraph();
        if weights.len() != query.atoms.len() {
            return Err(CqcError::Config(format!(
                "expected {} cover weights, got {}",
                query.atoms.len(),
                weights.len()
            )));
        }
        for x in h.all_vars().iter() {
            let covered: f64 = h
                .edges()
                .iter()
                .zip(weights)
                .filter(|(e, _)| e.contains(x))
                .map(|(_, w)| *w)
                .sum();
            if covered < 1.0 - 1e-6 {
                return Err(CqcError::Config(format!(
                    "weights do not cover variable {} (Theorem 1 needs a cover of V)",
                    query.var_name(x)
                )));
            }
        }
        let alpha = slack(&h, weights, view.free_vars()).max(1.0);

        let est = CostEstimator::build_pooled(view, db, weights, alpha, pool)?;
        let plan = ViewPlan::build_pooled(view, db, pool)?;
        let sizes = est.sizes();
        let tree = DelayBalancedTree::build(&est, tau);
        let dict = match &tree {
            Some(t) => HeavyDictionary::build(&plan, &est, t),
            None => HeavyDictionary::empty(0),
        };
        Ok(Theorem1Structure {
            view: view.clone(),
            plan,
            est,
            tree,
            dict,
            sizes,
            weights: weights.to_vec(),
            alpha,
            tau,
        })
    }

    /// The slack `α(V_f)` of the cover in use.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// The delay knob τ.
    pub fn tau(&self) -> f64 {
        self.tau
    }

    /// The cover weights.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// The compressed view definition.
    pub fn view(&self) -> &AdornedView {
        &self.view
    }

    /// The delay-balanced tree (if the view is non-degenerate).
    pub fn tree(&self) -> Option<&DelayBalancedTree> {
        self.tree.as_ref()
    }

    /// The heavy-pair dictionary.
    pub fn dictionary(&self) -> &HeavyDictionary {
        &self.dict
    }

    /// Mutable dictionary access (Theorem 2's semijoin fixup flips 1 → 0).
    pub fn dictionary_mut(&mut self) -> &mut HeavyDictionary {
        &mut self.dict
    }

    /// The cost oracle.
    pub fn estimator(&self) -> &CostEstimator {
        &self.est
    }

    /// Answers an access request: lexicographic, duplicate-free enumeration
    /// of the free-variable tuples with delay Õ(τ).
    ///
    /// The returned iterator owns all enumeration scratch (constraint
    /// vectors, box buffers, one reusable leapfrog join); call
    /// [`Theorem1Iter::reset`] to serve further requests from the same
    /// scratch with zero steady-state allocations.
    ///
    /// # Errors
    ///
    /// Fails when the bound value count mismatches the pattern.
    pub fn answer(&self, bound_values: &[Value]) -> Result<Theorem1Iter<'_>> {
        let mut it = Theorem1Iter::new(self);
        it.reset(bound_values)?;
        Ok(it)
    }

    /// Push-style answering: drives every answer of the request into
    /// `sink` (stopping early if the sink declines). One-shot convenience
    /// over [`Theorem1Structure::answer`] + [`Theorem1Iter::drain_into`].
    ///
    /// # Errors
    ///
    /// Fails when the bound value count mismatches the pattern.
    pub fn answer_into(
        &self,
        bound_values: &[Value],
        sink: &mut impl cqc_common::AnswerSink,
    ) -> Result<()> {
        self.answer(bound_values)?.drain_into(sink);
        Ok(())
    }

    /// Range-restricted access: enumerates only the answers whose
    /// free-variable tuple lies in the inclusive lexicographic range
    /// `[lo, hi]` (in enumeration order) — an extension the structure
    /// supports natively because its output is ordered.
    ///
    /// Only the O(log) tree nodes straddling the range boundaries lose the
    /// dictionary's progress guarantee, so the delay stays `Õ(τ)`.
    ///
    /// # Errors
    ///
    /// Fails on access arity mismatches or when `lo`/`hi` do not have one
    /// value per free variable.
    pub fn answer_range(
        &self,
        bound_values: &[Value],
        lo: &[Value],
        hi: &[Value],
    ) -> Result<Theorem1Iter<'_>> {
        self.view.check_access(bound_values)?;
        let mu = self.view.mu();
        if lo.len() != mu || hi.len() != mu {
            return Err(CqcError::InvalidAccess(format!(
                "range endpoints must have {mu} values (one per free variable)"
            )));
        }
        let domains = self.est.domains();
        let clip = grid_ceil(domains, lo)
            .zip(grid_floor(domains, hi))
            .and_then(|(lo_r, hi_r)| {
                use crate::fbox::lex_cmp_ranks;
                (lex_cmp_ranks(&lo_r, &hi_r) != std::cmp::Ordering::Greater)
                    .then_some(FInterval { lo: lo_r, hi: hi_r })
            });
        let mut it = Theorem1Iter::new(self);
        let enabled = clip.is_some();
        it.start(bound_values, clip, enabled);
        Ok(it)
    }

    /// First-answer probe (the boolean/k-SetDisjointness access of §3.3).
    /// No answer tuple is materialized.
    pub fn exists(&self, bound_values: &[Value]) -> Result<bool> {
        Ok(self.answer(bound_values)?.advance())
    }

    /// Evaluates `(⋈_F R_F(v_b)) ⋉ I` directly (worst-case-optimal, box by
    /// box) — the `⊥` branch of Algorithm 2, also used by the Theorem 2
    /// fixup to enumerate a node's interval.
    pub fn enumerate_interval(
        &self,
        bound_values: &[Value],
        interval: &FInterval,
    ) -> IntervalJoinIter<'_> {
        IntervalJoinIter {
            plan: &self.plan,
            est: &self.est,
            vb: bound_values.to_vec(),
            boxes: box_decomposition(interval, &self.sizes),
            next_box: 0,
            join: None,
        }
    }

    /// Membership of the fully fixed point: is `(v_b, free_vals)` in the
    /// join? (Algorithm 2 line 11: the split-point check, O(#atoms·log).)
    /// `probe` is a caller-owned scratch buffer for the per-atom prefix
    /// keys, so the check performs no allocation.
    fn point_in_join(&self, vb: &[Value], free_vals: &[Value], probe: &mut Vec<Value>) -> bool {
        let nb = self.plan.num_bound;
        for i in 0..self.plan.num_atoms() {
            let levels = self.plan.atom_levels(i);
            probe.clear();
            probe.extend(
                levels
                    .iter()
                    .map(|&l| if l < nb { vb[l] } else { free_vals[l - nb] }),
            );
            if self.plan.index(i).count(probe, None) == 0 {
                return false;
            }
        }
        true
    }

    /// Statistics for the benchmark harness.
    pub fn stats(&self) -> Theorem1Stats {
        Theorem1Stats {
            tree_nodes: self.tree.as_ref().map_or(0, DelayBalancedTree::len),
            tree_depth: self.tree.as_ref().map_or(0, DelayBalancedTree::depth),
            dict_entries: self.dict.num_entries(),
            heap_bytes: self.heap_bytes(),
            alpha: self.alpha,
            tau: self.tau,
        }
    }

    /// Per-component space accounting: the linear base indexes versus the
    /// τ-dependent structure (tree + dictionary) — the two terms of
    /// Theorem 1's `Õ(|D| + Π|R_F|^{u_F}/τ^α)` bound, separated so that
    /// scaling experiments can fit the non-linear term in isolation.
    pub fn space_breakdown(&self) -> SpaceBreakdown {
        SpaceBreakdown {
            base_index_bytes: self.plan.heap_bytes() + self.est.heap_bytes(),
            tree_bytes: self.tree.as_ref().map_or(0, HeapSize::heap_bytes),
            dict_bytes: self.dict.heap_bytes(),
        }
    }
}

/// The two space terms of Theorem 1, reported separately.
#[derive(Debug, Clone, Copy)]
pub struct SpaceBreakdown {
    /// Linear-size base indexes (tries + count indexes): the `Õ(|D|)` term.
    pub base_index_bytes: usize,
    /// Delay-balanced tree bytes (part of the `/τ^α` term).
    pub tree_bytes: usize,
    /// Heavy-pair dictionary bytes (the dominant `/τ^α` term).
    pub dict_bytes: usize,
}

impl SpaceBreakdown {
    /// The τ-dependent (non-linear) bytes.
    pub fn nonlinear_bytes(&self) -> usize {
        self.tree_bytes + self.dict_bytes
    }

    /// Total bytes.
    pub fn total_bytes(&self) -> usize {
        self.base_index_bytes + self.nonlinear_bytes()
    }
}

/// Structure statistics.
#[derive(Debug, Clone, Copy)]
pub struct Theorem1Stats {
    /// Nodes in the delay-balanced tree.
    pub tree_nodes: usize,
    /// Tree depth.
    pub tree_depth: u16,
    /// Heavy pairs stored in the dictionary.
    pub dict_entries: usize,
    /// Total owned heap bytes (tree + dictionary + base indexes).
    pub heap_bytes: usize,
    /// Slack α.
    pub alpha: f64,
    /// Threshold τ.
    pub tau: f64,
}

impl HeapSize for Theorem1Structure {
    fn heap_bytes(&self) -> usize {
        self.plan.heap_bytes()
            + self.est.heap_bytes()
            + self.tree.as_ref().map_or(0, HeapSize::heap_bytes)
            + self.dict.heap_bytes()
            + self.sizes.heap_bytes()
            + self.weights.heap_bytes()
    }
}

/// Worst-case-optimal evaluation of a restricted sub-instance, box by box,
/// in lexicographic order.
pub struct IntervalJoinIter<'a> {
    plan: &'a ViewPlan,
    est: &'a CostEstimator,
    vb: Vec<Value>,
    boxes: Vec<CanonicalBox>,
    next_box: usize,
    join: Option<LeapfrogJoin<'a>>,
}

impl IntervalJoinIter<'_> {
    fn constraints_for(&self, b: &CanonicalBox) -> Vec<LevelConstraint> {
        let mut cons: Vec<LevelConstraint> =
            self.vb.iter().map(|&v| LevelConstraint::Fixed(v)).collect();
        cons.extend(free_constraints(
            self.est,
            b,
            self.plan.num_levels() - self.plan.num_bound,
        ));
        cons
    }
}

impl Iterator for IntervalJoinIter<'_> {
    type Item = Tuple;

    fn next(&mut self) -> Option<Tuple> {
        let nb = self.plan.num_bound;
        loop {
            if let Some(j) = &mut self.join {
                if let Some(t) = j.next() {
                    metrics::record_tuple_output();
                    return Some(t[nb..].to_vec());
                }
                self.join = None;
            }
            if self.next_box >= self.boxes.len() {
                return None;
            }
            let b = self.boxes[self.next_box].clone();
            self.next_box += 1;
            if b.is_empty() {
                continue;
            }
            let cons = self.constraints_for(&b);
            self.join = Some(self.plan.join(cons));
        }
    }
}

/// Stack frames of the in-order traversal.
#[derive(Debug, Clone, Copy)]
enum Frame {
    /// Visit a node (dictionary lookup decides how).
    Enter(u32),
    /// Emit the node's split point if it is in the join (after the left
    /// subtree).
    Point(u32),
}

/// The Algorithm 2 enumerator (optionally clipped to an output range).
///
/// The core is the allocation-free pair [`Theorem1Iter::advance`] /
/// [`Theorem1Iter::current`]: every answer is exposed as a borrowed slice,
/// all working memory (traversal stack, constraint vector, canonical-box
/// buffer, one leapfrog join reused across boxes and nodes, split-point
/// scratch) lives in the iterator and is reused across nodes **and across
/// requests** via [`Theorem1Iter::reset`]. The `Iterator<Item = Tuple>`
/// implementation is a thin compatibility shim that copies each slice.
pub struct Theorem1Iter<'a> {
    s: &'a Theorem1Structure,
    vb: Vec<Value>,
    stack: Vec<Frame>,
    /// Optional lexicographic output clip (rank space).
    clip: Option<FInterval>,
    /// The one leapfrog join, re-seeded per canonical box via
    /// [`LeapfrogJoin::reset`]; created lazily at the first `⊥` node.
    join: Option<LeapfrogJoin<'a>>,
    /// `true` while the join is mid-drain on the current box.
    join_active: bool,
    /// Box decomposition of the current `⊥` node's (clipped) interval.
    boxes: BoxList,
    next_box: usize,
    /// `true` while boxes of the current `⊥` node remain.
    boxes_active: bool,
    /// Reused per-box constraint vector (bound prefix + box constraints).
    cons: Vec<LevelConstraint>,
    /// Split-point values of the most recent `Point` answer.
    point: Vec<Value>,
    /// Scratch for the split-point membership probe.
    probe: Vec<Value>,
    /// Whether [`Theorem1Iter::current`] reads from the join or `point`.
    emit_from_join: bool,
}

impl<'a> Theorem1Iter<'a> {
    fn new(s: &'a Theorem1Structure) -> Theorem1Iter<'a> {
        Theorem1Iter {
            s,
            vb: Vec::new(),
            stack: Vec::new(),
            clip: None,
            join: None,
            join_active: false,
            boxes: BoxList::new(),
            next_box: 0,
            boxes_active: false,
            cons: Vec::new(),
            point: Vec::new(),
            probe: Vec::new(),
            emit_from_join: false,
        }
    }

    /// (Re)positions the iterator at the start of a request without
    /// touching buffer capacities. `enabled` gates whether the traversal
    /// starts at all (an `answer_range` whose clip is empty enumerates
    /// nothing).
    fn start(&mut self, bound_values: &[Value], clip: Option<FInterval>, enabled: bool) {
        self.vb.clear();
        self.vb.extend_from_slice(bound_values);
        self.clip = clip;
        self.stack.clear();
        self.join_active = false;
        self.boxes_active = false;
        self.next_box = 0;
        self.emit_from_join = false;
        if enabled {
            if let Some(t) = &self.s.tree {
                self.stack.push(Frame::Enter(t.root()));
            }
        }
    }

    /// Rewinds the iterator to answer a fresh access request, reusing all
    /// scratch buffers (the steady-state serve path performs zero heap
    /// allocations from here on).
    ///
    /// # Errors
    ///
    /// Fails when the bound value count mismatches the pattern.
    pub fn reset(&mut self, bound_values: &[Value]) -> Result<()> {
        self.s.view.check_access(bound_values)?;
        self.start(bound_values, None, true);
        Ok(())
    }

    /// Steps to the next answer; `true` when one is available via
    /// [`Theorem1Iter::current`].
    pub fn advance(&mut self) -> bool {
        use crate::fbox::lex_cmp_ranks;
        use std::cmp::Ordering;
        let s = self.s;
        loop {
            // 1. Drain the active join (the `⊥` branch's current box).
            if self.join_active {
                let j = self.join.as_mut().expect("active join exists");
                if j.next().is_some() {
                    metrics::record_tuple_output();
                    self.emit_from_join = true;
                    return true;
                }
                self.join_active = false;
            }
            // 2. Seed the join with the next non-empty box, if any.
            if self.boxes_active {
                let mut seeded = false;
                while self.next_box < self.boxes.len() {
                    let i = self.next_box;
                    self.next_box += 1;
                    if self.boxes.get(i).is_empty() {
                        continue;
                    }
                    let Theorem1Iter {
                        boxes,
                        cons,
                        vb,
                        join,
                        ..
                    } = self;
                    let b = boxes.get(i);
                    cons.clear();
                    cons.extend(vb.iter().map(|&v| LevelConstraint::Fixed(v)));
                    free_constraints_into(&s.est, b, s.plan.num_free(), cons);
                    match join {
                        Some(j) => j.reset(cons),
                        None => *join = Some(s.plan.join(cons.clone())),
                    }
                    seeded = true;
                    break;
                }
                if seeded {
                    self.join_active = true;
                    continue;
                }
                self.boxes_active = false;
            }
            // 3. Pop the next traversal frame.
            let Some(tree) = s.tree.as_ref() else {
                return false;
            };
            match self.stack.pop() {
                None => return false,
                Some(Frame::Enter(w)) => {
                    let node = &tree.nodes[w as usize];
                    // Clip the node's interval to the requested range. The
                    // clipped endpoints are whole-tuple lexicographic
                    // max/min, so they are *borrowed* from either side —
                    // no `FInterval` is materialized.
                    let (lo, hi): (&[usize], &[usize]) = match &self.clip {
                        None => (&node.interval.lo, &node.interval.hi),
                        Some(c) => {
                            let lo = if lex_cmp_ranks(&node.interval.lo, &c.lo) == Ordering::Less {
                                &c.lo[..]
                            } else {
                                &node.interval.lo[..]
                            };
                            let hi = if lex_cmp_ranks(&node.interval.hi, &c.hi) == Ordering::Greater
                            {
                                &c.hi[..]
                            } else {
                                &node.interval.hi[..]
                            };
                            if lex_cmp_ranks(lo, hi) == Ordering::Greater {
                                continue; // disjoint from the range
                            }
                            (lo, hi)
                        }
                    };
                    match s.dict.get(w, &self.vb) {
                        // ⊥: evaluate the (clipped) interval directly; cost
                        // bounded by τ_ℓ since the pair is light and
                        // T(v_b, ·) is monotone under clipping.
                        None => {
                            box_decomposition_ranks(lo, hi, &s.sizes, &mut self.boxes);
                            self.next_box = 0;
                            self.boxes_active = true;
                        }
                        // 0: provably empty, skip the subtree.
                        Some(false) => {}
                        // 1: in-order recursion.
                        Some(true) => {
                            debug_assert!(node.beta.is_some(), "leaves cannot hold heavy pairs");
                            if let Some(r) = node.right {
                                self.stack.push(Frame::Enter(r));
                            }
                            self.stack.push(Frame::Point(w));
                            if let Some(l) = node.left {
                                self.stack.push(Frame::Enter(l));
                            }
                        }
                    }
                }
                Some(Frame::Point(w)) => {
                    let node = &tree.nodes[w as usize];
                    let beta = node.beta.as_ref().expect("Point frames come from 1-nodes");
                    if let Some(c) = &self.clip {
                        if !c.contains(beta) {
                            continue;
                        }
                    }
                    s.est.ranks_to_values_into(beta, &mut self.point);
                    if s.point_in_join(&self.vb, &self.point, &mut self.probe) {
                        metrics::record_tuple_output();
                        self.emit_from_join = false;
                        return true;
                    }
                }
            }
        }
    }

    /// The answer produced by the last successful [`Theorem1Iter::advance`]
    /// (free-variable values, enumeration order), borrowed from the
    /// iterator's scratch.
    pub fn current(&self) -> &[Value] {
        if self.emit_from_join {
            let nb = self.s.plan.num_bound;
            &self.join.as_ref().expect("join emitted last").current()[nb..]
        } else {
            &self.point
        }
    }

    /// Pushes every remaining answer into `sink`, honoring early stops.
    ///
    /// The `⊥`-branch hot loop is specialized: while a box's join is
    /// draining, answers flow `join → sink` directly instead of
    /// re-entering the traversal state machine per answer.
    pub fn drain_into(&mut self, sink: &mut impl cqc_common::AnswerSink) {
        let nb = self.s.plan.num_bound;
        loop {
            if self.join_active {
                let j = self.join.as_mut().expect("active join exists");
                while let Some(t) = j.next() {
                    metrics::record_tuple_output();
                    if !sink.push(&t[nb..]) {
                        return;
                    }
                }
                self.join_active = false;
            }
            if !self.advance() {
                return;
            }
            if !sink.push(self.current()) {
                return;
            }
        }
    }
}

impl Iterator for Theorem1Iter<'_> {
    type Item = Tuple;

    fn next(&mut self) -> Option<Tuple> {
        if self.advance() {
            Some(self.current().to_vec())
        } else {
            None
        }
    }
}

/// The smallest grid rank-tuple whose value tuple is lexicographically
/// `>= vals`, or `None` when every grid tuple is smaller.
fn grid_ceil(domains: &[cqc_storage::Domain], vals: &[Value]) -> Option<Vec<usize>> {
    let mu = domains.len();
    let mut ranks = Vec::with_capacity(mu);
    for i in 0..mu {
        let d = &domains[i];
        let r = d.rank_ceil(vals[i]);
        if r >= d.len() {
            // No value at this coordinate can reach vals[i] with the exact
            // prefix: bump the prefix and floor-fill the rest.
            return bump_up(&mut ranks, domains).then(|| {
                ranks.resize(mu, 0);
                ranks
            });
        }
        ranks.push(r);
        if d.value(r) > vals[i] {
            // Strictly above: everything after can be minimal.
            ranks.resize(mu, 0);
            return Some(ranks);
        }
    }
    Some(ranks)
}

/// The largest grid rank-tuple whose value tuple is lexicographically
/// `<= vals`, or `None` when every grid tuple is larger.
fn grid_floor(domains: &[cqc_storage::Domain], vals: &[Value]) -> Option<Vec<usize>> {
    let mu = domains.len();
    let mut ranks = Vec::with_capacity(mu);
    for i in 0..mu {
        let d = &domains[i];
        match d.rank_floor(vals[i]) {
            None => {
                // No value small enough at this coordinate: borrow from the
                // prefix and ceil-fill the rest.
                return bump_down(&mut ranks, domains).then(|| {
                    for d in domains.iter().take(mu).skip(ranks.len()) {
                        ranks.push(d.len() - 1);
                    }
                    ranks
                });
            }
            Some(r) => {
                ranks.push(r);
                if d.value(r) < vals[i] {
                    while ranks.len() < mu {
                        ranks.push(domains[ranks.len()].len() - 1);
                    }
                    return Some(ranks);
                }
            }
        }
    }
    Some(ranks)
}

/// Increments the rank prefix (with carry); `false` on overflow.
fn bump_up(prefix: &mut Vec<usize>, domains: &[cqc_storage::Domain]) -> bool {
    while let Some(last) = prefix.pop() {
        let pos = prefix.len();
        if last + 1 < domains[pos].len() {
            prefix.push(last + 1);
            return true;
        }
    }
    false
}

/// Decrements the rank prefix (with borrow); `false` on underflow.
fn bump_down(prefix: &mut Vec<usize>, _domains: &[cqc_storage::Domain]) -> bool {
    while let Some(last) = prefix.pop() {
        if last > 0 {
            prefix.push(last - 1);
            return true;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::tests::running_example;
    use cqc_common::value::lex_cmp;
    use cqc_join::naive::evaluate_view;
    use cqc_query::parser::parse_adorned;
    use cqc_storage::Relation;

    #[test]
    fn running_example_access_matches_oracle_for_all_taus() {
        let (view, db) = running_example();
        for tau in [1.0, 2.0, 4.0, 8.0, 1e6] {
            let s = Theorem1Structure::build(&view, &db, &[1.0, 1.0, 1.0], tau).unwrap();
            assert!((s.alpha() - 2.0).abs() < 1e-9, "Example 4 slack is 2");
            for w1 in 0..4u64 {
                for w2 in 0..3u64 {
                    for w3 in 0..3u64 {
                        let vb = [w1, w2, w3];
                        let expect = evaluate_view(&view, &db, &vb).unwrap();
                        let got: Vec<Tuple> = s.answer(&vb).unwrap().collect();
                        assert_eq!(got, expect, "τ={tau}, v_b={vb:?}");
                    }
                }
            }
        }
    }

    #[test]
    fn example_5_shapes() {
        // Example 5: u = (1,1,1), τ = √N: delay knob √5 ≈ 2.23 on the tiny
        // instance — just verify the structure builds and answers.
        let (view, db) = running_example();
        let s = Theorem1Structure::build(&view, &db, &[1.0, 1.0, 1.0], 5.0f64.sqrt()).unwrap();
        let got: Vec<Tuple> = s.answer(&[1, 1, 1]).unwrap().collect();
        assert_eq!(got, vec![vec![1, 1, 2], vec![1, 2, 1], vec![1, 2, 2]]);
    }

    #[test]
    fn output_is_lexicographic_and_duplicate_free() {
        let (view, db) = running_example();
        let s = Theorem1Structure::build(&view, &db, &[1.0, 1.0, 1.0], 2.0).unwrap();
        let got: Vec<Tuple> = s.answer(&[1, 1, 1]).unwrap().collect();
        for w in got.windows(2) {
            assert!(
                lex_cmp(&w[0], &w[1]) == std::cmp::Ordering::Less,
                "strictly increasing output"
            );
        }
    }

    #[test]
    fn triangle_all_patterns_match_oracle() {
        let mut db = Database::new();
        db.add(Relation::from_pairs(
            "R",
            vec![(1, 2), (2, 3), (1, 3), (3, 1), (2, 1), (4, 2)],
        ))
        .unwrap();
        db.add(Relation::from_pairs(
            "S",
            vec![(2, 3), (3, 1), (3, 2), (1, 2), (2, 4)],
        ))
        .unwrap();
        db.add(Relation::from_pairs(
            "T",
            vec![(3, 1), (1, 2), (2, 3), (2, 1), (4, 4)],
        ))
        .unwrap();
        for pattern in ["fff", "bff", "fbf", "ffb", "bbf", "bfb", "fbb"] {
            let view = parse_adorned("Q(x,y,z) :- R(x,y), S(y,z), T(z,x)", pattern).unwrap();
            let nb = pattern.chars().filter(|c| *c == 'b').count();
            for tau in [1.0, 3.0, 100.0] {
                let s = Theorem1Structure::build(&view, &db, &[0.5, 0.5, 0.5], tau).unwrap();
                // All bound assignments over a small candidate grid.
                let grid: Vec<u64> = (0..6).collect();
                let mut reqs: Vec<Vec<u64>> = vec![vec![]];
                for _ in 0..nb {
                    reqs = reqs
                        .iter()
                        .flat_map(|r| {
                            grid.iter().map(move |&v| {
                                let mut r2 = r.clone();
                                r2.push(v);
                                r2
                            })
                        })
                        .collect();
                }
                for req in reqs {
                    let expect = evaluate_view(&view, &db, &req).unwrap();
                    let got: Vec<Tuple> = s.answer(&req).unwrap().collect();
                    assert_eq!(got, expect, "pattern={pattern} τ={tau} req={req:?}");
                    assert_eq!(
                        s.exists(&req).unwrap(),
                        !expect.is_empty(),
                        "exists, pattern={pattern}"
                    );
                }
            }
        }
    }

    #[test]
    fn empty_domain_view_always_empty() {
        // x and y have empty active domains (R is empty): no tree is built
        // and every request answers empty.
        let mut db = Database::new();
        db.add(Relation::new("R", 2, vec![])).unwrap();
        let view = parse_adorned("Q(x, y) :- R(x, y)", "bf").unwrap();
        let s = Theorem1Structure::build(&view, &db, &[1.0], 2.0).unwrap();
        assert!(s.tree().is_none());
        let got: Vec<Tuple> = s.answer(&[1]).unwrap().collect();
        assert!(got.is_empty());
        assert!(!s.exists(&[7]).unwrap());
    }

    #[test]
    fn empty_relation_with_live_domains_still_answers_empty() {
        // R is empty but y's domain is fed by S, so the tree may exist; the
        // answers must still be empty everywhere.
        let mut db = Database::new();
        db.add(Relation::new("R", 2, vec![])).unwrap();
        db.add(Relation::from_pairs("S", vec![(1, 2)])).unwrap();
        let view = parse_adorned("Q(x,y,z) :- R(x,y), S(y,z)", "bff").unwrap();
        let s = Theorem1Structure::build(&view, &db, &[1.0, 1.0], 2.0).unwrap();
        for x in 0..3u64 {
            let got: Vec<Tuple> = s.answer(&[x]).unwrap().collect();
            assert!(got.is_empty());
        }
    }

    #[test]
    fn invalid_configs_rejected() {
        let (view, db) = running_example();
        // τ < 1.
        assert!(Theorem1Structure::build(&view, &db, &[1.0, 1.0, 1.0], 0.5).is_err());
        // Not a cover (w1 not covered).
        assert!(Theorem1Structure::build(&view, &db, &[0.0, 1.0, 1.0], 2.0).is_err());
        // Wrong weight count.
        assert!(Theorem1Structure::build(&view, &db, &[1.0, 1.0], 2.0).is_err());
        // All-bound view.
        let v = parse_adorned(
            "Q(x, y, z, w1, w2, w3) :- R1(w1, x, y), R2(w2, y, z), R3(w3, x, z)",
            "bbbbbb",
        )
        .unwrap();
        assert!(Theorem1Structure::build(&v, &db, &[1.0, 1.0, 1.0], 2.0).is_err());
    }

    #[test]
    fn answer_range_matches_filtered_answer() {
        let (view, db) = running_example();
        for tau in [1.0, 4.0, 64.0] {
            let s = Theorem1Structure::build(&view, &db, &[1.0, 1.0, 1.0], tau).unwrap();
            let vbs: Vec<[u64; 3]> = vec![[1, 1, 1], [1, 2, 1], [2, 1, 2], [3, 2, 2]];
            // Range endpoints including values outside the active domains
            // (0 and 5 are not domain members).
            let ranges: Vec<([u64; 3], [u64; 3])> = vec![
                ([1, 1, 1], [2, 2, 2]),
                ([1, 1, 2], [1, 2, 1]),
                ([0, 0, 0], [5, 5, 5]),
                ([1, 2, 0], [2, 0, 5]),
                ([2, 2, 2], [1, 1, 1]), // empty (inverted)
                ([1, 1, 1], [1, 1, 1]),
            ];
            for vb in &vbs {
                let full: Vec<Tuple> = s.answer(vb).unwrap().collect();
                for (lo, hi) in &ranges {
                    let got: Vec<Tuple> = s.answer_range(vb, lo, hi).unwrap().collect();
                    let expect: Vec<Tuple> = full
                        .iter()
                        .filter(|t| t.as_slice() >= &lo[..] && t.as_slice() <= &hi[..])
                        .cloned()
                        .collect();
                    assert_eq!(got, expect, "τ={tau} vb={vb:?} range=[{lo:?},{hi:?}]");
                }
            }
        }
    }

    #[test]
    fn answer_range_validates_arity() {
        let (view, db) = running_example();
        let s = Theorem1Structure::build(&view, &db, &[1.0, 1.0, 1.0], 2.0).unwrap();
        assert!(s.answer_range(&[1, 1, 1], &[1, 1], &[2, 2, 2]).is_err());
        assert!(s.answer_range(&[1, 1], &[1, 1, 1], &[2, 2, 2]).is_err());
    }

    #[test]
    fn space_breakdown_separates_terms() {
        let (view, db) = running_example();
        let tight = Theorem1Structure::build(&view, &db, &[1.0, 1.0, 1.0], 1.0).unwrap();
        let loose = Theorem1Structure::build(&view, &db, &[1.0, 1.0, 1.0], 1e6).unwrap();
        let bt = tight.space_breakdown();
        let bl = loose.space_breakdown();
        // The linear term is τ-independent; the non-linear term shrinks.
        assert_eq!(bt.base_index_bytes, bl.base_index_bytes);
        assert!(bt.nonlinear_bytes() >= bl.nonlinear_bytes());
        assert_eq!(bt.total_bytes(), bt.base_index_bytes + bt.nonlinear_bytes());
    }

    #[test]
    fn space_shrinks_as_tau_grows() {
        let (view, db) = running_example();
        let tight = Theorem1Structure::build(&view, &db, &[1.0, 1.0, 1.0], 1.0).unwrap();
        let loose = Theorem1Structure::build(&view, &db, &[1.0, 1.0, 1.0], 16.0).unwrap();
        assert!(tight.stats().tree_nodes >= loose.stats().tree_nodes);
        assert!(tight.stats().dict_entries >= loose.stats().dict_entries);
    }
}
