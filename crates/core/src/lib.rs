//! Compressed representations of conjunctive query results.
//!
//! A from-scratch implementation of *Compressed Representations of
//! Conjunctive Query Results* (Deep & Koutris, PODS 2018): a tunable data
//! structure that compresses the result of a full conjunctive query for a
//! given access pattern (adorned view), trading space against enumeration
//! delay across the full continuum between the two classical extremes —
//! materialize-everything and evaluate-per-request.
//!
//! The crate exposes:
//!
//! * [`theorem1::Theorem1Structure`] — the compression primitive
//!   (Theorem 1): delay-balanced tree + heavy-pair dictionary; space
//!   `Õ(|D| + Π|R_F|^{u_F}/τ^α)`, delay `Õ(τ)`;
//! * [`theorem2::Theorem2Structure`] — Theorem 1 combined with
//!   `V_b`-connex tree decompositions (Theorem 2): space `Õ(|D| + |D|^f)`,
//!   delay `Õ(|D|^h)` for δ-width `f` and δ-height `h`;
//! * [`bound_only::BoundOnlyView`] — Proposition 1 for all-bound views;
//! * [`compressed::CompressedView`] — a unified front door that picks (or
//!   is told) a strategy and exposes `answer`/`exists`/space accounting;
//!   its [`compressed::ViewEnumerator`] is the push-style, allocation-free
//!   serve interface (answers are driven into a
//!   [`cqc_common::AnswerSink`] as borrowed slices; all enumeration
//!   scratch is reused across requests);
//! * the geometric/costing substrate of §4: [`fbox`] (f-intervals, box
//!   decompositions), [`cost`] (the `T(·)` oracle), [`split`]
//!   (Lemma 3/Algorithm 1) and [`dbtree`] (the delay-balanced tree);
//! * [`maintain`] — delta maintenance: a Theorem 1 structure absorbs a
//!   batched insert by refreshing its linear base indexes and re-probing
//!   only the dictionary bits on affected root-to-leaf paths, instead of
//!   rebuilding the whole representation.
//!
//! ```
//! use cqc_core::compressed::{CompressedView, Strategy};
//! use cqc_query::parser::parse_adorned;
//! use cqc_storage::{Database, Relation};
//!
//! let mut db = Database::new();
//! db.add(Relation::from_pairs("R", vec![(1, 2), (2, 3), (3, 1), (1, 3)])).unwrap();
//! // Mutual friends: V^bfb(x, y, z) = R(x,y), R(y,z), R(z,x).
//! let view = parse_adorned("V(x, y, z) :- R(x, y), R(y, z), R(z, x)", "bfb").unwrap();
//! let cv = CompressedView::build(&view, &db, Strategy::Tradeoff { tau: 2.0, weights: None }).unwrap();
//! let ys: Vec<Vec<u64>> = cv.answer(&[1, 3]).unwrap().collect();
//! assert_eq!(ys, vec![vec![2]]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bound_only;
pub mod compressed;
pub mod cost;
pub mod dbtree;
pub mod dictionary;
pub mod fbox;
pub mod maintain;
pub mod split;
pub mod theorem1;
pub mod theorem2;

pub use bound_only::BoundOnlyView;
pub use compressed::{CompressedView, Strategy, ViewEnumerator};
pub use maintain::{MaintainOutcome, MaintainReport};
pub use theorem1::{Theorem1Stats, Theorem1Structure};
pub use theorem2::Theorem2Structure;
