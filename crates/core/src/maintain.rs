//! Delta maintenance of compressed representations.
//!
//! The paper builds its structures over a static database (§4); this module
//! extends every strategy to survive batched inserts *and deletes* without
//! a full rebuild, in the spirit of factorised-representation maintenance
//! (Olteanu & Závodný). [`cqc_storage::Delta`] keeps its insert and remove
//! sets disjoint (last-write-wins), so the two directions commute and can
//! be repaired independently.
//!
//! **Theorem 1** gets genuinely incremental maintenance. The observation
//! that makes it sound is locality: a tuple only changes the restricted
//! join `Q[v_b] ⋈ I(w)` of the (valuation, interval) pairs that agree with
//! it on the positions it pins — its *slab*. Per direction:
//!
//! * under **inserts**, costs only grow: heavy pairs stay heavy and `1`
//!   bits stay `1`; a light pair that turns heavy keeps being evaluated
//!   directly (the `⊥` branch of Algorithm 2 runs on the refreshed base
//!   indexes and is always correct, only its delay degrades with the
//!   delta); the single hazard is a stored `0` bit whose restricted join
//!   became non-empty — a stale "provably empty" certificate would
//!   *suppress* answers. Affected `0` bits are re-probed and flipped to
//!   `1` where the insert created answers.
//! * under **removes**, the hazards mirror: a stored `1` bit whose
//!   restricted join drained is delay-only (the interval simply yields no
//!   answers when enumerated — Point frames re-check against the refreshed
//!   indexes), but leaving it would erode the delay bound, so affected `1`
//!   bits are re-probed and flipped back to `0` where the remove emptied
//!   the interval. A remove that makes a free variable's active domain
//!   value vanish entirely shifts the rank-space grid and forces a rebuild
//!   (caught by the grid equality check, exactly like domain growth).
//!
//! Maintenance therefore (1) refreshes the linear-size base indexes by
//! two-pointer merge (`merge_insert`/`merge_remove` — the `Õ(|D|)` term,
//! unavoidable because answers are enumerated from them), (2) keeps the
//! delay-balanced tree's shape, and (3) re-probes exactly the dictionary
//! bits on tree nodes whose f-interval intersects a delta tuple's slab —
//! the affected root-to-leaf paths. Everything else is untouched, so the
//! work beyond the linear refresh is bounded by the delta, not by the
//! structure.
//!
//! **Every other strategy** has a cheaper-than-rebuild maintain path of its
//! own:
//!
//! * materialized and direct baselines patch their trie indexes by merge
//!   and (for the materialized result) repair losses by projection
//!   membership and gains by slab-restricted joins
//!   ([`cqc_join::baselines::MaterializedView::maintained`],
//!   [`cqc_join::baselines::DirectView::maintained`]);
//! * the Theorem 2 structure and the factorized d-tree re-derive only the
//!   bags touched by the delta plus their ancestors and re-run the
//!   semijoin fixup restricted to that set
//!   ([`crate::theorem2::Theorem2Structure::maintained`],
//!   [`cqc_factorized::FactorizedRepresentation::maintained`]);
//! * the Prop. 1 bound-only structure re-snapshots touched relations;
//! * always-empty views re-derive their ground guards.
//!
//! When the preconditions fail — the Theorem 1 grid shifted, or the view
//! needs the Example 3 rewrite (the delta would have to be rewritten too)
//! — the caller is told to rebuild instead. The engine additionally
//! rebuilds when its cost calibration says the delta is too large for
//! maintenance to pay off.

use crate::compressed::CompressedView;
use crate::cost::CostEstimator;
use crate::dictionary::free_constraints;
use crate::fbox::{box_decomposition, CanonicalBox};
use crate::theorem1::Theorem1Structure;
use cqc_common::error::Result;
use cqc_common::value::Value;
use cqc_join::leapfrog::LevelConstraint;
use cqc_join::plan::ViewPlan;
use cqc_query::rewrite::rewrite_view;
use cqc_query::AdornedView;
use cqc_storage::{Database, Delta};

/// What happened during a maintenance attempt.
#[derive(Debug)]
pub enum MaintainOutcome {
    /// The representation was updated in place of a rebuild.
    Maintained {
        /// The maintained representation, valid for the post-delta database.
        view: Box<CompressedView>,
        /// Work accounting for the maintenance pass.
        report: MaintainReport,
    },
    /// The delta does not touch any relation of the view: the existing
    /// representation is already valid for the new database.
    Unaffected,
    /// The structure cannot absorb this delta; build a fresh representation.
    NeedsRebuild {
        /// Why maintenance was refused.
        reason: String,
    },
}

/// Work performed by a successful maintenance pass.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MaintainReport {
    /// Tuples in the delta (inserts and removes) that touch the view's
    /// relations.
    pub delta_tuples: usize,
    /// Theorem 1: tree nodes whose interval intersects a delta tuple's
    /// slab. Theorem 2 / factorized: bags re-derived from the base
    /// relations.
    pub affected_nodes: usize,
    /// Dictionary bits re-probed on affected nodes (`0` bits against
    /// inserts, `1` bits against removes).
    pub reprobed_entries: usize,
    /// `0` bits flipped to `1` (inserts created answers in the interval).
    pub flipped_bits: usize,
    /// `1` bits flipped back to `0` (removes emptied the interval).
    pub cleared_bits: usize,
}

/// An inserted tuple's footprint on the free-variable grid and the bound
/// valuation space: positions it pins, in rank space (free) and value space
/// (bound). A tree node can only gain answers from this tuple if its
/// interval contains a point agreeing with `free_fix`; a dictionary entry
/// can only be invalidated by it if its valuation agrees with `bound_fix`.
struct Slab {
    free_fix: Vec<(usize, usize)>,
    bound_fix: Vec<(usize, Value)>,
}

impl Slab {
    fn hits_box(&self, b: &CanonicalBox) -> bool {
        if b.is_empty() {
            return false;
        }
        let p = b.range_pos();
        self.free_fix.iter().all(|&(pos, rank)| {
            if pos < p {
                b.prefix[pos] == rank
            } else if pos == p {
                b.range.0 <= rank && rank <= b.range.1
            } else {
                true
            }
        })
    }

    fn matches_valuation(&self, vb: &[Value]) -> bool {
        self.bound_fix.iter().all(|&(pos, v)| vb[pos] == v)
    }
}

impl CompressedView {
    /// Attempts to maintain this representation across `delta` (inserts
    /// and removes; the sets are disjoint by [`Delta`]'s last-write-wins
    /// canonicalization), which has already been applied to `db`.
    /// `original` is the view as registered (pre-rewrite); `self` must have
    /// been built from the pre-delta database.
    ///
    /// Every strategy has a maintain path (see the module docs for what
    /// each one repairs); precondition failures — a shifted Theorem 1
    /// grid, a view needing the Example 3 rewrite, an index that cannot be
    /// reconciled — report [`MaintainOutcome::NeedsRebuild`]. A delta that
    /// does not touch the view's relations is
    /// [`MaintainOutcome::Unaffected`] for *every* strategy.
    ///
    /// # Errors
    ///
    /// Propagates schema errors from rebuilding the base indexes.
    pub fn maintain(
        &self,
        original: &AdornedView,
        db: &Database,
        delta: &Delta,
    ) -> Result<MaintainOutcome> {
        let query = original.query();
        if !query.atoms.iter().any(|a| delta.touches(&a.relation)) {
            return Ok(MaintainOutcome::Unaffected);
        }
        // Every non-always-empty path below works on the stored (rewritten)
        // view, whose relations coincide with the base relations only when
        // no atom needed the Example 3 rewrite.
        let needs_rewrite = query.atoms.iter().any(|a| !a.is_natural());
        let rewrite_rebuild = || {
            Ok(MaintainOutcome::NeedsRebuild {
                reason: "the Example 3 rewrite derives filtered relations; \
                         the delta would need the same rewrite"
                    .into(),
            })
        };
        let base_report = || MaintainReport {
            delta_tuples: touched_tuples(query, delta),
            ..MaintainReport::default()
        };
        let irreconcilable = || {
            Ok(MaintainOutcome::NeedsRebuild {
                reason: "a maintained index could not be reconciled with the post-delta database"
                    .into(),
            })
        };
        match self {
            CompressedView::Tradeoff(s) => {
                if needs_rewrite {
                    return rewrite_rebuild();
                }
                maintain_theorem1(s, db, delta)
            }
            CompressedView::Materialized(s) => {
                if needs_rewrite {
                    return rewrite_rebuild();
                }
                match s.maintained(db, delta)? {
                    Some(v) => Ok(MaintainOutcome::Maintained {
                        view: Box::new(CompressedView::Materialized(v)),
                        report: base_report(),
                    }),
                    None => irreconcilable(),
                }
            }
            CompressedView::Direct(s) => {
                if needs_rewrite {
                    return rewrite_rebuild();
                }
                match s.maintained(db, delta)? {
                    Some(v) => Ok(MaintainOutcome::Maintained {
                        view: Box::new(CompressedView::Direct(v)),
                        report: base_report(),
                    }),
                    None => irreconcilable(),
                }
            }
            CompressedView::Decomposed(s) => {
                if needs_rewrite {
                    return rewrite_rebuild();
                }
                match s.maintained(db, delta)? {
                    Some((v, rebuilt_bags)) => Ok(MaintainOutcome::Maintained {
                        view: Box::new(CompressedView::Decomposed(v)),
                        report: MaintainReport {
                            affected_nodes: rebuilt_bags,
                            ..base_report()
                        },
                    }),
                    None => irreconcilable(),
                }
            }
            CompressedView::Factorized(s) => {
                if needs_rewrite {
                    return rewrite_rebuild();
                }
                match s.maintained(db, delta)? {
                    Some((v, rebuilt_bags)) => Ok(MaintainOutcome::Maintained {
                        view: Box::new(CompressedView::Factorized(v)),
                        report: MaintainReport {
                            affected_nodes: rebuilt_bags,
                            ..base_report()
                        },
                    }),
                    None => irreconcilable(),
                }
            }
            CompressedView::BoundOnly(s) => {
                if needs_rewrite {
                    return rewrite_rebuild();
                }
                match s.maintained(db, delta)? {
                    Some(v) => Ok(MaintainOutcome::Maintained {
                        view: Box::new(CompressedView::BoundOnly(v)),
                        report: base_report(),
                    }),
                    None => irreconcilable(),
                }
            }
            CompressedView::AlwaysEmpty(_) => {
                // Inserts can make a previously failing ground guard pass,
                // so "always empty" must be re-derived, not trusted.
                // (Removes keep a failing guard failing, but re-deriving
                // handles both directions uniformly.)
                let rewritten = rewrite_view(original, db)?;
                if rewritten.always_empty {
                    Ok(MaintainOutcome::Maintained {
                        view: Box::new(CompressedView::AlwaysEmpty(rewritten.view)),
                        report: base_report(),
                    })
                } else {
                    Ok(MaintainOutcome::NeedsRebuild {
                        reason: "the delta satisfied a previously failing ground guard".into(),
                    })
                }
            }
        }
    }
}

fn touched_tuples(query: &cqc_query::ConjunctiveQuery, delta: &Delta) -> usize {
    let mut names: Vec<&str> = query.atoms.iter().map(|a| a.relation.as_str()).collect();
    names.sort_unstable();
    names.dedup();
    names
        .iter()
        .map(|n| {
            delta.tuples_for(n).map_or(0, <[_]>::len) + delta.removes_for(n).map_or(0, <[_]>::len)
        })
        .sum()
}

/// Theorem 1 maintenance proper. `s` was built over the pre-delta database
/// and is a natural-join view, `db` is the post-delta database.
fn maintain_theorem1(
    s: &Theorem1Structure,
    db: &Database,
    delta: &Delta,
) -> Result<MaintainOutcome> {
    let query = s.view.query();
    let free_head = s.view.free_head();
    let bound_head = s.view.bound_head();

    // Precondition: the free-variable grid is unchanged. A grown active
    // domain shifts ranks, and every interval in the tree is rank-space.
    let all_domains = query.active_domains(db)?;
    let same_grid = free_head
        .iter()
        .zip(s.est.domains())
        .all(|(v, old)| all_domains[v.index()] == *old);
    if !same_grid {
        return Ok(MaintainOutcome::NeedsRebuild {
            reason: "a free variable's active domain changed; the rank-space grid shifted".into(),
        });
    }

    // Base-index refresh over the post-delta database: the sorted delta
    // run is *merged* into each linear index (two-pointer splice with
    // galloping search) instead of re-sorting every index from scratch, so
    // the refresh costs O(|D| + |δ| log |δ|) copying rather than
    // O(|D| log |D|) comparison sorting. The domains scanned for the grid
    // check above are reused, not recomputed; if a merge cannot be
    // reconciled with the post-delta relations, fall back to the rebuild.
    let est = match s.est.maintained(&s.view, db, delta, &all_domains)? {
        Some(est) => est,
        None => CostEstimator::build_with_domains(&s.view, db, &s.weights, s.alpha, &all_domains)?,
    };
    let plan = match s.plan.maintained(&s.view, db, delta)? {
        Some(plan) => plan,
        None => ViewPlan::build(&s.view, db)?,
    };

    let mut report = MaintainReport {
        delta_tuples: touched_tuples(query, delta),
        ..MaintainReport::default()
    };

    let Some(tree) = &s.tree else {
        // Empty grid at build time and the grid is unchanged: still empty.
        return Ok(MaintainOutcome::Maintained {
            view: Box::new(CompressedView::Tradeoff(Theorem1Structure {
                view: s.view.clone(),
                plan,
                est,
                tree: None,
                dict: s.dict.clone(),
                sizes: s.sizes.clone(),
                weights: s.weights.clone(),
                alpha: s.alpha,
                tau: s.tau,
            })),
            report,
        });
    };

    // One slab per (atom, delta tuple) pair — an atom is touched per
    // occurrence, so self-joins see the tuple once per role. Inserts and
    // removes get separate slab lists: inserts can only invalidate `0`
    // bits, removes can only invalidate `1` bits. (A removed tuple's
    // values still rank: the grid check above guarantees the active
    // domains are unchanged, and the tuple was present pre-delta.)
    let enum_pos_of = |v: cqc_query::Var| free_head.iter().position(|w| *w == v);
    let bound_pos_of = |v: cqc_query::Var| bound_head.iter().position(|w| *w == v);
    let slab_of = |t: &[Value], atom: &cqc_query::atom::Atom| -> Option<Slab> {
        let mut free_fix = Vec::new();
        let mut bound_fix = Vec::new();
        for (col, v) in atom.vars().enumerate() {
            if let Some(p) = enum_pos_of(v) {
                // `None` is unreachable after the grid check; bail soundly
                // rather than trusting the invariant.
                free_fix.push((p, s.est.domains()[p].rank(t[col])?));
            } else if let Some(p) = bound_pos_of(v) {
                bound_fix.push((p, t[col]));
            }
        }
        Some(Slab {
            free_fix,
            bound_fix,
        })
    };
    let mut ins_slabs: Vec<Slab> = Vec::new();
    let mut rem_slabs: Vec<Slab> = Vec::new();
    for atom in &query.atoms {
        for (tuples, out) in [
            (delta.tuples_for(&atom.relation), &mut ins_slabs),
            (delta.removes_for(&atom.relation), &mut rem_slabs),
        ] {
            for t in tuples.unwrap_or(&[]) {
                match slab_of(t, atom) {
                    Some(slab) => out.push(slab),
                    None => {
                        return Ok(MaintainOutcome::NeedsRebuild {
                            reason: "a delta value is outside the free grid".into(),
                        });
                    }
                }
            }
        }
    }

    // Re-probe stale bits on affected nodes: `0` bits hit by an insert
    // slab (the restricted join may have become non-empty — leaving the
    // bit would suppress answers) and `1` bits hit by a remove slab (the
    // join may have drained — leaving the bit erodes the delay bound).
    // Locality makes this the only repair needed (see module docs).
    let mut dict = s.dict.clone();
    let all_atoms: Vec<usize> = (0..plan.num_atoms()).collect();
    let nb = plan.num_bound;
    let mu = plan.num_levels() - nb;
    for (w, node) in tree.nodes.iter().enumerate() {
        let boxes = box_decomposition(&node.interval, &s.sizes);
        let hit_ins: Vec<&Slab> = ins_slabs
            .iter()
            .filter(|slab| boxes.iter().any(|b| slab.hits_box(b)))
            .collect();
        let hit_rem: Vec<&Slab> = rem_slabs
            .iter()
            .filter(|slab| boxes.iter().any(|b| slab.hits_box(b)))
            .collect();
        if hit_ins.is_empty() && hit_rem.is_empty() {
            continue;
        }
        report.affected_nodes += 1;
        let stale: Vec<(Vec<Value>, bool)> = dict
            .entries_of(w as u32)
            .filter(|(vb, bit)| {
                let hits = if *bit { &hit_rem } else { &hit_ins };
                hits.iter().any(|s| s.matches_valuation(vb))
            })
            .map(|(vb, bit)| (vb.to_vec(), bit))
            .collect();
        for (vb, bit) in stale {
            report.reprobed_entries += 1;
            let nonempty = boxes.iter().any(|b| {
                let mut cons: Vec<LevelConstraint> =
                    vb.iter().map(|&v| LevelConstraint::Fixed(v)).collect();
                cons.extend(free_constraints(&est, b, mu));
                plan.join_subset(&all_atoms, cons).is_non_empty()
            });
            if nonempty && !bit {
                dict.set(w as u32, &vb, true);
                report.flipped_bits += 1;
            } else if !nonempty && bit {
                dict.set(w as u32, &vb, false);
                report.cleared_bits += 1;
            }
        }
    }

    Ok(MaintainOutcome::Maintained {
        view: Box::new(CompressedView::Tradeoff(Theorem1Structure {
            view: s.view.clone(),
            plan,
            est,
            tree: Some(tree.clone()),
            dict,
            sizes: s.sizes.clone(),
            weights: s.weights.clone(),
            alpha: s.alpha,
            tau: s.tau,
        })),
        report,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Strategy;
    use cqc_common::value::Tuple;
    use cqc_join::naive::evaluate_view;
    use cqc_query::parser::parse_adorned;
    use cqc_storage::Relation;

    fn triangle_db(rows: usize, domain: u64, seed: u64) -> Database {
        let mut db = Database::new();
        let mut rng = cqc_workload::rng(seed);
        for name in ["R", "S", "T"] {
            db.add(cqc_workload::uniform_relation(
                &mut rng, name, 2, rows, domain,
            ))
            .unwrap();
        }
        db
    }

    /// A delta that recombines existing column values, so active domains
    /// (unions of columns) are guaranteed stable and the maintain path is
    /// reachable.
    fn in_domain_delta(db: &Database, names: &[&str], per_rel: usize, seed: u64) -> Delta {
        cqc_workload::recombination_delta(&mut cqc_workload::rng(seed), db, names, per_rel)
    }

    fn answers(cv: &CompressedView, vb: &[Value]) -> Vec<Tuple> {
        cv.answer(vb).unwrap().collect()
    }

    #[test]
    fn maintained_matches_rebuild_on_random_deltas() {
        // The acceptance property: over random deltas, a maintained
        // Theorem 1 structure answers identically to a from-scratch
        // rebuild on the post-delta database.
        let view = parse_adorned("Q(x,y,z) :- R(x,y), S(y,z), T(z,x)", "bfb").unwrap();
        for seed in 0..12u64 {
            let mut db = triangle_db(60, 12, seed * 31 + 1);
            let built = CompressedView::build(
                &view,
                &db,
                Strategy::Tradeoff {
                    tau: 2.0,
                    weights: Some(vec![0.5, 0.5, 0.5]),
                },
            )
            .unwrap();
            let delta = in_domain_delta(&db, &["R", "S", "T"], 4, seed * 7 + 3);
            db.apply(&delta).unwrap();

            let outcome = built.maintain(&view, &db, &delta).unwrap();
            let MaintainOutcome::Maintained {
                view: maintained, ..
            } = outcome
            else {
                panic!("expected maintenance, got {outcome:?} (seed {seed})");
            };
            let rebuilt = CompressedView::build(
                &view,
                &db,
                Strategy::Tradeoff {
                    tau: 2.0,
                    weights: Some(vec![0.5, 0.5, 0.5]),
                },
            )
            .unwrap();
            for x in 0..12u64 {
                for z in 0..12u64 {
                    let vb = [x, z];
                    let got = answers(&maintained, &vb);
                    let expect = answers(&rebuilt, &vb);
                    assert_eq!(got, expect, "seed {seed}, vb {vb:?}");
                    let oracle = evaluate_view(&view, &db, &vb).unwrap();
                    assert_eq!(got, oracle, "seed {seed}, vb {vb:?} vs naive oracle");
                }
            }
        }
    }

    #[test]
    fn stale_zero_bits_are_flipped() {
        // Engineer a stored 0 bit and a delta that creates answers inside
        // its interval: without the re-probe the answer would be lost.
        let view = parse_adorned("Q(x,y,z) :- R(x,y), S(y,z), T(z,x)", "bfb").unwrap();
        let mut db = Database::new();
        db.add(Relation::from_pairs(
            "R",
            vec![(1, 2), (2, 3), (1, 3), (3, 1), (2, 1), (4, 2)],
        ))
        .unwrap();
        db.add(Relation::from_pairs(
            "S",
            vec![(2, 3), (3, 1), (3, 2), (1, 2), (2, 4)],
        ))
        .unwrap();
        db.add(Relation::from_pairs(
            "T",
            vec![(3, 1), (1, 2), (2, 3), (2, 1), (4, 4)],
        ))
        .unwrap();
        let built = CompressedView::build(
            &view,
            &db,
            Strategy::Tradeoff {
                tau: 1.0,
                weights: Some(vec![0.5, 0.5, 0.5]),
            },
        )
        .unwrap();

        // (x=4, z=4): T(4,4) exists but R(4,·)/S(·,4) only meet at y=2
        // after we insert S(2,4)… which already exists; instead create the
        // missing R(4, 2) companion pair (4, y=4): add S(4,4) wait—
        // keep it simple: before the delta Q(4, y, 1) is empty; insert
        // S(2,1): R(4,2), S(2,1), T(1,4)? T(1,4) missing. Use values that
        // complete a triangle through existing tuples:
        // R(4,2) ∧ S(2,1)(new) ∧ T(1,2)? needs T(z=1, x=4) → insert both.
        let mut delta = Delta::new();
        delta.insert("S", vec![2, 1]);
        delta.insert("T", vec![1, 4]);
        db.apply(&delta).unwrap();

        let before: Vec<Tuple> = answers(&built, &[4, 1]);
        assert!(before.is_empty(), "stale structure knows nothing of y=2");
        let outcome = built.maintain(&view, &db, &delta).unwrap();
        let MaintainOutcome::Maintained {
            view: maintained,
            report,
        } = outcome
        else {
            panic!("expected maintenance, got {outcome:?}");
        };
        assert_eq!(answers(&maintained, &[4, 1]), vec![vec![2u64]]);
        let oracle = evaluate_view(&view, &db, &[4, 1]).unwrap();
        assert_eq!(answers(&maintained, &[4, 1]), oracle);
        assert!(report.delta_tuples == 2, "{report:?}");
        // All other requests agree with the oracle too.
        for x in 0..6u64 {
            for z in 0..6u64 {
                assert_eq!(
                    answers(&maintained, &[x, z]),
                    evaluate_view(&view, &db, &[x, z]).unwrap(),
                    "vb ({x},{z})"
                );
            }
        }
    }

    #[test]
    fn untouched_relations_report_unaffected() {
        let view = parse_adorned("Q(x,y,z) :- R(x,y), S(y,z), T(z,x)", "bfb").unwrap();
        let mut db = triangle_db(40, 10, 5);
        db.add(Relation::from_pairs("U", vec![(1, 2)])).unwrap();
        let built = CompressedView::build(
            &view,
            &db,
            Strategy::Tradeoff {
                tau: 2.0,
                weights: None,
            },
        )
        .unwrap();
        let mut delta = Delta::new();
        delta.insert("U", vec![5, 6]);
        db.apply(&delta).unwrap();
        assert!(matches!(
            built.maintain(&view, &db, &delta).unwrap(),
            MaintainOutcome::Unaffected
        ));
    }

    #[test]
    fn domain_growth_forces_rebuild() {
        let view = parse_adorned("Q(x,y,z) :- R(x,y), S(y,z), T(z,x)", "bfb").unwrap();
        let mut db = triangle_db(40, 10, 9);
        let built = CompressedView::build(
            &view,
            &db,
            Strategy::Tradeoff {
                tau: 2.0,
                weights: None,
            },
        )
        .unwrap();
        // 999 is outside every column: y's active domain grows.
        let mut delta = Delta::new();
        delta.insert("R", vec![0, 999]);
        db.apply(&delta).unwrap();
        assert!(matches!(
            built.maintain(&view, &db, &delta).unwrap(),
            MaintainOutcome::NeedsRebuild { .. }
        ));
    }

    #[test]
    fn rewritten_views_ask_for_rebuild() {
        let mut db = triangle_db(40, 10, 13);
        // Constants in the view (Example 3 rewrite) refuse maintenance.
        let mut db3 = Database::new();
        db3.add(Relation::new(
            "R",
            3,
            vec![vec![1, 2, 9], vec![1, 3, 9], vec![2, 2, 5]],
        ))
        .unwrap();
        let cview = parse_adorned("Q(x, y) :- R(x, y, 9)", "bf").unwrap();
        let built = CompressedView::build(
            &cview,
            &db3,
            Strategy::Tradeoff {
                tau: 1.0,
                weights: None,
            },
        )
        .unwrap();
        let mut delta = Delta::new();
        delta.insert("R", vec![2, 3, 9]);
        db3.apply(&delta).unwrap();
        assert!(matches!(
            built.maintain(&cview, &db3, &delta).unwrap(),
            MaintainOutcome::NeedsRebuild { .. }
        ));
        let _ = db.apply(&Delta::new());
    }

    #[test]
    fn always_empty_guard_flip_is_detected() {
        let mut db = Database::new();
        db.add(Relation::from_pairs("R", vec![(1, 2)])).unwrap();
        db.add(Relation::from_pairs("G", vec![(5, 5)])).unwrap();
        let view = parse_adorned("Q(x, y) :- R(x, y), G(7, 7)", "bf").unwrap();
        let built = CompressedView::build(&view, &db, Strategy::Direct).unwrap();
        assert_eq!(built.strategy_name(), "always-empty");

        // A delta elsewhere in G keeps the guard failing: maintainable.
        let mut delta = Delta::new();
        delta.insert("G", vec![6, 6]);
        db.apply(&delta).unwrap();
        match built.maintain(&view, &db, &delta).unwrap() {
            MaintainOutcome::Maintained { view: v, .. } => {
                assert_eq!(v.strategy_name(), "always-empty");
                assert!(!v.exists(&[1]).unwrap());
            }
            other => panic!("expected maintained always-empty, got {other:?}"),
        }

        // Satisfying the guard must force a rebuild (the view is no longer
        // empty).
        let mut delta = Delta::new();
        delta.insert("G", vec![7, 7]);
        db.apply(&delta).unwrap();
        assert!(matches!(
            built.maintain(&view, &db, &delta).unwrap(),
            MaintainOutcome::NeedsRebuild { .. }
        ));
    }

    /// The PR's acceptance property: over random *mixed* insert/delete
    /// deltas, every strategy's maintained representation answers
    /// tuple-for-tuple like a from-scratch rebuild on the post-delta
    /// database (both checked against the naive oracle).
    #[test]
    fn maintained_matches_rebuild_on_mixed_deltas_all_strategies() {
        let view = parse_adorned("Q(x,y,z) :- R(x,y), S(y,z), T(z,x)", "bfb").unwrap();
        let strategies: Vec<Strategy> = vec![
            Strategy::Materialize,
            Strategy::Direct,
            Strategy::Tradeoff {
                tau: 2.0,
                weights: Some(vec![0.5, 0.5, 0.5]),
            },
            Strategy::Factorized,
            Strategy::Decomposed {
                space_budget_exp: 1.5,
            },
        ];
        for strat in &strategies {
            let mut maintained_runs = 0;
            for seed in 0..6u64 {
                let mut db = triangle_db(60, 12, seed * 53 + 11);
                let built = CompressedView::build(&view, &db, strat.clone()).unwrap();
                let delta = cqc_workload::mixed_delta(
                    &mut cqc_workload::rng(seed * 13 + 5),
                    &db,
                    &["R", "S", "T"],
                    3,
                    2,
                );
                assert!(
                    delta.remove_groups().any(|(_, t)| !t.is_empty()),
                    "seed {seed}: the mixed delta must actually delete something"
                );
                db.apply(&delta).unwrap();

                let outcome = built.maintain(&view, &db, &delta).unwrap();
                let MaintainOutcome::Maintained {
                    view: maintained, ..
                } = outcome
                else {
                    panic!(
                        "expected maintenance for {}, got {outcome:?} (seed {seed})",
                        built.strategy_name()
                    );
                };
                maintained_runs += 1;
                assert_eq!(maintained.strategy_name(), built.strategy_name());
                let rebuilt = CompressedView::build(&view, &db, strat.clone()).unwrap();
                for x in 0..12u64 {
                    for z in 0..12u64 {
                        let vb = [x, z];
                        let oracle = evaluate_view(&view, &db, &vb).unwrap();
                        let mut got = answers(&maintained, &vb);
                        got.sort_unstable();
                        assert_eq!(
                            got,
                            oracle,
                            "{} seed {seed} vb {vb:?}",
                            built.strategy_name()
                        );
                        let mut re = answers(&rebuilt, &vb);
                        re.sort_unstable();
                        assert_eq!(re, oracle, "rebuilt {} seed {seed}", built.strategy_name());
                    }
                }
            }
            assert!(maintained_runs > 0);
        }
    }

    /// Deleting the only witness of an interval must flip its stale `1`
    /// bit back to `0` — the mirror of `stale_zero_bits_are_flipped`.
    #[test]
    fn stale_one_bits_are_cleared_on_delete() {
        let view = parse_adorned("Q(x,y,z) :- R(x,y), S(y,z), T(z,x)", "bfb").unwrap();
        let mut db = Database::new();
        db.add(Relation::from_pairs(
            "R",
            vec![(1, 2), (2, 3), (1, 3), (3, 1), (2, 1), (4, 2)],
        ))
        .unwrap();
        db.add(Relation::from_pairs(
            "S",
            vec![(2, 3), (3, 1), (3, 2), (1, 2), (2, 4), (2, 1)],
        ))
        .unwrap();
        db.add(Relation::from_pairs(
            "T",
            vec![(3, 1), (1, 2), (2, 3), (2, 1), (4, 4), (1, 4)],
        ))
        .unwrap();
        let built = CompressedView::build(
            &view,
            &db,
            Strategy::Tradeoff {
                tau: 1.0,
                weights: Some(vec![0.5, 0.5, 0.5]),
            },
        )
        .unwrap();
        // Q(4, y, 1) = {2} via R(4,2) ∧ S(2,1) ∧ T(1,4); deleting S(2,1)
        // kills the only witness. The value 1 stays in S's second column
        // (S(3,1)), so the free grid is unchanged and maintenance runs.
        assert_eq!(answers(&built, &[4, 1]), vec![vec![2u64]]);
        let mut delta = Delta::new();
        delta.remove("S", vec![2, 1]);
        db.apply(&delta).unwrap();

        let outcome = built.maintain(&view, &db, &delta).unwrap();
        let MaintainOutcome::Maintained {
            view: maintained,
            report,
        } = outcome
        else {
            panic!("expected maintenance, got {outcome:?}");
        };
        assert!(answers(&maintained, &[4, 1]).is_empty());
        assert_eq!(report.delta_tuples, 1, "{report:?}");
        assert!(report.cleared_bits >= 1, "{report:?}");
        for x in 0..6u64 {
            for z in 0..6u64 {
                assert_eq!(
                    answers(&maintained, &[x, z]),
                    evaluate_view(&view, &db, &[x, z]).unwrap(),
                    "vb ({x},{z})"
                );
            }
        }
    }

    /// A delete that makes a domain value vanish entirely must force a
    /// rebuild (the rank-space grid shrinks).
    #[test]
    fn domain_shrink_forces_rebuild() {
        let view = parse_adorned("Q(x,y,z) :- R(x,y), S(y,z), T(z,x)", "bfb").unwrap();
        let mut db = Database::new();
        db.add(Relation::from_pairs("R", vec![(1, 2), (1, 9), (2, 3)]))
            .unwrap();
        db.add(Relation::from_pairs("S", vec![(2, 3), (3, 1), (9, 1)]))
            .unwrap();
        db.add(Relation::from_pairs("T", vec![(3, 1), (1, 2)]))
            .unwrap();
        let built = CompressedView::build(
            &view,
            &db,
            Strategy::Tradeoff {
                tau: 2.0,
                weights: None,
            },
        )
        .unwrap();
        // y = 9 occurs only in R(1,9) and S(9,1): removing both erases it
        // from y's active domain.
        let mut delta = Delta::new();
        delta.remove("R", vec![1, 9]);
        delta.remove("S", vec![9, 1]);
        db.apply(&delta).unwrap();
        assert!(matches!(
            built.maintain(&view, &db, &delta).unwrap(),
            MaintainOutcome::NeedsRebuild { .. }
        ));
    }

    /// All-bound views (Prop. 1) maintain by re-snapshotting touched
    /// relations; membership must track the post-delta database.
    #[test]
    fn bound_only_maintained_tracks_membership() {
        let view = parse_adorned("Q(x,y,z) :- R(x,y), S(y,z), T(z,x)", "bbb").unwrap();
        let mut db = triangle_db(40, 8, 21);
        let built = CompressedView::build(
            &view,
            &db,
            Strategy::Auto {
                space_budget_exp: None,
            },
        )
        .unwrap();
        assert_eq!(built.strategy_name(), "bound-only (Prop 1)");
        let delta =
            cqc_workload::mixed_delta(&mut cqc_workload::rng(77), &db, &["R", "S", "T"], 3, 3);
        db.apply(&delta).unwrap();
        let outcome = built.maintain(&view, &db, &delta).unwrap();
        let MaintainOutcome::Maintained {
            view: maintained, ..
        } = outcome
        else {
            panic!("expected maintenance, got {outcome:?}");
        };
        for x in 0..8u64 {
            for y in 0..8u64 {
                for z in 0..8u64 {
                    let oracle = !evaluate_view(&view, &db, &[x, y, z]).unwrap().is_empty();
                    assert_eq!(
                        maintained.exists(&[x, y, z]).unwrap(),
                        oracle,
                        "({x},{y},{z})"
                    );
                }
            }
        }
    }
}
